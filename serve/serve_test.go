package serve_test

// Wire-level conformance: mixed HTTP + binary clients against every paper
// scheme on the native runtime, asserting the serving ledger closes —
// per-connection response counts sum exactly to the drained
// Result.Commits + Shed + Deadlined. Run under -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"abyss1000/abyss"
	"abyss1000/serve"
	"abyss1000/serve/client"
)

func startServer(t *testing.T, scheme string, cores int, sc abyss.ServeConfig, window int) *serve.Server {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Scheme:   scheme,
		Workload: "ycsb",
		Cores:    cores,
		Seed:     11,
		Session:  sc,
		Window:   window,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return srv
}

// tally buckets every wire response a client saw.
type tally struct {
	committed, userAborts, deadlined, shed, other uint64
}

func (a *tally) add(b tally) {
	a.committed += b.committed
	a.userAborts += b.userAborts
	a.deadlined += b.deadlined
	a.shed += b.shed
	a.other += b.other
}

func (a *tally) observe(rep serve.InvokeReply) {
	switch rep.Outcome {
	case serve.WireCommitted:
		a.committed++
	case serve.WireUserAbort:
		a.userAborts++
	case serve.WireDeadlined:
		a.deadlined++
	case serve.WireShed:
		a.shed++
	default:
		a.other++
	}
}

func TestMixedTransportsAllSchemes(t *testing.T) {
	const conns, per = 4, 25
	for _, scheme := range abyss.PaperSchemes() {
		t.Run(scheme, func(t *testing.T) {
			srv := startServer(t, scheme, 2, abyss.ServeConfig{QueueDepth: 256}, 32)
			var (
				mu    sync.Mutex
				total tally
				wg    sync.WaitGroup
			)
			for i := 0; i < conns; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					proto, addr := "http", srv.HTTPAddr()
					if i%2 == 1 {
						proto, addr = "binary", srv.TCPAddr()
					}
					c, err := client.Dial(proto, addr)
					if err != nil {
						t.Errorf("conn %d: %v", i, err)
						return
					}
					defer c.Close()
					var local tally
					for j := 0; j < per; j++ {
						req := serve.InvokeRequest{Partition: -1}
						if j%3 == 0 {
							req.Partition = j % 2 // route a third of the stream
						}
						rep, err := c.Invoke(req)
						if err != nil {
							t.Errorf("conn %d invoke %d: %v", i, j, err)
							return
						}
						local.observe(rep)
					}
					mu.Lock()
					total.add(local)
					mu.Unlock()
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				srv.Shutdown()
				return
			}
			res, err := srv.Shutdown()
			if err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if total.other != 0 {
				t.Fatalf("unexpected outcomes: %+v", total)
			}
			responses := total.committed + total.userAborts + total.deadlined + total.shed
			if responses != conns*per {
				t.Fatalf("responses = %d, want %d", responses, conns*per)
			}
			// The ledger must close: every response the clients saw is in
			// exactly one engine counter.
			if got := res.Commits + res.Shed + res.Deadlined; got != responses {
				t.Fatalf("Commits+Shed+Deadlined = %d, want %d (%+v vs result %d/%d/%d)",
					got, responses, total, res.Commits, res.Shed, res.Deadlined)
			}
			if res.Commits != total.committed+total.userAborts {
				t.Fatalf("Result.Commits = %d, clients saw %d committed + %d user aborts",
					res.Commits, total.committed, total.userAborts)
			}
			if res.Shed != total.shed {
				t.Fatalf("Result.Shed = %d, clients saw %d shed", res.Shed, total.shed)
			}
			if res.Deadlined != total.deadlined {
				t.Fatalf("Result.Deadlined = %d, clients saw %d deadlined", res.Deadlined, total.deadlined)
			}
			if res.Offered != conns*per {
				t.Fatalf("Result.Offered = %d, want %d", res.Offered, conns*per)
			}
			// Shutdown is idempotent: same Result again.
			res2, err := srv.Shutdown()
			if err != nil || res2.Commits != res.Commits || res2.MeasureCycles != res.MeasureCycles ||
				res2.Offered != res.Offered || res2.Shed != res.Shed {
				t.Fatalf("second Shutdown diverged: %v", err)
			}
		})
	}
}

func TestWireDeadlinePropagates(t *testing.T) {
	srv := startServer(t, "NO_WAIT", 1, abyss.ServeConfig{QueueDepth: 16}, 8)
	defer srv.Shutdown()
	for _, proto := range []string{"http", "binary"} {
		addr := srv.HTTPAddr()
		if proto == "binary" {
			addr = srv.TCPAddr()
		}
		c, err := client.Dial(proto, addr)
		if err != nil {
			t.Fatalf("%s dial: %v", proto, err)
		}
		rep, err := c.Invoke(serve.InvokeRequest{Partition: -1, Deadline: time.Nanosecond})
		c.Close()
		if err != nil {
			t.Fatalf("%s invoke: %v", proto, err)
		}
		if rep.Outcome != serve.WireDeadlined {
			t.Fatalf("%s: 1ns-deadline outcome = %s, want deadlined", proto, serve.OutcomeName(rep.Outcome))
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv := startServer(t, "NO_WAIT", 1, abyss.ServeConfig{QueueDepth: 16}, 8)
	defer srv.Shutdown()
	c := client.DialHTTP(srv.HTTPAddr())
	if rep, err := c.Invoke(serve.InvokeRequest{Partition: -1}); err != nil || rep.Outcome != serve.WireCommitted {
		t.Fatalf("invoke = %+v, %v", rep, err)
	}
	c.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/stats", srv.HTTPAddr()))
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var stats struct {
		Scheme   string `json:"scheme"`
		Offered  uint64 `json:"offered"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	resp.Body.Close()
	if stats.Scheme != "NO_WAIT" || stats.Offered != 1 || stats.Draining {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", srv.HTTPAddr()))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %v, %v", resp, err)
	}
	resp.Body.Close()
}

func TestBadRequestsRejected(t *testing.T) {
	srv := startServer(t, "NO_WAIT", 1, abyss.ServeConfig{QueueDepth: 16}, 8)
	defer srv.Shutdown()
	c, err := client.DialBinary(srv.TCPAddr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	rep, err := c.Invoke(serve.InvokeRequest{Proc: "no-such-proc", Partition: -1})
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if rep.Outcome != serve.WireRejected {
		t.Fatalf("unknown proc outcome = %s, want rejected", serve.OutcomeName(rep.Outcome))
	}
	// Rejections never reach the engine: the ledger stays clean.
	if got := srv.Session().Counters(); got.Offered != 0 {
		t.Fatalf("rejected request counted as offered: %+v", got)
	}
}
