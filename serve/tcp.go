package serve

// The binary TCP transport: length-prefixed frames (see protocol.go),
// pipelined — a client may keep many requests in flight per connection,
// correlated by request id. The per-connection window is enforced here:
// a request arriving with Window requests already outstanding is
// answered WireShed immediately, the engine never sees it. Replies are
// written as invocations complete, so they can arrive out of order
// relative to requests; ids are the correlation.

import (
	"bufio"
	"errors"
	"net"
	"sync"
)

// connState is one live binary connection.
type connState struct {
	conn net.Conn
	wmu  sync.Mutex // serializes reply frames
	once sync.Once
}

func (c *connState) close() { c.once.Do(func() { c.conn.Close() }) }

// writeReply frames one reply; write errors just poison the connection —
// the reader loop notices on its next read.
func (c *connState) writeReply(id uint64, rep InvokeReply) {
	buf := make([]byte, 0, 17)
	buf = AppendReply(buf, id, rep.Outcome, rep.Elapsed)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	WriteFrame(c.conn, buf)
}

func (s *Server) startTCP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.tcpLn = ln
	s.connWG.Add(1)
	go s.acceptLoop(ln)
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.connWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: draining
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		c := &connState{conn: conn}
		s.conns.Store(c, struct{}{})
		s.connWG.Add(1)
		go s.serveConn(c)
	}
}

// serveConn is one connection's reader loop: decode frames, enforce the
// inflight window, dispatch admitted requests onto their own goroutine
// (session.Invoke blocks until the engine answers), and frame replies.
func (s *Server) serveConn(c *connState) {
	defer s.connWG.Done()
	defer s.conns.Delete(c)
	defer c.close()
	win := newWindow(s.window)
	r := bufio.NewReaderSize(c.conn, 32*1024)
	var buf []byte
	for {
		payload, grown, err := ReadFrame(r, buf)
		if err != nil {
			return // EOF, connection reset, or an unframeable stream
		}
		buf = grown
		id, req, err := ParseRequest(payload)
		if err != nil {
			if errors.Is(err, errShortHeader) {
				return // cannot even correlate a reply; drop the conn
			}
			c.writeReply(id, InvokeReply{Outcome: WireRejected, Err: err.Error()})
			continue
		}
		if !win.tryAcquire() {
			// Wire-level backpressure: the window is the client's credit;
			// exceeding it is shed before the engine is touched.
			s.session.NoteShed(1)
			c.writeReply(id, InvokeReply{Outcome: WireShed})
			continue
		}
		s.admit.RLock()
		if s.draining.Load() {
			s.admit.RUnlock()
			win.release()
			c.writeReply(id, InvokeReply{Outcome: WireClosed})
			continue
		}
		s.inflight.Add(1)
		s.admit.RUnlock()
		go func(id uint64, req InvokeRequest) {
			defer s.inflight.Done()
			defer win.release()
			c.writeReply(id, s.invoke(req))
		}(id, req)
	}
}
