// Package serve is the networked front door to the abyss engine: it
// exposes a Session (stored-procedure invocation on the native runtime)
// over HTTP/1.1 JSON and a compact binary TCP protocol, with wire-level
// backpressure layered on the engine's admission machinery.
//
// Backpressure maps onto three nested bounds:
//
//   - per-connection inflight windows (Config.Window): a connection with
//     Window requests outstanding has further requests answered SHED
//     immediately, without touching the engine;
//   - per-worker admission queues (Config.Session.QueueDepth): requests
//     routed to a full queue are shed by the session (HTTP 429);
//   - per-request deadlines, propagated from client headers/fields to
//     the engine's deadline semantics — a request that cannot commit in
//     budget comes back "deadlined", even if it never executed.
//
// Every shed, wherever it happens, is folded into the drained
// Result.Shed, so offered = commits + shed + deadlined holds across the
// whole serving stack.
//
// Graceful drain: Shutdown (the SIGTERM path in cmd/abyss-serve) stops
// accepting connections, refuses new requests with "closed", lets every
// admitted request finish and flush its reply, drains the session, and
// returns the final Result. Construct with New, bind with Start.
package serve

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"abyss1000/abyss"
)

// DefaultWindow bounds each connection's inflight requests when
// Config.Window is zero.
const DefaultWindow = 64

// Config assembles a server: the engine (scheme, workload, cores, seed,
// durability), the session's admission tuning, and the wire-level
// window.
type Config struct {
	// Scheme names the concurrency-control scheme (abyss.SchemeNames).
	Scheme string

	// Workload names the registered workload; Params overrides its
	// knobs (nil means registry defaults, with YCSB forced to its
	// partitioned layout under HSTORE).
	Workload string
	Params   *abyss.WorkloadParams

	// Cores is the native worker count — equivalently the partition
	// count requests can route to.
	Cores int

	// Seed drives the engine's deterministic streams.
	Seed int64

	// Session tunes admission control: queue depth, default deadline,
	// retry budget, backoff.
	Session abyss.ServeConfig

	// Window bounds each connection's inflight requests; overflow is
	// answered SHED without reaching the engine. Zero means
	// DefaultWindow.
	Window int

	// Durability, when non-nil, attaches a write-ahead log; Shutdown
	// flushes and closes it after the drain.
	Durability *abyss.Durability
}

// Server is one serving instance: an engine session plus up to two
// listeners (HTTP and binary TCP).
type Server struct {
	cfg     Config
	window  int
	db      *abyss.DB
	session *abyss.Session

	httpLn  net.Listener
	tcpLn   net.Listener
	httpSrv *http.Server

	draining atomic.Bool
	admit    sync.RWMutex   // orders admission against the drain flag flip
	inflight sync.WaitGroup // admitted binary dispatches awaiting replies
	conns    sync.Map       // open binary connections -> *connState
	connWG   sync.WaitGroup // binary connection reader loops

	shutdownOnce sync.Once
	result       abyss.Result
	shutdownErr  error
}

// New opens the engine and starts the serving session; the server is not
// reachable until Start binds listeners.
func New(cfg Config) (*Server, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("serve: Config.Cores must be positive, got %d", cfg.Cores)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("serve: Config.Window must not be negative, got %d", cfg.Window)
	}
	db, err := abyss.Open(abyss.Options{
		Runtime:    abyss.RuntimeNative,
		Cores:      cfg.Cores,
		Seed:       cfg.Seed,
		Durability: cfg.Durability,
	})
	if err != nil {
		return nil, err
	}
	params := abyss.WorkloadParams{}
	if cfg.Params != nil {
		params = *cfg.Params
	} else {
		params, err = abyss.DefaultWorkloadParams(cfg.Workload)
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(cfg.Scheme, "HSTORE") && cfg.Workload == "ycsb" {
			// H-STORE requires the partitioned YCSB layout, exactly as
			// the paper's harness configures it.
			params.Partitioned = true
		}
	}
	wl, err := db.BuildWorkload(cfg.Workload, params)
	if err != nil {
		return nil, err
	}
	scheme, err := abyss.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	session, err := db.Serve(scheme, wl, cfg.Session)
	if err != nil {
		return nil, err
	}
	w := cfg.Window
	if w == 0 {
		w = DefaultWindow
	}
	return &Server{cfg: cfg, window: w, db: db, session: session}, nil
}

// Session exposes the underlying session (tests and embedders).
func (s *Server) Session() *abyss.Session { return s.session }

// Start binds the requested listeners ("" skips one; at least one is
// required) and begins serving. Addresses may use port 0; HTTPAddr and
// TCPAddr report the bound addresses.
func (s *Server) Start(httpAddr, tcpAddr string) error {
	if httpAddr == "" && tcpAddr == "" {
		return fmt.Errorf("serve: Start needs at least one listen address")
	}
	if httpAddr != "" {
		if err := s.startHTTP(httpAddr); err != nil {
			return err
		}
	}
	if tcpAddr != "" {
		if err := s.startTCP(tcpAddr); err != nil {
			if s.httpLn != nil {
				s.httpLn.Close()
			}
			return err
		}
	}
	return nil
}

// HTTPAddr returns the bound HTTP address, or "" without an HTTP
// listener.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TCPAddr returns the bound binary-protocol address, or "" without a
// TCP listener.
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// reply maps a session invocation outcome onto the wire.
func reply(rep abyss.Reply, err error) InvokeReply {
	switch {
	case err == nil:
		out := InvokeReply{Elapsed: rep.Elapsed}
		switch rep.Outcome {
		case abyss.OutcomeCommitted:
			out.Outcome = WireCommitted
		case abyss.OutcomeUserAbort:
			out.Outcome = WireUserAbort
		case abyss.OutcomeDeadlined:
			out.Outcome = WireDeadlined
		default:
			out.Outcome = WireRejected
			out.Err = fmt.Sprintf("unknown outcome %v", rep.Outcome)
		}
		return out
	case err == abyss.ErrShed:
		return InvokeReply{Outcome: WireShed}
	case err == abyss.ErrSessionClosed:
		return InvokeReply{Outcome: WireClosed}
	default:
		return InvokeReply{Outcome: WireRejected, Err: err.Error()}
	}
}

// invoke routes one wire request through the session.
func (s *Server) invoke(req InvokeRequest) InvokeReply {
	inv := abyss.Invocation{Proc: req.Proc, Args: req.Args, Deadline: req.Deadline}
	if req.Partition >= 0 {
		inv.Routed = true
		inv.Partition = req.Partition
	}
	return reply(s.session.Invoke(inv))
}

// Shutdown drains gracefully: stop accepting, refuse new requests,
// finish and flush everything admitted, drain the session, close the
// WAL if one is attached, and return the final Result. Idempotent;
// every call returns the same Result. This is the SIGTERM path.
func (s *Server) Shutdown() (abyss.Result, error) {
	s.shutdownOnce.Do(func() {
		// The admission lock orders the flag flip against inflight.Add:
		// every admission either predates the flip (and is counted
		// before Wait) or observes draining and refuses.
		s.admit.Lock()
		s.draining.Store(true)
		s.admit.Unlock()
		if s.tcpLn != nil {
			s.tcpLn.Close()
		}
		// Admitted binary dispatches finish against the still-serving
		// session and write their replies before connections close.
		s.inflight.Wait()
		s.conns.Range(func(key, _ any) bool {
			key.(*connState).close()
			return true
		})
		s.connWG.Wait()
		s.stopHTTP()
		s.result, s.shutdownErr = s.session.Drain()
		if s.shutdownErr == nil && s.db.Durable() {
			s.shutdownErr = s.db.CloseLog()
		}
	})
	return s.result, s.shutdownErr
}

// window is a counting semaphore bounding a connection's inflight
// requests.
type window struct{ sem chan struct{} }

func newWindow(n int) *window { return &window{sem: make(chan struct{}, n)} }

func (w *window) tryAcquire() bool {
	select {
	case w.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (w *window) release() { <-w.sem }

// Elapsed-to-wall helpers shared by the transports.
func elapsedNS(d time.Duration) int64 {
	if d < 0 {
		return 0
	}
	return int64(d)
}
