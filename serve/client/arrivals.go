package client

// Wall-clock open-loop arrival generation. The math mirrors the engine's
// internal arrival generator (internal/core): exponential interarrival
// gaps, and for MMPP the exact modulated-process simulation — a gap that
// would cross the state boundary is discarded and redrawn at the boundary
// under the new state's rate, justified by the memorylessness of the
// exponential. Here the clock is wall time in nanoseconds rather than
// engine cycles, and each connection owns an independent stream seeded
// from the spec seed and its connection index, so a load run's offered
// sequence is reproducible.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Process selects the client-side arrival process.
type Process int

const (
	// Poisson offers load at a constant rate.
	Poisson Process = iota

	// MMPP offers bursty load: a two-state Markov-modulated Poisson
	// process alternating calm and burst rates with exponentially
	// distributed dwell times.
	MMPP
)

// ArrivalSpec configures the offered load, aggregate across all
// connections.
type ArrivalSpec struct {
	// Process selects Poisson or MMPP.
	Process Process

	// RateTPS is the aggregate offered rate (the calm rate for MMPP).
	RateTPS float64

	// BurstRateTPS is the MMPP burst-state aggregate rate.
	BurstRateTPS float64

	// CalmDwell and BurstDwell are the MMPP mean state dwell times.
	CalmDwell  time.Duration
	BurstDwell time.Duration
}

// Validate rejects parameters that cannot generate arrivals.
func (a ArrivalSpec) Validate() error {
	switch a.Process {
	case Poisson:
		if a.RateTPS <= 0 {
			return fmt.Errorf("client: Poisson arrivals need RateTPS > 0, got %g", a.RateTPS)
		}
		return nil
	case MMPP:
		if a.RateTPS <= 0 || a.BurstRateTPS <= 0 {
			return fmt.Errorf("client: MMPP arrivals need RateTPS and BurstRateTPS > 0")
		}
		if a.CalmDwell <= 0 || a.BurstDwell <= 0 {
			return fmt.Errorf("client: MMPP arrivals need positive CalmDwell and BurstDwell")
		}
		return nil
	default:
		return fmt.Errorf("client: unknown arrival process %d", int(a.Process))
	}
}

// ParseArrivalSpec parses the CLI form:
//
//	poisson:RATE
//	mmpp:CALMRATE:BURSTRATE:CALMDWELL:BURSTDWELL
//
// Rates are transactions per second; dwells are Go durations (e.g.
// "200ms").
func ParseArrivalSpec(s string) (ArrivalSpec, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "poisson":
		if len(parts) != 2 {
			return ArrivalSpec{}, fmt.Errorf("client: want poisson:RATE, got %q", s)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return ArrivalSpec{}, fmt.Errorf("client: bad rate in %q: %w", s, err)
		}
		spec := ArrivalSpec{Process: Poisson, RateTPS: rate}
		return spec, spec.Validate()
	case "mmpp":
		if len(parts) != 5 {
			return ArrivalSpec{}, fmt.Errorf("client: want mmpp:CALMRATE:BURSTRATE:CALMDWELL:BURSTDWELL, got %q", s)
		}
		calm, err1 := strconv.ParseFloat(parts[1], 64)
		burst, err2 := strconv.ParseFloat(parts[2], 64)
		calmD, err3 := time.ParseDuration(parts[3])
		burstD, err4 := time.ParseDuration(parts[4])
		for _, err := range []error{err1, err2, err3, err4} {
			if err != nil {
				return ArrivalSpec{}, fmt.Errorf("client: bad mmpp spec %q: %w", s, err)
			}
		}
		spec := ArrivalSpec{Process: MMPP, RateTPS: calm, BurstRateTPS: burst, CalmDwell: calmD, BurstDwell: burstD}
		return spec, spec.Validate()
	default:
		return ArrivalSpec{}, fmt.Errorf("client: unknown arrival process %q (want poisson or mmpp)", parts[0])
	}
}

// arrivalGen produces one connection's share of the arrival stream, in
// nanoseconds since the run start.
type arrivalGen struct {
	rng        *rand.Rand
	calmMean   float64 // mean interarrival, calm state (ns)
	burstMean  float64 // mean interarrival, burst state (ns)
	calmDwell  float64 // mean dwell, calm state (ns)
	burstDwell float64
	mmpp       bool
	inBurst    bool
	stateEnd   float64
	clock      float64
	next       float64
}

// newArrivalGen splits the aggregate spec evenly across conns connections
// and seeds connection conn's independent stream.
func newArrivalGen(a ArrivalSpec, conn, conns int, seed int64) *arrivalGen {
	const nsPerSec = 1e9
	g := &arrivalGen{
		rng:      rand.New(rand.NewSource(seed + int64(conn)*0x9E3779B97F4A7C + 1)),
		calmMean: nsPerSec / (a.RateTPS / float64(conns)),
		mmpp:     a.Process == MMPP,
	}
	if g.mmpp {
		g.burstMean = nsPerSec / (a.BurstRateTPS / float64(conns))
		g.calmDwell = float64(a.CalmDwell)
		g.burstDwell = float64(a.BurstDwell)
		g.stateEnd = g.rng.ExpFloat64() * g.calmDwell
	}
	g.step()
	return g
}

// step draws the next arrival, switching MMPP states at exponentially
// distributed boundaries exactly as the engine-side generator does.
func (g *arrivalGen) step() {
	for {
		mean := g.calmMean
		if g.inBurst {
			mean = g.burstMean
		}
		gap := g.rng.ExpFloat64() * mean
		if !g.mmpp || g.clock+gap <= g.stateEnd {
			g.clock += gap
			g.next = g.clock
			return
		}
		g.clock = g.stateEnd
		g.inBurst = !g.inBurst
		dwell := g.calmDwell
		if g.inBurst {
			dwell = g.burstDwell
		}
		g.stateEnd = g.clock + g.rng.ExpFloat64()*dwell
	}
}

// take consumes and returns the next arrival offset from the run start.
func (g *arrivalGen) take() time.Duration {
	t := time.Duration(g.next)
	g.step()
	return t
}
