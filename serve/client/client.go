// Package client is the Go client for an abyss-serve front door: single
// connections over either transport (Dial), and an open-loop remote load
// generator (Run) that offers Poisson/MMPP arrivals over the wire and
// reports offered-vs-goodput with wire-latency histograms.
package client

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"abyss1000/serve"
)

// Conn is one client connection to a server, over either transport.
// Invoke blocks until the reply arrives; binary connections multiplex, so
// many goroutines may Invoke concurrently on one Conn.
type Conn interface {
	// Invoke sends one request and waits for its reply. The error is
	// transport-level only — backpressure outcomes (shed, closed,
	// rejected) come back in the reply.
	Invoke(req serve.InvokeRequest) (serve.InvokeReply, error)

	// Close releases the connection; pending binary invocations fail.
	Close() error
}

// Dial opens one connection: proto is "http" or "binary".
func Dial(proto, addr string) (Conn, error) {
	switch proto {
	case "http":
		return DialHTTP(addr), nil
	case "binary":
		return DialBinary(addr)
	default:
		return nil, fmt.Errorf("client: unknown protocol %q (want \"http\" or \"binary\")", proto)
	}
}

// httpConn serves invocations over HTTP/1.1 JSON. Each httpConn owns its
// transport, capped at one TCP connection, so N httpConns model N real
// connections against the server's per-connection windows.
type httpConn struct {
	url    string
	client *http.Client
}

// DialHTTP prepares an HTTP connection to addr (host:port). The TCP
// connection itself is established lazily by the first Invoke.
func DialHTTP(addr string) Conn {
	t := &http.Transport{
		MaxConnsPerHost:     1,
		MaxIdleConnsPerHost: 1,
		IdleConnTimeout:     90 * time.Second,
	}
	return &httpConn{
		url:    "http://" + addr + "/invoke",
		client: &http.Client{Transport: t},
	}
}

func (c *httpConn) Invoke(req serve.InvokeRequest) (serve.InvokeReply, error) {
	body, err := serve.EncodeHTTPRequest(req)
	if err != nil {
		return serve.InvokeReply{}, err
	}
	resp, err := c.client.Post(c.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.InvokeReply{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, serve.MaxFrame))
	if err != nil {
		return serve.InvokeReply{}, err
	}
	return serve.DecodeHTTPReply(data)
}

func (c *httpConn) Close() error {
	c.client.CloseIdleConnections()
	return nil
}

// binConn is one pipelined binary connection: requests carry ids, a
// single reader goroutine demultiplexes replies to their waiters.
type binConn struct {
	conn   net.Conn
	wmu    sync.Mutex // serializes request frames
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan serve.InvokeReply
	readErr error
	closed  bool
	done    chan struct{}
}

// DialBinary opens one binary-protocol connection.
func DialBinary(addr string) (Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &binConn{
		conn:    conn,
		pending: make(map[uint64]chan serve.InvokeReply),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes reply frames until the connection dies, then
// fails every waiter.
func (c *binConn) readLoop() {
	r := bufio.NewReaderSize(c.conn, 32*1024)
	var buf []byte
	for {
		payload, grown, err := serve.ReadFrame(r, buf)
		if err != nil {
			c.fail(err)
			return
		}
		buf = grown
		id, rep, err := serve.ParseReply(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- rep // buffered; never blocks
		}
	}
}

// fail poisons the connection: records the first error and wakes every
// pending Invoke.
func (c *binConn) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		if c.closed {
			c.readErr = fmt.Errorf("client: connection closed")
		} else {
			c.readErr = err
		}
		close(c.done)
	}
	c.pending = make(map[uint64]chan serve.InvokeReply)
	c.mu.Unlock()
}

func (c *binConn) Invoke(req serve.InvokeRequest) (serve.InvokeReply, error) {
	id := c.nextID.Add(1)
	ch := make(chan serve.InvokeReply, 1)

	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return serve.InvokeReply{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	payload, err := serve.AppendRequest(make([]byte, 0, 64), id, req)
	if err == nil {
		c.wmu.Lock()
		err = serve.WriteFrame(c.conn, payload)
		c.wmu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return serve.InvokeReply{}, err
	}

	select {
	case rep := <-ch:
		return rep, nil
	case <-c.done:
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return serve.InvokeReply{}, err
	}
}

func (c *binConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
