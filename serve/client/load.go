package client

// The remote load generator: N connections, each offering its share of an
// open-loop arrival stream. Open loop means arrivals do not wait for
// replies — a request fires at its arrival instant whether or not earlier
// ones answered. The only client-side bound is the per-connection window
// (mirroring the server's): an arrival finding the window full is counted
// shed_client and never sent, so the client cannot itself queue unbounded
// goroutines when the server saturates.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"abyss1000/abyss"
	"abyss1000/serve"
)

// LoadConfig configures one load run.
type LoadConfig struct {
	// Addr is the server address (host:port) for Proto ("http" or
	// "binary").
	Addr  string
	Proto string

	// Conns is the connection count; the aggregate arrival rate is
	// split evenly across them.
	Conns int

	// Window bounds each connection's unanswered requests; arrivals past
	// it are counted shed_client and not sent. Zero means
	// serve.DefaultWindow.
	Window int

	// Arrival is the offered-load process, aggregate across connections.
	Arrival ArrivalSpec

	// Duration is how long arrivals are offered; the run then waits for
	// outstanding replies.
	Duration time.Duration

	// Proc and Args select the invocation ("" = anonymous workload
	// draw).
	Proc string
	Args []int64

	// Partitions, when positive, routes requests round-robin across
	// partitions [0, Partitions); otherwise requests are unrouted.
	Partitions int

	// Deadline rides each request (zero = server default).
	Deadline time.Duration

	// Seed makes the arrival streams reproducible.
	Seed int64
}

func (c LoadConfig) validate() error {
	if c.Addr == "" {
		return fmt.Errorf("client: LoadConfig.Addr is required")
	}
	if c.Proto != "http" && c.Proto != "binary" {
		return fmt.Errorf("client: LoadConfig.Proto must be \"http\" or \"binary\", got %q", c.Proto)
	}
	if c.Conns <= 0 {
		return fmt.Errorf("client: LoadConfig.Conns must be positive, got %d", c.Conns)
	}
	if c.Window < 0 {
		return fmt.Errorf("client: LoadConfig.Window must not be negative, got %d", c.Window)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("client: LoadConfig.Duration must be positive, got %v", c.Duration)
	}
	return c.Arrival.Validate()
}

// Report is one load run's ledger. Offered = Sent + ShedClient, and every
// sent request lands in exactly one of the reply counters, so
//
//	Offered = Committed + UserAborts + Deadlined + ShedServer
//	        + Rejected + Closed + Errors + ShedClient.
type Report struct {
	Offered    uint64 `json:"offered"`     // arrivals generated
	Sent       uint64 `json:"sent"`        // requests put on the wire
	Committed  uint64 `json:"committed"`   // WireCommitted replies
	UserAborts uint64 `json:"user_aborts"` // WireUserAbort replies
	Deadlined  uint64 `json:"deadlined"`   // WireDeadlined replies
	ShedServer uint64 `json:"shed_server"` // WireShed replies (server backpressure)
	ShedClient uint64 `json:"shed_client"` // arrivals dropped at a full client window
	Rejected   uint64 `json:"rejected"`    // WireRejected replies
	Closed     uint64 `json:"closed"`      // WireClosed replies (server draining)
	Errors     uint64 `json:"errors"`      // transport failures

	// Elapsed is the wall span from first arrival offered to last reply.
	Elapsed time.Duration `json:"elapsed_ns"`

	// Wire is the round-trip wire latency histogram, in nanoseconds,
	// over committed and user-abort replies (completed work).
	Wire abyss.Histogram `json:"wire_ns"`
}

// GoodputTPS is committed transactions per wall second.
func (r Report) GoodputTPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// OfferedTPS is generated arrivals per wall second.
func (r Report) OfferedTPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// Summary renders the one-line key=value form consumed by scripts and CI:
// keys are stable API.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered=%d sent=%d committed=%d user_aborts=%d deadlined=%d",
		r.Offered, r.Sent, r.Committed, r.UserAborts, r.Deadlined)
	fmt.Fprintf(&b, " shed_server=%d shed_client=%d rejected=%d closed=%d errors=%d",
		r.ShedServer, r.ShedClient, r.Rejected, r.Closed, r.Errors)
	fmt.Fprintf(&b, " elapsed_s=%.3f offered_tps=%.1f goodput_tps=%.1f",
		r.Elapsed.Seconds(), r.OfferedTPS(), r.GoodputTPS())
	fmt.Fprintf(&b, " wire_p50_us=%.1f wire_p99_us=%.1f",
		float64(r.Wire.P50())/1e3, float64(r.Wire.Quantile(0.99))/1e3)
	return b.String()
}

// connReport is one connection's ledger, merged after the run.
type connReport struct {
	Report
	err error
}

// Run drives one load run and blocks until every outstanding request
// answered (or failed). A connection that cannot dial fails the run;
// transport errors after dialing are counted, not fatal.
func Run(cfg LoadConfig) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	window := cfg.Window
	if window == 0 {
		window = serve.DefaultWindow
	}

	conns := make([]Conn, cfg.Conns)
	for i := range conns {
		c, err := Dial(cfg.Proto, cfg.Addr)
		if err != nil {
			for _, open := range conns[:i] {
				open.Close()
			}
			return Report{}, fmt.Errorf("client: dialing connection %d: %w", i, err)
		}
		conns[i] = c
	}

	reports := make([]connReport, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = driveConn(cfg, conns[i], i, window, start)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, c := range conns {
		c.Close()
	}

	var out Report
	out.Elapsed = elapsed
	for i := range reports {
		r := &reports[i]
		out.Offered += r.Offered
		out.Sent += r.Sent
		out.Committed += r.Committed
		out.UserAborts += r.UserAborts
		out.Deadlined += r.Deadlined
		out.ShedServer += r.ShedServer
		out.ShedClient += r.ShedClient
		out.Rejected += r.Rejected
		out.Closed += r.Closed
		out.Errors += r.Errors
		out.Wire.Merge(&r.Wire)
	}
	return out, nil
}

// driveConn offers one connection's arrival stream, open loop: each
// arrival fires at its instant on its own goroutine; a full window sheds
// the arrival client-side instead of queueing it.
func driveConn(cfg LoadConfig, conn Conn, idx, window int, start time.Time) connReport {
	var rep connReport
	gen := newArrivalGen(cfg.Arrival, idx, cfg.Conns, cfg.Seed)
	sem := make(chan struct{}, window)
	var (
		mu      sync.Mutex // guards the reply counters and histogram
		replies sync.WaitGroup
	)
	seq := 0
	for {
		at := gen.take()
		if at > cfg.Duration {
			break
		}
		time.Sleep(time.Until(start.Add(at)))
		rep.Offered++
		select {
		case sem <- struct{}{}:
		default:
			rep.ShedClient++
			continue
		}
		req := serve.InvokeRequest{
			Proc:      cfg.Proc,
			Args:      cfg.Args,
			Partition: -1,
			Deadline:  cfg.Deadline,
		}
		if cfg.Partitions > 0 {
			req.Partition = (idx + seq) % cfg.Partitions
		}
		seq++
		rep.Sent++
		replies.Add(1)
		go func(req serve.InvokeRequest) {
			defer replies.Done()
			defer func() { <-sem }()
			sent := time.Now()
			reply, err := conn.Invoke(req)
			wire := time.Since(sent)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rep.Errors++
				return
			}
			switch reply.Outcome {
			case serve.WireCommitted:
				rep.Committed++
				rep.Wire.Record(uint64(wire))
			case serve.WireUserAbort:
				rep.UserAborts++
				rep.Wire.Record(uint64(wire))
			case serve.WireDeadlined:
				rep.Deadlined++
			case serve.WireShed:
				rep.ShedServer++
			case serve.WireClosed:
				rep.Closed++
			default:
				rep.Rejected++
			}
		}(req)
	}
	replies.Wait()
	return rep
}
