package client

import (
	"strings"
	"testing"
	"time"

	"abyss1000/abyss"
	"abyss1000/serve"
)

func TestParseArrivalSpec(t *testing.T) {
	spec, err := ParseArrivalSpec("poisson:5000")
	if err != nil || spec.Process != Poisson || spec.RateTPS != 5000 {
		t.Fatalf("poisson spec = %+v, %v", spec, err)
	}
	spec, err = ParseArrivalSpec("mmpp:1000:8000:200ms:50ms")
	if err != nil || spec.Process != MMPP || spec.BurstRateTPS != 8000 ||
		spec.CalmDwell != 200*time.Millisecond || spec.BurstDwell != 50*time.Millisecond {
		t.Fatalf("mmpp spec = %+v, %v", spec, err)
	}
	for _, bad := range []string{"", "uniform:5", "poisson", "poisson:x", "poisson:-3", "mmpp:1:2:3", "mmpp:0:8:1s:1s"} {
		if _, err := ParseArrivalSpec(bad); err == nil {
			t.Fatalf("ParseArrivalSpec(%q) accepted", bad)
		}
	}
}

func TestArrivalGenDeterminism(t *testing.T) {
	spec := ArrivalSpec{Process: MMPP, RateTPS: 1000, BurstRateTPS: 8000, CalmDwell: 10 * time.Millisecond, BurstDwell: 5 * time.Millisecond}
	a := newArrivalGen(spec, 1, 4, 42)
	b := newArrivalGen(spec, 1, 4, 42)
	last := time.Duration(-1)
	for i := 0; i < 1000; i++ {
		x, y := a.take(), b.take()
		if x != y {
			t.Fatalf("arrival %d diverged: %v vs %v", i, x, y)
		}
		if x < last {
			t.Fatalf("arrival %d moved backwards: %v after %v", i, x, last)
		}
		last = x
	}
}

func TestLoadRunLedger(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Scheme:   "NO_WAIT",
		Workload: "ycsb",
		Cores:    2,
		Seed:     11,
		Session:  abyss.ServeConfig{QueueDepth: 256},
		Window:   64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start("", "127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	rep, err := Run(LoadConfig{
		Addr:     srv.TCPAddr(),
		Proto:    "binary",
		Conns:    2,
		Window:   32,
		Arrival:  ArrivalSpec{Process: Poisson, RateTPS: 2000},
		Duration: 300 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Offered == 0 || rep.Committed == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	// The client ledger closes.
	accounted := rep.Committed + rep.UserAborts + rep.Deadlined + rep.ShedServer +
		rep.Rejected + rep.Closed + rep.Errors
	if rep.Sent != accounted {
		t.Fatalf("sent = %d but %d accounted: %+v", rep.Sent, accounted, rep)
	}
	if rep.Offered != rep.Sent+rep.ShedClient {
		t.Fatalf("offered = %d, sent+shed_client = %d", rep.Offered, rep.Sent+rep.ShedClient)
	}
	if rep.Wire.Count() != rep.Committed+rep.UserAborts {
		t.Fatalf("wire histogram count = %d, want %d", rep.Wire.Count(), rep.Committed+rep.UserAborts)
	}
	// And it agrees with the server's: every sent request is in the
	// engine's offered count (queue sheds and window sheds included).
	res, err := srv.Shutdown()
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if res.Offered != rep.Sent {
		t.Fatalf("server Offered = %d, client sent %d", res.Offered, rep.Sent)
	}
	if res.Commits != rep.Committed+rep.UserAborts || res.Shed != rep.ShedServer || res.Deadlined != rep.Deadlined {
		t.Fatalf("server result %d/%d/%d vs client %d/%d/%d",
			res.Commits, res.Shed, res.Deadlined,
			rep.Committed+rep.UserAborts, rep.ShedServer, rep.Deadlined)
	}
	// Summary carries the stable keys scripts grep for.
	sum := rep.Summary()
	for _, key := range []string{"offered=", "sent=", "committed=", "deadlined=", "shed_server=", "shed_client=", "goodput_tps=", "wire_p50_us=", "wire_p99_us="} {
		if !strings.Contains(sum, key) {
			t.Fatalf("Summary missing %q: %s", key, sum)
		}
	}
}

func TestLoadRunValidation(t *testing.T) {
	bad := []LoadConfig{
		{},
		{Addr: "x", Proto: "udp", Conns: 1, Duration: time.Second, Arrival: ArrivalSpec{Process: Poisson, RateTPS: 1}},
		{Addr: "x", Proto: "http", Conns: 0, Duration: time.Second, Arrival: ArrivalSpec{Process: Poisson, RateTPS: 1}},
		{Addr: "x", Proto: "http", Conns: 1, Duration: 0, Arrival: ArrivalSpec{Process: Poisson, RateTPS: 1}},
		{Addr: "x", Proto: "http", Conns: 1, Duration: time.Second, Arrival: ArrivalSpec{Process: Poisson}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
