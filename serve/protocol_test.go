package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		id   uint64
		req  InvokeRequest
	}{
		{"anonymous", 1, InvokeRequest{Partition: -1}},
		{"routed", 7, InvokeRequest{Proc: "touch", Args: []int64{3, -9, 1 << 40}, Partition: 2, Deadline: 50 * time.Millisecond}},
		{"no-args", 1 << 60, InvokeRequest{Proc: "plain", Partition: -1, Deadline: time.Second}},
		{"negative-partition-normalized", 9, InvokeRequest{Partition: -5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := AppendRequest(nil, tc.id, tc.req)
			if err != nil {
				t.Fatalf("AppendRequest: %v", err)
			}
			id, got, err := ParseRequest(payload)
			if err != nil {
				t.Fatalf("ParseRequest: %v", err)
			}
			if id != tc.id {
				t.Fatalf("id = %d, want %d", id, tc.id)
			}
			want := tc.req
			if want.Partition < 0 {
				want.Partition = -1 // any negative encodes as unrouted
			}
			if got.Proc != want.Proc || got.Partition != want.Partition || got.Deadline != want.Deadline {
				t.Fatalf("round trip = %+v, want %+v", got, want)
			}
			if len(got.Args) != len(want.Args) {
				t.Fatalf("args = %v, want %v", got.Args, want.Args)
			}
			for i := range got.Args {
				if got.Args[i] != want.Args[i] {
					t.Fatalf("args = %v, want %v", got.Args, want.Args)
				}
			}
		})
	}
}

func TestRequestBounds(t *testing.T) {
	if _, err := AppendRequest(nil, 1, InvokeRequest{Args: make([]int64, MaxArgs+1)}); err == nil {
		t.Fatal("AppendRequest accepted too many args")
	}
	if _, err := AppendRequest(nil, 1, InvokeRequest{Proc: strings.Repeat("x", MaxFrame)}); err == nil {
		t.Fatal("AppendRequest accepted an oversized procedure name")
	}
	if _, _, err := ParseRequest(make([]byte, 5)); !errors.Is(err, errShortHeader) {
		t.Fatalf("short payload error = %v, want errShortHeader", err)
	}
	// A valid header claiming more args than the payload carries.
	payload, _ := AppendRequest(nil, 1, InvokeRequest{Partition: -1, Args: []int64{1, 2}})
	if _, _, err := ParseRequest(payload[:len(payload)-8]); err == nil {
		t.Fatal("ParseRequest accepted a truncated argument list")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	payload := AppendReply(nil, 42, WireDeadlined, 7*time.Millisecond)
	id, rep, err := ParseReply(payload)
	if err != nil {
		t.Fatalf("ParseReply: %v", err)
	}
	if id != 42 || rep.Outcome != WireDeadlined || rep.Elapsed != 7*time.Millisecond {
		t.Fatalf("round trip = id %d %+v", id, rep)
	}
	if _, _, err := ParseReply(payload[:10]); err == nil {
		t.Fatal("ParseReply accepted a short payload")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1}, {}, bytes.Repeat([]byte{7}, 300)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, grown, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		scratch = grown
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %v, want %v", i, got, want)
		}
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
}

func TestHTTPEncodingRoundTrip(t *testing.T) {
	body, err := EncodeHTTPRequest(InvokeRequest{Proc: "touch", Args: []int64{1}, Partition: 3, Deadline: time.Millisecond})
	if err != nil {
		t.Fatalf("EncodeHTTPRequest: %v", err)
	}
	if !bytes.Contains(body, []byte(`"partition":3`)) {
		t.Fatalf("routed body missing partition: %s", body)
	}
	body, _ = EncodeHTTPRequest(InvokeRequest{Partition: -1})
	if bytes.Contains(body, []byte("partition")) {
		t.Fatalf("unrouted body carries a partition: %s", body)
	}
	for code := WireCommitted; code <= WireClosed; code++ {
		name := OutcomeName(code)
		back, ok := OutcomeCode(name)
		if !ok || back != code {
			t.Fatalf("OutcomeCode(OutcomeName(%d)) = %d, %v", code, back, ok)
		}
	}
	rep, err := DecodeHTTPReply([]byte(`{"outcome":"shed","elapsed_ns":12}`))
	if err != nil || rep.Outcome != WireShed || rep.Elapsed != 12 {
		t.Fatalf("DecodeHTTPReply = %+v, %v", rep, err)
	}
	if _, err := DecodeHTTPReply([]byte(`{"outcome":"wat"}`)); err == nil {
		t.Fatal("DecodeHTTPReply accepted an unknown outcome")
	}
}
