package serve

// The wire protocol, shared by the server and the serve/client library.
//
// Two transports carry the same request/reply shapes:
//
//   - HTTP/1.1 JSON on POST /invoke — ergonomic, curl-able, one request
//     per round trip.
//   - A compact length-prefixed binary protocol on a raw TCP listener —
//     pipelined (many requests in flight per connection, correlated by
//     id), built for the load generator.
//
// Binary framing, all fields big-endian:
//
//	frame   := u32 payloadLen | payload          (payloadLen ≤ MaxFrame)
//	request := u64 id | i32 partition | u64 deadlineNs
//	           | u16 procLen | proc bytes | u16 nargs | nargs × i64
//	reply   := u64 id | u8 outcome | u64 elapsedNs
//
// A negative partition means "unrouted" (the server spreads the request
// round-robin); a zero deadline means "server default".

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// errShortHeader marks a request too short to carry even an id; the
// server cannot correlate a reply, so it drops the connection.
var errShortHeader = errors.New("serve: request payload shorter than the fixed header")

// Wire outcome codes. HTTP carries the same outcomes as strings (see
// OutcomeName); the binary reply carries the byte.
const (
	// WireCommitted: the transaction committed.
	WireCommitted byte = iota

	// WireUserAbort: program-logic rollback — completed work, counted
	// with commits.
	WireUserAbort

	// WireDeadlined: abandoned past its deadline or retry budget.
	WireDeadlined

	// WireShed: rejected by backpressure — a full admission queue or a
	// full per-connection inflight window. Never executed.
	WireShed

	// WireRejected: malformed request (unknown procedure, bad
	// arguments). Never executed.
	WireRejected

	// WireClosed: refused because the server is draining.
	WireClosed
)

// OutcomeName returns the stable string form of a wire outcome code —
// the HTTP reply's "outcome" field.
func OutcomeName(b byte) string {
	switch b {
	case WireCommitted:
		return "committed"
	case WireUserAbort:
		return "user_abort"
	case WireDeadlined:
		return "deadlined"
	case WireShed:
		return "shed"
	case WireRejected:
		return "rejected"
	case WireClosed:
		return "closed"
	default:
		return fmt.Sprintf("outcome(%d)", b)
	}
}

// OutcomeCode is the inverse of OutcomeName: it maps an HTTP reply's
// outcome string back to the wire code.
func OutcomeCode(name string) (byte, bool) {
	switch name {
	case "committed":
		return WireCommitted, true
	case "user_abort":
		return WireUserAbort, true
	case "deadlined":
		return WireDeadlined, true
	case "shed":
		return WireShed, true
	case "rejected":
		return WireRejected, true
	case "closed":
		return WireClosed, true
	default:
		return 0, false
	}
}

// MaxFrame bounds a binary frame's payload; oversized frames poison the
// connection (the reader cannot resynchronize), so both ends enforce it.
const MaxFrame = 1 << 16

// MaxArgs bounds a request's argument list.
const MaxArgs = 1024

// InvokeRequest is the transport-independent request: invoke Proc (empty
// = an anonymous workload draw) with Args, optionally routed to
// Partition (negative = unrouted), abandoned after Deadline (zero =
// server default).
type InvokeRequest struct {
	Proc      string
	Args      []int64
	Partition int
	Deadline  time.Duration
}

// InvokeReply is the transport-independent reply: the outcome code and
// the server-side latency from arrival to completion. Err carries the
// server's explanation for WireRejected.
type InvokeReply struct {
	Outcome byte
	Elapsed time.Duration
	Err     string
}

// httpRequest is the JSON body of POST /invoke. Partition is a pointer
// so an absent field means "unrouted" rather than partition 0.
type httpRequest struct {
	Proc       string  `json:"proc,omitempty"`
	Args       []int64 `json:"args,omitempty"`
	Partition  *int    `json:"partition,omitempty"`
	DeadlineNS int64   `json:"deadline_ns,omitempty"`
}

// httpReply is the JSON body of every /invoke response, success or not.
type httpReply struct {
	Outcome   string `json:"outcome"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Error     string `json:"error,omitempty"`
}

// EncodeHTTPRequest renders the JSON body of POST /invoke. A negative
// partition is omitted (unrouted).
func EncodeHTTPRequest(req InvokeRequest) ([]byte, error) {
	body := httpRequest{
		Proc:       req.Proc,
		Args:       req.Args,
		DeadlineNS: int64(req.Deadline),
	}
	if req.Partition >= 0 {
		p := req.Partition
		body.Partition = &p
	}
	return json.Marshal(body)
}

// DecodeHTTPReply parses an /invoke response body back into the
// transport-independent reply.
func DecodeHTTPReply(data []byte) (InvokeReply, error) {
	var body httpReply
	if err := json.Unmarshal(data, &body); err != nil {
		return InvokeReply{}, fmt.Errorf("serve: bad /invoke reply body: %w", err)
	}
	code, ok := OutcomeCode(body.Outcome)
	if !ok {
		return InvokeReply{}, fmt.Errorf("serve: unknown outcome %q in /invoke reply", body.Outcome)
	}
	return InvokeReply{Outcome: code, Elapsed: time.Duration(body.ElapsedNS), Err: body.Error}, nil
}

// AppendRequest encodes one binary request payload (without the length
// prefix) onto buf.
func AppendRequest(buf []byte, id uint64, req InvokeRequest) ([]byte, error) {
	if len(req.Proc) > MaxFrame/2 {
		return buf, fmt.Errorf("serve: procedure name of %d bytes exceeds the frame bound", len(req.Proc))
	}
	if len(req.Args) > MaxArgs {
		return buf, fmt.Errorf("serve: %d arguments exceed the bound of %d", len(req.Args), MaxArgs)
	}
	part := int32(-1)
	if req.Partition >= 0 {
		if req.Partition > 1<<30 {
			return buf, fmt.Errorf("serve: partition %d out of range", req.Partition)
		}
		part = int32(req.Partition)
	}
	var dl uint64
	if req.Deadline > 0 {
		dl = uint64(req.Deadline)
	}
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(part))
	buf = binary.BigEndian.AppendUint64(buf, dl)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Proc)))
	buf = append(buf, req.Proc...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Args)))
	for _, a := range req.Args {
		buf = binary.BigEndian.AppendUint64(buf, uint64(a))
	}
	return buf, nil
}

// ParseRequest decodes a binary request payload.
func ParseRequest(payload []byte) (id uint64, req InvokeRequest, err error) {
	const fixed = 8 + 4 + 8 + 2
	if len(payload) < fixed {
		return 0, req, fmt.Errorf("%w: %d bytes, want at least %d", errShortHeader, len(payload), fixed)
	}
	id = binary.BigEndian.Uint64(payload)
	part := int32(binary.BigEndian.Uint32(payload[8:]))
	dl := binary.BigEndian.Uint64(payload[12:])
	procLen := int(binary.BigEndian.Uint16(payload[20:]))
	p := fixed
	if len(payload) < p+procLen+2 {
		return 0, req, fmt.Errorf("serve: truncated request (procedure name)")
	}
	req.Proc = string(payload[p : p+procLen])
	p += procLen
	nargs := int(binary.BigEndian.Uint16(payload[p:]))
	p += 2
	if nargs > MaxArgs {
		return 0, req, fmt.Errorf("serve: %d arguments exceed the bound of %d", nargs, MaxArgs)
	}
	if len(payload) != p+8*nargs {
		return 0, req, fmt.Errorf("serve: request payload is %d bytes, want %d for %d arguments", len(payload), p+8*nargs, nargs)
	}
	if nargs > 0 {
		req.Args = make([]int64, nargs)
		for i := range req.Args {
			req.Args[i] = int64(binary.BigEndian.Uint64(payload[p+8*i:]))
		}
	}
	req.Partition = int(part)
	req.Deadline = time.Duration(dl)
	return id, req, nil
}

// AppendReply encodes one binary reply payload (without the length
// prefix) onto buf. Binary replies do not carry the rejection text — the
// outcome byte is the whole story.
func AppendReply(buf []byte, id uint64, outcome byte, elapsed time.Duration) []byte {
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = append(buf, outcome)
	var e uint64
	if elapsed > 0 {
		e = uint64(elapsed)
	}
	return binary.BigEndian.AppendUint64(buf, e)
}

// ParseReply decodes a binary reply payload.
func ParseReply(payload []byte) (id uint64, rep InvokeReply, err error) {
	if len(payload) != 8+1+8 {
		return 0, rep, fmt.Errorf("serve: reply payload is %d bytes, want 17", len(payload))
	}
	id = binary.BigEndian.Uint64(payload)
	rep.Outcome = payload[8]
	rep.Elapsed = time.Duration(binary.BigEndian.Uint64(payload[9:]))
	return id, rep, nil
}

// ReadFrame reads one length-prefixed frame into buf (grown as needed)
// and returns the payload slice, valid until the next call.
func ReadFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte bound", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// WriteFrame writes one length-prefixed frame. Callers serialize writes
// per connection.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte bound", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}
