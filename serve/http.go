package serve

// The HTTP/1.1 JSON transport.
//
//	POST /invoke   — one invocation; JSON body (proc, args, partition,
//	                 deadline_ns), deadline also accepted as an
//	                 Abyss-Deadline header (Go duration string, wins
//	                 over the body). Every response, success or not,
//	                 carries the JSON reply shape {outcome, elapsed_ns,
//	                 error?}; backpressure maps to status codes: 429
//	                 shed, 503 draining, 400 rejected.
//	GET  /stats    — session-side admission counters and identity.
//	GET  /healthz  — liveness (200 "ok", 503 once draining).
//
// Each connection gets its own inflight window via ConnContext; since
// HTTP/1.1 serves one request per connection at a time this only bites
// pathological pipelining, but it keeps the backpressure contract
// uniform across transports.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"time"
)

type connWindowKey struct{}

func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.httpLn = ln
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ConnContext: func(ctx context.Context, c net.Conn) context.Context {
			return context.WithValue(ctx, connWindowKey{}, newWindow(s.window))
		},
	}
	go s.httpSrv.Serve(ln)
	return nil
}

// stopHTTP refuses new connections and waits for in-flight handlers.
func (s *Server) stopHTTP() {
	if s.httpSrv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.httpSrv.Shutdown(ctx)
}

// writeReply renders the uniform JSON reply with the outcome-derived
// status code.
func writeReply(w http.ResponseWriter, rep InvokeReply) {
	status := http.StatusOK
	switch rep.Outcome {
	case WireShed:
		status = http.StatusTooManyRequests
	case WireClosed:
		status = http.StatusServiceUnavailable
	case WireRejected:
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(httpReply{
		Outcome:   OutcomeName(rep.Outcome),
		ElapsedNS: elapsedNS(rep.Elapsed),
		Error:     rep.Err,
	})
}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeReply(w, InvokeReply{Outcome: WireClosed})
		return
	}
	win, _ := r.Context().Value(connWindowKey{}).(*window)
	if win != nil {
		if !win.tryAcquire() {
			s.session.NoteShed(1)
			writeReply(w, InvokeReply{Outcome: WireShed})
			return
		}
		defer win.release()
	}
	var body httpRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrame)).Decode(&body); err != nil {
		writeReply(w, InvokeReply{Outcome: WireRejected, Err: "bad JSON body: " + err.Error()})
		return
	}
	req := InvokeRequest{
		Proc:      body.Proc,
		Args:      body.Args,
		Partition: -1,
		Deadline:  time.Duration(body.DeadlineNS),
	}
	if body.Partition != nil {
		req.Partition = *body.Partition
	}
	if h := r.Header.Get("Abyss-Deadline"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			writeReply(w, InvokeReply{Outcome: WireRejected, Err: "bad Abyss-Deadline header: " + err.Error()})
			return
		}
		req.Deadline = d
	}
	if req.Deadline < 0 || (req.Partition < -1) {
		writeReply(w, InvokeReply{Outcome: WireRejected, Err: "deadline and partition must not be negative"})
		return
	}
	writeReply(w, s.invoke(req))
}

// statsReply is the GET /stats body.
type statsReply struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	Window   int    `json:"window"`
	Offered  uint64 `json:"offered"`
	Shed     uint64 `json:"shed"`
	Draining bool   `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	c := s.session.Counters()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statsReply{
		Scheme:   s.cfg.Scheme,
		Workload: s.cfg.Workload,
		Cores:    s.cfg.Cores,
		Window:   s.window,
		Offered:  c.Offered,
		Shed:     c.Shed,
		Draining: s.draining.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok"))
}
