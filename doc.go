// Package abyss1000 is a from-scratch Go reproduction of "Staring into
// the Abyss: An Evaluation of Concurrency Control with One Thousand
// Cores" (Yu, Bezerra, Pavlo, Devadas, Stonebraker — VLDB 2014, the
// DBx1000 paper).
//
// The repository contains a deterministic many-core machine simulator
// standing in for Graphite (internal/sim, internal/mesh), a lightweight
// main-memory DBMS (internal/core, internal/storage, internal/index),
// the paper's seven concurrency-control schemes (internal/cc/...), the
// six timestamp-allocation strategies (internal/tsalloc), both
// benchmarks (internal/workload/{ycsb,tpcc}), serializability checkers
// (internal/history), and a harness regenerating every table and figure
// of the paper's evaluation (internal/bench, cmd/abyss-bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the paper-vs-measured
// shape comparison. The benchmarks in bench_test.go exercise one
// experiment per paper table/figure at a reduced scale suitable for
// `go test -bench=.`.
package abyss1000
