// Package abyss1000 is a from-scratch Go reproduction of "Staring into
// the Abyss: An Evaluation of Concurrency Control with One Thousand
// Cores" (Yu, Bezerra, Pavlo, Devadas, Stonebraker — VLDB 2014, the
// DBx1000 paper).
//
// The repository contains a deterministic many-core machine simulator
// standing in for Graphite (internal/sim, internal/mesh), a lightweight
// main-memory DBMS (internal/core, internal/storage, internal/index),
// the paper's seven concurrency-control schemes (internal/cc/...), the
// six timestamp-allocation strategies (internal/tsalloc), both
// benchmarks (internal/workload/{ycsb,tpcc}), serializability checkers
// (internal/history), and a harness regenerating every table and figure
// of the paper's evaluation (bench, cmd/abyss-bench).
//
// The public embedding API is the abyss package: abyss.Open returns a
// DB, schemes and workloads resolve by name through registries
// (abyss.NewScheme, DB.BuildWorkload), custom workloads build on
// DB.CreateTable/CreateIndex/NewMix, and DB.Run validates configuration
// at the boundary. cmd/, examples/ and workloads/ consume only that
// API — enforced by importpurity_test.go — and workloads/smallbank (a
// SmallBank benchmark beyond the paper's two) is the reference external
// client.
//
// The evaluation harness is two-phase: figures enumerate one
// self-describing job per data point and a worker pool executes the flat
// job list (-parallel), with -json/-csv emitting every point's full
// result. Serial and parallel runs are byte-identical. EXPERIMENTS.md
// documents, per paper figure, the expected curve shapes and the exact
// command reproducing each.
//
// Observability goes beyond the paper's throughput-only evaluation:
// every Result carries a log2-bucketed commit-latency histogram
// (internal/stats.Histogram, p50/p95/p99/max) and per-transaction-type
// sub-results (Result.PerTxn, names flowing from TxnSpec registration or
// a workload's TxnTyper), and runs can be watched in flight via
// RunConfig.SampleEvery with an Observer or DB.RunStream's buffered
// sample channel — on both runtimes. All of it is accounting-only:
// observability_test.go pins that an observed, sampled run reproduces
// the golden signature and final Result byte-for-byte.
//
// The DBMS access path is closure-free and steady-state allocation-free
// (the paper's §4.1 malloc wall): schemes expose a buffer-returning
// WriteRow instead of a callback-taking Write, transient buffers come
// from per-worker arenas and recycle pools, and index buckets inline
// their first entries. BenchmarkTxnYCSB/BenchmarkTxnTPCC in
// bench_txn_test.go pin ~0 allocs per committed transaction, enforced by
// CI against a small fixed budget.
//
// See README.md for a tour of the packages and commands, and
// BENCH_sim.json for the simulator engine's benchmark trajectory. The
// benchmarks in bench_test.go exercise one experiment per paper
// table/figure at a reduced scale suitable for `go test -bench=.`;
// determinism_test.go pins the simulator's byte-identical-results
// guarantee against testdata/golden_sim.txt.
package abyss1000
