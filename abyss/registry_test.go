package abyss_test

import (
	"strings"
	"testing"

	"abyss1000/abyss"
)

// goldenSchemes is the scheme set the engine's determinism golden
// (bench.GoldenSignature / testdata/golden_sim.txt) and the smoke tests
// are built around: the paper's seven, in Table 1 order. The registry's
// paper tier must stay exactly in sync with it.
var goldenSchemes = []string{"DL_DETECT", "NO_WAIT", "WAIT_DIE", "TIMESTAMP", "MVCC", "OCC", "HSTORE"}

// TestSchemeRegistryCompleteness checks that every registered scheme
// constructs, round-trips its name, and that the paper tier matches the
// golden/smoke scheme set.
func TestSchemeRegistryCompleteness(t *testing.T) {
	paper := abyss.PaperSchemes()
	if len(paper) != len(goldenSchemes) {
		t.Fatalf("paper schemes = %v, want %v", paper, goldenSchemes)
	}
	for i, want := range goldenSchemes {
		if paper[i] != want {
			t.Fatalf("paper schemes = %v, want %v", paper, goldenSchemes)
		}
	}

	all := abyss.Schemes()
	if len(all) < len(paper) {
		t.Fatalf("Schemes() %v shorter than PaperSchemes() %v", all, paper)
	}
	for _, name := range all {
		s, err := abyss.NewScheme(name)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if got := s.Name(); got != name {
			t.Fatalf("NewScheme(%q).Name() = %q: registry name does not round-trip", name, got)
		}
		// A second instance must be distinct: registry constructors may
		// not cache (schemes carry per-DB state).
		s2, err := abyss.NewScheme(name)
		if err != nil {
			t.Fatalf("NewScheme(%q) second call: %v", name, err)
		}
		if s == s2 {
			t.Fatalf("NewScheme(%q) returned the same instance twice", name)
		}
	}

	// Every info entry matches its position and has a description.
	for i, info := range abyss.SchemeInfos() {
		if info.Name != all[i] {
			t.Fatalf("SchemeInfos()[%d] = %q, want %q", i, info.Name, all[i])
		}
		if info.Desc == "" {
			t.Fatalf("scheme %q has no description", info.Name)
		}
	}
}

// TestSchemeRegistryErrors checks unknown names and duplicate
// registration are rejected with the valid set in the message.
func TestSchemeRegistryErrors(t *testing.T) {
	_, err := abyss.NewScheme("2PL")
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "DL_DETECT") {
		t.Fatalf("unknown-scheme error should list valid names, got: %v", err)
	}
	if err := abyss.RegisterScheme(abyss.SchemeInfo{
		Name: "MVCC",
		New:  func(abyss.SchemeConfig) abyss.Scheme { return nil },
	}); err == nil {
		t.Fatal("duplicate scheme registration accepted")
	}
	if err := abyss.RegisterScheme(abyss.SchemeInfo{Name: "NEW_SCHEME"}); err == nil {
		t.Fatal("scheme registration without constructor accepted")
	}
}

// TestWorkloadRegistry checks the built-in workloads build at tiny scale
// and that defaults and errors behave.
func TestWorkloadRegistry(t *testing.T) {
	names := abyss.Workloads()
	for _, want := range []string{"ycsb", "tpcc", "counter", "pair", "register"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("workload %q missing from registry %v", want, names)
		}
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			p, err := abyss.DefaultWorkloadParams(name)
			if err != nil {
				t.Fatal(err)
			}
			// Shrink the big knobs so registry-wide builds stay fast.
			if p.Rows > 1024 {
				p.Rows = 1024
			}
			if p.Accounts > 1024 {
				p.Accounts = 1024
			}
			if p.Warehouses > 1 {
				p.Warehouses = 1
			}
			wl, err := db.BuildWorkload(name, p)
			if err != nil {
				t.Fatalf("BuildWorkload(%q) with defaults: %v", name, err)
			}
			if wl == nil {
				t.Fatalf("BuildWorkload(%q) returned nil", name)
			}
		})
	}

	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildWorkload("tatp", abyss.WorkloadParams{}); err == nil {
		t.Fatal("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "ycsb") {
		t.Fatalf("unknown-workload error should list valid names, got: %v", err)
	}
	if _, err := abyss.DefaultWorkloadParams("nope"); err == nil {
		t.Fatal("DefaultWorkloadParams accepted an unknown name")
	}
}

// TestWorkloadValidation checks out-of-range parameters become errors,
// not NaNs or panics.
func TestWorkloadValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*abyss.WorkloadParams)
	}{
		{"ycsb", func(p *abyss.WorkloadParams) { p.ReadPct = 1.5 }},
		{"ycsb", func(p *abyss.WorkloadParams) { p.Theta = 1.0 }},
		{"ycsb", func(p *abyss.WorkloadParams) { p.Theta = -0.1 }},
		{"ycsb", func(p *abyss.WorkloadParams) { p.MPFraction = 2 }},
		{"ycsb", func(p *abyss.WorkloadParams) { p.Rows = 0 }},
		{"ycsb", func(p *abyss.WorkloadParams) { p.ReqPerTxn = 0 }},
		{"tpcc", func(p *abyss.WorkloadParams) { p.Warehouses = 0 }},
		{"tpcc", func(p *abyss.WorkloadParams) { p.PaymentPct = -0.5 }},
	}
	for _, c := range cases {
		db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		p, err := abyss.DefaultWorkloadParams(c.name)
		if err != nil {
			t.Fatal(err)
		}
		c.mut(&p)
		if _, err := db.BuildWorkload(c.name, p); err == nil {
			t.Fatalf("%s with %+v should be rejected", c.name, p)
		}
	}
}

// TestTSMethodRegistry checks every advertised method parses and
// round-trips through an allocator.
func TestTSMethodRegistry(t *testing.T) {
	names := abyss.TSMethodNames()
	methods := abyss.TSMethods()
	if len(names) != len(methods) {
		t.Fatalf("TSMethodNames (%d) and TSMethods (%d) disagree", len(names), len(methods))
	}
	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		m, err := abyss.ParseTSMethod(n)
		if err != nil {
			t.Fatalf("ParseTSMethod(%q): %v", n, err)
		}
		if m != methods[i] {
			t.Fatalf("ParseTSMethod(%q) = %v, want %v (order mismatch)", n, m, methods[i])
		}
		if a := db.NewTimestampAllocator(m); a.Method() != m {
			t.Fatalf("allocator for %q reports method %v", n, a.Method())
		}
	}
	if _, err := abyss.ParseTSMethod("sundial"); err == nil {
		t.Fatal("unknown ts method accepted")
	} else if !strings.Contains(err.Error(), "atomic") {
		t.Fatalf("unknown-method error should list valid names, got: %v", err)
	}
}

// TestOpenValidation checks Options validation.
func TestOpenValidation(t *testing.T) {
	if _, err := abyss.Open(abyss.Options{Cores: 0}); err == nil {
		t.Fatal("Cores=0 accepted")
	}
	if _, err := abyss.Open(abyss.Options{Cores: abyss.MaxCores + 1}); err == nil {
		t.Fatal("Cores beyond MaxCores accepted")
	}
	if _, err := abyss.Open(abyss.Options{Cores: 4, Runtime: "graphite"}); err == nil {
		t.Fatal("unknown runtime accepted")
	}
	db, err := abyss.Open(abyss.Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.Options().Runtime != abyss.RuntimeSim {
		t.Fatalf("default runtime = %q, want sim", db.Options().Runtime)
	}
}

// TestRunValidation checks the Run boundary: nil arguments, zero windows
// and double runs all error instead of panicking or dividing by zero.
func TestRunValidation(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	p.Rows = 512
	wl, err := db.BuildWorkload("ycsb", p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.Run(nil, wl, db.DefaultRunConfig()); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := db.Run(s, nil, db.DefaultRunConfig()); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := db.Run(s, wl, abyss.RunConfig{MeasureCycles: 0}); err == nil {
		t.Fatal("zero measurement window accepted")
	}

	res, err := db.Run(s, wl, abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if _, err := db.Run(s, wl, abyss.RunConfig{MeasureCycles: 100_000}); err == nil {
		t.Fatal("second Run on the same DB accepted")
	}
}

// TestGoSharesRunGuard pins that Go consumes the same single measurement
// as Run: the simulated clock starts from zero once, so a second Go (or
// Go after Run) must error instead of tripping the engine's internal
// reuse panic.
func TestGoSharesRunGuard(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Go(nil); err == nil {
		t.Fatal("nil body accepted")
	}
	if err := db.Go(func(p abyss.Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := db.Go(func(p abyss.Proc) {}); err == nil {
		t.Fatal("second Go on the same DB accepted")
	}
	p, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	p.Rows = 256
	wl, err := db.BuildWorkload("ycsb", p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(s, wl, abyss.RunConfig{MeasureCycles: 100_000}); err == nil {
		t.Fatal("Run after Go on the same DB accepted")
	}
}

// TestCreateTableValidation checks the declarative schema surface.
func TestCreateTableValidation(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(abyss.TableSpec{Name: "", Cols: []abyss.Col{{Name: "K", Width: 8}}, Capacity: 8}); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := db.CreateTable(abyss.TableSpec{Name: "T", Capacity: 8}); err == nil {
		t.Fatal("table without columns accepted")
	}
	if _, err := db.CreateTable(abyss.TableSpec{Name: "T", Cols: []abyss.Col{{Name: "K", Width: 0}}, Capacity: 8}); err == nil {
		t.Fatal("zero-width column accepted")
	}
	if _, err := db.CreateTable(abyss.TableSpec{Name: "T", Cols: []abyss.Col{{Name: "K", Width: 8}}, Capacity: 4, Loaded: 8}); err == nil {
		t.Fatal("loaded > capacity accepted")
	}
	tbl, err := db.CreateTable(abyss.TableSpec{Name: "T", Cols: []abyss.Col{{Name: "K", Width: 8}}, Capacity: 8, Loaded: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(abyss.TableSpec{Name: "T", Cols: []abyss.Col{{Name: "K", Width: 8}}, Capacity: 8}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateIndex("T_PK", tbl, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T_PK", tbl, 8); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := db.Table("T"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("U"); err == nil {
		t.Fatal("missing table lookup should error")
	}
	if _, err := db.Index("T_PK"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Index("U_PK"); err == nil {
		t.Fatal("missing index lookup should error")
	}
}
