package abyss_test

// Scheme smoke tests over the public API — previously internal/core's
// smoke_test, now driven entirely by the registry: every scheme in
// abyss.PaperSchemes() commits work on both runtimes, simulated runs are
// deterministic, and read-only 2PL never aborts. Because the loop ranges
// over the registry, a newly registered paper-tier scheme is smoke-tested
// automatically.

import (
	"testing"

	"abyss1000/abyss"
)

// smokeParams returns a small YCSB configuration, partitioned when the
// scheme requires it.
func smokeParams(t *testing.T, scheme string) abyss.WorkloadParams {
	t.Helper()
	p, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	p.Rows = 4096
	p.FieldSize = 20
	p.Theta = 0.6
	if scheme == "HSTORE" {
		p.Partitioned = true
		p.MPFraction = 0.2
		p.MPParts = 2
	}
	return p
}

// runSim opens a fresh simulated DB and runs one measurement.
func runSim(t *testing.T, cores int, scheme string, wp abyss.WorkloadParams, rc abyss.RunConfig) abyss.Result {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: cores, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := db.BuildWorkload("ycsb", wp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(s, wl, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchemesSmokeSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 100_000, MeasureCycles: 500_000, AbortBackoff: 500}
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			res := runSim(t, 8, name, smokeParams(t, name), rc)
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing: %+v", name, res)
			}
			if name == "HSTORE" && res.Aborts != 0 {
				t.Fatalf("HSTORE must not have CC aborts on YCSB, got %d", res.Aborts)
			}
			t.Logf("%s", res.String())
		})
	}
}

func TestSchemesDeterministicSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 300_000, AbortBackoff: 500}
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			a := runSim(t, 4, name, smokeParams(t, name), rc)
			b := runSim(t, 4, name, smokeParams(t, name), rc)
			if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Tuples != b.Tuples {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

func TestSchemesSmokeNative(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 2_000_000, MeasureCycles: 20_000_000, AbortBackoff: 500} // ns
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			wl, err := db.BuildWorkload("ycsb", smokeParams(t, name))
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Run(s, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing natively", name)
			}
		})
	}
}

func TestReadOnlyNoAborts2PL(t *testing.T) {
	wp := smokeParams(t, "DL_DETECT")
	wp.ReadPct = 1.0
	rc := abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 300_000}
	res := runSim(t, 8, "DL_DETECT", wp, rc)
	if res.Aborts != 0 {
		t.Fatalf("read-only workload should not abort under 2PL, got %d aborts", res.Aborts)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}
