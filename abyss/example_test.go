package abyss_test

import (
	"fmt"
	"log"

	"abyss1000/abyss"
)

// Example embeds the engine end to end: open a simulated 8-core DB, build
// the YCSB workload and the MVCC scheme by name, run a 0.5 ms
// measurement, and read the result. The simulator is deterministic, so
// the printed facts are stable across machines and runs.
func Example() {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	params, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		log.Fatal(err)
	}
	params.Rows = 4096
	params.Theta = 0.6
	workload, err := db.BuildWorkload("ycsb", params)
	if err != nil {
		log.Fatal(err)
	}

	scheme, err := abyss.NewScheme("MVCC")
	if err != nil {
		log.Fatal(err)
	}

	res, err := db.Run(scheme, workload, abyss.RunConfig{
		WarmupCycles:  100_000,
		MeasureCycles: 500_000,
		AbortBackoff:  1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scheme:", res.Scheme)
	fmt.Println("workers:", res.Workers)
	fmt.Println("committed:", res.Commits > 0)
	fmt.Println("throughput finite:", res.Throughput() > 0)
	// Output:
	// scheme: MVCC
	// workers: 8
	// committed: true
	// throughput finite: true
}
