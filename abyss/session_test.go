package abyss_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abyss1000/abyss"
)

func serveYCSB(t *testing.T, cores int) (*abyss.DB, abyss.Workload, abyss.Scheme) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: cores, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	p.Rows = 4096
	wl, err := db.BuildWorkload("ycsb", p)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	return db, wl, scheme
}

// TestSessionInvokeDrain pins the Session accounting contract: every
// invocation gets exactly one reply, and the drained Result's
// Commits/Deadlined/Offered reconcile with the replies observed by the
// submitters.
func TestSessionInvokeDrain(t *testing.T) {
	db, wl, scheme := serveYCSB(t, 2)
	s, err := db.Serve(scheme, wl, abyss.ServeConfig{AbortBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	const clients, per = 4, 50
	var committed, deadlined atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				inv := abyss.Invocation{}
				if i%2 == 0 {
					inv.Routed = true
					inv.Partition = c % s.Workers()
				}
				rep, err := s.Invoke(inv)
				if err != nil {
					t.Errorf("Invoke: %v", err)
					return
				}
				switch rep.Outcome {
				case abyss.OutcomeCommitted, abyss.OutcomeUserAbort:
					committed.Add(1)
				case abyss.OutcomeDeadlined:
					deadlined.Add(1)
				}
				if rep.Elapsed <= 0 {
					t.Errorf("Elapsed = %v, want > 0", rep.Elapsed)
				}
			}
		}(c)
	}
	wg.Wait()

	res, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != committed.Load() {
		t.Fatalf("Result.Commits = %d, committed replies = %d", res.Commits, committed.Load())
	}
	if res.Deadlined != deadlined.Load() {
		t.Fatalf("Result.Deadlined = %d, deadlined replies = %d", res.Deadlined, deadlined.Load())
	}
	if res.Offered != clients*per {
		t.Fatalf("Result.Offered = %d, want %d", res.Offered, clients*per)
	}
	if res.Shed != 0 {
		t.Fatalf("Result.Shed = %d, want 0", res.Shed)
	}
	if res.MeasureCycles == 0 || res.MeasureCycles >= uint64(1)<<62 {
		t.Fatalf("MeasureCycles = %d, want the actual serving span", res.MeasureCycles)
	}
	if res.Latency.Count() != res.Commits {
		t.Fatalf("latency count %d != commits %d", res.Latency.Count(), res.Commits)
	}
	if res.GoodputTPS() <= 0 {
		t.Fatalf("GoodputTPS = %g, want > 0", res.GoodputTPS())
	}

	// Drain is idempotent and the session refuses new work.
	res2, err := s.Drain()
	if err != nil || res2.MeasureCycles != res.MeasureCycles || res2.Commits != res.Commits {
		t.Fatalf("second Drain = (%+v, %v), want the first result", res2, err)
	}
	if _, err := s.Invoke(abyss.Invocation{}); !errors.Is(err, abyss.ErrSessionClosed) {
		t.Fatalf("Invoke after Drain = %v, want ErrSessionClosed", err)
	}
}

// slowTxn sleeps in its body — real wall time on the native runtime —
// and binds its sleep via ArgBinder so tests can park a worker.
type slowTxn struct {
	table *abyss.Table
	idx   *abyss.Index
	key   uint64
	sleep time.Duration
}

func (s *slowTxn) Generate(p abyss.Proc) { s.key = uint64(p.Rand().Intn(64)); s.sleep = 0 }

func (s *slowTxn) BindArgs(args []int64) error {
	if len(args) != 2 {
		return fmt.Errorf("want [key, sleepNs], got %d args", len(args))
	}
	if args[0] < 0 || args[0] >= 64 {
		return fmt.Errorf("key %d out of range", args[0])
	}
	s.key = uint64(args[0])
	s.sleep = time.Duration(args[1])
	return nil
}

func (s *slowTxn) Run(tx *abyss.TxnCtx) error {
	if s.sleep > 0 {
		time.Sleep(s.sleep)
	}
	slot, ok := tx.Lookup(s.idx, s.key)
	if !ok {
		return fmt.Errorf("key %d not found", s.key)
	}
	row, err := tx.Read(s.table, slot)
	if err != nil {
		return err
	}
	_ = row
	return nil
}

func (s *slowTxn) Partitions() []int { return nil }

// plainTxn has no ArgBinder, to pin the rejection path.
type plainTxn struct {
	table *abyss.Table
	idx   *abyss.Index
	key   uint64
}

func (t *plainTxn) Generate(p abyss.Proc) { t.key = uint64(p.Rand().Intn(64)) }

func (t *plainTxn) Run(tx *abyss.TxnCtx) error {
	slot, ok := tx.Lookup(t.idx, t.key)
	if !ok {
		return fmt.Errorf("key %d not found", t.key)
	}
	_, err := tx.Read(t.table, slot)
	return err
}

func (t *plainTxn) Partitions() []int { return nil }

func serveMix(t *testing.T, cores int) (*abyss.DB, *abyss.Mix) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: cores, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	table, err := db.CreateTable(abyss.TableSpec{
		Name:     "T",
		Cols:     []abyss.Col{{Name: "K", Width: 8}, {Name: "V", Width: 8}},
		Capacity: 64, Loaded: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("T_PK", table, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		row := table.LoadRow(i)
		table.Schema.PutU64(row, 0, uint64(i))
		idx.LoadInsert(uint64(i), i)
	}
	mix, err := db.NewMix(
		abyss.TxnSpec{Name: "touch", Weight: 1, New: func(int) abyss.Txn { return &slowTxn{table: table, idx: idx} }},
		abyss.TxnSpec{Name: "plain", Weight: 1, New: func(int) abyss.Txn { return &plainTxn{table: table, idx: idx} }},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db, mix
}

// TestSessionProceduresAndArgs pins the stored-procedure surface: named
// invocation, ArgBinder binding, and the rejection paths (unknown
// procedure, args on an anonymous draw, args without a binder).
func TestSessionProceduresAndArgs(t *testing.T) {
	db, mix := serveMix(t, 2)
	scheme, err := abyss.NewScheme("DL_DETECT")
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Serve(scheme, mix, abyss.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	if got := s.Procedures(); len(got) != 2 || got[0] != "touch" {
		t.Fatalf("Procedures = %v", got)
	}
	rep, err := s.Invoke(abyss.Invocation{Proc: "touch", Args: []int64{5, 0}, Routed: true, Partition: 1})
	if err != nil || rep.Outcome != abyss.OutcomeCommitted {
		t.Fatalf("touch(5) = (%+v, %v), want committed", rep, err)
	}
	if _, err := s.Invoke(abyss.Invocation{Proc: "nope"}); err == nil || !strings.Contains(err.Error(), "no procedure") {
		t.Fatalf("unknown proc err = %v", err)
	}
	if _, err := s.Invoke(abyss.Invocation{Args: []int64{1}}); err == nil || !strings.Contains(err.Error(), "anonymous") {
		t.Fatalf("anonymous-with-args err = %v", err)
	}
	if _, err := s.Invoke(abyss.Invocation{Proc: "plain", Args: []int64{1, 2}}); err == nil || !strings.Contains(err.Error(), "ArgBinder") {
		t.Fatalf("no-binder err = %v", err)
	}
	if _, err := s.Invoke(abyss.Invocation{Proc: "touch", Args: []int64{999, 0}}); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("bad-args err = %v", err)
	}
	if _, err := s.Invoke(abyss.Invocation{Routed: true, Partition: -1}); err == nil {
		t.Fatal("negative partition accepted")
	}
}

// TestSessionShedAndDeadline drives a session with one worker, a tiny
// queue and a parked worker: admission overflow sheds with ErrShed, and
// a queued invocation whose deadline lapses comes back OutcomeDeadlined
// without executing.
func TestSessionShedAndDeadline(t *testing.T) {
	db, mix := serveMix(t, 1)
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Serve(scheme, mix, abyss.ServeConfig{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Park the single worker for 100 ms.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Invoke(abyss.Invocation{Proc: "touch", Args: []int64{1, int64(100 * time.Millisecond)}}); err != nil {
			t.Errorf("parked invoke: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the worker pick it up

	// The queue holds one; a second concurrent submission must shed.
	type outcome struct {
		rep abyss.Reply
		err error
	}
	done := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rep, err := s.Invoke(abyss.Invocation{Proc: "touch", Args: []int64{2, 0}, Deadline: time.Nanosecond})
			done <- outcome{rep, err}
		}()
	}
	var sheds, deadlined int
	for i := 0; i < 2; i++ {
		switch o := <-done; {
		case errors.Is(o.err, abyss.ErrShed):
			sheds++
		case o.err == nil && o.rep.Outcome == abyss.OutcomeDeadlined:
			deadlined++
		default:
			t.Fatalf("unexpected outcome (%+v, %v)", o.rep, o.err)
		}
	}
	if sheds != 1 || deadlined != 1 {
		t.Fatalf("sheds = %d, deadlined = %d, want 1 and 1 (queue depth 1, 1ns deadline)", sheds, deadlined)
	}
	wg.Wait()

	s.NoteShed(3)
	res, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 1+3 {
		t.Fatalf("Result.Shed = %d, want 4 (1 admission + 3 noted)", res.Shed)
	}
	if res.Deadlined != 1 {
		t.Fatalf("Result.Deadlined = %d, want 1 (queued past its 1ns deadline)", res.Deadlined)
	}
	if c := s.Counters(); c.Offered != res.Offered || c.Shed != res.Shed {
		t.Fatalf("Counters %+v disagree with Result (offered %d, shed %d)", c, res.Offered, res.Shed)
	}
}

// TestServeValidation pins the front-door validation errors.
func TestServeValidation(t *testing.T) {
	simDB, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := abyss.DefaultWorkloadParams("ycsb")
	p.Rows = 1024
	wl, err := simDB.BuildWorkload("ycsb", p)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := abyss.NewScheme("NO_WAIT")
	if _, err := simDB.Serve(scheme, wl, abyss.ServeConfig{}); err == nil || !strings.Contains(err.Error(), "native") {
		t.Fatalf("sim Serve err = %v, want native-runtime requirement", err)
	}

	db, wl2, scheme2 := serveYCSB(t, 1)
	if _, err := db.Serve(scheme2, wl2, abyss.ServeConfig{QueueDepth: -1}); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
	if _, err := db.Serve(scheme2, wl2, abyss.ServeConfig{RetryLimit: -1}); err == nil {
		t.Fatal("negative RetryLimit accepted")
	}
	// The DB's single measurement is still unclaimed after failed
	// validation; a session claims it and a second Serve errors.
	s, err := db.Serve(scheme2, wl2, abyss.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	if _, err := db.Serve(scheme2, wl2, abyss.ServeConfig{}); err == nil || !strings.Contains(err.Error(), "already ran") {
		t.Fatalf("second Serve err = %v, want already-ran", err)
	}
}
