package abyss

import (
	"fmt"

	"abyss1000/internal/history"
)

// The instrumented correctness workloads (abyss1000/internal/history) in
// the public registry: counter (lost-update pressure), pair (fractured
// reads) and register (unique-value read/write traces). They were built
// for the scheme conformance tests; registering them makes the same
// contention shapes runnable from abyss-sim — in particular together
// with -check, which layers the serializability verdict on top:
//
//	abyss-sim -check -workload counter -scheme NO_WAIT -cores 8 -seed 3
//
// Params: Rows is the counter/register count (for pair, the pair count);
// ReqPerTxn is the accesses per transaction (counter, register).
func init() {
	MustRegisterWorkload(WorkloadInfo{
		Name:      "counter",
		Desc:      "Counter: read-modify-write increments over a small counter array (correctness extension)",
		Extension: true,
		Defaults:  func() WorkloadParams { return WorkloadParams{Rows: 64, ReqPerTxn: 4} },
		Build: func(db *DB, p WorkloadParams) (Workload, error) {
			if err := histRowsPerTxn("counter", p); err != nil {
				return nil, err
			}
			return history.NewCounterWorkload(db.inner, p.Rows, p.ReqPerTxn), nil
		},
	})
	MustRegisterWorkload(WorkloadInfo{
		Name:      "pair",
		Desc:      "Pair: atomic pair increments vs. pair readers (correctness extension)",
		Extension: true,
		Defaults:  func() WorkloadParams { return WorkloadParams{Rows: 32} },
		Build: func(db *DB, p WorkloadParams) (Workload, error) {
			if p.Rows <= 0 {
				return nil, fmt.Errorf("abyss: pair Rows (the pair count) must be positive, got %d", p.Rows)
			}
			return history.NewPairWorkload(db.inner, p.Rows), nil
		},
	})
	MustRegisterWorkload(WorkloadInfo{
		Name:      "register",
		Desc:      "Register: unique-value writes with read/write trace logging (correctness extension)",
		Extension: true,
		Defaults:  func() WorkloadParams { return WorkloadParams{Rows: 64, ReqPerTxn: 4} },
		Build: func(db *DB, p WorkloadParams) (Workload, error) {
			if err := histRowsPerTxn("register", p); err != nil {
				return nil, err
			}
			return history.NewRegisterWorkload(db.inner, p.Rows, p.ReqPerTxn), nil
		},
	})
}

// histRowsPerTxn validates the shared Rows/ReqPerTxn pair.
func histRowsPerTxn(name string, p WorkloadParams) error {
	if p.Rows <= 0 {
		return fmt.Errorf("abyss: %s Rows must be positive, got %d", name, p.Rows)
	}
	if p.ReqPerTxn <= 0 || p.ReqPerTxn > p.Rows {
		return fmt.Errorf("abyss: %s ReqPerTxn must be in [1, Rows=%d], got %d", name, p.Rows, p.ReqPerTxn)
	}
	return nil
}
