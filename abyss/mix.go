package abyss

import (
	"fmt"
	"reflect"
)

// Generator is an optional interface for Txn. When a transaction returned
// by a Mix implements it, Generate is called with the drawing worker's
// Proc before each execution so the transaction can draw fresh inputs
// from the worker's deterministic RNG (p.Rand()). Transactions without it
// must be self-generating inside Run.
type Generator interface {
	Generate(p Proc)
}

// TxnSpec registers one stored procedure in a Mix.
type TxnSpec struct {
	// Name identifies the procedure in errors and tooling.
	Name string

	// Weight is the procedure's relative draw frequency (any positive
	// scale; weights are normalized over the Mix).
	Weight float64

	// New constructs the per-worker transaction instance. It is called
	// once per worker at Mix build time; the instance is reused for every
	// draw on that worker (the engine's zero-allocation convention), with
	// Generate refreshing its inputs per execution.
	New func(worker int) Txn
}

// Mix is a Workload drawing weighted stored procedures: the declarative
// way to define a custom workload against the public API (see
// abyss1000/workloads/smallbank for a complete client). Draws use the
// worker's own RNG, so a Mix is deterministic per (seed, worker) like the
// built-in workloads.
type Mix struct {
	names []string
	cum   []float64   // cumulative normalized weights
	txns  [][]Txn     // [worker][spec]
	kinds map[Txn]int // instance -> spec index, for TxnTypeOf
}

// NewMix validates specs and instantiates every procedure once per
// worker.
func (db *DB) NewMix(specs ...TxnSpec) (*Mix, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("abyss: a Mix needs at least one TxnSpec")
	}
	total := 0.0
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("abyss: TxnSpec %d needs a name", i)
		}
		if s.New == nil {
			return nil, fmt.Errorf("abyss: TxnSpec %q needs a constructor", s.Name)
		}
		if s.Weight < 0 {
			return nil, fmt.Errorf("abyss: TxnSpec %q weight must be non-negative, got %g", s.Name, s.Weight)
		}
		total += s.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("abyss: a Mix needs at least one positive weight")
	}
	m := &Mix{
		names: make([]string, len(specs)),
		cum:   make([]float64, len(specs)),
		txns:  make([][]Txn, db.Cores()),
		kinds: make(map[Txn]int, len(specs)*db.Cores()),
	}
	acc := 0.0
	for i, s := range specs {
		m.names[i] = s.Name
		acc += s.Weight / total
		m.cum[i] = acc
	}
	m.cum[len(specs)-1] = 1 // immune to rounding
	for w := range m.txns {
		m.txns[w] = make([]Txn, len(specs))
		for i, s := range specs {
			t := s.New(w)
			if t == nil {
				return nil, fmt.Errorf("abyss: TxnSpec %q constructor returned nil for worker %d", s.Name, w)
			}
			m.txns[w][i] = t
			// Per-type attribution needs to recognise instances at
			// commit time. Pointer transactions (the documented
			// reuse-one-object-per-worker pattern) always work; value
			// types work as long as no two specs produce equal values.
			// Where identity is unknowable — non-comparable types, or
			// the same value registered under two specs — attribution
			// degrades to none rather than rejecting a workload that
			// ran fine before per-type results existed.
			if m.kinds != nil {
				if !reflect.TypeOf(t).Comparable() {
					m.kinds = nil
				} else if prev, dup := m.kinds[t]; dup && prev != i {
					m.kinds = nil
				} else {
					m.kinds[t] = i
				}
			}
		}
	}
	return m, nil
}

// Procedures returns the registered procedure names in spec order.
func (m *Mix) Procedures() []string {
	return append([]string(nil), m.names...)
}

// TxnTypes implements TxnTyper: the spec names, in spec order. The
// returned slice is shared; callers must not mutate it. It returns nil —
// no per-type attribution, so Result.PerTxn stays empty rather than
// misleadingly zero — when transaction instances cannot be told apart
// (non-comparable Txn types, or equal values registered under two
// specs); the reusable-pointer-per-worker pattern always attributes.
func (m *Mix) TxnTypes() []string {
	if m.kinds == nil {
		return nil
	}
	return m.names
}

// TxnTypeOf implements TxnTyper: the spec index of a transaction
// instance this Mix created, or -1 for a foreign transaction.
func (m *Mix) TxnTypeOf(t Txn) int {
	if m.kinds == nil {
		return -1
	}
	if k, ok := m.kinds[t]; ok {
		return k
	}
	return -1
}

// Next implements Workload: draw a procedure by weight with p's RNG,
// refresh its inputs via Generate when implemented, and hand it to the
// engine.
func (m *Mix) Next(p Proc) Txn {
	r := p.Rand().Float64()
	row := m.txns[p.ID()]
	i := 0
	for i < len(m.cum)-1 && r >= m.cum[i] {
		i++
	}
	t := row[i]
	if g, ok := t.(Generator); ok {
		g.Generate(p)
	}
	return t
}

var (
	_ Workload = (*Mix)(nil)
	_ TxnTyper = (*Mix)(nil)
)
