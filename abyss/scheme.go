package abyss

import (
	"fmt"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/tsalloc"
)

// SchemeConfig carries the knobs a scheme constructor may consume. The
// zero value is the paper's default configuration.
type SchemeConfig struct {
	// TS is the timestamp-allocation method used by schemes that draw
	// per-transaction timestamps (WAIT_DIE and all T/O-based schemes).
	// Defaults to TSAtomic, the paper's DBMS default.
	TS TSMethod
}

// SchemeOption mutates a SchemeConfig.
type SchemeOption func(*SchemeConfig)

// WithTSMethod selects the timestamp-allocation method (see ParseTSMethod
// and the TS* constants).
func WithTSMethod(m TSMethod) SchemeOption {
	return func(c *SchemeConfig) { c.TS = m }
}

// SchemeInfo is one scheme registry entry.
type SchemeInfo struct {
	// Name is the registry key and the value Scheme.Name returns.
	Name string

	// Desc is a one-line description for listings.
	Desc string

	// Extension marks schemes beyond the paper's seven (the §6.1 hybrid,
	// ablation variants, and anything registered by embedders).
	Extension bool

	// New constructs a fresh scheme instance.
	New func(cfg SchemeConfig) Scheme
}

// schemeRegistry holds entries in registration order: the paper's seven
// first (Table 1 order), then extensions.
var schemeRegistry []SchemeInfo

func init() {
	builtin := []SchemeInfo{
		{Name: "DL_DETECT", Desc: "2PL with deadlock detection",
			New: func(cfg SchemeConfig) Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }},
		{Name: "NO_WAIT", Desc: "2PL with non-waiting deadlock prevention",
			New: func(cfg SchemeConfig) Scheme { return twopl.New(twopl.NoWait, twopl.Options{}) }},
		{Name: "WAIT_DIE", Desc: "2PL with wait-and-die deadlock prevention",
			New: func(cfg SchemeConfig) Scheme { return twopl.New(twopl.WaitDie, twopl.Options{TsMethod: cfg.TS}) }},
		{Name: "TIMESTAMP", Desc: "Basic T/O algorithm",
			New: func(cfg SchemeConfig) Scheme { return to.New(cfg.TS) }},
		{Name: "MVCC", Desc: "Multi-version T/O",
			New: func(cfg SchemeConfig) Scheme { return mvcc.New(cfg.TS) }},
		{Name: "OCC", Desc: "Optimistic concurrency control",
			New: func(cfg SchemeConfig) Scheme { return occ.New(cfg.TS) }},
		{Name: "HSTORE", Desc: "T/O with partition-level locking",
			New: func(cfg SchemeConfig) Scheme { return hstore.New(cfg.TS) }},
		{Name: "ADAPTIVE", Desc: "Extension: §6.1 DL_DETECT/NO_WAIT hybrid", Extension: true,
			New: func(cfg SchemeConfig) Scheme { return twopl.NewAdaptive(twopl.Options{}) }},
		{Name: "OCC_CENTRAL", Desc: "Ablation: OCC with centralized validation", Extension: true,
			New: func(cfg SchemeConfig) Scheme { return occ.NewCentral(cfg.TS) }},
	}
	for _, info := range builtin {
		MustRegisterScheme(info)
	}
}

// RegisterScheme adds a scheme to the registry. It errors on an empty
// name, a nil constructor, or a duplicate registration.
func RegisterScheme(info SchemeInfo) error {
	if info.Name == "" {
		return fmt.Errorf("abyss: scheme registration needs a name")
	}
	if info.New == nil {
		return fmt.Errorf("abyss: scheme %q registration needs a constructor", info.Name)
	}
	for _, e := range schemeRegistry {
		if e.Name == info.Name {
			return fmt.Errorf("abyss: scheme %q already registered", info.Name)
		}
	}
	schemeRegistry = append(schemeRegistry, info)
	return nil
}

// MustRegisterScheme is RegisterScheme, panicking on error (for init
// functions).
func MustRegisterScheme(info SchemeInfo) {
	if err := RegisterScheme(info); err != nil {
		panic(err)
	}
}

// Schemes returns every registered scheme name in registry order: the
// paper's seven (Table 1 order), then extensions.
func Schemes() []string {
	names := make([]string, len(schemeRegistry))
	for i, e := range schemeRegistry {
		names[i] = e.Name
	}
	return names
}

// PaperSchemes returns the paper's seven schemes in Table 1 order,
// excluding extensions.
func PaperSchemes() []string {
	var names []string
	for _, e := range schemeRegistry {
		if !e.Extension {
			names = append(names, e.Name)
		}
	}
	return names
}

// SchemeInfos returns a copy of the registry in order.
func SchemeInfos() []SchemeInfo {
	return append([]SchemeInfo(nil), schemeRegistry...)
}

// NewScheme constructs a registered scheme by name. Unknown names return
// an error listing the valid set.
func NewScheme(name string, opts ...SchemeOption) (Scheme, error) {
	cfg := SchemeConfig{TS: TSAtomic}
	for _, o := range opts {
		o(&cfg)
	}
	for _, e := range schemeRegistry {
		if e.Name == name {
			return e.New(cfg), nil
		}
	}
	return nil, fmt.Errorf("abyss: unknown scheme %q (valid: %s)", name, joinNames(Schemes()))
}

// Timestamp-allocation methods (§4.3), re-exported for WithTSMethod and
// DB.NewTimestampAllocator.
const (
	// TSMutex serializes allocation through a critical section.
	TSMutex = tsalloc.Mutex
	// TSAtomic is one atomic fetch-add per timestamp — the paper's DBMS
	// default.
	TSAtomic = tsalloc.Atomic
	// TSBatch8 and TSBatch16 are Silo-style batched atomic addition.
	TSBatch8  = tsalloc.Batch8
	TSBatch16 = tsalloc.Batch16
	// TSClock reads a synchronized per-core clock.
	TSClock = tsalloc.Clock
	// TSHardware is the paper's proposed center-of-chip fetch-add unit.
	TSHardware = tsalloc.Hardware
)

// tsMethodNames maps the CLI names accepted by ParseTSMethod, in Fig. 6
// presentation order.
var tsMethodNames = []string{"clock", "hw", "batch16", "batch8", "atomic", "mutex"}

// TSMethods returns every timestamp-allocation method in Fig. 6's order.
func TSMethods() []TSMethod {
	return append([]TSMethod(nil), tsalloc.Methods...)
}

// TSMethodNames returns the names ParseTSMethod accepts, in Fig. 6's
// order.
func TSMethodNames() []string {
	return append([]string(nil), tsMethodNames...)
}

// ParseTSMethod maps a name (see TSMethodNames; "hardware" is accepted for
// "hw") to a TSMethod. Unknown names return an error listing the valid
// set.
func ParseTSMethod(s string) (TSMethod, error) {
	m, err := tsalloc.ParseMethod(s)
	if err != nil {
		return 0, fmt.Errorf("abyss: unknown timestamp method %q (valid: %s)", s, joinNames(TSMethodNames()))
	}
	return m, nil
}
