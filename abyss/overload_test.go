package abyss_test

// Public-surface tests for the overload tier: validation errors at the
// abyss boundary, open-loop determinism on the simulator, a native-runtime
// open-loop smoke (exercised under -race in CI), and Interrupt/Interrupted
// — all through the abyss facade only.

import (
	"reflect"
	"strings"
	"testing"

	"abyss1000/abyss"
)

// overloadRunConfig is an open-loop configuration well past the capacity
// of the 8-core simulated machine openYCSB builds, with every overload
// knob engaged.
func overloadRunConfig() abyss.RunConfig {
	return abyss.RunConfig{
		WarmupCycles:  50_000,
		MeasureCycles: 300_000,
		AbortBackoff:  1000,
		Arrivals:      abyss.Arrivals{Process: abyss.ArrivalPoisson, RateTPS: 5_000_000, Seed: 11},
		QueueDepth:    8,
		Deadline:      40_000,
		RetryLimit:    4,
		BackoffCap:    8_000,
	}
}

// TestOverloadValidation pins the abyss-phrased rejection of every
// inconsistent overload configuration, and that failed validations do not
// consume the DB's single measurement.
func TestOverloadValidation(t *testing.T) {
	db, wl, scheme := openYCSB(t)
	base := ycsbRunConfig()

	cases := []struct {
		name string
		mut  func(*abyss.RunConfig)
		want string
	}{
		{"queue depth without arrivals", func(c *abyss.RunConfig) { c.QueueDepth = 8 }, "QueueDepth"},
		{"shed types without arrivals", func(c *abyss.RunConfig) { c.ShedTypes = "ycsb" }, "ShedTypes"},
		{"rate on closed loop", func(c *abyss.RunConfig) { c.Arrivals.RateTPS = 1000 }, "closed loop"},
		{"poisson without rate", func(c *abyss.RunConfig) { c.Arrivals.Process = abyss.ArrivalPoisson }, "RateTPS"},
		{"mmpp without burst rate", func(c *abyss.RunConfig) {
			c.Arrivals = abyss.Arrivals{Process: abyss.ArrivalMMPP, RateTPS: 1000}
		}, "BurstRateTPS"},
		{"mmpp without dwell", func(c *abyss.RunConfig) {
			c.Arrivals = abyss.Arrivals{Process: abyss.ArrivalMMPP, RateTPS: 1000, BurstRateTPS: 2000}
		}, "dwell"},
		{"negative queue depth", func(c *abyss.RunConfig) {
			c.Arrivals = abyss.Arrivals{Process: abyss.ArrivalPoisson, RateTPS: 1000}
			c.QueueDepth = -1
		}, "QueueDepth"},
		{"negative retry limit", func(c *abyss.RunConfig) { c.RetryLimit = -1 }, "RetryLimit"},
		{"unknown process", func(c *abyss.RunConfig) { c.Arrivals.Process = abyss.ArrivalProcess(99) }, "Process"},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if _, err := db.Run(scheme, wl, cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error mentioning %q, got %v", c.name, c.want, err)
		}
	}

	// The rejections above must not have consumed the measurement.
	res, err := db.Run(scheme, wl, base)
	if err != nil {
		t.Fatalf("valid run after failed validations: %v", err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits from the valid run")
	}
	if res.Offered != 0 || res.Shed != 0 || res.Deadlined != 0 {
		t.Fatalf("closed loop must not report overload accounting: %+v", res)
	}
}

// TestOpenLoopRunDeterminism pins that an open-loop run with the full
// knob set is deterministic on the simulator — two fresh DBs produce
// deep-equal Results — and that its overload accounting is live: offered
// load exceeds goodput and admission control sheds work.
func TestOpenLoopRunDeterminism(t *testing.T) {
	run := func() abyss.Result {
		db, wl, scheme := openYCSB(t)
		res, err := db.Run(scheme, wl, overloadRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("open-loop run is nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.Offered == 0 || a.Commits == 0 {
		t.Fatalf("dead run: %+v", a)
	}
	if a.Shed == 0 {
		t.Fatal("2.5x+ overload with a bounded queue should shed")
	}
	if a.OfferedTPS() <= a.GoodputTPS() {
		t.Fatalf("offered %.0f tps should exceed goodput %.0f tps under overload",
			a.OfferedTPS(), a.GoodputTPS())
	}
	if a.QueueDepth.Count() == 0 || a.QueueDepth.Max() > 8 {
		t.Fatalf("queue depth histogram out of bounds: count %d max %d",
			a.QueueDepth.Count(), a.QueueDepth.Max())
	}
}

// TestOpenLoopNativeSmoke runs the open-loop path on the native runtime —
// real goroutines, real nanoseconds — so the admission queue, arrival
// generator, and fault injector see the race detector in CI's -race run.
func TestOpenLoopNativeSmoke(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	params, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	params.Rows = 4096
	wl, err := db.BuildWorkload("ycsb", params)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(scheme, wl, abyss.RunConfig{
		WarmupCycles:  2_000_000,  // ns
		MeasureCycles: 20_000_000, // ns
		AbortBackoff:  500,
		Arrivals:      abyss.Arrivals{Process: abyss.ArrivalPoisson, RateTPS: 200_000, Seed: 3},
		QueueDepth:    16,
		Deadline:      5_000_000,
		RetryLimit:    8,
		BackoffCap:    4_000,
		Fault:         abyss.LatencySpikeFault(5_000_000, 200_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || res.Offered == 0 {
		t.Fatalf("native open loop produced nothing: %+v", res)
	}
	if res.QueueDepth.Max() > 16 {
		t.Fatalf("admission bound violated: max depth %d", res.QueueDepth.Max())
	}
}

// TestInterrupt pins the graceful-interruption surface: Interrupted
// reflects Interrupt, and a run interrupted from an Observer returns a
// partial Result instead of running the window out.
func TestInterrupt(t *testing.T) {
	db, wl, scheme := openYCSB(t)
	if db.Interrupted() {
		t.Fatal("fresh DB reports interrupted")
	}

	full, err := db.Run(scheme, wl, ycsbRunConfig())
	if err != nil {
		t.Fatal(err)
	}

	db2, wl2, scheme2 := openYCSB(t)
	cfg := ycsbRunConfig()
	cfg.SampleEvery = 50_000
	n := 0
	cfg.Observer = abyss.ObserverFunc(func(abyss.Sample) {
		n++
		if n == 2 {
			db2.Interrupt()
		}
	})
	partial, err := db2.Run(scheme2, wl2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Interrupted() {
		t.Fatal("Interrupted() false after Interrupt()")
	}
	if partial.Commits == 0 {
		t.Fatal("interrupted run lost all work")
	}
	if partial.Commits >= full.Commits {
		t.Fatalf("interrupt at interval 2 of 6 should cut commits: partial %d, full %d",
			partial.Commits, full.Commits)
	}
}
