package abyss

// Session: the stored-procedure invocation surface for remote dispatch.
//
// Run measures a workload the engine generates for itself; a Session
// inverts the flow for serving — external callers submit invocations one
// at a time and each gets an answer. Under the hood a Session is still
// one measurement on the DB's native runtime: DB.Serve starts a Run
// whose workers pull from per-worker bounded admission queues
// (core.RequestSource), and Drain ends the measurement and returns the
// same Result a Run would have, with the session-side admission
// accounting (offered, shed, queue depths) merged in. The serve/ package
// layers the network protocols on top of exactly this surface.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"abyss1000/internal/core"
)

// Serving errors. ErrShed and ErrSessionClosed are the admission-control
// outcomes a remote front end maps onto wire responses (429/SHED and
// draining refusals respectively).
var (
	// ErrShed reports an invocation rejected because the target worker's
	// admission queue was full. Shed invocations never execute; they
	// count in the drained Result.Shed.
	ErrShed = errors.New("abyss: invocation shed — admission queue full")

	// ErrSessionClosed reports an invocation refused because the session
	// is draining (or a queued invocation the drain overtook).
	ErrSessionClosed = errors.New("abyss: session draining — invocation refused")
)

// DefaultServeQueueDepth bounds each worker's admission queue when
// ServeConfig.QueueDepth is zero. A serving session always has admission
// control: an unbounded queue under sustained overload is just a slower
// crash.
const DefaultServeQueueDepth = 1024

// serveWindow is the nominal measurement window of a serving run —
// effectively unbounded; Drain ends the run by closing the queues and
// rewrites Result.MeasureCycles to the actual serving span.
const serveWindow = uint64(1) << 62

// ServeConfig tunes a serving session. Durations are wall-clock (the
// native runtime's cycle is one nanosecond).
type ServeConfig struct {
	// QueueDepth bounds each worker's admission queue; an invocation
	// routed to a full queue is shed (ErrShed). Zero means
	// DefaultServeQueueDepth.
	QueueDepth int

	// Deadline is the default per-invocation deadline, applied when an
	// Invocation carries none: an invocation not committed within this
	// budget of its arrival — including time queued — is abandoned as
	// OutcomeDeadlined. Zero means no default deadline.
	Deadline time.Duration

	// RetryLimit abandons an invocation after this many failed attempts
	// (1 means no retries); zero means unlimited retries.
	RetryLimit int

	// AbortBackoff is the mean randomized restart penalty after a
	// concurrency-control abort. Zero disables backoff.
	AbortBackoff time.Duration

	// BackoffCap turns AbortBackoff into capped exponential backoff,
	// doubling the mean per consecutive failure up to this cap. Zero
	// keeps the fixed mean.
	BackoffCap time.Duration

	// LogGroupTxns / LogGroupTimeout override the write-ahead log's
	// group-commit parameters for the session, like their RunConfig
	// counterparts. Ignored without Options.Durability.
	LogGroupTxns    int
	LogGroupTimeout time.Duration
}

// Outcome classifies a completed invocation.
type Outcome int

const (
	// OutcomeCommitted: the transaction committed.
	OutcomeCommitted Outcome = iota

	// OutcomeUserAbort: the transaction rolled back by program logic
	// (ErrUserAbort) — completed work, counted with commits.
	OutcomeUserAbort

	// OutcomeDeadlined: the invocation was abandoned past its deadline
	// or retry budget, possibly without ever executing.
	OutcomeDeadlined
)

// String names the outcome for wire encodings and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeUserAbort:
		return "user_abort"
	case OutcomeDeadlined:
		return "deadlined"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ArgBinder is an optional interface for Mix transactions invoked
// through a Session: BindArgs receives the invocation's arguments after
// Generate has refreshed the instance, replacing the generated inputs.
// A transaction without it rejects invocations that carry arguments.
type ArgBinder interface {
	BindArgs(args []int64) error
}

// Invocation is one request submitted to a Session.
type Invocation struct {
	// Proc names a Mix procedure to invoke; empty draws an anonymous
	// transaction from the session's workload (the paper-workload form).
	Proc string

	// Args are optional procedure arguments, bound via ArgBinder on the
	// serving worker. Only named procedures accept arguments.
	Args []int64

	// Routed and Partition select H-STORE-aware routing: when Routed is
	// set, the invocation is dispatched to the worker owning partition
	// Partition (partitions map 1:1 onto workers), keeping single-
	// partition transactions on their home site. Unrouted invocations
	// are spread round-robin.
	Routed    bool
	Partition int

	// Deadline is the per-invocation deadline; zero uses the session
	// default.
	Deadline time.Duration
}

// Reply reports a completed invocation.
type Reply struct {
	// Outcome classifies the completion.
	Outcome Outcome

	// Elapsed is the server-side latency from arrival (submission) to
	// completion, including queueing, retries and backoff.
	Elapsed time.Duration
}

// ServeCounters is a snapshot of session-side admission accounting.
type ServeCounters struct {
	// Offered counts every submitted invocation, admitted or not.
	Offered uint64 `json:"offered"`

	// Shed counts invocations rejected by admission control: full
	// queues, plus any rejections the owning front end reports via
	// NoteShed (per-connection window overflow).
	Shed uint64 `json:"shed"`
}

// Session is a live serving run: submit invocations with Invoke, end the
// run with Drain. Safe for concurrent use by any number of goroutines.
type Session struct {
	db      *DB
	wl      Workload
	mix     *Mix
	procs   map[string]int // Mix procedure name -> spec index
	cfg     ServeConfig
	workers int

	qs      []chan core.Request
	qmu     sync.RWMutex // guards qclosed + channel close
	qclosed bool
	rr      atomic.Uint64

	offered atomic.Uint64
	shed    atomic.Uint64
	hmu     sync.Mutex // guards depth
	depth   Histogram

	epoch     time.Time // wall-clock instant of runtime cycle 0
	epochOnce sync.Once
	ready     chan struct{} // closed once epoch is known

	done      chan struct{} // closed when the underlying run has returned
	res       Result
	runErr    error
	drainOnce sync.Once
	mergeOnce sync.Once
	final     Result
}

// sessionSource adapts the session's queues to core.RequestSource. The
// first worker to ask for work pins the epoch — the wall-clock instant
// of runtime cycle zero — so submitter-side arrival stamps and the
// workers' clocks share one base.
type sessionSource struct{ s *Session }

// Next implements core.RequestSource.
func (src sessionSource) Next(p Proc) (core.Request, bool) {
	s := src.s
	s.epochOnce.Do(func() {
		s.epoch = time.Now().Add(-time.Duration(p.Now()))
		close(s.ready)
	})
	req, ok := <-s.qs[p.ID()]
	return req, ok
}

// Serve starts a serving session: the DB's single measurement begins
// immediately, with every worker blocked on its admission queue until
// invocations arrive. Requires the native runtime — remote arrivals are
// wall-clock events, which the simulator cannot admit. Like Run, Serve
// consumes the DB's one measurement; Drain ends it.
func (db *DB) Serve(scheme Scheme, wl Workload, cfg ServeConfig) (*Session, error) {
	if db.opts.Runtime != RuntimeNative {
		return nil, fmt.Errorf("abyss: Serve needs the native runtime (Options.Runtime = RuntimeNative); the simulator has no wall clock for remote arrivals")
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("abyss: ServeConfig.QueueDepth must not be negative, got %d", cfg.QueueDepth)
	}
	if cfg.Deadline < 0 || cfg.AbortBackoff < 0 || cfg.BackoffCap < 0 {
		return nil, fmt.Errorf("abyss: ServeConfig durations must not be negative")
	}
	if cfg.RetryLimit < 0 {
		return nil, fmt.Errorf("abyss: ServeConfig.RetryLimit must not be negative, got %d", cfg.RetryLimit)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultServeQueueDepth
	}
	s := &Session{
		db:      db,
		wl:      wl,
		cfg:     cfg,
		workers: db.Cores(),
		qs:      make([]chan core.Request, db.Cores()),
		ready:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range s.qs {
		s.qs[i] = make(chan core.Request, depth)
	}
	if m, ok := wl.(*Mix); ok {
		s.mix = m
		s.procs = make(map[string]int, len(m.names))
		for i, name := range m.names {
			s.procs[name] = i
		}
	}
	rc := RunConfig{
		MeasureCycles:   serveWindow,
		AbortBackoff:    uint64(cfg.AbortBackoff),
		RetryLimit:      cfg.RetryLimit,
		BackoffCap:      uint64(cfg.BackoffCap),
		LogGroupTxns:    cfg.LogGroupTxns,
		LogGroupTimeout: cfg.LogGroupTimeout,
		source:          sessionSource{s},
	}
	if err := db.prepareRun(scheme, wl, rc); err != nil {
		return nil, err
	}
	go func() {
		res, err := db.runMeasured(scheme, wl, rc)
		s.res, s.runErr = res, err
		// Complete anything the workers never popped (possible only on
		// an abnormal exit — Interrupt, or an engine error), then
		// publish. A normal Drain closes the queues first and the
		// workers empty them before exiting.
		s.closeQueues()
		for _, q := range s.qs {
			for req := range q {
				if req.Done != nil {
					req.Done(ErrSessionClosed)
				}
			}
		}
		close(s.done)
	}()
	select {
	case <-s.ready:
		return s, nil
	case <-s.done:
		if s.runErr != nil {
			return nil, s.runErr
		}
		return nil, fmt.Errorf("abyss: serving run ended before any worker started")
	}
}

// closeQueues closes every admission queue exactly once; subsequent
// submissions are refused and workers exit after emptying their queues.
func (s *Session) closeQueues() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qclosed {
		return
	}
	s.qclosed = true
	for _, q := range s.qs {
		close(q)
	}
}

// nowCycles reads the runtime clock (nanoseconds since cycle zero).
func (s *Session) nowCycles() uint64 {
	return uint64(time.Since(s.epoch))
}

// Workers returns the number of serving workers — equivalently, the
// number of partitions an Invocation can route to.
func (s *Session) Workers() int { return s.workers }

// Procedures returns the invokable procedure names (nil when the
// session's workload is not a Mix and only anonymous draws are valid).
func (s *Session) Procedures() []string {
	if s.mix == nil {
		return nil
	}
	return s.mix.Procedures()
}

// Counters snapshots the session-side admission accounting.
func (s *Session) Counters() ServeCounters {
	return ServeCounters{Offered: s.offered.Load(), Shed: s.shed.Load()}
}

// NoteShed records n invocations rejected by the owning front end
// before reaching the session — per-connection window overflow in the
// serve package. They count as offered and shed, keeping the drained
// Result's admission accounting complete across the whole serving
// stack.
func (s *Session) NoteShed(n uint64) {
	s.offered.Add(n)
	s.shed.Add(n)
}

// prepare builds the worker-side transaction constructor for inv, or
// nil for the anonymous-draw fast path.
func (s *Session) prepare(inv Invocation) (func(p Proc) (Txn, error), error) {
	if inv.Proc == "" {
		if len(inv.Args) > 0 {
			return nil, fmt.Errorf("abyss: an anonymous draw takes no arguments; name a procedure")
		}
		return nil, nil
	}
	if s.mix == nil {
		return nil, fmt.Errorf("abyss: workload has no named procedures (not a Mix); invoke with an empty Proc")
	}
	k, ok := s.procs[inv.Proc]
	if !ok {
		return nil, fmt.Errorf("abyss: no procedure %q (have: %s)", inv.Proc, joinNames(s.mix.Procedures()))
	}
	name, args := inv.Proc, inv.Args
	mix := s.mix
	return func(p Proc) (Txn, error) {
		t := mix.txns[p.ID()][k]
		if g, ok := t.(Generator); ok {
			g.Generate(p)
		}
		if len(args) > 0 {
			b, ok := t.(ArgBinder)
			if !ok {
				return nil, fmt.Errorf("abyss: procedure %q does not accept arguments (no ArgBinder)", name)
			}
			if err := b.BindArgs(args); err != nil {
				return nil, fmt.Errorf("abyss: procedure %q rejected arguments: %w", name, err)
			}
		}
		return t, nil
	}, nil
}

// submit routes one invocation into a worker queue and returns its
// arrival stamp. done receives the engine outcome exactly once.
func (s *Session) submit(inv Invocation, done func(error)) (uint64, error) {
	prepare, err := s.prepare(inv)
	if err != nil {
		return 0, err
	}
	if inv.Routed && inv.Partition < 0 {
		return 0, fmt.Errorf("abyss: Invocation.Partition must not be negative, got %d", inv.Partition)
	}
	if inv.Deadline < 0 {
		return 0, fmt.Errorf("abyss: Invocation.Deadline must not be negative")
	}
	worker := int(s.rr.Add(1)-1) % s.workers
	if inv.Routed {
		worker = inv.Partition % s.workers
	}
	arrival := s.nowCycles()
	d := inv.Deadline
	if d == 0 {
		d = s.cfg.Deadline
	}
	var deadline uint64
	if d > 0 {
		deadline = arrival + uint64(d)
	}
	req := core.Request{Prepare: prepare, Arrival: arrival, Deadline: deadline, Done: done}

	s.qmu.RLock()
	if s.qclosed {
		s.qmu.RUnlock()
		return 0, ErrSessionClosed
	}
	s.offered.Add(1)
	select {
	case s.qs[worker] <- req:
		depth := len(s.qs[worker])
		s.qmu.RUnlock()
		s.hmu.Lock()
		s.depth.Record(uint64(depth))
		s.hmu.Unlock()
		return arrival, nil
	default:
		s.qmu.RUnlock()
		s.shed.Add(1)
		return 0, ErrShed
	}
}

// Invoke submits one invocation and blocks until it completes, sheds or
// is refused. The returned error is ErrShed for admission rejection,
// ErrSessionClosed once draining, or a validation/binding error; every
// executed (or deadline-abandoned) invocation returns a Reply instead.
func (s *Session) Invoke(inv Invocation) (Reply, error) {
	ch := make(chan error, 1)
	arrival, err := s.submit(inv, func(err error) { ch <- err })
	if err != nil {
		return Reply{}, err
	}
	err = <-ch
	rep := Reply{Elapsed: time.Duration(s.nowCycles() - arrival)}
	switch err {
	case nil:
		rep.Outcome = OutcomeCommitted
	case ErrUserAbort:
		rep.Outcome = OutcomeUserAbort
	case ErrDeadline:
		rep.Outcome = OutcomeDeadlined
	default:
		return Reply{}, err
	}
	return rep, nil
}

// Drain ends the session gracefully: new invocations are refused with
// ErrSessionClosed, workers finish everything already admitted (each
// queued invocation still gets its reply), and the measurement closes.
// The returned Result is the same shape a Run produces, with
// MeasureCycles rewritten to the actual serving span and the session's
// admission accounting (offered, shed, queue depths) merged in. Drain
// is idempotent; every call returns the same Result. The WAL, if any,
// stays open — close it with DB.CloseLog after Drain returns.
func (s *Session) Drain() (Result, error) {
	s.drainOnce.Do(func() { s.closeQueues() })
	<-s.done
	if s.runErr != nil {
		return Result{}, s.runErr
	}
	s.mergeOnce.Do(func() {
		res := s.res
		res.MeasureCycles = s.nowCycles()
		res.Offered += s.offered.Load()
		res.Shed += s.shed.Load()
		s.hmu.Lock()
		res.QueueDepth.Merge(&s.depth)
		s.hmu.Unlock()
		s.final = res
	})
	return s.final, nil
}
