package abyss

import (
	"fmt"
	"time"

	"abyss1000/internal/core"
	"abyss1000/internal/wal"
)

// The durability tier's public types. Like the engine types in abyss.go
// they are aliases: a sink built here is exactly what the log writer
// drives, so tests can inject faults at the byte level.
type (
	// LogSink is the byte-level destination of the write-ahead log:
	// Write appends, Sync makes everything written so far durable.
	// Errors are sticky — a failed log is a crashed log.
	LogSink = wal.Sink

	// MemLogSink buffers the log in memory: the accounting-only backend
	// for simulated runs, and the capture device for crash tests (Bytes
	// returns the stream for Recover).
	MemLogSink = wal.MemSink

	// FileLogSink appends to a real file and fsyncs on Sync.
	FileLogSink = wal.FileSink

	// FaultLogSink wraps another sink with a byte-offset fault point: it
	// tears the write crossing the offset — exactly what a machine crash
	// during a group-commit write does — and fails everything after.
	FaultLogSink = wal.FaultSink

	// RecoverInfo summarizes what DB.Recover replayed: records scanned,
	// torn tail bytes dropped, the checkpoint restored, and the
	// commits/updates/inserts applied.
	RecoverInfo = core.RecoverInfo
)

// ErrLogInjected is the sticky error a FaultLogSink returns once its
// fault point has fired.
var ErrLogInjected = wal.ErrInjected

// NewMemLogSink returns an in-memory log sink primed with the WAL magic.
func NewMemLogSink() *MemLogSink { return wal.NewMemSink() }

// NewFaultLogSink wraps under with a fault point failAfter bytes into the
// stream (counted from the wrap; negative never fires).
func NewFaultLogSink(under LogSink, failAfter int64) *FaultLogSink {
	return wal.NewFaultSink(under, failAfter)
}

// CreateLogFile creates (truncating) a file-backed log sink and writes
// the WAL magic.
func CreateLogFile(path string) (*FileLogSink, error) { return wal.CreateFile(path) }

// Durability configures the write-ahead log attached at Open.
type Durability struct {
	// Sink receives the log stream. Nil means a fresh MemLogSink
	// (retrieve it with DB.LogSink to scan or persist the stream).
	Sink LogSink

	// Async selects real group commit: commits buffer in memory and a
	// background flusher writes+fsyncs them in groups; committing
	// workers block until their record's group is durable. Meant for
	// RuntimeNative. When false (the default, and the only sensible
	// choice under RuntimeSim) the log is synchronous and
	// accounting-only: every record reaches the sink at commit, the
	// group fsync is charged to the LOG breakdown component every
	// GroupTxns commits, and the simulated schedule is byte-identical
	// to a run without durability.
	Async bool

	// GroupTxns is the synchronous mode's modeled group-commit size
	// (records per fsync). Zero means the default (8).
	GroupTxns int

	// GroupTimeout is the async group-commit window: how long the
	// flusher waits for followers after a group's first commit. Zero
	// means the default (100µs).
	GroupTimeout time.Duration

	// GroupBytes flushes an async group early once this many bytes are
	// pending. Zero means the default (64 KiB).
	GroupBytes int
}

// attachWAL builds the writer from opts.Durability and hangs it on the
// engine. Called by Open.
func (db *DB) attachWAL(d *Durability) {
	sink := d.Sink
	if sink == nil {
		sink = wal.NewMemSink()
	}
	db.logSink = sink
	db.wal = wal.NewWriter(sink, wal.Config{
		Async:        d.Async,
		GroupTxns:    d.GroupTxns,
		GroupTimeout: d.GroupTimeout,
		GroupBytes:   d.GroupBytes,
	})
	db.inner.Wal = db.wal
}

// Durable reports whether the DB was opened with a write-ahead log.
func (db *DB) Durable() bool { return db.wal != nil }

// LogSink returns the sink the log writes to (the Durability.Sink passed
// at Open, or the MemLogSink created by default), or nil when the DB is
// not durable.
func (db *DB) LogSink() LogSink { return db.logSink }

// FlushLog forces everything logged so far to the sink, synced, and
// returns the log's sticky error state.
func (db *DB) FlushLog() error {
	if db.wal == nil {
		return fmt.Errorf("abyss: this DB has no write-ahead log (set Options.Durability)")
	}
	return db.wal.Flush()
}

// CloseLog flushes and closes the log and its sink. The DB stays usable
// for state inspection; further commits would find a closed log, so only
// close after the last Run.
func (db *DB) CloseLog() error {
	if db.wal == nil {
		return fmt.Errorf("abyss: this DB has no write-ahead log (set Options.Durability)")
	}
	return db.wal.Close()
}

// LogErr returns the log's sticky error: non-nil after the sink failed
// (e.g. a FaultLogSink fired). Commits keep succeeding in memory after a
// log crash — the engine models a machine whose disk died but whose
// memory is still live, which is exactly what the crash harness compares
// recovery against.
func (db *DB) LogErr() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Err()
}

// LogStats reports the log's append count, byte count and sync count.
func (db *DB) LogStats() (records, bytes, syncs uint64) {
	if db.wal == nil {
		return 0, 0, 0
	}
	return db.wal.Seq(), db.wal.Bytes(), db.wal.Syncs()
}

// Checkpoint appends a quiesced snapshot of every table to the log and
// flushes it: rows, insert-allocation cursors, and runtime index entries.
// Recovery then starts from the checkpoint instead of replaying the whole
// stream. Call it only while no Run is in flight (before or after the
// DB's measurement).
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("abyss: this DB has no write-ahead log (set Options.Durability)")
	}
	return core.Checkpoint(db.inner, db.lastScheme)
}

// Recover replays a WAL stream onto this DB, which must hold the same
// freshly set-up catalog that produced the log (same BuildWorkload /
// setup calls: tables, loaded rows and indexes in the same order, not yet
// run). The stream may be torn at any byte — a crash mid group write —
// and recovery restores exactly the state committed by the complete
// prefix: the durable pre-crash committed state. Recovering the same
// stream again is a no-op (idempotent replay).
func (db *DB) Recover(stream []byte) (RecoverInfo, error) {
	info, err := core.Recover(db.inner, stream)
	if err != nil {
		return info, fmt.Errorf("abyss: recover: %w", err)
	}
	return info, nil
}

// StateDump serializes the DB's committed user-visible state — every
// populated row, allocation cursors, and runtime index entries — in a
// deterministic text form: two DBs with equal dumps hold identical
// committed state, which is how the crash harness compares a recovered
// DB against the original. The dump consults the scheme of this DB's Run
// (if any) for schemes whose committed state lives outside the table
// slab (MVCC's version chains). Quiesced use only.
func (db *DB) StateDump() string {
	return core.DumpState(db.inner, db.lastScheme)
}
