// Package abyss is the public, embeddable front door to the engine: a
// deterministic many-core simulator (and a native-goroutine runtime), a
// lightweight main-memory DBMS, the seven concurrency-control schemes of
// "Staring into the Abyss: An Evaluation of Concurrency Control with One
// Thousand Cores" (VLDB 2014), and name-keyed registries that make every
// scheme and workload a plug-in rather than a wiring change.
//
// The five-minute tour:
//
//	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 64, Seed: 42})
//	params, err := abyss.DefaultWorkloadParams("ycsb")
//	wl, err := db.BuildWorkload("ycsb", params)
//	scheme, err := abyss.NewScheme("MVCC")
//	res, err := db.Run(scheme, wl, db.DefaultRunConfig())
//	fmt.Println(res.Throughput(), "txn/s")
//
// Everything is keyed by name: Schemes() lists the concurrency-control
// schemes (the paper's seven plus extensions such as ADAPTIVE), Workloads()
// lists the registered workloads (YCSB, TPC-C, and any workload registered
// via RegisterWorkload — see abyss1000/workloads/smallbank for a complete
// external example), and TSMethodNames() lists the timestamp-allocation
// strategies. Unknown names return errors enumerating the valid set, and
// invalid configurations (zero measurement windows, out-of-range
// probabilities) are rejected before they can produce NaN throughputs.
//
// Custom workloads implement the Workload and Txn interfaces against the
// declarative surface on DB: CreateTable builds fixed-width tables,
// CreateIndex hashes them, and NewMix turns a set of weighted
// stored-procedure factories into a Workload. Transaction bodies read and
// write rows through TxnCtx exactly like the built-in workloads do; the
// access path is steady-state allocation-free regardless of which scheme
// is plugged in.
//
// Beyond point accesses, CreateOrderedIndex builds a latched B+tree
// secondary index whose TxnCtx.RangeScan returns the entries in [lo, hi]
// in key order, and TxnCtx.InsertRowOrdered stages a row into a hash
// index and an ordered index atomically at commit. CompositeKey packs
// multi-column keys. The abyss1000/query package layers composable
// iterator-model operators (scan, index range, filter, project, join,
// group, order, limit) on top of exactly this surface; the full
// five-transaction TPC-C mix (WorkloadParams.Mix = "full") and the
// abyss1000/workloads/tatp benchmark are built from it. Range scans are
// latch-consistent but not phantom-protected: no scheme implements
// next-key locking.
//
// Observability is built into every run. Result carries a commit-latency
// Histogram (P50/P95/P99/Max) and per-transaction-type TxnStats (names
// flow from TxnSpec registration; workloads can also implement TxnTyper
// directly), and a run can be watched in flight: RunStream returns a
// buffered channel of per-interval Samples plus a wait function for the
// final Result, or set RunConfig.SampleEvery and an Observer on a plain
// Run. All of it is accounting-only — a sampled, observed run returns a
// Result identical to an unobserved one, and on the simulated runtime the
// entire schedule is unchanged.
//
// Overload behaviour is part of the surface, not an accident. RunConfig
// can open the loop — a Poisson or bursty MMPP arrival process
// (Arrivals) offering load the system did not ask for — with bounded
// per-worker admission queues (QueueDepth, ShedTypes) that shed excess
// up front, per-transaction deadlines and retry budgets (Deadline,
// RetryLimit, failing as ErrDeadline into Result.Deadlined), capped
// exponential backoff (BackoffCap), and fault injection (Fault; see
// StalledWorkerFault and friends). Result then separates offered load
// from goodput (OfferedTPS, GoodputTPS, Shed, QueueDepth), Interrupt
// ends an in-flight run gracefully with a partial Result, and with
// every knob at zero the closed loop is byte-identical to previous
// releases.
//
// Correctness is checkable, not assumed: set RunConfig.Check and the run
// captures every committed transaction's reads and writes as versions
// (accounting-only, like sampling); DB.CheckSerializability then builds
// the direct serialization graph over the captured history and verifies
// acyclicity plus final-state equivalence against a single-threaded
// oracle replay, returning a minimal counterexample cycle on failure.
// See check.go and the abyss1000/workloads/chaos fuzzer.
//
// Every run on the simulated runtime is deterministic in (Options.Seed,
// configuration): same inputs, byte-identical Result. The native runtime
// trades determinism for real wall-clock measurements on host cores.
package abyss
