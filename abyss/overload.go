package abyss

// The public surface of the engine's overload-robustness tier: open-loop
// arrival processes, admission control and load shedding, deadlines and
// retry budgets, fault injection, and graceful interruption. All of it is
// opt-in through RunConfig; a RunConfig with the overload fields at their
// zero values runs the paper's closed loop byte-identically to previous
// releases.

import (
	"fmt"

	"abyss1000/internal/core"
	"abyss1000/internal/faultinject"
)

type (
	// Arrivals configures open-loop offered load for RunConfig.Arrivals:
	// the process (Poisson or MMPP), aggregate rates in transactions per
	// second, MMPP dwell times, and the arrival-stream seed. The zero
	// value keeps the closed loop.
	Arrivals = core.Arrivals

	// ArrivalProcess selects the arrival generator; see ArrivalClosed,
	// ArrivalPoisson and ArrivalMMPP.
	ArrivalProcess = core.ArrivalProcess

	// FaultInjector maps (worker, now) to extra stall cycles injected at
	// transaction boundaries; see StalledWorkerFault, SlowPartitionFault,
	// LatencySpikeFault and ComposeFaults for stock injectors.
	FaultInjector = core.FaultInjector
)

// Arrival process selectors for Arrivals.Process.
const (
	// ArrivalClosed is the paper's closed loop (the default): one
	// outstanding transaction per worker.
	ArrivalClosed = core.ArrivalClosed

	// ArrivalPoisson offers a Poisson stream at Arrivals.RateTPS.
	ArrivalPoisson = core.ArrivalPoisson

	// ArrivalMMPP offers a bursty two-state Markov-modulated Poisson
	// stream: RateTPS when calm, BurstRateTPS in bursts, exponential
	// dwell times with means CalmCycles and BurstCycles.
	ArrivalMMPP = core.ArrivalMMPP
)

// ErrDeadline classifies a transaction abandoned by overload control —
// its deadline passed or its retry budget ran out before it could commit.
// Abandoned transactions count in Result.Deadlined, separately from
// concurrency-control aborts.
var ErrDeadline = core.ErrDeadline

// Interrupt asks an in-flight Run (or RunStream) on this DB to finish
// early: every worker completes its current transaction, stops drawing
// new work, and the Run returns a Result covering the window served so
// far. Safe to call from any goroutine — typically a signal handler —
// and safe to call before or after the run, or more than once. There is
// no rewind: once interrupted, the DB's single measurement is spent.
func (db *DB) Interrupt() { db.stop.Store(true) }

// Interrupted reports whether Interrupt has been called on this DB.
func (db *DB) Interrupted() bool { return db.stop.Load() }

// StalledWorkerFault freezes one worker for the window [from, until) of
// run time, modeling a descheduled or wedged thread.
func StalledWorkerFault(worker int, from, until uint64) FaultInjector {
	return faultinject.StalledWorker{Worker: worker, From: from, Until: until}
}

// SlowPartitionFault charges workers [first, first+count) an extra per-
// transaction penalty while [from, until) is open (zero until means the
// whole run), modeling a partition on a degraded device.
func SlowPartitionFault(first, count int, extra, from, until uint64) FaultInjector {
	return faultinject.SlowPartition{First: first, Count: count, Extra: extra, From: from, Until: until}
}

// LatencySpikeFault stalls every worker for duration cycles at the start
// of each period, modeling periodic interference (GC pauses, checkpoint
// flushes).
func LatencySpikeFault(period, duration uint64) FaultInjector {
	return faultinject.LatencySpike{Period: period, Duration: duration}
}

// ComposeFaults overlays injectors; the injected stall at any point is
// the maximum over the members.
func ComposeFaults(faults ...FaultInjector) FaultInjector {
	m := make(faultinject.Multi, len(faults))
	for i, f := range faults {
		m[i] = f
	}
	return m
}

// validateOverload rejects overload configurations at the public
// boundary with abyss-phrased errors; the engine re-validates (and would
// panic) behind it.
func validateOverload(cfg RunConfig) error {
	switch cfg.Arrivals.Process {
	case ArrivalClosed:
		if cfg.Arrivals.RateTPS != 0 || cfg.Arrivals.BurstRateTPS != 0 {
			return fmt.Errorf("abyss: RunConfig.Arrivals.RateTPS is set but Process is the closed loop; set Arrivals.Process to ArrivalPoisson or ArrivalMMPP")
		}
	case ArrivalPoisson:
		if cfg.Arrivals.RateTPS <= 0 {
			return fmt.Errorf("abyss: ArrivalPoisson needs Arrivals.RateTPS > 0 (offered load in txn/s)")
		}
	case ArrivalMMPP:
		if cfg.Arrivals.RateTPS <= 0 || cfg.Arrivals.BurstRateTPS <= 0 {
			return fmt.Errorf("abyss: ArrivalMMPP needs Arrivals.RateTPS and BurstRateTPS > 0 (calm and burst offered load in txn/s)")
		}
		if cfg.Arrivals.BurstCycles == 0 || cfg.Arrivals.CalmCycles == 0 {
			return fmt.Errorf("abyss: ArrivalMMPP needs nonzero Arrivals.BurstCycles and CalmCycles (mean dwell times)")
		}
	default:
		return fmt.Errorf("abyss: unknown Arrivals.Process %d", int(cfg.Arrivals.Process))
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("abyss: RunConfig.QueueDepth must not be negative, got %d", cfg.QueueDepth)
	}
	if cfg.RetryLimit < 0 {
		return fmt.Errorf("abyss: RunConfig.RetryLimit must not be negative, got %d", cfg.RetryLimit)
	}
	if cfg.Arrivals.Process == ArrivalClosed {
		if cfg.QueueDepth > 0 {
			return fmt.Errorf("abyss: RunConfig.QueueDepth needs an open-loop arrival process; set RunConfig.Arrivals")
		}
		if cfg.ShedTypes != "" {
			return fmt.Errorf("abyss: RunConfig.ShedTypes needs an open-loop arrival process; set RunConfig.Arrivals")
		}
	}
	return nil
}
