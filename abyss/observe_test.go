package abyss_test

// Public-surface observability tests: RunStream's channel semantics and
// validation errors, Observer wiring through RunConfig, Mix's per-type
// attribution, and the determinism contract (streaming and plain runs
// produce deep-equal Results) — all through the abyss facade only.

import (
	"reflect"
	"strings"
	"testing"

	"abyss1000/abyss"
)

// openYCSB builds a small simulated YCSB setup on a fresh DB.
func openYCSB(t *testing.T) (*abyss.DB, abyss.Workload, abyss.Scheme) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	params, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	params.Rows = 4096
	wl, err := db.BuildWorkload("ycsb", params)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	return db, wl, scheme
}

func ycsbRunConfig() abyss.RunConfig {
	return abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 300_000, AbortBackoff: 1000}
}

// TestRunStream pins the streaming surface: samples arrive in interval
// order and cover the whole window, the channel closes, and the final
// Result is deep-equal to a plain Run of the same configuration on a
// fresh DB (streaming is accounting-only).
func TestRunStream(t *testing.T) {
	cfg := ycsbRunConfig()
	cfg.SampleEvery = 50_000

	db, wl, scheme := openYCSB(t)
	samples, wait := db.RunStream(scheme, wl, cfg)
	var got []abyss.Sample
	for s := range samples {
		got = append(got, s)
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}

	if want := int(cfg.MeasureCycles / cfg.SampleEvery); len(got) != want {
		t.Fatalf("received %d samples, want %d", len(got), want)
	}
	var commits uint64
	for i, s := range got {
		if s.Interval != i {
			t.Fatalf("sample %d has interval %d", i, s.Interval)
		}
		commits += s.Commits
	}
	if commits != res.Commits {
		t.Fatalf("samples sum to %d commits, result has %d", commits, res.Commits)
	}
	if got[len(got)-1].EndCycle != cfg.MeasureCycles {
		t.Fatalf("last sample ends at %d, want %d", got[len(got)-1].EndCycle, cfg.MeasureCycles)
	}

	plainCfg := ycsbRunConfig()
	db2, wl2, scheme2 := openYCSB(t)
	plain, err := db2.Run(scheme2, wl2, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Fatalf("streaming changed the result:\nstream %+v\nplain  %+v", res, plain)
	}
}

// TestRunStreamUndrained pins that a consumer who never reads a sample
// still gets the final result: the channel is buffered for the whole run.
func TestRunStreamUndrained(t *testing.T) {
	cfg := ycsbRunConfig()
	cfg.SampleEvery = 50_000
	db, wl, scheme := openYCSB(t)
	_, wait := db.RunStream(scheme, wl, cfg)
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits from an undrained stream")
	}
}

// TestRunStreamErrors pins the validation paths: errors surface through
// the wait function with a closed, empty sample channel, and do not
// consume the DB's single measurement.
func TestRunStreamErrors(t *testing.T) {
	db, wl, scheme := openYCSB(t)

	cfg := ycsbRunConfig() // SampleEvery missing
	samples, wait := db.RunStream(scheme, wl, cfg)
	if _, open := <-samples; open {
		t.Fatal("error stream delivered a sample")
	}
	if _, err := wait(); err == nil || !strings.Contains(err.Error(), "SampleEvery") {
		t.Fatalf("want SampleEvery error, got %v", err)
	}

	cfg.SampleEvery = 50_000
	cfg.Observer = abyss.ObserverFunc(func(abyss.Sample) {})
	if _, wait := db.RunStream(scheme, wl, cfg); true {
		if _, err := wait(); err == nil || !strings.Contains(err.Error(), "Observer") {
			t.Fatalf("want Observer error, got %v", err)
		}
	}

	cfg.Observer = nil
	cfg.SampleEvery = 1 // beyond MaxSampleIntervals: rejected before any allocation
	if _, wait := db.RunStream(scheme, wl, cfg); true {
		if _, err := wait(); err == nil || !strings.Contains(err.Error(), "coarser") {
			t.Fatalf("want interval-cap error, got %v", err)
		}
	}

	// The failed attempts above must not have consumed the measurement.
	cfg.Observer = nil
	cfg.SampleEvery = 50_000
	_, wait = db.RunStream(scheme, wl, cfg)
	if _, err := wait(); err != nil {
		t.Fatalf("stream after failed validations: %v", err)
	}
}

// TestRunObserverValidation pins plain Run's sampling validation: an
// Observer without SampleEvery, SampleEvery without a sink, an interval
// longer than the window, and an interval fine enough to exceed the
// preallocation cap are all rejected with descriptive errors.
func TestRunObserverValidation(t *testing.T) {
	db, wl, scheme := openYCSB(t)
	cfg := ycsbRunConfig()
	cfg.Observer = abyss.ObserverFunc(func(abyss.Sample) {})
	if _, err := db.Run(scheme, wl, cfg); err == nil || !strings.Contains(err.Error(), "SampleEvery") {
		t.Fatalf("want SampleEvery error, got %v", err)
	}
	cfg.Observer = nil
	cfg.SampleEvery = 50_000
	if _, err := db.Run(scheme, wl, cfg); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("want missing-sink error, got %v", err)
	}
	cfg.Observer = abyss.ObserverFunc(func(abyss.Sample) {})
	cfg.SampleEvery = cfg.MeasureCycles + 1
	if _, err := db.Run(scheme, wl, cfg); err == nil || !strings.Contains(err.Error(), "MeasureCycles") {
		t.Fatalf("want SampleEvery-vs-window error, got %v", err)
	}
	cfg.SampleEvery = 1 // 300k intervals: beyond the preallocation cap
	if _, err := db.Run(scheme, wl, cfg); err == nil || !strings.Contains(err.Error(), "coarser") {
		t.Fatalf("want interval-cap error, got %v", err)
	}

	// A valid observer configuration works and sees every interval.
	cfg.SampleEvery = 100_000
	n := 0
	cfg.Observer = abyss.ObserverFunc(func(abyss.Sample) { n++ })
	res, err := db.Run(scheme, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(cfg.MeasureCycles / cfg.SampleEvery); n != want {
		t.Fatalf("observer saw %d samples, want %d", n, want)
	}
	if res.Latency.Count() != res.Commits {
		t.Fatalf("latency count %d != commits %d", res.Latency.Count(), res.Commits)
	}
}

// TestMixPerTxnAttribution pins that a Mix-built workload flows its
// TxnSpec names into Result.PerTxn with counts summing to the aggregate —
// the name path from registration to result.
func TestMixPerTxnAttribution(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	table, err := db.CreateTable(abyss.TableSpec{
		Name:     "T",
		Cols:     []abyss.Col{{Name: "K", Width: 8}, {Name: "V", Width: 8}},
		Capacity: 256, Loaded: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("T_PK", table, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		row := table.LoadRow(i)
		table.Schema.PutU64(row, 0, uint64(i))
		idx.LoadInsert(uint64(i), i)
	}

	mix, err := db.NewMix(
		abyss.TxnSpec{Name: "reader", Weight: 1, New: func(int) abyss.Txn { return &keyTxn{table: table, idx: idx} }},
		abyss.TxnSpec{Name: "writer", Weight: 1, New: func(int) abyss.Txn { return &keyTxn{table: table, idx: idx, write: true} }},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := mix.TxnTypes(); len(got) != 2 || got[0] != "reader" || got[1] != "writer" {
		t.Fatalf("TxnTypes = %v", got)
	}

	scheme, err := abyss.NewScheme("DL_DETECT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(scheme, mix, abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 200_000, AbortBackoff: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTxn) != 2 || res.PerTxn[0].Name != "reader" || res.PerTxn[1].Name != "writer" {
		t.Fatalf("PerTxn = %+v", res.PerTxn)
	}
	var commits, aborts uint64
	for i := range res.PerTxn {
		if res.PerTxn[i].Commits == 0 {
			t.Errorf("%s committed nothing", res.PerTxn[i].Name)
		}
		commits += res.PerTxn[i].Commits
		aborts += res.PerTxn[i].Aborts
	}
	if commits != res.Commits || aborts != res.Aborts {
		t.Fatalf("per-txn sums (%d, %d) != aggregate (%d, %d)", commits, aborts, res.Commits, res.Aborts)
	}
}

// TestMixValueTxnsDegradeGracefully pins that Mix accepts transaction
// shapes that predate per-type attribution: distinct value-type Txns
// attribute normally, while indistinguishable instances (the same value
// under two specs, or non-comparable types) build fine and simply
// disable attribution — TxnTypes returns nil and Run's Result carries no
// PerTxn — instead of erroring or panicking.
func TestMixValueTxnsDegradeGracefully(t *testing.T) {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Two specs sharing one value-type Txn: every instance compares
	// equal, so identity — and therefore attribution — is unknowable.
	mix, err := db.NewMix(
		abyss.TxnSpec{Name: "a", Weight: 1, New: func(int) abyss.Txn { return noopTxn{} }},
		abyss.TxnSpec{Name: "b", Weight: 1, New: func(int) abyss.Txn { return noopTxn{} }},
	)
	if err != nil {
		t.Fatalf("value-type specs rejected: %v", err)
	}
	if got := mix.TxnTypes(); got != nil {
		t.Fatalf("ambiguous mix should disable attribution, got types %v", got)
	}

	// Non-comparable Txn types (slice field) must not panic the build.
	db2, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mix2, err := db2.NewMix(
		abyss.TxnSpec{Name: "a", Weight: 1, New: func(int) abyss.Txn { return sliceTxn{buf: make([]byte, 1)} }},
	)
	if err != nil {
		t.Fatalf("non-comparable spec rejected: %v", err)
	}
	if got := mix2.TxnTypes(); got != nil {
		t.Fatalf("non-comparable mix should disable attribution, got types %v", got)
	}
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Run(scheme, mix2, abyss.RunConfig{WarmupCycles: 5_000, MeasureCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || len(res.PerTxn) != 0 {
		t.Fatalf("degraded mix: commits %d, PerTxn %v", res.Commits, res.PerTxn)
	}

	// Distinct value types stay attributable: each spec's instances are
	// equal to each other but distinct across specs.
	db3, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mix3, err := db3.NewMix(
		abyss.TxnSpec{Name: "noop", Weight: 1, New: func(int) abyss.Txn { return noopTxn{} }},
		abyss.TxnSpec{Name: "other", Weight: 1, New: func(int) abyss.Txn { return otherTxn{} }},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := mix3.TxnTypes(); len(got) != 2 {
		t.Fatalf("distinct value types should attribute, got %v", got)
	}
	scheme3, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	res3, err := db3.Run(scheme3, mix3, abyss.RunConfig{WarmupCycles: 5_000, MeasureCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.PerTxn) != 2 || res3.PerTxn[0].Commits+res3.PerTxn[1].Commits != res3.Commits {
		t.Fatalf("value-type attribution broken: %+v (commits %d)", res3.PerTxn, res3.Commits)
	}
}

// noopTxn and otherTxn are comparable zero-size transactions; sliceTxn is
// non-comparable.
type noopTxn struct{}

func (noopTxn) Run(tx *abyss.TxnCtx) error { return nil }
func (noopTxn) Partitions() []int          { return nil }

type otherTxn struct{}

func (otherTxn) Run(tx *abyss.TxnCtx) error { return nil }
func (otherTxn) Partitions() []int          { return nil }

type sliceTxn struct{ buf []byte }

func (sliceTxn) Run(tx *abyss.TxnCtx) error { return nil }
func (sliceTxn) Partitions() []int          { return nil }

// keyTxn reads (or read-modify-writes) one random row.
type keyTxn struct {
	table *abyss.Table
	idx   *abyss.Index
	write bool
	key   uint64
}

func (t *keyTxn) Generate(p abyss.Proc) { t.key = uint64(p.Rand().Intn(256)) }

func (t *keyTxn) Run(tx *abyss.TxnCtx) error {
	slot, ok := tx.Lookup(t.idx, t.key)
	if !ok {
		panic("key vanished")
	}
	if t.write {
		row, err := tx.UpdateRow(t.table, slot)
		if err != nil {
			return err
		}
		t.table.Schema.PutU64(row, 1, t.table.Schema.GetU64(row, 1)+1)
		return nil
	}
	_, err := tx.Read(t.table, slot)
	return err
}

func (t *keyTxn) Partitions() []int { return nil }
