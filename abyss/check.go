package abyss

import (
	"fmt"

	"abyss1000/internal/core"
	"abyss1000/internal/sercheck"
)

// Serializability conformance surface. Setting RunConfig.Check makes the
// run record every committed transaction's read and write versions
// (accounting-only, like sampling and the WAL: the Result — and on the
// simulated runtime every simulated outcome — is byte-identical with it
// on or off). After the run, History returns the captured history and
// CheckSerializability builds the direct serialization graph over it:
// WR edges from read-version provenance, WW edges from per-slot version
// order, RW anti-dependencies inferred from the two. The history is
// serializable iff the graph is acyclic; the report then also replays
// the witness order through a single-threaded oracle and compares the
// oracle's final state against the engine's. On failure the report
// carries a minimal cycle, the anomaly list, or the first mismatching
// slots — a concrete counterexample, not just a boolean.

type (
	// History is one run's captured transaction history: table snapshots
	// (initial and final images) plus every committed transaction's
	// reads and writes, in checker form. Obtained from DB.History after
	// a RunConfig.Check run, or hand-built for checker tests.
	History = sercheck.History

	// HistoryTable is one table's snapshot within a History.
	HistoryTable = sercheck.Table

	// HistoryTxn is one committed transaction within a History.
	HistoryTxn = sercheck.Txn

	// HistoryAccess is one read: the (table, slot) version observed.
	HistoryAccess = sercheck.Access

	// HistoryWrite is one write: the version installed and its row image.
	HistoryWrite = sercheck.Write

	// CheckReport is the serializability verdict for a History: the
	// acyclicity result with a minimal counterexample cycle, detected
	// anomalies, the witness serial order, and the oracle's final-state
	// comparison. CheckReport.OK reports overall success.
	CheckReport = sercheck.Report

	// CheckEdge is one dependency edge in a CheckReport's cycle.
	CheckEdge = sercheck.Edge

	// CheckEdgeKind classifies a CheckEdge: EdgeWR, EdgeWW or EdgeRW.
	CheckEdgeKind = sercheck.EdgeKind
)

// The dependency-edge kinds of the direct serialization graph.
const (
	// EdgeWR is a read dependency: the target read a version the source
	// wrote.
	EdgeWR = sercheck.WR

	// EdgeWW is a write dependency: the target overwrote a version the
	// source wrote.
	EdgeWW = sercheck.WW

	// EdgeRW is an anti-dependency: the target overwrote a version the
	// source read.
	EdgeRW = sercheck.RW
)

// Verify checks a History for serializability and final-state
// equivalence. DB.CheckSerializability composes DB.History with Verify;
// calling Verify directly suits hand-constructed histories (negative
// tests of the checker itself) or histories carried across processes.
func Verify(h *History) *CheckReport {
	return sercheck.Check(h)
}

// History returns the transaction history captured by this DB's Run.
// It requires a completed run with RunConfig.Check set.
func (db *DB) History() (*History, error) {
	if db.inner.Cap == nil {
		return nil, fmt.Errorf("abyss: no captured history: set RunConfig.Check on the run")
	}
	return core.BuildHistory(db.inner, db.lastScheme), nil
}

// CheckSerializability verifies the history captured by this DB's Run
// (which must have set RunConfig.Check): it returns the checker's
// report, whose OK method is the pass/fail verdict. Call it after Run
// returns, on a quiescent database.
func (db *DB) CheckSerializability() (*CheckReport, error) {
	h, err := db.History()
	if err != nil {
		return nil, err
	}
	return Verify(h), nil
}
