package abyss

import (
	"fmt"

	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

// WorkloadParams is the flat knob set the workload registry builds from.
// Field groups apply to the workloads that read them; the rest are
// ignored. Always start from DefaultWorkloadParams(name) — the zero value
// is rejected — then override what the experiment varies, so an explicit
// zero (e.g. ReadPct = 0 for a write-only mix) is honored rather than
// confused with "use the default".
type WorkloadParams struct {
	// YCSB knobs (§3.3).
	Rows      int     `json:"rows,omitempty"`
	Fields    int     `json:"fields,omitempty"`
	FieldSize int     `json:"field_size,omitempty"`
	ReqPerTxn int     `json:"req_per_txn,omitempty"`
	ReadPct   float64 `json:"read_pct,omitempty"`
	Theta     float64 `json:"theta,omitempty"`
	Ordered   bool    `json:"ordered,omitempty"`

	// Partitioning knobs (H-STORE experiments, §5.5).
	Partitioned bool    `json:"partitioned,omitempty"`
	MPFraction  float64 `json:"mp_fraction,omitempty"`
	MPParts     int     `json:"mp_parts,omitempty"`

	// TPC-C knobs (§5.6). Mix selects the transaction mix: "paper" is
	// the paper's Payment+NewOrder pair, "full" the five-transaction
	// spec mix (adds OrderStatus, Delivery and StockLevel, backed by
	// ordered secondary indexes).
	Warehouses       int     `json:"warehouses,omitempty"`
	PaymentPct       float64 `json:"payment_pct,omitempty"`
	RemotePaymentPct float64 `json:"remote_payment_pct,omitempty"`
	RemoteItemPct    float64 `json:"remote_item_pct,omitempty"`
	UserAbortPct     float64 `json:"user_abort_pct,omitempty"`
	InsertsPerWorker int     `json:"inserts_per_worker,omitempty"`
	Mix              string  `json:"mix,omitempty"`

	// TATP knobs (abyss1000/workloads/tatp).
	Subscribers int `json:"subscribers,omitempty"`

	// SmallBank knobs (abyss1000/workloads/smallbank).
	Accounts    int     `json:"accounts,omitempty"`
	HotAccounts int     `json:"hot_accounts,omitempty"`
	HotPct      float64 `json:"hot_pct,omitempty"`
}

// WorkloadInfo is one workload registry entry.
type WorkloadInfo struct {
	// Name is the registry key ("ycsb", "tpcc", ...).
	Name string

	// Desc is a one-line description for listings.
	Desc string

	// Extension marks workloads beyond the paper's two benchmarks.
	Extension bool

	// Defaults returns the workload's default parameters.
	Defaults func() WorkloadParams

	// Build validates p, creates and populates the workload's tables and
	// indexes on db, and returns the ready Workload.
	Build func(db *DB, p WorkloadParams) (Workload, error)
}

// workloadRegistry holds entries in registration order (built-ins first).
var workloadRegistry []WorkloadInfo

func init() {
	MustRegisterWorkload(WorkloadInfo{
		Name:     "ycsb",
		Desc:     "YCSB: point accesses over one table, Zipfian skew (§3.3)",
		Defaults: ycsbDefaults,
		Build:    buildYCSB,
	})
	MustRegisterWorkload(WorkloadInfo{
		Name:     "tpcc",
		Desc:     "TPC-C: Payment + NewOrder (paper mix, §3.3) or the full five-transaction mix (-mix full)",
		Defaults: tpccDefaults,
		Build:    buildTPCC,
	})
}

// RegisterWorkload adds a workload to the registry. It errors on an empty
// name, missing hooks, or a duplicate registration.
func RegisterWorkload(info WorkloadInfo) error {
	if info.Name == "" {
		return fmt.Errorf("abyss: workload registration needs a name")
	}
	if info.Build == nil || info.Defaults == nil {
		return fmt.Errorf("abyss: workload %q registration needs Defaults and Build", info.Name)
	}
	for _, e := range workloadRegistry {
		if e.Name == info.Name {
			return fmt.Errorf("abyss: workload %q already registered", info.Name)
		}
	}
	workloadRegistry = append(workloadRegistry, info)
	return nil
}

// MustRegisterWorkload is RegisterWorkload, panicking on error (for init
// functions).
func MustRegisterWorkload(info WorkloadInfo) {
	if err := RegisterWorkload(info); err != nil {
		panic(err)
	}
}

// Workloads returns every registered workload name in registry order.
func Workloads() []string {
	names := make([]string, len(workloadRegistry))
	for i, e := range workloadRegistry {
		names[i] = e.Name
	}
	return names
}

// WorkloadInfos returns a copy of the registry in order.
func WorkloadInfos() []WorkloadInfo {
	return append([]WorkloadInfo(nil), workloadRegistry...)
}

// lookupWorkload finds a registry entry by name.
func lookupWorkload(name string) (WorkloadInfo, error) {
	for _, e := range workloadRegistry {
		if e.Name == name {
			return e, nil
		}
	}
	return WorkloadInfo{}, fmt.Errorf("abyss: unknown workload %q (valid: %s)", name, joinNames(Workloads()))
}

// DefaultWorkloadParams returns the named workload's default parameters —
// the starting point every caller should mutate rather than building a
// WorkloadParams from scratch.
func DefaultWorkloadParams(name string) (WorkloadParams, error) {
	e, err := lookupWorkload(name)
	if err != nil {
		return WorkloadParams{}, err
	}
	return e.Defaults(), nil
}

// BuildWorkload validates p, creates and populates the named workload's
// tables and indexes on db, and returns the Workload ready for Run.
// Unknown names return an error listing the valid set.
func (db *DB) BuildWorkload(name string, p WorkloadParams) (wl Workload, err error) {
	e, err := lookupWorkload(name)
	if err != nil {
		return nil, err
	}
	// Internal builders report misconfiguration by panicking; surface
	// those as errors at the public boundary.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("abyss: building workload %q failed: %v", name, r)
		}
	}()
	return e.Build(db, p)
}

// pctField validates a probability-like field.
func pctField(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("abyss: %s must be in [0, 1], got %g", name, v)
	}
	return nil
}

func ycsbDefaults() WorkloadParams {
	c := ycsb.DefaultConfig()
	return WorkloadParams{
		Rows:      c.Rows,
		Fields:    c.Fields,
		FieldSize: c.FieldSize,
		ReqPerTxn: c.ReqPerTxn,
		ReadPct:   c.ReadPct,
		Theta:     c.Theta,
		MPParts:   2,
	}
}

func buildYCSB(db *DB, p WorkloadParams) (Workload, error) {
	if p.Rows <= 0 {
		return nil, fmt.Errorf("abyss: ycsb Rows must be positive, got %d", p.Rows)
	}
	if p.ReqPerTxn <= 0 || p.ReqPerTxn > p.Rows {
		return nil, fmt.Errorf("abyss: ycsb ReqPerTxn must be in [1, Rows=%d], got %d", p.Rows, p.ReqPerTxn)
	}
	if p.Fields <= 0 || p.FieldSize <= 0 {
		return nil, fmt.Errorf("abyss: ycsb Fields and FieldSize must be positive, got %d x %d", p.Fields, p.FieldSize)
	}
	if err := pctField("ycsb ReadPct", p.ReadPct); err != nil {
		return nil, err
	}
	if p.Theta < 0 || p.Theta >= 1 {
		return nil, fmt.Errorf("abyss: ycsb Theta must be in [0, 1), got %g", p.Theta)
	}
	if err := pctField("ycsb MPFraction", p.MPFraction); err != nil {
		return nil, err
	}
	if p.Partitioned && p.MPFraction > 0 && p.MPParts < 2 {
		return nil, fmt.Errorf("abyss: ycsb MPParts must be >= 2 for multi-partition transactions, got %d", p.MPParts)
	}
	return ycsb.Build(db.inner, ycsb.Config{
		Rows:        p.Rows,
		Fields:      p.Fields,
		FieldSize:   p.FieldSize,
		ReqPerTxn:   p.ReqPerTxn,
		ReadPct:     p.ReadPct,
		Theta:       p.Theta,
		Ordered:     p.Ordered,
		Partitioned: p.Partitioned,
		MPFraction:  p.MPFraction,
		MPParts:     p.MPParts,
	}), nil
}

func tpccDefaults() WorkloadParams {
	c := tpcc.DefaultConfig(4)
	return WorkloadParams{
		Warehouses:       c.Warehouses,
		PaymentPct:       c.PaymentPct,
		RemotePaymentPct: c.RemotePaymentPct,
		RemoteItemPct:    c.RemoteItemPct,
		UserAbortPct:     c.UserAbortPct,
		InsertsPerWorker: c.InsertsPerWorker,
		Mix:              c.Mix,
	}
}

func buildTPCC(db *DB, p WorkloadParams) (Workload, error) {
	if p.Warehouses <= 0 {
		return nil, fmt.Errorf("abyss: tpcc Warehouses must be positive, got %d", p.Warehouses)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"tpcc PaymentPct", p.PaymentPct},
		{"tpcc RemotePaymentPct", p.RemotePaymentPct},
		{"tpcc RemoteItemPct", p.RemoteItemPct},
		{"tpcc UserAbortPct", p.UserAbortPct},
	} {
		if err := pctField(f.name, f.v); err != nil {
			return nil, err
		}
	}
	if p.InsertsPerWorker <= 0 {
		return nil, fmt.Errorf("abyss: tpcc InsertsPerWorker must be positive, got %d", p.InsertsPerWorker)
	}
	mix := p.Mix
	if mix == "" {
		mix = tpcc.MixPaper
	}
	valid := false
	for _, m := range tpcc.Mixes() {
		if mix == m {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("abyss: tpcc Mix must be one of %s, got %q", joinNames(tpcc.Mixes()), p.Mix)
	}
	cfg := tpcc.DefaultConfig(p.Warehouses)
	cfg.Mix = mix
	cfg.PaymentPct = p.PaymentPct
	cfg.RemotePaymentPct = p.RemotePaymentPct
	cfg.RemoteItemPct = p.RemoteItemPct
	cfg.UserAbortPct = p.UserAbortPct
	cfg.InsertsPerWorker = p.InsertsPerWorker
	return tpcc.Build(db.inner, cfg), nil
}
