package abyss

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/wal"
)

// The engine types that flow through the public API. They are aliases, not
// wrappers: a Scheme from NewScheme, a Workload from BuildWorkload and a
// Txn written against TxnCtx are exactly what the engine executes, so
// embedding code pays no adaptation cost and external workloads (see
// abyss1000/workloads/smallbank) are indistinguishable from built-in ones.
type (
	// Scheme is a pluggable concurrency-control scheme (§3.2 of the
	// paper). Obtain instances from NewScheme; implementing new schemes
	// currently requires engine-internal types.
	Scheme = core.Scheme

	// Workload generates each worker's transaction stream.
	Workload = core.Workload

	// Txn is one transaction: program logic intermixed with row accesses.
	Txn = core.Txn

	// TxnCtx is the per-worker transaction context handed to Txn.Run:
	// Lookup/Read/UpdateRow/InsertRow are the whole data access surface.
	TxnCtx = core.TxnCtx

	// Result aggregates one experiment run (commits, aborts, tuple
	// accesses, the six-component time breakdown, the commit-latency
	// Histogram, per-transaction-type TxnStats, and derived rates).
	Result = core.Result

	// TxnStats is one transaction type's sub-result within a Result:
	// commits, aborts and the type's own latency histogram.
	TxnStats = core.TxnStats

	// Histogram is a log2-bucketed latency histogram with
	// P50/P95/P99/Max accessors and Quantile/Merge; Result.Latency,
	// TxnStats.Latency and Sample.Latency are Histograms.
	Histogram = stats.Histogram

	// Sample is one interval's in-flight snapshot of a run: commits,
	// aborts and latency for that interval, with Throughput and
	// AbortFraction accessors. Delivered via RunConfig.Observer or the
	// RunStream channel.
	Sample = core.Sample

	// Observer receives interval Samples during a run. OnSample is
	// called from worker threads and must return promptly; RunStream
	// wraps the channel plumbing for the common case.
	Observer = core.Observer

	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = core.ObserverFunc

	// TxnTyper is the optional Workload interface that enables
	// Result.PerTxn attribution. Mix implements it; custom Workload
	// implementations may too.
	TxnTyper = core.TxnTyper

	// Proc is one logical core / worker thread: clock, deterministic RNG
	// and time-breakdown accounting.
	Proc = rt.Proc

	// Table is a fixed-width row table created by CreateTable.
	Table = storage.Table

	// Schema describes a Table's columns and provides typed row access.
	Schema = storage.Schema

	// Col is one fixed-width column of a TableSpec.
	Col = storage.Col

	// Index is a hash index created by CreateIndex.
	Index = index.Hash

	// OrderedIndex is an ordered (range-scannable) secondary index
	// created by CreateOrderedIndex.
	OrderedIndex = index.Ordered

	// IndexEntry is one key→slot pair returned by an ordered range scan.
	IndexEntry = index.Entry

	// TSMethod selects a timestamp-allocation strategy (§4.3).
	TSMethod = tsalloc.Method

	// TSAllocator hands out transaction timestamps; see
	// DB.NewTimestampAllocator.
	TSAllocator = tsalloc.Allocator
)

// Sentinel errors returned from transaction bodies.
var (
	// ErrAbort is returned by row accesses when concurrency control
	// aborts the transaction; propagate it out of Txn.Run unchanged and
	// the engine rolls back and restarts.
	ErrAbort = core.ErrAbort

	// ErrUserAbort is returned by transaction logic to request a rollback
	// that counts as completed work (no restart), e.g. TPC-C's 1%
	// invalid-item NewOrders.
	ErrUserAbort = core.ErrUserAbort
)

// Runtime names accepted by Options.Runtime.
const (
	// RuntimeSim is the deterministic discrete-event simulator of a tiled
	// many-core chip (the default): bit-reproducible results, core counts
	// far beyond the host.
	RuntimeSim = "sim"

	// RuntimeNative runs workers as real goroutines with real
	// synchronization; windows are wall-clock nanoseconds and results are
	// machine-dependent.
	RuntimeNative = "native"
)

// MaxCores is the largest worker count Open accepts — the paper's maximum
// core count, and the bound baked into clock-based timestamp allocation
// (10 bits of worker id).
const MaxCores = 1024

// NumHistBuckets is the number of log2 buckets in a Histogram: bucket 0
// holds the value 0, bucket i holds values in [2^(i-1), 2^i).
const NumHistBuckets = stats.NumHistBuckets

// MaxSampleIntervals bounds MeasureCycles / SampleEvery: the sampler and
// the RunStream channel preallocate per-interval state, so finer
// sampling than this is rejected at validation.
const MaxSampleIntervals = core.MaxSampleIntervals

// HistBucketBounds returns Histogram bucket i's half-open value range
// [lo, hi), for rendering histogram dumps.
func HistBucketBounds(i int) (lo, hi uint64) { return stats.HistBucketBounds(i) }

// Runtimes lists the valid Options.Runtime values.
func Runtimes() []string { return []string{RuntimeSim, RuntimeNative} }

// Options configures Open.
type Options struct {
	// Runtime selects the execution substrate: RuntimeSim (default) or
	// RuntimeNative.
	Runtime string

	// Cores is the number of logical cores / worker threads, in
	// [1, MaxCores]. Required.
	Cores int

	// Seed drives every deterministic random stream (per-worker RNGs,
	// simulated placement). Two sim DBs opened with equal Options produce
	// byte-identical results for equal work.
	Seed int64

	// Durability, when non-nil, attaches a write-ahead log: every commit
	// appends its after-images, DB.Checkpoint snapshots tables, and
	// DB.Recover replays a (possibly torn) stream back to the durable
	// committed state. Nil means no logging and a commit path identical
	// to a non-durable build. See the Durability type in durability.go.
	Durability *Durability
}

// DB is an embeddable database instance: a runtime, a catalog of tables
// and indexes, and the Run entry point. One DB supports one experiment
// Run; open a fresh DB per measurement so warmup windows and clocks start
// from zero.
type DB struct {
	opts  Options
	rt    rt.Runtime
	inner *core.DB

	tables     map[string]*Table
	indexes    map[string]*Index
	ordIndexes map[string]*OrderedIndex
	ran        bool

	// Durability state: the log writer and its sink (nil without
	// Options.Durability), and the scheme of the DB's Run, kept so
	// StateDump can ask it for committed images (MVCC).
	wal        *wal.Writer
	logSink    LogSink
	lastScheme Scheme

	// stop is the cooperative interruption flag wired into every Run as
	// core.Config.Stop; Interrupt sets it. Workers poll it at transaction
	// boundaries only, so an idle flag costs one nil-check per txn.
	stop atomic.Bool
}

// Open validates opts and creates an empty database on the selected
// runtime.
func Open(opts Options) (*DB, error) {
	if opts.Runtime == "" {
		opts.Runtime = RuntimeSim
	}
	if opts.Cores < 1 || opts.Cores > MaxCores {
		return nil, fmt.Errorf("abyss: Options.Cores must be in [1, %d], got %d", MaxCores, opts.Cores)
	}
	var r rt.Runtime
	switch opts.Runtime {
	case RuntimeSim:
		r = sim.New(opts.Cores, opts.Seed)
	case RuntimeNative:
		r = native.New(opts.Cores, opts.Seed)
	default:
		return nil, fmt.Errorf("abyss: unknown runtime %q (valid: %s)", opts.Runtime, joinNames(Runtimes()))
	}
	db := &DB{
		opts:       opts,
		rt:         r,
		inner:      core.NewDB(r),
		tables:     make(map[string]*Table),
		indexes:    make(map[string]*Index),
		ordIndexes: make(map[string]*OrderedIndex),
	}
	if opts.Durability != nil {
		db.attachWAL(opts.Durability)
	}
	return db, nil
}

// Options returns the options the DB was opened with (with defaults
// applied).
func (db *DB) Options() Options { return db.opts }

// Cores returns the number of logical cores / worker threads.
func (db *DB) Cores() int { return db.rt.NumProcs() }

// Frequency returns the core clock in Hz used to convert cycle counts to
// per-second rates (1 GHz simulated; 1 cycle = 1 ns native).
func (db *DB) Frequency() float64 { return db.rt.Frequency() }

// TableSpec declares one table for CreateTable.
type TableSpec struct {
	// Name is the table name, unique within the DB.
	Name string

	// Cols are the fixed-width columns, in storage order.
	Cols []Col

	// Capacity is the total slot count. Slots beyond Loaded are divided
	// into per-worker insert segments for runtime inserts.
	Capacity int

	// Loaded is how many rows setup code will populate via Table.LoadRow
	// before the run starts.
	Loaded int
}

// CreateTable validates spec and adds the table to the catalog. Populate
// its first spec.Loaded rows with Table.LoadRow and Schema's Put accessors
// before Run.
func (db *DB) CreateTable(spec TableSpec) (*Table, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("abyss: TableSpec.Name must not be empty")
	}
	if _, ok := db.tables[spec.Name]; ok {
		return nil, fmt.Errorf("abyss: table %q already exists", spec.Name)
	}
	if len(spec.Cols) == 0 {
		return nil, fmt.Errorf("abyss: table %q needs at least one column", spec.Name)
	}
	for _, c := range spec.Cols {
		if c.Name == "" || c.Width <= 0 {
			return nil, fmt.Errorf("abyss: table %q column %q must have a name and positive width, got width %d", spec.Name, c.Name, c.Width)
		}
	}
	if spec.Capacity <= 0 {
		return nil, fmt.Errorf("abyss: table %q capacity must be positive, got %d", spec.Name, spec.Capacity)
	}
	if spec.Loaded < 0 || spec.Loaded > spec.Capacity {
		return nil, fmt.Errorf("abyss: table %q loaded rows %d out of range [0, capacity %d]", spec.Name, spec.Loaded, spec.Capacity)
	}
	schema := storage.NewSchema(spec.Name, spec.Cols...)
	t := db.inner.Catalog.Add(schema, spec.Capacity, spec.Loaded, db.Cores())
	db.tables[spec.Name] = t
	return t, nil
}

// CreateIndex builds a hash index named name over t, sized for at least
// minKeys keys. Populate setup-time entries with Index.LoadInsert.
func (db *DB) CreateIndex(name string, t *Table, minKeys int) (*Index, error) {
	if name == "" {
		return nil, fmt.Errorf("abyss: index name must not be empty")
	}
	if _, ok := db.indexes[name]; ok {
		return nil, fmt.Errorf("abyss: index %q already exists", name)
	}
	if t == nil {
		return nil, fmt.Errorf("abyss: index %q needs a table", name)
	}
	if minKeys < 1 {
		minKeys = 1
	}
	h := db.inner.AddIndex(name, t, minKeys)
	db.indexes[name] = h
	return h, nil
}

// CreateOrderedIndex builds an ordered secondary index named name over t.
// Ordered indexes support Txn.RangeScan in addition to point lookups;
// their maintenance and scans are billed to the INDEX component like hash
// probes. Populate setup-time entries with OrderedIndex.LoadInsert.
func (db *DB) CreateOrderedIndex(name string, t *Table) (*OrderedIndex, error) {
	if name == "" {
		return nil, fmt.Errorf("abyss: ordered index name must not be empty")
	}
	if _, ok := db.ordIndexes[name]; ok {
		return nil, fmt.Errorf("abyss: ordered index %q already exists", name)
	}
	if t == nil {
		return nil, fmt.Errorf("abyss: ordered index %q needs a table", name)
	}
	o := db.inner.AddOrderedIndex(name, t)
	db.ordIndexes[name] = o
	return o, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("abyss: no table %q (have: %s)", name, joinNames(sortedKeys(db.tables)))
	}
	return t, nil
}

// Index returns the named index.
func (db *DB) Index(name string) (*Index, error) {
	h, ok := db.indexes[name]
	if !ok {
		return nil, fmt.Errorf("abyss: no index %q (have: %s)", name, joinNames(sortedKeys(db.indexes)))
	}
	return h, nil
}

// OrderedIndex returns the named ordered index.
func (db *DB) OrderedIndex(name string) (*OrderedIndex, error) {
	o, ok := db.ordIndexes[name]
	if !ok {
		return nil, fmt.Errorf("abyss: no ordered index %q (have: %s)", name, joinNames(sortedKeys(db.ordIndexes)))
	}
	return o, nil
}

// CompositeKey packs up to four 16-bit ids into one uint64 index key,
// the convention TPC-C-style multi-column keys use.
func CompositeKey(a, b, c, d uint64) uint64 { return index.CompositeKey(a, b, c, d) }

// NewTimestampAllocator builds a timestamp allocator of the given method
// on this DB's runtime (the §4.3 strategies; see ParseTSMethod).
func (db *DB) NewTimestampAllocator(m TSMethod) TSAllocator {
	return tsalloc.New(m, db.rt)
}

// Go executes body on every core concurrently — simulated or real — and
// returns when all bodies have returned. This is the raw worker substrate
// beneath Run, exposed for micro-benchmarks (e.g. timestamp allocation)
// and custom measurement loops; most embedders only need Run. Like Run it
// consumes the DB's single measurement (the simulated clock only starts
// from zero once), so a second Go — or mixing Go and Run — returns an
// error.
func (db *DB) Go(body func(p Proc)) error {
	if body == nil {
		return fmt.Errorf("abyss: Go needs a body")
	}
	if db.ran {
		return fmt.Errorf("abyss: this DB already ran an experiment; Open a fresh DB per Run/Go")
	}
	db.ran = true
	db.rt.Run(body)
	return nil
}

// RunConfig sizes one measurement. Cycles are simulated cycles under
// RuntimeSim (1 GHz: 1 cycle = 1 ns of simulated time) and wall-clock
// nanoseconds under RuntimeNative.
type RunConfig struct {
	// WarmupCycles is discarded ramp-up time before counters reset.
	WarmupCycles uint64

	// MeasureCycles is the measurement window; must be positive.
	MeasureCycles uint64

	// AbortBackoff is the mean randomized restart penalty after a
	// concurrency-control abort, in cycles. Zero disables backoff.
	AbortBackoff uint64

	// SampleEvery divides the measurement window into intervals of this
	// many cycles; one Sample per interval is delivered to Observer (or
	// the RunStream channel) while the run is in flight. Sampling is
	// accounting-only — the final Result, and on the simulated runtime
	// every simulated outcome, are byte-identical with and without it.
	// Zero disables sampling; positive values require a sink (an
	// Observer for Run, or using RunStream).
	SampleEvery uint64

	// Observer receives the interval Samples during Run. OnSample runs
	// on worker threads and must return promptly (under the simulator a
	// blocked observer blocks the whole simulation); use RunStream for
	// a buffered channel instead of implementing an Observer. Setting
	// an Observer requires a positive SampleEvery.
	Observer Observer

	// LogGroupTxns overrides the write-ahead log's group-commit size for
	// this run (records per modeled fsync in accounting-only mode). Zero
	// keeps the Durability setting. Ignored without Options.Durability.
	LogGroupTxns int

	// LogGroupTimeout overrides the async group-commit window for this
	// run. Zero keeps the Durability setting. Ignored without
	// Options.Durability.
	LogGroupTimeout time.Duration

	// Check records every committed transaction's read and write
	// versions during the run for the serializability checker: after Run
	// returns, DB.CheckSerializability verifies the captured history and
	// DB.History exposes it. Accounting-only, like SampleEvery — the
	// Result is identical with it on or off. See check.go.
	Check bool

	// Arrivals switches the run from the paper's closed loop (one
	// outstanding transaction per worker) to open-loop offered load: a
	// seed-deterministic Poisson or bursty MMPP arrival process feeding
	// per-worker admission queues. The zero value keeps the closed loop.
	// See overload.go for the overload tier's semantics.
	Arrivals Arrivals

	// QueueDepth bounds each worker's admission queue in open-loop runs;
	// arrivals past the bound are shed (Result.Shed). Zero means
	// unbounded — admission control off. Requires Arrivals.
	QueueDepth int

	// ShedTypes lists transaction type names (comma-separated) to shed
	// preferentially once a queue passes its high-water mark. Requires
	// Arrivals and a workload that declares its types (Mix does).
	ShedTypes string

	// Deadline abandons a transaction not committed within this many
	// cycles of its arrival (open loop) or first attempt (closed loop):
	// it fails as ErrDeadline instead of retrying forever, counted in
	// Result.Deadlined. Zero disables deadlines.
	Deadline uint64

	// RetryLimit abandons a transaction after this many failed attempts
	// (1 means no retries); abandoned transactions count in
	// Result.Deadlined. Zero means unlimited retries.
	RetryLimit int

	// BackoffCap turns the fixed AbortBackoff restart penalty into
	// capped exponential backoff: the mean doubles per consecutive
	// failure up to this cap, with jitter drawn deterministically from
	// the worker's seeded RNG. Zero keeps the fixed mean.
	BackoffCap uint64

	// Fault, when non-nil, injects stalls at transaction boundaries —
	// see StalledWorkerFault, SlowPartitionFault, LatencySpikeFault and
	// ComposeFaults. Billed to the Idle breakdown component.
	Fault FaultInjector

	// source, when non-nil, switches the run to remote request dispatch
	// (workers pull externally submitted requests instead of drawing
	// work). Set only by DB.Serve — sessions own the admission queues,
	// arrival stamping and completion plumbing around it.
	source core.RequestSource
}

// DefaultRunConfig returns a window sized for quick experiments on this
// DB's runtime: ~0.4 ms simulated (sim) or ~50 ms wall-clock (native)
// of measurement after warmup.
func (db *DB) DefaultRunConfig() RunConfig {
	if db.opts.Runtime == RuntimeNative {
		return RunConfig{WarmupCycles: 5_000_000, MeasureCycles: 50_000_000, AbortBackoff: 1000}
	}
	c := core.DefaultConfig()
	return RunConfig{WarmupCycles: c.WarmupCycles, MeasureCycles: c.MeasureCycles, AbortBackoff: c.AbortBackoff}
}

// prepareRun validates one measurement's arguments and claims the DB's
// single run. On success the caller owns the measurement and must perform
// it; on error nothing changed.
func (db *DB) prepareRun(scheme Scheme, wl Workload, cfg RunConfig) error {
	if scheme == nil {
		return fmt.Errorf("abyss: Run needs a Scheme (see NewScheme)")
	}
	if wl == nil {
		return fmt.Errorf("abyss: Run needs a Workload (see BuildWorkload)")
	}
	if cfg.MeasureCycles == 0 {
		return fmt.Errorf("abyss: RunConfig.MeasureCycles must be positive (a zero window has no throughput)")
	}
	if cfg.Observer != nil && cfg.SampleEvery == 0 {
		return fmt.Errorf("abyss: RunConfig.Observer is set but SampleEvery is 0; set SampleEvery to the sampling interval in cycles")
	}
	if cfg.SampleEvery > 0 && cfg.Observer == nil {
		return fmt.Errorf("abyss: RunConfig.SampleEvery is set but there is no sample sink; set RunConfig.Observer or use RunStream")
	}
	if cfg.SampleEvery > cfg.MeasureCycles {
		return fmt.Errorf("abyss: RunConfig.SampleEvery (%d) must not exceed MeasureCycles (%d); a window shorter than one interval produces no samples", cfg.SampleEvery, cfg.MeasureCycles)
	}
	if cfg.SampleEvery > 0 {
		if n := (cfg.MeasureCycles + cfg.SampleEvery - 1) / cfg.SampleEvery; n > core.MaxSampleIntervals {
			return fmt.Errorf("abyss: RunConfig.SampleEvery (%d) yields %d sample intervals over MeasureCycles (%d); at most %d are allowed — use a coarser sampling period", cfg.SampleEvery, n, cfg.MeasureCycles, core.MaxSampleIntervals)
		}
	}
	if err := validateOverload(cfg); err != nil {
		return err
	}
	if db.ran {
		return fmt.Errorf("abyss: this DB already ran an experiment; Open a fresh DB per Run/Go")
	}
	db.ran = true
	return nil
}

// runMeasured executes the prepared measurement. Split from Run so that
// RunStream can validate synchronously and measure on its own goroutine.
func (db *DB) runMeasured(scheme Scheme, wl Workload, cfg RunConfig) (res Result, err error) {
	// The engine reports misconfiguration (exhausted insert segments,
	// missing indexes) by panicking; at the public boundary those become
	// errors. Panics on worker goroutines still crash — they indicate
	// bugs in transaction bodies, not configuration.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("abyss: run failed: %v", r)
		}
	}()
	if db.wal != nil {
		db.wal.SetGrouping(cfg.LogGroupTxns, cfg.LogGroupTimeout)
	}
	db.lastScheme = scheme
	res = core.RunObserved(db.inner, scheme, wl, core.Config{
		WarmupCycles:  cfg.WarmupCycles,
		MeasureCycles: cfg.MeasureCycles,
		AbortBackoff:  cfg.AbortBackoff,
		SampleEvery:   cfg.SampleEvery,
		Capture:       cfg.Check,
		Arrivals:      cfg.Arrivals,
		QueueDepth:    cfg.QueueDepth,
		ShedTypes:     cfg.ShedTypes,
		Deadline:      cfg.Deadline,
		RetryLimit:    cfg.RetryLimit,
		BackoffCap:    cfg.BackoffCap,
		Fault:         cfg.Fault,
		Stop:          &db.stop,
		Source:        cfg.source,
	}, cfg.Observer)
	return res, nil
}

// Run executes wl under scheme for cfg's measurement window and returns
// the aggregated result: throughput, aborts, the six-component breakdown,
// the commit-latency histogram, and per-transaction-type sub-results when
// the workload declares its types (Mix does). With SampleEvery and an
// Observer set, interval Samples stream to the Observer during the run.
// The workload's tables must already be populated (BuildWorkload does
// this for registered workloads). A DB measures once: clocks and warmup
// windows are meaningful only from a cold start, so a second Run returns
// an error — Open a fresh DB instead.
func (db *DB) Run(scheme Scheme, wl Workload, cfg RunConfig) (Result, error) {
	if err := db.prepareRun(scheme, wl, cfg); err != nil {
		return Result{}, err
	}
	return db.runMeasured(scheme, wl, cfg)
}

// chanObserver forwards samples into a channel buffered for every
// interval of the run, so sends never block the measurement.
type chanObserver chan<- Sample

// OnSample implements Observer.
func (c chanObserver) OnSample(s Sample) { c <- s }

// RunStream is Run with a streaming surface: it starts the measurement in
// the background and returns immediately with a channel of in-flight
// Samples (one per SampleEvery cycles of the measurement window, closed
// when the run ends) and a wait function that blocks for, and returns,
// the final Result.
//
// The channel is buffered for the whole run, so the measurement never
// waits on the consumer — ranging over the channel and then calling wait
// is the intended pattern, but calling wait immediately (or never
// draining the channel at all) is also safe.
//
// cfg.SampleEvery must be positive and cfg.Observer must be nil
// (RunStream installs its own); errors — including argument validation —
// are reported by the wait function, with the sample channel closed and
// empty.
func (db *DB) RunStream(scheme Scheme, wl Workload, cfg RunConfig) (<-chan Sample, func() (Result, error)) {
	fail := func(err error) (<-chan Sample, func() (Result, error)) {
		ch := make(chan Sample)
		close(ch)
		return ch, func() (Result, error) { return Result{}, err }
	}
	if cfg.Observer != nil {
		return fail(fmt.Errorf("abyss: RunStream installs its own Observer; RunConfig.Observer must be nil"))
	}
	if cfg.SampleEvery == 0 {
		return fail(fmt.Errorf("abyss: RunStream needs a positive RunConfig.SampleEvery (the sampling interval in cycles)"))
	}
	if cfg.MeasureCycles == 0 {
		return fail(fmt.Errorf("abyss: RunConfig.MeasureCycles must be positive (a zero window has no throughput)"))
	}
	intervals := (cfg.MeasureCycles + cfg.SampleEvery - 1) / cfg.SampleEvery
	if intervals > core.MaxSampleIntervals {
		return fail(fmt.Errorf("abyss: RunConfig.SampleEvery (%d) yields %d sample intervals over MeasureCycles (%d); at most %d are allowed — use a coarser sampling period", cfg.SampleEvery, intervals, cfg.MeasureCycles, core.MaxSampleIntervals))
	}
	ch := make(chan Sample, intervals+1)
	cfg.Observer = chanObserver(ch)
	if err := db.prepareRun(scheme, wl, cfg); err != nil {
		return fail(err)
	}
	done := make(chan struct{})
	var (
		res    Result
		runErr error
	)
	go func() {
		defer close(done)
		defer close(ch)
		res, runErr = db.runMeasured(scheme, wl, cfg)
	}()
	return ch, func() (Result, error) {
		<-done
		return res, runErr
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinNames(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}
