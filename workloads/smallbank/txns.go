package smallbank

import "abyss1000/abyss"

// The six SmallBank stored procedures. Each is a reusable per-worker
// object (the engine's zero-allocation convention): Generate draws fresh
// inputs from the worker's deterministic RNG, Run executes against the
// transaction context, and Partitions reports the touched H-STORE
// partitions (customer id mod partition count; ignored by the tuple-level
// schemes).
//
// Balance lookups panic on a missing customer: ids are drawn from
// [0, Accounts) and the tables are fully preloaded, so a miss is a bug,
// not a runtime condition — the same convention as the built-in
// workloads.

// lookupSlot probes idx for cust.
func lookupSlot(tx *abyss.TxnCtx, idx *abyss.Index, cust uint64) int {
	slot, ok := tx.Lookup(idx, cust)
	if !ok {
		panic("smallbank: customer vanished from primary index")
	}
	return slot
}

// readBal returns the balance of cust in (idx, t).
func readBal(tx *abyss.TxnCtx, t *abyss.Table, idx *abyss.Index, cust uint64) (int64, error) {
	row, err := tx.Read(t, lookupSlot(tx, idx, cust))
	if err != nil {
		return 0, err
	}
	return t.Schema.GetI64(row, colBalance), nil
}

// addBal adds delta to cust's balance in (idx, t) and returns the new
// balance.
func addBal(tx *abyss.TxnCtx, t *abyss.Table, idx *abyss.Index, cust uint64, delta int64) (int64, error) {
	row, err := tx.UpdateRow(t, lookupSlot(tx, idx, cust))
	if err != nil {
		return 0, err
	}
	bal := t.Schema.GetI64(row, colBalance) + delta
	t.Schema.PutI64(row, colBalance, bal)
	return bal, nil
}

// setBal overwrites cust's balance in (idx, t) and returns the previous
// balance.
func setBal(tx *abyss.TxnCtx, t *abyss.Table, idx *abyss.Index, cust uint64, bal int64) (int64, error) {
	row, err := tx.UpdateRow(t, lookupSlot(tx, idx, cust))
	if err != nil {
		return 0, err
	}
	old := t.Schema.GetI64(row, colBalance)
	t.Schema.PutI64(row, colBalance, bal)
	return old, nil
}

// onePart fills parts with the partition of a single customer.
func onePart(w *Workload, parts []int, c uint64) []int {
	return append(parts[:0], w.partition(c))
}

// twoParts fills parts with the sorted distinct partitions of two
// customers.
func twoParts(w *Workload, parts []int, a, b uint64) []int {
	pa, pb := w.partition(a), w.partition(b)
	parts = append(parts[:0], pa)
	if pb != pa {
		if pb < pa {
			parts[0] = pb
			pb = pa
		}
		parts = append(parts, pb)
	}
	return parts
}

// balanceTxn reads one customer's savings and checking balances
// (read-only).
type balanceTxn struct {
	wl    *Workload
	cust  uint64
	parts []int

	// Total is the last computed balance (read by tests).
	Total int64
}

func (t *balanceTxn) Generate(p abyss.Proc) {
	t.cust = t.wl.customer(p)
	t.parts = onePart(t.wl, t.parts, t.cust)
}

func (t *balanceTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	sav, err := readBal(tx, w.savings, w.idxSavings, t.cust)
	if err != nil {
		return err
	}
	chk, err := readBal(tx, w.checking, w.idxChecking, t.cust)
	if err != nil {
		return err
	}
	t.Total = sav + chk
	return nil
}

func (t *balanceTxn) Partitions() []int { return t.parts }

// depositCheckingTxn credits a customer's checking account.
type depositCheckingTxn struct {
	wl     *Workload
	cust   uint64
	amount int64
	parts  []int
}

func (t *depositCheckingTxn) Generate(p abyss.Proc) {
	t.cust = t.wl.customer(p)
	t.amount = int64(p.Rand().Intn(200_00)) + 1 // $0.01 - $200.00
	t.parts = onePart(t.wl, t.parts, t.cust)
}

func (t *depositCheckingTxn) Run(tx *abyss.TxnCtx) error {
	_, err := addBal(tx, t.wl.checking, t.wl.idxChecking, t.cust, t.amount)
	return err
}

func (t *depositCheckingTxn) Partitions() []int { return t.parts }

// transactSavingsTxn applies a deposit or withdrawal to savings; a
// withdrawal that would overdraw rolls back (ErrUserAbort — completed
// work, no restart).
type transactSavingsTxn struct {
	wl     *Workload
	cust   uint64
	amount int64
	parts  []int
}

func (t *transactSavingsTxn) Generate(p abyss.Proc) {
	t.cust = t.wl.customer(p)
	t.amount = int64(p.Rand().Intn(350_00)) - 150_00 // -$150.00 - +$200.00
	t.parts = onePart(t.wl, t.parts, t.cust)
}

func (t *transactSavingsTxn) Run(tx *abyss.TxnCtx) error {
	bal, err := addBal(tx, t.wl.savings, t.wl.idxSavings, t.cust, t.amount)
	if err != nil {
		return err
	}
	if bal < 0 {
		return abyss.ErrUserAbort
	}
	return nil
}

func (t *transactSavingsTxn) Partitions() []int { return t.parts }

// amalgamateTxn moves all funds of one customer into another's checking
// account.
type amalgamateTxn struct {
	wl       *Workload
	from, to uint64
	parts    []int
}

func (t *amalgamateTxn) Generate(p abyss.Proc) {
	t.from, t.to = t.wl.customerPair(p)
	t.parts = twoParts(t.wl, t.parts, t.from, t.to)
}

func (t *amalgamateTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	sav, err := setBal(tx, w.savings, w.idxSavings, t.from, 0)
	if err != nil {
		return err
	}
	chk, err := setBal(tx, w.checking, w.idxChecking, t.from, 0)
	if err != nil {
		return err
	}
	_, err = addBal(tx, w.checking, w.idxChecking, t.to, sav+chk)
	return err
}

func (t *amalgamateTxn) Partitions() []int { return t.parts }

// writeCheckTxn cashes a check against the combined balance, charging a
// $1 overdraft penalty when it exceeds the funds (the SmallBank anomaly
// transaction: its read of savings is what snapshot isolation fails to
// serialize).
type writeCheckTxn struct {
	wl     *Workload
	cust   uint64
	amount int64
	parts  []int
}

func (t *writeCheckTxn) Generate(p abyss.Proc) {
	t.cust = t.wl.customer(p)
	t.amount = int64(p.Rand().Intn(500_00)) + 1 // $0.01 - $500.00
	t.parts = onePart(t.wl, t.parts, t.cust)
}

func (t *writeCheckTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	sav, err := readBal(tx, w.savings, w.idxSavings, t.cust)
	if err != nil {
		return err
	}
	row, err := tx.UpdateRow(w.checking, lookupSlot(tx, w.idxChecking, t.cust))
	if err != nil {
		return err
	}
	chk := w.checking.Schema.GetI64(row, colBalance)
	amount := t.amount
	if amount > sav+chk {
		amount += 1_00 // overdraft penalty
	}
	w.checking.Schema.PutI64(row, colBalance, chk-amount)
	return nil
}

func (t *writeCheckTxn) Partitions() []int { return t.parts }

// sendPaymentTxn transfers between two checking accounts; insufficient
// funds roll back (ErrUserAbort).
type sendPaymentTxn struct {
	wl       *Workload
	from, to uint64
	amount   int64
	parts    []int
}

func (t *sendPaymentTxn) Generate(p abyss.Proc) {
	t.from, t.to = t.wl.customerPair(p)
	t.amount = int64(p.Rand().Intn(100_00)) + 1 // $0.01 - $100.00
	t.parts = twoParts(t.wl, t.parts, t.from, t.to)
}

func (t *sendPaymentTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	bal, err := addBal(tx, w.checking, w.idxChecking, t.from, -t.amount)
	if err != nil {
		return err
	}
	if bal < 0 {
		return abyss.ErrUserAbort
	}
	_, err = addBal(tx, w.checking, w.idxChecking, t.to, t.amount)
	return err
}

func (t *sendPaymentTxn) Partitions() []int { return t.parts }

var (
	_ abyss.Workload  = (*Workload)(nil)
	_ abyss.TxnTyper  = (*Workload)(nil)
	_ abyss.Txn       = (*balanceTxn)(nil)
	_ abyss.Txn       = (*depositCheckingTxn)(nil)
	_ abyss.Txn       = (*transactSavingsTxn)(nil)
	_ abyss.Txn       = (*amalgamateTxn)(nil)
	_ abyss.Txn       = (*writeCheckTxn)(nil)
	_ abyss.Txn       = (*sendPaymentTxn)(nil)
	_ abyss.Generator = (*balanceTxn)(nil)
)
