package smallbank_test

// SmallBank conformance: the workload must run under every registered
// paper scheme on both runtimes, conserve money under its transfer-only
// mix, and stay deterministic on the simulator. The test file, like the
// workload, imports only the public abyss package — it doubles as the
// proof that an external workload needs nothing from internal/.

import (
	"testing"

	"abyss1000/abyss"
	"abyss1000/workloads/smallbank"
)

func smallConfig() smallbank.Config {
	cfg := smallbank.DefaultConfig()
	cfg.Accounts = 4096
	cfg.HotAccounts = 16
	cfg.HotPct = 0.9
	return cfg
}

// runSim builds and runs one SmallBank measurement on a fresh simulated
// DB.
func runSim(t *testing.T, scheme string, cores int, cfg smallbank.Config, rc abyss.RunConfig) (abyss.Result, *smallbank.Workload) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: cores, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := smallbank.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(s, wl, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res, wl
}

// assertPerTxnConformance checks the per-transaction-type sub-results
// against the aggregate: one entry per active procedure in mix order,
// commits and aborts summing exactly to the Result's counts, and one
// latency observation per completed transaction.
func assertPerTxnConformance(t *testing.T, res abyss.Result) {
	t.Helper()
	if len(res.PerTxn) != len(smallbank.Procedures) {
		t.Fatalf("PerTxn has %d entries, want %d", len(res.PerTxn), len(smallbank.Procedures))
	}
	var commits, aborts, latCount uint64
	for i := range res.PerTxn {
		ts := &res.PerTxn[i]
		if ts.Name != smallbank.Procedures[i] {
			t.Errorf("PerTxn[%d].Name = %q, want %q", i, ts.Name, smallbank.Procedures[i])
		}
		if ts.Latency.Count() != ts.Commits {
			t.Errorf("%s: latency count %d != commits %d", ts.Name, ts.Latency.Count(), ts.Commits)
		}
		if ts.Latency.Max() > res.Latency.Max() {
			t.Errorf("%s: per-type max latency %d exceeds aggregate max %d", ts.Name, ts.Latency.Max(), res.Latency.Max())
		}
		commits += ts.Commits
		aborts += ts.Aborts
		latCount += ts.Latency.Count()
	}
	if commits != res.Commits || aborts != res.Aborts {
		t.Fatalf("per-txn sums (%d commits, %d aborts) != aggregate (%d, %d)", commits, aborts, res.Commits, res.Aborts)
	}
	if latCount != res.Latency.Count() {
		t.Fatalf("per-txn latency observations %d != aggregate %d", latCount, res.Latency.Count())
	}
}

func TestSmallBankAllSchemesSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 100_000, MeasureCycles: 500_000, AbortBackoff: 500}
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			res, _ := runSim(t, name, 8, smallConfig(), rc)
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing: %+v", name, res)
			}
			assertPerTxnConformance(t, res)
			t.Logf("%s", res.String())
		})
	}
}

func TestSmallBankAllSchemesNative(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 2_000_000, MeasureCycles: 20_000_000, AbortBackoff: 500} // ns
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			wl, err := smallbank.Build(db, smallConfig())
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Run(s, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing natively", name)
			}
			assertPerTxnConformance(t, res)
		})
	}
}

func TestSmallBankDeterministicSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 300_000, AbortBackoff: 500}
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			a, _ := runSim(t, name, 4, smallConfig(), rc)
			b, _ := runSim(t, name, 4, smallConfig(), rc)
			if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Tuples != b.Tuples {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

// latestCommitted is implemented by schemes whose committed state lives
// outside the live row (MVCC's version chains).
type latestCommitted interface {
	LatestCommitted(t *abyss.Table, slot int) []byte
}

// committedTotal sums every balance as the scheme committed it.
func committedTotal(s abyss.Scheme, wl *smallbank.Workload, accounts int) int64 {
	read := func(t *abyss.Table, slot int) []byte {
		if lc, ok := s.(latestCommitted); ok {
			return lc.LatestCommitted(t, slot)
		}
		return t.Row(slot)
	}
	var total int64
	for _, t := range []*abyss.Table{wl.Savings(), wl.Checking()} {
		for slot := 0; slot < accounts; slot++ {
			total += t.Schema.GetI64(read(t, slot), 1)
		}
	}
	return total
}

// TestSmallBankConservation runs a transfer-only mix (Amalgamate +
// SendPayment + Balance — no deposits or checks, so total money is an
// invariant) under every paper scheme and verifies the committed balances
// still sum to the initial total. A violation means a scheme produced a
// non-serializable (or non-atomic) history on the pairwise-transfer
// contention profile.
func TestSmallBankConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.Weights = [6]float64{20, 0, 0, 40, 0, 40}
	rc := abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 400_000, AbortBackoff: 500}
	want := smallbank.InitialTotal(cfg.Accounts)
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 8, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			wl, err := smallbank.Build(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Run(s, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing", name)
			}
			if got := committedTotal(s, wl, cfg.Accounts); got != want {
				t.Fatalf("%s lost money: committed total %d, want %d (diff %d cents over %d commits)",
					name, got, want, got-want, res.Commits)
			}
		})
	}
}

// TestSmallBankRegistry exercises the registered entry point: defaults
// round-trip, invalid parameters error, and the registry build matches a
// direct Build.
func TestSmallBankRegistry(t *testing.T) {
	found := false
	for _, name := range abyss.Workloads() {
		if name == "smallbank" {
			found = true
		}
	}
	if !found {
		t.Fatalf("smallbank not in workload registry: %v", abyss.Workloads())
	}

	p, err := abyss.DefaultWorkloadParams("smallbank")
	if err != nil {
		t.Fatal(err)
	}
	def := smallbank.DefaultConfig()
	if p.Accounts != def.Accounts || p.HotAccounts != def.HotAccounts || p.HotPct != def.HotPct {
		t.Fatalf("registry defaults %+v do not match smallbank.DefaultConfig() %+v", p, def)
	}

	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Accounts = 1 // transactions need two distinct customers
	if _, err := db.BuildWorkload("smallbank", p); err == nil {
		t.Fatal("Accounts=1 should be rejected")
	}
	p.Accounts = 256
	p.HotPct = 1.5
	if _, err := db.BuildWorkload("smallbank", p); err == nil {
		t.Fatal("HotPct=1.5 should be rejected")
	}
	// A drawable set of one customer would make the two-customer
	// transactions spin forever looking for a distinct counterparty.
	p.HotPct = 1
	p.HotAccounts = 1
	if _, err := db.BuildWorkload("smallbank", p); err == nil {
		t.Fatal("HotPct=1 with HotAccounts=1 should be rejected")
	}
	p.HotPct = 0.5
	p.HotAccounts = 8
	wl, err := db.BuildWorkload("smallbank", p)
	if err != nil {
		t.Fatal(err)
	}
	if wl == nil {
		t.Fatal("registry build returned nil workload")
	}
}
