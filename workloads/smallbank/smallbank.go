// Package smallbank implements the SmallBank banking benchmark (Alomari
// et al., "The Cost of Serializability on Platforms That Use Snapshot
// Isolation", ICDE 2008; extended with SendPayment in H-Store) as a
// workload for the abyss engine — and as the proof that the public API is
// sufficient: the package imports only abyss1000/abyss, no engine
// internals.
//
// The database is three tables keyed by customer id — ACCOUNTS (the
// customer roster), SAVINGS and CHECKING (one balance row each) — and six
// short transaction types: Balance, DepositChecking, TransactSavings,
// Amalgamate, WriteCheck and SendPayment. Transactions touch one or two
// customers, so the contention profile is very different from YCSB's
// 16-access scatter reads and TPC-C's warehouse funnels: conflicts are
// pairwise, footprints are tiny (2-4 rows), and a configurable hotspot
// (HotPct of draws land on the first HotAccounts customers) concentrates
// them — the regime where abort-heavy schemes thrash on a handful of hot
// balance rows while the rest of the table stays idle.
//
// Registering the package (import _ "abyss1000/workloads/smallbank") adds
// a "smallbank" entry to the abyss workload registry; Build offers the
// full Config, including per-procedure mix weights, for direct embedding.
package smallbank

import (
	"fmt"

	"abyss1000/abyss"
)

// Table and column layout. Balances are int64 cents.
const (
	// colCustID is the customer id column in every table.
	colCustID = 0
	// colName is ACCOUNTS' fixed-width customer name.
	colName = 1
	// colBalance is SAVINGS'/CHECKING's balance column.
	colBalance = 1
)

// Procedure names, in mix order (the order Config.Weights indexes).
const (
	ProcBalance         = "Balance"
	ProcDepositChecking = "DepositChecking"
	ProcTransactSavings = "TransactSavings"
	ProcAmalgamate      = "Amalgamate"
	ProcWriteCheck      = "WriteCheck"
	ProcSendPayment     = "SendPayment"
)

// Procedures lists the six transaction types in mix order.
var Procedures = []string{
	ProcBalance, ProcDepositChecking, ProcTransactSavings,
	ProcAmalgamate, ProcWriteCheck, ProcSendPayment,
}

// Config parameterizes the workload. Use DefaultConfig as the base.
type Config struct {
	// Accounts is the customer count (each has one savings and one
	// checking row).
	Accounts int

	// HotAccounts is the size of the hotspot: customer ids [0,
	// HotAccounts) form the contended set.
	HotAccounts int

	// HotPct is the probability a customer draw lands in the hotspot;
	// the rest are uniform over the remaining accounts. 0 disables the
	// hotspot (uniform access).
	HotPct float64

	// Weights are the relative frequencies of the six procedures in
	// Procedures order. Zero disables a procedure; at least one must be
	// positive.
	Weights [6]float64
}

// DefaultConfig returns the classic mix at laptop scale with a strong
// hotspot: 25% balance checks, the rest split over the five writers, and
// 90% of draws hitting 64 hot customers.
func DefaultConfig() Config {
	return Config{
		Accounts:    65536,
		HotAccounts: 64,
		HotPct:      0.9,
		Weights:     [6]float64{25, 15, 15, 15, 15, 15},
	}
}

// Initial balances (cents): savings/checking rows start with a
// deterministic per-customer amount so invariants are checkable.
const (
	initSavings  = 500_00
	initChecking = 100_00
)

// InitialTotal returns the sum of all balances right after Build — the
// quantity conserved by Amalgamate and SendPayment.
func InitialTotal(accounts int) int64 {
	return int64(accounts) * (initSavings + initChecking)
}

// Workload is a populated SmallBank database plus the procedure mix.
type Workload struct {
	cfg Config
	mix *abyss.Mix

	accounts, savings, checking *abyss.Table
	idxSavings, idxChecking     *abyss.Index

	nparts int
}

// Build validates cfg, creates and populates the three tables on db, and
// returns the ready Workload.
func Build(db *abyss.DB, cfg Config) (*Workload, error) {
	if cfg.Accounts < 2 {
		return nil, fmt.Errorf("smallbank: Accounts must be >= 2 (transactions move money between two customers), got %d", cfg.Accounts)
	}
	if cfg.HotPct < 0 || cfg.HotPct > 1 {
		return nil, fmt.Errorf("smallbank: HotPct must be in [0, 1], got %g", cfg.HotPct)
	}
	if cfg.HotPct > 0 && (cfg.HotAccounts < 1 || cfg.HotAccounts > cfg.Accounts) {
		return nil, fmt.Errorf("smallbank: HotAccounts must be in [1, Accounts=%d] when HotPct > 0, got %d", cfg.Accounts, cfg.HotAccounts)
	}
	if cfg.HotPct == 1 && cfg.HotAccounts < 2 {
		// With every draw pinned to a single customer, the two-customer
		// transactions could never find a distinct counterparty.
		return nil, fmt.Errorf("smallbank: HotPct = 1 needs HotAccounts >= 2 (transactions move money between two distinct customers), got %d", cfg.HotAccounts)
	}
	w := &Workload{cfg: cfg, nparts: db.Cores()}

	n := cfg.Accounts
	var err error
	w.accounts, err = db.CreateTable(abyss.TableSpec{
		Name:     "SB_ACCOUNTS",
		Cols:     []abyss.Col{{Name: "CUSTID", Width: 8}, {Name: "NAME", Width: 16}},
		Capacity: n, Loaded: n,
	})
	if err != nil {
		return nil, err
	}
	w.savings, err = db.CreateTable(abyss.TableSpec{
		Name:     "SB_SAVINGS",
		Cols:     []abyss.Col{{Name: "CUSTID", Width: 8}, {Name: "BAL", Width: 8}},
		Capacity: n, Loaded: n,
	})
	if err != nil {
		return nil, err
	}
	w.checking, err = db.CreateTable(abyss.TableSpec{
		Name:     "SB_CHECKING",
		Cols:     []abyss.Col{{Name: "CUSTID", Width: 8}, {Name: "BAL", Width: 8}},
		Capacity: n, Loaded: n,
	})
	if err != nil {
		return nil, err
	}
	// ACCOUNTS is scanned only at setup; SAVINGS and CHECKING are probed
	// by every transaction.
	w.idxSavings, err = db.CreateIndex("SB_SAVINGS_PK", w.savings, n)
	if err != nil {
		return nil, err
	}
	w.idxChecking, err = db.CreateIndex("SB_CHECKING_PK", w.checking, n)
	if err != nil {
		return nil, err
	}

	for i := 0; i < n; i++ {
		cust := uint64(i)

		arow := w.accounts.LoadRow(i)
		asc := w.accounts.Schema
		asc.PutU64(arow, colCustID, cust)
		name := asc.Bytes(arow, colName)
		copy(name, "cust")
		for j, d := 15, cust; j >= 4; j, d = j-1, d/10 {
			name[j] = byte('0' + d%10)
		}

		srow := w.savings.LoadRow(i)
		w.savings.Schema.PutU64(srow, colCustID, cust)
		w.savings.Schema.PutI64(srow, colBalance, initSavings)
		w.idxSavings.LoadInsert(cust, i)

		crow := w.checking.LoadRow(i)
		w.checking.Schema.PutU64(crow, colCustID, cust)
		w.checking.Schema.PutI64(crow, colBalance, initChecking)
		w.idxChecking.LoadInsert(cust, i)
	}

	specs := []abyss.TxnSpec{
		{Name: ProcBalance, Weight: cfg.Weights[0], New: func(int) abyss.Txn { return &balanceTxn{wl: w} }},
		{Name: ProcDepositChecking, Weight: cfg.Weights[1], New: func(int) abyss.Txn { return &depositCheckingTxn{wl: w} }},
		{Name: ProcTransactSavings, Weight: cfg.Weights[2], New: func(int) abyss.Txn { return &transactSavingsTxn{wl: w} }},
		{Name: ProcAmalgamate, Weight: cfg.Weights[3], New: func(int) abyss.Txn { return &amalgamateTxn{wl: w} }},
		{Name: ProcWriteCheck, Weight: cfg.Weights[4], New: func(int) abyss.Txn { return &writeCheckTxn{wl: w} }},
		{Name: ProcSendPayment, Weight: cfg.Weights[5], New: func(int) abyss.Txn { return &sendPaymentTxn{wl: w} }},
	}
	// Drop zero-weight procedures so the Mix validates the remainder.
	active := specs[:0]
	for _, s := range specs {
		if s.Weight > 0 {
			active = append(active, s)
		}
	}
	mix, err := db.NewMix(active...)
	if err != nil {
		return nil, err
	}
	w.mix = mix
	return w, nil
}

// Next implements abyss.Workload.
func (w *Workload) Next(p abyss.Proc) abyss.Txn { return w.mix.Next(p) }

// TxnTypes implements abyss.TxnTyper: the active procedure names in mix
// order, so Result.PerTxn attributes commits, aborts and latency to each
// of the six banking transactions.
func (w *Workload) TxnTypes() []string { return w.mix.TxnTypes() }

// TxnTypeOf implements abyss.TxnTyper.
func (w *Workload) TxnTypeOf(t abyss.Txn) int { return w.mix.TxnTypeOf(t) }

// Savings and Checking return the balance tables (for checkers).
func (w *Workload) Savings() *abyss.Table { return w.savings }

// Checking returns the checking-balance table.
func (w *Workload) Checking() *abyss.Table { return w.checking }

// customer draws one customer id with the configured hotspot skew.
func (w *Workload) customer(p abyss.Proc) uint64 {
	rng := p.Rand()
	cfg := &w.cfg
	if cfg.HotPct > 0 && rng.Float64() < cfg.HotPct {
		return uint64(rng.Intn(cfg.HotAccounts))
	}
	if cfg.HotAccounts >= cfg.Accounts {
		return uint64(rng.Intn(cfg.Accounts))
	}
	return uint64(cfg.HotAccounts + rng.Intn(cfg.Accounts-cfg.HotAccounts))
}

// customerPair draws two distinct customers.
func (w *Workload) customerPair(p abyss.Proc) (uint64, uint64) {
	a := w.customer(p)
	for {
		b := w.customer(p)
		if b != a {
			return a, b
		}
	}
}

// partition maps a customer to an H-STORE partition: SAVINGS and CHECKING
// rows of one customer always co-reside.
func (w *Workload) partition(cust uint64) int {
	return int(cust % uint64(w.nparts))
}

func init() {
	abyss.MustRegisterWorkload(abyss.WorkloadInfo{
		Name:      "smallbank",
		Desc:      "SmallBank: six short banking transactions over hot checking/savings rows (extension)",
		Extension: true,
		Defaults: func() abyss.WorkloadParams {
			c := DefaultConfig()
			return abyss.WorkloadParams{
				Accounts:    c.Accounts,
				HotAccounts: c.HotAccounts,
				HotPct:      c.HotPct,
			}
		},
		Build: func(db *abyss.DB, p abyss.WorkloadParams) (abyss.Workload, error) {
			cfg := DefaultConfig()
			cfg.Accounts = p.Accounts
			cfg.HotAccounts = p.HotAccounts
			cfg.HotPct = p.HotPct
			return Build(db, cfg)
		},
	})
}
