package tatp

import (
	"abyss1000/abyss"
	"abyss1000/query"
)

// TATP transactions commit even when the row they target is absent — the
// benchmark counts that as a "failed" outcome of a successful
// transaction. The procedures below therefore return nil on a miss; only
// concurrency-control aborts propagate.

// getSubscriberDataTxn reads one subscriber row (35% of the mix).
type getSubscriberDataTxn struct {
	wl    *Workload
	sid   uint64
	parts []int
}

func (t *getSubscriberDataTxn) Generate(p abyss.Proc) {
	t.sid = t.wl.drawSubscriber(p)
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *getSubscriberDataTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	slot, ok := tx.Lookup(w.idxSub, t.sid)
	if !ok {
		panic("tatp: subscriber missing")
	}
	_, err := tx.Read(w.subscriber, slot)
	return err
}

func (t *getSubscriberDataTxn) Partitions() []int { return t.parts }

// getNewDestinationTxn (10%) finds the active forwarding number for a
// (subscriber, facility) at a query time: the benchmark's one range
// query, executed as an abyss1000/query plan over the CALL_FORWARDING
// ordered index — forwardings with START_TIME <= time are one contiguous
// key range, and the filter keeps active rows whose END_TIME is after
// the call.
type getNewDestinationTxn struct {
	wl    *Workload
	sid   uint64
	sf    uint64
	start uint64
	end   uint64
	dest  []uint64
	parts []int
}

func (t *getNewDestinationTxn) Generate(p abyss.Proc) {
	rng := p.Rand()
	t.sid = t.wl.drawSubscriber(p)
	t.sf = uint64(rng.Intn(4)) + 1
	t.start = cfStarts[rng.Intn(3)]
	t.end = uint64(rng.Intn(24)) + 1
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *getNewDestinationTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl

	// The facility must exist and be active.
	sfSlot, ok := tx.Lookup(w.idxSF, sfKey(t.sid, t.sf))
	if !ok {
		return nil // failure outcome: no such facility
	}
	sfRow, err := tx.Read(w.specialFacility, sfSlot)
	if err != nil {
		return err
	}
	if w.specialFacility.Schema.GetU64(sfRow, colSFActive) == 0 {
		return nil // failure outcome: facility inactive
	}

	t.dest = t.dest[:0]
	err = query.IndexRange(w.ordCF, cfKey(t.sid, t.sf, 0), cfKey(t.sid, t.sf, t.start)).
		Filter(func(tu query.Tuple) bool {
			return tu[colCFActive] == 1 && t.end < tu[colCFEnd]
		}).
		Project(colCFNumberX).
		Run(tx, func(tu query.Tuple) error {
			t.dest = append(t.dest, tu[0])
			return nil
		})
	return err
}

func (t *getNewDestinationTxn) Partitions() []int { return t.parts }

// getAccessDataTxn reads one ACCESS_INFO row (35%); about half the
// (subscriber, type) pairs exist.
type getAccessDataTxn struct {
	wl    *Workload
	sid   uint64
	ai    uint64
	parts []int
}

func (t *getAccessDataTxn) Generate(p abyss.Proc) {
	t.sid = t.wl.drawSubscriber(p)
	t.ai = uint64(p.Rand().Intn(4)) + 1
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *getAccessDataTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	slot, ok := tx.Lookup(w.idxAI, aiKey(t.sid, t.ai))
	if !ok {
		return nil // failure outcome
	}
	_, err := tx.Read(w.accessInfo, slot)
	return err
}

func (t *getAccessDataTxn) Partitions() []int { return t.parts }

// updateSubscriberDataTxn (2%) toggles SUBSCRIBER.BIT_1 and overwrites
// the facility's DATA_A; the facility may not exist.
type updateSubscriberDataTxn struct {
	wl    *Workload
	sid   uint64
	sf    uint64
	bit   uint64
	data  uint64
	parts []int
}

func (t *updateSubscriberDataTxn) Generate(p abyss.Proc) {
	rng := p.Rand()
	t.sid = t.wl.drawSubscriber(p)
	t.sf = uint64(rng.Intn(4)) + 1
	t.bit = uint64(rng.Intn(2))
	t.data = rng.Uint64()
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *updateSubscriberDataTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	slot, ok := tx.Lookup(w.idxSub, t.sid)
	if !ok {
		panic("tatp: subscriber missing")
	}
	row, err := tx.UpdateRow(w.subscriber, slot)
	if err != nil {
		return err
	}
	w.subscriber.Schema.PutU64(row, colBit1, t.bit)

	sfSlot, ok := tx.Lookup(w.idxSF, sfKey(t.sid, t.sf))
	if !ok {
		return nil // failure outcome: subscriber update still commits
	}
	sfRow, err := tx.UpdateRow(w.specialFacility, sfSlot)
	if err != nil {
		return err
	}
	w.specialFacility.Schema.PutU64(sfRow, colSFData, t.data)
	return nil
}

func (t *updateSubscriberDataTxn) Partitions() []int { return t.parts }

// updateLocationTxn (14%) overwrites SUBSCRIBER.VLR_LOCATION.
type updateLocationTxn struct {
	wl    *Workload
	sid   uint64
	loc   uint64
	parts []int
}

func (t *updateLocationTxn) Generate(p abyss.Proc) {
	t.sid = t.wl.drawSubscriber(p)
	t.loc = p.Rand().Uint64()
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *updateLocationTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	slot, ok := tx.Lookup(w.idxSub, t.sid)
	if !ok {
		panic("tatp: subscriber missing")
	}
	row, err := tx.UpdateRow(w.subscriber, slot)
	if err != nil {
		return err
	}
	w.subscriber.Schema.PutU64(row, colVlrLoc, t.loc)
	return nil
}

func (t *updateLocationTxn) Partitions() []int { return t.parts }

// insertCallForwardingTxn (2%) adds a forwarding for one of the
// subscriber's facilities. The facility list comes from a range scan
// over the SPECIAL_FACILITY ordered index; the write on the facility row
// is the existence guard that serializes concurrent inserts of the same
// (subscriber, facility, start) — see the package comment.
type insertCallForwardingTxn struct {
	wl     *Workload
	sid    uint64
	pick   int
	start  uint64
	end    uint64
	numx   uint64
	budget int
	parts  []int
}

func (t *insertCallForwardingTxn) Generate(p abyss.Proc) {
	rng := p.Rand()
	t.sid = t.wl.drawSubscriber(p)
	t.pick = rng.Intn(4)
	t.start = cfStarts[rng.Intn(3)]
	t.end = t.start + uint64(rng.Intn(8)) + 1
	t.numx = rng.Uint64()
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *insertCallForwardingTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	csc := w.callForwarding.Schema

	facilities := tx.RangeScan(w.ordSF, sfKey(t.sid, 1), sfKey(t.sid, 4))
	if len(facilities) == 0 {
		return nil // failure outcome: subscriber has no facilities
	}
	fe := facilities[t.pick%len(facilities)]
	sf := fe.Key & 0xff

	// Existence guard: the facility row's CF mask decides exists vs
	// stage, read and updated under this transaction's write on the
	// row, so two concurrent inserts of the same combination conflict
	// here and the mask bit commits atomically with the staged row. The
	// index lookup alone cannot make the decision — a committed row's
	// index entries publish only after its locks release, so a lookup
	// can still miss a row the mask already records.
	sfRow, err := tx.UpdateRow(w.specialFacility, int(fe.Slot))
	if err != nil {
		return err
	}
	ssc := w.specialFacility.Schema
	mask := ssc.GetU64(sfRow, colSFCFMask)
	bit := uint64(1) << (t.start / 8)

	if mask&bit != 0 {
		slot, ok := tx.Lookup(w.idxCF, cfKey(t.sid, sf, t.start))
		if !ok {
			// Materialized but not yet published; like a present,
			// active forwarding this is the failure outcome.
			return nil
		}
		row, err := tx.Read(w.callForwarding, slot)
		if err != nil {
			return err
		}
		if csc.GetU64(row, colCFActive) == 1 {
			return nil // failure outcome: forwarding already exists
		}
		// Reactivate the tombstone.
		wrow, err := tx.UpdateRow(w.callForwarding, slot)
		if err != nil {
			return err
		}
		csc.PutU64(wrow, colCFActive, 1)
		csc.PutU64(wrow, colCFEnd, t.end)
		csc.PutU64(wrow, colCFNumberX, t.numx)
		return nil
	}

	if t.budget <= 0 {
		return nil // failure outcome: this worker's insert segment is spent
	}
	t.budget--
	ssc.PutU64(sfRow, colSFCFMask, mask|bit)
	key := cfKey(t.sid, sf, t.start)
	row := tx.InsertRowOrdered(w.idxCF, key, w.ordCF, key)
	csc.PutU64(row, colCFSID, t.sid)
	csc.PutU64(row, colCFSFType, sf)
	csc.PutU64(row, colCFStart, t.start)
	csc.PutU64(row, colCFEnd, t.end)
	csc.PutU64(row, colCFActive, 1)
	csc.PutU64(row, colCFNumberX, t.numx)
	return nil
}

func (t *insertCallForwardingTxn) Partitions() []int { return t.parts }

// deleteCallForwardingTxn (2%) tombstones a forwarding (ACTIVE = 0).
type deleteCallForwardingTxn struct {
	wl    *Workload
	sid   uint64
	sf    uint64
	start uint64
	parts []int
}

func (t *deleteCallForwardingTxn) Generate(p abyss.Proc) {
	rng := p.Rand()
	t.sid = t.wl.drawSubscriber(p)
	t.sf = uint64(rng.Intn(4)) + 1
	t.start = cfStarts[rng.Intn(3)]
	t.parts = append(t.parts[:0], t.wl.partition(t.sid))
}

func (t *deleteCallForwardingTxn) Run(tx *abyss.TxnCtx) error {
	w := t.wl
	csc := w.callForwarding.Schema
	slot, ok := tx.Lookup(w.idxCF, cfKey(t.sid, t.sf, t.start))
	if !ok {
		return nil // failure outcome
	}
	row, err := tx.Read(w.callForwarding, slot)
	if err != nil {
		return err
	}
	if csc.GetU64(row, colCFActive) == 0 {
		return nil // failure outcome: already deleted
	}
	wrow, err := tx.UpdateRow(w.callForwarding, slot)
	if err != nil {
		return err
	}
	csc.PutU64(wrow, colCFActive, 0)
	return nil
}

func (t *deleteCallForwardingTxn) Partitions() []int { return t.parts }

var (
	_ abyss.Generator = (*getSubscriberDataTxn)(nil)
	_ abyss.Generator = (*getNewDestinationTxn)(nil)
	_ abyss.Generator = (*getAccessDataTxn)(nil)
	_ abyss.Generator = (*updateSubscriberDataTxn)(nil)
	_ abyss.Generator = (*updateLocationTxn)(nil)
	_ abyss.Generator = (*insertCallForwardingTxn)(nil)
	_ abyss.Generator = (*deleteCallForwardingTxn)(nil)
)
