package tatp_test

// TATP conformance: the workload must run under every registered paper
// scheme on both runtimes with every procedure committing, stay
// deterministic on the simulator, and keep the CALL_FORWARDING
// invariants of the tombstone protocol. Like the workload, the test file
// imports only public packages.

import (
	"testing"

	"abyss1000/abyss"
	"abyss1000/workloads/tatp"
)

func smallConfig() tatp.Config {
	cfg := tatp.DefaultConfig()
	cfg.Subscribers = 2048
	cfg.InsertsPerWorker = 512
	return cfg
}

// runSim builds and runs one TATP measurement on a fresh simulated DB.
func runSim(t *testing.T, scheme string, cores int, seed int64, rc abyss.RunConfig) (abyss.Result, *tatp.Workload) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: cores, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := tatp.Build(db, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(s, wl, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res, wl
}

// assertAllProceduresCommit checks PerTxn covers the seven procedures in
// mix order and that each of them committed at least once.
func assertAllProceduresCommit(t *testing.T, res abyss.Result) {
	t.Helper()
	if len(res.PerTxn) != len(tatp.Procedures) {
		t.Fatalf("PerTxn has %d entries, want %d", len(res.PerTxn), len(tatp.Procedures))
	}
	for i := range res.PerTxn {
		ts := &res.PerTxn[i]
		if ts.Name != tatp.Procedures[i] {
			t.Errorf("PerTxn[%d].Name = %q, want %q", i, ts.Name, tatp.Procedures[i])
		}
		if ts.Commits == 0 {
			t.Errorf("%s never committed", ts.Name)
		}
	}
}

func TestTATPAllSchemesSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 100_000, MeasureCycles: 2_000_000, AbortBackoff: 500}
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			res, _ := runSim(t, name, 8, 7, rc)
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing: %+v", name, res)
			}
			assertAllProceduresCommit(t, res)
			t.Logf("%s", res.String())
		})
	}
}

func TestTATPAllSchemesNative(t *testing.T) {
	if testing.Short() {
		t.Skip("native wall-clock runs skipped in -short")
	}
	rc := abyss.RunConfig{WarmupCycles: 2_000_000, MeasureCycles: 30_000_000, AbortBackoff: 500} // ns
	for _, name := range abyss.PaperSchemes() {
		t.Run(name, func(t *testing.T) {
			db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeNative, Cores: 4, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			wl, err := tatp.Build(db, smallConfig())
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Run(s, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatalf("%s committed nothing natively", name)
			}
			if len(res.PerTxn) != len(tatp.Procedures) {
				t.Fatalf("PerTxn has %d entries, want %d", len(res.PerTxn), len(tatp.Procedures))
			}
		})
	}
}

func TestTATPDeterministicSim(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 50_000, MeasureCycles: 1_000_000, AbortBackoff: 500}
	for _, name := range []string{"NO_WAIT", "MVCC", "HSTORE"} {
		t.Run(name, func(t *testing.T) {
			a, _ := runSim(t, name, 4, 11, rc)
			b, _ := runSim(t, name, 4, 11, rc)
			if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Tuples != b.Tuples {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

// TestTATPCallForwardingIntegrity checks the tombstone protocol's
// invariants after a serializable run: every CALL_FORWARDING row —
// pre-loaded or runtime-inserted — carries a well-formed
// (subscriber, facility, start) combination, and no combination appears
// twice (the existence guard on the facility row must prevent duplicate
// staging).
func TestTATPCallForwardingIntegrity(t *testing.T) {
	rc := abyss.RunConfig{WarmupCycles: 0, MeasureCycles: 4_000_000, AbortBackoff: 500}
	_, wl := runSim(t, "NO_WAIT", 8, 23, rc)

	cf := wl.CallForwarding()
	sc := cf.Schema
	type combo struct{ sid, sf, start uint64 }
	seen := map[combo]bool{}
	rows := 0
	for slot := 0; slot < cf.Capacity(); slot++ {
		row := cf.Row(slot)
		sid := sc.GetU64(row, 0)
		sf := sc.GetU64(row, 1)
		start := sc.GetU64(row, 2)
		if slot >= cf.Loaded() && sf == 0 {
			continue // unallocated insert-segment slot
		}
		rows++
		if sf < 1 || sf > 4 {
			t.Fatalf("slot %d: facility type %d out of range", slot, sf)
		}
		if start != 0 && start != 8 && start != 16 {
			t.Fatalf("slot %d: start time %d not in {0, 8, 16}", slot, start)
		}
		c := combo{sid, sf, start}
		if seen[c] {
			t.Fatalf("slot %d: duplicate forwarding %+v", slot, c)
		}
		seen[c] = true
	}
	if rows <= cf.Loaded() {
		t.Fatalf("no runtime inserts materialized (%d rows, %d loaded)", rows, cf.Loaded())
	}
}

// TestTATPRegistry exercises the registered entry point.
func TestTATPRegistry(t *testing.T) {
	found := false
	for _, name := range abyss.Workloads() {
		if name == "tatp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tatp not in workload registry: %v", abyss.Workloads())
	}

	p, err := abyss.DefaultWorkloadParams("tatp")
	if err != nil {
		t.Fatal(err)
	}
	def := tatp.DefaultConfig()
	if p.Subscribers != def.Subscribers || p.InsertsPerWorker != def.InsertsPerWorker {
		t.Fatalf("registry defaults %+v do not match tatp.DefaultConfig() %+v", p, def)
	}

	db, err := abyss.Open(abyss.Options{Cores: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Subscribers = 0
	if _, err := db.BuildWorkload("tatp", p); err == nil {
		t.Fatal("Subscribers=0 should be rejected")
	}
	p.Subscribers = 512
	wl, err := db.BuildWorkload("tatp", p)
	if err != nil {
		t.Fatal(err)
	}
	if wl == nil {
		t.Fatal("registry build returned nil workload")
	}
}
