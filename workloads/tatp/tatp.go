// Package tatp implements the TATP telecom benchmark (Neuvonen et al.,
// "Telecom Application Transaction Processing Benchmark", 2009) as a
// workload for the abyss engine, built — like workloads/smallbank —
// purely on the public abyss API plus the query operator layer.
//
// TATP models a Home Location Register: four tables keyed by subscriber
// id (SUBSCRIBER, ACCESS_INFO, SPECIAL_FACILITY, CALL_FORWARDING) and
// seven very short transactions, 80% of them reads, drawn at the
// standard mix weights. The workload's signature traits are tiny
// single-subscriber footprints (almost no cross-transaction conflict at
// scale), reads that legitimately miss (a "failure" in TATP commits —
// the row simply is not there), and a range query, GetNewDestination,
// whose access path here is an ordered secondary index on
// CALL_FORWARDING executed through an abyss1000/query plan.
//
// Two departures from the spec sheet, both forced by the engine's
// storage model and shared with the TPC-C port:
//
//   - DeleteCallForwarding tombstones the row (ACTIVE = 0) instead of
//     deleting it — the engine has no index delete path — and
//     InsertCallForwarding reactivates a tombstone when one exists,
//     staging a genuinely new row (deferred-insert protocol) only for a
//     never-seen (subscriber, facility, start) combination.
//   - Each insert/delete first declares a write on the owning
//     SPECIAL_FACILITY row. That write is the existence guard: two
//     concurrent inserts of the same combination conflict on the parent
//     row under every scheme, so the lookup-miss-then-insert race cannot
//     stage duplicates.
//
// Registering the package (import _ "abyss1000/workloads/tatp") adds a
// "tatp" entry to the abyss workload registry.
package tatp

import (
	"fmt"

	"abyss1000/abyss"
)

// SUBSCRIBER columns.
const (
	colSID    = 0 // subscriber id
	colBit1   = 1 // BIT_1: flag toggled by UpdateSubscriberData
	colMscLoc = 2 // MSC_LOCATION
	colVlrLoc = 3 // VLR_LOCATION: overwritten by UpdateLocation
)

// ACCESS_INFO columns.
const (
	colAISID  = 0
	colAIType = 1 // 1..4
	colAIData = 2
)

// SPECIAL_FACILITY columns.
const (
	colSFSID    = 0
	colSFType   = 1 // 1..4
	colSFActive = 2 // 0/1
	colSFData   = 3 // DATA_A: overwritten by UpdateSubscriberData
	// colSFCFMask is not in the TATP schema: bit start/8 records that a
	// CALL_FORWARDING row for (subscriber, facility, start) is
	// materialized (active or tombstoned). InsertCallForwarding reads
	// and updates it under its write on this row, so the
	// exists-or-stage decision commits atomically with the staged row —
	// the index lookup alone cannot decide, because the deferred-insert
	// protocol publishes a committed row's index entries only after its
	// locks release.
	colSFCFMask = 4
)

// CALL_FORWARDING columns.
const (
	colCFSID     = 0
	colCFSFType  = 1 // 1..4
	colCFStart   = 2 // 0, 8 or 16
	colCFEnd     = 3 // hour the forwarding ends
	colCFActive  = 4 // 0 = tombstoned by DeleteCallForwarding
	colCFNumberX = 5 // forwarded-to number
)

// Procedure names, in mix order.
const (
	ProcGetSubscriberData    = "GetSubscriberData"
	ProcGetNewDestination    = "GetNewDestination"
	ProcGetAccessData        = "GetAccessData"
	ProcUpdateSubscriberData = "UpdateSubscriberData"
	ProcUpdateLocation       = "UpdateLocation"
	ProcInsertCallForwarding = "InsertCallForwarding"
	ProcDeleteCallForwarding = "DeleteCallForwarding"
)

// Procedures lists the seven transaction types in mix order.
var Procedures = []string{
	ProcGetSubscriberData, ProcGetNewDestination, ProcGetAccessData,
	ProcUpdateSubscriberData, ProcUpdateLocation,
	ProcInsertCallForwarding, ProcDeleteCallForwarding,
}

// weights are the standard TATP mix percentages, in Procedures order.
var weights = [7]float64{35, 10, 35, 2, 14, 2, 2}

// Config parameterizes the workload. Use DefaultConfig as the base.
type Config struct {
	// Subscribers is the SUBSCRIBER row count; every other table's
	// population derives deterministically from it.
	Subscribers int

	// InsertsPerWorker sizes each worker's CALL_FORWARDING insert
	// segment. A worker that exhausts its budget keeps running —
	// InsertCallForwarding then reports the spec's "failure" outcome
	// (still a commit) instead of staging a row.
	InsertsPerWorker int
}

// DefaultConfig returns the benchmark at laptop scale.
func DefaultConfig() Config {
	return Config{Subscribers: 65536, InsertsPerWorker: 4096}
}

// Key layouts. Subscriber ids are dense from 0, facility/access types are
// 1..4 and start times 0/8/16, so the packed keys below are collision-free
// and make per-(subscriber, facility) ranges contiguous in the ordered
// indexes.
func aiKey(sid uint64, ai uint64) uint64 { return sid<<8 | ai }
func sfKey(sid uint64, sf uint64) uint64 { return sid<<8 | sf }
func cfKey(sid, sf, start uint64) uint64 { return sid<<16 | sf<<8 | start }

// mix64 is a splitmix-style finalizer: the deterministic per-subscriber
// population derives from it, so loading needs no RNG and two Builds of
// the same Config produce identical databases.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// population describes subscriber sid's derived rows: nAI access-info
// types (1..nAI), nSF facility types (1..nSF), per-facility active flags
// and call-forwarding start-time counts.
type population struct{ h uint64 }

func popOf(sid uint64) population { return population{mix64(sid + 1)} }

func (p population) nAI() int { return 1 + int(p.h&3) }
func (p population) nSF() int { return 1 + int(p.h>>2&3) }

// sfActive reports whether facility sf starts active (7/8 of them do).
func (p population) sfActive(sf uint64) bool { return p.h>>(4+sf)&7 != 0 }

// cfCount is the number of pre-loaded call forwardings for facility sf:
// 0-3 start times, loaded in 0, 8, 16 order.
func (p population) cfCount(sf uint64) int { return int(p.h >> (10 + 3*sf) & 3) }

// cfStarts enumerates the benchmark's three start times.
var cfStarts = [3]uint64{0, 8, 16}

// Workload is a populated TATP database plus the procedure mix.
type Workload struct {
	cfg Config
	mix *abyss.Mix

	subscriber, accessInfo, specialFacility, callForwarding *abyss.Table

	idxSub, idxAI, idxSF, idxCF *abyss.Index
	ordSF, ordCF                *abyss.OrderedIndex

	nparts int
}

// Build validates cfg, creates and populates the four tables on db, and
// returns the ready Workload.
func Build(db *abyss.DB, cfg Config) (*Workload, error) {
	if cfg.Subscribers < 1 {
		return nil, fmt.Errorf("tatp: Subscribers must be positive, got %d", cfg.Subscribers)
	}
	if cfg.Subscribers > 1<<47 {
		return nil, fmt.Errorf("tatp: Subscribers must fit the packed key layout (<= 2^47), got %d", cfg.Subscribers)
	}
	if cfg.InsertsPerWorker < 0 {
		return nil, fmt.Errorf("tatp: InsertsPerWorker must be non-negative, got %d", cfg.InsertsPerWorker)
	}
	w := &Workload{cfg: cfg, nparts: db.Cores()}

	// Pass 1: derive the exact population so tables load densely.
	nSub := cfg.Subscribers
	nAI, nSF, nCF := 0, 0, 0
	for i := 0; i < nSub; i++ {
		p := popOf(uint64(i))
		nAI += p.nAI()
		nSF += p.nSF()
		for sf := 1; sf <= p.nSF(); sf++ {
			nCF += p.cfCount(uint64(sf))
		}
	}

	var err error
	w.subscriber, err = db.CreateTable(abyss.TableSpec{
		Name: "SUBSCRIBER",
		Cols: []abyss.Col{
			{Name: "S_ID", Width: 8}, {Name: "BIT_1", Width: 8},
			{Name: "MSC_LOCATION", Width: 8}, {Name: "VLR_LOCATION", Width: 8},
		},
		Capacity: nSub, Loaded: nSub,
	})
	if err != nil {
		return nil, err
	}
	w.accessInfo, err = db.CreateTable(abyss.TableSpec{
		Name: "ACCESS_INFO",
		Cols: []abyss.Col{
			{Name: "AI_S_ID", Width: 8}, {Name: "AI_TYPE", Width: 8},
			{Name: "AI_DATA", Width: 8},
		},
		Capacity: nAI, Loaded: nAI,
	})
	if err != nil {
		return nil, err
	}
	w.specialFacility, err = db.CreateTable(abyss.TableSpec{
		Name: "SPECIAL_FACILITY",
		Cols: []abyss.Col{
			{Name: "SF_S_ID", Width: 8}, {Name: "SF_TYPE", Width: 8},
			{Name: "SF_IS_ACTIVE", Width: 8}, {Name: "SF_DATA_A", Width: 8},
			{Name: "SF_CF_MASK", Width: 8},
		},
		Capacity: nSF, Loaded: nSF,
	})
	if err != nil {
		return nil, err
	}
	w.callForwarding, err = db.CreateTable(abyss.TableSpec{
		Name: "CALL_FORWARDING",
		Cols: []abyss.Col{
			{Name: "CF_S_ID", Width: 8}, {Name: "CF_SF_TYPE", Width: 8},
			{Name: "CF_START_TIME", Width: 8}, {Name: "CF_END_TIME", Width: 8},
			{Name: "CF_ACTIVE", Width: 8}, {Name: "CF_NUMBERX", Width: 8},
		},
		Capacity: nCF + cfg.InsertsPerWorker*db.Cores(), Loaded: nCF,
	})
	if err != nil {
		return nil, err
	}

	w.idxSub, err = db.CreateIndex("SUBSCRIBER_PK", w.subscriber, nSub)
	if err != nil {
		return nil, err
	}
	w.idxAI, err = db.CreateIndex("ACCESS_INFO_PK", w.accessInfo, nAI)
	if err != nil {
		return nil, err
	}
	w.idxSF, err = db.CreateIndex("SPECIAL_FACILITY_PK", w.specialFacility, nSF)
	if err != nil {
		return nil, err
	}
	w.idxCF, err = db.CreateIndex("CALL_FORWARDING_PK", w.callForwarding, nCF+1)
	if err != nil {
		return nil, err
	}
	// Ordered indexes: SF_ORD makes "the facility types of subscriber s"
	// one contiguous range; CF_ORD does the same for a facility's
	// forwardings ordered by start time (GetNewDestination's access path).
	w.ordSF, err = db.CreateOrderedIndex("SPECIAL_FACILITY_ORD", w.specialFacility)
	if err != nil {
		return nil, err
	}
	w.ordCF, err = db.CreateOrderedIndex("CALL_FORWARDING_ORD", w.callForwarding)
	if err != nil {
		return nil, err
	}

	// Pass 2: load.
	aiSlot, sfSlot, cfSlot := 0, 0, 0
	for i := 0; i < nSub; i++ {
		sid := uint64(i)
		p := popOf(sid)

		srow := w.subscriber.LoadRow(i)
		ssc := w.subscriber.Schema
		ssc.PutU64(srow, colSID, sid)
		ssc.PutU64(srow, colBit1, p.h>>1&1)
		ssc.PutU64(srow, colMscLoc, mix64(p.h))
		ssc.PutU64(srow, colVlrLoc, mix64(p.h+1))
		w.idxSub.LoadInsert(sid, i)

		for ai := uint64(1); ai <= uint64(p.nAI()); ai++ {
			row := w.accessInfo.LoadRow(aiSlot)
			sc := w.accessInfo.Schema
			sc.PutU64(row, colAISID, sid)
			sc.PutU64(row, colAIType, ai)
			sc.PutU64(row, colAIData, mix64(p.h+ai))
			w.idxAI.LoadInsert(aiKey(sid, ai), aiSlot)
			aiSlot++
		}

		for sf := uint64(1); sf <= uint64(p.nSF()); sf++ {
			row := w.specialFacility.LoadRow(sfSlot)
			sc := w.specialFacility.Schema
			sc.PutU64(row, colSFSID, sid)
			sc.PutU64(row, colSFType, sf)
			if p.sfActive(sf) {
				sc.PutU64(row, colSFActive, 1)
			}
			sc.PutU64(row, colSFData, mix64(p.h+16+sf))
			w.idxSF.LoadInsert(sfKey(sid, sf), sfSlot)
			w.ordSF.LoadInsert(sfKey(sid, sf), sfSlot)

			mask := uint64(0)
			for c := 0; c < p.cfCount(sf); c++ {
				start := cfStarts[c]
				mask |= 1 << (start / 8)
				crow := w.callForwarding.LoadRow(cfSlot)
				csc := w.callForwarding.Schema
				csc.PutU64(crow, colCFSID, sid)
				csc.PutU64(crow, colCFSFType, sf)
				csc.PutU64(crow, colCFStart, start)
				csc.PutU64(crow, colCFEnd, start+1+mix64(p.h+32+start)%8)
				csc.PutU64(crow, colCFActive, 1)
				csc.PutU64(crow, colCFNumberX, mix64(p.h+64+start))
				w.idxCF.LoadInsert(cfKey(sid, sf, start), cfSlot)
				w.ordCF.LoadInsert(cfKey(sid, sf, start), cfSlot)
				cfSlot++
			}
			sc.PutU64(row, colSFCFMask, mask)
			sfSlot++
		}
	}

	specs := []abyss.TxnSpec{
		{Name: ProcGetSubscriberData, Weight: weights[0], New: func(int) abyss.Txn { return &getSubscriberDataTxn{wl: w} }},
		{Name: ProcGetNewDestination, Weight: weights[1], New: func(int) abyss.Txn { return &getNewDestinationTxn{wl: w} }},
		{Name: ProcGetAccessData, Weight: weights[2], New: func(int) abyss.Txn { return &getAccessDataTxn{wl: w} }},
		{Name: ProcUpdateSubscriberData, Weight: weights[3], New: func(int) abyss.Txn { return &updateSubscriberDataTxn{wl: w} }},
		{Name: ProcUpdateLocation, Weight: weights[4], New: func(int) abyss.Txn { return &updateLocationTxn{wl: w} }},
		{Name: ProcInsertCallForwarding, Weight: weights[5], New: func(int) abyss.Txn {
			return &insertCallForwardingTxn{wl: w, budget: cfg.InsertsPerWorker}
		}},
		{Name: ProcDeleteCallForwarding, Weight: weights[6], New: func(int) abyss.Txn { return &deleteCallForwardingTxn{wl: w} }},
	}
	mix, err := db.NewMix(specs...)
	if err != nil {
		return nil, err
	}
	w.mix = mix
	return w, nil
}

// Next implements abyss.Workload.
func (w *Workload) Next(p abyss.Proc) abyss.Txn { return w.mix.Next(p) }

// TxnTypes implements abyss.TxnTyper.
func (w *Workload) TxnTypes() []string { return w.mix.TxnTypes() }

// TxnTypeOf implements abyss.TxnTyper.
func (w *Workload) TxnTypeOf(t abyss.Txn) int { return w.mix.TxnTypeOf(t) }

// CallForwarding returns the CALL_FORWARDING table (for checkers).
func (w *Workload) CallForwarding() *abyss.Table { return w.callForwarding }

// subscriber draws a uniform subscriber id (the benchmark's default,
// non-skewed population).
func (w *Workload) drawSubscriber(p abyss.Proc) uint64 {
	return uint64(p.Rand().Intn(w.cfg.Subscribers))
}

// partition maps a subscriber to an H-STORE partition; all four tables
// co-partition by subscriber id.
func (w *Workload) partition(sid uint64) int {
	return int(sid % uint64(w.nparts))
}

func init() {
	abyss.MustRegisterWorkload(abyss.WorkloadInfo{
		Name:      "tatp",
		Desc:      "TATP: seven short HLR transactions, 80% reads, range queries via ordered index (extension)",
		Extension: true,
		Defaults: func() abyss.WorkloadParams {
			c := DefaultConfig()
			return abyss.WorkloadParams{
				Subscribers:      c.Subscribers,
				InsertsPerWorker: c.InsertsPerWorker,
			}
		},
		Build: func(db *abyss.DB, p abyss.WorkloadParams) (abyss.Workload, error) {
			cfg := DefaultConfig()
			cfg.Subscribers = p.Subscribers
			if p.InsertsPerWorker > 0 {
				cfg.InsertsPerWorker = p.InsertsPerWorker
			}
			return Build(db, cfg)
		},
	})
}
