// Package chaos generates randomized workloads for the serializability
// conformance harness: a seeded generator draws a schema (1-3 tables of
// varying row counts and widths), a hot-set skew per table, and a
// weighted mix of read-only, read-modify-write, mixed, insert and
// abort-prone procedures — then the run executes it with history capture
// on (abyss.RunConfig.Check) and the checker must find the committed
// history serializable and final-state equivalent to a serial replay.
//
// The point is coverage the hand-written correctness workloads cannot
// give: every seed is a different shape — different contention, footprint
// mix, insert pressure and rollback pattern — so sweeping seeds across
// schemes and runtimes hunts for interleavings the designed tests never
// stage. Everything is deterministic per seed: the same Config.Seed
// produces the same schema and the same per-worker draw streams, so a
// failing (seed, scheme, cores) triple is a one-line repro
// (`abyss-sim -check -workload chaos -scheme S -cores C -seed N`).
//
// Every table also carries an ordered index, and a per-seed RangeScan
// procedure reads (and sometimes rewrites) the rows an index range scan
// returns. One conformance caveat: range scans are latch-consistent but
// not phantom-protected — no scheme implements next-key locking, so a
// concurrent committed insert may or may not appear in an overlapping
// scan, and the engine promises only tuple-level serializability. The
// history checker shares that granularity (it verifies the reads and
// writes of individual tuples, not predicate stability), so the sweep
// still passes with scan-bearing procedures; range isolation weaker than
// full serializability is documented engine behavior, not a checker gap
// being papered over.
//
// Like abyss1000/workloads/smallbank, the package imports only the public
// abyss API and registers itself ("chaos") on import.
package chaos

import (
	"fmt"
	"math/rand"

	"abyss1000/abyss"
)

// Procedure names, in mix order.
const (
	ProcReadOnly   = "ReadOnly"
	ProcRMW        = "RMW"
	ProcMixed      = "Mixed"
	ProcInsert     = "Insert"
	ProcAbortProne = "AbortProne"
	ProcRangeScan  = "RangeScan"
)

// Config parameterizes the generator. Use DefaultConfig as the base.
type Config struct {
	// Seed drives every shape decision (table count, sizes, skew, mix
	// weights) and, via the run's worker RNGs, every access draw. Equal
	// seeds on equal Options give equal workloads.
	Seed int64

	// MaxRows bounds each table's loaded row count; actual sizes are
	// drawn in [2, MaxRows]. Small tables mean real conflicts.
	MaxRows int

	// Ops bounds the row accesses per transaction; actual counts are
	// drawn in [1, Ops].
	Ops int
}

// DefaultConfig returns the sweep-sized generator: tiny tables (heavy
// contention) and short transactions.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, MaxRows: 48, Ops: 4}
}

// insertBudget is the per-worker insert allowance: each table reserves
// this many free slots per worker, and insert procedures fall back to
// RMW once a worker has drawn that many inserts, so a long run can never
// exhaust an insert segment.
const insertBudget = 96

// chaosTable is one generated table: storage, indexes and its skew. Every
// table carries both a hash index and an ordered index over the same
// keys, so range-scan procedures and inserts exercise the ordered path
// under the same contention the point accesses generate.
type chaosTable struct {
	tab    *abyss.Table
	idx    *abyss.Index
	ord    *abyss.OrderedIndex
	rows   int     // loaded rows
	hotN   int     // hot-set size, in [1, rows]
	hotPct float64 // probability a draw lands in the hot set
}

// Workload is a generated chaos workload ready for Run.
type Workload struct {
	cfg    Config
	mix    *abyss.Mix
	tables []chaosTable
	nparts int
	names  []string // active procedure names, mix order
}

// Build draws the workload shape from cfg.Seed, creates and populates
// its tables on db, and returns the ready Workload.
func Build(db *abyss.DB, cfg Config) (*Workload, error) {
	if cfg.MaxRows < 2 {
		return nil, fmt.Errorf("chaos: MaxRows must be >= 2, got %d", cfg.MaxRows)
	}
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("chaos: Ops must be >= 1, got %d", cfg.Ops)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{cfg: cfg, nparts: db.Cores()}

	ntables := 1 + rng.Intn(3)
	headroom := db.Cores() * insertBudget
	for i := 0; i < ntables; i++ {
		rows := 2 + rng.Intn(cfg.MaxRows-1)
		cols := []abyss.Col{{Name: "KEY", Width: 8}, {Name: "VAL", Width: 8}}
		if rng.Intn(2) == 0 {
			// A pad column varies the row size (and so the images the
			// oracle replays) across seeds.
			cols = append(cols, abyss.Col{Name: "PAD", Width: 4 * (1 + rng.Intn(4))})
		}
		name := fmt.Sprintf("CHAOS_%d", i)
		tab, err := db.CreateTable(abyss.TableSpec{
			Name: name, Cols: cols,
			Capacity: rows + headroom, Loaded: rows,
		})
		if err != nil {
			return nil, err
		}
		idx, err := db.CreateIndex(name+"_PK", tab, rows+headroom)
		if err != nil {
			return nil, err
		}
		ord, err := db.CreateOrderedIndex(name+"_ORD", tab)
		if err != nil {
			return nil, err
		}
		sc := tab.Schema
		for s := 0; s < rows; s++ {
			row := tab.LoadRow(s)
			sc.PutU64(row, 0, uint64(s))
			sc.PutU64(row, 1, uint64(s)*7)
			idx.LoadInsert(uint64(s), s)
			ord.LoadInsert(uint64(s), s)
		}
		hotN := 1 + rng.Intn(rows)
		w.tables = append(w.tables, chaosTable{
			tab: tab, idx: idx, ord: ord, rows: rows,
			hotN:   hotN,
			hotPct: 0.5 + rng.Float64()*0.45,
		})
	}

	// The mix: the two core procedures are always present; the optional
	// ones (inserts, mixed footprints, user aborts) appear per seed.
	type procDraw struct {
		name string
		mode int
	}
	draws := []procDraw{{ProcReadOnly, modeReadOnly}, {ProcRMW, modeRMW}}
	for _, opt := range []procDraw{{ProcMixed, modeMixed}, {ProcInsert, modeInsert}, {ProcAbortProne, modeAbortProne}, {ProcRangeScan, modeRangeScan}} {
		if rng.Float64() < 0.7 {
			draws = append(draws, opt)
		}
	}
	specs := make([]abyss.TxnSpec, len(draws))
	for i, d := range draws {
		d := d
		w.names = append(w.names, d.name)
		specs[i] = abyss.TxnSpec{
			Name:   d.name,
			Weight: 0.5 + rng.Float64()*2,
			New: func(worker int) abyss.Txn {
				return &chaosTxn{wl: w, mode: d.mode, worker: worker}
			},
		}
	}
	mix, err := db.NewMix(specs...)
	if err != nil {
		return nil, err
	}
	w.mix = mix
	return w, nil
}

// Next implements abyss.Workload.
func (w *Workload) Next(p abyss.Proc) abyss.Txn { return w.mix.Next(p) }

// TxnTypes implements abyss.TxnTyper.
func (w *Workload) TxnTypes() []string { return w.mix.TxnTypes() }

// TxnTypeOf implements abyss.TxnTyper.
func (w *Workload) TxnTypeOf(t abyss.Txn) int { return w.mix.TxnTypeOf(t) }

// Procedures returns the active procedure names in mix order (seeds
// differ: the optional procedures are drawn per seed).
func (w *Workload) Procedures() []string {
	return append([]string(nil), w.names...)
}

// Transaction modes.
const (
	modeReadOnly = iota
	modeRMW
	modeMixed
	modeInsert
	modeAbortProne
	modeRangeScan
)

// op is one drawn row access.
type op struct {
	table int
	slot  int
	write bool
}

// chaosTxn is one per-worker procedure instance; Generate refreshes its
// inputs from the worker RNG before each execution.
type chaosTxn struct {
	wl     *Workload
	mode   int
	worker int

	ops      []op
	parts    []int
	abort    bool   // AbortProne: roll back this execution via ErrUserAbort
	insert   bool   // Insert: this execution stages a new row
	insTable int    // Insert: target table
	insKey   uint64 // Insert: fresh unique key
	inserted int    // Insert: draws so far, gated by insertBudget

	scanTable  int    // RangeScan: target table
	scanLo     uint64 // RangeScan: inclusive key range
	scanHi     uint64
	scanMutate bool // RangeScan: rewrite one scanned row
}

// drawSlot picks a slot in table ti with the table's hot-set skew.
func (t *chaosTxn) drawSlot(p abyss.Proc, ti int) int {
	ct := &t.wl.tables[ti]
	rng := p.Rand()
	if rng.Float64() < ct.hotPct || ct.hotN >= ct.rows {
		return rng.Intn(ct.hotN)
	}
	return ct.hotN + rng.Intn(ct.rows-ct.hotN)
}

// Generate implements abyss.Generator: draw this execution's accesses.
func (t *chaosTxn) Generate(p abyss.Proc) {
	rng := p.Rand()
	t.ops = t.ops[:0]
	t.abort = false
	t.insert = false

	if t.mode == modeRangeScan {
		// One ordered-index range scan, sometimes rewriting a scanned
		// row. Its key→slot mapping is unknown until execution (scans
		// can see other workers' inserts), so H-STORE gets the full
		// partition set.
		t.scanTable = rng.Intn(len(t.wl.tables))
		ct := &t.wl.tables[t.scanTable]
		t.scanLo = uint64(rng.Intn(ct.rows))
		t.scanHi = t.scanLo + 1 + uint64(rng.Intn(ct.rows))
		t.scanMutate = rng.Intn(2) == 0
		t.parts = t.parts[:0]
		for pid := 0; pid < t.wl.nparts; pid++ {
			t.parts = append(t.parts, pid)
		}
		return
	}

	n := 1 + rng.Intn(t.wl.cfg.Ops)
	for len(t.ops) < n {
		o := op{table: rng.Intn(len(t.wl.tables))}
		o.slot = t.drawSlot(p, o.table)
		dup := false
		for _, e := range t.ops {
			if e.table == o.table && e.slot == o.slot {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		switch t.mode {
		case modeReadOnly:
			o.write = false
		case modeRMW, modeAbortProne:
			o.write = true
		default:
			o.write = rng.Intn(2) == 0
		}
		t.ops = append(t.ops, o)
	}
	if t.mode == modeAbortProne {
		t.abort = rng.Intn(2) == 0
	}
	if t.mode == modeInsert && t.inserted < insertBudget-8 {
		t.insert = true
		t.inserted++
		t.insTable = rng.Intn(len(t.wl.tables))
		// Fresh key: disjoint from the loaded keys [0, rows) and from
		// every other worker's inserts.
		t.insKey = 1<<40 | uint64(t.worker)<<20 | uint64(t.inserted)
	}

	// H-STORE needs the partition set up front: sorted, deduplicated.
	// Insert-bearing executions declare every partition — the slot an
	// insert lands in (the worker's segment) is unknown until commit.
	t.parts = t.parts[:0]
	if t.insert {
		for pid := 0; pid < t.wl.nparts; pid++ {
			t.parts = append(t.parts, pid)
		}
		return
	}
	for _, o := range t.ops {
		pid := o.slot % t.wl.nparts
		dup := false
		for _, e := range t.parts {
			if e == pid {
				dup = true
				break
			}
		}
		if !dup {
			t.parts = append(t.parts, pid)
		}
	}
	for i := 1; i < len(t.parts); i++ {
		for j := i; j > 0 && t.parts[j] < t.parts[j-1]; j-- {
			t.parts[j], t.parts[j-1] = t.parts[j-1], t.parts[j]
		}
	}
}

// Partitions implements abyss.Txn.
func (t *chaosTxn) Partitions() []int { return t.parts }

// Run implements abyss.Txn.
func (t *chaosTxn) Run(tx *abyss.TxnCtx) error {
	if t.mode == modeRangeScan {
		ct := &t.wl.tables[t.scanTable]
		sc := ct.tab.Schema
		entries := tx.RangeScan(ct.ord, t.scanLo, t.scanHi)
		for i, e := range entries {
			if t.scanMutate && i == 0 {
				row, err := tx.UpdateRow(ct.tab, int(e.Slot))
				if err != nil {
					return err
				}
				sc.PutU64(row, 1, sc.GetU64(row, 1)*2654435761+e.Key+1)
				continue
			}
			if _, err := tx.Read(ct.tab, int(e.Slot)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, o := range t.ops {
		ct := &t.wl.tables[o.table]
		sc := ct.tab.Schema
		if !o.write {
			if _, err := tx.Read(ct.tab, o.slot); err != nil {
				return err
			}
			continue
		}
		row, err := tx.UpdateRow(ct.tab, o.slot)
		if err != nil {
			return err
		}
		// A value the oracle replay distinguishes from any other write's:
		// a mix of the previous value and the writing slot.
		sc.PutU64(row, 1, sc.GetU64(row, 1)*2654435761+uint64(o.slot)+1)
	}
	if t.insert {
		ct := &t.wl.tables[t.insTable]
		sc := ct.tab.Schema
		row := tx.InsertRowOrdered(ct.idx, t.insKey, ct.ord, t.insKey)
		sc.PutU64(row, 0, t.insKey)
		sc.PutU64(row, 1, t.insKey*31)
	}
	if t.abort {
		return abyss.ErrUserAbort
	}
	return nil
}

var (
	_ abyss.Workload  = (*Workload)(nil)
	_ abyss.TxnTyper  = (*Workload)(nil)
	_ abyss.Txn       = (*chaosTxn)(nil)
	_ abyss.Generator = (*chaosTxn)(nil)
)

func init() {
	abyss.MustRegisterWorkload(abyss.WorkloadInfo{
		Name:      "chaos",
		Desc:      "Chaos: seeded random schemas, skews and mixes for the serializability checker (extension)",
		Extension: true,
		Defaults: func() abyss.WorkloadParams {
			return abyss.WorkloadParams{Rows: 48, ReqPerTxn: 4}
		},
		Build: func(db *abyss.DB, p abyss.WorkloadParams) (abyss.Workload, error) {
			// The DB's determinism seed doubles as the shape seed, so
			// `abyss-sim -seed N` pins the whole workload.
			cfg := DefaultConfig(db.Options().Seed)
			if p.Rows > 0 {
				cfg.MaxRows = p.Rows
			}
			if p.ReqPerTxn > 0 {
				cfg.Ops = p.ReqPerTxn
			}
			return Build(db, cfg)
		},
	})
}
