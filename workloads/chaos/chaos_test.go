// The serializability fuzz harness: every (scheme, runtime, seed) triple
// runs a freshly generated chaos workload with history capture on and
// requires the checker's verdict to be clean — acyclic direct
// serialization graph AND final state equal to the single-threaded
// oracle replay. The sweep covers 100+ triples on every `go test`;
// FuzzSerializability lets the fuzzer hunt seeds beyond the sweep.
package chaos_test

import (
	"fmt"
	"testing"

	"abyss1000/abyss"
	"abyss1000/workloads/chaos"
)

// checkCfg returns a short capture-enabled window for the runtime (sim
// windows are simulated cycles, native ones wall-clock nanoseconds).
func checkCfg(runtime string) abyss.RunConfig {
	cfg := abyss.RunConfig{WarmupCycles: 40_000, MeasureCycles: 200_000, AbortBackoff: 500, Check: true}
	if runtime == abyss.RuntimeNative {
		cfg.WarmupCycles, cfg.MeasureCycles = 200_000, 2_000_000
	}
	return cfg
}

// runCheck builds the seed's chaos workload, runs it under the scheme
// with capture on, and returns the run result and checker report.
func runCheck(t *testing.T, runtime, scheme string, cores int, seed int64) (abyss.Result, *abyss.CheckReport) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: runtime, Cores: cores, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := chaos.Build(db, chaos.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(s, wl, checkCfg(runtime))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.CheckSerializability()
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

// repro formats the one-line reproduction command for a failing triple.
func repro(runtime, scheme string, cores int, seed int64) string {
	return fmt.Sprintf("go run ./cmd/abyss-sim -check -workload chaos -scheme %s -runtime %s -cores %d -seed %d",
		scheme, runtime, cores, seed)
}

// TestSerializabilitySweep is the standing fuzz sweep: the paper's seven
// schemes x both runtimes x eight seeds (112 triples), each a different
// generated workload, each required to verify clean.
func TestSerializabilitySweep(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:2]
	}
	const cores = 4
	for _, runtime := range abyss.Runtimes() {
		for _, scheme := range abyss.PaperSchemes() {
			runtime, scheme := runtime, scheme
			t.Run(runtime+"/"+scheme, func(t *testing.T) {
				for _, seed := range seeds {
					res, rep := runCheck(t, runtime, scheme, cores, seed)
					// The simulated runtime is deterministic, so empty runs
					// there are real failures. Native windows are wall-clock:
					// on a heavily loaded host (e.g. under -race) a short
					// window can commit nothing — the verdict is then vacuous,
					// not wrong.
					if runtime == abyss.RuntimeSim && (res.Commits == 0 || rep.Txns == 0) {
						t.Fatalf("seed %d: no commits captured (%d result, %d history)", seed, res.Commits, rep.Txns)
					}
					if rep.Txns == 0 {
						t.Logf("seed %d: nothing committed inside the wall-clock window; vacuous verdict", seed)
						continue
					}
					if !rep.OK() {
						t.Fatalf("seed %d NOT serializable\nrepro: %s\n%s",
							seed, repro(runtime, scheme, cores, seed), rep)
					}
				}
			})
		}
	}
}

// FuzzSerializability is the open-ended hunt: the fuzzer mutates the
// workload seed and scheme choice, and any interleaving the checker can
// fault is a crasher whose corpus entry IS the repro.
func FuzzSerializability(f *testing.F) {
	schemes := abyss.PaperSchemes()
	f.Add(int64(42), uint8(0))
	f.Add(int64(7), uint8(3))
	f.Add(int64(1000), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, schemeIdx uint8) {
		scheme := schemes[int(schemeIdx)%len(schemes)]
		const cores = 4
		_, rep := runCheck(t, abyss.RuntimeSim, scheme, cores, seed)
		if !rep.OK() {
			t.Fatalf("seed %d NOT serializable under %s\nrepro: %s\n%s",
				seed, scheme, repro(abyss.RuntimeSim, scheme, cores, seed), rep)
		}
	})
}

// TestCheckReproDeterminism pins the repro contract: on the simulated
// runtime the same (scheme, cores, seed) triple reproduces the identical
// run and the identical checker report, so a failure line from the sweep
// or the fuzzer replays exactly.
func TestCheckReproDeterminism(t *testing.T) {
	const (
		scheme = "NO_WAIT"
		cores  = 4
		seed   = int64(99)
	)
	res1, rep1 := runCheck(t, abyss.RuntimeSim, scheme, cores, seed)
	res2, rep2 := runCheck(t, abyss.RuntimeSim, scheme, cores, seed)
	if res1.String() != res2.String() {
		t.Fatalf("same seed, different results:\n%s\n%s", res1.String(), res2.String())
	}
	if rep1.String() != rep2.String() {
		t.Fatalf("same seed, different reports:\n%s\n%s", rep1, rep2)
	}
	if rep1.Txns != rep2.Txns || rep1.Edges != rep2.Edges {
		t.Fatalf("same seed, different graphs: %d/%d txns, %d/%d edges",
			rep1.Txns, rep2.Txns, rep1.Edges, rep2.Edges)
	}
}

// TestShapeVariety pins that the generator actually varies: across a
// seed range at least two different procedure sets and two different
// table counts must appear (a constant generator would silently gut the
// sweep's coverage).
func TestShapeVariety(t *testing.T) {
	shapes := map[string]bool{}
	for seed := int64(0); seed < 12; seed++ {
		db, err := abyss.Open(abyss.Options{Cores: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		wl, err := chaos.Build(db, chaos.DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		shapes[fmt.Sprint(wl.Procedures())] = true
	}
	if len(shapes) < 2 {
		t.Fatalf("12 seeds produced a single workload shape: %v", shapes)
	}
}
