package abyss1000_test

// The overload tier's contract with the paper reproduction: with every
// overload knob at its zero value, the closed-loop schedule is
// byte-identical to the pre-overload engine — even with the tier's
// plumbing (a live Stop flag, a zero-delay fault injector) attached to
// every run. The test pins that against the same golden signature the
// determinism, durability and capture tests use.

import (
	"os"
	"testing"

	"abyss1000/bench"
)

func TestGoldenSignatureOverloadOff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~11 full simulations")
	}
	want, err := os.ReadFile("testdata/golden_sim.txt")
	if err != nil {
		t.Fatalf("missing pinned signature: %v", err)
	}
	got := bench.GoldenSignatureOverloadOff()
	if got != string(want) {
		t.Errorf("disengaged overload knobs perturbed the simulated schedule:\n%s",
			diffLines(string(want), got))
	}
}
