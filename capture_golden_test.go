package abyss1000_test

// Serializability capture must be accounting-only: recording every
// committed transaction's read and write versions may never tick the
// simulated clock, take a latch the engine would not otherwise take, or
// bill a breakdown bucket. The test pins that at full strength — the
// simulator's golden signature across eleven runs is byte-identical with
// capture attached — mirroring the WAL's TestGoldenSignatureWithLogging.

import (
	"os"
	"testing"

	"abyss1000/bench"
)

func TestGoldenSignatureWithCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~11 full simulations")
	}
	want, err := os.ReadFile("testdata/golden_sim.txt")
	if err != nil {
		t.Fatalf("missing pinned signature: %v", err)
	}
	got := bench.GoldenSignatureCaptured()
	if got != string(want) {
		t.Errorf("history capture perturbed the simulated schedule:\n%s",
			diffLines(string(want), got))
	}
}
