package abyss1000_test

// Observability regression tests: latency histograms, per-transaction-
// type attribution and interval sampling are accounting-only, so enabling
// any of them must not move a single simulated cycle. These tests pin
// that from three angles: the golden signature, the full Result, and the
// internal consistency of the samples themselves.

import (
	"reflect"
	"sync"
	"testing"

	"abyss1000/bench"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

// collectObserver accumulates every sample (mutex-guarded so the same
// observer also works under the native runtime).
type collectObserver struct {
	mu      sync.Mutex
	samples []core.Sample
}

func (c *collectObserver) OnSample(s core.Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// TestObserverDoesNotPerturbGolden is the observer-determinism test: the
// full golden mix (seven schemes on YCSB, four on TPC-C) run with
// interval sampling and an observer attached must produce the exact
// golden signature — byte-identical commits, aborts, tuples and raw
// breakdown buckets — that the unobserved run pins in
// testdata/golden_sim.txt.
func TestObserverDoesNotPerturbGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~22 full simulations")
	}
	base := bench.GoldenSignature()
	obs := &collectObserver{}
	sampled := bench.GoldenSignatureObserved(25_000, obs)
	if sampled != base {
		t.Fatalf("sampling perturbed the simulated schedule:\nunobserved:\n%s\nobserved:\n%s", base, sampled)
	}
	// 200k-cycle window at 25k per interval = 8 samples per run, 11 runs.
	if want := 8 * 11; len(obs.samples) != want {
		t.Fatalf("observer received %d samples, want %d", len(obs.samples), want)
	}
}

// ycsbRun executes one small simulated YCSB measurement, optionally
// observed, and returns the result.
func ycsbRun(scheme string, cfg core.Config, obs core.Observer) core.Result {
	eng := sim.New(8, 42)
	db := core.NewDB(eng)
	ycfg := ycsb.DefaultConfig()
	ycfg.Rows = 4096
	ycfg.ReqPerTxn = 8
	wl := ycsb.Build(db, ycfg)
	return core.RunObserved(db, bench.MakeScheme(scheme, tsalloc.Atomic), wl, cfg, obs)
}

// TestRunObservedResultIdentical pins that the complete Result — the
// counters and breakdown and the new latency histogram and per-type
// sub-results — is deep-equal with and without an observer attached.
func TestRunObservedResultIdentical(t *testing.T) {
	cfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 200_000, AbortBackoff: 1000}
	plain := ycsbRun("NO_WAIT", cfg, nil)
	cfg.SampleEvery = 30_000
	observed := ycsbRun("NO_WAIT", cfg, &collectObserver{})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer changed the result:\nplain    %+v\nobserved %+v", plain, observed)
	}
}

// TestSamplesPartitionWindow pins the sampler's central invariant: the
// intervals tile the measurement window exactly, and every in-window
// commit and abort lands in exactly one sample — so the samples sum to
// the final Result and their latency histograms merge to Result.Latency.
func TestSamplesPartitionWindow(t *testing.T) {
	const (
		measure = 200_000
		every   = 30_000 // deliberately not a divisor: the last interval is partial
	)
	cfg := core.Config{WarmupCycles: 50_000, MeasureCycles: measure, AbortBackoff: 1000, SampleEvery: every}
	obs := &collectObserver{}
	res := ycsbRun("NO_WAIT", cfg, obs)

	wantIntervals := (measure + every - 1) / every
	if len(obs.samples) != wantIntervals {
		t.Fatalf("got %d samples, want %d", len(obs.samples), wantIntervals)
	}
	var commits, aborts uint64
	var lat core.Result // reuse its Latency field as a merge target
	for i, s := range obs.samples {
		if s.Interval != i {
			t.Fatalf("sample %d has interval %d; samples must arrive in order", i, s.Interval)
		}
		wantEnd := uint64(i+1) * every
		wantWidth := uint64(every)
		if wantEnd > measure {
			wantWidth -= wantEnd - measure
			wantEnd = measure
		}
		if s.EndCycle != wantEnd || s.Cycles != wantWidth {
			t.Fatalf("sample %d covers (end %d, width %d), want (end %d, width %d)", i, s.EndCycle, s.Cycles, wantEnd, wantWidth)
		}
		if s.Frequency != 1e9 {
			t.Fatalf("sample %d frequency = %g, want 1e9", i, s.Frequency)
		}
		if s.Latency.Count() != s.Commits {
			t.Fatalf("sample %d: latency count %d != commits %d", i, s.Latency.Count(), s.Commits)
		}
		commits += s.Commits
		aborts += s.Aborts
		lat.Latency.Merge(&s.Latency)
	}
	if commits != res.Commits || aborts != res.Aborts {
		t.Fatalf("samples sum to %d commits / %d aborts, result has %d / %d", commits, aborts, res.Commits, res.Aborts)
	}
	if lat.Latency != res.Latency {
		t.Fatalf("merged sample latency %+v != result latency %+v", lat.Latency, res.Latency)
	}
	if res.Latency.Count() != res.Commits {
		t.Fatalf("result latency count %d != commits %d", res.Latency.Count(), res.Commits)
	}
}

// TestPerTxnAttribution pins the per-type sub-results on both built-in
// workloads: names in declaration order, counts summing to the aggregate,
// and one latency observation per completed transaction.
func TestPerTxnAttribution(t *testing.T) {
	cfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 200_000, AbortBackoff: 1000}

	t.Run("tpcc", func(t *testing.T) {
		eng := sim.New(8, 7)
		db := core.NewDB(eng)
		wl := tpcc.Build(db, tpcc.DefaultConfig(4))
		res := core.Run(db, bench.MakeScheme("NO_WAIT", tsalloc.Atomic), wl, cfg)
		assertPerTxnSums(t, res, []string{"Payment", "NewOrder"})
		for i := range res.PerTxn {
			if res.PerTxn[i].Commits == 0 {
				t.Errorf("%s committed nothing", res.PerTxn[i].Name)
			}
		}
	})

	t.Run("ycsb", func(t *testing.T) {
		res := ycsbRun("MVCC", cfg, nil)
		assertPerTxnSums(t, res, []string{"ycsb"})
	})
}

// assertPerTxnSums checks names and that per-type commits/aborts/latency
// sum exactly to the aggregate Result.
func assertPerTxnSums(t *testing.T, res core.Result, wantNames []string) {
	t.Helper()
	if len(res.PerTxn) != len(wantNames) {
		t.Fatalf("PerTxn has %d entries, want %d (%v)", len(res.PerTxn), len(wantNames), wantNames)
	}
	var commits, aborts, latCount uint64
	for i := range res.PerTxn {
		ts := &res.PerTxn[i]
		if ts.Name != wantNames[i] {
			t.Errorf("PerTxn[%d].Name = %q, want %q", i, ts.Name, wantNames[i])
		}
		if ts.Latency.Count() != ts.Commits {
			t.Errorf("%s: latency count %d != commits %d", ts.Name, ts.Latency.Count(), ts.Commits)
		}
		commits += ts.Commits
		aborts += ts.Aborts
		latCount += ts.Latency.Count()
	}
	if commits != res.Commits || aborts != res.Aborts {
		t.Fatalf("per-txn sums (%d commits, %d aborts) != aggregate (%d, %d)", commits, aborts, res.Commits, res.Aborts)
	}
	if latCount != res.Latency.Count() {
		t.Fatalf("per-txn latency observations %d != aggregate %d", latCount, res.Latency.Count())
	}
}
