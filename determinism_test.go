package abyss1000_test

import (
	"os"
	"testing"

	"abyss1000/bench"
)

// TestSimDeterminismGolden is the engine's end-to-end determinism
// regression test: a small YCSB and TPC-C mix across seven concurrency-
// control schemes, run twice on the simulated runtime with the same seeds,
// must produce byte-identical commit counts, abort counts, tuple counts and
// raw stats.Breakdown buckets — and both runs must match the pinned
// signature in testdata/golden_sim.txt, so an engine rewrite cannot
// silently perturb the simulated schedule even if it perturbs it
// deterministically.
func TestSimDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~11 full simulations")
	}
	first := bench.GoldenSignature()
	second := bench.GoldenSignature()
	if first != second {
		t.Fatalf("same-seed runs diverged:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	want, err := os.ReadFile("testdata/golden_sim.txt")
	if err != nil {
		t.Fatalf("missing pinned signature: %v (regenerate with `go run ./cmd/goldencheck > testdata/golden_sim.txt`)", err)
	}
	if first != string(want) {
		t.Fatalf("simulated results changed from the pinned signature.\n"+
			"If this PR intentionally changes the timing model, regenerate with\n"+
			"`go run ./cmd/goldencheck > testdata/golden_sim.txt` and call it out.\n\ngot:\n%s\nwant:\n%s", first, want)
	}
}
