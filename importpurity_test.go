package abyss1000_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestPublicSurfaceImportPurity enforces the embedding contract: the
// commands, the examples, the public workloads, the query operator layer
// and the serve front door are clients of the public abyss (and bench)
// packages only. If one of
// them imports abyss1000/internal/..., the public API has a hole — fix
// the API, not the import list. (The bench harness itself lives outside
// this rule: it is part of the engine distribution and drives engine
// internals the public API deliberately does not expose, such as
// ablation allocators. cmd/internal is the commands' own shared helper
// space, not the engine's internal tree, so it stays under the rule.)
func TestPublicSurfaceImportPurity(t *testing.T) {
	clientDirs := []string{"cmd", "examples", "workloads", "serve", "query"}
	fset := token.NewFileSet()
	for _, dir := range clientDirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if strings.HasPrefix(p, "abyss1000/internal/") || p == "abyss1000/internal" {
					t.Errorf("%s imports %s: cmd/, examples/, workloads/ and query/ must use only the public abyss API", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}
