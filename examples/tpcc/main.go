// TPC-C: the paper's §5.6 experiment in miniature. Runs the 50/50
// Payment+NewOrder mix on a 4-warehouse database (more workers than
// warehouses — Payment's W_YTD update becomes the bottleneck) and then on
// a database with one warehouse per worker, where the hotspot disappears
// and H-STORE's partitioning shines.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"
)

func run(cores, warehouses int) {
	fmt.Printf("\n-- %d cores, %d warehouses --\n", cores, warehouses)
	for _, name := range abyss.PaperSchemes() {
		db, err := abyss.Open(abyss.Options{Cores: cores, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		params, err := abyss.DefaultWorkloadParams("tpcc")
		if err != nil {
			log.Fatal(err)
		}
		params.Warehouses = warehouses
		params.InsertsPerWorker = 2048
		wl, err := db.BuildWorkload("tpcc", params)
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := abyss.NewScheme(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := db.Run(scheme, wl, abyss.RunConfig{
			WarmupCycles:  200_000,
			MeasureCycles: 800_000,
			AbortBackoff:  1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %8.3f M txn/s   abort %5.1f%%\n",
			name, res.Throughput()/1e6, res.AbortFraction()*100)
	}
}

func main() {
	const cores = 32
	fmt.Println("TPC-C Payment+NewOrder (50/50), simulated cores:", cores)
	run(cores, 4)     // contended: workers share warehouses (Fig 16)
	run(cores, cores) // one warehouse per worker (Fig 17 regime)
}
