// TPC-C: the paper's §5.6 experiment in miniature. Runs the 50/50
// Payment+NewOrder mix on a 4-warehouse database (more workers than
// warehouses — Payment's W_YTD update becomes the bottleneck) and then on
// a database with one warehouse per worker, where the hotspot disappears
// and H-STORE's partitioning shines.
package main

import (
	"fmt"

	"abyss1000/internal/bench"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
)

func run(cores, warehouses int) {
	fmt.Printf("\n-- %d cores, %d warehouses --\n", cores, warehouses)
	for _, name := range bench.AllSchemeNames {
		engine := sim.New(cores, 11)
		db := core.NewDB(engine)
		cfg := tpcc.DefaultConfig(warehouses)
		cfg.InsertsPerWorker = 2048
		wl := tpcc.Build(db, cfg)
		res := core.Run(db, bench.MakeScheme(name, tsalloc.Atomic), wl, core.Config{
			WarmupCycles:  200_000,
			MeasureCycles: 800_000,
			AbortBackoff:  1000,
		})
		fmt.Printf("%-11s %8.3f M txn/s   abort %5.1f%%\n",
			name, res.Throughput()/1e6, res.AbortFraction()*100)
	}
}

func main() {
	const cores = 32
	fmt.Println("TPC-C Payment+NewOrder (50/50), simulated cores:", cores)
	run(cores, 4)     // contended: workers share warehouses (Fig 16)
	run(cores, cores) // one warehouse per worker (Fig 17 regime)
}
