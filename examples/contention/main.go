// Contention study: the paper's §5.2 story in miniature. All six
// tuple-level schemes run the same write-intensive YCSB workload while
// the Zipfian skew climbs from uniform to hotspot-heavy, showing how each
// scheme's throughput collapses differently (2PL thrashes or aborts, T/O
// rides timestamps until the hot tuples saturate). The scheme list comes
// from the public registry, so a newly registered scheme joins the table
// automatically.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"
)

func main() {
	const cores = 32
	thetas := []float64{0, 0.4, 0.6, 0.8}

	// The paper's six tuple-level schemes: every registered paper scheme
	// except the partition-level H-STORE, which needs a partitioned
	// workload.
	var schemes []string
	for _, name := range abyss.PaperSchemes() {
		if name != "HSTORE" {
			schemes = append(schemes, name)
		}
	}

	fmt.Printf("write-intensive YCSB on %d simulated cores\n\n", cores)
	fmt.Printf("%-11s", "scheme")
	for _, th := range thetas {
		fmt.Printf("  theta=%-5.1f", th)
	}
	fmt.Println("   (M txn/s; higher is better)")

	for _, name := range schemes {
		fmt.Printf("%-11s", name)
		for _, th := range thetas {
			db, err := abyss.Open(abyss.Options{Cores: cores, Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			params, err := abyss.DefaultWorkloadParams("ycsb")
			if err != nil {
				log.Fatal(err)
			}
			params.Rows = 16384
			params.Theta = th
			wl, err := db.BuildWorkload("ycsb", params)
			if err != nil {
				log.Fatal(err)
			}
			scheme, err := abyss.NewScheme(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := db.Run(scheme, wl, abyss.RunConfig{
				WarmupCycles:  200_000,
				MeasureCycles: 800_000,
				AbortBackoff:  1000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.3f  ", res.Throughput()/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nwatch DL_DETECT collapse first (lock thrashing), NO_WAIT trade")
	fmt.Println("throughput for aborts, and the T/O schemes degrade more gracefully.")
}
