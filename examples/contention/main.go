// Contention study: the paper's §5.2 story in miniature. All six
// tuple-level schemes run the same write-intensive YCSB workload while
// the Zipfian skew climbs from uniform to hotspot-heavy, showing how each
// scheme's throughput collapses differently (2PL thrashes or aborts, T/O
// rides timestamps until the hot tuples saturate).
package main

import (
	"fmt"

	"abyss1000/internal/bench"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/ycsb"
)

func main() {
	const cores = 32
	thetas := []float64{0, 0.4, 0.6, 0.8}

	fmt.Printf("write-intensive YCSB on %d simulated cores\n\n", cores)
	fmt.Printf("%-11s", "scheme")
	for _, th := range thetas {
		fmt.Printf("  theta=%-5.1f", th)
	}
	fmt.Println("   (M txn/s; higher is better)")

	for _, name := range bench.SchemeNames {
		fmt.Printf("%-11s", name)
		for _, th := range thetas {
			engine := sim.New(cores, 7)
			db := core.NewDB(engine)
			cfg := ycsb.DefaultConfig()
			cfg.Rows = 16384
			cfg.Theta = th
			wl := ycsb.Build(db, cfg)
			res := core.Run(db, bench.MakeScheme(name, tsalloc.Atomic), wl, core.Config{
				WarmupCycles:  200_000,
				MeasureCycles: 800_000,
				AbortBackoff:  1000,
			})
			fmt.Printf("  %9.3f  ", res.Throughput()/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nwatch DL_DETECT collapse first (lock thrashing), NO_WAIT trade")
	fmt.Println("throughput for aborts, and the T/O schemes degrade more gracefully.")
}
