// Observe: watch a run in flight. RunStream executes the measurement in
// the background and delivers one Sample per interval — throughput, abort
// rate and a latency histogram for just that slice of the window — then
// the final Result adds the full commit-latency distribution and the
// per-transaction-type sub-results. Sampling is accounting-only: the
// Result is byte-identical to a plain db.Run of the same configuration.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"

	// Register the SmallBank workload: six named banking procedures, so
	// Result.PerTxn attributes commits, aborts and latency per type.
	_ "abyss1000/workloads/smallbank"
)

func main() {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 64, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	params, err := abyss.DefaultWorkloadParams("smallbank")
	if err != nil {
		log.Fatal(err)
	}
	workload, err := db.BuildWorkload("smallbank", params)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := abyss.NewScheme("MVCC")
	if err != nil {
		log.Fatal(err)
	}

	// Sample every 200k cycles (0.2 ms of simulated time) of the 2 ms
	// measurement window: ten in-flight snapshots.
	cfg := abyss.RunConfig{
		WarmupCycles:  400_000,
		MeasureCycles: 2_000_000,
		AbortBackoff:  1000,
		SampleEvery:   200_000,
	}
	samples, wait := db.RunStream(scheme, workload, cfg)
	for s := range samples {
		fmt.Printf("t=%4.1fms  %11.0f txn/s  abort %4.1f%%  p50 %5d  p99 %6d cycles\n",
			float64(s.EndCycle)/1e6, s.Throughput(), s.AbortFraction()*100,
			s.Latency.P50(), s.Latency.P99())
	}

	res, err := wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.String())
	fmt.Printf("latency: p50 %d  p95 %d  p99 %d  max %d cycles over %d commits\n",
		res.Latency.P50(), res.Latency.P95(), res.Latency.P99(), res.Latency.Max(), res.Latency.Count())
	fmt.Println()
	fmt.Printf("%-18s %10s %10s %8s %8s\n", "transaction", "commits", "aborts", "p50", "p99")
	for i := range res.PerTxn {
		t := &res.PerTxn[i]
		fmt.Printf("%-18s %10d %10d %8d %8d\n", t.Name, t.Commits, t.Aborts, t.Latency.P50(), t.Latency.P99())
	}
}
