// Quickstart: simulate a 64-core chip, build a YCSB database, and run the
// NO_WAIT scheme — the paper's most scalable 2PL variant — printing
// throughput and the six-component time breakdown. Everything goes
// through the public abyss package: open a DB, build a workload and a
// scheme by name, run.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"
)

func main() {
	// A 64-core simulated tiled chip (one worker thread per core),
	// seeded for a bit-reproducible run.
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 64, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The YCSB table: 64k rows of 10 x 100-byte fields, hash-indexed;
	// write-intensive transactions of 16 accesses at medium skew.
	params, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		log.Fatal(err)
	}
	params.Theta = 0.6
	workload, err := db.BuildWorkload("ycsb", params)
	if err != nil {
		log.Fatal(err)
	}

	// Plug in a concurrency control scheme by name (any of
	// abyss.Schemes()).
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		log.Fatal(err)
	}

	// Simulate: 0.3 ms warmup, 1.5 ms measured, at the 1 GHz target.
	result, err := db.Run(scheme, workload, abyss.RunConfig{
		WarmupCycles:  300_000,
		MeasureCycles: 1_500_000,
		AbortBackoff:  1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result.String())
	fmt.Printf("committed %d txns (%.2f M txn/s), aborted %d attempts\n",
		result.Commits, result.Throughput()/1e6, result.Aborts)
}
