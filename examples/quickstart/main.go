// Quickstart: simulate a 64-core chip, build a YCSB database, and run the
// NO_WAIT scheme — the paper's most scalable 2PL variant — printing
// throughput and the six-component time breakdown.
package main

import (
	"fmt"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/workload/ycsb"
)

func main() {
	// A 64-core tiled chip (one worker thread per core), seeded for a
	// bit-reproducible run.
	engine := sim.New(64, 42)

	// A main-memory DBMS instance on that chip.
	db := core.NewDB(engine)

	// The YCSB table: 64k rows of 10 x 100-byte fields, hash-indexed;
	// write-intensive transactions of 16 accesses at medium skew.
	cfg := ycsb.DefaultConfig()
	cfg.Theta = 0.6
	workload := ycsb.Build(db, cfg)

	// Plug in a concurrency control scheme (any of the paper's seven).
	scheme := twopl.New(twopl.NoWait, twopl.Options{})

	// Simulate: 0.3 ms warmup, 1.5 ms measured, at the 1 GHz target.
	result := core.Run(db, scheme, workload, core.Config{
		WarmupCycles:  300_000,
		MeasureCycles: 1_500_000,
		AbortBackoff:  1000,
	})

	fmt.Println(result.String())
	fmt.Printf("committed %d txns (%.2f M txn/s), aborted %d attempts\n",
		result.Commits, result.Throughput()/1e6, result.Aborts)
}
