// Timestamp allocation: the paper's §4.3 micro-benchmark (Fig. 6) in
// miniature. Every core allocates timestamps back-to-back; the table
// shows why the paper argues for hardware support: the software methods
// either plateau on coherence traffic (atomic), serialize (mutex), or
// need synchronized clocks the hardware must provide (clock). The raw
// worker substrate (DB.Go) and allocator factory come from the public
// abyss package.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"
)

func main() {
	const window = 500_000 // cycles at 1 GHz
	coreCounts := []int{1, 16, 64, 256, 1024}

	fmt.Printf("%-16s", "method")
	for _, c := range coreCounts {
		fmt.Printf(" %10d", c)
	}
	fmt.Println("   (M timestamps/s by core count)")

	for _, m := range abyss.TSMethods() {
		fmt.Printf("%-16s", m.String())
		for _, cores := range coreCounts {
			db, err := abyss.Open(abyss.Options{Cores: cores, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			alloc := db.NewTimestampAllocator(m)
			counts := make([]uint64, cores)
			err = db.Go(func(p abyss.Proc) {
				for p.Now() < window {
					alloc.Next(p)
					counts[p.ID()]++
				}
			})
			if err != nil {
				log.Fatal(err)
			}
			var total uint64
			for _, n := range counts {
				total += n
			}
			rate := float64(total) / (float64(window) / db.Frequency()) / 1e6
			fmt.Printf(" %10.1f", rate)
		}
		fmt.Println()
	}
	fmt.Println("\nthe clock scales linearly, the hardware counter is flat at ~1000")
	fmt.Println("(one increment per cycle), and the atomic counter decays toward")
	fmt.Println("~10 M ts/s as the coherence round trip crosses a growing chip.")
}
