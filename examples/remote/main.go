// Remote: the serve tier end to end, in process. The example embeds an
// abyss-serve front door (serve.New + Start on loopback), talks to it
// first as an application would — one connection, named invocations with
// arguments, per-request deadlines — and then as an operator would,
// driving the open-loop load generator at two offered loads to find the
// goodput knee over the wire. The same thing works across machines with
// the cmd/abyss-serve and cmd/abyss-load binaries; this example is the
// library form of that walkthrough.
package main

import (
	"fmt"
	"log"
	"time"

	"abyss1000/abyss"
	"abyss1000/serve"
	"abyss1000/serve/client"
)

func main() {
	// An engine on 2 native cores behind bounded admission queues. Every
	// invocation that cannot commit within 50ms of arrival — including
	// time spent queued — comes back "deadlined" instead of lingering.
	srv, err := serve.New(serve.Config{
		Scheme:   "NO_WAIT",
		Workload: "ycsb",
		Cores:    2,
		Seed:     42,
		Session:  abyss.ServeConfig{QueueDepth: 64, Deadline: 50 * time.Millisecond},
		Window:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving: http %s, binary %s\n", srv.HTTPAddr(), srv.TCPAddr())

	// One application connection over the binary protocol: anonymous
	// workload draws (the server picks the next YCSB transaction),
	// routed and deadline-carrying requests.
	conn, err := client.DialBinary(srv.TCPAddr())
	if err != nil {
		log.Fatal(err)
	}
	for _, req := range []serve.InvokeRequest{
		{Partition: -1}, // unrouted draw
		{Partition: 1},  // routed to partition 1
		{Partition: -1, Deadline: 10 * time.Millisecond}, // tighter deadline
		{Proc: "no-such-procedure", Partition: -1},       // rejected, never executed
	} {
		rep, err := conn.Invoke(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("invoke proc=%q partition=%d -> %s in %v\n",
			req.Proc, req.Partition, serve.OutcomeName(rep.Outcome), rep.Elapsed.Round(time.Microsecond))
	}
	conn.Close()

	// The operator's view: open-loop load at two offered rates. Below
	// the knee goodput tracks offered load; far past it the server sheds
	// (bounded queues, bounded windows) and goodput plateaus at engine
	// capacity instead of collapsing.
	for _, rate := range []float64{2_000, 500_000} {
		rep, err := client.Run(client.LoadConfig{
			Addr:     srv.TCPAddr(),
			Proto:    "binary",
			Conns:    4,
			Arrival:  client.ArrivalSpec{Process: client.Poisson, RateTPS: rate},
			Duration: time.Second,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offered %.0f tps: %s\n", rate, rep.Summary())
	}

	// Graceful drain: everything admitted finishes, then the session's
	// final Result closes the ledger — offered = commits + shed +
	// deadlined across every connection that ever talked to the server.
	res, err := srv.Shutdown()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained: offered=%d commits=%d shed=%d deadlined=%d goodput=%.0f tps\n",
		res.Offered, res.Commits, res.Shed, res.Deadlined, res.GoodputTPS())
}
