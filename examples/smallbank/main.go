// SmallBank: a contention profile the paper's two benchmarks don't
// cover — six short banking transactions (2-4 row footprints) whose
// conflicts are pairwise transfers over a small set of hot accounts.
// The workload is an extension implemented purely against the public
// abyss package (see abyss1000/workloads/smallbank); this example runs
// it under every paper scheme with the hotspot on and off, showing the
// schemes reordering: waiting-based 2PL rides out the hotspot that
// makes abort-based schemes burn their time redoing work.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"

	// Register the SmallBank workload.
	_ "abyss1000/workloads/smallbank"
)

func run(cores int, hotPct float64) {
	fmt.Printf("\n-- %d cores, %3.0f%% of accesses on 64 hot accounts --\n", cores, hotPct*100)
	for _, name := range abyss.PaperSchemes() {
		db, err := abyss.Open(abyss.Options{Cores: cores, Seed: 23})
		if err != nil {
			log.Fatal(err)
		}
		params, err := abyss.DefaultWorkloadParams("smallbank")
		if err != nil {
			log.Fatal(err)
		}
		params.Accounts = 16384
		params.HotAccounts = 64
		params.HotPct = hotPct
		wl, err := db.BuildWorkload("smallbank", params)
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := abyss.NewScheme(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := db.Run(scheme, wl, abyss.RunConfig{
			WarmupCycles:  200_000,
			MeasureCycles: 800_000,
			AbortBackoff:  1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %8.3f M txn/s   abort %5.1f%%\n",
			name, res.Throughput()/1e6, res.AbortFraction()*100)
	}
}

func main() {
	const cores = 32
	fmt.Println("SmallBank (6 banking txns, 2-4 rows each), simulated cores:", cores)
	run(cores, 0)    // uniform access: footprints so small everyone scales
	run(cores, 0.95) // hotspot: pairwise transfers collide on 64 accounts
}
