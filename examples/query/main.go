// The query operator layer on a toy EMP/DEPT schema: composable
// Volcano-style plans — scan, index range, filter, project, join,
// group/aggregate, order/limit — executing inside an engine transaction,
// so every tuple access pays the concurrency-control protocol's costs
// and is visible to the serializability checker. Plans are built once
// and run per transaction; the same code runs under any scheme on
// either runtime.
package main

import (
	"fmt"
	"log"

	"abyss1000/abyss"
	"abyss1000/query"
)

const (
	nEmp  = 64
	nDept = 4
)

// report holds the plan results captured from the last committed
// transaction (one simulated core, so runs never conflict).
type report struct {
	wellPaid []query.Tuple // [id] with salary >= 1400
	deptTwo  []query.Tuple // [id, dept, sal] for department 2
	topPay   []query.Tuple // [id, sal] top three salaries
	perDept  []query.Tuple // [dept, headcount, total salary]
	joined   []query.Tuple // [id, sal, budget] via index-nested-loop join
}

type queryTxn struct {
	emp, dept *abyss.Table
	byDept    *abyss.OrderedIndex
	out       *report
}

func (q *queryTxn) Partitions() []int { return nil }

func (q *queryTxn) Run(tx *abyss.TxnCtx) error {
	var err error
	// Who earns at least 1400? Scan -> filter -> project.
	q.out.wellPaid, err = query.Scan(q.emp).
		Filter(func(t query.Tuple) bool { return t[2] >= 1400 }).
		Project(0).
		Collect(tx)
	if err != nil {
		return err
	}
	// Department 2's employees, in (dept, id) order, off the ordered
	// secondary index — touches only that department's rows.
	q.out.deptTwo, err = query.IndexRange(q.byDept,
		abyss.CompositeKey(0, 0, 2, 0),
		abyss.CompositeKey(0, 0, 2, nEmp)).
		Collect(tx)
	if err != nil {
		return err
	}
	// Top three salaries: order by salary descending, keep three.
	q.out.topPay, err = query.Scan(q.emp).
		Project(0, 2).
		OrderBy(func(a, b query.Tuple) bool { return a[1] > b[1] }).
		Limit(3).
		Collect(tx)
	if err != nil {
		return err
	}
	// Headcount and payroll per department: group on the dept column.
	q.out.perDept, err = query.Scan(q.emp).
		Group(func(t query.Tuple) uint64 { return t[1] },
			func(acc, t query.Tuple) query.Tuple {
				if acc == nil {
					return query.Tuple{t[1], 1, t[2]}
				}
				acc[1]++
				acc[2] += t[2]
				return acc
			}).
		OrderBy(func(a, b query.Tuple) bool { return a[0] < b[0] }).
		Collect(tx)
	if err != nil {
		return err
	}
	// Each well-paid employee with their department's budget: an
	// index-nested-loop join through the (dept, id) ordered index would
	// go the other way; here the dept table is tiny, so a plain
	// nested-loop join against its scan is the right plan.
	q.out.joined, err = query.Scan(q.emp).
		Filter(func(t query.Tuple) bool { return t[2] >= 1400 }).
		Join(query.Scan(q.dept), func(l, r query.Tuple) bool { return l[1] == r[0] }).
		Project(0, 2, 4).
		Collect(tx)
	return err
}

type workload struct{ txn *queryTxn }

func (w *workload) Next(p abyss.Proc) abyss.Txn { return w.txn }

func main() {
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	emp, err := db.CreateTable(abyss.TableSpec{
		Name: "EMP",
		Cols: []abyss.Col{
			{Name: "ID", Width: 8}, {Name: "DEPT", Width: 8}, {Name: "SAL", Width: 8},
		},
		Capacity: nEmp, Loaded: nEmp,
	})
	if err != nil {
		log.Fatal(err)
	}
	dept, err := db.CreateTable(abyss.TableSpec{
		Name:     "DEPT",
		Cols:     []abyss.Col{{Name: "ID", Width: 8}, {Name: "BUDGET", Width: 8}},
		Capacity: nDept, Loaded: nDept,
	})
	if err != nil {
		log.Fatal(err)
	}
	byDept, err := db.CreateOrderedIndex("EMP_BY_DEPT", emp)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nEmp; i++ {
		d, sal := uint64(i%nDept), uint64(1000+(i*37)%500)
		row := emp.LoadRow(i)
		emp.Schema.PutU64(row, 0, uint64(i))
		emp.Schema.PutU64(row, 1, d)
		emp.Schema.PutU64(row, 2, sal)
		byDept.LoadInsert(abyss.CompositeKey(0, 0, d, uint64(i)), i)
	}
	for d := 0; d < nDept; d++ {
		row := dept.LoadRow(d)
		dept.Schema.PutU64(row, 0, uint64(d))
		dept.Schema.PutU64(row, 1, uint64(10_000*(d+1)))
	}

	out := &report{}
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		log.Fatal(err)
	}
	wl := &workload{txn: &queryTxn{emp: emp, dept: dept, byDept: byDept, out: out}}
	res, err := db.Run(scheme, wl, abyss.RunConfig{WarmupCycles: 5_000, MeasureCycles: 200_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran the five plans %d times (every access through NO_WAIT)\n\n", res.Commits)
	fmt.Printf("salary >= 1400 (scan-filter-project): %d employees\n", len(out.wellPaid))
	fmt.Printf("department 2 (ordered-index range):   %d employees\n", len(out.deptTwo))
	fmt.Print("top three salaries (order-limit):     ")
	for _, t := range out.topPay {
		fmt.Printf("emp %d: %d  ", t[0], t[1])
	}
	fmt.Println()
	fmt.Println("per department (group-aggregate):")
	for _, t := range out.perDept {
		fmt.Printf("  dept %d: %2d employees, payroll %d\n", t[0], t[1], t[2])
	}
	fmt.Printf("well-paid with dept budget (join):    %d rows, e.g. emp %d sal %d budget %d\n",
		len(out.joined), out.joined[0][0], out.joined[0][1], out.joined[0][2])
}
