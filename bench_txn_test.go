package abyss1000_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/native"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

// Transaction-path benchmarks: one committed transaction per iteration on
// the native runtime, exercising the DBMS access path (index probe, scheme
// read/write, commit) without simulator overhead. Run with -benchmem: the
// headline number is allocs/op, which must stay ~0 after warm-up — the
// paper's §4.1 finding is that per-access memory allocation is the first
// scalability wall of a main-memory DBMS, and the access path is designed
// to be steady-state allocation-free (closure-free scheme API, arena
// buffers, reused read/write sets, inline index bucket storage). CI runs
// these with -benchtime=1x and fails if allocs/op exceeds a small budget
// (see .github/workflows/ci.yml).
//
// One worker keeps the measurement free of contention effects: aborts and
// waits are concurrency-control behaviour, not access-path cost. txnWarmup
// transactions run before the timer starts so one-time growth (arena
// doubling, slice capacities, zeta memoization) is excluded, exactly like
// the warm-up window of the simulated experiments.
//
// The workers are bound to their workloads (BindWorkload), so every
// completed transaction also records into the latency histogram and the
// per-transaction-type counters — the alloc budget is enforced with the
// full observability path live, proving it adds zero steady-state
// allocations.

const txnWarmup = 500

// txnSchemes returns one instance of each of the six concurrency-control
// implementations (2PL here represented by DL_DETECT; the three 2PL
// variants share the same access path and differ only on conflicts, which
// a single worker never hits).
func txnSchemes() []struct {
	name string
	mk   func() core.Scheme
} {
	return []struct {
		name string
		mk   func() core.Scheme
	}{
		{"DL_DETECT", func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }},
		{"ADAPTIVE", func() core.Scheme { return twopl.NewAdaptive(twopl.Options{}) }},
		{"TIMESTAMP", func() core.Scheme { return to.New(tsalloc.Atomic) }},
		{"OCC", func() core.Scheme { return occ.New(tsalloc.Atomic) }},
		{"MVCC", func() core.Scheme { return mvcc.New(tsalloc.Atomic) }},
		{"HSTORE", func() core.Scheme { return hstore.New(tsalloc.Atomic) }},
	}
}

// driveTxns completes n transactions (commit or program-logic rollback;
// CC aborts retry, though a single worker never conflicts).
func driveTxns(b *testing.B, w *core.Worker, wl core.Workload, n int) {
	b.Helper()
	p := w.P
	for i := 0; i < n; i++ {
		for {
			err := w.ExecOnce(wl.Next(p))
			if err == nil || err == core.ErrUserAbort {
				break
			}
			if err != core.ErrAbort {
				b.Fatalf("unexpected transaction error: %v", err)
			}
		}
	}
}

// BenchmarkTxnYCSB measures one committed YCSB transaction (16 accesses,
// 50% updates, theta 0.6) per iteration, per scheme.
func BenchmarkTxnYCSB(b *testing.B) {
	for _, s := range txnSchemes() {
		s := s
		b.Run(s.name, func(b *testing.B) {
			rt := native.New(1, 42)
			db := core.NewDB(rt)
			cfg := ycsb.DefaultConfig()
			cfg.Rows = 16384
			cfg.Partitioned = s.name == "HSTORE" // H-STORE needs declared partitions
			wl := ycsb.Build(db, cfg)
			scheme := s.mk()
			scheme.Setup(db)
			w := core.NewWorker(rt.Proc(0), db, scheme)
			w.BindWorkload(wl)

			driveTxns(b, w, wl, txnWarmup)
			b.ReportAllocs()
			b.ResetTimer()
			driveTxns(b, w, wl, b.N)
			b.StopTimer()
			if w.Lat.Count() == 0 {
				b.Fatal("latency histogram recorded nothing; observability path not exercised")
			}
		})
	}
}

// BenchmarkTxnTPCC measures one completed TPC-C transaction (50/50
// Payment/NewOrder, 1 warehouse) per iteration, per scheme. NewOrder
// stages 7-17 inserts per commit, so this also covers the deferred-insert
// path and index insertion. Insert segments are sized from b.N (at most
// one ORDERS/NEW_ORDER/HISTORY slot per completed transaction; Build
// reserves 15x for ORDER_LINE), so any -benchtime works.
func BenchmarkTxnTPCC(b *testing.B) {
	for _, s := range txnSchemes() {
		s := s
		b.Run(s.name, func(b *testing.B) {
			rt := native.New(1, 42)
			db := core.NewDB(rt)
			cfg := tpcc.DefaultConfig(1)
			cfg.InsertsPerWorker = txnWarmup + b.N + 64
			wl := tpcc.Build(db, cfg)
			scheme := s.mk()
			scheme.Setup(db)
			w := core.NewWorker(rt.Proc(0), db, scheme)
			w.BindWorkload(wl)

			driveTxns(b, w, wl, txnWarmup)
			b.ReportAllocs()
			b.ResetTimer()
			driveTxns(b, w, wl, b.N)
			b.StopTimer()
			if w.Lat.Count() == 0 {
				b.Fatal("latency histogram recorded nothing; observability path not exercised")
			}
		})
	}
}
