package abyss1000_test

// Crash-fault-injection recovery harness: the durability tier's
// end-to-end property tests. The contract under test is the one
// README.md states for the WAL: tear the log stream at ANY byte — a
// machine crash mid group-commit write — and recovery must rebuild
// exactly the committed state of the complete record prefix, on every
// scheme and both runtimes. The tests compare recovered databases
// against live ones with abyss.DB.StateDump, whose string form is a
// complete serialization of committed user-visible state, and use
// internal/wal.Scan only to enumerate record boundaries so cuts land
// both ON frame edges and INSIDE frames (torn tails).

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"abyss1000/abyss"
	"abyss1000/bench"
	"abyss1000/internal/wal"
	"abyss1000/workloads/smallbank"
)

// ycsbParams returns a small YCSB configuration that still produces a
// few hundred logged commits, partitioned when the scheme needs it.
func ycsbParams(t *testing.T, scheme string) abyss.WorkloadParams {
	t.Helper()
	p, err := abyss.DefaultWorkloadParams("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	p.Rows = 512
	p.ReqPerTxn = 4
	if scheme == "HSTORE" {
		p.Partitioned = true
		p.MPFraction = 0.1
	}
	if p.MPParts < 2 {
		p.MPParts = 2
	}
	return p
}

// durableRun executes one YCSB measurement with a WAL attached (async
// group commit on the native runtime, accounting-only sync mode on the
// simulator), flushes the log and returns the live DB plus the captured
// stream.
func durableRun(t *testing.T, runtime, scheme string) (*abyss.DB, []byte, abyss.Result) {
	t.Helper()
	sink := abyss.NewMemLogSink()
	db, err := abyss.Open(abyss.Options{
		Runtime:    runtime,
		Cores:      4,
		Seed:       42,
		Durability: &abyss.Durability{Sink: sink, Async: runtime == abyss.RuntimeNative},
	})
	if err != nil {
		t.Fatal(err)
	}
	params := ycsbParams(t, scheme)
	wl, err := db.BuildWorkload("ycsb", params)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	rc := abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 150_000, AbortBackoff: 500}
	if runtime == abyss.RuntimeNative {
		rc = abyss.RunConfig{WarmupCycles: 1_000_000, MeasureCycles: 10_000_000, AbortBackoff: 500} // ns
	}
	res, err := db.Run(s, wl, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatalf("%s/%s committed nothing", runtime, scheme)
	}
	if err := db.FlushLog(); err != nil {
		t.Fatal(err)
	}
	return db, sink.Bytes(), res
}

// recoverYCSB replays stream onto a freshly built copy of the YCSB
// catalog and returns the recovered DB and replay info.
func recoverYCSB(t *testing.T, scheme string, stream []byte) (*abyss.DB, abyss.RecoverInfo) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildWorkload("ycsb", ycsbParams(t, scheme)); err != nil {
		t.Fatal(err)
	}
	info, err := db.Recover(stream)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return db, info
}

// cutPoints enumerates crash offsets for a stream: for every record,
// the frame start (a clean boundary), one byte past it, the frame
// midpoint and the last byte before the frame ends — all torn tails —
// plus the stream end. Record extents come from the WAL scanner itself.
func cutPoints(t *testing.T, stream []byte) []int {
	t.Helper()
	recs, info, err := wal.Scan(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Complete != int64(len(stream)) || info.TornBytes != 0 {
		t.Fatalf("full stream should scan clean: %+v", info)
	}
	if len(recs) == 0 {
		t.Fatal("stream has no records")
	}
	var cuts []int
	for _, r := range recs {
		mid := r.Off + (r.End-r.Off)/2
		cuts = append(cuts, int(r.Off), int(r.Off)+1, int(mid), int(r.End)-1)
	}
	cuts = append(cuts, len(stream))
	return cuts
}

// TestCrashRecoveryAllSchemes is the tier's headline property: on every
// paper scheme and both runtimes, replaying the full log onto a fresh
// copy of the catalog reproduces the live DB's committed state exactly.
func TestCrashRecoveryAllSchemes(t *testing.T) {
	for _, runtime := range []string{abyss.RuntimeSim, abyss.RuntimeNative} {
		for _, scheme := range abyss.PaperSchemes() {
			t.Run(runtime+"/"+scheme, func(t *testing.T) {
				live, stream, res := durableRun(t, runtime, scheme)
				rec, info := recoverYCSB(t, scheme, stream)
				if info.TornBytes != 0 {
					t.Fatalf("flushed stream should have no torn tail: %+v", info)
				}
				// Warmup commits are logged too, so the log holds at
				// least the measurement window's commits.
				if uint64(info.Commits) < res.Commits {
					t.Fatalf("log has %d commits, run reported %d in the measurement window alone", info.Commits, res.Commits)
				}
				if rec.StateDump() != live.StateDump() {
					t.Fatalf("recovered state diverges from live committed state (%d commits)", res.Commits)
				}
			})
		}
	}
}

// TestRecoveryTruncationSweep tears the stream at every enumerated cut
// point — frame boundaries and mid-frame torn tails — and checks the
// prefix property: recovery of a torn stream equals recovery of its
// longest complete prefix, never fails, and commit counts grow
// monotonically with the cut.
func TestRecoveryTruncationSweep(t *testing.T) {
	const scheme = "NO_WAIT"
	_, stream, _ := durableRun(t, abyss.RuntimeSim, scheme)
	// The prefix dump at each complete boundary, computed once per
	// boundary: torn cuts must reduce to one of these.
	prefixDump := map[int]string{}
	dumpAt := func(boundary int) string {
		if d, ok := prefixDump[boundary]; ok {
			return d
		}
		db, info := recoverYCSB(t, scheme, stream[:boundary])
		if info.TornBytes != 0 {
			t.Fatalf("cut %d claimed to be a boundary but has %d torn bytes", boundary, info.TornBytes)
		}
		d := db.StateDump()
		prefixDump[boundary] = d
		return d
	}
	cuts := cutPoints(t, stream)
	if testing.Short() && len(cuts) > 64 {
		// The full sweep recovers at every enumerated offset; the race-
		// detector CI smoke keeps a strided sample plus both ends.
		sampled := cuts[:0]
		for i, c := range cuts {
			if i%(len(cuts)/64+1) == 0 || i >= len(cuts)-2 {
				sampled = append(sampled, c)
			}
		}
		cuts = sampled
	}
	lastCommits := uint64(0)
	for _, cut := range cuts {
		db, info := recoverYCSB(t, scheme, stream[:cut])
		if got := cut - int(info.TornBytes); got < 0 || got > cut {
			t.Fatalf("cut %d: implausible torn-byte count %d", cut, info.TornBytes)
		}
		boundary := cut - int(info.TornBytes)
		if db.StateDump() != dumpAt(boundary) {
			t.Fatalf("cut %d: torn recovery differs from its complete prefix at %d", cut, boundary)
		}
		if uint64(info.Commits) < lastCommits {
			t.Fatalf("cut %d: commits went backwards (%d < %d)", cut, info.Commits, lastCommits)
		}
		lastCommits = uint64(info.Commits)
	}
}

// smallBankRun executes a transfer-only SmallBank mix (money is
// invariant) with a WAL, returning the stream and its config.
func smallBankRun(t *testing.T, scheme string, sink abyss.LogSink) (*abyss.DB, smallbank.Config, abyss.Result) {
	t.Helper()
	cfg := smallbank.DefaultConfig()
	cfg.Accounts = 1024
	cfg.HotAccounts = 16
	cfg.HotPct = 0.9
	cfg.Weights = [6]float64{20, 0, 0, 40, 0, 40} // Balance/Amalgamate/SendPayment only
	db, err := abyss.Open(abyss.Options{
		Runtime:    abyss.RuntimeSim,
		Cores:      8,
		Seed:       11,
		Durability: &abyss.Durability{Sink: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := smallbank.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := abyss.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(s, wl, abyss.RunConfig{WarmupCycles: 30_000, MeasureCycles: 200_000, AbortBackoff: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatalf("%s committed nothing", scheme)
	}
	return db, cfg, res
}

// recoveredTotal replays stream onto a fresh SmallBank catalog and sums
// every recovered balance.
func recoveredTotal(t *testing.T, cfg smallbank.Config, stream []byte) (int64, abyss.RecoverInfo) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := smallbank.Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info, err := db.Recover(stream)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	var total int64
	for _, tb := range []*abyss.Table{wl.Savings(), wl.Checking()} {
		for slot := 0; slot < cfg.Accounts; slot++ {
			total += tb.Schema.GetI64(tb.Row(slot), 1)
		}
	}
	return total, info
}

// TestSmallBankConservationUnderCrash cuts the log of a transfer-only
// SmallBank run at frame boundaries and inside frames, on every paper
// scheme, and checks that every recovered prefix still conserves money:
// a crash can lose the tail of history but can never recover a state
// where a transfer half-happened.
func TestSmallBankConservationUnderCrash(t *testing.T) {
	for _, scheme := range abyss.PaperSchemes() {
		t.Run(scheme, func(t *testing.T) {
			sink := abyss.NewMemLogSink()
			db, cfg, _ := smallBankRun(t, scheme, sink)
			if err := db.FlushLog(); err != nil {
				t.Fatal(err)
			}
			stream := sink.Bytes()
			cuts := cutPoints(t, stream)
			// The full sweep is quadratic in stream size across seven
			// schemes; a strided sample plus the endpoints keeps the
			// test fast while still hitting boundaries and torn tails.
			if len(cuts) > 40 {
				sampled := cuts[:0]
				for i, c := range cuts {
					if i%(len(cuts)/40+1) == 0 || i >= len(cuts)-2 {
						sampled = append(sampled, c)
					}
				}
				cuts = sampled
			}
			want := smallbank.InitialTotal(cfg.Accounts)
			for _, cut := range cuts {
				got, info := recoveredTotal(t, cfg, stream[:cut])
				if got != want {
					t.Fatalf("cut %d (%d commits recovered): money not conserved: %d != %d (diff %d cents)",
						cut, info.Commits, got, want, got-want)
				}
			}
		})
	}
}

// TestLiveCrashInjection runs with a FaultLogSink that tears the stream
// mid-run — the disk dies while transactions are still committing. The
// run itself must complete (commits proceed in memory), the log must
// report the injected error, and recovery of the torn stream must
// restore the durable prefix with no more commits than the live run.
func TestLiveCrashInjection(t *testing.T) {
	for _, runtime := range []string{abyss.RuntimeSim, abyss.RuntimeNative} {
		t.Run(runtime, func(t *testing.T) {
			mem := abyss.NewMemLogSink()
			sink := abyss.NewFaultLogSink(mem, 20_000)
			db, err := abyss.Open(abyss.Options{
				Runtime:    runtime,
				Cores:      4,
				Seed:       42,
				Durability: &abyss.Durability{Sink: sink, Async: runtime == abyss.RuntimeNative},
			})
			if err != nil {
				t.Fatal(err)
			}
			params := ycsbParams(t, "NO_WAIT")
			wl, err := db.BuildWorkload("ycsb", params)
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme("NO_WAIT")
			if err != nil {
				t.Fatal(err)
			}
			rc := abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 150_000, AbortBackoff: 500}
			if runtime == abyss.RuntimeNative {
				rc = abyss.RunConfig{WarmupCycles: 1_000_000, MeasureCycles: 10_000_000, AbortBackoff: 500}
			}
			res, err := db.Run(s, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatal("live run should keep committing after the log dies")
			}
			if !sink.Failed() {
				t.Fatal("fault point never fired: stream too short for the offset")
			}
			if !errors.Is(db.LogErr(), abyss.ErrLogInjected) {
				t.Fatalf("LogErr = %v, want ErrLogInjected", db.LogErr())
			}
			if got := len(mem.Bytes()); got > 8+20_000 {
				t.Fatalf("fault sink let %d bytes through past the %d-byte fault point", got, 20_000)
			}
			_, info := recoverYCSB(t, "NO_WAIT", mem.Bytes())
			if info.Commits == 0 {
				t.Fatal("nothing recovered from the durable prefix before the fault point")
			}
		})
	}
}

// TestRecoveryIdempotence pins the replay-twice, empty-log and
// checkpoint-only cases: recovery is a pure function of (catalog,
// stream) and applying it again changes nothing.
func TestRecoveryIdempotence(t *testing.T) {
	t.Run("replay-twice", func(t *testing.T) {
		live, stream, _ := durableRun(t, abyss.RuntimeSim, "TIMESTAMP")
		rec, _ := recoverYCSB(t, "TIMESTAMP", stream)
		first := rec.StateDump()
		if _, err := rec.Recover(stream); err != nil {
			t.Fatalf("second recover: %v", err)
		}
		if rec.StateDump() != first {
			t.Fatal("second replay of the same stream changed the state")
		}
		if first != live.StateDump() {
			t.Fatal("recovered state diverges from live state")
		}
	})
	t.Run("empty-log", func(t *testing.T) {
		stream := abyss.NewMemLogSink().Bytes() // magic only
		rec, info := recoverYCSB(t, "NO_WAIT", stream)
		if info.Records != 0 || info.Commits != 0 {
			t.Fatalf("empty log replayed something: %+v", info)
		}
		pristine, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pristine.BuildWorkload("ycsb", ycsbParams(t, "NO_WAIT")); err != nil {
			t.Fatal(err)
		}
		if rec.StateDump() != pristine.StateDump() {
			t.Fatal("recovering an empty log perturbed the freshly built state")
		}
	})
	t.Run("checkpoint-only", func(t *testing.T) {
		sink := abyss.NewMemLogSink()
		db, err := abyss.Open(abyss.Options{
			Runtime: abyss.RuntimeSim, Cores: 4, Seed: 42,
			Durability: &abyss.Durability{Sink: sink},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.BuildWorkload("ycsb", ycsbParams(t, "NO_WAIT")); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		rec, info := recoverYCSB(t, "NO_WAIT", sink.Bytes())
		if info.Checkpoint == 0 {
			t.Fatalf("recovery did not use the checkpoint: %+v", info)
		}
		if rec.StateDump() != db.StateDump() {
			t.Fatal("checkpoint-only recovery diverges from the checkpointed DB")
		}
	})
}

// TestCheckpointedRecovery runs, checkpoints, and recovers from a stream
// whose replay region is empty (everything is in the checkpoint): the
// recovered state must still equal the live state, including for MVCC,
// whose committed images live in version chains rather than the slab.
func TestCheckpointedRecovery(t *testing.T) {
	for _, scheme := range []string{"NO_WAIT", "MVCC", "TIMESTAMP"} {
		t.Run(scheme, func(t *testing.T) {
			sink := abyss.NewMemLogSink()
			db, err := abyss.Open(abyss.Options{
				Runtime: abyss.RuntimeSim, Cores: 4, Seed: 42,
				Durability: &abyss.Durability{Sink: sink},
			})
			if err != nil {
				t.Fatal(err)
			}
			wl, err := db.BuildWorkload("ycsb", ycsbParams(t, scheme))
			if err != nil {
				t.Fatal(err)
			}
			s, err := abyss.NewScheme(scheme)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Run(s, wl, abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 150_000, AbortBackoff: 500}); err != nil {
				t.Fatal(err)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			rec, info := recoverYCSB(t, scheme, sink.Bytes())
			if info.Checkpoint == 0 {
				t.Fatalf("recovery ignored the checkpoint: %+v", info)
			}
			if info.Commits != 0 {
				t.Fatalf("post-checkpoint replay region should be empty, applied %d commits", info.Commits)
			}
			if rec.StateDump() != db.StateDump() {
				t.Fatal("checkpointed recovery diverges from live committed state")
			}
		})
	}
}

// TestLogGroupingKnob pins that RunConfig.LogGroupTxns reaches the
// writer: halving the group size roughly doubles the modeled sync count.
func TestLogGroupingKnob(t *testing.T) {
	syncsWith := func(group int) uint64 {
		db, err := abyss.Open(abyss.Options{
			Runtime: abyss.RuntimeSim, Cores: 4, Seed: 42,
			Durability: &abyss.Durability{Sink: abyss.NewMemLogSink()},
		})
		if err != nil {
			t.Fatal(err)
		}
		wl, err := db.BuildWorkload("ycsb", ycsbParams(t, "NO_WAIT"))
		if err != nil {
			t.Fatal(err)
		}
		s, err := abyss.NewScheme("NO_WAIT")
		if err != nil {
			t.Fatal(err)
		}
		rc := abyss.RunConfig{WarmupCycles: 20_000, MeasureCycles: 150_000, AbortBackoff: 500, LogGroupTxns: group}
		if _, err := db.Run(s, wl, rc); err != nil {
			t.Fatal(err)
		}
		_, _, syncs := db.LogStats()
		return syncs
	}
	coarse, fine := syncsWith(16), syncsWith(2)
	if fine <= coarse {
		t.Fatalf("LogGroupTxns=2 should sync more than =16: %d <= %d", fine, coarse)
	}
}

// TestGoldenSignatureWithLogging pins the accounting-only guarantee at
// full strength: the simulator's golden signature — commits, aborts,
// tuples and all six paper breakdown components across eleven runs — is
// byte-identical with durability logging attached.
func TestGoldenSignatureWithLogging(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~11 full simulations")
	}
	want, err := os.ReadFile("testdata/golden_sim.txt")
	if err != nil {
		t.Fatalf("missing pinned signature: %v", err)
	}
	got := bench.GoldenSignatureDurable()
	if got != string(want) {
		t.Errorf("accounting-only logging perturbed the simulated schedule:\n%s",
			diffLines(string(want), got))
	}
}

// diffLines renders a compact first-difference report for two
// line-oriented strings.
func diffLines(want, got string) string {
	w, g := []byte(want), []byte(got)
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d:\nwant ...%q\ngot  ...%q", i, want[lo:i+20], got[lo:min(i+20, len(got))])
		}
	}
	return fmt.Sprintf("length mismatch: want %d bytes, got %d", len(want), len(got))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
