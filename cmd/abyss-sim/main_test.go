package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckReproLine pins the -check repro contract from the shell: the
// exact command line a failure report would print (same workload,
// scheme, runtime, cores, seed, window) reruns the identical simulated
// schedule, so its verdict output is byte-identical across invocations.
func TestCheckReproLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary twice")
	}
	bin := filepath.Join(t.TempDir(), "abyss-sim")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building abyss-sim: %v\n%s", err, out)
	}
	args := []string{
		"-check", "-workload", "chaos", "-scheme", "NO_WAIT", "-runtime", "sim",
		"-cores", "4", "-seed", "77", "-warmup", "40000", "-measure", "250000",
	}
	run := func() string {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("abyss-sim %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("repro command is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, "serializability check: PASS") {
		t.Fatalf("expected a PASS verdict line, got:\n%s", first)
	}
}
