package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildSim compiles the abyss-sim binary into a temp dir once per test.
func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "abyss-sim")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building abyss-sim: %v\n%s", err, out)
	}
	return bin
}

// TestCheckReproLine pins the -check repro contract from the shell: the
// exact command line a failure report would print (same workload,
// scheme, runtime, cores, seed, window) reruns the identical simulated
// schedule, so its verdict output is byte-identical across invocations.
func TestCheckReproLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary twice")
	}
	bin := buildSim(t)
	args := []string{
		"-check", "-workload", "chaos", "-scheme", "NO_WAIT", "-runtime", "sim",
		"-cores", "4", "-seed", "77", "-warmup", "40000", "-measure", "250000",
	}
	run := func() string {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("abyss-sim %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("repro command is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, "serializability check: PASS") {
		t.Fatalf("expected a PASS verdict line, got:\n%s", first)
	}
}

// TestOverloadFlagsDeterministic pins the open-loop CLI surface: the full
// overload flag set (arrivals, queue bound, deadline, retry budget,
// backoff cap, fault injection) produces byte-identical output across
// invocations on the simulator, including the overload summary line.
func TestOverloadFlagsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary twice")
	}
	bin := buildSim(t)
	args := []string{
		"-scheme", "NO_WAIT", "-cores", "8", "-seed", "5", "-rows", "4096",
		"-warmup", "50000", "-measure", "400000",
		"-arrivals", "mmpp:500000:4000000:50000:200000",
		"-qdepth", "8", "-deadline", "60000", "-retry", "4", "-backoff-cap", "8000",
		"-fault", "spike:100000:5000,stall:1:100000:200000",
	}
	run := func() string {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("abyss-sim %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("open-loop run is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	for _, want := range []string{"overload:", "offered", "goodput", "shed", "deadlined", "qdepth"} {
		if !strings.Contains(first, want) {
			t.Fatalf("overload summary missing %q:\n%s", want, first)
		}
	}
}

// TestPlainRunSIGINT pins graceful interruption of a plain (non-streaming)
// run: SIGINT mid-measurement drains the workers, prints the partial
// result with an interruption marker, and exits 130.
func TestPlainRunSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs a multi-second native window")
	}
	bin := buildSim(t)
	// A native run with a 30-second window: long enough that the signal
	// always lands mid-measurement, even on a loaded CI machine.
	cmd := exec.Command(bin,
		"-runtime", "native", "-scheme", "NO_WAIT", "-cores", "2", "-rows", "4096",
		"-warmup", "10000000", "-measure", "30000000000")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit code 130, got err=%v\noutput:\n%s", err, out.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code = %d, want 130\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "interrupted: partial window") {
		t.Fatalf("missing interruption marker:\n%s", out.String())
	}
	// The partial result line itself must still be there.
	if !strings.Contains(out.String(), "txn/s") {
		t.Fatalf("missing partial result line:\n%s", out.String())
	}
}

// TestFullMixAndTATPCLI pins the new workload surface from the shell:
// -mix full runs the five-transaction TPC-C mix with every type
// committing, -workload tatp resolves through the registry, and an
// unknown -mix fails fast listing the valid choices.
func TestFullMixAndTATPCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary several times")
	}
	bin := buildSim(t)

	run := func(args ...string) string {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("abyss-sim %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	full := run("-workload", "tpcc", "-mix", "full", "-scheme", "NO_WAIT",
		"-cores", "4", "-warmup", "50000", "-measure", "600000", "-hist")
	for _, txn := range []string{"Payment", "NewOrder", "OrderStatus", "Delivery", "StockLevel"} {
		if !strings.Contains(full, txn) {
			t.Errorf("full-mix -hist output missing %s:\n%s", txn, full)
		}
	}

	tatp := run("-workload", "tatp", "-scheme", "MVCC", "-cores", "4",
		"-subscribers", "2048", "-warmup", "50000", "-measure", "600000", "-hist")
	for _, txn := range []string{"GetSubscriberData", "UpdateLocation", "InsertCallForwarding"} {
		if !strings.Contains(tatp, txn) {
			t.Errorf("tatp -hist output missing %s:\n%s", txn, tatp)
		}
	}

	out, err := exec.Command(bin, "-workload", "tpcc", "-mix", "bogus",
		"-cores", "2", "-measure", "100000").CombinedOutput()
	if err == nil {
		t.Fatalf("-mix bogus should fail, got:\n%s", out)
	}
	if !strings.Contains(string(out), "paper") || !strings.Contains(string(out), "full") {
		t.Fatalf("unknown-mix error should list the valid mixes, got:\n%s", out)
	}

	if list := run("-list"); !strings.Contains(list, "tatp") {
		t.Fatalf("-list does not mention tatp:\n%s", list)
	}
}
