// Command abyss-sim runs a single workload configuration on the many-core
// simulator (or natively) and prints throughput, abort rate and the
// six-component time breakdown. It is a thin shell over the public abyss
// package: schemes, workloads and timestamp methods all resolve through
// the abyss registries, so -list (or any unknown name) shows exactly what
// an embedder would get from abyss.Schemes() / abyss.Workloads().
//
// Examples:
//
//	abyss-sim -scheme NO_WAIT -cores 64 -theta 0.8
//	abyss-sim -scheme MVCC -cores 256 -readpct 0.9
//	abyss-sim -workload tpcc -scheme HSTORE -cores 64 -warehouses 64
//	abyss-sim -workload smallbank -scheme OCC -cores 64 -hotpct 0.95
//	abyss-sim -scheme DL_DETECT -runtime native -cores 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abyss1000/abyss"

	// Register the SmallBank extension workload.
	_ "abyss1000/workloads/smallbank"
)

func main() {
	var (
		schemeName = flag.String("scheme", "NO_WAIT", "concurrency-control scheme (see -list)")
		workload   = flag.String("workload", "ycsb", "workload (see -list)")
		runtimeSel = flag.String("runtime", "sim", "sim|native")
		cores      = flag.Int("cores", 64, "logical cores / worker threads")
		seed       = flag.Int64("seed", 42, "determinism seed")
		tsMethod   = flag.String("ts", "atomic", "timestamp allocation method (see -list)")
		list       = flag.Bool("list", false, "list registered schemes, workloads and timestamp methods")

		// YCSB knobs.
		rows    = flag.Int("rows", 0, "YCSB table size")
		theta   = flag.Float64("theta", -1, "YCSB zipf skew, in [0, 1)")
		readPct = flag.Float64("readpct", -1, "fraction of reads, in [0, 1]")
		reqs    = flag.Int("reqs", 0, "accesses per transaction")
		part    = flag.Bool("partitioned", false, "partitioned YCSB (needed for HSTORE)")
		mpFrac  = flag.Float64("mp", -1, "multi-partition txn fraction, in [0, 1]")

		// TPC-C knobs.
		warehouses = flag.Int("warehouses", 0, "TPC-C warehouses")
		payPct     = flag.Float64("paypct", -1, "fraction of Payment txns, in [0, 1]")

		// SmallBank knobs.
		accounts = flag.Int("accounts", 0, "SmallBank customer count")
		hot      = flag.Int("hot", 0, "SmallBank hotspot size (customers)")
		hotPct   = flag.Float64("hotpct", -1, "fraction of accesses hitting the hotspot, in [0, 1]")

		warmup  = flag.Uint64("warmup", 300_000, "warmup cycles (ns if native)")
		measure = flag.Uint64("measure", 1_500_000, "measurement cycles (ns if native)")
	)
	flag.Parse()

	if *list {
		printLists()
		return
	}

	method, err := abyss.ParseTSMethod(*tsMethod)
	if err != nil {
		fail(err)
	}

	if *runtimeSel == abyss.RuntimeNative && *measure < 10_000_000 {
		*warmup, *measure = 5_000_000, 50_000_000 // sensible wall-clock window
	}

	db, err := abyss.Open(abyss.Options{Runtime: *runtimeSel, Cores: *cores, Seed: *seed})
	if err != nil {
		fail(err)
	}

	params, err := abyss.DefaultWorkloadParams(*workload)
	if err != nil {
		fail(err)
	}
	// Negative/zero flag sentinels mean "keep the workload default";
	// explicit values are range-checked here so a typo'd flag fails fast
	// with the limits in the message rather than as garbage output.
	if err := applyPct(&params.ReadPct, *readPct, "-readpct"); err != nil {
		fail(err)
	}
	if *theta >= 0 {
		if *theta >= 1 {
			fail(fmt.Errorf("abyss-sim: -theta must be in [0, 1), got %g", *theta))
		}
		params.Theta = *theta
	}
	if err := applyPct(&params.MPFraction, *mpFrac, "-mp"); err != nil {
		fail(err)
	}
	if err := applyPct(&params.PaymentPct, *payPct, "-paypct"); err != nil {
		fail(err)
	}
	if err := applyPct(&params.HotPct, *hotPct, "-hotpct"); err != nil {
		fail(err)
	}
	if *rows > 0 {
		params.Rows = *rows
	}
	if *reqs > 0 {
		params.ReqPerTxn = *reqs
	}
	if *warehouses > 0 {
		params.Warehouses = *warehouses
	}
	if *accounts > 0 {
		params.Accounts = *accounts
	}
	if *hot > 0 {
		params.HotAccounts = *hot
	}
	params.Partitioned = *part || *schemeName == "HSTORE"
	if params.MPParts < 2 {
		params.MPParts = 2
	}
	if *workload == "tpcc" {
		params.InsertsPerWorker = int(*measure/1000) + 1024
	}

	wl, err := db.BuildWorkload(*workload, params)
	if err != nil {
		fail(err)
	}
	scheme, err := abyss.NewScheme(*schemeName, abyss.WithTSMethod(method))
	if err != nil {
		fail(err)
	}
	res, err := db.Run(scheme, wl, abyss.RunConfig{
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		AbortBackoff:  1000,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(res.String())
}

// applyPct overrides *dst with v when the flag was given (v >= 0),
// rejecting values outside [0, 1].
func applyPct(dst *float64, v float64, flagName string) error {
	if v < 0 {
		return nil
	}
	if v > 1 {
		return fmt.Errorf("abyss-sim: %s must be in [0, 1], got %g", flagName, v)
	}
	*dst = v
	return nil
}

func printLists() {
	fmt.Println("schemes:")
	for _, info := range abyss.SchemeInfos() {
		fmt.Printf("  -scheme %-12s %s\n", info.Name, info.Desc)
	}
	fmt.Println("workloads:")
	for _, info := range abyss.WorkloadInfos() {
		fmt.Printf("  -workload %-10s %s\n", info.Name, info.Desc)
	}
	fmt.Printf("timestamp methods:\n  -ts %s\n", strings.Join(abyss.TSMethodNames(), "|"))
	fmt.Printf("runtimes:\n  -runtime %s\n", strings.Join(abyss.Runtimes(), "|"))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
