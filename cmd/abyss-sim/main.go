// Command abyss-sim runs a single workload configuration on the many-core
// simulator (or natively) and prints throughput, abort rate and the
// six-component time breakdown. It is a thin shell over the public abyss
// package: schemes, workloads and timestamp methods all resolve through
// the abyss registries, so -list (or any unknown name) shows exactly what
// an embedder would get from abyss.Schemes() / abyss.Workloads().
//
// Examples:
//
//	abyss-sim -scheme NO_WAIT -cores 64 -theta 0.8
//	abyss-sim -scheme MVCC -cores 256 -readpct 0.9
//	abyss-sim -workload tpcc -scheme HSTORE -cores 64 -warehouses 64
//	abyss-sim -workload smallbank -scheme OCC -cores 64 -hotpct 0.95
//	abyss-sim -scheme DL_DETECT -runtime native -cores 8
//	abyss-sim -scheme OCC -interval 250000        # live per-interval lines
//	abyss-sim -workload smallbank -scheme MVCC -hist
//	                                              # latency histogram + per-txn table
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abyss1000/abyss"
	"abyss1000/cmd/internal/cli"

	// Register the chaos fuzz workload and the SmallBank and TATP
	// extensions.
	_ "abyss1000/workloads/chaos"
	_ "abyss1000/workloads/smallbank"
	_ "abyss1000/workloads/tatp"
)

func main() {
	var (
		schemeName = flag.String("scheme", "NO_WAIT", "concurrency-control scheme (see -list)")
		workload   = flag.String("workload", "ycsb", "workload (see -list)")
		runtimeSel = flag.String("runtime", "sim", "sim|native")
		cores      = flag.Int("cores", 64, "logical cores / worker threads")
		seed       = flag.Int64("seed", 42, "determinism seed")
		tsMethod   = flag.String("ts", "atomic", "timestamp allocation method (see -list)")
		list       = flag.Bool("list", false, "list registered schemes, workloads and timestamp methods")

		// YCSB knobs.
		rows    = flag.Int("rows", 0, "YCSB table size")
		theta   = flag.Float64("theta", -1, "YCSB zipf skew, in [0, 1)")
		readPct = flag.Float64("readpct", -1, "fraction of reads, in [0, 1]")
		reqs    = flag.Int("reqs", 0, "accesses per transaction")
		part    = flag.Bool("partitioned", false, "partitioned YCSB (needed for HSTORE)")
		mpFrac  = flag.Float64("mp", -1, "multi-partition txn fraction, in [0, 1]")

		// TPC-C knobs.
		warehouses = flag.Int("warehouses", 0, "TPC-C warehouses")
		payPct     = flag.Float64("paypct", -1, "fraction of Payment txns, in [0, 1]")
		mixName    = flag.String("mix", "", "TPC-C transaction mix: paper (Payment+NewOrder) or full (all five types)")

		subscribers = flag.Int("subscribers", 0, "TATP subscriber count")

		// SmallBank knobs.
		accounts = flag.Int("accounts", 0, "SmallBank customer count")
		hot      = flag.Int("hot", 0, "SmallBank hotspot size (customers)")
		hotPct   = flag.Float64("hotpct", -1, "fraction of accesses hitting the hotspot, in [0, 1]")

		warmup  = flag.Uint64("warmup", 300_000, "warmup cycles (ns if native)")
		measure = flag.Uint64("measure", 1_500_000, "measurement cycles (ns if native)")

		// Correctness knobs.
		check = flag.Bool("check", false, "capture the run's transaction history and verify serializability plus final-state equivalence; non-zero exit and a repro line on failure")

		// Observability knobs.
		interval = flag.Uint64("interval", 0, "print a live throughput/abort/latency line every N cycles of the measurement window (0 disables)")
		hist     = flag.Bool("hist", false, "dump the commit-latency histogram and per-transaction-type results after the run")

		// Overload knobs (open-loop arrivals, admission control, deadlines,
		// retry budgets, fault injection).
		arrivals   = flag.String("arrivals", "", "open-loop arrival process: poisson:<tps> or mmpp:<calm_tps>:<burst_tps>[:<burst_cycles>:<calm_cycles>] (empty keeps the paper's closed loop)")
		qdepth     = flag.Int("qdepth", 0, "bound each worker's admission queue at this depth; arrivals past the bound are shed (0 = unbounded; needs -arrivals)")
		shedTypes  = flag.String("shed-types", "", "comma-separated transaction type names to shed first when an admission queue passes its high-water mark (needs -arrivals)")
		deadline   = flag.Uint64("deadline", 0, "abandon a transaction not committed within this many cycles of its arrival (0 disables)")
		retryLimit = flag.Int("retry", 0, "abandon a transaction after this many failed attempts (0 = unlimited retries)")
		backoffCap = flag.Uint64("backoff-cap", 0, "cap for exponential abort backoff: the mean doubles per attempt from the base up to this (0 keeps the fixed base)")
		faultSpec  = flag.String("fault", "", "comma-separated fault injectors: stall:<worker>:<from>:<until>, slowpart:<first>:<count>:<extra>[:<from>:<until>], spike:<period>:<duration>")

		// Durability knobs.
		walDest    = flag.String("wal", "", "write-ahead log destination: 'mem' or a file path (empty disables durability)")
		walGroup   = flag.Int("wal-group", 0, "group-commit size in records per fsync (0 keeps the default)")
		walAsync   = flag.Bool("wal-async", false, "real background group commit with durability waits (meant for -runtime native; default is accounting-only logging)")
		crashAfter = flag.Int64("crash-after", -1, "inject a crash: tear the log at this byte offset and fail it thereafter (negative disables)")
		doRecover  = flag.Bool("recover", false, "after the run, replay the log onto a fresh DB and verify the recovered state")
		doCkpt     = flag.Bool("checkpoint", false, "append a checkpoint to the log after the run (recovery then starts from it)")
		dumpPath   = flag.String("dump", "", "write the committed-state dump to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		printLists()
		return
	}

	method, err := abyss.ParseTSMethod(*tsMethod)
	if err != nil {
		fail(err)
	}

	if *runtimeSel == abyss.RuntimeNative && *measure < 10_000_000 {
		*warmup, *measure = 5_000_000, 50_000_000 // sensible wall-clock window
	}

	// Durability setup: pick the sink, optionally wrapped with a byte-
	// offset fault point that tears the stream like a machine crash.
	var (
		dur     *abyss.Durability
		memSink *abyss.MemLogSink
		walPath string
	)
	if *crashAfter >= 0 && *walDest == "" {
		fail(fmt.Errorf("abyss-sim: -crash-after needs -wal"))
	}
	if (*doRecover || *doCkpt) && *walDest == "" {
		fail(fmt.Errorf("abyss-sim: -recover and -checkpoint need -wal"))
	}
	if *walDest != "" {
		var sink abyss.LogSink
		if *walDest == "mem" {
			memSink = abyss.NewMemLogSink()
			sink = memSink
		} else {
			walPath = *walDest
			fs, err := abyss.CreateLogFile(walPath)
			if err != nil {
				fail(err)
			}
			sink = fs
		}
		if *crashAfter >= 0 {
			sink = abyss.NewFaultLogSink(sink, *crashAfter)
		}
		dur = &abyss.Durability{Sink: sink, Async: *walAsync, GroupTxns: *walGroup}
	}

	db, err := abyss.Open(abyss.Options{Runtime: *runtimeSel, Cores: *cores, Seed: *seed, Durability: dur})
	if err != nil {
		fail(err)
	}

	params, err := abyss.DefaultWorkloadParams(*workload)
	if err != nil {
		fail(err)
	}
	// Negative/zero flag sentinels mean "keep the workload default";
	// explicit values are range-checked here so a typo'd flag fails fast
	// with the limits in the message rather than as garbage output.
	if err := applyPct(&params.ReadPct, *readPct, "-readpct"); err != nil {
		fail(err)
	}
	if *theta >= 0 {
		if *theta >= 1 {
			fail(fmt.Errorf("abyss-sim: -theta must be in [0, 1), got %g", *theta))
		}
		params.Theta = *theta
	}
	if err := applyPct(&params.MPFraction, *mpFrac, "-mp"); err != nil {
		fail(err)
	}
	if err := applyPct(&params.PaymentPct, *payPct, "-paypct"); err != nil {
		fail(err)
	}
	if err := applyPct(&params.HotPct, *hotPct, "-hotpct"); err != nil {
		fail(err)
	}
	if *rows > 0 {
		params.Rows = *rows
	}
	if *reqs > 0 {
		params.ReqPerTxn = *reqs
	}
	if *warehouses > 0 {
		params.Warehouses = *warehouses
	}
	if *mixName != "" {
		// Validated by the tpcc builder, which lists the valid mixes on
		// an unknown value.
		params.Mix = *mixName
	}
	if *subscribers > 0 {
		params.Subscribers = *subscribers
	}
	if *accounts > 0 {
		params.Accounts = *accounts
	}
	if *hot > 0 {
		params.HotAccounts = *hot
	}
	params.Partitioned = *part || *schemeName == "HSTORE"
	if params.MPParts < 2 {
		params.MPParts = 2
	}
	if *workload == "tpcc" {
		params.InsertsPerWorker = int(*measure/1000) + 1024
	}

	// The native auto-window adjustment above may have grown *measure, so
	// validate -interval against the final window.
	if flagGiven("interval") && *interval == 0 {
		fail(fmt.Errorf("abyss-sim: -interval must be a positive cycle count (omit the flag to disable sampling)"))
	}
	if *interval > *measure {
		fail(fmt.Errorf("abyss-sim: -interval must be in (0, measure=%d] cycles, got %d (a window shorter than one interval produces no samples)", *measure, *interval))
	}
	if *interval > 0 {
		if n := (*measure + *interval - 1) / *interval; n > abyss.MaxSampleIntervals {
			fail(fmt.Errorf("abyss-sim: -interval %d yields %d intervals over measure=%d; at most %d are allowed — use a coarser interval", *interval, n, *measure, abyss.MaxSampleIntervals))
		}
	}

	wl, err := db.BuildWorkload(*workload, params)
	if err != nil {
		fail(err)
	}
	scheme, err := abyss.NewScheme(*schemeName, abyss.WithTSMethod(method))
	if err != nil {
		fail(err)
	}
	arr, err := parseArrivals(*arrivals, *seed)
	if err != nil {
		fail(err)
	}
	fault, err := parseFaults(*faultSpec)
	if err != nil {
		fail(err)
	}
	rc := abyss.RunConfig{
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		AbortBackoff:  1000,
		SampleEvery:   *interval,
		Check:         *check,
		Arrivals:      arr,
		QueueDepth:    *qdepth,
		ShedTypes:     *shedTypes,
		Deadline:      *deadline,
		RetryLimit:    *retryLimit,
		BackoffCap:    *backoffCap,
		Fault:         fault,
	}

	rc.LogGroupTxns = *walGroup

	var res abyss.Result
	if *interval > 0 {
		samples, wait := db.RunStream(scheme, wl, rc)
		if streamSamples(samples, *measure, db) {
			// Interrupted: the workers were asked to drain; partial
			// results were printed. Exit non-zero so scripts can tell a
			// cut-short run from a completed one.
			os.Exit(cli.ExitInterrupted)
		}
		res, err = wait()
	} else {
		// A plain run drains gracefully on SIGINT too: the handler flips
		// the DB's stop flag, every worker finishes its current
		// transaction, and Run returns the partial window.
		stopSig, _ := cli.NotifyDrain(func(os.Signal) { db.Interrupt() }, os.Interrupt)
		res, err = db.Run(scheme, wl, rc)
		stopSig()
	}
	if err != nil {
		fail(err)
	}
	fmt.Println(res.String())
	if arr.Open() {
		printOverload(&res)
	}
	if *hist {
		printHistogram(&res)
	}
	if db.Interrupted() {
		fmt.Println("interrupted: partial window (results above cover the cycles served before the stop)")
		os.Exit(cli.ExitInterrupted)
	}

	if *check {
		rep, err := db.CheckSerializability()
		if err != nil {
			fail(err)
		}
		if !rep.OK() {
			fmt.Printf("serializability check: FAIL\n%s\n", rep)
			fmt.Printf("repro: abyss-sim -check -workload %s -scheme %s -runtime %s -cores %d -seed %d -warmup %d -measure %d\n",
				*workload, *schemeName, *runtimeSel, *cores, *seed, *warmup, *measure)
			os.Exit(1)
		}
		fmt.Printf("serializability check: PASS (%d txns, %d edges)\n", rep.Txns, rep.Edges)
	}

	if db.Durable() {
		if *doCkpt {
			if err := db.Checkpoint(); err != nil && *crashAfter < 0 {
				fail(fmt.Errorf("abyss-sim: checkpoint: %w", err))
			}
		}
		if err := db.CloseLog(); err != nil && *crashAfter < 0 {
			fail(fmt.Errorf("abyss-sim: closing log: %w", err))
		}
		records, bytes, syncs := db.LogStats()
		fmt.Printf("wal: %d records, %d bytes, %d syncs", records, bytes, syncs)
		if err := db.LogErr(); err != nil {
			fmt.Printf("  [log died: %v]", err)
		}
		fmt.Println()
	}
	if *dumpPath != "" {
		writeDump(*dumpPath, db.StateDump())
	}
	if *doRecover {
		stream := logStream(memSink, walPath)
		runRecovery(db, stream, *runtimeSel, *cores, *seed, *workload, params, *crashAfter >= 0)
	}
}

// streamSamples prints live per-interval lines until the channel closes
// or the user interrupts. On SIGINT it asks the run to drain (so the
// workers stop cleanly and the sample channel closes after the partial
// window), prints a partial summary, and reports true.
func streamSamples(samples <-chan abyss.Sample, measure uint64, db *abyss.DB) (interrupted bool) {
	stopSig, fired := cli.NotifyDrain(func(os.Signal) { db.Interrupt() }, os.Interrupt)
	defer stopSig()
	var (
		commits, aborts, cycles uint64
		lat                     abyss.Histogram
	)
	printLine := func(s abyss.Sample) {
		commits += s.Commits
		aborts += s.Aborts
		cycles = s.EndCycle
		lat.Merge(&s.Latency)
		fmt.Printf("[%*d/%d] %12.0f txn/s  abort %5.1f%%  p50 %6d  p99 %8d cyc\n",
			len(fmt.Sprint(measure)), s.EndCycle, measure,
			s.Throughput(), s.AbortFraction()*100, s.Latency.P50(), s.Latency.P99())
	}
	for s := range samples {
		printLine(s)
	}
	if !fired() {
		return false
	}
	total := commits + aborts
	abortPct := 0.0
	if total > 0 {
		abortPct = 100 * float64(aborts) / float64(total)
	}
	fmt.Printf("\ninterrupted at %d/%d cycles: %d commits, %d aborts (%.1f%%), p50 %d, p99 %d cyc (partial)\n",
		cycles, measure, commits, aborts, abortPct, lat.P50(), lat.P99())
	return true
}

// logStream returns the captured WAL bytes: the memory sink's buffer, or
// the log file's contents.
func logStream(memSink *abyss.MemLogSink, walPath string) []byte {
	if memSink != nil {
		return memSink.Bytes()
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		fail(fmt.Errorf("abyss-sim: reading log back: %w", err))
	}
	return data
}

// runRecovery replays stream onto a freshly built copy of the workload's
// database and verifies the recovered state: with an intact log it must
// equal the live DB's committed state exactly; with an injected crash the
// recovered state is the durable prefix (a mismatch with the live state
// is then expected, and only the replay itself must succeed).
func runRecovery(live *abyss.DB, stream []byte, runtimeSel string, cores int, seed int64, workload string, params abyss.WorkloadParams, crashed bool) {
	fresh, err := abyss.Open(abyss.Options{Runtime: runtimeSel, Cores: cores, Seed: seed})
	if err != nil {
		fail(err)
	}
	if _, err := fresh.BuildWorkload(workload, params); err != nil {
		fail(err)
	}
	info, err := fresh.Recover(stream)
	if err != nil {
		fail(fmt.Errorf("abyss-sim: recovery failed: %w", err))
	}
	fmt.Printf("recovered: %d records (%d torn bytes dropped), checkpoint %d, %d commits, %d updates, %d inserts\n",
		info.Records, info.TornBytes, info.Checkpoint, info.Commits, info.Updates, info.Inserts)
	if crashed {
		fmt.Println("recovery OK (crash injected: recovered the durable prefix)")
		return
	}
	if fresh.StateDump() != live.StateDump() {
		fail(fmt.Errorf("abyss-sim: recovered state DIVERGES from the live committed state"))
	}
	fmt.Println("recovery VERIFIED: recovered state equals the live committed state")
}

// writeDump writes the committed-state dump to path ('-' for stdout).
func writeDump(path, dump string) {
	if path == "-" {
		fmt.Print(dump)
		return
	}
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		fail(fmt.Errorf("abyss-sim: writing dump: %w", err))
	}
}

// printHistogram dumps the run's commit-latency histogram and, when the
// workload declares transaction types, the per-type sub-results.
func printHistogram(res *abyss.Result) {
	fmt.Printf("\ncommit latency (cycles): p50 %d  p95 %d  p99 %d  max %d  mean %.1f  (n=%d)\n",
		res.Latency.P50(), res.Latency.P95(), res.Latency.P99(),
		res.Latency.Max(), res.Latency.Mean(), res.Latency.Count())
	var peak uint64
	for i := 0; i < abyss.NumHistBuckets; i++ {
		if c := res.Latency.Bucket(i); c > peak {
			peak = c
		}
	}
	for i := 0; i < abyss.NumHistBuckets; i++ {
		c := res.Latency.Bucket(i)
		if c == 0 {
			continue
		}
		lo, hi := abyss.HistBucketBounds(i)
		bar := strings.Repeat("#", int(40*c/peak))
		fmt.Printf("  [%12d, %12d) %10d %s\n", lo, hi, c, bar)
	}
	if len(res.PerTxn) == 0 {
		return
	}
	fmt.Printf("\n%-18s %10s %10s %8s %8s %10s\n", "transaction", "commits", "aborts", "p50", "p99", "max")
	for i := range res.PerTxn {
		t := &res.PerTxn[i]
		fmt.Printf("%-18s %10d %10d %8d %8d %10d\n",
			t.Name, t.Commits, t.Aborts, t.Latency.P50(), t.Latency.P99(), t.Latency.Max())
	}
}

// parseArrivals parses the -arrivals flag: poisson:<tps> or
// mmpp:<calm_tps>:<burst_tps>[:<burst_cycles>:<calm_cycles>]. The empty
// string keeps the closed loop. The arrival stream reuses the run seed.
func parseArrivals(spec string, seed int64) (abyss.Arrivals, error) {
	if spec == "" {
		return abyss.Arrivals{}, nil
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "poisson":
		if len(parts) != 2 {
			return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals poisson:<tps>, got %q", spec)
		}
		tps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals rate %q: %v", parts[1], err)
		}
		return abyss.Arrivals{Process: abyss.ArrivalPoisson, RateTPS: tps, Seed: seed}, nil
	case "mmpp":
		if len(parts) != 3 && len(parts) != 5 {
			return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals mmpp:<calm_tps>:<burst_tps>[:<burst_cycles>:<calm_cycles>], got %q", spec)
		}
		calm, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals calm rate %q: %v", parts[1], err)
		}
		burst, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals burst rate %q: %v", parts[2], err)
		}
		// Default dwell times: bursts one tenth as long as calm stretches.
		burstCyc, calmCyc := uint64(50_000), uint64(500_000)
		if len(parts) == 5 {
			if burstCyc, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
				return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals burst dwell %q: %v", parts[3], err)
			}
			if calmCyc, err = strconv.ParseUint(parts[4], 10, 64); err != nil {
				return abyss.Arrivals{}, fmt.Errorf("abyss-sim: -arrivals calm dwell %q: %v", parts[4], err)
			}
		}
		return abyss.Arrivals{
			Process: abyss.ArrivalMMPP, RateTPS: calm, BurstRateTPS: burst,
			BurstCycles: burstCyc, CalmCycles: calmCyc, Seed: seed,
		}, nil
	default:
		return abyss.Arrivals{}, fmt.Errorf("abyss-sim: unknown arrival process %q (poisson or mmpp)", parts[0])
	}
}

// parseFaults parses the -fault flag: comma-separated injector specs,
// composed with ComposeFaults when more than one is given.
func parseFaults(spec string) (abyss.FaultInjector, error) {
	if spec == "" {
		return nil, nil
	}
	var faults []abyss.FaultInjector
	for _, one := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(one), ":")
		nums := make([]uint64, 0, len(parts)-1)
		for _, p := range parts[1:] {
			n, err := strconv.ParseUint(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("abyss-sim: -fault %q: bad number %q", one, p)
			}
			nums = append(nums, n)
		}
		switch parts[0] {
		case "stall":
			if len(nums) != 3 {
				return nil, fmt.Errorf("abyss-sim: -fault stall:<worker>:<from>:<until>, got %q", one)
			}
			faults = append(faults, abyss.StalledWorkerFault(int(nums[0]), nums[1], nums[2]))
		case "slowpart":
			if len(nums) != 3 && len(nums) != 5 {
				return nil, fmt.Errorf("abyss-sim: -fault slowpart:<first>:<count>:<extra>[:<from>:<until>], got %q", one)
			}
			var from, until uint64
			if len(nums) == 5 {
				from, until = nums[3], nums[4]
			}
			faults = append(faults, abyss.SlowPartitionFault(int(nums[0]), int(nums[1]), nums[2], from, until))
		case "spike":
			if len(nums) != 2 {
				return nil, fmt.Errorf("abyss-sim: -fault spike:<period>:<duration>, got %q", one)
			}
			faults = append(faults, abyss.LatencySpikeFault(nums[0], nums[1]))
		default:
			return nil, fmt.Errorf("abyss-sim: unknown fault %q (stall, slowpart or spike)", parts[0])
		}
	}
	if len(faults) == 1 {
		return faults[0], nil
	}
	return abyss.ComposeFaults(faults...), nil
}

// printOverload summarizes an open-loop run's overload accounting:
// offered vs goodput, shed and deadlined counts, and the admission-queue
// depth distribution.
func printOverload(res *abyss.Result) {
	fmt.Printf("overload: offered %.0f txn/s  goodput %.0f txn/s  shed %d (%.1f%%)  deadlined %d  qdepth p50 %d max %d\n",
		res.OfferedTPS(), res.GoodputTPS(), res.Shed, res.ShedFraction()*100,
		res.Deadlined, res.QueueDepth.P50(), res.QueueDepth.Max())
}

// flagGiven reports whether the named flag was set on the command line.
func flagGiven(name string) bool {
	given := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			given = true
		}
	})
	return given
}

// applyPct overrides *dst with v when the flag was given (v >= 0),
// rejecting values outside [0, 1].
func applyPct(dst *float64, v float64, flagName string) error {
	if v < 0 {
		return nil
	}
	if v > 1 {
		return fmt.Errorf("abyss-sim: %s must be in [0, 1], got %g", flagName, v)
	}
	*dst = v
	return nil
}

func printLists() {
	fmt.Println("schemes:")
	for _, info := range abyss.SchemeInfos() {
		fmt.Printf("  -scheme %-12s %s\n", info.Name, info.Desc)
	}
	fmt.Println("workloads:")
	for _, info := range abyss.WorkloadInfos() {
		fmt.Printf("  -workload %-10s %s\n", info.Name, info.Desc)
	}
	fmt.Printf("timestamp methods:\n  -ts %s\n", strings.Join(abyss.TSMethodNames(), "|"))
	fmt.Printf("runtimes:\n  -runtime %s\n", strings.Join(abyss.Runtimes(), "|"))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
