// Command abyss-sim runs a single workload configuration on the many-core
// simulator (or natively) and prints throughput, abort rate and the
// six-component time breakdown.
//
// Examples:
//
//	abyss-sim -scheme NO_WAIT -cores 64 -theta 0.8
//	abyss-sim -scheme MVCC -cores 256 -readpct 0.9
//	abyss-sim -workload tpcc -scheme HSTORE -cores 64 -warehouses 64
//	abyss-sim -scheme DL_DETECT -runtime native -cores 8
package main

import (
	"flag"
	"fmt"
	"os"

	"abyss1000/internal/bench"
	"abyss1000/internal/core"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

func main() {
	var (
		schemeName = flag.String("scheme", "NO_WAIT", "DL_DETECT|NO_WAIT|WAIT_DIE|TIMESTAMP|MVCC|OCC|HSTORE")
		workload   = flag.String("workload", "ycsb", "ycsb|tpcc")
		runtimeSel = flag.String("runtime", "sim", "sim|native")
		cores      = flag.Int("cores", 64, "logical cores / worker threads")
		seed       = flag.Int64("seed", 42, "determinism seed")
		tsMethod   = flag.String("ts", "atomic", "mutex|atomic|batch8|batch16|clock|hw")

		// YCSB knobs.
		rows    = flag.Int("rows", 65536, "YCSB table size")
		theta   = flag.Float64("theta", 0.6, "YCSB zipf skew")
		readPct = flag.Float64("readpct", 0.5, "fraction of reads")
		reqs    = flag.Int("reqs", 16, "accesses per transaction")
		part    = flag.Bool("partitioned", false, "partitioned YCSB (needed for HSTORE)")
		mpFrac  = flag.Float64("mp", 0.0, "multi-partition txn fraction")

		// TPC-C knobs.
		warehouses = flag.Int("warehouses", 4, "TPC-C warehouses")
		payPct     = flag.Float64("paypct", 0.5, "fraction of Payment txns")

		warmup  = flag.Uint64("warmup", 300_000, "warmup cycles (ns if native)")
		measure = flag.Uint64("measure", 1_500_000, "measurement cycles (ns if native)")
	)
	flag.Parse()

	method, err := tsalloc.ParseMethod(*tsMethod)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var rtm rt.Runtime
	switch *runtimeSel {
	case "sim":
		rtm = sim.New(*cores, *seed)
	case "native":
		rtm = native.New(*cores, *seed)
		if *measure < 10_000_000 {
			*warmup, *measure = 5_000_000, 50_000_000 // sensible wall-clock window
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown runtime %q\n", *runtimeSel)
		os.Exit(2)
	}

	db := core.NewDB(rtm)
	var wl core.Workload
	switch *workload {
	case "ycsb":
		cfg := ycsb.DefaultConfig()
		cfg.Rows = *rows
		cfg.Theta = *theta
		cfg.ReadPct = *readPct
		cfg.ReqPerTxn = *reqs
		cfg.Partitioned = *part || *schemeName == "HSTORE"
		cfg.MPFraction = *mpFrac
		cfg.MPParts = 2
		wl = ycsb.Build(db, cfg)
	case "tpcc":
		cfg := tpcc.DefaultConfig(*warehouses)
		cfg.PaymentPct = *payPct
		cfg.InsertsPerWorker = int(*measure/1000) + 1024
		wl = tpcc.Build(db, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	scheme := bench.MakeScheme(*schemeName, method)
	res := core.Run(db, scheme, wl, core.Config{
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		AbortBackoff:  1000,
	})
	fmt.Println(res.String())
}
