// Command abyss-load is the remote load generator: it drives an
// abyss-serve front door over the wire with open-loop Poisson or MMPP
// arrivals across N connections, and reports offered-vs-goodput plus
// wire-latency percentiles. Open loop means arrivals do not wait for
// replies, so the server can be pushed past its knee: past saturation the
// report shows goodput flattening while shed_server grows.
//
// The summary line's key=value fields are stable API for scripts:
//
//	offered= sent= committed= user_aborts= deadlined= shed_server=
//	shed_client= rejected= closed= errors= elapsed_s= offered_tps=
//	goodput_tps= wire_p50_us= wire_p99_us=
//
// Examples:
//
//	abyss-load -addr 127.0.0.1:9090 -arrivals poisson:20000 -duration 5s
//	abyss-load -addr 127.0.0.1:8080 -proto http -conns 4 -arrivals poisson:2000
//	abyss-load -addr 127.0.0.1:9090 -arrivals mmpp:5000:50000:200ms:50ms -deadline 10ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"abyss1000/serve/client"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9090", "server address")
		proto      = flag.String("proto", "binary", "transport: binary|http")
		conns      = flag.Int("conns", 8, "connection count (arrival rate splits evenly)")
		window     = flag.Int("window", 0, "per-connection client window; arrivals past it are shed_client (0 = default)")
		arrivals   = flag.String("arrivals", "poisson:10000", "offered load: poisson:RATE or mmpp:CALMRATE:BURSTRATE:CALMDWELL:BURSTDWELL")
		duration   = flag.Duration("duration", 5e9, "how long to offer arrivals")
		proc       = flag.String("proc", "", "procedure to invoke (empty = anonymous workload draw)")
		args       = flag.String("args", "", "comma-separated int64 procedure arguments")
		partitions = flag.Int("partitions", 0, "route round-robin across this many partitions (0 = unrouted)")
		deadline   = flag.Duration("deadline", 0, "per-request deadline (0 = server default)")
		seed       = flag.Int64("seed", 42, "arrival-stream seed")
	)
	flag.Parse()

	spec, err := client.ParseArrivalSpec(*arrivals)
	if err != nil {
		fail(err)
	}
	var argv []int64
	if *args != "" {
		for _, f := range strings.Split(*args, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fail(fmt.Errorf("bad -args: %w", err))
			}
			argv = append(argv, v)
		}
	}

	rep, err := client.Run(client.LoadConfig{
		Addr:       *addr,
		Proto:      *proto,
		Conns:      *conns,
		Window:     *window,
		Arrival:    spec,
		Duration:   *duration,
		Proc:       *proc,
		Args:       argv,
		Partitions: *partitions,
		Deadline:   *deadline,
		Seed:       *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(rep.Summary())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "abyss-load:", err)
	os.Exit(1)
}
