package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSweepSIGINT pins graceful interruption of a bench sweep: SIGINT
// mid-run stops dispatching data points, the partial figures still render
// (with a note on stderr), and the process exits 130.
func TestSweepSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs a multi-second sweep")
	}
	bin := filepath.Join(t.TempDir(), "abyss-bench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building abyss-bench: %v\n%s", err, out)
	}
	// -all at full scale takes minutes — the signal always lands mid-run.
	cmd := exec.Command(bin, "-all", "-full", "-quiet")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit code 130, got err=%v\nstderr:\n%s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code = %d, want 130\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("missing interruption note on stderr:\n%s", stderr.String())
	}
	// The partial figures were still rendered on stdout.
	if !strings.Contains(stdout.String(), "== Fig") {
		t.Fatalf("missing partial figure output:\n%s", stdout.String())
	}
}
