// Command abyss-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	abyss-bench -fig 6              # one experiment, quick scale
//	abyss-bench -fig 9 -full       # one experiment at 1024 cores
//	abyss-bench -all                # the whole evaluation, quick scale
//	abyss-bench -table 2            # the bottleneck-summary table
//	abyss-bench -list               # enumerate experiments
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abyss1000/internal/bench"
)

func main() {
	var (
		figID   = flag.String("fig", "", "experiment id to run (3-17, malloc)")
		tableID = flag.Int("table", 0, "print table N (1 or 2)")
		all     = flag.Bool("all", false, "run every experiment")
		full    = flag.Bool("full", false, "paper scale (1024 cores); default is quick scale")
		list    = flag.Bool("list", false, "list experiments")
		seed    = flag.Int64("seed", 42, "determinism seed")
		cores   = flag.Int("maxcores", 0, "override the top of the core ladder")
	)
	flag.Parse()

	params := bench.Quick()
	if *full {
		params = bench.Full()
	}
	params.Seed = *seed
	if *cores > 0 {
		params.MaxCores = *cores
	}

	switch {
	case *list:
		for _, e := range bench.Registry {
			fmt.Printf("  -fig %-7s %s\n", e.ID, e.Desc)
		}
		return
	case *tableID == 1:
		fmt.Print(table1)
		return
	case *tableID == 2:
		fmt.Print(bench.Table2(params))
		return
	case *all:
		for _, e := range bench.Registry {
			runOne(e.ID, e.Run, params)
		}
		fmt.Print(bench.Table2(params))
		return
	case *figID != "":
		run, err := bench.Lookup(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runOne(*figID, run, params)
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, run bench.FigureFunc, params bench.Params) {
	start := time.Now()
	fig := run(params)
	fmt.Print(fig.Format())
	fmt.Printf("   [experiment %s took %v at max %d cores]\n\n", id, time.Since(start).Round(time.Millisecond), params.MaxCores)
}

const table1 = `== Table 1: Concurrency control schemes ==
 2PL  DL_DETECT   2PL with deadlock detection
      NO_WAIT     2PL with non-waiting deadlock prevention
      WAIT_DIE    2PL with wait-and-die deadlock prevention
 T/O  TIMESTAMP   Basic T/O algorithm
      MVCC        Multi-version T/O
      OCC         Optimistic concurrency control
      HSTORE      T/O with partition-level locking
`
