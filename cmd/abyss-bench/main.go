// Command abyss-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	abyss-bench -fig 6                  # one experiment, quick scale
//	abyss-bench -fig 9 -full            # one experiment at 1024 cores
//	abyss-bench -all                    # the whole evaluation, quick scale
//	abyss-bench -all -json > run.json   # ... as machine-readable JSON
//	abyss-bench -fig 11 -csv > f11.csv  # one experiment, flat CSV points
//	abyss-bench -table 2                # the bottleneck-summary table
//	abyss-bench -list                   # enumerate experiments
//	abyss-bench -fig 6 -cpuprofile cpu.out -memprofile mem.out
//	                                    # ... with pprof profiles of the run
//
// Data points execute on a worker pool (-parallel, default GOMAXPROCS);
// progress and timing go to stderr, results to stdout. Every run is
// deterministic for a given -seed: -parallel 1 and -parallel N produce
// byte-identical figure text, JSON and CSV. -json emits every point's
// full core.Result (commits, aborts, tuples, six-component cycle
// breakdown) plus run metadata; -csv flattens the same points into one
// row each. EXPERIMENTS.md documents what every experiment reproduces
// and the exact command for each.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (inspect with `go tool pprof`), so hot-path hunts start
// from measurement instead of guesswork; the heap profile is written at
// exit after a final GC, capturing live retention rather than churn.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"abyss1000/abyss"
	"abyss1000/bench"
	"abyss1000/cmd/internal/cli"
)

func main() {
	var (
		figID    = flag.String("fig", "", fmt.Sprintf("experiment id to run (one of: %s)", strings.Join(bench.IDs(), ", ")))
		tableID  = flag.Int("table", 0, "print table N (1 or 2)")
		all      = flag.Bool("all", false, "run every experiment")
		full     = flag.Bool("full", false, "paper scale (1024 cores); default is quick scale")
		list     = flag.Bool("list", false, "list experiments")
		seed     = flag.Int64("seed", 42, "determinism seed")
		cores    = flag.Int("maxcores", 0, "override the top of the core ladder")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for data points; 1 = serial")
		jsonOut  = flag.Bool("json", false, "emit the run as JSON on stdout (suppresses figure text)")
		csvOut   = flag.Bool("csv", false, "emit every data point as a CSV row on stdout (suppresses figure text)")
		quiet    = flag.Bool("quiet", false, "suppress progress reporting on stderr")
		sample   = flag.Uint64("sample", 0, "run every data point with interval sampling enabled at this cycle period (accounting-only: output is byte-identical to an unsampled run; 0 disables)")
		logAcc   = flag.Bool("log", false, "attach an accounting-only write-ahead log to every data point: throughput/abort series stay byte-identical to an unlogged run (the schedule is unchanged); breakdown tables gain the Log component's share")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to `file`")
		memProf  = flag.String("memprofile", "", "write a heap profile to `file` at exit")
	)
	flag.Parse()

	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "abyss-bench: -json and -csv are mutually exclusive")
		os.Exit(2)
	}
	if (*jsonOut || *csvOut) && (*list || *tableID != 0) {
		fmt.Fprintln(os.Stderr, "abyss-bench: -json/-csv apply to experiment runs (-fig, -all), not -list/-table")
		os.Exit(2)
	}

	params := bench.Quick()
	scale := "quick"
	if *full {
		params = bench.Full()
		scale = "full"
	}
	params.Seed = *seed
	params.LogAccounting = *logAcc
	if *cores > 0 {
		params.MaxCores = *cores
		scale = "custom"
	}
	if *sample > 0 {
		// The sampler preallocates per-interval state; reject periods
		// that would explode against the widest window of this scale
		// (native Fig. 3 windows are wall-clock nanoseconds).
		widest := params.MeasureCycles
		if params.NativeMeasureNS > widest {
			widest = params.NativeMeasureNS
		}
		if n := (widest + *sample - 1) / *sample; n > abyss.MaxSampleIntervals {
			fmt.Fprintf(os.Stderr, "abyss-bench: -sample %d yields %d intervals over the %d-cycle window; at most %d are allowed — use a coarser period\n",
				*sample, n, widest, abyss.MaxSampleIntervals)
			os.Exit(2)
		}
	}

	switch {
	case *list:
		for _, e := range bench.Registry {
			fmt.Printf("  -fig %-15s %s\n", e.ID, e.Desc)
		}
		return
	case *tableID == 1:
		fmt.Print(table1)
		return
	case *tableID == 2:
		fmt.Print(bench.Table2(params))
		return
	case *all || *figID != "":
		var experiments []bench.Experiment
		if *all {
			experiments = bench.Registry
		} else {
			e, err := bench.Lookup(*figID)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			experiments = []bench.Experiment{e}
		}
		// Profiling starts only now, with every flag validated, and is
		// stopped explicitly before any exit, so a usage error or a
		// failed run can never leave a truncated profile behind.
		stopProfiles, err := startProfiles(*cpuProf, *memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abyss-bench:", err)
			os.Exit(1)
		}
		interrupted, err := runExperiments(experiments, params, scale, *parallel, *sample, *jsonOut, *csvOut, *quiet, *all)
		stopProfiles()
		if err != nil {
			fmt.Fprintln(os.Stderr, "abyss-bench:", err)
			os.Exit(1)
		}
		if interrupted {
			os.Exit(cli.ExitInterrupted)
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// startProfiles begins CPU profiling if requested and returns a function
// that finishes both requested profiles: it stops the CPU profile first,
// then writes a post-GC heap snapshot (live retention, not churn).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "abyss-bench: creating heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "abyss-bench: writing heap profile:", err)
			}
		}
	}, nil
}

// runExperiments executes the selected experiments on the worker pool and
// writes the requested output format to stdout. A SIGINT mid-sweep stops
// dispatching data points: in-flight points drain, the figures (with the
// remaining points zeroed) are still rendered, and the caller exits 130.
func runExperiments(experiments []bench.Experiment, params bench.Params, scale string, parallel int, sample uint64, jsonOut, csvOut, quiet, withTable2 bool) (interrupted bool, err error) {
	var stop atomic.Bool
	runner := &bench.Runner{Workers: parallel, SampleEvery: sample, Stop: &stop}
	if !quiet {
		runner.OnProgress = progressPrinter()
	}
	stopSig, _ := cli.NotifyDrain(func(os.Signal) {
		stop.Store(true)
		fmt.Fprintln(os.Stderr, "\nabyss-bench: interrupt — draining in-flight points, remaining points will be zero")
	}, os.Interrupt)

	start := time.Now()
	figs := bench.BuildAll(experiments, params, runner)
	stopSig()
	if !quiet {
		fmt.Fprintf(os.Stderr, "\r%-78s\r[%d experiments in %v, %d workers, max %d cores]\n",
			"", len(experiments), time.Since(start).Round(time.Millisecond), runner.Workers, params.MaxCores)
	}

	meta := bench.RunMeta{Paper: "Staring into the Abyss (VLDB 2014)", Scale: scale, Params: params}
	rep := bench.NewReport(meta, experiments, figs)
	if withTable2 {
		rep.Table2 = bench.Table2(params)
	}

	switch {
	case jsonOut:
		b, err := rep.JSON()
		if err != nil {
			return false, fmt.Errorf("encoding JSON: %w", err)
		}
		os.Stdout.Write(b)
	case csvOut:
		fmt.Print(rep.CSV())
	default:
		for _, fig := range figs {
			fmt.Print(fig.Format())
			fmt.Println()
		}
		if withTable2 {
			fmt.Print(rep.Table2)
		}
	}
	if stop.Load() {
		fmt.Fprintln(os.Stderr, "abyss-bench: interrupted — the output above is partial (undispatched points are zero)")
		return true, nil
	}
	return false, nil
}

// progressPrinter renders N/M + ETA progress lines in place on stderr.
func progressPrinter() func(bench.Progress) {
	return func(pr bench.Progress) {
		line := fmt.Sprintf("[%d/%d] %s  elapsed %v", pr.Done, pr.Total, pr.Last.Label(), pr.Elapsed.Round(time.Second))
		if pr.Remaining > 0 {
			line += fmt.Sprintf("  eta %v", pr.Remaining.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "\r%-78s", line)
	}
}

const table1 = `== Table 1: Concurrency control schemes ==
 2PL  DL_DETECT   2PL with deadlock detection
      NO_WAIT     2PL with non-waiting deadlock prevention
      WAIT_DIE    2PL with wait-and-die deadlock prevention
 T/O  TIMESTAMP   Basic T/O algorithm
      MVCC        Multi-version T/O
      OCC         Optimistic concurrency control
      HSTORE      T/O with partition-level locking
`
