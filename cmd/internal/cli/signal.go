// Package cli holds small helpers shared by the abyss command-line
// binaries. It lives under cmd/internal so only the commands can import
// it; the public abyss API stays in the abyss package.
package cli

import (
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
)

// ExitInterrupted is the exit code (128 + SIGINT) the binaries share for
// a run cut short by an interrupt: partial results were printed, but
// scripts can tell the run did not complete.
const ExitInterrupted = 130

// NotifyDrain installs the drain-on-signal handler every binary shares:
// the first signal in sigs runs drain on its own goroutine (flip a stop
// flag, interrupt the DB, shut a server down — the drain owns the
// semantics); later signals are ignored while the drain completes, so a
// second Ctrl-C does not kill a half-drained process.
//
// The returned stop releases the handler (idempotent; call it once the
// guarded region ends so later signals get default handling again);
// fired reports whether a signal arrived.
func NotifyDrain(drain func(os.Signal), sigs ...os.Signal) (stop func(), fired func() bool) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	var hit atomic.Bool
	done := make(chan struct{})
	go func() {
		select {
		case s := <-ch:
			hit.Store(true)
			drain(s)
		case <-done:
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
	return stop, hit.Load
}
