// Command goldencheck prints the complete deterministic signature of a small
// YCSB and TPC-C mix on the simulator: commits, aborts, tuples and every raw
// breakdown bucket. Engine rewrites must not change a byte of its output for
// a given seed; determinism_test.go pins it against testdata/golden_sim.txt.
//
// Regenerate the pinned file after an intentional timing-model change:
//
//	go run ./cmd/goldencheck > testdata/golden_sim.txt
package main

import (
	"fmt"

	"abyss1000/bench"
)

func main() {
	fmt.Print(bench.GoldenSignature())
}
