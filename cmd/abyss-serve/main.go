// Command abyss-serve is the networked front door: it opens the engine on
// the native runtime, starts a serving session, and exposes stored-
// procedure invocation over HTTP/1.1 JSON and the compact binary TCP
// protocol, with wire-level backpressure on top of the engine's admission
// machinery (per-connection windows, bounded per-worker queues, request
// deadlines).
//
// On SIGTERM or SIGINT it drains gracefully: stops accepting, refuses new
// requests, finishes everything admitted, flushes the WAL if durability
// is on, prints the serving summary, and exits 0.
//
// Examples:
//
//	abyss-serve -scheme NO_WAIT -cores 8
//	abyss-serve -scheme HSTORE -cores 4 -qdepth 256 -deadline 5ms
//	abyss-serve -scheme MVCC -cores 8 -wal /tmp/abyss.wal -wal-group 64
package main

import (
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"

	"abyss1000/abyss"
	"abyss1000/cmd/internal/cli"
	"abyss1000/serve"

	// Register the chaos fuzz workload and the SmallBank extension.
	_ "abyss1000/workloads/chaos"
	_ "abyss1000/workloads/smallbank"
)

func main() {
	var (
		httpAddr   = flag.String("http", "127.0.0.1:8080", "HTTP listen address (empty disables)")
		tcpAddr    = flag.String("tcp", "127.0.0.1:9090", "binary-protocol listen address (empty disables)")
		schemeName = flag.String("scheme", "NO_WAIT", "concurrency-control scheme")
		workload   = flag.String("workload", "ycsb", "workload backing anonymous draws and named procedures")
		cores      = flag.Int("cores", 4, "native worker threads (= routable partitions)")
		seed       = flag.Int64("seed", 42, "determinism seed")

		// Workload knobs (zero/negative keeps the registry default).
		rows    = flag.Int("rows", 0, "YCSB table size")
		theta   = flag.Float64("theta", -1, "YCSB zipf skew, in [0, 1)")
		readPct = flag.Float64("readpct", -1, "fraction of reads, in [0, 1]")
		part    = flag.Bool("partitioned", false, "partitioned YCSB layout (forced under HSTORE)")

		// Admission knobs.
		qdepth   = flag.Int("qdepth", 0, "per-worker admission queue depth (0 = default)")
		deadline = flag.Duration("deadline", 0, "default per-request deadline (0 = none; clients override per request)")
		retry    = flag.Int("retry", 0, "abandon a request after this many failed attempts (0 = unlimited)")
		backoff  = flag.Duration("backoff", 0, "mean randomized restart penalty after an abort (0 = none)")
		bcap     = flag.Duration("backoff-cap", 0, "cap for exponential abort backoff (0 = fixed mean)")
		window   = flag.Int("window", 0, "per-connection inflight window (0 = default)")

		// Durability knobs.
		walPath  = flag.String("wal", "", "write-ahead log file (empty disables durability)")
		walGroup = flag.Int("wal-group", 0, "group-commit size in records per fsync (0 = default)")
	)
	flag.Parse()

	var dur *abyss.Durability
	if *walPath != "" {
		sink, err := abyss.CreateLogFile(*walPath)
		if err != nil {
			fail(err)
		}
		dur = &abyss.Durability{Sink: sink, Async: true}
	}

	var params *abyss.WorkloadParams
	if *rows > 0 || *theta >= 0 || *readPct >= 0 || *part {
		p, err := abyss.DefaultWorkloadParams(*workload)
		if err != nil {
			fail(err)
		}
		if *rows > 0 {
			p.Rows = *rows
		}
		if *theta >= 0 {
			p.Theta = *theta
		}
		if *readPct >= 0 {
			p.ReadPct = *readPct
		}
		if *part {
			p.Partitioned = true
		}
		params = &p
	}

	srv, err := serve.New(serve.Config{
		Scheme:   *schemeName,
		Workload: *workload,
		Params:   params,
		Cores:    *cores,
		Seed:     *seed,
		Session: abyss.ServeConfig{
			QueueDepth:   *qdepth,
			Deadline:     *deadline,
			RetryLimit:   *retry,
			AbortBackoff: *backoff,
			BackoffCap:   *bcap,
			LogGroupTxns: *walGroup,
		},
		Window:     *window,
		Durability: dur,
	})
	if err != nil {
		fail(err)
	}
	if err := srv.Start(*httpAddr, *tcpAddr); err != nil {
		fail(err)
	}
	if a := srv.HTTPAddr(); a != "" {
		fmt.Printf("abyss-serve: http on %s\n", a)
	}
	if a := srv.TCPAddr(); a != "" {
		fmt.Printf("abyss-serve: binary on %s\n", a)
	}
	fmt.Printf("abyss-serve: scheme %s, workload %s, %d cores, window %d — SIGTERM drains\n",
		*schemeName, *workload, *cores, serveWindow(*window))

	// Block until the drain completes: the signal handler shuts the
	// server down (graceful drain, WAL flush) and drained tells main the
	// final Result is ready. Graceful drain is the intended exit, so
	// SIGTERM/SIGINT exit 0 here — unlike the measurement binaries,
	// where an interrupt truncates the run and exits 130.
	drained := make(chan struct{})
	var (
		res      abyss.Result
		drainErr error
	)
	stopSig, _ := cli.NotifyDrain(func(s os.Signal) {
		fmt.Fprintf(os.Stderr, "abyss-serve: %v — draining\n", s)
		res, drainErr = srv.Shutdown()
		close(drained)
	}, syscall.SIGTERM, os.Interrupt)
	<-drained
	stopSig()
	if drainErr != nil {
		fail(drainErr)
	}

	fmt.Printf("served offered=%d commits=%d shed=%d deadlined=%d span=%s goodput_tps=%.1f\n",
		res.Offered, res.Commits, res.Shed, res.Deadlined,
		time.Duration(res.MeasureCycles), res.GoodputTPS())
}

func serveWindow(w int) int {
	if w == 0 {
		return serve.DefaultWindow
	}
	return w
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "abyss-serve:", err)
	os.Exit(1)
}
