package bench

import (
	"fmt"

	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
)

// schemesAcrossLadder sweeps every tuple-level scheme across the core
// ladder for one YCSB config, capturing the breakdown at breakdownCores.
func (p Params) schemesAcrossLadder(pl *Plan, readPct, theta float64, breakdownCores int, bdTitle string) *Figure {
	ycfg := p.ycsbBase()
	ycfg.ReadPct = readPct
	ycfg.Theta = theta

	fig := &Figure{XLabel: "cores", YLabel: "Mtxn/s"}
	at := map[string]core.Result{}
	for _, name := range SchemeNames {
		s := Series{Name: name}
		for _, c := range p.Ladder() {
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, c, ycfg))
			s.addPoint(float64(c), r, throughputM)
			if c == breakdownCores {
				at[name] = r
			}
		}
		fig.Series = append(fig.Series, s)
	}
	if len(at) > 0 {
		fig.Breakdowns = append(fig.Breakdowns, Breakdown{
			Title: bdTitle,
			Rows:  breakdownRows(at, SchemeNames),
		})
	}
	return fig
}

// capCores clamps a paper core count to this run's ladder top.
func (p Params) capCores(want int) int {
	if want > p.MaxCores {
		return p.MaxCores
	}
	return want
}

// Fig8 reproduces "Read-only Workload": uniform accesses, 16 reads per
// transaction. T/O schemes flatline on timestamp allocation; TIMESTAMP
// and OCC additionally pay for read copies.
func Fig8(p Params, pl *Plan) *Figure {
	bd := p.MaxCores
	fig := p.schemesAcrossLadder(pl, 1.0, 0, bd, fmt.Sprintf("(b) runtime breakdown @ %d cores", bd))
	fig.ID = "Fig 8"
	fig.Title = "Read-only YCSB (uniform)"
	return fig
}

// Fig9 reproduces "Write-Intensive Workload (Medium Contention)".
func Fig9(p Params, pl *Plan) *Figure {
	bd := p.capCores(512)
	fig := p.schemesAcrossLadder(pl, 0.5, 0.6, bd, fmt.Sprintf("(b) runtime breakdown @ %d cores", bd))
	fig.ID = "Fig 9"
	fig.Title = "Write-intensive YCSB, medium contention (theta=0.6)"
	return fig
}

// Fig10 reproduces "Write-Intensive Workload (High Contention)".
func Fig10(p Params, pl *Plan) *Figure {
	bd := p.capCores(64)
	fig := p.schemesAcrossLadder(pl, 0.5, 0.8, bd, fmt.Sprintf("(b) runtime breakdown @ %d cores", bd))
	fig.ID = "Fig 10"
	fig.Title = "Write-intensive YCSB, high contention (theta=0.8)"
	return fig
}

// Fig11 reproduces "Write-Intensive Workload (Variable Contention)": the
// theta sweep at 64 cores. Throughput collapses past theta ~0.6-0.8 for
// every scheme.
func Fig11(p Params, pl *Plan) *Figure {
	cores := p.capCores(64)
	fig := &Figure{
		ID:     "Fig 11",
		Title:  fmt.Sprintf("Write-intensive YCSB, variable contention (%d cores)", cores),
		XLabel: "theta",
		YLabel: "Mtxn/s",
	}
	thetas := []float64{0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	for _, name := range SchemeNames {
		s := Series{Name: name}
		for _, theta := range thetas {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = theta
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, cores, ycfg))
			s.addPoint(theta, r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig12 reproduces "Working Set Size": tuples accessed per second as the
// per-transaction footprint grows from 1 to 16, at 512 cores, medium
// skew. Short transactions expose the timestamp-allocation bottleneck;
// long ones amortize it.
func Fig12(p Params, pl *Plan) *Figure {
	cores := p.capCores(512)
	fig := &Figure{
		ID:     "Fig 12",
		Title:  fmt.Sprintf("Working Set Size (theta=0.6, %d cores)", cores),
		XLabel: "rows/txn",
		YLabel: "Mtuple/s",
	}
	lengths := []int{1, 2, 4, 8, 12, 16}
	at := map[string]core.Result{}
	for _, name := range SchemeNames {
		s := Series{Name: name}
		for _, n := range lengths {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = 0.6
			ycfg.ReqPerTxn = n
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, cores, ycfg))
			s.addPoint(float64(n), r, func(r core.Result) float64 { return r.TuplesPerSec() / 1e6 })
			if n == 1 {
				at[name] = r
			}
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Breakdowns = append(fig.Breakdowns, Breakdown{
		Title: "(b) runtime breakdown @ 1 row/txn",
		Rows:  breakdownRows(at, SchemeNames),
	})
	return fig
}

// Fig13 reproduces "Read/Write Mixture": the read-percentage sweep under
// high skew at 64 cores. MVCC's non-blocking reads dominate once the mix
// is read-heavy but not read-only.
func Fig13(p Params, pl *Plan) *Figure {
	cores := p.capCores(64)
	fig := &Figure{
		ID:     "Fig 13",
		Title:  fmt.Sprintf("Read/Write Mixture (theta=0.8, %d cores)", cores),
		XLabel: "read-fraction",
		YLabel: "Mtxn/s",
	}
	mixes := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}
	for _, name := range SchemeNames {
		s := Series{Name: name}
		for _, mix := range mixes {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = mix
			ycfg.Theta = 0.8
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, cores, ycfg))
			s.addPoint(mix, r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
