package bench

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
)

// TestKneeExperiment smoke-runs the overload-knee extension at tiny scale
// and checks its defining shape: below the knee nearly everything offered
// commits; far past it admission control sheds and goodput stays well
// under the offered load.
func TestKneeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~40 small open-loop simulations")
	}
	p := tinyParams()
	e, err := Lookup("knee")
	if err != nil {
		t.Fatal(err)
	}
	fig := e.Build(p, nil)
	// Goodput series first, then two latency series per scheme.
	if want := len(SchemeNames) * (1 + len(kneeLatencySuffixes)); len(fig.Series) != want {
		t.Fatalf("knee has %d series, want %d", len(fig.Series), want)
	}
	for _, s := range fig.Series[:len(SchemeNames)] {
		if len(s.Points) != len(kneeOffered) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(kneeOffered))
		}
		lo, hi := s.Points[0].Res, s.Points[len(s.Points)-1].Res
		if lo.Offered == 0 || hi.Offered == 0 {
			t.Fatalf("series %s offered nothing: lo %+v hi %+v", s.Name, lo, hi)
		}
		if f := lo.ShedFraction(); f > 0.1 {
			t.Errorf("series %s sheds %.0f%% at the bottom of the ladder", s.Name, f*100)
		}
		if hi.Shed == 0 {
			t.Errorf("series %s sheds nothing at %.0f offered txn/s", s.Name, kneeOffered[len(kneeOffered)-1])
		}
		if hi.GoodputTPS() >= kneeOffered[len(kneeOffered)-1]/2 {
			t.Errorf("series %s goodput %.0f did not fall below half the offered %.0f",
				s.Name, hi.GoodputTPS(), kneeOffered[len(kneeOffered)-1])
		}
		if hi.QueueDepth.Max() > kneeQueueDepth {
			t.Errorf("series %s queue depth %d exceeds the %d bound", s.Name, hi.QueueDepth.Max(), kneeQueueDepth)
		}
	}
	// The latency series reuse the goodput runs' Results: names are the
	// stable "<scheme>:lat_p50"/"<scheme>:lat_p99" keys, p99 dominates
	// p50, and committed points carry nonzero latency.
	for i, name := range SchemeNames {
		p50 := fig.Series[len(SchemeNames)+2*i]
		p99 := fig.Series[len(SchemeNames)+2*i+1]
		if p50.Name != name+":lat_p50" || p99.Name != name+":lat_p99" {
			t.Fatalf("latency series for %s named %q/%q", name, p50.Name, p99.Name)
		}
		if len(p50.Points) != len(kneeOffered) || len(p99.Points) != len(kneeOffered) {
			t.Fatalf("latency series for %s have %d/%d points, want %d",
				name, len(p50.Points), len(p99.Points), len(kneeOffered))
		}
		for j := range p50.Points {
			goodput := fig.Series[i].Points[j]
			if p50.Points[j].Res.Commits != goodput.Res.Commits {
				t.Fatalf("series %s point %d does not reuse the goodput run's Result", p50.Name, j)
			}
			if p99.Points[j].Y < p50.Points[j].Y {
				t.Errorf("series %s point %d: p99 %.3f < p50 %.3f", name, j, p99.Points[j].Y, p50.Points[j].Y)
			}
			if goodput.Res.Commits > 0 && p50.Points[j].Y <= 0 {
				t.Errorf("series %s point %d committed %d txns with zero p50 latency", name, j, goodput.Res.Commits)
			}
		}
	}
	// The knee figure is a pure sweep: serial and pooled builds agree.
	par := e.Build(p, &Runner{Workers: 4})
	if fig.Format() != par.Format() {
		t.Error("knee figure differs between serial and parallel builds")
	}
}

// TestKneeOutputKeys pins the knee figure's JSON/CSV surface: the latency
// series keys are stable, and the figure round-trips through its JSON
// form point for point.
func TestKneeOutputKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("runs small open-loop simulations")
	}
	p := tinyParams()
	e, err := Lookup("knee")
	if err != nil {
		t.Fatal(err)
	}
	fig := e.Build(p, nil)
	rep := NewReport(RunMeta{Paper: "test"}, []Experiment{e}, []*Figure{fig})

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"NO_WAIT:lat_p50"`, `"NO_WAIT:lat_p99"`, `"MVCC:lat_p50"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing series key %s", key)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "NO_WAIT:lat_p99") {
		t.Error("report CSV missing the NO_WAIT:lat_p99 series rows")
	}

	var back Figure
	if err := json.Unmarshal(mustMarshal(t, fig), &back); err != nil {
		t.Fatalf("figure round trip: %v", err)
	}
	if back.Format() != fig.Format() {
		t.Error("figure diverged through the JSON round trip")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunnerStopDrains pins the graceful-interruption contract of the
// pool: once Stop is raised, in-flight jobs drain normally, undispatched
// jobs yield zero Results, and the completed prefix is intact.
func TestRunnerStopDrains(t *testing.T) {
	p := tinyParams()
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, p.tsallocJob(tsalloc.Atomic, 2))
	}
	var stop atomic.Bool
	r := &Runner{Workers: 1, Stop: &stop, OnProgress: func(pr Progress) {
		if pr.Done == 1 {
			stop.Store(true)
		}
	}}
	results := r.Execute(jobs)
	if results[0].Commits == 0 {
		t.Fatal("first job should have completed before the stop")
	}
	// With one worker, the stop raised during job 0's completion is
	// visible at latest when job 2 would dispatch.
	for i := 2; i < len(jobs); i++ {
		if results[i].Commits != 0 {
			t.Errorf("job %d ran after the stop", i)
		}
	}
}

// TestSerialStopSkipsRemainingPoints pins the same contract on the serial
// (direct) path: a stop raised mid-figure zeroes the remaining points
// without derailing figure assembly.
func TestSerialStopSkipsRemainingPoints(t *testing.T) {
	p := tinyParams()
	var stop atomic.Bool
	fn := func(p Params, pl *Plan) *Figure {
		fig := &Figure{ID: "stoptest"}
		s := Series{Name: "n"}
		for i := 0; i < 4; i++ {
			r := pl.Run(p.tsallocJob(tsalloc.Atomic, 1))
			s.addPoint(float64(i), r, func(r core.Result) float64 { return float64(r.Commits) })
			if i == 0 {
				stop.Store(true)
			}
		}
		fig.Series = append(fig.Series, s)
		return fig
	}
	fig := Build(fn, p, &Runner{Workers: 1, Stop: &stop})
	pts := fig.Series[0].Points
	if pts[0].Res.Commits == 0 {
		t.Fatal("first point should have run")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Res.Commits != 0 {
			t.Errorf("point %d ran after the stop", i)
		}
	}
}
