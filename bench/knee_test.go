package bench

import (
	"sync/atomic"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
)

// TestKneeExperiment smoke-runs the overload-knee extension at tiny scale
// and checks its defining shape: below the knee nearly everything offered
// commits; far past it admission control sheds and goodput stays well
// under the offered load.
func TestKneeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~40 small open-loop simulations")
	}
	p := tinyParams()
	e, err := Lookup("knee")
	if err != nil {
		t.Fatal(err)
	}
	fig := e.Build(p, nil)
	if len(fig.Series) != len(SchemeNames) {
		t.Fatalf("knee has %d series, want %d", len(fig.Series), len(SchemeNames))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(kneeOffered) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(kneeOffered))
		}
		lo, hi := s.Points[0].Res, s.Points[len(s.Points)-1].Res
		if lo.Offered == 0 || hi.Offered == 0 {
			t.Fatalf("series %s offered nothing: lo %+v hi %+v", s.Name, lo, hi)
		}
		if f := lo.ShedFraction(); f > 0.1 {
			t.Errorf("series %s sheds %.0f%% at the bottom of the ladder", s.Name, f*100)
		}
		if hi.Shed == 0 {
			t.Errorf("series %s sheds nothing at %.0f offered txn/s", s.Name, kneeOffered[len(kneeOffered)-1])
		}
		if hi.GoodputTPS() >= kneeOffered[len(kneeOffered)-1]/2 {
			t.Errorf("series %s goodput %.0f did not fall below half the offered %.0f",
				s.Name, hi.GoodputTPS(), kneeOffered[len(kneeOffered)-1])
		}
		if hi.QueueDepth.Max() > kneeQueueDepth {
			t.Errorf("series %s queue depth %d exceeds the %d bound", s.Name, hi.QueueDepth.Max(), kneeQueueDepth)
		}
	}
	// The knee figure is a pure sweep: serial and pooled builds agree.
	par := e.Build(p, &Runner{Workers: 4})
	if fig.Format() != par.Format() {
		t.Error("knee figure differs between serial and parallel builds")
	}
}

// TestRunnerStopDrains pins the graceful-interruption contract of the
// pool: once Stop is raised, in-flight jobs drain normally, undispatched
// jobs yield zero Results, and the completed prefix is intact.
func TestRunnerStopDrains(t *testing.T) {
	p := tinyParams()
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, p.tsallocJob(tsalloc.Atomic, 2))
	}
	var stop atomic.Bool
	r := &Runner{Workers: 1, Stop: &stop, OnProgress: func(pr Progress) {
		if pr.Done == 1 {
			stop.Store(true)
		}
	}}
	results := r.Execute(jobs)
	if results[0].Commits == 0 {
		t.Fatal("first job should have completed before the stop")
	}
	// With one worker, the stop raised during job 0's completion is
	// visible at latest when job 2 would dispatch.
	for i := 2; i < len(jobs); i++ {
		if results[i].Commits != 0 {
			t.Errorf("job %d ran after the stop", i)
		}
	}
}

// TestSerialStopSkipsRemainingPoints pins the same contract on the serial
// (direct) path: a stop raised mid-figure zeroes the remaining points
// without derailing figure assembly.
func TestSerialStopSkipsRemainingPoints(t *testing.T) {
	p := tinyParams()
	var stop atomic.Bool
	fn := func(p Params, pl *Plan) *Figure {
		fig := &Figure{ID: "stoptest"}
		s := Series{Name: "n"}
		for i := 0; i < 4; i++ {
			r := pl.Run(p.tsallocJob(tsalloc.Atomic, 1))
			s.addPoint(float64(i), r, func(r core.Result) float64 { return float64(r.Commits) })
			if i == 0 {
				stop.Store(true)
			}
		}
		fig.Series = append(fig.Series, s)
		return fig
	}
	fig := Build(fn, p, &Runner{Workers: 1, Stop: &stop})
	pts := fig.Series[0].Points
	if pts[0].Res.Commits == 0 {
		t.Fatal("first point should have run")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Res.Commits != 0 {
			t.Errorf("point %d ran after the stop", i)
		}
	}
}
