package bench

import (
	"fmt"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/mem"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/wal"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

// JobKind selects the execution path of a Job.
type JobKind int

const (
	// JobYCSB runs a YCSB configuration on the simulator.
	JobYCSB JobKind = iota
	// JobTPCC runs a TPC-C configuration on the simulator.
	JobTPCC
	// JobNativeYCSB runs a YCSB configuration on real goroutines (the
	// Fig. 3 hardware-validation runs). Its Cfg windows are wall-clock
	// nanoseconds, its results are wall-clock dependent, and it is
	// always Exclusive so concurrent jobs cannot distort its timing.
	JobNativeYCSB
	// JobTsAlloc runs the Fig. 6 timestamp-allocation micro-benchmark:
	// every simulated core draws timestamps back-to-back for
	// Cfg.MeasureCycles.
	JobTsAlloc
)

// Job is one experiment data point, fully self-describing: everything
// needed to execute the point — workload, scheme, core count, simulated
// window and seed — lives in plain comparable fields, so a Job can be
// shipped to any worker goroutine, executed via Run, and compared with ==
// when a figure is reassembled. Jobs never share state: Run constructs a
// fresh engine, database, workload and scheme instance on every call,
// which is what makes parallel execution and serial execution produce
// bit-identical results.
type Job struct {
	// Experiment is the registry id of the experiment that enumerated
	// this job ("9", "malloc", ...). Stamped by the Plan.
	Experiment string

	// Kind selects the execution path.
	Kind JobKind

	// Cores is the number of simulated (or native) cores.
	Cores int

	// Seed makes the point deterministic. Every job carries its own
	// seed; the engine derives per-core streams from (Seed, core id).
	Seed int64

	// Scheme is the paper name of the CC scheme (MakeScheme), empty for
	// JobTsAlloc. When UseTimeout is set the scheme is instead
	// twopl.NewWithTimeout(Timeout, DisableDetect) — the Fig. 4/5
	// DL_DETECT variants — and Scheme is display-only.
	Scheme        string
	TsMethod      tsalloc.Method
	UseTimeout    bool
	Timeout       uint64
	DisableDetect bool

	// GlobalMalloc replaces the per-worker arenas with one centralized
	// allocator (the §4.1 malloc ablation).
	GlobalMalloc bool

	// LogAccounting attaches an accounting-only write-ahead log (in-memory
	// sink, synchronous group commit) to the run: commit records are
	// encoded and logged and the Log breakdown component is billed, but the
	// simulated schedule — and therefore every other result field — is
	// unchanged.
	LogAccounting bool

	// Exclusive marks jobs that must not run concurrently with any
	// other job (native wall-clock runs). The Runner executes them one
	// at a time after the parallel jobs drain.
	Exclusive bool

	// Cfg is the measurement window. Simulated cycles for sim kinds,
	// wall-clock nanoseconds for JobNativeYCSB.
	Cfg core.Config

	// YCSB and TPCC are the workload payloads; only the one matching
	// Kind is read.
	YCSB ycsb.Config
	TPCC tpcc.Config
}

// Label renders a short human-readable identity for progress reporting.
func (j Job) Label() string {
	name := j.Scheme
	if j.Kind == JobTsAlloc {
		name = j.TsMethod.String()
	}
	if j.Experiment != "" {
		return fmt.Sprintf("%s %s@%dc", j.Experiment, name, j.Cores)
	}
	return fmt.Sprintf("%s@%dc", name, j.Cores)
}

// scheme constructs a fresh CC scheme instance for this job.
func (j Job) scheme() core.Scheme {
	if j.UseTimeout {
		return twopl.NewWithTimeout(j.Timeout, j.DisableDetect)
	}
	return MakeScheme(j.Scheme, j.TsMethod)
}

// Run executes the job and returns its result. Run is pure with respect
// to the job description: same Job, same Result (except JobNativeYCSB,
// whose results depend on real time), and it touches no shared state, so
// any number of Runs may proceed concurrently.
func (j Job) Run() core.Result {
	return j.RunSampled(0, nil)
}

// RunSampled is Run with interval sampling enabled for the engine-backed
// job kinds: every `every` cycles of the measurement window one
// core.Sample is delivered to obs. Sampling is accounting-only, so the
// returned Result is identical to Run's — the property the CI smoke step
// pins by comparing sampled and unsampled report JSON. JobTsAlloc drives
// its own measurement loop and ignores sampling.
func (j Job) RunSampled(every uint64, obs core.Observer) core.Result {
	cfg := j.Cfg
	cfg.SampleEvery = every
	switch j.Kind {
	case JobTsAlloc:
		return j.runTsAlloc()
	case JobNativeYCSB:
		eng := native.New(j.Cores, j.Seed)
		db := core.NewDB(eng)
		j.attachLog(db)
		wl := ycsb.Build(db, j.YCSB)
		return core.RunObserved(db, j.scheme(), wl, cfg, obs)
	case JobTPCC:
		eng := sim.New(j.Cores, j.Seed)
		db := core.NewDB(eng)
		j.attachLog(db)
		wl := tpcc.Build(db, j.TPCC)
		return core.RunObserved(db, j.scheme(), wl, cfg, obs)
	default: // JobYCSB
		eng := sim.New(j.Cores, j.Seed)
		db := core.NewDB(eng)
		j.attachLog(db)
		if j.GlobalMalloc {
			db.GlobalAlloc = mem.NewGlobalPool(eng)
		}
		wl := ycsb.Build(db, j.YCSB)
		return core.RunObserved(db, j.scheme(), wl, cfg, obs)
	}
}

// attachLog hangs the accounting-only WAL on db when the job asks for it.
func (j Job) attachLog(db *core.DB) {
	if j.LogAccounting {
		db.Wal = wal.NewWriter(wal.NewMemSink(), wal.Config{})
	}
}

// runTsAlloc is the Fig. 6 micro-benchmark: timestamps drawn back-to-back
// on every core for the measurement window.
func (j Job) runTsAlloc() core.Result {
	eng := sim.New(j.Cores, j.Seed)
	alloc := tsalloc.New(j.TsMethod, eng)
	end := j.Cfg.MeasureCycles
	counts := make([]uint64, j.Cores)
	eng.Run(func(pr rt.Proc) {
		for pr.Now() < end {
			alloc.Next(pr)
			counts[pr.ID()]++
		}
	})
	var total uint64
	for _, n := range counts {
		total += n
	}
	return core.Result{
		Scheme:        j.TsMethod.String(),
		Workers:       j.Cores,
		Commits:       total,
		MeasureCycles: end,
		Frequency:     eng.Frequency(),
	}
}

// ycsbJob describes one simulated YCSB point at this run's scale.
func (p Params) ycsbJob(scheme string, m tsalloc.Method, cores int, ycfg ycsb.Config) Job {
	return Job{
		Kind:          JobYCSB,
		Cores:         cores,
		Seed:          p.Seed,
		Scheme:        scheme,
		TsMethod:      m,
		LogAccounting: p.LogAccounting,
		Cfg:           p.coreConfig(),
		YCSB:          ycfg,
	}
}

// tpccJob describes one simulated TPC-C point at this run's scale.
func (p Params) tpccJob(scheme string, cores int, tcfg tpcc.Config) Job {
	return Job{
		Kind:          JobTPCC,
		Cores:         cores,
		Seed:          p.Seed,
		Scheme:        scheme,
		TsMethod:      tsalloc.Atomic,
		LogAccounting: p.LogAccounting,
		Cfg:           p.coreConfig(),
		TPCC:          tcfg,
	}
}

// timeoutJob describes one point running the Fig. 4/5 DL_DETECT variant
// with an explicit wait timeout and optionally disabled detection.
func (p Params) timeoutJob(timeout uint64, disableDetect bool, cores int, ycfg ycsb.Config) Job {
	return Job{
		Kind:          JobYCSB,
		Cores:         cores,
		Seed:          p.Seed,
		Scheme:        "DL_DETECT",
		UseTimeout:    true,
		Timeout:       timeout,
		DisableDetect: disableDetect,
		LogAccounting: p.LogAccounting,
		Cfg:           p.coreConfig(),
		YCSB:          ycfg,
	}
}

// nativeJob describes one Fig. 3 native-hardware point; its windows are
// wall-clock nanoseconds and it runs exclusively.
func (p Params) nativeJob(scheme string, cores int, ycfg ycsb.Config) Job {
	return Job{
		Kind:          JobNativeYCSB,
		Cores:         cores,
		Seed:          p.Seed,
		Scheme:        scheme,
		TsMethod:      tsalloc.Atomic,
		LogAccounting: p.LogAccounting,
		Exclusive:     true,
		Cfg: core.Config{
			WarmupCycles:  p.NativeWarmupNS,
			MeasureCycles: p.NativeMeasureNS,
			AbortBackoff:  1000,
		},
		YCSB: ycfg,
	}
}

// tsallocJob describes one Fig. 6 micro-benchmark point.
func (p Params) tsallocJob(m tsalloc.Method, cores int) Job {
	return Job{
		Kind:     JobTsAlloc,
		Cores:    cores,
		Seed:     p.Seed,
		TsMethod: m,
		Cfg:      core.Config{MeasureCycles: p.MeasureCycles},
	}
}
