// Two-phase experiment execution.
//
// Every figure function is written against a *Plan: wherever the serial
// harness would run a simulation inline, the figure calls Plan.Run with a
// self-describing Job. The same figure function then serves three modes:
//
//   - direct: Plan.Run executes the job inline (the serial path; exactly
//     the behavior of the original one-pass harness).
//   - collect: Plan.Run records the job and returns a zero Result; one
//     pass over the figure function yields its flat job list without
//     simulating anything.
//   - replay: Plan.Run hands back the precomputed result for the next
//     recorded job; a second pass over the figure function reassembles
//     the Figure from results the Runner produced on a worker pool.
//
// This works because figure functions are pure sweeps: their control flow
// never depends on a Result's values, only on Params. The replay pass
// verifies this invariant — each incoming job must equal the recorded one
// — and panics on divergence, so a result-dependent figure fails loudly
// instead of silently misassigning points.
//
// Determinism: a Job is executed by Job.Run regardless of mode or worker,
// and Job.Run constructs everything it touches from the job's own fields
// (including its seed). Serial and parallel builds therefore produce
// byte-identical figures, which TestSerialParallelEquivalence pins.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"abyss1000/internal/core"
)

type planMode int

const (
	planDirect planMode = iota
	planCollect
	planReplay
)

// Plan threads the execution mode through a figure function. Figure code
// only ever calls Run; everything else is driven by Build/BuildAll.
type Plan struct {
	mode        planMode
	experiment  string
	sampleEvery uint64       // direct mode: interval sampling period (0 = off)
	stop        *atomic.Bool // direct mode: skip remaining jobs once set
	jobs        []Job
	results     []core.Result
	next        int
}

// Run executes, records, or replays one job depending on the plan mode.
func (pl *Plan) Run(j Job) core.Result {
	if j.Experiment == "" {
		j.Experiment = pl.experiment
	}
	switch pl.mode {
	case planCollect:
		pl.jobs = append(pl.jobs, j)
		return core.Result{}
	case planReplay:
		if pl.next >= len(pl.jobs) {
			panic(fmt.Sprintf("bench: experiment %q enumerated %d jobs but asked for more on replay; figure control flow must not depend on results", pl.experiment, len(pl.jobs)))
		}
		if pl.jobs[pl.next] != j {
			panic(fmt.Sprintf("bench: experiment %q replay mismatch at job %d: enumerated %+v, replayed %+v; figure control flow must not depend on results", pl.experiment, pl.next, pl.jobs[pl.next], j))
		}
		r := pl.results[pl.next]
		pl.next++
		return r
	default:
		if pl.stop != nil && pl.stop.Load() {
			return core.Result{}
		}
		return j.RunSampled(pl.sampleEvery, sampleSink(pl.sampleEvery))
	}
}

// discardSamples is the sink for harness-level sampling: the smoke runs
// only verify that sampling does not change results, so the samples
// themselves are dropped.
type discardSamples struct{}

// OnSample implements core.Observer.
func (discardSamples) OnSample(core.Sample) {}

// sampleSink returns the discarding observer when sampling is on, nil
// otherwise (core skips the sampler entirely for a nil observer).
func sampleSink(every uint64) core.Observer {
	if every == 0 {
		return nil
	}
	return discardSamples{}
}

// Progress reports worker-pool completion to Runner.OnProgress.
type Progress struct {
	// Done and Total count completed and enumerated jobs.
	Done, Total int
	// Elapsed is wall-clock time since Execute started; Remaining is
	// the linear-extrapolation ETA (zero until the first completion).
	Elapsed, Remaining time.Duration
	// Last is the job that just completed.
	Last Job
}

// Runner executes a flat job list across a worker pool. The zero value
// runs GOMAXPROCS-wide with no progress reporting.
type Runner struct {
	// Workers is the pool width; <= 0 means runtime.GOMAXPROCS(0).
	// Each job occupies roughly one OS thread (the simulator's cores
	// are cooperatively scheduled), so GOMAXPROCS-wide pools scale the
	// suite near-linearly.
	Workers int

	// OnProgress, when non-nil, is called after every job completes.
	// Calls are serialized; the callback must not block for long.
	OnProgress func(Progress)

	// SampleEvery, when positive, runs every engine-backed job with
	// interval sampling enabled at this period (samples are discarded).
	// Sampling is accounting-only, so results — and the rendered
	// figures, JSON and CSV — are byte-identical to an unsampled run;
	// the CI smoke step exercises exactly that equivalence.
	SampleEvery uint64

	// Stop, when non-nil and set, makes the runner stop dispatching new
	// jobs: in-flight jobs drain normally and every undispatched job
	// yields a zero Result, so a figure can still be assembled from the
	// points completed so far. abyss-bench sets it from its SIGINT
	// handler. Serial builds honor it too, between points.
	Stop *atomic.Bool
}

// stopped reports whether the runner's stop flag has been raised.
func (r *Runner) stopped() bool { return r != nil && r.Stop != nil && r.Stop.Load() }

// stopFlag hands the stop flag to serial plans.
func (r *Runner) stopFlag() *atomic.Bool {
	if r == nil {
		return nil
	}
	return r.Stop
}

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

func (r *Runner) sampleEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.SampleEvery
}

// Execute runs every job and returns results in job order. Jobs marked
// Exclusive (native wall-clock runs) execute one at a time after the
// parallel jobs drain, so pool contention cannot distort their timing.
func (r *Runner) Execute(jobs []Job) []core.Result {
	results := make([]core.Result, len(jobs))
	var pool, exclusive []int
	for i, j := range jobs {
		if j.Exclusive {
			exclusive = append(exclusive, i)
		} else {
			pool = append(pool, i)
		}
	}

	start := time.Now()
	var mu sync.Mutex
	done := 0
	complete := func(i int) {
		if r == nil || r.OnProgress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		elapsed := time.Since(start)
		var remaining time.Duration
		if done > 0 && done < len(jobs) {
			remaining = time.Duration(float64(elapsed) / float64(done) * float64(len(jobs)-done))
		}
		r.OnProgress(Progress{Done: done, Total: len(jobs), Elapsed: elapsed, Remaining: remaining, Last: jobs[i]})
	}

	every := r.sampleEvery()
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = jobs[i].RunSampled(every, sampleSink(every))
				complete(i)
			}
		}()
	}
	for _, i := range pool {
		if r.stopped() {
			break
		}
		ch <- i
	}
	close(ch)
	wg.Wait()

	for _, i := range exclusive {
		if r.stopped() {
			break
		}
		results[i] = jobs[i].RunSampled(every, sampleSink(every))
		complete(i)
	}
	return results
}

// Build runs one figure function. With r nil or Workers == 1 the points
// execute inline in enumeration order (the serial path); otherwise the
// figure is enumerated, its jobs run on the pool, and the figure is
// reassembled by replay.
func Build(fn FigureFunc, p Params, r *Runner) *Figure {
	return buildOne(Experiment{Run: fn}, p, r)
}

// Build runs the registered experiment at scale p under runner r.
func (e Experiment) Build(p Params, r *Runner) *Figure {
	return buildOne(e, p, r)
}

// Jobs enumerates the experiment's full job list at scale p without
// executing anything.
func (e Experiment) Jobs(p Params) []Job {
	pl := &Plan{mode: planCollect, experiment: e.ID}
	e.Run(p, pl)
	return pl.jobs
}

func serial(r *Runner) bool { return r == nil || r.Workers == 1 }

func buildOne(e Experiment, p Params, r *Runner) *Figure {
	if serial(r) {
		return e.Run(p, &Plan{mode: planDirect, experiment: e.ID, sampleEvery: r.sampleEvery(), stop: r.stopFlag()})
	}
	return BuildAll([]Experiment{e}, p, r)[0]
}

// BuildAll runs several experiments as one flat job list: every
// experiment is enumerated first, the combined list executes on the
// worker pool (so small figures cannot leave the pool idle), and each
// figure is then reassembled from its slice of the results.
func BuildAll(es []Experiment, p Params, r *Runner) []*Figure {
	figs := make([]*Figure, len(es))
	if serial(r) {
		for i, e := range es {
			figs[i] = e.Run(p, &Plan{mode: planDirect, experiment: e.ID, sampleEvery: r.sampleEvery(), stop: r.stopFlag()})
		}
		return figs
	}

	plans := make([]*Plan, len(es))
	var all []Job
	for i, e := range es {
		plans[i] = &Plan{mode: planCollect, experiment: e.ID}
		e.Run(p, plans[i])
		all = append(all, plans[i].jobs...)
	}

	results := r.Execute(all)

	off := 0
	for i, e := range es {
		pl := plans[i]
		pl.mode = planReplay
		pl.results = results[off : off+len(pl.jobs)]
		off += len(pl.jobs)
		figs[i] = e.Run(p, pl)
		if pl.next != len(pl.jobs) {
			panic(fmt.Sprintf("bench: experiment %q enumerated %d jobs but replayed only %d; figure control flow must not depend on results", e.ID, len(pl.jobs), pl.next))
		}
	}
	return figs
}
