package bench

import (
	"reflect"
	"strings"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
)

// tinyParams keeps runner tests fast: a few thousand simulated events per
// point.
func tinyParams() Params {
	return Params{
		MaxCores:      4,
		WarmupCycles:  20_000,
		MeasureCycles: 100_000,
		Rows:          1024,
		FieldSize:     20,
		Seed:          7,
	}
}

// equivalenceExperiments covers every sim-backed job kind: plain YCSB
// sweeps, the Fig. 4/5 timeout scheme, the Fig. 6 tsalloc
// micro-benchmark, the malloc ablation's global allocator, and TPC-C.
// Fig. 3 is excluded on purpose: its native points measure wall-clock
// time and are not run-to-run deterministic.
func equivalenceExperiments(t *testing.T) []Experiment {
	t.Helper()
	var es []Experiment
	for _, id := range []string{"5", "6", "malloc", "16"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, e)
	}
	return es
}

// TestSerialParallelEquivalence pins the central determinism contract of
// the two-phase runner: -parallel 1 (direct inline execution) and
// -parallel 8 (enumerate, pool, replay) produce byte-identical figure
// text, JSON and CSV.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~60 small simulations twice")
	}
	p := tinyParams()
	es := equivalenceExperiments(t)

	serialFigs := BuildAll(es, p, nil)
	parallelFigs := BuildAll(es, p, &Runner{Workers: 8})

	meta := RunMeta{Paper: "test", Scale: "tiny", Params: p}
	serialRep := NewReport(meta, es, serialFigs)
	parallelRep := NewReport(meta, es, parallelFigs)

	for i := range es {
		st, pt := serialFigs[i].Format(), parallelFigs[i].Format()
		if st != pt {
			t.Errorf("experiment %s: serial and parallel figure text differ:\nserial:\n%s\nparallel:\n%s", es[i].ID, st, pt)
		}
	}
	sj, err := serialRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallelRep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Error("serial and parallel JSON reports differ")
	}
	if serialRep.CSV() != parallelRep.CSV() {
		t.Error("serial and parallel CSV reports differ")
	}
}

// TestSampledUnsampledEquivalence pins that Runner.SampleEvery is
// accounting-only: a run with interval sampling enabled produces
// byte-identical figure text, JSON and CSV to a run without — the same
// equivalence the CI smoke step checks end-to-end through abyss-bench
// -sample. Both the pooled and the serial (direct) paths are covered.
func TestSampledUnsampledEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~40 small simulations twice")
	}
	p := tinyParams()
	es := equivalenceExperiments(t)
	meta := RunMeta{Paper: "test", Scale: "tiny", Params: p}

	for _, workers := range []int{1, 4} {
		plain := NewReport(meta, es, BuildAll(es, p, &Runner{Workers: workers}))
		sampled := NewReport(meta, es, BuildAll(es, p, &Runner{Workers: workers, SampleEvery: p.MeasureCycles / 8}))
		pj, err := plain.JSON()
		if err != nil {
			t.Fatal(err)
		}
		sj, err := sampled.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(pj) != string(sj) {
			t.Errorf("workers=%d: sampling changed the JSON report", workers)
		}
		if plain.CSV() != sampled.CSV() {
			t.Errorf("workers=%d: sampling changed the CSV report", workers)
		}
	}
}

// TestJobsEnumerate checks that every registered experiment enumerates a
// non-empty, fully-described job list without running any simulation.
func TestJobsEnumerate(t *testing.T) {
	p := tinyParams()
	for _, e := range Registry {
		jobs := e.Jobs(p)
		if len(jobs) == 0 {
			t.Errorf("experiment %s enumerated no jobs", e.ID)
		}
		for i, j := range jobs {
			if j.Experiment != e.ID {
				t.Errorf("experiment %s job %d stamped %q", e.ID, i, j.Experiment)
			}
			if j.Cores < 1 {
				t.Errorf("experiment %s job %d has %d cores", e.ID, i, j.Cores)
			}
			if j.Seed != p.Seed {
				t.Errorf("experiment %s job %d has seed %d, want %d", e.ID, i, j.Seed, p.Seed)
			}
			if j.Kind == JobNativeYCSB && !j.Exclusive {
				t.Errorf("experiment %s job %d: native jobs must be exclusive", e.ID, i)
			}
			if j.Label() == "" {
				t.Errorf("experiment %s job %d has no label", e.ID, i)
			}
		}
	}
}

// TestJobsOneJobPerPoint cross-checks the enumeration against the built
// figure: one job per simulated data point.
func TestJobsOneJobPerPoint(t *testing.T) {
	p := tinyParams()
	e, err := Lookup("6")
	if err != nil {
		t.Fatal(err)
	}
	jobs := e.Jobs(p)
	fig := e.Build(p, nil)
	points := 0
	for _, s := range fig.Series {
		points += len(s.Points)
	}
	if len(jobs) != points {
		t.Fatalf("enumerated %d jobs but figure has %d points", len(jobs), points)
	}
}

// TestReplayMismatchPanics ensures a figure whose control flow diverges
// between enumeration and replay fails loudly instead of misassigning
// results.
func TestReplayMismatchPanics(t *testing.T) {
	pl := &Plan{
		mode:    planReplay,
		jobs:    []Job{{Kind: JobTsAlloc, Cores: 1, TsMethod: tsalloc.Atomic}},
		results: make([]core.Result, 1),
	}
	mustPanic(t, "mismatched job", func() {
		pl.Run(Job{Kind: JobTsAlloc, Cores: 2, TsMethod: tsalloc.Atomic})
	})

	pl2 := &Plan{mode: planReplay}
	mustPanic(t, "exhausted job list", func() {
		pl2.Run(Job{Kind: JobTsAlloc, Cores: 1})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on %s", what)
		}
	}()
	fn()
}

// TestRunnerProgress checks completion counting and that results land at
// their job's index regardless of execution order.
func TestRunnerProgress(t *testing.T) {
	p := tinyParams()
	var jobs []Job
	for _, c := range []int{1, 2, 4, 2, 1, 3} {
		jobs = append(jobs, p.tsallocJob(tsalloc.Atomic, c))
	}
	var events []Progress
	r := &Runner{Workers: 3, OnProgress: func(pr Progress) { events = append(events, pr) }}
	results := r.Execute(jobs)

	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(jobs))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d: done/total = %d/%d", i, ev.Done, ev.Total)
		}
	}
	for i, res := range results {
		if res.Workers != jobs[i].Cores {
			t.Errorf("result %d has %d workers, want %d (misrouted result)", i, res.Workers, jobs[i].Cores)
		}
	}
	// Identical jobs must produce identical results wherever they ran.
	if !reflect.DeepEqual(results[0], results[4]) || !reflect.DeepEqual(results[1], results[3]) {
		t.Error("identical jobs produced different results across workers")
	}
}

// TestRunnerExclusiveOrdering checks exclusive jobs still return results
// in job order.
func TestRunnerExclusiveOrdering(t *testing.T) {
	p := tinyParams()
	jobs := []Job{
		p.tsallocJob(tsalloc.Atomic, 2),
		{Kind: JobTsAlloc, Cores: 3, Seed: p.Seed, TsMethod: tsalloc.Atomic, Exclusive: true,
			Cfg: core.Config{MeasureCycles: p.MeasureCycles}},
		p.tsallocJob(tsalloc.Atomic, 4),
	}
	results := (&Runner{Workers: 2}).Execute(jobs)
	for i, want := range []int{2, 3, 4} {
		if results[i].Workers != want {
			t.Errorf("result %d has %d workers, want %d", i, results[i].Workers, want)
		}
	}
}

// TestBuildSerialEqualsDirectCall ensures Build with a nil runner is the
// plain one-pass serial path (labels, breakdowns and all).
func TestBuildSerialEqualsDirectCall(t *testing.T) {
	p := tinyParams()
	fig := Build(Fig6, p, nil)
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	if !strings.Contains(fig.Format(), "Fig 6") {
		t.Fatal("unexpected figure")
	}
}
