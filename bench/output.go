package bench

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
)

// RunMeta describes a whole abyss-bench invocation. It contains only
// determinism-relevant settings — no timestamps, durations or pool widths
// — so the JSON document for a given (experiments, params) pair is
// byte-identical regardless of when or how parallel the run was.
type RunMeta struct {
	// Paper identifies the evaluation being reproduced.
	Paper string `json:"paper"`
	// Scale is "quick", "full", or "custom" (flag-overridden).
	Scale string `json:"scale"`
	// Params are the exact parameters every experiment ran with.
	Params Params `json:"params"`
}

// ReportFigure pairs a registry experiment id with its rendered figure.
type ReportFigure struct {
	Experiment string  `json:"experiment"`
	Figure     *Figure `json:"figure"`
}

// Report is the machine-readable form of one abyss-bench run: run
// metadata plus every figure with every point's full core.Result
// (commits, aborts, tuples, and the six-component cycle breakdown).
type Report struct {
	Meta    RunMeta        `json:"meta"`
	Figures []ReportFigure `json:"figures"`
	// Table2 carries the bottleneck-summary table when the run included
	// it (-all or -table 2).
	Table2 string `json:"table2,omitempty"`
}

// NewReport assembles a report from the experiments es and the figures
// they produced (parallel slices, as returned by BuildAll).
func NewReport(meta RunMeta, es []Experiment, figs []*Figure) *Report {
	rep := &Report{Meta: meta}
	for i, e := range es {
		rep.Figures = append(rep.Figures, ReportFigure{Experiment: e.ID, Figure: figs[i]})
	}
	return rep
}

// JSON renders the report as indented JSON with a trailing newline. The
// output is deterministic: same experiments, same params, same bytes.
func (rep *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// csvColumns is the flat per-point CSV header. The first columns locate
// the point within its figure; the rest are the full core.Result plus the
// derived metrics the paper plots.
func csvColumns() []string {
	cols := []string{
		"experiment", "figure", "series", "x", "y",
		"scheme", "workers", "commits", "aborts", "tuples",
		"measure_cycles", "frequency_hz", "throughput_txn_s", "abort_fraction",
	}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		cols = append(cols, c.Key()+"_cycles")
	}
	return cols
}

// CSV renders every data point as one flat row (breakdown tables are a
// per-point projection of the same cycle counters, so they are not
// repeated separately). Fields never need quoting: series names contain
// no commas and numbers are formatted with strconv.
func (rep *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(csvColumns(), ","))
	b.WriteByte('\n')
	for _, rf := range rep.Figures {
		for _, s := range rf.Figure.Series {
			for _, pt := range s.Points {
				r := pt.Res
				fields := []string{
					rf.Experiment,
					csvEscape(rf.Figure.ID),
					csvEscape(s.Name),
					formatFloat(pt.X),
					formatFloat(finite(pt.Y)),
					r.Scheme,
					strconv.Itoa(r.Workers),
					strconv.FormatUint(r.Commits, 10),
					strconv.FormatUint(r.Aborts, 10),
					strconv.FormatUint(r.Tuples, 10),
					strconv.FormatUint(r.MeasureCycles, 10),
					formatFloat(r.Frequency),
					formatFloat(finite(r.Throughput())),
					formatFloat(finite(r.AbortFraction())),
				}
				for c := stats.Component(0); c < stats.NumComponents; c++ {
					fields = append(fields, strconv.FormatUint(r.Breakdown.Get(c), 10))
				}
				b.WriteString(strings.Join(fields, ","))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// csvEscape replaces the field separator; names in this package never
// contain commas, but a future figure title should not corrupt the file.
func csvEscape(s string) string { return strings.ReplaceAll(s, ",", ";") }

// finite maps NaN/Inf (possible only for artificial zero results) to 0 so
// the output stays valid JSON/CSV.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// pointJSON fixes the Point wire format: the raw result plus the derived
// metrics, so consumers need no cycle arithmetic.
type pointJSON struct {
	X             float64     `json:"x"`
	Y             float64     `json:"y"`
	Result        core.Result `json:"result"`
	Throughput    float64     `json:"throughput_txn_s"`
	AbortFraction float64     `json:"abort_fraction"`
}

// MarshalJSON emits the point with its full result and derived metrics.
func (pt Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointJSON{
		X:             pt.X,
		Y:             finite(pt.Y),
		Result:        pt.Res,
		Throughput:    finite(pt.Res.Throughput()),
		AbortFraction: finite(pt.Res.AbortFraction()),
	})
}

// UnmarshalJSON restores a point written by MarshalJSON (the derived
// fields are recomputable and ignored).
func (pt *Point) UnmarshalJSON(data []byte) error {
	var v pointJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	pt.X, pt.Y, pt.Res = v.X, v.Y, v.Result
	return nil
}
