package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
)

// RunMeta describes a whole abyss-bench invocation. It contains only
// determinism-relevant settings — no timestamps, durations or pool widths
// — so the JSON document for a given (experiments, params) pair is
// byte-identical regardless of when or how parallel the run was.
type RunMeta struct {
	// Paper identifies the evaluation being reproduced.
	Paper string `json:"paper"`
	// Scale is "quick", "full", or "custom" (flag-overridden).
	Scale string `json:"scale"`
	// Params are the exact parameters every experiment ran with.
	Params Params `json:"params"`
}

// ReportFigure pairs a registry experiment id with its rendered figure.
type ReportFigure struct {
	Experiment string  `json:"experiment"`
	Figure     *Figure `json:"figure"`
}

// Report is the machine-readable form of one abyss-bench run: run
// metadata plus every figure with every point's full core.Result
// (commits, aborts, tuples, and the six-component cycle breakdown).
type Report struct {
	Meta    RunMeta        `json:"meta"`
	Figures []ReportFigure `json:"figures"`
	// Table2 carries the bottleneck-summary table when the run included
	// it (-all or -table 2).
	Table2 string `json:"table2,omitempty"`
}

// NewReport assembles a report from the experiments es and the figures
// they produced (parallel slices, as returned by BuildAll).
func NewReport(meta RunMeta, es []Experiment, figs []*Figure) *Report {
	rep := &Report{Meta: meta}
	for i, e := range es {
		rep.Figures = append(rep.Figures, ReportFigure{Experiment: e.ID, Figure: figs[i]})
	}
	return rep
}

// JSON renders the report as indented JSON with a trailing newline. The
// output is deterministic: same experiments, same params, same bytes.
func (rep *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// csvColumns is the flat per-point CSV header. The first columns locate
// the point within its figure; the rest are the full core.Result plus the
// derived metrics the paper plots, the commit-latency percentiles (our
// extension beyond the paper's throughput-only evaluation), and the
// per-transaction-type summary.
func csvColumns() []string {
	cols := []string{
		"experiment", "figure", "series", "x", "y",
		"scheme", "workers", "commits", "aborts", "tuples",
		"measure_cycles", "frequency_hz", "throughput_txn_s", "abort_fraction",
		"offered_tps", "goodput_tps", "shed", "deadlined",
		"queue_depth_p50", "queue_depth_max",
		"lat_p50_cycles", "lat_p95_cycles", "lat_p99_cycles", "lat_max_cycles",
	}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		cols = append(cols, c.Key()+"_cycles")
	}
	return append(cols, "per_txn")
}

// perTxnCSV flattens the per-type sub-results into one comma-free field:
// `name=commits/aborts/p50/p99` entries joined by `;`, empty when the
// workload declared no types. The full per-type histograms live in the
// JSON form; this column carries the headline numbers so the CSV stays
// one flat row per point.
func perTxnCSV(per []core.TxnStats) string {
	if len(per) == 0 {
		return ""
	}
	var b strings.Builder
	for i := range per {
		t := &per[i]
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%d/%d/%d/%d", csvEscape(t.Name), t.Commits, t.Aborts, t.Latency.P50(), t.Latency.P99())
	}
	return b.String()
}

// CSV renders every data point as one flat row (breakdown tables are a
// per-point projection of the same cycle counters, so they are not
// repeated separately). Fields never need quoting: series names contain
// no commas and numbers are formatted with strconv.
func (rep *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(csvColumns(), ","))
	b.WriteByte('\n')
	for _, rf := range rep.Figures {
		for _, s := range rf.Figure.Series {
			for _, pt := range s.Points {
				r := pt.Res
				fields := []string{
					rf.Experiment,
					csvEscape(rf.Figure.ID),
					csvEscape(s.Name),
					formatFloat(pt.X),
					formatFloat(finite(pt.Y)),
					r.Scheme,
					strconv.Itoa(r.Workers),
					strconv.FormatUint(r.Commits, 10),
					strconv.FormatUint(r.Aborts, 10),
					strconv.FormatUint(r.Tuples, 10),
					strconv.FormatUint(r.MeasureCycles, 10),
					formatFloat(r.Frequency),
					formatFloat(finite(r.Throughput())),
					formatFloat(finite(r.AbortFraction())),
					formatFloat(finite(r.OfferedTPS())),
					formatFloat(finite(r.GoodputTPS())),
					strconv.FormatUint(r.Shed, 10),
					strconv.FormatUint(r.Deadlined, 10),
					strconv.FormatUint(r.QueueDepth.P50(), 10),
					strconv.FormatUint(r.QueueDepth.Max(), 10),
					strconv.FormatUint(r.Latency.P50(), 10),
					strconv.FormatUint(r.Latency.P95(), 10),
					strconv.FormatUint(r.Latency.P99(), 10),
					strconv.FormatUint(r.Latency.Max(), 10),
				}
				for c := stats.Component(0); c < stats.NumComponents; c++ {
					fields = append(fields, strconv.FormatUint(r.Breakdown.Get(c), 10))
				}
				fields = append(fields, perTxnCSV(r.PerTxn))
				b.WriteString(strings.Join(fields, ","))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// csvEscape replaces the field separator; names in this package never
// contain commas, but a future figure title should not corrupt the file.
func csvEscape(s string) string { return strings.ReplaceAll(s, ",", ";") }

// finite maps NaN/Inf (possible only for artificial zero results) to 0 so
// the output stays valid JSON/CSV.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// pointJSON fixes the Point wire format: the raw result plus the derived
// metrics — throughput, abort fraction and the commit-latency percentiles
// — so consumers need no cycle arithmetic or histogram math.
type pointJSON struct {
	X             float64     `json:"x"`
	Y             float64     `json:"y"`
	Result        core.Result `json:"result"`
	Throughput    float64     `json:"throughput_txn_s"`
	AbortFraction float64     `json:"abort_fraction"`
	OfferedTPS    float64     `json:"offered_tps"`
	GoodputTPS    float64     `json:"goodput_tps"`
	LatP50        uint64      `json:"lat_p50_cycles"`
	LatP95        uint64      `json:"lat_p95_cycles"`
	LatP99        uint64      `json:"lat_p99_cycles"`
	LatMax        uint64      `json:"lat_max_cycles"`
}

// MarshalJSON emits the point with its full result and derived metrics.
func (pt Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(pointJSON{
		X:             pt.X,
		Y:             finite(pt.Y),
		Result:        pt.Res,
		Throughput:    finite(pt.Res.Throughput()),
		AbortFraction: finite(pt.Res.AbortFraction()),
		OfferedTPS:    finite(pt.Res.OfferedTPS()),
		GoodputTPS:    finite(pt.Res.GoodputTPS()),
		LatP50:        pt.Res.Latency.P50(),
		LatP95:        pt.Res.Latency.P95(),
		LatP99:        pt.Res.Latency.P99(),
		LatMax:        pt.Res.Latency.Max(),
	})
}

// UnmarshalJSON restores a point written by MarshalJSON (the derived
// fields are recomputable and ignored).
func (pt *Point) UnmarshalJSON(data []byte) error {
	var v pointJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	pt.X, pt.Y, pt.Res = v.X, v.Y, v.Result
	return nil
}
