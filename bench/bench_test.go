package bench

import (
	"strings"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

func TestLadder(t *testing.T) {
	p := Params{MaxCores: 64}
	got := p.Ladder()
	want := []int{1, 4, 16, 64}
	if len(got) != len(want) {
		t.Fatalf("ladder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	// Non-power-of-4 top is still included.
	p.MaxCores = 100
	got = p.Ladder()
	if got[len(got)-1] != 100 {
		t.Fatalf("ladder %v must end at MaxCores", got)
	}
}

func TestLadderFrom(t *testing.T) {
	p := Params{MaxCores: 256}
	got := p.ladderFrom(16)
	for _, c := range got {
		if c < 16 {
			t.Fatalf("ladderFrom(16) contains %d", c)
		}
	}
	if len(got) == 0 {
		t.Fatal("empty ladder")
	}
}

func TestCapCores(t *testing.T) {
	p := Params{MaxCores: 64}
	if p.capCores(512) != 64 || p.capCores(16) != 16 {
		t.Fatal("capCores wrong")
	}
}

func TestMakeSchemeAllNames(t *testing.T) {
	for _, name := range append(append([]string{}, AllSchemeNames...), "ADAPTIVE", "OCC_CENTRAL") {
		s := MakeScheme(name, tsalloc.Atomic)
		if s.Name() != name {
			t.Errorf("MakeScheme(%q).Name() = %q", name, s.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown scheme")
		}
	}()
	MakeScheme("NOPE", tsalloc.Atomic)
}

func TestLookupRegistry(t *testing.T) {
	for _, e := range Registry {
		if _, err := Lookup(e.ID); err != nil {
			t.Errorf("Lookup(%q) failed: %v", e.ID, err)
		}
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestFigureFormat(t *testing.T) {
	fig := &Figure{
		ID:     "Fig X",
		Title:  "Test figure",
		XLabel: "cores",
		YLabel: "Mtxn/s",
		Notes:  "a note",
	}
	s := Series{Name: "S1"}
	res := core.Result{Commits: 1000, MeasureCycles: 1_000_000, Frequency: 1e9}
	s.addPoint(4, res, throughputM)
	fig.Series = append(fig.Series, s)
	fig.Breakdowns = append(fig.Breakdowns, Breakdown{
		Title: "bd",
		Rows:  []BreakdownRow{{Scheme: "S1"}},
	})

	out := fig.Format()
	for _, want := range []string{"Fig X", "Test figure", "a note", "S1", "cores", "Mtxn/s", "bd", "Useful Work"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputExtract(t *testing.T) {
	r := core.Result{Commits: 2_000_000, MeasureCycles: 1_000_000, Frequency: 1e9}
	// 2M commits in 1 ms = 2000 Mtxn/s.
	if got := throughputM(r); got != 2000 {
		t.Fatalf("throughputM = %v", got)
	}
}

func TestBreakdownRowsPreservesOrder(t *testing.T) {
	var bd stats.Breakdown
	bd.Add(stats.Useful, 10)
	results := map[string]core.Result{
		"B": {Breakdown: bd},
		"A": {Breakdown: bd},
	}
	rows := breakdownRows(results, []string{"A", "B", "C"})
	if len(rows) != 2 || rows[0].Scheme != "A" || rows[1].Scheme != "B" {
		t.Fatalf("rows = %+v", rows)
	}
}

// TestTinyEndToEndFigure runs the smallest real experiment end to end.
func TestTinyEndToEndFigure(t *testing.T) {
	p := Params{
		MaxCores:      4,
		WarmupCycles:  50_000,
		MeasureCycles: 200_000,
		Rows:          2048,
		FieldSize:     20,
		Seed:          1,
	}
	fig := Build(Fig11, p, nil)
	if len(fig.Series) != len(SchemeNames) {
		t.Fatalf("series count %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.Res.Commits == 0 && pt.X < 0.7 {
				t.Errorf("%s at theta=%.1f committed nothing", s.Name, pt.X)
			}
		}
	}
}
