package bench

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
)

// testReport builds a small synthetic report without running simulations.
func testReport() (*Report, int) {
	var bd stats.Breakdown
	bd.Add(stats.Useful, 600)
	bd.Add(stats.TsAlloc, 300)
	bd.Add(stats.Wait, 100)
	var lat stats.Histogram
	for i := uint64(0); i < 2000; i++ {
		lat.Record(500 + i)
	}
	var qd stats.Histogram
	for i := uint64(0); i < 100; i++ {
		qd.Record(i % 8)
	}
	res := core.Result{
		Scheme: "NO_WAIT", Workers: 4, Commits: 2000, Aborts: 500, Tuples: 32000,
		Offered: 3000, Shed: 400, Deadlined: 100, QueueDepth: qd,
		MeasureCycles: 1_000_000, Frequency: 1e9, Breakdown: bd, Latency: lat,
		PerTxn: []core.TxnStats{
			{Name: "read", Commits: 1200, Aborts: 300, Latency: lat},
			{Name: "update", Commits: 800, Aborts: 200},
		},
	}
	fig := &Figure{
		ID: "Fig T", Title: "test", XLabel: "cores", YLabel: "Mtxn/s",
		Series: []Series{{
			Name:   "NO_WAIT",
			Points: []Point{{X: 4, Y: 2, Res: res}, {X: 16, Y: 4, Res: res}},
		}},
		Breakdowns: []Breakdown{{Title: "bd", Rows: []BreakdownRow{{Scheme: "NO_WAIT", Fractions: bd.Fractions()}}}},
	}
	es := []Experiment{{ID: "T", Desc: "test"}}
	meta := RunMeta{Paper: "test-paper", Scale: "quick", Params: Quick()}
	return NewReport(meta, es, []*Figure{fig}), 2
}

func TestReportJSONStructure(t *testing.T) {
	rep, _ := testReport()
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("JSON output is not deterministic")
	}

	var doc struct {
		Meta struct {
			Paper  string `json:"paper"`
			Scale  string `json:"scale"`
			Params Params `json:"params"`
		} `json:"meta"`
		Figures []struct {
			Experiment string `json:"experiment"`
			Figure     struct {
				ID     string `json:"id"`
				Series []struct {
					Name   string `json:"name"`
					Points []struct {
						X          float64         `json:"x"`
						Y          float64         `json:"y"`
						Result     core.Result     `json:"result"`
						Throughput float64         `json:"throughput_txn_s"`
						AbortFrac  float64         `json:"abort_fraction"`
						Breakdown  json.RawMessage `json:"-"`
					} `json:"points"`
				} `json:"series"`
			} `json:"figure"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report does not re-parse: %v", err)
	}
	if doc.Meta.Paper != "test-paper" || doc.Meta.Params.Seed != 42 {
		t.Errorf("meta corrupted: %+v", doc.Meta)
	}
	pt := doc.Figures[0].Figure.Series[0].Points[0]
	if pt.Result.Commits != 2000 || pt.Result.Breakdown.Get(stats.Useful) != 600 {
		t.Errorf("point result corrupted: %+v", pt.Result)
	}
	if pt.Throughput != 2e6 {
		t.Errorf("derived throughput = %v, want 2e6", pt.Throughput)
	}
	if pt.AbortFrac != 0.2 {
		t.Errorf("derived abort fraction = %v, want 0.2", pt.AbortFrac)
	}
	// The six-component breakdown must be present under stable keys.
	for _, key := range []string{`"useful": 600`, `"ts_alloc": 300`, `"wait": 100`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing breakdown entry %s", key)
		}
	}
}

func TestReportCSV(t *testing.T) {
	rep, points := testReport()
	out := rep.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != points+1 {
		t.Fatalf("CSV has %d lines, want header + %d points:\n%s", len(lines), points, out)
	}
	header := strings.Split(lines[0], ",")
	wantCols := 24 + int(stats.NumComponents) + 1
	if len(header) != wantCols {
		t.Fatalf("CSV header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	for _, col := range []string{
		"experiment", "scheme", "commits", "throughput_txn_s", "useful_cycles", "manager_cycles",
		"offered_tps", "goodput_tps", "shed", "deadlined", "queue_depth_p50", "queue_depth_max",
		"lat_p50_cycles", "lat_p95_cycles", "lat_p99_cycles", "lat_max_cycles", "per_txn",
	} {
		found := false
		for _, h := range header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Errorf("CSV header missing column %q: %v", col, header)
		}
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Errorf("CSV row %d has %d fields, want %d: %s", i, got, wantCols, line)
		}
	}
	row := strings.Split(lines[1], ",")
	if row[0] != "T" || row[5] != "NO_WAIT" || row[7] != "2000" {
		t.Errorf("unexpected first row: %v", row)
	}
	// The overload columns carry the result's accounting: offered and
	// goodput rates (3000 and 2000 txns over the 1 ms window), shed and
	// deadlined counts, and the queue-depth percentiles.
	if row[14] != "3e+06" || row[15] != "2e+06" {
		t.Errorf("offered/goodput tps = %q/%q, want 3e+06/2e+06", row[14], row[15])
	}
	if row[16] != "400" || row[17] != "100" {
		t.Errorf("shed/deadlined = %q/%q, want 400/100", row[16], row[17])
	}
	if row[19] != "7" {
		t.Errorf("queue_depth_max = %q, want 7", row[19])
	}
	// The latency max column carries the histogram's max; the per-txn
	// column flattens name=commits/aborts/p50/p99 entries with ';'.
	if row[23] != "2499" {
		t.Errorf("lat_max_cycles = %q, want 2499", row[23])
	}
	perTxn := row[len(row)-1]
	if !strings.HasPrefix(perTxn, "read=1200/300/") || !strings.Contains(perTxn, ";update=800/200/") {
		t.Errorf("unexpected per_txn column: %q", perTxn)
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	rep, _ := testReport()
	orig := rep.Figures[0].Figure.Series[0].Points[0]
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Fatalf("point round trip changed the point:\norig %+v\nback %+v", orig, back)
	}
	// The derived latency percentile and overload keys are part of the
	// wire format.
	for _, key := range []string{
		`"lat_p50_cycles"`, `"lat_p95_cycles"`, `"lat_p99_cycles"`, `"lat_max_cycles"`, `"per_txn"`, `"latency"`,
		`"offered_tps"`, `"goodput_tps"`, `"shed"`, `"deadlined"`, `"queue_depth"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Errorf("point JSON missing key %s: %s", key, b)
		}
	}
}
