// Package bench defines one experiment per table/figure of the paper's
// evaluation (§4-§5) and renders the same series the paper plots. It is
// the engine's evaluation harness: scheme construction goes through the
// public abyss registry (MakeScheme), but the job layer drives engine
// internals the public API deliberately does not expose (the ablation
// allocators, timeout-variant 2PL), which is why it lives alongside the
// engine rather than behind the abyss facade. Each
// figure function returns a Figure whose Format() prints aligned columns:
// x-values down the side, one column per series, plus the time-breakdown
// tables for the figures that include them.
//
// Execution is two-phase (see runner.go): figure functions enumerate
// self-describing Jobs — one per data point — through a Plan, a Runner
// executes the flat job list across a worker pool, and the figure is
// reassembled from the completed results. Serial (-parallel 1) and
// parallel builds are byte-identical because every Job carries its own
// seed and constructs all its state itself. Build, BuildAll and
// Experiment.Build are the entry points; output.go adds the JSON/CSV
// serializations behind `abyss-bench -json`/`-csv`.
//
// Experiments run at a configurable scale: Quick() keeps the full suite
// in minutes on a laptop; Full() climbs to 1024 simulated cores with the
// paper's parameters. Absolute throughputs differ from the paper (our
// timing model is not Graphite); EXPERIMENTS.md records the shape
// comparison per figure along with the exact command reproducing each.
package bench

import (
	"fmt"
	"strings"

	"abyss1000/abyss"
	"abyss1000/internal/core"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

// Params sizes an experiment run. The json tags define its stable
// serialization in the -json report metadata.
type Params struct {
	// MaxCores is the top of the core-count ladder (the paper's is
	// 1024).
	MaxCores int `json:"max_cores"`

	// WarmupCycles and MeasureCycles size each data point's simulated
	// window.
	WarmupCycles  uint64 `json:"warmup_cycles"`
	MeasureCycles uint64 `json:"measure_cycles"`

	// Rows is the YCSB table size.
	Rows int `json:"rows"`

	// FieldSize scales YCSB tuples (paper: 100 bytes × 10 columns).
	FieldSize int `json:"field_size"`

	// NativeWarmupNS and NativeMeasureNS size the wall-clock windows of
	// the Fig. 3 native-hardware runs.
	NativeWarmupNS  uint64 `json:"native_warmup_ns"`
	NativeMeasureNS uint64 `json:"native_measure_ns"`

	// Seed makes every experiment deterministic. Every enumerated Job
	// carries this seed; the engines derive per-core streams from it.
	Seed int64 `json:"seed"`

	// LogAccounting attaches an accounting-only write-ahead log to every
	// engine-backed job (see Job.LogAccounting). The schedule is
	// unchanged, so commits/aborts/throughput are byte-identical to a run
	// without it; only breakdown fractions shift, to show the Log
	// component's share. omitempty keeps existing report metadata
	// byte-identical when the flag is off.
	LogAccounting bool `json:"log_accounting,omitempty"`
}

// Quick returns parameters that run the full suite in a few minutes.
func Quick() Params {
	return Params{
		MaxCores:        64,
		WarmupCycles:    200_000,
		MeasureCycles:   800_000,
		Rows:            16_384,
		FieldSize:       100,
		NativeWarmupNS:  5_000_000,
		NativeMeasureNS: 50_000_000,
		Seed:            42,
	}
}

// Full returns parameters approaching the paper's scale (1024 simulated
// cores). Expect tens of minutes for the whole suite.
func Full() Params {
	return Params{
		MaxCores:        1024,
		WarmupCycles:    300_000,
		MeasureCycles:   2_000_000,
		Rows:            262_144,
		FieldSize:       100,
		NativeWarmupNS:  20_000_000,
		NativeMeasureNS: 200_000_000,
		Seed:            42,
	}
}

// Ladder returns the core counts swept by scalability figures: powers of
// four up to max, always including max.
func (p Params) Ladder() []int {
	var l []int
	for c := 1; c < p.MaxCores; c *= 4 {
		l = append(l, c)
	}
	return append(l, p.MaxCores)
}

// ladderFrom is Ladder starting no lower than lo.
func (p Params) ladderFrom(lo int) []int {
	var out []int
	for _, c := range p.Ladder() {
		if c >= lo {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{p.MaxCores}
	}
	return out
}

// coreConfig builds the engine config for one data point.
func (p Params) coreConfig() core.Config {
	return core.Config{
		WarmupCycles:  p.WarmupCycles,
		MeasureCycles: p.MeasureCycles,
		AbortBackoff:  1000,
	}
}

// SchemeNames lists the six tuple-level schemes in the paper's plotting
// order; H-STORE joins in §5.5/§5.6. Both slices derive from the abyss
// scheme registry (whose paper order is the same Table 1 order), so the
// harness cannot drift from the public registry.
var SchemeNames = tupleLevel(abyss.PaperSchemes())

// AllSchemeNames includes H-STORE.
var AllSchemeNames = abyss.PaperSchemes()

// tupleLevel filters out the partition-level scheme.
func tupleLevel(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != "HSTORE" {
			out = append(out, n)
		}
	}
	return out
}

// MakeScheme builds a scheme by paper name through the public abyss
// registry — the single source of scheme wiring. T/O schemes draw
// timestamps with method m (the paper's default is non-batched atomic
// addition). Unknown names panic: inside the harness they are enumeration
// bugs, not user input (cmd/abyss-sim validates names before reaching
// here).
func MakeScheme(name string, m tsalloc.Method) core.Scheme {
	s, err := abyss.NewScheme(name, abyss.WithTSMethod(m))
	if err != nil {
		panic("bench: " + err.Error())
	}
	return s
}

// Point is one measured (x, y) pair with the full result attached. Its
// JSON form (output.go) adds the derived throughput and abort fraction.
type Point struct {
	X   float64
	Y   float64
	Res core.Result
}

// Series is one line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Breakdown is one figure's per-scheme time breakdown table (the "(b)"
// subfigures).
type Breakdown struct {
	Title string         `json:"title"`
	Rows  []BreakdownRow `json:"rows"`
}

// BreakdownRow is one scheme's six component fractions, in
// stats.Component order.
type BreakdownRow struct {
	Scheme    string                       `json:"scheme"`
	Fractions [stats.NumComponents]float64 `json:"fractions"`
}

// Figure is a rendered experiment.
type Figure struct {
	ID         string      `json:"id"`
	Title      string      `json:"title"`
	XLabel     string      `json:"x_label"`
	YLabel     string      `json:"y_label"`
	Series     []Series    `json:"series"`
	Breakdowns []Breakdown `json:"breakdowns,omitempty"`
	Notes      string      `json:"notes,omitempty"`
}

// value extracts the figure's y-value from a result; overridable per
// figure via yExtract.
type yExtract func(core.Result) float64

func throughputM(r core.Result) float64 { return r.Throughput() / 1e6 }

// Format renders the figure as an aligned text table.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", f.Notes)
	}
	if len(f.Series) > 0 {
		// Header.
		fmt.Fprintf(&b, "%-14s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %16s", s.Name)
		}
		fmt.Fprintf(&b, "    (%s)\n", f.YLabel)
		// Rows keyed by the x-values of the first series.
		for i := range f.Series[0].Points {
			fmt.Fprintf(&b, "%-14.4g", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(&b, " %16.4f", s.Points[i].Y)
				} else {
					fmt.Fprintf(&b, " %16s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, bd := range f.Breakdowns {
		fmt.Fprintf(&b, "-- %s --\n", bd.Title)
		fmt.Fprintf(&b, "%-12s", "scheme")
		for c := stats.Component(0); c < stats.NumComponents; c++ {
			fmt.Fprintf(&b, " %12s", c.String())
		}
		b.WriteByte('\n')
		for _, row := range bd.Rows {
			fmt.Fprintf(&b, "%-12s", row.Scheme)
			for _, fr := range row.Fractions {
				fmt.Fprintf(&b, " %11.1f%%", fr*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// addPoint appends a measured point with its display value.
func (s *Series) addPoint(x float64, r core.Result, f yExtract) {
	s.Points = append(s.Points, Point{X: x, Y: f(r), Res: r})
}

// breakdownRows collects the per-scheme breakdown at one data point.
func breakdownRows(results map[string]core.Result, order []string) []BreakdownRow {
	rows := make([]BreakdownRow, 0, len(order))
	for _, name := range order {
		r, ok := results[name]
		if !ok {
			continue
		}
		rows = append(rows, BreakdownRow{Scheme: name, Fractions: r.Breakdown.Fractions()})
	}
	return rows
}
