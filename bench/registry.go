package bench

import (
	"fmt"
	"strings"
)

// FigureFunc builds one experiment at the given scale, running (or
// enumerating, or replaying — see Plan) each data point through pl.
type FigureFunc func(p Params, pl *Plan) *Figure

// Experiment is one registry entry: the id accepted by `abyss-bench
// -fig`, a one-line description, and the figure function.
type Experiment struct {
	ID   string
	Desc string
	Run  FigureFunc
}

// Registry maps experiment ids (as passed to abyss-bench -fig) to their
// implementations, in the paper's order. It is the single source of
// truth for every experiment enumeration: `abyss-bench -list`, the -fig
// flag's help text, -all, and EXPERIMENTS.md all derive from it.
var Registry = []Experiment{
	{"3", "Simulator vs real hardware (YCSB, theta=0.6)", Fig3},
	{"4", "Lock thrashing (DL_DETECT without detection)", Fig4},
	{"5", "Waiting vs aborting (DL_DETECT timeout sweep)", Fig5},
	{"6", "Timestamp allocation micro-benchmark", Fig6},
	{"7", "Timestamp allocation in the DBMS", Fig7},
	{"8", "Read-only YCSB", Fig8},
	{"9", "Write-intensive YCSB, medium contention", Fig9},
	{"10", "Write-intensive YCSB, high contention", Fig10},
	{"11", "Contention (theta) sweep", Fig11},
	{"12", "Working set size", Fig12},
	{"13", "Read/write mixture", Fig13},
	{"14", "Database partitioning (H-STORE)", Fig14},
	{"15", "Multi-partition transactions", Fig15},
	{"16", "TPC-C, 4 warehouses", Fig16},
	{"17", "TPC-C, 1024 warehouses", Fig17},
	{"malloc", "Ablation: per-worker arenas vs centralized malloc", AblationMalloc},
	{"occ-validation", "Ablation: OCC parallel vs central validation", AblationValidation},
	{"adaptive", "Extension: the §6.1 DL_DETECT/NO_WAIT hybrid", ExtensionAdaptive},
	{"knee", "Extension: overload knee — open-loop offered load vs goodput", ExtensionKnee},
}

// IDs lists every registered experiment id in registry order. The -fig
// flag help, -list output and error messages all use this, so they
// cannot drift from the registry.
func IDs() []string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup finds a registry entry by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}
