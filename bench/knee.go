package bench

// The overload-knee extension: the paper's evaluation is entirely
// closed-loop (one outstanding transaction per worker), which can never
// show what happens when offered load exceeds capacity. This experiment
// drives the same write-intensive YCSB point open-loop across a fixed
// ladder of offered loads with a bounded admission queue, and plots
// goodput against offered load. Below the knee the curve tracks the
// diagonal (everything offered commits); past it, goodput plateaus at the
// scheme's capacity while admission control sheds the excess — the queue
// stays bounded instead of growing without limit.

import (
	"fmt"

	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
)

// kneeQueueDepth bounds each worker's admission queue for every knee
// point; small enough that queueing delay stays a handful of service
// times, large enough to absorb Poisson burstiness below the knee.
const kneeQueueDepth = 16

// kneeOffered is the offered-load ladder in transactions per second,
// chosen to straddle every scheme's capacity at the experiment's core
// count (16 simulated cores at 1 GHz serve roughly 2-8 Mtxn/s on this
// workload depending on the scheme). The ladder is fixed — not derived
// from measured capacity — because figure control flow must not depend
// on results (see runner.go).
var kneeOffered = []float64{250_000, 500_000, 1e6, 2e6, 4e6, 8e6, 16e6}

// kneeJob describes one open-loop point: the closed-loop YCSB job plus
// Poisson arrivals at the given offered load and a bounded admission
// queue. The arrival stream reuses the run seed, so the whole figure
// stays deterministic for a given -seed.
func (p Params) kneeJob(scheme string, cores int, rate float64) Job {
	j := p.ycsbJob(scheme, tsalloc.Atomic, cores, p.ycsbBase())
	j.YCSB.ReadPct = 0.5
	j.YCSB.Theta = 0.6
	j.Cfg.Arrivals = core.Arrivals{Process: core.ArrivalPoisson, RateTPS: rate, Seed: p.Seed}
	j.Cfg.QueueDepth = kneeQueueDepth
	j.Cfg.BackoffCap = 8_000
	return j
}

// kneeLatencySuffixes name the per-scheme commit-latency series appended
// after the goodput series: "<scheme>:lat_p50" and "<scheme>:lat_p99".
// The names are stable JSON/CSV keys — scripts select on them.
var kneeLatencySuffixes = []string{":lat_p50", ":lat_p99"}

// ExtensionKnee builds the offered-vs-goodput knee figure. The first
// len(SchemeNames) series are goodput per scheme (x = offered ktxn/s,
// y = goodput ktxn/s); they are followed by two commit-latency series per
// scheme ("<scheme>:lat_p50", "<scheme>:lat_p99", in kcycles) taken from
// the same runs' Latency histograms — engine-side arrival-to-commit
// latency including queueing delay, independent of any wire transport.
func ExtensionKnee(p Params, pl *Plan) *Figure {
	cores := p.capCores(16)
	fig := &Figure{
		ID:     "Knee",
		Title:  fmt.Sprintf("Overload knee: offered load vs goodput (YCSB theta=0.6, %d cores, queue depth %d)", cores, kneeQueueDepth),
		XLabel: "offered ktxn/s",
		YLabel: "goodput ktxn/s",
		Notes:  "open-loop Poisson arrivals with bounded admission queues; below the knee goodput tracks offered load, past it admission control sheds the excess; the :lat_p50/:lat_p99 series give commit latency per rung in kcycles (arrival to commit, queueing included)",
	}
	// Each (scheme, rate) job runs exactly once; the goodput and latency
	// series share the stored Results. Plan replay (runner.go) requires
	// the pl.Run sequence to be identical across phases, so the latency
	// series must not issue runs of their own.
	results := make([][]core.Result, len(SchemeNames))
	for i, name := range SchemeNames {
		s := Series{Name: name}
		for _, rate := range kneeOffered {
			r := pl.Run(p.kneeJob(name, cores, rate))
			results[i] = append(results[i], r)
			s.addPoint(rate/1e3, r, func(r core.Result) float64 { return r.GoodputTPS() / 1e3 })
		}
		fig.Series = append(fig.Series, s)
	}
	for i, name := range SchemeNames {
		p50 := Series{Name: name + kneeLatencySuffixes[0]}
		p99 := Series{Name: name + kneeLatencySuffixes[1]}
		for j, rate := range kneeOffered {
			r := results[i][j]
			p50.addPoint(rate/1e3, r, func(r core.Result) float64 { return float64(r.Latency.P50()) / 1e3 })
			p99.addPoint(rate/1e3, r, func(r core.Result) float64 { return float64(r.Latency.P99()) / 1e3 })
		}
		fig.Series = append(fig.Series, p50, p99)
	}
	return fig
}
