package bench

import (
	"fmt"
	"strings"
	"sync/atomic"

	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/wal"
	"abyss1000/internal/workload/tpcc"
	"abyss1000/internal/workload/ycsb"
)

// GoldenSignature runs a fixed small YCSB and TPC-C mix on the simulator and
// returns the complete deterministic signature of the results: commits,
// aborts, tuples and every raw breakdown bucket, one line per scheme. Two
// properties are load-bearing:
//
//   - It is byte-identical across runs of the same binary (simulator
//     determinism), which determinism_test.go asserts.
//   - It is byte-identical across engine rewrites that claim to preserve
//     scheduling semantics, which testdata/golden_sim.txt pins. If a PR
//     intentionally changes the timing model, regenerate the file with
//     `go run ./cmd/goldencheck > testdata/golden_sim.txt` and say so in
//     the PR; an unexplained diff is a scheduling regression.
func GoldenSignature() string {
	return GoldenSignatureObserved(0, nil)
}

// GoldenSignatureObserved is GoldenSignature with interval sampling
// enabled on every run (every > 0 and obs non-nil). Because sampling is
// accounting-only, the returned signature must be byte-identical to
// GoldenSignature() — the observer-determinism regression test pins
// exactly that.
func GoldenSignatureObserved(every uint64, obs core.Observer) string {
	return goldenSignature(every, obs, false, false)
}

// GoldenSignatureDurable is GoldenSignature with an accounting-only
// write-ahead log (in-memory sink, synchronous group commit) attached to
// every run. The sim WAL path never advances the simulated clock — it
// only bills the Log breakdown bucket, which the signature excludes — so
// the returned string must be byte-identical to GoldenSignature(); the
// walprop durability tests pin exactly that.
func GoldenSignatureDurable() string {
	return goldenSignature(0, nil, true, false)
}

// GoldenSignatureCaptured is GoldenSignature with serializability history
// capture (core.Config.Capture) enabled on every run. Capture is
// accounting-only like the WAL — it never ticks, syncs or latches — so
// the returned string must be byte-identical to GoldenSignature(); the
// capture determinism test pins exactly that.
func GoldenSignatureCaptured() string {
	return goldenSignature(0, nil, false, true)
}

// GoldenSignatureOverloadOff is GoldenSignature with the overload tier's
// plumbing attached but every knob at zero: a live (never-set) Stop flag
// and a fault injector that always returns zero delay, with the closed
// loop, no queue bound, no deadline and no retry budget. The overload
// tier promises that disengaged knobs leave the paper's closed-loop
// schedule untouched — the returned string must be byte-identical to
// GoldenSignature(), which the overload golden test pins.
func GoldenSignatureOverloadOff() string {
	return goldenSignature(0, nil, false, false, overloadOff)
}

// zeroFault is a fault injector that never injects: the worker loop sees
// a non-nil Fault (so the overload code path is live) but zero delay.
type zeroFault struct{}

// Delay implements core.FaultInjector.
func (zeroFault) Delay(int, uint64) uint64 { return 0 }

// overloadOff wires the overload tier into a config without engaging it.
func overloadOff(cfg *core.Config) {
	cfg.Stop = new(atomic.Bool)
	cfg.Fault = zeroFault{}
}

func goldenSignature(every uint64, obs core.Observer, durable, captured bool, mutate ...func(*core.Config)) string {
	var b strings.Builder
	cfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 200_000, AbortBackoff: 1000, SampleEvery: every, Capture: captured}
	for _, m := range mutate {
		m(&cfg)
	}
	attach := func(db *core.DB) {
		if durable {
			db.Wal = wal.NewWriter(wal.NewMemSink(), wal.Config{})
		}
	}
	for _, scheme := range []string{"DL_DETECT", "NO_WAIT", "WAIT_DIE", "TIMESTAMP", "MVCC", "OCC", "HSTORE"} {
		eng := sim.New(16, 42)
		db := core.NewDB(eng)
		attach(db)
		ycfg := ycsb.DefaultConfig()
		ycfg.Rows = 4096
		ycfg.ReqPerTxn = 8
		if scheme == "HSTORE" {
			ycfg.Partitioned = true
			ycfg.MPFraction = 0.1
			ycfg.MPParts = 2
		}
		wl := ycsb.Build(db, ycfg)
		writeSig(&b, "ycsb/"+scheme, core.RunObserved(db, MakeScheme(scheme, tsalloc.Atomic), wl, cfg, obs))
	}
	for _, scheme := range []string{"DL_DETECT", "NO_WAIT", "TIMESTAMP", "MVCC"} {
		eng := sim.New(8, 7)
		db := core.NewDB(eng)
		attach(db)
		wl := tpcc.Build(db, tpcc.DefaultConfig(4))
		writeSig(&b, "tpcc/"+scheme, core.RunObserved(db, MakeScheme(scheme, tsalloc.Atomic), wl, cfg, obs))
	}
	return b.String()
}

func writeSig(b *strings.Builder, label string, r core.Result) {
	fmt.Fprintf(b, "%s commits=%d aborts=%d tuples=%d", label, r.Commits, r.Aborts, r.Tuples)
	// Only the paper's six components are part of the signature: the Log
	// extension is accounting-only by construction (it never advances the
	// simulated clock), so the signature must stay byte-identical whether
	// durability logging is off or on — walprop tests pin exactly that.
	for c := stats.Component(0); c < stats.NumPaperComponents; c++ {
		fmt.Fprintf(b, " %s=%d", c, r.Breakdown.Get(c))
	}
	b.WriteByte('\n')
}
