package bench

import (
	"fmt"

	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
)

// Fig14 reproduces "Database Partitioning": a partitioned YCSB database
// with as many partitions as cores and single-partition transactions.
// H-STORE's coarse locks make per-tuple CC overhead vanish, so it leads
// until timestamp allocation catches it at high core counts.
func Fig14(p Params, pl *Plan) *Figure {
	fig := &Figure{
		ID:     "Fig 14",
		Title:  "Database Partitioning (partitioned YCSB, single-partition txns, uniform)",
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, name := range AllSchemeNames {
		s := Series{Name: name}
		for _, c := range p.Ladder() {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 1.0
			ycfg.Theta = 0
			ycfg.Partitioned = true
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, c, ycfg))
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig15 reproduces "Multi-Partition Transactions": (a) H-STORE's
// throughput versus the fraction of multi-partition transactions, for a
// read-only and a read-write mix; (b) throughput versus partitions
// accessed per multi-partition transaction across core counts.
func Fig15(p Params, pl *Plan) *Figure {
	cores := p.capCores(64)
	fig := &Figure{
		ID:     "Fig 15",
		Title:  "Multi-Partition Transactions (H-STORE)",
		XLabel: "mp-fraction",
		YLabel: "Mtxn/s",
		Notes:  fmt.Sprintf("(a) at %d cores; (b) series sweep partitions/txn with 10%% MP transactions", cores),
	}
	for _, mix := range []struct {
		name    string
		readPct float64
	}{
		{"(a) readonly", 1.0},
		{"(a) readwrite", 0.5},
	} {
		s := Series{Name: mix.name}
		for _, mp := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = mix.readPct
			ycfg.Theta = 0
			ycfg.Partitioned = true
			ycfg.MPFraction = mp
			ycfg.MPParts = 2
			r := pl.Run(p.ycsbJob("HSTORE", tsalloc.Atomic, cores, ycfg))
			s.addPoint(mp, r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}

	// (b): partitions-per-transaction sweep across the ladder.
	for _, parts := range []int{1, 2, 4, 8, 16} {
		s := Series{Name: fmt.Sprintf("(b) part=%d", parts)}
		for _, c := range p.ladderFrom(16) {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = 0
			ycfg.Partitioned = true
			if parts == 1 {
				ycfg.MPFraction = 0
			} else {
				ycfg.MPFraction = 0.1
				ycfg.MPParts = parts
			}
			r := pl.Run(p.ycsbJob("HSTORE", tsalloc.Atomic, c, ycfg))
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// tpccParams scales the TPC-C database for a bench run.
func (p Params) tpccConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig(warehouses)
	if warehouses >= 256 {
		// Keep 1024-warehouse databases laptop-sized, as the paper
		// itself shrank per-warehouse data (§5.6).
		cfg.CustomersPerDistrict = 60
		cfg.Items = 200
	}
	cfg.InsertsPerWorker = int(p.MeasureCycles/2000) + 1024
	return cfg
}

// tpccAcrossLadder sweeps all schemes for one TPC-C mix.
func (p Params) tpccAcrossLadder(pl *Plan, id, title string, warehouses int, paymentPct float64, maxCores int) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, name := range AllSchemeNames {
		s := Series{Name: name}
		for _, c := range p.Ladder() {
			if c > maxCores {
				break
			}
			tcfg := p.tpccConfig(warehouses)
			tcfg.PaymentPct = paymentPct
			r := pl.Run(p.tpccJob(name, c, tcfg))
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig16 reproduces "TPC-C (4 warehouses)": more workers than warehouses,
// so Payment's W_YTD update serializes everything.
func Fig16(p Params, pl *Plan) *Figure {
	max := p.capCores(256)
	f := &Figure{ID: "Fig 16", Title: "TPC-C, 4 warehouses", XLabel: "cores", YLabel: "Mtxn/s"}
	subs := []struct {
		title      string
		paymentPct float64
	}{
		{"(a) Payment+NewOrder", 0.5},
		{"(b) Payment only", 1.0},
		{"(c) NewOrder only", 0.0},
	}
	for _, sub := range subs {
		g := p.tpccAcrossLadder(pl, "", "", 4, sub.paymentPct, max)
		for i := range g.Series {
			g.Series[i].Name = sub.title + " " + g.Series[i].Name
			f.Series = append(f.Series, g.Series[i])
		}
	}
	return f
}

// Fig17 reproduces "TPC-C (1024 warehouses)": warehouses >= workers
// removes the Payment hotspot; T/O schemes then hit timestamp allocation
// and H-STORE leads on partitioning.
func Fig17(p Params, pl *Plan) *Figure {
	warehouses := p.MaxCores
	if warehouses < 64 {
		warehouses = 64
	}
	f := &Figure{
		ID:     "Fig 17",
		Title:  fmt.Sprintf("TPC-C, %d warehouses (>= workers, as the paper's 1024)", warehouses),
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	subs := []struct {
		title      string
		paymentPct float64
	}{
		{"(a) Payment+NewOrder", 0.5},
		{"(b) Payment only", 1.0},
		{"(c) NewOrder only", 0.0},
	}
	for _, sub := range subs {
		g := p.tpccAcrossLadder(pl, "", "", warehouses, sub.paymentPct, p.MaxCores)
		for i := range g.Series {
			g.Series[i].Name = sub.title + " " + g.Series[i].Name
			f.Series = append(f.Series, g.Series[i])
		}
	}
	return f
}

// Table2 renders the paper's bottleneck summary beside this
// reproduction's measured evidence at the quick scale.
func Table2(p Params) string {
	return `== Table 2: Bottleneck summary (paper's findings, reproduced) ==
 DL_DETECT   Scales under low contention. Suffers from lock thrashing.
             [evidence: Fig 4 collapse at theta>=0.6; Fig 9/10 WAIT share]
 NO_WAIT     No centralized contention point. Highly scalable. Very high abort rate.
             [evidence: Fig 9a leader; Fig 5 abort fraction at timeout=0]
 WAIT_DIE    Suffers from lock thrashing and the timestamp bottleneck.
             [evidence: Fig 9a below NO_WAIT; TsAlloc share in Fig 12b]
 TIMESTAMP   High overhead from copying data locally. Non-blocking writes.
             Suffers from the timestamp bottleneck.
             [evidence: Fig 8a gap to 2PL; Fig 12b TsAlloc share]
 MVCC        Performs well with read-intensive workloads. Non-blocking reads
             and writes. Suffers from the timestamp bottleneck.
             [evidence: Fig 13 peak near read-heavy mixes]
 OCC         High overhead for copying data locally. High abort cost.
             Suffers from the timestamp bottleneck (2 allocations/txn).
             [evidence: Fig 8a lowest; Fig 10b Abort share]
 HSTORE      Best for partitioned workloads. Suffers from multi-partition
             transactions and the timestamp bottleneck.
             [evidence: Fig 14 leader; Fig 15a decline with MP fraction]
`
}

// ExtensionAdaptive evaluates the §6.1 proposal ("switch between [scheme
// classes] based on the workload"): the ADAPTIVE hybrid against its two
// ingredients across the contention sweep. The hybrid should track
// DL_DETECT at low theta and NO_WAIT once thrashing sets in.
func ExtensionAdaptive(p Params, pl *Plan) *Figure {
	cores := p.capCores(64)
	fig := &Figure{
		ID:     "Extension: adaptive",
		Title:  fmt.Sprintf("§6.1 hybrid: ADAPTIVE vs DL_DETECT vs NO_WAIT (write-intensive, %d cores)", cores),
		XLabel: "theta",
		YLabel: "Mtxn/s",
	}
	for _, name := range []string{"DL_DETECT", "NO_WAIT", "ADAPTIVE"} {
		s := Series{Name: name}
		for _, theta := range []float64{0, 0.4, 0.6, 0.7, 0.8} {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = theta
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, cores, ycfg))
			s.addPoint(theta, r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// AblationValidation reproduces the §4.3 "Distributed Validation" claim:
// the same OCC workload with parallelized per-tuple validation versus the
// original algorithm's single global validation critical section.
func AblationValidation(p Params, pl *Plan) *Figure {
	fig := &Figure{
		ID:     "Ablation: occ-validation",
		Title:  "OCC parallel validation vs global critical section (YCSB theta=0.6, write-intensive)",
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, mode := range []struct {
		name   string
		scheme string
	}{
		{"parallel", "OCC"},
		{"central", "OCC_CENTRAL"},
	} {
		s := Series{Name: mode.name}
		for _, c := range p.Ladder() {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = 0.6
			r := pl.Run(p.ycsbJob(mode.scheme, tsalloc.Atomic, c, ycfg))
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// AblationMalloc reproduces the §4.1 memory-allocator finding: the same
// TIMESTAMP workload (whose reads allocate copies constantly) with
// per-worker arenas versus one centralized allocator.
func AblationMalloc(p Params, pl *Plan) *Figure {
	cores := p.capCores(64)
	fig := &Figure{
		ID:     "Ablation: malloc",
		Title:  fmt.Sprintf("Per-worker arenas vs centralized malloc (TIMESTAMP, read-only YCSB, %d cores ladder)", cores),
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, mode := range []string{"arena", "global-malloc"} {
		s := Series{Name: mode}
		for _, c := range p.Ladder() {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 1.0
			ycfg.Theta = 0
			j := p.ycsbJob("TIMESTAMP", tsalloc.Atomic, c, ycfg)
			j.GlobalMalloc = mode == "global-malloc"
			r := pl.Run(j)
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
