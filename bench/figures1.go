package bench

import (
	"fmt"
	"runtime"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/ycsb"
)

// ycsbBase returns the standard YCSB configuration for params p.
func (p Params) ycsbBase() ycsb.Config {
	cfg := ycsb.DefaultConfig()
	cfg.Rows = p.Rows
	cfg.FieldSize = p.FieldSize
	return cfg
}

// Fig3 reproduces "Simulator vs. Real Hardware": the same read-intensive
// medium-contention YCSB workload under every scheme, once on the
// simulator and once on real goroutines, up to the host's core count. The
// claim under test is trend agreement, not absolute speed. The native
// points are wall-clock measurements, so their jobs are Exclusive (the
// runner never overlaps them with other work) and their values vary
// run-to-run even at a fixed seed.
func Fig3(p Params, pl *Plan) *Figure {
	ycfg := p.ycsbBase()
	ycfg.ReadPct = 0.9
	ycfg.Theta = 0.6

	maxNative := runtime.GOMAXPROCS(0)
	if maxNative > 32 {
		maxNative = 32
	}
	var cores []int
	for c := 1; c <= maxNative; c *= 2 {
		cores = append(cores, c)
	}

	fig := &Figure{
		ID:     "Fig 3",
		Title:  "Simulator vs. Real Hardware (YCSB read-intensive, theta=0.6)",
		XLabel: "cores",
		YLabel: "Mtxn/s",
		Notes:  fmt.Sprintf("native columns ran on this host (%d hardware threads); compare trends, not magnitudes", runtime.NumCPU()),
	}
	for _, name := range SchemeNames {
		simSeries := Series{Name: "sim:" + name}
		natSeries := Series{Name: "native:" + name}
		for _, c := range cores {
			r := pl.Run(p.ycsbJob(name, tsalloc.Atomic, c, ycfg))
			simSeries.addPoint(float64(c), r, throughputM)

			nr := pl.Run(p.nativeJob(name, c, ycfg))
			natSeries.addPoint(float64(c), nr, throughputM)
		}
		fig.Series = append(fig.Series, simSeries, natSeries)
	}
	return fig
}

// Fig4 reproduces "Lock Thrashing": DL_DETECT with detection disabled,
// transactions acquiring locks in primary-key order, under three
// contention levels. Throughput climbs then collapses as core counts and
// skew grow — the fundamental 2PL bottleneck.
func Fig4(p Params, pl *Plan) *Figure {
	fig := &Figure{
		ID:     "Fig 4",
		Title:  "Lock Thrashing (DL_DETECT, no detection, key-ordered acquisition, write-intensive YCSB)",
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, theta := range []float64{0, 0.6, 0.8} {
		ycfg := p.ycsbBase()
		ycfg.ReadPct = 0.5
		ycfg.Theta = theta
		ycfg.Ordered = true
		s := Series{Name: fmt.Sprintf("theta=%.1f", theta)}
		for _, c := range p.Ladder() {
			r := pl.Run(p.timeoutJob(twopl.NoTimeout, true, c, ycfg))
			s.addPoint(float64(c), r, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig5 reproduces "Waiting vs. Aborting": DL_DETECT under high contention
// at 64 cores, sweeping the wait timeout from 0 (equivalent to NO_WAIT)
// upward. Short timeouts trade abort rate for throughput.
func Fig5(p Params, pl *Plan) *Figure {
	ycfg := p.ycsbBase()
	ycfg.ReadPct = 0.5
	ycfg.Theta = 0.8
	cores := 64
	if cores > p.MaxCores {
		cores = p.MaxCores
	}

	fig := &Figure{
		ID:     "Fig 5",
		Title:  fmt.Sprintf("Waiting vs. Aborting (DL_DETECT, theta=0.8, %d cores)", cores),
		XLabel: "timeout(us)",
		YLabel: "Mtxn/s / abort-fraction",
		Notes:  "timeouts beyond the measurement window behave as infinite waiting",
	}
	thr := Series{Name: "throughput"}
	abr := Series{Name: "abort-fraction"}
	for _, timeout := range []uint64{0, 1_000, 10_000, 100_000, 1_000_000} {
		r := pl.Run(p.timeoutJob(timeout, false, cores, ycfg))
		x := float64(timeout) / 1000.0 // cycles -> µs at 1 GHz
		thr.addPoint(x, r, throughputM)
		abr.addPoint(x, r, func(r core.Result) float64 { return r.AbortFraction() })
	}
	fig.Series = append(fig.Series, thr, abr)
	return fig
}

// Fig6 reproduces the timestamp-allocation micro-benchmark: every worker
// allocates timestamps back-to-back; throughput per method versus core
// count. The atomic counter plateaus on coherence traffic, the hardware
// counter reaches ~1 ts/cycle, the clock scales linearly.
func Fig6(p Params, pl *Plan) *Figure {
	fig := &Figure{
		ID:     "Fig 6",
		Title:  "Timestamp Allocation Micro-benchmark",
		XLabel: "cores",
		YLabel: "Mts/s",
	}
	for _, m := range tsalloc.Methods {
		s := Series{Name: m.String()}
		for _, c := range p.Ladder() {
			res := pl.Run(p.tsallocJob(m, c))
			s.addPoint(float64(c), res, throughputM)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig7 reproduces "Timestamp Allocation (in the DBMS)": the TIMESTAMP
// scheme on write-intensive YCSB with each allocation method, at zero and
// medium contention. Batched allocation collapses under contention
// because restarted transactions keep drawing stale-batch timestamps.
func Fig7(p Params, pl *Plan) *Figure {
	fig := &Figure{
		ID:     "Fig 7",
		Title:  "Timestamp Allocation in the DBMS (YCSB write-intensive, TIMESTAMP)",
		XLabel: "cores",
		YLabel: "Mtxn/s",
	}
	for _, sub := range []struct {
		label string
		theta float64
	}{
		{"(a) no contention", 0},
		{"(b) medium contention", 0.6},
	} {
		for _, m := range tsalloc.Methods {
			ycfg := p.ycsbBase()
			ycfg.ReadPct = 0.5
			ycfg.Theta = sub.theta
			s := Series{Name: fmt.Sprintf("%s %s", sub.label, m)}
			for _, c := range p.Ladder() {
				r := pl.Run(p.ycsbJob("TIMESTAMP", m, c, ycfg))
				s.addPoint(float64(c), r, throughputM)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}
