package query_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"abyss1000/abyss"
	"abyss1000/query"
)

// fixture is a two-table schema for operator tests: EMP(ID, DEPT, SAL)
// with an ordered index on CompositeKey(DEPT, ID), and DEPT(ID, BUDGET).
type fixture struct {
	emp, dept *abyss.Table
	byDept    *abyss.OrderedIndex
}

const (
	nEmp  = 40
	nDept = 4
)

// empRow returns employee i's columns: id, dept, salary. Deterministic so
// tests can compute expected results independently.
func empRow(i int) (id, dept, sal uint64) {
	return uint64(i), uint64(i % nDept), uint64(1000 + (i*37)%500)
}

func buildFixture(t *testing.T, db *abyss.DB) *fixture {
	t.Helper()
	f := &fixture{}
	var err error
	f.emp, err = db.CreateTable(abyss.TableSpec{
		Name:     "EMP",
		Cols:     []abyss.Col{{Name: "ID", Width: 8}, {Name: "DEPT", Width: 8}, {Name: "SAL", Width: 8}, {Name: "PAD", Width: 16}},
		Capacity: nEmp, Loaded: nEmp,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.dept, err = db.CreateTable(abyss.TableSpec{
		Name:     "DEPT",
		Cols:     []abyss.Col{{Name: "ID", Width: 8}, {Name: "BUDGET", Width: 8}},
		Capacity: nDept, Loaded: nDept,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.byDept, err = db.CreateOrderedIndex("EMP_BY_DEPT", f.emp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nEmp; i++ {
		id, dept, sal := empRow(i)
		row := f.emp.LoadRow(i)
		f.emp.Schema.PutU64(row, 0, id)
		f.emp.Schema.PutU64(row, 1, dept)
		f.emp.Schema.PutU64(row, 2, sal)
		f.byDept.LoadInsert(abyss.CompositeKey(0, 0, dept, id), i)
	}
	for d := 0; d < nDept; d++ {
		row := f.dept.LoadRow(d)
		f.dept.Schema.PutU64(row, 0, uint64(d))
		f.dept.Schema.PutU64(row, 1, uint64(10_000*(d+1)))
	}
	return f
}

// checkTxn runs body as the only transaction of a single-core run; body
// errors fail the test.
type checkTxn struct {
	body func(tx *abyss.TxnCtx) error
}

func (c *checkTxn) Run(tx *abyss.TxnCtx) error { return c.body(tx) }
func (c *checkTxn) Partitions() []int          { return nil }

type checkWorkload struct{ txn *checkTxn }

func (w *checkWorkload) Next(p abyss.Proc) abyss.Txn { return w.txn }

// runQueries executes body repeatedly through the engine (NO_WAIT, one
// simulated core) and fails the test on any error.
func runQueries(t *testing.T, body func(f *fixture, tx *abyss.TxnCtx) error) {
	t.Helper()
	db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := buildFixture(t, db)
	scheme, err := abyss.NewScheme("NO_WAIT")
	if err != nil {
		t.Fatal(err)
	}
	wl := &checkWorkload{txn: &checkTxn{
		body: func(tx *abyss.TxnCtx) error { return body(f, tx) },
	}}
	res, err := db.Run(scheme, wl, abyss.RunConfig{WarmupCycles: 5_000, MeasureCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("query transactions never committed")
	}
}

func TestScanFilterProject(t *testing.T) {
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		got, err := query.Scan(f.emp).
			Filter(func(tu query.Tuple) bool { return tu[2] >= 1400 }).
			Project(0).
			Collect(tx)
		if err != nil {
			return err
		}
		var want []query.Tuple
		for i := 0; i < nEmp; i++ {
			if id, _, sal := empRow(i); sal >= 1400 {
				want = append(want, query.Tuple{id})
			}
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("scan/filter/project = %v, want %v", got, want)
		}
		return nil
	})
}

func TestIndexRangeScansOneDepartment(t *testing.T) {
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		const dept = 2
		lo := abyss.CompositeKey(0, 0, dept, 0)
		hi := abyss.CompositeKey(0, 0, dept, 0xffff)
		got, err := query.IndexRange(f.byDept, lo, hi).Collect(tx)
		if err != nil {
			return err
		}
		var wantIDs []uint64
		for i := 0; i < nEmp; i++ {
			if id, d, _ := empRow(i); d == dept {
				wantIDs = append(wantIDs, id)
			}
		}
		if len(got) != len(wantIDs) {
			return fmt.Errorf("index range returned %d rows, want %d", len(got), len(wantIDs))
		}
		for j, tu := range got {
			if tu[0] != wantIDs[j] || tu[1] != dept {
				return fmt.Errorf("row %d = %v, want id %d dept %d", j, tu, wantIDs[j], dept)
			}
		}
		return nil
	})
}

func TestJoinVariantsAgree(t *testing.T) {
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		// DEPT ⋈ EMP on dept id, both as a nested-loop join and as an
		// index-nested-loop join over the ordered index: identical output
		// modulo order, and every pair joins correctly.
		nested, err := query.Scan(f.dept).
			Join(query.Scan(f.emp), func(l, r query.Tuple) bool { return l[0] == r[1] }).
			Collect(tx)
		if err != nil {
			return err
		}
		indexed, err := query.Scan(f.dept).
			JoinIndex(f.byDept, func(l query.Tuple) (uint64, uint64) {
				return abyss.CompositeKey(0, 0, l[0], 0), abyss.CompositeKey(0, 0, l[0], 0xffff)
			}).
			Collect(tx)
		if err != nil {
			return err
		}
		if len(nested) != nEmp || len(indexed) != nEmp {
			return fmt.Errorf("join sizes: nested %d, indexed %d, want %d", len(nested), len(indexed), nEmp)
		}
		key := func(tu query.Tuple) string { return fmt.Sprint([]uint64(tu)) }
		seen := map[string]int{}
		for _, tu := range nested {
			if tu[0] != tu[3] {
				return fmt.Errorf("nested join emitted non-matching pair %v", tu)
			}
			seen[key(tu)]++
		}
		for _, tu := range indexed {
			if seen[key(tu)] == 0 {
				return fmt.Errorf("index join emitted %v, absent from nested join", tu)
			}
			seen[key(tu)]--
		}
		return nil
	})
}

func TestGroupAggregates(t *testing.T) {
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		// Sum of salaries per department, grouped over a full scan. Scan
		// order makes first-appearance order 0,1,2,3.
		got, err := query.Scan(f.emp).
			Group(func(tu query.Tuple) uint64 { return tu[1] },
				func(acc, tu query.Tuple) query.Tuple {
					if acc == nil {
						acc = query.Tuple{tu[1], 0, 0}
					}
					acc[1] += tu[2] // sum
					acc[2]++        // count
					return acc
				}).
			Collect(tx)
		if err != nil {
			return err
		}
		want := make([]query.Tuple, nDept)
		for i := 0; i < nEmp; i++ {
			_, d, sal := empRow(i)
			if want[d] == nil {
				want[d] = query.Tuple{d, 0, 0}
			}
			want[d][1] += sal
			want[d][2]++
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("group = %v, want %v", got, want)
		}
		return nil
	})
}

func TestOrderByLimit(t *testing.T) {
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		got, err := query.Scan(f.emp).
			OrderBy(func(a, b query.Tuple) bool { return a[2] > b[2] }).
			Limit(3).
			Project(2).
			Collect(tx)
		if err != nil {
			return err
		}
		var sals []uint64
		for i := 0; i < nEmp; i++ {
			_, _, sal := empRow(i)
			sals = append(sals, sal)
		}
		sort.Slice(sals, func(i, j int) bool { return sals[i] > sals[j] })
		if len(got) != 3 {
			return fmt.Errorf("limit 3 emitted %d tuples", len(got))
		}
		for j := 0; j < 3; j++ {
			if got[j][0] != sals[j] {
				return fmt.Errorf("top-3 salaries = %v, want prefix %v", got, sals[:3])
			}
		}
		return nil
	})
}

func TestEmitErrorStopsRun(t *testing.T) {
	sentinel := errors.New("stop")
	runQueries(t, func(f *fixture, tx *abyss.TxnCtx) error {
		pulled := 0
		err := query.Scan(f.emp).Run(tx, func(query.Tuple) error {
			pulled++
			if pulled == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			return fmt.Errorf("Run returned %v, want sentinel", err)
		}
		if pulled != 2 {
			return fmt.Errorf("emit called %d times after error, want 2", pulled)
		}
		// The transaction itself continues and commits: an emit error is
		// the caller's control flow, not an engine abort.
		return nil
	})
}

func TestLimitReadsLazily(t *testing.T) {
	// A Limit over an index range must stop pulling row reads after n
	// tuples: verify via Tuples accounting that a limited plan reads
	// fewer rows than the full scan.
	count := func(limit int) uint64 {
		db, err := abyss.Open(abyss.Options{Runtime: abyss.RuntimeSim, Cores: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		f := buildFixture(t, db)
		scheme, err := abyss.NewScheme("NO_WAIT")
		if err != nil {
			t.Fatal(err)
		}
		plan := query.IndexRange(f.byDept, 0, ^uint64(0))
		if limit > 0 {
			plan = plan.Limit(limit)
		}
		wl := &checkWorkload{txn: &checkTxn{body: func(tx *abyss.TxnCtx) error {
			_, err := plan.Collect(tx)
			return err
		}}}
		res, err := db.Run(scheme, wl, abyss.RunConfig{WarmupCycles: 5_000, MeasureCycles: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Commits == 0 {
			t.Fatal("no commits")
		}
		return res.Tuples / res.Commits
	}
	full, limited := count(0), count(2)
	if limited >= full {
		t.Fatalf("Limit(2) read %d rows per txn, full scan %d: limit is not lazy", limited, full)
	}
	if limited != 2 {
		t.Fatalf("Limit(2) read %d rows per txn, want 2", limited)
	}
}
