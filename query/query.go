// Package query is a small iterator-model (Volcano-style) relational
// operator layer over the abyss public API. A Plan is a composable tree
// of lazy pull operators — table and index-range scans at the leaves,
// filter/project/join/group/order/limit above them — that executes inside
// a transaction: every tuple access goes through the transaction context,
// so it pays the concurrency-control protocol's costs (locks, timestamp
// checks, version lookups), can abort like any hand-written row access,
// and is captured in the histories the serializability checker verifies.
//
// The package imports only abyss1000/abyss, so stored procedures built
// from plans run identically on the simulator and the native runtime and
// under every scheme. Plans are immutable and reusable: build once at
// setup, Run per transaction.
//
// Plans read the leading fixed-width uint64 columns of each row into a
// Tuple (every engine schema places its word columns first and padding
// last); wider payload columns stay in the row and are not visible to
// operators. Range scans are latch-consistent, not serializable — no
// scheme implements next-key locking, so phantoms are possible under
// every scheme (see workloads/chaos for the conformance discussion).
package query

import (
	"sort"

	"abyss1000/abyss"
)

// Tuple is one row's decoded word columns. Joins concatenate the left
// tuple's columns before the right's; operators index columns by
// position.
type Tuple []uint64

// step pulls the next tuple from an opened operator: (tuple, true, nil)
// while tuples remain, (nil, false, nil) at end, and a non-nil error —
// abyss.ErrAbort from concurrency control, or the caller's own — stops
// the plan and propagates out of Run unchanged.
type step func() (Tuple, bool, error)

// Plan is an executable operator tree. The zero value is not a valid
// Plan; build leaves with Scan or IndexRange and wrap them with the
// combinator methods.
type Plan struct {
	open func(tx *abyss.TxnCtx) (step, error)
}

// wordCols counts the leading 8-byte columns of t's schema — the prefix a
// Tuple decodes.
func wordCols(t *abyss.Table) int {
	n := 0
	for _, c := range t.Schema.Cols {
		if c.Width != 8 {
			break
		}
		n++
	}
	return n
}

func decode(t *abyss.Table, row []byte, ncols int) Tuple {
	tup := make(Tuple, ncols)
	for i := range tup {
		tup[i] = t.Schema.GetU64(row, i)
	}
	return tup
}

// Scan is a full scan of t's setup-time rows, in slot order. Every row is
// read through the transaction (one concurrency-controlled read per
// tuple pulled). Rows inserted at runtime are not visited — they are
// reachable through an index scan over an index that covers them.
func Scan(t *abyss.Table) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		slot, loaded, ncols := 0, t.Loaded(), wordCols(t)
		return func() (Tuple, bool, error) {
			if slot >= loaded {
				return nil, false, nil
			}
			row, err := tx.Read(t, slot)
			if err != nil {
				return nil, false, err
			}
			tup := decode(t, row, ncols)
			slot++
			return tup, true, nil
		}, nil
	}}
}

// IndexRange scans o for keys in [lo, hi], in ascending key order. The
// key→slot pairs are collected when the plan opens (one latched index
// scan, billed to the INDEX component); the rows themselves are read
// through the transaction lazily, one concurrency-controlled read per
// tuple pulled, so a Limit above the scan reads only the rows it emits.
func IndexRange(o *abyss.OrderedIndex, lo, hi uint64) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		entries := tx.RangeScan(o, lo, hi)
		t, ncols, i := o.Table(), wordCols(o.Table()), 0
		return func() (Tuple, bool, error) {
			if i >= len(entries) {
				return nil, false, nil
			}
			row, err := tx.Read(t, int(entries[i].Slot))
			if err != nil {
				return nil, false, err
			}
			tup := decode(t, row, ncols)
			i++
			return tup, true, nil
		}, nil
	}}
}

// Filter keeps the tuples pred accepts.
func (p *Plan) Filter(pred func(Tuple) bool) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		next, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		return func() (Tuple, bool, error) {
			for {
				t, ok, err := next()
				if err != nil || !ok {
					return nil, false, err
				}
				if pred(t) {
					return t, true, nil
				}
			}
		}, nil
	}}
}

// Project maps each tuple to the given columns, in the given order.
func (p *Plan) Project(cols ...int) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		next, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		return func() (Tuple, bool, error) {
			t, ok, err := next()
			if err != nil || !ok {
				return nil, false, err
			}
			out := make(Tuple, len(cols))
			for j, c := range cols {
				out[j] = t[c]
			}
			return out, true, nil
		}, nil
	}}
}

// Join is a nested-loop join: for every left tuple the right plan is
// re-opened and scanned in full, emitting the concatenation of every
// pair on accepts (nil on means a cross product). The right side re-pays
// its read costs per left tuple — exactly what a nested-loop join costs;
// use JoinIndex when an ordered index can bound the inner side.
func (p *Plan) Join(right *Plan, on func(l, r Tuple) bool) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		lnext, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		var l Tuple
		var rnext step
		return func() (Tuple, bool, error) {
			for {
				if rnext == nil {
					var ok bool
					var err error
					if l, ok, err = lnext(); err != nil || !ok {
						return nil, false, err
					}
					if rnext, err = right.open(tx); err != nil {
						return nil, false, err
					}
				}
				r, ok, err := rnext()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					rnext = nil
					continue
				}
				if on == nil || on(l, r) {
					out := make(Tuple, 0, len(l)+len(r))
					return append(append(out, l...), r...), true, nil
				}
			}
		}, nil
	}}
}

// JoinIndex is an index-nested-loop join: for every left tuple, span maps
// it to a key range, o is range-scanned for that range, and the matching
// rows of o's table are read and concatenated onto the left tuple. Each
// left tuple pays one index scan plus one concurrency-controlled read per
// match.
func (p *Plan) JoinIndex(o *abyss.OrderedIndex, span func(l Tuple) (lo, hi uint64)) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		lnext, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		t, ncols := o.Table(), wordCols(o.Table())
		var l Tuple
		var entries []abyss.IndexEntry
		i := 0
		return func() (Tuple, bool, error) {
			for {
				if entries == nil {
					var ok bool
					var err error
					if l, ok, err = lnext(); err != nil || !ok {
						return nil, false, err
					}
					lo, hi := span(l)
					entries, i = tx.RangeScan(o, lo, hi), 0
				}
				if i >= len(entries) {
					entries = nil
					continue
				}
				row, err := tx.Read(t, int(entries[i].Slot))
				if err != nil {
					return nil, false, err
				}
				i++
				out := make(Tuple, 0, len(l)+ncols)
				return append(append(out, l...), decode(t, row, ncols)...), true, nil
			}
		}, nil
	}}
}

// Group folds the input into one accumulator tuple per key. fold is
// called with the group's running accumulator (nil on the group's first
// tuple) and must return the updated accumulator — typically seeding it
// with the key plus zeroed aggregates on first call. Groups are emitted
// in first-appearance order, which is deterministic because the input
// order is.
func (p *Plan) Group(key func(Tuple) uint64, fold func(acc, t Tuple) Tuple) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		next, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		var order []uint64
		groups := make(map[uint64]Tuple)
		for {
			t, ok, err := next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			k := key(t)
			acc, seen := groups[k]
			if !seen {
				order = append(order, k)
			}
			groups[k] = fold(acc, t)
		}
		i := 0
		return func() (Tuple, bool, error) {
			if i >= len(order) {
				return nil, false, nil
			}
			t := groups[order[i]]
			i++
			return t, true, nil
		}, nil
	}}
}

// OrderBy materializes the input when the plan opens and emits it sorted
// by less (a stable sort, so input order breaks ties deterministically).
func (p *Plan) OrderBy(less func(a, b Tuple) bool) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		next, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		var rows []Tuple
		for {
			t, ok, err := next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			rows = append(rows, t)
		}
		sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		i := 0
		return func() (Tuple, bool, error) {
			if i >= len(rows) {
				return nil, false, nil
			}
			t := rows[i]
			i++
			return t, true, nil
		}, nil
	}}
}

// Limit emits at most n tuples. Above a lazy chain it stops pulling — and
// stops paying read costs — after the n-th.
func (p *Plan) Limit(n int) *Plan {
	return &Plan{open: func(tx *abyss.TxnCtx) (step, error) {
		next, err := p.open(tx)
		if err != nil {
			return nil, err
		}
		left := n
		return func() (Tuple, bool, error) {
			if left <= 0 {
				return nil, false, nil
			}
			left--
			return next()
		}, nil
	}}
}

// Run executes the plan inside tx, calling emit for every output tuple.
// It returns the first error from a row access (abyss.ErrAbort must be
// propagated out of the transaction body unchanged) or from emit, which
// may return an error to stop early.
func (p *Plan) Run(tx *abyss.TxnCtx, emit func(Tuple) error) error {
	next, err := p.open(tx)
	if err != nil {
		return err
	}
	for {
		t, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := emit(t); err != nil {
			return err
		}
	}
}

// Collect runs the plan and returns all output tuples.
func (p *Plan) Collect(tx *abyss.TxnCtx) ([]Tuple, error) {
	var out []Tuple
	err := p.Run(tx, func(t Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
