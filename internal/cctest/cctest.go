// Package cctest provides the scripted-transaction harness the
// concurrency-control scheme unit tests share: a tiny counter database on
// a simulated chip and a Txn whose body is a closure, so tests can stage
// precise interleavings with deterministic simulated timing.
package cctest

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/storage"
)

// Txn is a scripted transaction.
type Txn struct {
	Body  func(tx *core.TxnCtx) error
	Parts []int
}

// Run implements core.Txn.
func (t *Txn) Run(tx *core.TxnCtx) error { return t.Body(tx) }

// Partitions implements core.Txn.
func (t *Txn) Partitions() []int { return t.Parts }

// Fixture is a populated single-table database on a simulated chip.
type Fixture struct {
	Engine *sim.Engine
	DB     *core.DB
	Table  *storage.Table
}

// NewFixture builds a `rows`-counter table (col 0 key, col 1 value, both
// 8 bytes) on a `cores`-core simulator.
func NewFixture(cores, rows int, seed int64) *Fixture {
	eng := sim.New(cores, seed)
	db, tab := NewCounterDB(eng, rows)
	return &Fixture{Engine: eng, DB: db, Table: tab}
}

// NewCounterDB builds the fixture's populated counter database on an
// arbitrary runtime, for tests that drive both the simulator and the
// native runtime (e.g. the capture-and-verify conformance pass).
func NewCounterDB(r rt.Runtime, rows int) (*core.DB, *storage.Table) {
	db := core.NewDB(r)
	schema := storage.NewSchema("C",
		storage.Col{Name: "KEY", Width: 8},
		storage.Col{Name: "VAL", Width: 8},
	)
	tab := db.Catalog.Add(schema, rows+64, rows, r.NumProcs())
	idx := db.AddIndex("C_PK", tab, rows)
	for i := 0; i < rows; i++ {
		schema.PutU64(tab.LoadRow(i), 0, uint64(i))
		idx.LoadInsert(uint64(i), i)
	}
	return db, tab
}

// Get reads counter slot's value directly from the slab (valid for
// slab-updating schemes at quiescence).
func (f *Fixture) Get(slot int) uint64 {
	return f.Table.Schema.GetU64(f.Table.Row(slot), 1)
}

// Bump increments counter slot by delta through the scheme's write path
// (a WriteRow read-modify-write).
func (f *Fixture) Bump(tx *core.TxnCtx, slot int, delta uint64) error {
	sc := f.Table.Schema
	row, err := tx.UpdateRow(f.Table, slot)
	if err != nil {
		return err
	}
	sc.PutU64(row, 1, sc.GetU64(row, 1)+delta)
	return nil
}

// ReadVal reads slot's value through the scheme.
func (f *Fixture) ReadVal(tx *core.TxnCtx, slot int) (uint64, error) {
	row, err := tx.Read(f.Table, slot)
	if err != nil {
		return 0, err
	}
	return f.Table.Schema.GetU64(row, 1), nil
}
