// Conformance test for ordered-index reads: under every concurrency-
// control scheme, a range scan must (a) surface the transaction's own
// earlier write when the scanned slot is re-declared, (b) never surface a
// staged insert before its transaction commits — and surface it to every
// later transaction once it has — (c) never retain an aborted insert, and
// (d) read the restored pre-image after an abort, not the aborted bytes.
package cctest_test

import (
	"testing"

	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/storage"
)

// orderedFixture is the counter fixture plus an ordered index over the
// loaded keys.
func orderedFixture(cores, rows int, seed int64) (*sim.Engine, *core.DB, *storage.Table, *index.Ordered) {
	eng := sim.New(cores, seed)
	db, tab := cctest.NewCounterDB(eng, rows)
	ord := db.AddOrderedIndex("C_ORD", tab)
	for i := 0; i < rows; i++ {
		ord.LoadInsert(uint64(i), i)
	}
	return eng, db, tab, ord
}

func TestOrderedScanConformance(t *testing.T) {
	const rows = 8
	for _, s := range conformanceSchemes() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			eng, db, tab, ord := orderedFixture(1, rows, 1)
			scheme := s.mk()
			scheme.Setup(db)
			eng.Run(func(p rt.Proc) {
				w := core.NewWorker(p, db, scheme)
				sc := tab.Schema
				exec := func(body func(tx *core.TxnCtx) error) error {
					return w.ExecOnce(&cctest.Txn{Body: body, Parts: []int{0}})
				}

				// scanVals range-scans [lo, hi] in its own transaction
				// and reads every returned row through the scheme.
				scanVals := func(lo, hi uint64) map[uint64]uint64 {
					vals := map[uint64]uint64{}
					if err := exec(func(tx *core.TxnCtx) error {
						for _, e := range tx.RangeScan(ord, lo, hi) {
							row, err := tx.Read(tab, int(e.Slot))
							if err != nil {
								return err
							}
							vals[e.Key] = sc.GetU64(row, 1)
						}
						return nil
					}); err != nil {
						t.Fatalf("scan transaction failed: %v", err)
					}
					return vals
				}

				// (a) A transaction that updated a row and then scans
				// finds the row's entry, and re-declaring the write on
				// the scanned slot observes the own write.
				if err := exec(func(tx *core.TxnCtx) error {
					row, err := tx.UpdateRow(tab, 3)
					if err != nil {
						return err
					}
					sc.PutU64(row, 1, 111)
					found := false
					for _, e := range tx.RangeScan(ord, 0, rows-1) {
						if e.Key != 3 {
							continue
						}
						found = true
						again, err := tx.UpdateRow(tab, int(e.Slot))
						if err != nil {
							return err
						}
						if got := sc.GetU64(again, 1); got != 111 {
							t.Errorf("scan-reached row shows %d, want own write 111", got)
						}
					}
					if !found {
						t.Error("scan did not return the updated key 3")
					}
					return nil
				}); err != nil {
					t.Fatalf("own-write transaction failed: %v", err)
				}
				if got := scanVals(0, rows-1)[3]; got != 111 {
					t.Fatalf("committed scan shows %d at key 3, want 111", got)
				}

				// (b) A staged ordered insert is invisible to the
				// transaction's own scan (the deferred-insert protocol
				// publishes at commit) and visible to the next one.
				idx := db.Index("C_PK")
				if err := exec(func(tx *core.TxnCtx) error {
					row := tx.InsertRowOrdered(idx, 100, ord, 100)
					sc.PutU64(row, 0, 100)
					sc.PutU64(row, 1, 500)
					if got := len(tx.RangeScan(ord, 100, 200)); got != 0 {
						t.Errorf("own scan sees %d staged entries, want 0", got)
					}
					return nil
				}); err != nil {
					t.Fatalf("insert transaction failed: %v", err)
				}
				after := scanVals(100, 200)
				if got, ok := after[100]; !ok || got != 500 {
					t.Fatalf("committed insert: scan returned %v, want key 100 -> 500", after)
				}

				// (c) An aborted transaction's staged insert never
				// materializes.
				if err := exec(func(tx *core.TxnCtx) error {
					row := tx.InsertRowOrdered(idx, 101, ord, 101)
					sc.PutU64(row, 0, 101)
					sc.PutU64(row, 1, 600)
					return core.ErrUserAbort
				}); err != core.ErrUserAbort {
					t.Fatalf("aborting insert returned %v, want ErrUserAbort", err)
				}
				if got := scanVals(101, 200); len(got) != 0 {
					t.Fatalf("aborted insert leaked into scan: %v", got)
				}

				// (d) An aborted update's bytes are not what a later
				// scan reads — the pre-image is.
				if err := exec(func(tx *core.TxnCtx) error {
					row, err := tx.UpdateRow(tab, 3)
					if err != nil {
						return err
					}
					sc.PutU64(row, 1, 999)
					return core.ErrUserAbort
				}); err != core.ErrUserAbort {
					t.Fatalf("aborting update returned %v, want ErrUserAbort", err)
				}
				if got := scanVals(0, rows-1)[3]; got != 111 {
					t.Fatalf("scan after abort shows %d at key 3, want restored 111", got)
				}
			})
		})
	}
}
