// Capture-and-verify conformance: every registered scheme runs a
// contentious read-modify-write workload with history capture enabled,
// and the captured history must be serializable (acyclic direct
// serialization graph) AND final-state equivalent to a single-threaded
// replay. This is the correctness gate every future scheme inherits: a
// scheme that loses updates, serves fractured reads, or installs wrong
// bytes fails here with a concrete cycle or state diff.
package cctest_test

import (
	"sort"
	"testing"

	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
)

// rmwWorkload hammers a small counter table: each transaction reads one
// slot and increments two others, with slots drawn from a tiny hot set
// so every scheme sees real conflicts.
type rmwWorkload struct {
	db     *core.DB
	rows   int
	nparts int
	txns   []rmwTxn
}

type rmwTxn struct {
	w     *rmwWorkload
	slots [3]int
	parts []int
}

func newRMWWorkload(db *core.DB, rows int) *rmwWorkload {
	w := &rmwWorkload{db: db, rows: rows, nparts: db.NParts}
	w.txns = make([]rmwTxn, db.RT.NumProcs())
	for i := range w.txns {
		w.txns[i].w = w
	}
	return w
}

func (w *rmwWorkload) Next(p rt.Proc) core.Txn {
	t := &w.txns[p.ID()]
	r := p.Rand()
	for i := range t.slots {
		t.slots[i] = int(r.Int63n(int64(w.rows)))
	}
	// H-STORE needs the partition set up front: sorted, deduplicated.
	t.parts = t.parts[:0]
	for _, s := range t.slots {
		t.parts = append(t.parts, s%w.nparts)
	}
	sort.Ints(t.parts)
	uniq := t.parts[:0]
	for i, p := range t.parts {
		if i == 0 || p != t.parts[i-1] {
			uniq = append(uniq, p)
		}
	}
	t.parts = uniq
	return t
}

func (t *rmwTxn) Partitions() []int { return t.parts }

func (t *rmwTxn) Run(tx *core.TxnCtx) error {
	tab := t.w.db.Catalog.Table("C")
	sc := tab.Schema
	if _, err := tx.Read(tab, t.slots[2]); err != nil {
		return err
	}
	for _, slot := range t.slots[:2] {
		row, err := tx.UpdateRow(tab, slot)
		if err != nil {
			return err
		}
		sc.PutU64(row, 1, sc.GetU64(row, 1)+1)
	}
	return nil
}

// runCaptureVerify populates a counter database on r, runs the RMW
// workload with capture on, and checks the history.
func runCaptureVerify(t *testing.T, r rt.Runtime, scheme core.Scheme, cfg core.Config) {
	t.Helper()
	const rows = 8 // tiny: force write-write and read-write conflicts
	db, _ := cctest.NewCounterDB(r, rows)
	wl := newRMWWorkload(db, rows)
	cfg.Capture = true
	res := core.Run(db, scheme, wl, cfg)
	if got := db.Cap.Committed(); got == 0 {
		t.Fatalf("capture recorded no transactions (result: %s)", res)
	}
	rep := core.VerifyCapture(db, scheme)
	if !rep.OK() {
		t.Fatalf("%s failed serializability verification:\n%s", scheme.Name(), rep)
	}
}

func TestCaptureVerifyConformanceSim(t *testing.T) {
	for _, s := range conformanceSchemes() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := core.Config{WarmupCycles: 50_000, MeasureCycles: 250_000, AbortBackoff: 500}
			runCaptureVerify(t, sim.New(4, 7), s.mk(), cfg)
		})
	}
}

func TestCaptureVerifyConformanceNative(t *testing.T) {
	for _, s := range conformanceSchemes() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			// Native windows are wall-clock cycles; keep the run short.
			cfg := core.Config{WarmupCycles: 200_000, MeasureCycles: 2_000_000, AbortBackoff: 500}
			runCaptureVerify(t, native.New(4, 7), s.mk(), cfg)
		})
	}
}
