// Conformance test for the closure-free write API: every concurrency-
// control scheme must hand out WriteRow buffers that (a) hold the row's
// current image so callers can read-modify-write, (b) observe the
// transaction's own earlier writes on repeated calls, (c) are not retained
// by the scheme past Commit/Abort — a later transaction's buffer always
// starts from committed state, and its writes never leak through a stale
// reference — and (d) leave the pre-image bytes intact after an abort.
package cctest_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/tsalloc"
)

// conformanceSchemes covers all six scheme implementations (all three 2PL
// variants plus the adaptive hybrid share one, but each policy runs here).
func conformanceSchemes() []struct {
	name string
	mk   func() core.Scheme
} {
	return []struct {
		name string
		mk   func() core.Scheme
	}{
		{"DL_DETECT", func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }},
		{"NO_WAIT", func() core.Scheme { return twopl.New(twopl.NoWait, twopl.Options{}) }},
		{"WAIT_DIE", func() core.Scheme { return twopl.New(twopl.WaitDie, twopl.Options{}) }},
		{"ADAPTIVE", func() core.Scheme { return twopl.NewAdaptive(twopl.Options{}) }},
		{"TIMESTAMP", func() core.Scheme { return to.New(tsalloc.Atomic) }},
		{"OCC", func() core.Scheme { return occ.New(tsalloc.Atomic) }},
		{"MVCC", func() core.Scheme { return mvcc.New(tsalloc.Atomic) }},
		{"HSTORE", func() core.Scheme { return hstore.New(tsalloc.Atomic) }},
	}
}

func TestWriteRowConformance(t *testing.T) {
	for _, s := range conformanceSchemes() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			f := cctest.NewFixture(1, 8, 1)
			scheme := s.mk()
			scheme.Setup(f.DB)
			f.Engine.Run(func(p rt.Proc) {
				w := core.NewWorker(p, f.DB, scheme)
				sc := f.Table.Schema
				exec := func(body func(tx *core.TxnCtx) error) error {
					return w.ExecOnce(&cctest.Txn{Body: body, Parts: []int{0}})
				}
				readVal := func(slot int) uint64 {
					var v uint64
					if err := exec(func(tx *core.TxnCtx) error {
						var err error
						v, err = f.ReadVal(tx, slot)
						return err
					}); err != nil {
						t.Fatalf("read transaction failed: %v", err)
					}
					return v
				}

				// (a) The buffer arrives holding the committed image and
				// a mutation of it commits.
				if err := exec(func(tx *core.TxnCtx) error {
					row, err := tx.UpdateRow(f.Table, 0)
					if err != nil {
						return err
					}
					if got := sc.GetU64(row, 1); got != 0 {
						t.Errorf("buffer pre-image = %d, want 0", got)
					}
					sc.PutU64(row, 1, 5)
					return nil
				}); err != nil {
					t.Fatalf("write transaction failed: %v", err)
				}
				if got := readVal(0); got != 5 {
					t.Fatalf("committed value = %d, want 5", got)
				}

				// (b) A second WriteRow of the same tuple in the same
				// transaction observes the first call's mutation.
				if err := exec(func(tx *core.TxnCtx) error {
					row, err := tx.UpdateRow(f.Table, 0)
					if err != nil {
						return err
					}
					sc.PutU64(row, 1, 9)
					again, err := tx.UpdateRow(f.Table, 0)
					if err != nil {
						return err
					}
					if got := sc.GetU64(again, 1); got != 9 {
						t.Errorf("repeated WriteRow sees %d, want own write 9", got)
					}
					sc.PutU64(again, 1, sc.GetU64(again, 1)+1)
					return nil
				}); err != nil {
					t.Fatalf("RMW transaction failed: %v", err)
				}
				if got := readVal(0); got != 10 {
					t.Fatalf("committed RMW value = %d, want 10", got)
				}

				// (c)+(d) A later transaction's buffer starts from the
				// committed state, and aborting that transaction after
				// scribbling restores the pre-image bytes: nothing the
				// aborted transaction wrote is reachable afterwards, so
				// the scheme cannot have retained its buffer.
				if err := exec(func(tx *core.TxnCtx) error {
					row, err := tx.UpdateRow(f.Table, 0)
					if err != nil {
						return err
					}
					if got := sc.GetU64(row, 1); got != 10 {
						t.Errorf("post-commit buffer pre-image = %d, want 10", got)
					}
					sc.PutU64(row, 1, 99)
					return core.ErrUserAbort
				}); err != core.ErrUserAbort {
					t.Fatalf("abort transaction returned %v, want ErrUserAbort", err)
				}
				if got := readVal(0); got != 10 {
					t.Fatalf("value after abort = %d, want pre-image 10", got)
				}
			})
		})
	}
}
