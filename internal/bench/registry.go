package bench

import "fmt"

// FigureFunc builds one experiment at the given scale.
type FigureFunc func(Params) *Figure

// Registry maps experiment ids (as passed to abyss-bench -fig) to their
// implementations, in the paper's order.
var Registry = []struct {
	ID   string
	Desc string
	Run  FigureFunc
}{
	{"3", "Simulator vs real hardware (YCSB, theta=0.6)", Fig3},
	{"4", "Lock thrashing (DL_DETECT without detection)", Fig4},
	{"5", "Waiting vs aborting (DL_DETECT timeout sweep)", Fig5},
	{"6", "Timestamp allocation micro-benchmark", Fig6},
	{"7", "Timestamp allocation in the DBMS", Fig7},
	{"8", "Read-only YCSB", Fig8},
	{"9", "Write-intensive YCSB, medium contention", Fig9},
	{"10", "Write-intensive YCSB, high contention", Fig10},
	{"11", "Contention (theta) sweep", Fig11},
	{"12", "Working set size", Fig12},
	{"13", "Read/write mixture", Fig13},
	{"14", "Database partitioning (H-STORE)", Fig14},
	{"15", "Multi-partition transactions", Fig15},
	{"16", "TPC-C, 4 warehouses", Fig16},
	{"17", "TPC-C, 1024 warehouses", Fig17},
	{"malloc", "Ablation: per-worker arenas vs centralized malloc", AblationMalloc},
	{"occ-validation", "Ablation: OCC parallel vs central validation", AblationValidation},
	{"adaptive", "Extension: the §6.1 DL_DETECT/NO_WAIT hybrid", ExtensionAdaptive},
}

// Lookup finds a registry entry by id.
func Lookup(id string) (FigureFunc, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (try 3-17 or malloc)", id)
}
