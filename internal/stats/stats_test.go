package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestComponentNames(t *testing.T) {
	want := map[Component]string{
		Useful:  "Useful Work",
		Abort:   "Abort",
		TsAlloc: "Ts Alloc.",
		Index:   "Index",
		Wait:    "Wait",
		Manager: "Manager",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if !strings.Contains(Component(99).String(), "99") {
		t.Error("out-of-range component should render its number")
	}
}

func TestAddAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(Useful, 100)
	b.Add(Wait, 50)
	b.Add(Useful, 25)
	if b.Get(Useful) != 125 || b.Get(Wait) != 50 {
		t.Fatalf("buckets wrong: %d/%d", b.Get(Useful), b.Get(Wait))
	}
	if b.Total() != 175 {
		t.Fatalf("total = %d, want 175", b.Total())
	}
}

func TestAbortAttemptRebillsWastedWork(t *testing.T) {
	var b Breakdown
	b.BeginAttempt()
	b.Add(Useful, 100)
	b.Add(Index, 40)
	b.Add(Manager, 10)
	b.Add(Wait, 30)
	b.Add(TsAlloc, 5)
	b.AbortAttempt()

	if b.Get(Useful) != 0 || b.Get(Index) != 0 || b.Get(Manager) != 0 {
		t.Fatalf("wasted work not re-billed: useful=%d index=%d manager=%d",
			b.Get(Useful), b.Get(Index), b.Get(Manager))
	}
	if b.Get(Abort) != 150 {
		t.Fatalf("abort bucket = %d, want 150", b.Get(Abort))
	}
	// Wait and TsAlloc keep their own buckets, as the paper reports them.
	if b.Get(Wait) != 30 || b.Get(TsAlloc) != 5 {
		t.Fatalf("wait/tsalloc clobbered: %d/%d", b.Get(Wait), b.Get(TsAlloc))
	}
	if b.Total() != 185 {
		t.Fatalf("total changed by abort re-billing: %d", b.Total())
	}
}

func TestCommitAttemptKeepsBilling(t *testing.T) {
	var b Breakdown
	b.BeginAttempt()
	b.Add(Useful, 70)
	b.CommitAttempt()
	if b.Get(Useful) != 70 || b.Get(Abort) != 0 {
		t.Fatal("commit should not move cycles")
	}
}

func TestAttemptsAreIndependent(t *testing.T) {
	var b Breakdown
	b.BeginAttempt()
	b.Add(Useful, 10)
	b.AbortAttempt()
	b.BeginAttempt()
	b.Add(Useful, 20)
	b.CommitAttempt()
	if b.Get(Useful) != 20 {
		t.Fatalf("useful = %d, want 20 (first attempt re-billed only)", b.Get(Useful))
	}
	if b.Get(Abort) != 10 {
		t.Fatalf("abort = %d, want 10", b.Get(Abort))
	}
}

func TestOutsideAttemptBillingSticks(t *testing.T) {
	var b Breakdown
	b.Add(Useful, 33) // no attempt open
	b.BeginAttempt()
	b.AbortAttempt()
	if b.Get(Useful) != 33 {
		t.Fatal("billing outside an attempt must not be re-billed by a later abort")
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Breakdown
	a.Add(Useful, 5)
	b.Add(Useful, 7)
	b.Add(Wait, 3)
	a.Merge(&b)
	if a.Get(Useful) != 12 || a.Get(Wait) != 3 {
		t.Fatal("merge wrong")
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	f := func(vals [NumComponents]uint16) bool {
		var b Breakdown
		total := uint64(0)
		for i, v := range vals {
			b.Add(Component(i), uint64(v))
			total += uint64(v)
		}
		fr := b.Fractions()
		if total == 0 {
			for _, x := range fr {
				if x != 0 {
					return false
				}
			}
			return true
		}
		sum := 0.0
		for _, x := range fr {
			if x < 0 || x > 1 {
				return false
			}
			sum += x
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersMergeAndRate(t *testing.T) {
	a := Counters{Commits: 10, Aborts: 5, Tuples: 160, Offered: 20, Shed: 3, Deadlined: 2}
	b := Counters{Commits: 2, Aborts: 1, Tuples: 32, Offered: 4, Shed: 1, Deadlined: 1}
	a.Merge(&b)
	if a.Commits != 12 || a.Aborts != 6 || a.Tuples != 192 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.Offered != 24 || a.Shed != 4 || a.Deadlined != 3 {
		t.Fatalf("overload counters merge wrong: %+v", a)
	}
	if got := a.AbortRate(); got != 0.5 {
		t.Fatalf("abort rate = %v, want 0.5", got)
	}
	empty := Counters{}
	if empty.AbortRate() != 0 {
		t.Fatal("empty counters should have zero rate")
	}
	onlyAborts := Counters{Aborts: 3}
	if onlyAborts.AbortRate() != 3 {
		t.Fatal("zero-commit abort rate should return the raw abort count")
	}
}

func TestFormatBreakdownMentionsAllComponents(t *testing.T) {
	var b Breakdown
	b.Add(Useful, 50)
	b.Add(Wait, 50)
	s := FormatBreakdown(&b)
	for c := Component(0); c < NumPaperComponents; c++ {
		if !strings.Contains(s, c.String()) {
			t.Fatalf("format missing %s: %s", c, s)
		}
	}
	if !strings.Contains(s, "50.0%") {
		t.Fatalf("format missing percentage: %s", s)
	}
	// Extension components (Log) appear only when non-zero, so existing
	// output stays byte-identical with durability off.
	if strings.Contains(s, Log.String()) {
		t.Fatalf("zero Log bucket should be omitted: %s", s)
	}
	b.Add(Log, 1)
	if s := FormatBreakdown(&b); !strings.Contains(s, Log.String()) {
		t.Fatalf("non-zero Log bucket missing: %s", s)
	}
	// Same omission rule for Idle (open-loop extension).
	if s := FormatBreakdown(&b); strings.Contains(s, Idle.String()) {
		t.Fatalf("zero Idle bucket should be omitted: %s", s)
	}
	b.Add(Idle, 1)
	if s := FormatBreakdown(&b); !strings.Contains(s, Idle.String()) {
		t.Fatalf("non-zero Idle bucket missing: %s", s)
	}
}

func TestComponentKeyStable(t *testing.T) {
	want := []string{"useful", "abort", "ts_alloc", "index", "wait", "manager", "log", "idle"}
	for c := Component(0); c < NumComponents; c++ {
		if c.Key() != want[c] {
			t.Errorf("Component(%d).Key() = %q, want %q", int(c), c.Key(), want[c])
		}
	}
	if Component(99).Key() != "component_99" {
		t.Errorf("out-of-range key = %q", Component(99).Key())
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	for c := Component(0); c < NumComponents; c++ {
		b.Add(c, uint64(7*(int(c)+1)))
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// Keys appear in Component order with the stable identifiers.
	wantOrder := `{"useful":7,"abort":14,"ts_alloc":21,"index":28,"wait":35,"manager":42,"log":49,"idle":56}`
	if string(data) != wantOrder {
		t.Fatalf("breakdown JSON = %s, want %s", data, wantOrder)
	}
	var back Breakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for c := Component(0); c < NumComponents; c++ {
		if back.Get(c) != b.Get(c) {
			t.Errorf("%s: got %d, want %d", c, back.Get(c), b.Get(c))
		}
	}
}

// TestBreakdownJSONDropsAttemptState documents that the wire format
// carries only committed buckets: an open attempt is not serialized, and
// an unmarshaled Breakdown starts with no attempt in progress.
func TestBreakdownJSONDropsAttemptState(t *testing.T) {
	var b Breakdown
	b.Add(Useful, 10)
	b.BeginAttempt()
	b.Add(Useful, 5)
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Breakdown
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Get(Useful) != 15 {
		t.Fatalf("useful = %d, want 15", back.Get(Useful))
	}
	// The restored breakdown must behave as if no attempt were open:
	// an AbortAttempt re-bills nothing.
	back.AbortAttempt()
	if back.Get(Useful) != 15 || back.Get(Abort) != 0 {
		t.Fatal("restored breakdown re-billed cycles from a phantom attempt")
	}
}
