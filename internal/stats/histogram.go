package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// NumHistBuckets is the number of log2 latency buckets: bucket 0 holds the
// value 0, bucket i (1 <= i <= 64) holds values in [2^(i-1), 2^i).
const NumHistBuckets = 65

// Histogram is an allocation-free log2-bucketed histogram of cycle counts,
// used for transaction latency. Record is a handful of integer operations
// on a fixed-size array — cheap enough for the per-commit hot path — and
// recording never bills simulated time, so enabling latency accounting
// cannot perturb a simulated schedule. Like Breakdown, a Histogram is
// owned by one worker and merged after (or during) a run.
//
// The zero value is an empty histogram, ready to use.
type Histogram struct {
	counts [NumHistBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

// HistBucket returns the bucket index for value v.
func HistBucket(v uint64) int { return bits.Len64(v) }

// HistBucketBounds returns bucket i's half-open value range [lo, hi).
// Bucket 64's upper bound saturates at MaxUint64 (its true bound, 2^64,
// is not representable).
func HistBucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1) << i
}

// Record adds one observation of v.
func (h *Histogram) Record(v uint64) {
	h.counts[bits.Len64(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average recorded value, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket returns the observation count in bucket i (see HistBucketBounds).
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= NumHistBuckets {
		return 0
	}
	return h.counts[i]
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile returns an estimate of the q'th quantile (q in [0, 1]) by
// linear interpolation within the containing log2 bucket, clamped to the
// observed maximum. An empty histogram returns 0; q >= 1 returns Max.
// The estimate's relative error is bounded by the bucket width (a factor
// of 2), which is ample for the p50/p95/p99 tail-latency figures.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumHistBuckets; b++ {
		c := h.counts[b]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := HistBucketBounds(b)
			// The top occupied bucket cannot extend past the observed
			// maximum.
			if h.max < math.MaxUint64 && hi > h.max+1 && h.max >= lo {
				hi = h.max + 1
			}
			if hi <= lo+1 {
				return lo
			}
			v := lo + uint64(float64(rank-cum)/float64(c)*float64(hi-lo))
			if v >= hi {
				v = hi - 1
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// P50 returns the estimated median.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// histogramJSON is the stable wire format: scalar totals plus the sparse
// non-empty buckets as [index, count] pairs in ascending index order.
type histogramJSON struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Max     uint64      `json:"max"`
	Buckets [][2]uint64 `json:"buckets"`
}

// MarshalJSON serializes the histogram with stable keys. Empty buckets are
// omitted, so the document stays small while remaining lossless.
func (h Histogram) MarshalJSON() ([]byte, error) {
	v := histogramJSON{Count: h.total, Sum: h.sum, Max: h.max, Buckets: [][2]uint64{}}
	for i, c := range h.counts {
		if c != 0 {
			v.Buckets = append(v.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(v)
}

// UnmarshalJSON restores a histogram written by MarshalJSON. The total
// count is recomputed from the buckets, so the redundant "count" key can
// never disagree with them.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var v histogramJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*h = Histogram{sum: v.Sum, max: v.Max}
	for _, b := range v.Buckets {
		if b[0] >= NumHistBuckets {
			return fmt.Errorf("stats: histogram bucket index %d out of range [0, %d)", b[0], NumHistBuckets)
		}
		h.counts[b[0]] += b[1]
		h.total += b[1]
	}
	return nil
}
