// Package stats implements the time-breakdown accounting used throughout the
// DBMS test-bed. The paper (§3.2) groups the cycles a worker thread spends
// into six components: USEFUL WORK, ABORT, TS ALLOCATION, INDEX, WAIT and
// MANAGER. Every operation in this repository is billed to exactly one of
// these components, and the per-experiment breakdown plots (Figs. 8b, 9b,
// 10b, 12b) are produced directly from these counters.
package stats

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Component identifies one of the six time-breakdown categories from §3.2 of
// the paper.
type Component int

const (
	// Useful is time spent executing application logic and operating on
	// tuples ("USEFUL WORK").
	Useful Component = iota
	// Abort is the overhead of rolling back an aborted transaction. As in
	// DBx1000, the cycles an aborted attempt spent on useful work, index
	// lookups and manager bookkeeping are re-billed to Abort when the
	// attempt fails.
	Abort
	// TsAlloc is time spent acquiring a unique timestamp from the
	// allocator ("TS ALLOCATION").
	TsAlloc
	// Index is time spent in hash indexes, including bucket latching
	// ("INDEX").
	Index
	// Wait is the total time a transaction waits, either for a lock (2PL)
	// or for a tuple version that is not ready yet (T/O) ("WAIT").
	Wait
	// Manager is time spent in the lock manager or timestamp manager,
	// excluding waiting ("MANAGER").
	Manager

	// Log is time spent on durability: encoding and appending write-ahead
	// log records and waiting for (or modeling) group-commit fsyncs. The
	// paper's evaluation is memory-only, so Log is this repository's
	// extension beyond the six §3.2 components: it is always zero unless a
	// WAL is attached, and the golden determinism signature prints only
	// the first NumPaperComponents so enabling accounting-only logging
	// cannot disturb it.
	Log

	// Idle is time a worker spends with no transaction to run: in the
	// open-loop serving mode (core.Config.Arrivals) it is the wait until
	// the next arrival. Like Log it is an extension beyond the paper's
	// taxonomy — closed-loop runs never bill it, so the golden signature
	// and the breakdown summaries of existing experiments are unchanged.
	Idle

	// NumComponents is the number of breakdown components.
	NumComponents
)

// NumPaperComponents is the number of breakdown components in the paper's
// §3.2 taxonomy (everything before the Log extension). The golden
// signature and other paper-fidelity surfaces iterate to this bound.
const NumPaperComponents = Log

var componentNames = [NumComponents]string{
	"Useful Work", "Abort", "Ts Alloc.", "Index", "Wait", "Manager", "Log", "Idle",
}

// componentKeys are the stable machine-readable identifiers used by the
// JSON and CSV serializations. They are part of the output format; do not
// reorder or rename.
var componentKeys = [NumComponents]string{
	"useful", "abort", "ts_alloc", "index", "wait", "manager", "log", "idle",
}

// String returns the display name used in the paper's breakdown figures.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// Key returns the stable machine-readable identifier for c, as used in
// JSON objects and CSV column names.
func (c Component) Key() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component_%d", int(c))
	}
	return componentKeys[c]
}

// Breakdown accumulates cycles per component for a single worker/core. It is
// not safe for concurrent use; in the simulator each Proc owns one, and in
// the native runtime each worker goroutine owns one (merged after the run).
type Breakdown struct {
	buckets [NumComponents]uint64

	// attempt tracks the cycles billed during the current transaction
	// attempt so they can be re-billed to Abort if the attempt fails.
	attempt [NumComponents]uint64
	inTxn   bool
}

// Add bills cycles to component c, tracking them against the current attempt
// when one is open.
func (b *Breakdown) Add(c Component, cycles uint64) {
	b.buckets[c] += cycles
	if b.inTxn {
		b.attempt[c] += cycles
	}
}

// AddPending drains a batch of per-component cycles into b, billing each
// non-zero bucket as one Add under the current attempt state. Runtimes that
// batch their hot-path accounting (sim, native) flush through this before
// exposing the Breakdown, so batched and unbatched billing are
// bit-identical.
func (b *Breakdown) AddPending(pend *[NumComponents]uint64) {
	for c, v := range pend {
		if v != 0 {
			b.Add(Component(c), v)
			pend[c] = 0
		}
	}
}

// BeginAttempt opens a new transaction attempt. Cycles billed until
// EndAttempt are tracked so an abort can re-bill them.
func (b *Breakdown) BeginAttempt() {
	b.inTxn = true
	for i := range b.attempt {
		b.attempt[i] = 0
	}
}

// CommitAttempt closes the current attempt, leaving its billing as-is.
func (b *Breakdown) CommitAttempt() {
	b.inTxn = false
}

// AbortAttempt closes the current attempt and re-bills its Useful, Index and
// Manager cycles to Abort, mirroring DBx1000's accounting: work performed by
// an attempt that ultimately aborts was wasted. TsAlloc and Wait keep their
// own buckets (the paper reports them separately even for aborted work).
func (b *Breakdown) AbortAttempt() {
	b.inTxn = false
	moved := b.attempt[Useful] + b.attempt[Index] + b.attempt[Manager]
	b.buckets[Useful] -= b.attempt[Useful]
	b.buckets[Index] -= b.attempt[Index]
	b.buckets[Manager] -= b.attempt[Manager]
	b.buckets[Abort] += moved
}

// Get returns the cycles accumulated for component c.
func (b *Breakdown) Get(c Component) uint64 { return b.buckets[c] }

// Total returns the cycles accumulated across all components.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.buckets {
		t += v
	}
	return t
}

// Merge adds other's buckets into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.buckets {
		b.buckets[i] += other.buckets[i]
	}
}

// Reset zeroes all buckets.
func (b *Breakdown) Reset() {
	*b = Breakdown{}
}

// Fractions returns each component's share of the total, or all zeros if no
// cycles have been billed.
func (b *Breakdown) Fractions() [NumComponents]float64 {
	var f [NumComponents]float64
	t := b.Total()
	if t == 0 {
		return f
	}
	for i, v := range b.buckets {
		f[i] = float64(v) / float64(t)
	}
	return f
}

// breakdownJSON fixes the serialized field order; its json tags must match
// componentKeys in Component order.
type breakdownJSON struct {
	Useful  uint64 `json:"useful"`
	Abort   uint64 `json:"abort"`
	TsAlloc uint64 `json:"ts_alloc"`
	Index   uint64 `json:"index"`
	Wait    uint64 `json:"wait"`
	Manager uint64 `json:"manager"`
	Log     uint64 `json:"log"`
	Idle    uint64 `json:"idle"`
}

// MarshalJSON serializes the per-component cycle totals as an object with
// stable keys (Component.Key) in Component order. Only the committed
// buckets are serialized; the transient open-attempt tracking state is
// not part of the wire format.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(breakdownJSON{
		Useful:  b.buckets[Useful],
		Abort:   b.buckets[Abort],
		TsAlloc: b.buckets[TsAlloc],
		Index:   b.buckets[Index],
		Wait:    b.buckets[Wait],
		Manager: b.buckets[Manager],
		Log:     b.buckets[Log],
		Idle:    b.buckets[Idle],
	})
}

// UnmarshalJSON restores the per-component cycle totals written by
// MarshalJSON. The restored Breakdown has no attempt in progress.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var v breakdownJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*b = Breakdown{}
	b.buckets[Useful] = v.Useful
	b.buckets[Abort] = v.Abort
	b.buckets[TsAlloc] = v.TsAlloc
	b.buckets[Index] = v.Index
	b.buckets[Wait] = v.Wait
	b.buckets[Manager] = v.Manager
	b.buckets[Log] = v.Log
	b.buckets[Idle] = v.Idle
	return nil
}

// Counters tracks transaction outcomes for a single worker. Offered, Shed
// and Deadlined are only nonzero in open-loop (arrival-driven) runs:
// Offered counts arrivals inside the measurement window, Shed counts
// arrivals rejected by admission control before execution, and Deadlined
// counts transactions abandoned past their deadline or retry budget.
// Closed-loop accounting satisfies Offered == Shed == Deadlined == 0;
// open-loop accounting satisfies Offered == Commits + Shed + Deadlined +
// still-queued-at-window-end.
type Counters struct {
	Commits   uint64 // committed transactions inside the measurement window
	Aborts    uint64 // aborted attempts inside the measurement window
	Tuples    uint64 // tuple accesses by committed transactions (Fig. 12)
	Offered   uint64 // open-loop arrivals inside the measurement window
	Shed      uint64 // arrivals rejected by admission control
	Deadlined uint64 // transactions abandoned past deadline/retry budget
}

// Merge adds other's counts into c.
func (c *Counters) Merge(other *Counters) {
	c.Commits += other.Commits
	c.Aborts += other.Aborts
	c.Tuples += other.Tuples
	c.Offered += other.Offered
	c.Shed += other.Shed
	c.Deadlined += other.Deadlined
}

// AbortRate returns aborts per commit (the paper's Fig. 5 right axis reports
// aborts relative to committed work).
func (c *Counters) AbortRate() float64 {
	if c.Commits == 0 {
		if c.Aborts == 0 {
			return 0
		}
		return float64(c.Aborts)
	}
	return float64(c.Aborts) / float64(c.Commits)
}

// FormatBreakdown renders a breakdown as a one-line percentage summary, e.g.
// "Useful Work 42.0% | Abort 10.0% | ...". The six paper components are
// always printed; the Log extension appears only when a WAL actually
// billed cycles to it, so memory-only runs read exactly as before.
func FormatBreakdown(b *Breakdown) string {
	f := b.Fractions()
	parts := make([]string, 0, NumComponents)
	for i := Component(0); i < NumComponents; i++ {
		if i >= NumPaperComponents && b.buckets[i] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %5.1f%%", componentNames[i], f[i]*100))
	}
	return strings.Join(parts, " | ")
}
