package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestHistBucketBoundaries pins the log2 bucketing: 0 is its own bucket,
// every power of two starts a new bucket, and HistBucketBounds inverts
// HistBucket.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {1<<63 - 1, 63}, {1 << 63, 64}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := HistBucket(c.v); got != c.bucket {
			t.Errorf("HistBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := HistBucketBounds(c.bucket)
		if c.v < lo || (c.v >= hi && !(c.bucket == 64 && c.v == math.MaxUint64)) {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d)", c.v, c.bucket, lo, hi)
		}
	}
	var h Histogram
	for _, c := range cases {
		h.Record(c.v)
	}
	for _, c := range cases {
		if h.Bucket(c.bucket) == 0 {
			t.Errorf("bucket %d empty after recording %d", c.bucket, c.v)
		}
	}
}

// TestHistogramZeroValue pins that the zero value is a safe empty
// histogram: every accessor returns 0 and Merge/Reset/Record work.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("zero histogram not empty: %+v", h)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if h.Bucket(-1) != 0 || h.Bucket(NumHistBuckets) != 0 {
		t.Error("out-of-range Bucket should return 0")
	}
	var other Histogram
	h.Merge(&other) // merging two empties must not panic or corrupt
	if h.Count() != 0 {
		t.Fatal("merge of empties recorded something")
	}
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("Reset left state behind: %+v", h)
	}
}

// TestHistogramMerge pins that Merge is equivalent to recording both
// streams into one histogram.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := uint64(0); i < 100; i++ {
		a.Record(i * 3)
		both.Record(i * 3)
	}
	for i := uint64(0); i < 50; i++ {
		b.Record(1 << (i % 20))
		both.Record(1 << (i % 20))
	}
	a.Merge(&b)
	if a != both {
		t.Fatalf("merge diverged from direct recording:\nmerged %+v\ndirect %+v", a, both)
	}
	if a.Count() != 150 {
		t.Fatalf("merged count = %d, want 150", a.Count())
	}
}

// TestHistogramQuantileEdges pins quantile behaviour at the edges: single
// values are returned exactly, q=1 is the max, quantiles are monotone in
// q, and interpolated estimates stay inside the containing bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	var single Histogram
	single.Record(1000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 1000 {
			t.Errorf("single-value Quantile(%g) = %d, want 1000", q, got)
		}
	}

	var zeros Histogram
	zeros.Record(0)
	zeros.Record(0)
	if got := zeros.Quantile(0.5); got != 0 {
		t.Errorf("all-zero Quantile(0.5) = %d, want 0", got)
	}

	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(uint64(100 + i)) // uniform over [100, 1100)
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Quantile(1) = %d, want max %d", got, h.Max())
	}
	prev := uint64(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotone: Quantile(%g) = %d < previous %d", q, v, prev)
		}
		if v > h.Max() {
			t.Errorf("Quantile(%g) = %d exceeds max %d", q, v, h.Max())
		}
		prev = v
	}
	// The true p50 of uniform [100, 1100) is ~600 (bucket [512, 1024));
	// interpolation must land in that bucket, not at its edge.
	if p50 := h.P50(); p50 < 512 || p50 >= 1024 {
		t.Errorf("p50 = %d, want within bucket [512, 1024)", p50)
	}
	if h.P50() > h.P95() || h.P95() > h.P99() || h.P99() > h.Max() {
		t.Errorf("percentile accessors not ordered: p50 %d p95 %d p99 %d max %d",
			h.P50(), h.P95(), h.P99(), h.Max())
	}
}

// TestHistogramJSONRoundTrip pins the stable wire format: totals plus
// sparse buckets, lossless across marshal/unmarshal.
func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 7, 900, 900, 900, 1 << 40} {
		h.Record(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"count"`, `"sum"`, `"max"`, `"buckets"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("histogram JSON missing key %s: %s", key, b)
		}
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed the histogram:\norig %+v\nback %+v", h, back)
	}

	// The empty histogram round-trips too (its buckets array is empty,
	// not null, so consumers can range over it unconditionally).
	eb, err := json.Marshal(Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(eb), `"buckets":[]`) {
		t.Errorf("empty histogram should serialize an empty bucket list: %s", eb)
	}
	var eBack Histogram
	if err := json.Unmarshal(eb, &eBack); err != nil {
		t.Fatal(err)
	}
	if eBack != (Histogram{}) {
		t.Fatalf("empty round trip produced %+v", eBack)
	}

	// Out-of-range bucket indexes are rejected, not silently dropped.
	if err := new(Histogram).UnmarshalJSON([]byte(`{"count":1,"sum":1,"max":1,"buckets":[[65,1]]}`)); err == nil {
		t.Fatal("bucket index 65 should be rejected")
	}
}
