package mem_test

import (
	"testing"

	"abyss1000/internal/mem"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
)

func TestArenaAllocDisjoint(t *testing.T) {
	eng := sim.New(1, 1)
	a := mem.NewArena(1024)
	eng.Run(func(p rt.Proc) {
		b1 := a.Alloc(p, stats.Useful, 100)
		b2 := a.Alloc(p, stats.Useful, 100)
		for i := range b1 {
			b1[i] = 0xAA
		}
		for i := range b2 {
			b2[i] = 0xBB
		}
		if b1[0] != 0xAA {
			t.Error("buffer 1 clobbered by buffer 2")
		}
		if len(b1) != 100 || cap(b1) != 100 {
			t.Errorf("buffer len/cap %d/%d, want 100/100", len(b1), cap(b1))
		}
	})
}

func TestArenaGrowsBeyondInitial(t *testing.T) {
	eng := sim.New(1, 1)
	a := mem.NewArena(1024)
	eng.Run(func(p rt.Proc) {
		big := a.Alloc(p, stats.Useful, 10_000)
		if len(big) != 10_000 {
			t.Errorf("large alloc len %d", len(big))
		}
		// And subsequent small allocations still work.
		small := a.Alloc(p, stats.Useful, 8)
		if len(small) != 8 {
			t.Error("alloc after growth broken")
		}
	})
}

func TestArenaResetReusesMemory(t *testing.T) {
	eng := sim.New(1, 1)
	a := mem.NewArena(4096)
	eng.Run(func(p rt.Proc) {
		b1 := a.Alloc(p, stats.Useful, 64)
		b1[0] = 1
		a.Reset()
		b2 := a.Alloc(p, stats.Useful, 64)
		// Same backing storage expected after reset (pointer-bump pool).
		if &b1[0] != &b2[0] {
			t.Error("reset did not recycle the pool")
		}
	})
}

func TestArenaBillsAllocation(t *testing.T) {
	eng := sim.New(1, 1)
	a := mem.NewArena(1024)
	eng.Run(func(p rt.Proc) {
		before := p.Stats().Get(stats.Manager)
		a.Alloc(p, stats.Manager, 256)
		if p.Stats().Get(stats.Manager) == before {
			t.Error("allocation billed nothing")
		}
	})
}

func TestGlobalPoolSerializes(t *testing.T) {
	// N workers allocating through the global pool must take ~N times
	// longer than one worker: the latch serializes them (the §4.1
	// malloc bottleneck).
	run := func(cores int) uint64 {
		eng := sim.New(cores, 1)
		pool := mem.NewGlobalPool(eng)
		var max uint64
		eng.Run(func(p rt.Proc) {
			alloc := pool.Bound()
			for i := 0; i < 50; i++ {
				alloc.Alloc(p, stats.Useful, 64)
			}
			if p.Now() > max {
				max = p.Now()
			}
		})
		return max
	}
	one := run(1)
	sixteen := run(16)
	if sixteen < 8*one {
		t.Fatalf("global pool not serializing: 1 core %d cycles, 16 cores %d", one, sixteen)
	}
}

func TestGlobalPoolBuffersAreSafe(t *testing.T) {
	eng := sim.New(4, 1)
	pool := mem.NewGlobalPool(eng)
	bufs := make([][]byte, 4)
	eng.Run(func(p rt.Proc) {
		alloc := pool.Bound()
		b := alloc.Alloc(p, stats.Useful, 32)
		for i := range b {
			b[i] = byte(p.ID())
		}
		bufs[p.ID()] = b
	})
	for id, b := range bufs {
		for _, v := range b {
			if v != byte(id) {
				t.Fatalf("worker %d's buffer corrupted", id)
			}
		}
	}
}
