// Package mem implements the DBMS's memory allocator (§4.1 of the paper).
// The paper found stock malloc to be the first scalability wall — even
// read-only workloads allocate constantly (read copies in TIMESTAMP/OCC,
// access-tracking metadata) — and replaced it with per-thread pools that
// resize with the workload. We reproduce both designs:
//
//   - Arena: a per-worker pool. Allocation is a pointer bump whose pool
//     grows geometrically, amortizing refill costs exactly like the
//     paper's auto-resizing pools. No cross-core traffic.
//   - GlobalPool: a single latch-protected pool standing in for a
//     centralized malloc; every allocation serializes on one latch. Used
//     by the malloc ablation benchmark to reproduce the paper's finding.
package mem

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Allocator hands out transient per-transaction buffers (read copies, undo
// images, write workspaces). Buffers are bulk-released via Reset at
// transaction boundaries, mirroring DBx1000's per-transaction pools.
type Allocator interface {
	// Alloc returns an n-byte buffer, billing the allocation to c.
	Alloc(p rt.Proc, c stats.Component, n int) []byte
	// Reset recycles everything allocated since the last Reset.
	Reset()
}

// Arena is the per-worker resizable pool. Not safe for concurrent use;
// each worker owns one.
type Arena struct {
	chunk    []byte
	off      int
	minChunk int
}

// NewArena creates a per-worker pool with the given initial chunk size.
func NewArena(initial int) *Arena {
	if initial < 1024 {
		initial = 1024
	}
	return &Arena{chunk: make([]byte, initial), minChunk: initial}
}

// Alloc implements Allocator.
func (a *Arena) Alloc(p rt.Proc, c stats.Component, n int) []byte {
	p.Tick(c, costs.AllocBase+costs.CopyCost(uint64(n))/8)
	if a.off+n > len(a.chunk) {
		// Auto-resize: double (at least) so repeated large requests
		// amortize, the paper's dynamic pool resizing.
		size := len(a.chunk) * 2
		for size < n {
			size *= 2
		}
		a.chunk = make([]byte, size)
		a.off = 0
		// Growing the pool costs a coarse-grained allocation.
		p.Tick(c, costs.AllocBase*8)
	}
	b := a.chunk[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// Reset implements Allocator. The chunk is retained (and with it any
// growth), so steady-state transactions allocate without refills.
func (a *Arena) Reset() { a.off = 0 }

// GlobalPool models a centralized allocator: one latch serializes every
// allocation from every core. It exists to reproduce the paper's §4.1
// observation that stock malloc dominates execution time at high core
// counts; the DBMS proper always uses Arena.
type GlobalPool struct {
	latch rt.Latch
}

// NewGlobalPool creates the centralized allocator on runtime r.
func NewGlobalPool(r rt.Runtime) *GlobalPool {
	return &GlobalPool{latch: r.NewLatch(0xA110C)}
}

// Bound returns a per-worker view of the pool implementing Allocator.
func (g *GlobalPool) Bound() Allocator { return &globalAlloc{pool: g} }

type globalAlloc struct {
	pool *GlobalPool
}

// Alloc implements Allocator: serialize on the global latch, pay the
// centralized allocator's longer instruction path, and hand back a buffer.
func (ga *globalAlloc) Alloc(p rt.Proc, c stats.Component, n int) []byte {
	ga.pool.latch.Acquire(p, c)
	p.Sync(c, costs.GlobalAllocBase+costs.CopyCost(uint64(n))/8)
	ga.pool.latch.Release(p, c)
	return make([]byte, n)
}

// Reset implements Allocator (a no-op: the global pool frees eagerly).
func (ga *globalAlloc) Reset() {}
