package zipf

import "math"

// mathPow is a seam for math.Pow, isolated so the hot path documents its
// single float dependency.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
