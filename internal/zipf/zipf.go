// Package zipf implements the YCSB Zipfian key generator (Gray et al.,
// "Quickly generating billion-record synthetic databases", SIGMOD '94),
// parameterized the same way as the paper's workloads: a theta in [0, 1)
// where theta=0 is uniform, theta=0.6 is the paper's "medium contention"
// (10% of tuples receive ~40% of accesses) and theta=0.8 is "high
// contention" (~60% of accesses).
package zipf

import "math/rand"

// Generator produces Zipf-distributed values in [0, n). It is not safe for
// concurrent use; each worker owns one, seeded from its private RNG.
type Generator struct {
	n     uint64
	theta float64

	// Precomputed constants from the Gray et al. algorithm.
	alpha   float64
	zetan   float64
	eta     float64
	zeta2   float64
	halfPow float64 // 0.5^theta, hoisted out of every skewed Next draw
	uniform bool
}

// zetaCacheKey memoizes the expensive zeta(n, theta) sum, which is O(n) and
// shared by every worker using the same table size and skew.
type zetaCacheKey struct {
	n     uint64
	theta float64
}

var zetaCache = map[zetaCacheKey]float64{}

// zeta computes sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	key := zetaCacheKey{n, theta}
	if v, ok := zetaCache[key]; ok {
		return v
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	zetaCache[key] = sum
	return sum
}

// pow is math.Pow specialized to avoid importing math for the common
// theta=0 path.
func pow(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	return mathPow(x, y)
}

// New creates a generator over [0, n) with skew theta. theta must be in
// [0, 1); theta=0 yields the uniform distribution.
//
// New precomputes zeta(n, theta), which costs O(n) on first use for a given
// (n, theta) pair; subsequent generators reuse the memoized value. New is
// not safe for concurrent use (construct generators before starting
// workers, as the workload setup does).
func New(n uint64, theta float64) *Generator {
	if n == 0 {
		panic("zipf: empty domain")
	}
	if theta < 0 || theta >= 1 {
		panic("zipf: theta must be in [0, 1)")
	}
	g := &Generator{n: n, theta: theta}
	if theta == 0 {
		g.uniform = true
		return g
	}
	g.zetan = zeta(n, theta)
	g.zeta2 = zeta(2, theta)
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = (1.0 - mathPow(2.0/float64(n), 1.0-theta)) / (1.0 - g.zeta2/g.zetan)
	g.halfPow = mathPow(0.5, theta)
	return g
}

// N returns the domain size.
func (g *Generator) N() uint64 { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }

// Next draws the next value using rng. Rank 0 is the hottest key; callers
// that want hot keys scattered across the key space should scramble the
// result (see Scramble).
func (g *Generator) Next(rng *rand.Rand) uint64 {
	if g.uniform {
		return uint64(rng.Int63n(int64(g.n)))
	}
	u := rng.Float64()
	uz := u * g.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+g.halfPow {
		return 1
	}
	return uint64(float64(g.n) * mathPow(g.eta*u-g.eta+1.0, g.alpha))
}

// Scramble maps a Zipf rank to a pseudo-random position in [0, n) so that
// hot keys are spread over the table rather than clustered at low ids,
// matching YCSB's scrambled-zipfian behaviour. The mapping is a fixed
// bijection-like hash reduced mod n (collisions merely relocate hot spots,
// which is what YCSB's FNV scramble does too).
func Scramble(rank, n uint64) uint64 {
	z := rank + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z % n
}
