package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadParams(t *testing.T) {
	for _, bad := range []struct {
		n     uint64
		theta float64
	}{
		{0, 0.5}, {100, -0.1}, {100, 1.0}, {100, 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) did not panic", bad.n, bad.theta)
				}
			}()
			New(bad.n, bad.theta)
		}()
	}
}

func TestNextInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, thetaRaw uint8) bool {
		theta := float64(thetaRaw%95) / 100.0
		g := New(1000, theta)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			v := g.Next(r)
			if v >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	const n, draws = 100, 200_000
	g := New(n, 0)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("theta=0 key %d drawn %d times, want ~%.0f", k, c, want)
		}
	}
}

// TestSkewMatchesPaper verifies the paper's §3.3 calibration: at
// theta=0.6 the hottest 10%% of keys receive ~40%% of accesses, and at
// theta=0.8 ~60%%.
func TestSkewMatchesPaper(t *testing.T) {
	const n, draws = 10_000, 500_000
	cases := []struct {
		theta   float64
		wantHot float64
		tol     float64
	}{
		{0.6, 0.40, 0.08},
		{0.8, 0.60, 0.08},
	}
	for _, c := range cases {
		g := New(n, c.theta)
		rng := rand.New(rand.NewSource(13))
		hot := 0
		for i := 0; i < draws; i++ {
			// Rank < n/10 is the hottest 10% (ranks are by
			// popularity in the Gray generator).
			if g.Next(rng) < n/10 {
				hot++
			}
		}
		got := float64(hot) / draws
		if math.Abs(got-c.wantHot) > c.tol {
			t.Errorf("theta=%.1f: hot-10%% share = %.3f, want ~%.2f", c.theta, got, c.wantHot)
		}
	}
}

func TestMonotoneSkew(t *testing.T) {
	// Higher theta concentrates more mass on rank 0.
	const n, draws = 1000, 100_000
	prev := -1.0
	for _, theta := range []float64{0.2, 0.5, 0.8} {
		g := New(n, theta)
		rng := rand.New(rand.NewSource(3))
		zero := 0
		for i := 0; i < draws; i++ {
			if g.Next(rng) == 0 {
				zero++
			}
		}
		share := float64(zero) / draws
		if share <= prev {
			t.Fatalf("rank-0 share did not grow with theta: %.4f then %.4f", prev, share)
		}
		prev = share
	}
}

func TestZetaMemoized(t *testing.T) {
	a := zeta(5000, 0.75)
	b := zeta(5000, 0.75)
	if a != b {
		t.Fatal("memoized zeta returned different values")
	}
	// Analytic check for small n: zeta(3, 0.5) = 1 + 1/sqrt(2) + 1/sqrt(3).
	want := 1 + 1/math.Sqrt(2) + 1/math.Sqrt(3)
	if got := zeta(3, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta(3, 0.5) = %v, want %v", got, want)
	}
}

func TestScrambleStaysInRange(t *testing.T) {
	f := func(rank uint64, nRaw uint16) bool {
		n := uint64(nRaw) + 1
		return Scramble(rank, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleSpreadsHotKeys(t *testing.T) {
	// Consecutive ranks should not map to consecutive positions.
	const n = 1 << 20
	adjacent := 0
	for r := uint64(0); r < 100; r++ {
		a, b := Scramble(r, n), Scramble(r+1, n)
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			adjacent++
		}
	}
	if adjacent > 2 {
		t.Fatalf("%d/100 consecutive ranks stayed adjacent after scrambling", adjacent)
	}
}

func TestGeneratorAccessors(t *testing.T) {
	g := New(42, 0.6)
	if g.N() != 42 || g.Theta() != 0.6 {
		t.Fatalf("accessors: N=%d theta=%v", g.N(), g.Theta())
	}
}

func BenchmarkNextSkewed(b *testing.B) {
	g := New(1<<20, 0.8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}

func BenchmarkNextUniform(b *testing.B) {
	g := New(1<<20, 0)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}
