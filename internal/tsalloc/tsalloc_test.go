package tsalloc_test

import (
	"testing"

	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

func TestParseMethod(t *testing.T) {
	cases := map[string]tsalloc.Method{
		"mutex": tsalloc.Mutex, "atomic": tsalloc.Atomic,
		"batch8": tsalloc.Batch8, "batch16": tsalloc.Batch16,
		"clock": tsalloc.Clock, "hw": tsalloc.Hardware, "hardware": tsalloc.Hardware,
	}
	for s, want := range cases {
		got, err := tsalloc.ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := tsalloc.ParseMethod("bogus"); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range tsalloc.Methods {
		if m.String() == "" || m.String()[0] == 'M' && m != tsalloc.Mutex {
			t.Errorf("method %d has suspicious name %q", int(m), m)
		}
	}
}

// TestUniqueness: every method must issue globally unique timestamps
// under concurrent allocation on the simulator.
func TestUniqueness(t *testing.T) {
	for _, m := range tsalloc.Methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			const cores, per = 16, 50
			eng := sim.New(cores, 3)
			alloc := tsalloc.New(m, eng)
			got := make([][]uint64, cores)
			eng.Run(func(p rt.Proc) {
				for i := 0; i < per; i++ {
					got[p.ID()] = append(got[p.ID()], alloc.Next(p))
				}
			})
			seen := map[uint64]bool{}
			for _, list := range got {
				for _, ts := range list {
					if seen[ts] {
						t.Fatalf("%s issued duplicate timestamp %d", m, ts)
					}
					seen[ts] = true
				}
			}
		})
	}
}

// TestPerWorkerMonotonic: timestamps drawn by one worker must increase.
func TestPerWorkerMonotonic(t *testing.T) {
	for _, m := range tsalloc.Methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			eng := sim.New(8, 5)
			alloc := tsalloc.New(m, eng)
			bad := false
			eng.Run(func(p rt.Proc) {
				var last uint64
				for i := 0; i < 100; i++ {
					ts := alloc.Next(p)
					if ts <= last {
						bad = true
						return
					}
					last = ts
				}
			})
			if bad {
				t.Fatalf("%s issued non-increasing timestamps to one worker", m)
			}
		})
	}
}

// TestUniquenessNative repeats uniqueness with real goroutines racing.
func TestUniquenessNative(t *testing.T) {
	for _, m := range tsalloc.Methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			const cores, per = 8, 200
			rtm := native.New(cores, 3)
			alloc := tsalloc.New(m, rtm)
			got := make([][]uint64, cores)
			rtm.Run(func(p rt.Proc) {
				for i := 0; i < per; i++ {
					got[p.ID()] = append(got[p.ID()], alloc.Next(p))
				}
			})
			seen := map[uint64]bool{}
			for _, list := range got {
				for _, ts := range list {
					if seen[ts] {
						t.Fatalf("%s issued duplicate timestamp %d natively", m, ts)
					}
					seen[ts] = true
				}
			}
		})
	}
}

// TestBillingGoesToTsAlloc: allocation cost lands in the TS ALLOCATION
// bucket, the component the paper's breakdowns track.
func TestBillingGoesToTsAlloc(t *testing.T) {
	for _, m := range tsalloc.Methods {
		eng := sim.New(2, 1)
		alloc := tsalloc.New(m, eng)
		eng.Run(func(p rt.Proc) {
			for i := 0; i < 20; i++ {
				alloc.Next(p)
			}
		})
		if eng.Proc(0).Stats().Get(stats.TsAlloc) == 0 {
			t.Errorf("%s billed nothing to TsAlloc", m)
		}
	}
}

// TestContentionOrdering verifies the paper's Fig. 6 ordering at a
// contended core count: clock > hardware > batched > atomic > mutex.
func TestContentionOrdering(t *testing.T) {
	const cores = 256
	const window = 100_000
	rates := map[tsalloc.Method]float64{}
	for _, m := range tsalloc.Methods {
		eng := sim.New(cores, 9)
		alloc := tsalloc.New(m, eng)
		counts := make([]uint64, cores)
		eng.Run(func(p rt.Proc) {
			for p.Now() < window {
				alloc.Next(p)
				counts[p.ID()]++
			}
		})
		var total uint64
		for _, c := range counts {
			total += c
		}
		rates[m] = float64(total)
	}
	order := []tsalloc.Method{tsalloc.Clock, tsalloc.Hardware, tsalloc.Batch16, tsalloc.Batch8, tsalloc.Atomic, tsalloc.Mutex}
	for i := 0; i+1 < len(order); i++ {
		if rates[order[i]] <= rates[order[i+1]] {
			t.Fatalf("at %d cores, %s (%.0f) should outrate %s (%.0f)",
				cores, order[i], rates[order[i]], order[i+1], rates[order[i+1]])
		}
	}
}

// TestBatchedDrawsFewerSharedOps: batching must reduce traffic on the
// shared counter by ~the batch size.
func TestBatchedDrawsFewerSharedOps(t *testing.T) {
	const cores, per = 4, 64
	run := func(m tsalloc.Method) uint64 {
		eng := sim.New(cores, 1)
		alloc := tsalloc.New(m, eng)
		var end uint64
		eng.Run(func(p rt.Proc) {
			for i := 0; i < per; i++ {
				alloc.Next(p)
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
		return end
	}
	plain := run(tsalloc.Atomic)
	batched := run(tsalloc.Batch16)
	if batched >= plain {
		t.Fatalf("batch16 (%d cycles) not cheaper than plain atomic (%d cycles)", batched, plain)
	}
}
