// Package tsalloc implements the timestamp allocation methods evaluated in
// §4.3 of the paper. Every T/O-based scheme (and WAIT_DIE) draws per-
// transaction timestamps from one of these allocators; Fig. 6 is their
// micro-benchmark and Fig. 7 measures their effect inside the DBMS.
//
// Methods:
//
//	mutex      — a critical section around a shared counter (the naïve
//	             baseline; worst scalability).
//	atomic     — a single atomic fetch-add; the cache line ping-pongs
//	             across the chip, capping throughput near 10M ts/s at
//	             1024 cores (the coherence round trip is ~100 cycles).
//	batch8/16  — Silo-style batched atomic addition: one fetch-add
//	             returns a batch; restarts reuse timestamps from the
//	             stale batch, reproducing Fig. 7b's pathology.
//	clock      — each core reads its local synchronized clock and
//	             concatenates its thread id; fully decentralized, linear
//	             scaling (requires hardware support the paper notes only
//	             Intel shipped).
//	hardware   — the paper's proposed center-of-chip fetch-add unit:
//	             one-cycle service, ~1B ts/s.
package tsalloc

import (
	"fmt"

	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Method selects a timestamp allocation strategy.
type Method int

const (
	// Mutex is the naïve critical-section allocator.
	Mutex Method = iota
	// Atomic is non-batched atomic addition — the paper's default for
	// all DBMS experiments ("the DBMS uses atomic addition without
	// batching" since the others need unavailable hardware).
	Atomic
	// Batch8 is atomic addition returning batches of 8.
	Batch8
	// Batch16 is atomic addition returning batches of 16.
	Batch16
	// Clock is synchronized per-core clock concatenated with thread id.
	Clock
	// Hardware is the center-of-chip hardware counter.
	Hardware
)

// Methods lists all methods in Fig. 6's order.
var Methods = []Method{Clock, Hardware, Batch16, Batch8, Atomic, Mutex}

// String returns the paper's label for the method.
func (m Method) String() string {
	switch m {
	case Mutex:
		return "Mutex"
	case Atomic:
		return "Atomic"
	case Batch8:
		return "Atomic batch=8"
	case Batch16:
		return "Atomic batch=16"
	case Clock:
		return "Clock"
	case Hardware:
		return "HW Counter"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod maps a CLI name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "mutex":
		return Mutex, nil
	case "atomic":
		return Atomic, nil
	case "batch8":
		return Batch8, nil
	case "batch16":
		return Batch16, nil
	case "clock":
		return Clock, nil
	case "hw", "hardware":
		return Hardware, nil
	default:
		return 0, fmt.Errorf("tsalloc: unknown method %q", s)
	}
}

// Allocator hands out unique, monotonically increasing (per source)
// transaction timestamps. Implementations are safe for use from any Proc.
type Allocator interface {
	// Next returns a fresh timestamp for p, billing stats.TsAlloc.
	Next(p rt.Proc) uint64
	// Method reports the allocation strategy.
	Method() Method
}

// tsBits is the number of low bits reserved for the worker id in
// clock-based timestamps, bounding the runtime to 1024 workers — exactly
// the paper's maximum core count.
const tsBits = 10

// New builds an allocator of the given method on runtime r.
func New(m Method, r rt.Runtime) Allocator {
	switch m {
	case Mutex:
		return &mutexAlloc{latch: r.NewLatch(0x75A110C)}
	case Atomic:
		return &atomicAlloc{ctr: r.NewCounter(0x75A110C)}
	case Batch8:
		return newBatchAlloc(r, 8)
	case Batch16:
		return newBatchAlloc(r, 16)
	case Clock:
		return &clockAlloc{last: make([]uint64, r.NumProcs())}
	case Hardware:
		return &hwAlloc{ctr: r.NewHardwareCounter(0x75A110C)}
	default:
		panic(fmt.Sprintf("tsalloc: unknown method %d", int(m)))
	}
}

// mutexAlloc serializes every allocation through one latch.
type mutexAlloc struct {
	latch rt.Latch
	next  uint64
}

func (a *mutexAlloc) Method() Method { return Mutex }

func (a *mutexAlloc) Next(p rt.Proc) uint64 {
	a.latch.Acquire(p, stats.TsAlloc)
	p.Sync(stats.TsAlloc, costs.TsMutexHold)
	a.next++
	ts := a.next
	a.latch.Release(p, stats.TsAlloc)
	return ts
}

// atomicAlloc is one fetch-add on a shared line.
type atomicAlloc struct {
	ctr rt.Counter
}

func (a *atomicAlloc) Method() Method { return Atomic }

func (a *atomicAlloc) Next(p rt.Proc) uint64 {
	return a.ctr.Add(p, stats.TsAlloc, 1)
}

// batchAlloc performs one fetch-add per `size` timestamps. Per-worker
// batches mean a restarted transaction gets the *next timestamp in the
// stale batch*, which stays smaller than the conflicting transaction's
// timestamp — the starvation loop of Fig. 7b.
type batchAlloc struct {
	ctr  rt.Counter
	size uint64
	cur  []batchState
}

type batchState struct {
	next, end uint64
	_pad      [6]uint64 // avoid false sharing between workers (native runtime)
}

func newBatchAlloc(r rt.Runtime, size uint64) *batchAlloc {
	return &batchAlloc{
		ctr:  r.NewCounter(0x75A110C),
		size: size,
		cur:  make([]batchState, r.NumProcs()),
	}
}

func (a *batchAlloc) Method() Method {
	if a.size == 8 {
		return Batch8
	}
	return Batch16
}

func (a *batchAlloc) Next(p rt.Proc) uint64 {
	st := &a.cur[p.ID()]
	p.Tick(stats.TsAlloc, 2) // local batch bookkeeping
	if st.next >= st.end {
		end := a.ctr.Add(p, stats.TsAlloc, a.size)
		st.end = end
		st.next = end - a.size
	}
	st.next++
	return st.next
}

// clockAlloc reads the core-local synchronized clock and concatenates the
// worker id. Fully decentralized: no shared state at all.
type clockAlloc struct {
	last []uint64 // per-worker last issued (coarse tick disambiguation)
}

func (a *clockAlloc) Method() Method { return Clock }

func (a *clockAlloc) Next(p rt.Proc) uint64 {
	p.Tick(stats.TsAlloc, costs.TsClockRead)
	t := p.Now()
	// Guarantee strict local monotonicity even if the clock read
	// granularity repeats (native runtime).
	if t <= a.last[p.ID()] {
		t = a.last[p.ID()] + 1
	}
	a.last[p.ID()] = t
	return t<<tsBits | uint64(p.ID())
}

// hwAlloc uses the center-of-chip hardware fetch-add unit.
type hwAlloc struct {
	ctr rt.Counter
}

func (a *hwAlloc) Method() Method { return Hardware }

func (a *hwAlloc) Next(p rt.Proc) uint64 {
	return a.ctr.Add(p, stats.TsAlloc, 1)
}
