package index_test

import (
	"math/rand"
	"sort"
	"testing"

	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
)

func buildOrdered(n int) (*sim.Engine, *index.Ordered) {
	eng := sim.New(4, 1)
	schema := storage.NewSchema("T", storage.Col{Name: "K", Width: 8})
	tab := storage.NewTable(0, schema, n, n, 4)
	return eng, index.NewOrdered(eng, tab)
}

// TestOrderedAgainstSortedSlice cross-checks random inserts, removes and
// range scans against a sorted reference slice.
func TestOrderedAgainstSortedSlice(t *testing.T) {
	eng, idx := buildOrdered(1 << 16)
	rng := rand.New(rand.NewSource(99))
	type kv struct {
		k uint64
		s int
	}
	var ref []kv
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(4000)) // dense: plenty of duplicates
		idx.LoadInsert(k, i)
		ref = append(ref, kv{k, i})
	}
	// Remove a third of them.
	rng.Shuffle(len(ref), func(i, j int) { ref[i], ref[j] = ref[j], ref[i] })
	cut := len(ref) / 3
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		for _, e := range ref[:cut] {
			if !idx.Remove(p, e.k, e.s) {
				t.Errorf("remove(%d, %d) found nothing", e.k, e.s)
				return
			}
		}
		ref = ref[cut:]
		sort.Slice(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
		if idx.Len() != len(ref) {
			t.Errorf("Len = %d, want %d", idx.Len(), len(ref))
		}
		for trial := 0; trial < 200; trial++ {
			lo := uint64(rng.Intn(4200))
			hi := lo + uint64(rng.Intn(500))
			got := idx.RangeScan(p, lo, hi, nil)
			var want []kv
			for _, e := range ref {
				if e.k >= lo && e.k <= hi {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("scan [%d,%d]: %d entries, want %d", lo, hi, len(got), len(want))
			}
			for i, g := range got {
				if g.Key != want[i].k {
					t.Fatalf("scan [%d,%d] entry %d: key %d, want %d", lo, hi, i, g.Key, want[i].k)
				}
				if i > 0 && got[i-1].Key > g.Key {
					t.Fatalf("scan [%d,%d] not ascending at %d", lo, hi, i)
				}
			}
		}
	})
}

// TestOrderedScanSlotsMatch verifies key→slot fidelity with unique keys
// plus limit and lookup behaviour.
func TestOrderedScanSlotsMatch(t *testing.T) {
	eng, idx := buildOrdered(4096)
	perm := rand.New(rand.NewSource(7)).Perm(2000)
	for _, k := range perm {
		idx.LoadInsert(uint64(k)*3, k)
	}
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		got := idx.RangeScan(p, 30, 60, nil)
		if len(got) != 11 {
			t.Fatalf("scan [30,60] over multiples of 3: %d entries, want 11", len(got))
		}
		for i, e := range got {
			if e.Key != uint64(30+3*i) || int(e.Slot)*3 != int(e.Key) {
				t.Fatalf("entry %d = {%d, %d}", i, e.Key, e.Slot)
			}
		}
		lim := idx.RangeScanLimit(p, 0, 1<<62, 5, nil)
		if len(lim) != 5 || lim[0].Key != 0 || lim[4].Key != 12 {
			t.Fatalf("limit scan = %v", lim)
		}
		if s, ok := idx.Lookup(p, 1500); !ok || s != 500 {
			t.Fatalf("Lookup(1500) = %d, %v", s, ok)
		}
		if _, ok := idx.Lookup(p, 1501); ok {
			t.Fatal("Lookup found a key never inserted")
		}
		if got := idx.RangeScan(p, 100, 99, nil); len(got) != 0 {
			t.Fatalf("empty range returned %d entries", len(got))
		}
	})
	// LoadLookup needs no proc.
	if s, ok := idx.LoadLookup(300); !ok || s != 100 {
		t.Fatalf("LoadLookup(300) = %d, %v", s, ok)
	}
}

// TestOrderedConcurrentInserts drives latched inserts from all workers and
// verifies every entry is present and ordered afterwards.
func TestOrderedConcurrentInserts(t *testing.T) {
	eng, idx := buildOrdered(4096)
	const perWorker = 200
	eng.Run(func(p rt.Proc) {
		base := p.ID() * perWorker
		for i := 0; i < perWorker; i++ {
			idx.Insert(p, uint64(base+i), base+i)
		}
	})
	if idx.Len() != 4*perWorker {
		t.Fatalf("Len = %d, want %d", idx.Len(), 4*perWorker)
	}
	prev, n := -1, 0
	idx.Range(func(key uint64, slot int) {
		if int(key) != slot || int(key) <= prev {
			t.Fatalf("entry {%d, %d} after key %d", key, slot, prev)
		}
		prev = int(key)
		n++
	})
	if n != 4*perWorker {
		t.Fatalf("Range visited %d entries, want %d", n, 4*perWorker)
	}
}

// TestOrderedScanBilledToIndexComponent pins the cost model: scans and
// inserts bill the INDEX component and nothing else.
func TestOrderedScanBilledToIndexComponent(t *testing.T) {
	eng, idx := buildOrdered(256)
	for i := 0; i < 100; i++ {
		idx.LoadInsert(uint64(i), i)
	}
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		before := p.Stats().Get(stats.Index)
		idx.RangeScan(p, 10, 40, nil)
		mid := p.Stats().Get(stats.Index)
		if mid == before {
			t.Error("scan billed nothing to INDEX")
		}
		idx.Insert(p, 1000, 100)
		if p.Stats().Get(stats.Index) == mid {
			t.Error("insert billed nothing to INDEX")
		}
		if p.Stats().Get(stats.Manager) != 0 {
			t.Error("ordered index leaked cycles into MANAGER")
		}
	})
}
