package index_test

import (
	"testing"
	"testing/quick"

	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
)

func buildTable(n int) (*sim.Engine, *storage.Table) {
	eng := sim.New(4, 1)
	schema := storage.NewSchema("T", storage.Col{Name: "K", Width: 8})
	tab := storage.NewTable(0, schema, n, n, 4)
	return eng, tab
}

func TestLookupAfterLoadInsert(t *testing.T) {
	eng, tab := buildTable(1000)
	idx := index.New(eng, tab, 256)
	for i := 0; i < 1000; i++ {
		idx.LoadInsert(uint64(i*7), i)
	}
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		for i := 0; i < 1000; i++ {
			slot, ok := idx.Lookup(p, uint64(i*7))
			if !ok || slot != i {
				t.Errorf("lookup(%d) = %d,%v", i*7, slot, ok)
				return
			}
		}
		if _, ok := idx.Lookup(p, 999_999); ok {
			t.Error("found a key never inserted")
		}
	})
}

func TestInsertRemove(t *testing.T) {
	eng, tab := buildTable(100)
	idx := index.New(eng, tab, 16)
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		idx.Insert(p, 42, 7)
		if slot, ok := idx.Lookup(p, 42); !ok || slot != 7 {
			t.Errorf("lookup after insert = %d,%v", slot, ok)
		}
		if !idx.Remove(p, 42, 7) {
			t.Error("remove reported nothing removed")
		}
		if _, ok := idx.Lookup(p, 42); ok {
			t.Error("key present after removal")
		}
		if idx.Remove(p, 42, 7) {
			t.Error("second removal should be a no-op")
		}
	})
}

func TestConcurrentInsertsAllVisible(t *testing.T) {
	eng, tab := buildTable(4096)
	idx := index.New(eng, tab, 64) // few buckets: force latch contention
	const perWorker = 100
	eng.Run(func(p rt.Proc) {
		base := p.ID() * perWorker
		for i := 0; i < perWorker; i++ {
			idx.Insert(p, uint64(base+i), base+i)
		}
	})
	// Verify sequentially after the run.
	eng2, _ := buildTable(1)
	_ = eng2
	count := 0
	probe := sim.New(1, 2)
	probe.Run(func(p rt.Proc) {
		for k := 0; k < 4*perWorker; k++ {
			if slot, ok := idx.Lookup(p, uint64(k)); ok && slot == k {
				count++
			}
		}
	})
	if count != 4*perWorker {
		t.Fatalf("only %d/%d inserts visible", count, 4*perWorker)
	}
}

func TestIndexTimeBilledToIndexComponent(t *testing.T) {
	eng, tab := buildTable(100)
	idx := index.New(eng, tab, 16)
	idx.LoadInsert(1, 1)
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		idx.Lookup(p, 1)
		if p.Stats().Get(stats.Index) == 0 {
			t.Error("lookup billed nothing to INDEX")
		}
		if p.Stats().Get(stats.Manager) != 0 {
			t.Error("lookup leaked cycles into MANAGER")
		}
	})
}

func TestCompositeKeyInjective(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		k1 := index.CompositeKey(uint64(a), uint64(b), uint64(c), uint64(d))
		k2 := index.CompositeKey(uint64(a), uint64(b), uint64(c), uint64(d))
		if k1 != k2 {
			return false
		}
		// Different tuples must map to different keys.
		k3 := index.CompositeKey(uint64(a)+1, uint64(b), uint64(c), uint64(d))
		return k1 != k3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if index.CompositeKey(1, 2, 3, 4) != 1<<48|2<<32|3<<16|4 {
		t.Fatal("packing layout changed")
	}
}

func TestBucketCountRoundsUp(t *testing.T) {
	eng, tab := buildTable(10)
	idx := index.New(eng, tab, 3) // rounds to 4
	// Inserting with many distinct keys must still work.
	idx.LoadInsert(1, 1)
	idx.LoadInsert(2, 2)
	idx.LoadInsert(3, 3)
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		for k := 1; k <= 3; k++ {
			if slot, ok := idx.Lookup(p, uint64(k)); !ok || slot != k {
				t.Errorf("lookup(%d) = %d,%v", k, slot, ok)
			}
		}
	})
}
