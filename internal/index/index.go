// Package index implements the DBMS's hash indexes (§3.2: "the system
// supports basic hash table indexes"). Buckets carry low-level latches
// whose cost — like the paper's — is billed to the INDEX component, and
// bucket cache lines are placed across the chip's L2 slices so probes pay
// realistic NUCA latency under simulation.
package index

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
)

// entry is one key→slot mapping.
type entry struct {
	key  uint64
	slot int32
}

// bucket is one hash bucket: a latch plus an open chain of entries. The
// first inlineEntries mappings live directly in the bucket, so inserting
// into a fresh bucket — the common case when the bucket count is sized to
// the key count — touches no allocator at all; only collision chains
// longer than the inline space spill into the overflow slice. This keeps
// the runtime insert path (TPC-C's ORDERS/ORDER_LINE/HISTORY appends)
// steady-state allocation-free.
type bucket struct {
	latch    rt.Latch
	n        int32 // total entries (inline + overflow)
	inline   [inlineEntries]entry
	overflow []entry
}

// inlineEntries is the per-bucket inline capacity.
const inlineEntries = 2

// at returns entry i of the bucket's logical chain.
func (b *bucket) at(i int32) *entry {
	if i < inlineEntries {
		return &b.inline[i]
	}
	return &b.overflow[i-inlineEntries]
}

// push appends a mapping to the chain.
func (b *bucket) push(e entry) {
	if b.n < inlineEntries {
		b.inline[b.n] = e
	} else {
		if b.overflow == nil {
			// First spill: reserve enough that a hot bucket settles
			// after one allocation.
			b.overflow = make([]entry, 0, 4)
		}
		b.overflow = append(b.overflow, e)
	}
	b.n++
}

// Hash is a fixed-bucket-count hash index from uint64 keys to row slots.
// All mutation happens under per-bucket latches, so the index is safe on
// both the simulated and native runtimes.
type Hash struct {
	table   *storage.Table
	buckets []bucket
	mask    uint64
}

// New creates an index over table with at least minBuckets buckets
// (rounded up to a power of two).
func New(r rt.Runtime, table *storage.Table, minBuckets int) *Hash {
	n := 1
	for n < minBuckets {
		n <<= 1
	}
	h := &Hash{table: table, buckets: make([]bucket, n), mask: uint64(n - 1)}
	for i := range h.buckets {
		h.buckets[i].latch = r.NewLatch(uint64(table.ID)<<48 | 0xB0<<40 | uint64(i))
	}
	return h
}

// Table returns the indexed table.
func (h *Hash) Table() *storage.Table { return h.table }

func (h *Hash) bucketOf(key uint64) (*bucket, uint64) {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	i := z & h.mask
	return &h.buckets[i], i
}

// memKey identifies the bucket's cache line for NUCA placement.
func (h *Hash) memKey(i uint64) uint64 {
	return uint64(h.table.ID)<<48 | 0xB1<<40 | i
}

// Lookup probes for key, returning the row slot and whether it was found.
// The probe latches the bucket (the paper bills bucket latching to INDEX).
func (h *Hash) Lookup(p rt.Proc, key uint64) (int, bool) {
	b, i := h.bucketOf(key)
	b.latch.Acquire(p, stats.Index)
	p.MemRead(stats.Index, h.memKey(i), 16)
	p.Tick(stats.Index, costs.IndexProbe+uint64(b.n))
	slot, ok := -1, false
	for j := int32(0); j < b.n; j++ {
		if e := b.at(j); e.key == key {
			slot, ok = int(e.slot), true
			break
		}
	}
	b.latch.Release(p, stats.Index)
	return slot, ok
}

// Insert adds a key→slot mapping. Duplicate keys are allowed at this layer
// (the workloads use unique keys; the engine's deferred-insert protocol
// guarantees a slot becomes visible exactly once).
func (h *Hash) Insert(p rt.Proc, key uint64, slot int) {
	b, i := h.bucketOf(key)
	b.latch.Acquire(p, stats.Index)
	p.MemWrite(stats.Index, h.memKey(i), 16)
	p.Tick(stats.Index, costs.IndexInsert)
	b.push(entry{key: key, slot: int32(slot)})
	b.latch.Release(p, stats.Index)
}

// Remove deletes the key→slot mapping if present (used when rolling back a
// committed-insert is required, e.g. TPC-C NewOrder user aborts), and
// reports whether it removed anything.
func (h *Hash) Remove(p rt.Proc, key uint64, slot int) bool {
	b, i := h.bucketOf(key)
	b.latch.Acquire(p, stats.Index)
	p.MemWrite(stats.Index, h.memKey(i), 16)
	p.Tick(stats.Index, costs.IndexProbe+uint64(b.n))
	removed := false
	for j := int32(0); j < b.n; j++ {
		if e := b.at(j); e.key == key && int(e.slot) == slot {
			*e = *b.at(b.n - 1) // swap-delete with the chain's last entry
			if b.n > inlineEntries {
				b.overflow = b.overflow[:len(b.overflow)-1]
			}
			b.n--
			removed = true
			break
		}
	}
	b.latch.Release(p, stats.Index)
	return removed
}

// LoadInsert adds a mapping during single-threaded setup with no latching
// or cost accounting.
func (h *Hash) LoadInsert(key uint64, slot int) {
	b, _ := h.bucketOf(key)
	b.push(entry{key: key, slot: int32(slot)})
}

// LoadLookup probes for key during single-threaded setup or recovery, with
// no latching or cost accounting.
func (h *Hash) LoadLookup(key uint64) (int, bool) {
	b, _ := h.bucketOf(key)
	for j := int32(0); j < b.n; j++ {
		if e := b.at(j); e.key == key {
			return int(e.slot), true
		}
	}
	return -1, false
}

// Range calls f for every key→slot mapping, in bucket order. Quiesced use
// only (checkpointing, state dumps): it takes no latches.
func (h *Hash) Range(f func(key uint64, slot int)) {
	for i := range h.buckets {
		b := &h.buckets[i]
		for j := int32(0); j < b.n; j++ {
			e := b.at(j)
			f(e.key, int(e.slot))
		}
	}
}

// CompositeKey packs up to four small ids into one uint64 index key,
// used by TPC-C's multi-column primary keys (e.g. district = (W_ID, D_ID)).
func CompositeKey(a, b, c, d uint64) uint64 {
	return a<<48 | b<<32 | c<<16 | d
}
