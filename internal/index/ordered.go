package index

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
)

// Entry is one key→slot mapping returned by a range scan, in key order.
type Entry struct {
	Key  uint64
	Slot int32
}

// ordFanout is the maximum entry (leaf) or child (inner) count per node.
// Small enough that a split copies little, large enough that trees stay
// shallow at workload scale.
const ordFanout = 32

// onode is one B+tree node. Leaves chain through next for range scans;
// inner nodes hold len(kids)-1 separator keys (child i covers keys below
// keys[i]; the last child covers the rest).
type onode struct {
	leaf  bool
	keys  []uint64
	slots []int32  // leaf only, parallel to keys
	kids  []*onode // inner only, len(keys)+1
	next  *onode   // leaf chain
	id    uint64   // node id for NUCA cache-line placement
}

// Ordered is an ordered secondary index from uint64 keys to row slots: a
// B+tree guarded by one coarse latch per index. Like the hash index, all
// latch and traversal time is billed to the INDEX component — a scan-heavy
// workload pays for its index contention in the paper's breakdown. The
// coarse latch is deliberate: ordered indexes are secondary structures on
// the scan-bearing transactions' path, and serializing their maintenance
// makes the contention visible rather than hidden.
//
// Duplicate keys are allowed (entries with equal keys have no defined
// relative order); the workloads use unique keys.
type Ordered struct {
	table  *storage.Table
	latch  rt.Latch
	root   *onode
	count  int
	nextID uint64
}

// NewOrdered creates an empty ordered index over table.
func NewOrdered(r rt.Runtime, table *storage.Table) *Ordered {
	o := &Ordered{table: table}
	o.latch = r.NewLatch(uint64(table.ID)<<48 | 0xB3<<40)
	o.root = o.newNode(true)
	return o
}

// Table returns the indexed table.
func (o *Ordered) Table() *storage.Table { return o.table }

// Len returns the number of entries.
func (o *Ordered) Len() int { return o.count }

func (o *Ordered) newNode(leaf bool) *onode {
	n := &onode{leaf: leaf, id: o.nextID}
	o.nextID++
	return n
}

// memKey identifies a node's cache line for NUCA placement.
func (o *Ordered) memKey(id uint64) uint64 {
	return uint64(o.table.ID)<<48 | 0xB2<<40 | id
}

// childOf returns the descent position for key in an inner node: the
// number of separators <= key (inserts of a duplicate key go right of its
// separator, so a split never splits a duplicate run leftwards again).
func childOf(n *onode, key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childOfLow is the descent position for the FIRST entry with the given
// key: the number of separators strictly below it. Scans and removes use
// it so a duplicate run straddling a node split is found from its start.
func childOfLow(n *onode, key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafPos returns the insert position in a leaf: past all entries <= key.
func leafPos(n *onode, key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first position in a leaf with key >= target.
func lowerBound(n *onode, target uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert descends from n, inserting key→slot. It returns the new right
// sibling and its separator key when n split, or (nil, 0).
func (o *Ordered) insert(n *onode, key uint64, slot int32) (*onode, uint64) {
	if n.leaf {
		pos := leafPos(n, key)
		n.keys = append(n.keys, 0)
		n.slots = append(n.slots, 0)
		copy(n.keys[pos+1:], n.keys[pos:])
		copy(n.slots[pos+1:], n.slots[pos:])
		n.keys[pos] = key
		n.slots[pos] = slot
		if len(n.keys) <= ordFanout {
			return nil, 0
		}
		mid := len(n.keys) / 2
		right := o.newNode(true)
		right.keys = append(right.keys, n.keys[mid:]...)
		right.slots = append(right.slots, n.slots[mid:]...)
		n.keys = n.keys[:mid]
		n.slots = n.slots[:mid]
		right.next = n.next
		n.next = right
		return right, right.keys[0]
	}
	ci := childOf(n, key)
	split, sep := o.insert(n.kids[ci], key, slot)
	if split == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	n.kids = append(n.kids, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.keys[ci] = sep
	n.kids[ci+1] = split
	if len(n.kids) <= ordFanout {
		return nil, 0
	}
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := o.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return right, up
}

// insertRoot inserts and grows the tree at the root when it splits.
func (o *Ordered) insertRoot(key uint64, slot int32) {
	split, sep := o.insert(o.root, key, slot)
	if split != nil {
		nr := o.newNode(false)
		nr.keys = append(nr.keys, sep)
		nr.kids = append(nr.kids, o.root, split)
		o.root = nr
	}
	o.count++
}

// depth returns the tree height (1 for a lone leaf), used for cost billing.
func (o *Ordered) depth() uint64 {
	d, n := uint64(1), o.root
	for !n.leaf {
		n = n.kids[0]
		d++
	}
	return d
}

// findLeaf descends to the leaf an insert of key targets.
func (o *Ordered) findLeaf(key uint64) *onode {
	n := o.root
	for !n.leaf {
		n = n.kids[childOf(n, key)]
	}
	return n
}

// findLeafLow descends to the leaf holding the first entry with key >= the
// target (the scan entry point).
func (o *Ordered) findLeafLow(key uint64) *onode {
	n := o.root
	for !n.leaf {
		n = n.kids[childOfLow(n, key)]
	}
	return n
}

// Insert adds a key→slot mapping under the index latch, billing latch and
// traversal time to the INDEX component like the hash index does.
func (o *Ordered) Insert(p rt.Proc, key uint64, slot int) {
	o.latch.Acquire(p, stats.Index)
	p.MemWrite(stats.Index, o.memKey(o.findLeaf(key).id), 16)
	p.Tick(stats.Index, costs.IndexInsert+o.depth())
	o.insertRoot(key, int32(slot))
	o.latch.Release(p, stats.Index)
}

// Remove deletes the key→slot mapping if present (lazy: leaves are never
// merged) and reports whether it removed anything.
func (o *Ordered) Remove(p rt.Proc, key uint64, slot int) bool {
	o.latch.Acquire(p, stats.Index)
	p.MemWrite(stats.Index, o.memKey(o.findLeaf(key).id), 16)
	p.Tick(stats.Index, costs.IndexProbe+o.depth())
	removed := o.remove(key, int32(slot))
	o.latch.Release(p, stats.Index)
	return removed
}

func (o *Ordered) remove(key uint64, slot int32) bool {
	// Equal keys may span a leaf boundary; walk the chain while keys match.
	for n := o.findLeafLow(key); n != nil; n = n.next {
		for i := lowerBound(n, key); i < len(n.keys) && n.keys[i] == key; i++ {
			if n.slots[i] == slot {
				copy(n.keys[i:], n.keys[i+1:])
				copy(n.slots[i:], n.slots[i+1:])
				n.keys = n.keys[:len(n.keys)-1]
				n.slots = n.slots[:len(n.slots)-1]
				o.count--
				return true
			}
		}
		if len(n.keys) > 0 && n.keys[len(n.keys)-1] > key {
			break
		}
	}
	return false
}

// Lookup probes for the first entry with the given key.
func (o *Ordered) Lookup(p rt.Proc, key uint64) (int, bool) {
	o.latch.Acquire(p, stats.Index)
	p.Tick(stats.Index, costs.IndexProbe+o.depth())
	n := o.findLeafLow(key)
	p.MemRead(stats.Index, o.memKey(n.id), 16)
	slot, ok := -1, false
	if i := lowerBound(n, key); i < len(n.keys) && n.keys[i] == key {
		slot, ok = int(n.slots[i]), true
	}
	o.latch.Release(p, stats.Index)
	return slot, ok
}

// RangeScan appends every entry with lo <= key <= hi to out, in ascending
// key order, and returns the extended slice. The whole scan holds the
// index latch, and its cost — the descent plus one probe unit per entry
// returned and one cache line per leaf visited — is billed to INDEX.
//
// The scan returns the key→slot pairs only; the caller reads the rows
// through the concurrency-control scheme afterwards. Entries inserted
// after the scan's latch window are not seen: range predicates are
// latch-consistent, not serializable — phantoms are possible under every
// scheme (none of the seven implement next-key locking or predicate
// validation; see the chaos workload's documentation).
func (o *Ordered) RangeScan(p rt.Proc, lo, hi uint64, out []Entry) []Entry {
	return o.rangeScan(p, lo, hi, -1, out)
}

// RangeScanLimit is RangeScan capped at max entries (the max lowest-keyed
// matches); max < 0 means unlimited.
func (o *Ordered) RangeScanLimit(p rt.Proc, lo, hi uint64, max int, out []Entry) []Entry {
	return o.rangeScan(p, lo, hi, max, out)
}

func (o *Ordered) rangeScan(p rt.Proc, lo, hi uint64, max int, out []Entry) []Entry {
	if max == 0 || hi < lo {
		return out
	}
	o.latch.Acquire(p, stats.Index)
	found := 0
	n := o.findLeafLow(lo)
scan:
	for ; n != nil; n = n.next {
		p.MemRead(stats.Index, o.memKey(n.id), 64)
		for i := lowerBound(n, lo); i < len(n.keys); i++ {
			if n.keys[i] > hi {
				break scan
			}
			out = append(out, Entry{Key: n.keys[i], Slot: n.slots[i]})
			found++
			if max >= 0 && found >= max {
				break scan
			}
		}
	}
	p.Tick(stats.Index, costs.IndexProbe+o.depth()+uint64(found))
	o.latch.Release(p, stats.Index)
	return out
}

// LoadInsert adds a mapping during single-threaded setup with no latching
// or cost accounting.
func (o *Ordered) LoadInsert(key uint64, slot int) {
	o.insertRoot(key, int32(slot))
}

// LoadLookup probes for key during single-threaded setup or recovery, with
// no latching or cost accounting.
func (o *Ordered) LoadLookup(key uint64) (int, bool) {
	n := o.findLeafLow(key)
	if i := lowerBound(n, key); i < len(n.keys) && n.keys[i] == key {
		return int(n.slots[i]), true
	}
	return -1, false
}

// Range calls f for every entry in ascending key order. Quiesced use only
// (checkpointing, state dumps): it takes no latches.
func (o *Ordered) Range(f func(key uint64, slot int)) {
	n := o.root
	for !n.leaf {
		n = n.kids[0]
	}
	for ; n != nil; n = n.next {
		for i := range n.keys {
			f(n.keys[i], int(n.slots[i]))
		}
	}
}
