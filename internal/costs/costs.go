// Package costs centralizes the substrate-independent cycle costs of DBMS
// operations. The mesh-distance-dependent parts of an operation (NUCA
// traversal, line transfers) are charged by the runtime primitives; these
// constants cover the instruction-path lengths of the engine itself.
//
// The absolute values are calibrated to place single-core YCSB throughput
// in the tens of thousands of transactions per second at the 1 GHz target
// clock, the same order as the paper's engine; the experiments depend on
// the *ratios* (a tuple copy costs ~bytes moved; a manager operation costs
// tens of cycles; timestamp allocation under contention costs a cross-chip
// round trip), which mirror the paper's cost structure.
package costs

const (
	// TxnSetup is the fixed per-transaction bookkeeping (building the
	// context, resetting workspaces).
	TxnSetup = 100

	// UsefulPerRow is the application logic executed per row access
	// (YCSB transactions "do not perform any computation", so this is
	// just the query-invocation path).
	UsefulPerRow = 60

	// IndexProbe is the instruction cost of hashing a key and scanning a
	// bucket, on top of the NUCA access to the bucket's cache line and
	// its latch.
	IndexProbe = 30

	// IndexInsert is the instruction cost of adding an entry to a bucket.
	IndexInsert = 40

	// ManagerOp is one lock-manager or timestamp-manager bookkeeping
	// step (queue manipulation, metadata update), excluding latching.
	ManagerOp = 20

	// CopyPerByteShift scales tuple copies: cost = bytes >> CopyPerByteShift
	// (8 bytes per cycle, a memcpy through the core's pipeline).
	CopyPerByteShift = 3

	// AllocBase is the per-allocation cost of the custom per-thread
	// memory pools (§4.1): pointer bump plus bookkeeping.
	AllocBase = 15

	// GlobalAllocBase is the per-allocation instruction cost of the
	// deliberately pessimized centralized allocator used by the malloc
	// ablation; it also serializes on a latch.
	GlobalAllocBase = 60

	// AbortFixed is the fixed cost of rolling back a transaction, on top
	// of restoring undo images (which pay copy costs).
	AbortFixed = 80

	// BackoffBase is the mean restart backoff after an abort. DBx1000
	// restarts aborted transactions after a short randomized penalty so
	// the restarted transaction does not instantly re-collide.
	BackoffBase = 1000

	// WaitCheckInterval is how long a waiting transaction parks before
	// re-checking its grant state when no explicit wakeup arrives.
	WaitCheckInterval = 5000

	// DeadlockSearchPerEdge is the cost of traversing one waits-for edge
	// during DL_DETECT's cycle search.
	DeadlockSearchPerEdge = 10

	// TsClockRead is the cost of reading the core-local synchronized
	// clock (the paper's clock-based allocation).
	TsClockRead = 3

	// TsMutexHold is the critical-section length of the mutex-based
	// allocator (increment + bookkeeping while holding the mutex).
	TsMutexHold = 20

	// LogAppend is the fixed cost of encoding and appending one commit
	// record to the write-ahead log buffer (framing, CRC, bookkeeping),
	// on top of the copy cost of the record body.
	LogAppend = 120

	// LogFsync is the modeled cost of one group-commit fsync, amortized
	// over the group by billing it to the append that seals the group.
	// ~10 µs at the 1 GHz target clock: the order of a fast NVMe flush.
	LogFsync = 10_000

	// LogGroupTxns is the default group-commit size used by the modeled
	// (accounting-only) fsync charge: one LogFsync per this many commit
	// records.
	LogGroupTxns = 8
)

// CopyCost returns the cycles to copy n bytes through the core.
func CopyCost(n uint64) uint64 { return n >> CopyPerByteShift }
