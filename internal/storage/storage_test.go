package storage

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema("T",
		Col{Name: "ID", Width: 8},
		Col{Name: "VAL", Width: 8},
		Col{Name: "PAD", Width: 20},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.RowSize() != 36 {
		t.Fatalf("row size = %d, want 36", s.RowSize())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 8 || s.Offset(2) != 16 {
		t.Fatalf("offsets wrong: %d %d %d", s.Offset(0), s.Offset(1), s.Offset(2))
	}
}

func TestSchemaRejectsZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-width column")
		}
	}()
	NewSchema("BAD", Col{Name: "X", Width: 0})
}

func TestColIndex(t *testing.T) {
	s := testSchema()
	if s.ColIndex("VAL") != 1 {
		t.Fatal("ColIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown column")
		}
	}()
	s.ColIndex("NOPE")
}

func TestU64RoundTrip(t *testing.T) {
	s := testSchema()
	row := make([]byte, s.RowSize())
	f := func(v uint64) bool {
		s.PutU64(row, 1, v)
		return s.GetU64(row, 1) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI64RoundTrip(t *testing.T) {
	s := testSchema()
	row := make([]byte, s.RowSize())
	f := func(v int64) bool {
		s.PutI64(row, 1, v)
		return s.GetI64(row, 1) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutDoesNotClobberNeighbors(t *testing.T) {
	s := testSchema()
	row := make([]byte, s.RowSize())
	s.PutU64(row, 0, 0xAAAAAAAAAAAAAAAA)
	s.PutU64(row, 1, 0xBBBBBBBBBBBBBBBB)
	copy(s.Bytes(row, 2), "hello")
	if s.GetU64(row, 0) != 0xAAAAAAAAAAAAAAAA {
		t.Fatal("col 0 clobbered")
	}
	if string(s.Bytes(row, 2)[:5]) != "hello" {
		t.Fatal("col 2 clobbered")
	}
}

func TestTableRowsAreDisjoint(t *testing.T) {
	tab := NewTable(0, testSchema(), 10, 10, 2)
	for i := 0; i < 10; i++ {
		tab.Schema.PutU64(tab.Row(i), 0, uint64(i)+100)
	}
	for i := 0; i < 10; i++ {
		if got := tab.Schema.GetU64(tab.Row(i), 0); got != uint64(i)+100 {
			t.Fatalf("row %d = %d, rows overlap", i, got)
		}
	}
	// Row slices must not allow append-extension into the next row.
	r := tab.Row(0)
	if cap(r) != len(r) {
		t.Fatal("row slice capacity leaks into neighboring row")
	}
}

func TestAllocSlotSegments(t *testing.T) {
	tab := NewTable(0, testSchema(), 100, 20, 4)
	// 80 spare slots over 4 workers = 20 each.
	seen := map[int]bool{}
	for w := 0; w < 4; w++ {
		for i := 0; i < 20; i++ {
			s := tab.AllocSlot(w)
			if s < 20 || s >= 100 {
				t.Fatalf("slot %d outside insert region", s)
			}
			if seen[s] {
				t.Fatalf("slot %d allocated twice", s)
			}
			seen[s] = true
		}
	}
	// All segments exhausted now.
	for w := 0; w < 4; w++ {
		if s := tab.AllocSlot(w); s != -1 {
			t.Fatalf("exhausted segment returned %d", s)
		}
	}
}

func TestAllocSlotWorkersAreIndependent(t *testing.T) {
	tab := NewTable(0, testSchema(), 40, 0, 4)
	a := tab.AllocSlot(0)
	b := tab.AllocSlot(3)
	if a == b {
		t.Fatal("different workers shared a slot")
	}
}

func TestNewTablePanicsWhenLoadedExceedsCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(0, testSchema(), 5, 6, 1)
}

func TestNewTablePanicsOnZeroWorkers(t *testing.T) {
	for _, nworkers := range []int{0, -1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("expected panic for nworkers=%d", nworkers)
				}
				// The message must name the problem, not be the
				// runtime's opaque divide-by-zero error.
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "worker") {
					t.Fatalf("nworkers=%d: panic %v, want a descriptive storage error", nworkers, r)
				}
			}()
			NewTable(0, testSchema(), 8, 4, nworkers)
		}()
	}
}

func TestMemKeyUniquePerSlotAndTable(t *testing.T) {
	a := NewTable(1, testSchema(), 4, 4, 1)
	b := NewTable(2, testSchema(), 4, 4, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		for _, tab := range []*Table{a, b} {
			k := tab.MemKey(i)
			if seen[k] {
				t.Fatalf("duplicate mem key %#x", k)
			}
			seen[k] = true
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	t1 := c.Add(testSchema(), 4, 4, 1)
	s2 := NewSchema("U", Col{Name: "K", Width: 8})
	t2 := c.Add(s2, 4, 4, 1)
	if t1.ID != 0 || t2.ID != 1 {
		t.Fatalf("table ids %d/%d", t1.ID, t2.ID)
	}
	if c.Table("U") != t2 {
		t.Fatal("lookup by name wrong")
	}
	if len(c.Tables()) != 2 {
		t.Fatal("Tables() wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown table")
		}
	}()
	c.Table("MISSING")
}
