// Package storage implements the row-oriented in-memory tables of the test
// bed DBMS (§3.2): fixed-width schemas, slab row storage, per-worker insert
// segments (so inserts never contend on a global allocator), and the
// catalog. Per-tuple concurrency-control metadata is owned by the CC scheme
// (attached by slot index), keeping the storage layer scheme-agnostic.
package storage

import (
	"encoding/binary"
	"fmt"
)

// Col describes one fixed-width column.
type Col struct {
	Name  string
	Width int // bytes
}

// Schema is an ordered set of fixed-width columns.
type Schema struct {
	Name    string
	Cols    []Col
	offsets []int
	rowSize int
}

// NewSchema builds a schema, computing column offsets.
func NewSchema(name string, cols ...Col) *Schema {
	s := &Schema{Name: name, Cols: cols}
	s.offsets = make([]int, len(cols))
	off := 0
	for i, c := range cols {
		if c.Width <= 0 {
			panic(fmt.Sprintf("storage: column %s.%s has width %d", name, c.Name, c.Width))
		}
		s.offsets[i] = off
		off += c.Width
	}
	s.rowSize = off
	return s
}

// RowSize returns the bytes per row.
func (s *Schema) RowSize() int { return s.rowSize }

// Offset returns the byte offset of column i.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// ColIndex returns the index of the named column, or panics — schema
// mismatches are programming errors, not runtime conditions.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("storage: no column %q in table %s", name, s.Name))
}

// GetU64 reads column col of row as a little-endian uint64 (the column must
// be at least 8 bytes wide).
func (s *Schema) GetU64(row []byte, col int) uint64 {
	off := s.offsets[col]
	return binary.LittleEndian.Uint64(row[off : off+8])
}

// PutU64 writes column col of row as a little-endian uint64.
func (s *Schema) PutU64(row []byte, col int, v uint64) {
	off := s.offsets[col]
	binary.LittleEndian.PutUint64(row[off:off+8], v)
}

// GetI64 reads column col as an int64 (two's complement).
func (s *Schema) GetI64(row []byte, col int) int64 {
	return int64(s.GetU64(row, col))
}

// PutI64 writes column col as an int64.
func (s *Schema) PutI64(row []byte, col int, v int64) {
	s.PutU64(row, col, uint64(v))
}

// Bytes returns the raw bytes of column col.
func (s *Schema) Bytes(row []byte, col int) []byte {
	off := s.offsets[col]
	return row[off : off+s.Cols[col].Width]
}

// Table is a fixed-capacity slab of rows. Slots [0, Preloaded) are filled
// during setup; the remaining capacity is divided into per-worker segments
// for runtime inserts, so slot allocation is core-local (the paper's
// per-thread memory pools, §4.1).
type Table struct {
	ID     int
	Schema *Schema

	slab     []byte
	capacity int
	loaded   int // rows populated during setup (single-threaded)

	segBase  []int // per-worker next free slot
	segEnd   []int // per-worker segment end (exclusive)
	segStart []int // per-worker segment start (initial segBase, for recovery)
}

// NewTable allocates a table with room for capacity rows, of which the
// first `loaded` will be populated by setup code via LoadRow, and the
// remainder is split into insert segments for nworkers workers.
func NewTable(id int, schema *Schema, capacity, loaded, nworkers int) *Table {
	if loaded > capacity {
		panic(fmt.Sprintf("storage: table %s loaded %d > capacity %d", schema.Name, loaded, capacity))
	}
	if nworkers <= 0 {
		panic(fmt.Sprintf("storage: table %s needs at least one worker for its insert segments, got %d", schema.Name, nworkers))
	}
	t := &Table{
		ID:       id,
		Schema:   schema,
		slab:     make([]byte, capacity*schema.RowSize()),
		capacity: capacity,
		loaded:   loaded,
	}
	spare := capacity - loaded
	per := spare / nworkers
	t.segBase = make([]int, nworkers)
	t.segEnd = make([]int, nworkers)
	t.segStart = make([]int, nworkers)
	for w := 0; w < nworkers; w++ {
		t.segBase[w] = loaded + w*per
		t.segEnd[w] = loaded + (w+1)*per
		t.segStart[w] = t.segBase[w]
	}
	t.segEnd[nworkers-1] = capacity
	return t
}

// Capacity returns the total slot count (CC schemes size their per-tuple
// metadata arrays from this).
func (t *Table) Capacity() int { return t.capacity }

// Loaded returns the number of setup-time rows.
func (t *Table) Loaded() int { return t.loaded }

// Row returns the storage bytes of slot (shared, live row data).
func (t *Table) Row(slot int) []byte {
	rs := t.Schema.RowSize()
	return t.slab[slot*rs : (slot+1)*rs : (slot+1)*rs]
}

// LoadRow returns slot i's bytes for single-threaded population at setup.
func (t *Table) LoadRow(i int) []byte { return t.Row(i) }

// Rows returns the raw bytes of the contiguous slots [start, start+n)
// (checkpointing reads row ranges straight out of the slab).
func (t *Table) Rows(start, n int) []byte {
	rs := t.Schema.RowSize()
	return t.slab[start*rs : (start+n)*rs : (start+n)*rs]
}

// AllocSlot carves a fresh slot from worker w's insert segment. It returns
// -1 when the segment is exhausted (the caller sizes capacity to make this
// impossible in a configured run; hitting it is a configuration error
// surfaced by the engine).
func (t *Table) AllocSlot(w int) int {
	if t.segBase[w] >= t.segEnd[w] {
		return -1
	}
	s := t.segBase[w]
	t.segBase[w]++
	return s
}

// NumSegs returns the number of per-worker insert segments.
func (t *Table) NumSegs() int { return len(t.segBase) }

// SegRange returns worker w's allocated insert range [start, next): the
// slots handed out by AllocSlot so far. Recovery and checkpointing walk
// these to enumerate every populated slot beyond the setup rows.
func (t *Table) SegRange(w int) (start, next int) {
	return t.segStart[w], t.segBase[w]
}

// RestoreSegNext rewinds or advances worker w's allocation cursor to next
// (clamped to the segment). Recovery uses it to restore checkpointed
// allocation state so replayed inserts land on their original slots.
func (t *Table) RestoreSegNext(w, next int) {
	if next < t.segStart[w] {
		next = t.segStart[w]
	}
	if next > t.segEnd[w] {
		next = t.segEnd[w]
	}
	t.segBase[w] = next
}

// MemKey returns the placement key of slot's cache line(s) for the NUCA
// model: tuples hash across L2 slices by (table, slot).
func (t *Table) MemKey(slot int) uint64 {
	return uint64(t.ID)<<40 | uint64(slot)
}

// Catalog is the set of tables in a database.
type Catalog struct {
	tables []*Table
	byName map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Table)}
}

// Add registers a table built from schema and returns it.
func (c *Catalog) Add(schema *Schema, capacity, loaded, nworkers int) *Table {
	t := NewTable(len(c.tables), schema, capacity, loaded, nworkers)
	c.tables = append(c.tables, t)
	c.byName[schema.Name] = t
	return t
}

// Tables returns all tables in id order.
func (c *Catalog) Tables() []*Table { return c.tables }

// Table looks a table up by name, or panics (schema mismatches are
// programming errors).
func (c *Catalog) Table(name string) *Table {
	t, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}
