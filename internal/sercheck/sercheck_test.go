package sercheck

import (
	"strings"
	"testing"
)

// img returns an 8-byte row image distinguishable by its first byte.
func img(b byte) []byte { return []byte{b, 0, 0, 0, 0, 0, 0, 0} }

// tbl builds a one-table history scaffold with the given initial and
// final slot images.
func tbl(init, final map[int][]byte) Table {
	return Table{ID: 0, Name: "T", RowSize: 8, Init: init, Final: final}
}

// edgeSig normalizes a cycle into a set of "from>to:kind" strings so
// tests can assert the cycle's shape regardless of rotation.
func edgeSig(t *testing.T, cycle []Edge) map[string]bool {
	t.Helper()
	if len(cycle) == 0 {
		t.Fatal("expected a cycle counterexample, got none")
	}
	// The cycle must actually close: each edge's To is the next's From.
	for i, e := range cycle {
		next := cycle[(i+1)%len(cycle)]
		if e.To != next.From {
			t.Fatalf("cycle does not close at edge %d: %v then %v", i, e, next)
		}
	}
	sig := make(map[string]bool, len(cycle))
	for _, e := range cycle {
		sig[edgeKey(e.From, e.To, e.Kind)] = true
	}
	return sig
}

func edgeKey(from, to int, kind EdgeKind) string {
	return strings.Join([]string{tname(from), ">", tname(to), ":", kind.String()}, "")
}

func tname(id int) string {
	return string(rune('0' + id))
}

func wantEdges(t *testing.T, cycle []Edge, want ...string) {
	t.Helper()
	sig := edgeSig(t, cycle)
	if len(sig) != len(want) {
		t.Fatalf("cycle has %d distinct edges, want %d: %v", len(sig), len(want), cycle)
	}
	for _, w := range want {
		if !sig[w] {
			t.Fatalf("cycle missing edge %s: got %v", w, cycle)
		}
	}
}

// Lost update: T1 and T2 both read the initial counter and both write
// an incremented image; one increment is lost. The capture layer
// records the read-modify-write's read, so the checker must see
// RW(T2->T1) against WW(T1->T2) — a two-cycle.
func TestLostUpdate(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0)},
			map[int][]byte{0: img(2)},
		)},
		Txns: []Txn{
			{ID: 1,
				Reads:  []Access{{Table: 0, Slot: 0, Ver: 0}},
				Writes: []Write{{Table: 0, Slot: 0, Ver: 1, Image: img(1)}}},
			{ID: 2,
				Reads:  []Access{{Table: 0, Slot: 0, Ver: 0}},
				Writes: []Write{{Table: 0, Slot: 0, Ver: 2, Image: img(2)}}},
		},
	}
	r := Check(h)
	if r.OK() {
		t.Fatalf("lost update accepted: %s", r)
	}
	if r.Serializable {
		t.Fatalf("lost update graph reported acyclic: %s", r)
	}
	wantEdges(t, r.Cycle, "1>2:WW", "2>1:RW")
}

// Write skew: T1 reads x,y and writes y; T2 reads x,y and writes x.
// Each overwrites what the other read: two RW edges forming a cycle,
// with no WW or WR dependency at all.
func TestWriteSkew(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(10), 1: img(10)},
			map[int][]byte{0: img(3), 1: img(3)},
		)},
		Txns: []Txn{
			{ID: 1,
				Reads:  []Access{{Slot: 0, Ver: 0}, {Slot: 1, Ver: 0}},
				Writes: []Write{{Slot: 1, Ver: 1, Image: img(3)}}},
			{ID: 2,
				Reads:  []Access{{Slot: 0, Ver: 0}, {Slot: 1, Ver: 0}},
				Writes: []Write{{Slot: 0, Ver: 1, Image: img(3)}}},
		},
	}
	r := Check(h)
	if r.Serializable {
		t.Fatalf("write skew accepted: %s", r)
	}
	wantEdges(t, r.Cycle, "1>2:RW", "2>1:RW")
}

// Fractured read: T1 writes x and y atomically; T2 reads T1's x but
// the initial y. WR(T1->T2) on x plus RW(T2->T1) on y.
func TestFracturedRead(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0), 1: img(0)},
			map[int][]byte{0: img(5), 1: img(5)},
		)},
		Txns: []Txn{
			{ID: 1,
				Writes: []Write{
					{Slot: 0, Ver: 1, Image: img(5)},
					{Slot: 1, Ver: 1, Image: img(5)},
				}},
			{ID: 2,
				Reads: []Access{
					{Slot: 0, Ver: 1}, // T1's write
					{Slot: 1, Ver: 0}, // the initial row
				}},
		},
	}
	r := Check(h)
	if r.Serializable {
		t.Fatalf("fractured read accepted: %s", r)
	}
	wantEdges(t, r.Cycle, "1>2:WR", "2>1:RW")
}

// G1c (circular information flow): T1 reads T2's write and T2 reads
// T1's write — a pure WR/WR cycle.
func TestG1cCycle(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0), 1: img(0)},
			map[int][]byte{0: img(1), 1: img(2)},
		)},
		Txns: []Txn{
			{ID: 1,
				Reads:  []Access{{Slot: 1, Ver: 1}}, // T2's write
				Writes: []Write{{Slot: 0, Ver: 1, Image: img(1)}}},
			{ID: 2,
				Reads:  []Access{{Slot: 0, Ver: 1}}, // T1's write
				Writes: []Write{{Slot: 1, Ver: 1, Image: img(2)}}},
		},
	}
	r := Check(h)
	if r.Serializable {
		t.Fatalf("G1c accepted: %s", r)
	}
	wantEdges(t, r.Cycle, "1>2:WR", "2>1:WR")
}

// Dirty read: a version no committed transaction produced (an aborted
// writer's install leaked to a reader).
func TestDirtyRead(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(map[int][]byte{0: img(0)}, map[int][]byte{0: img(0)})},
		Txns: []Txn{
			{ID: 1, Reads: []Access{{Slot: 0, Ver: 7}}},
		},
	}
	r := Check(h)
	if r.OK() {
		t.Fatalf("dirty read accepted: %s", r)
	}
	if len(r.Anomalies) == 0 || !strings.Contains(r.Anomalies[0], "no committed transaction") {
		t.Fatalf("expected dirty-read anomaly, got %v", r.Anomalies)
	}
}

// Duplicate version install: two committed writers claiming the same
// slot version means the capture invariant itself was violated.
func TestDuplicateVersion(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(map[int][]byte{0: img(0)}, map[int][]byte{0: img(1)})},
		Txns: []Txn{
			{ID: 1, Writes: []Write{{Slot: 0, Ver: 1, Image: img(1)}}},
			{ID: 2, Writes: []Write{{Slot: 0, Ver: 1, Image: img(2)}}},
		},
	}
	r := Check(h)
	if r.OK() {
		t.Fatalf("duplicate version accepted: %s", r)
	}
	if len(r.Anomalies) == 0 || !strings.Contains(r.Anomalies[0], "both installed") {
		t.Fatalf("expected duplicate-version anomaly, got %v", r.Anomalies)
	}
}

// A clean serial-equivalent history: acyclic graph, deterministic
// witness order, and the oracle's replay matching the final state.
func TestSerializableChain(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0)},
			map[int][]byte{0: img(2)},
		)},
		Txns: []Txn{
			{ID: 2,
				Reads:  []Access{{Slot: 0, Ver: 1}},
				Writes: []Write{{Slot: 0, Ver: 2, Image: img(2)}}},
			{ID: 1,
				Reads:  []Access{{Slot: 0, Ver: 0}},
				Writes: []Write{{Slot: 0, Ver: 1, Image: img(1)}}},
		},
	}
	r := Check(h)
	if !r.OK() {
		t.Fatalf("serializable chain rejected: %s", r)
	}
	if len(r.Order) != 2 || r.Order[0] != 1 || r.Order[1] != 2 {
		t.Fatalf("expected witness order [1 2], got %v", r.Order)
	}
	// WR(1->2) and WW(1->2) dedup to a single edge; T1's read of v0 and
	// T2's read of v1 would each point RW at their own writer (skipped).
	if r.Edges != 1 {
		t.Fatalf("expected 1 edge after dedup, got %d", r.Edges)
	}
}

// Oracle catches wrong bytes even when the graph is acyclic: the
// engine's final state disagrees with the replay.
func TestFinalStateMismatch(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0)},
			map[int][]byte{0: img(9)}, // engine claims 9; replay yields 1
		)},
		Txns: []Txn{
			{ID: 1, Writes: []Write{{Slot: 0, Ver: 1, Image: img(1)}}},
		},
	}
	r := Check(h)
	if !r.Serializable {
		t.Fatalf("acyclic history reported cyclic: %s", r)
	}
	if r.FinalStateOK || r.OK() {
		t.Fatalf("final-state mismatch accepted: %s", r)
	}
	if len(r.FinalDiffs) == 0 {
		t.Fatal("expected final-state diffs")
	}
}

// Inserted slots: a write to a slot with no initial image lands in the
// oracle's state and must match the engine's final dump.
func TestInsertedSlot(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0)},
			map[int][]byte{0: img(0), 5: img(7)},
		)},
		Txns: []Txn{
			{ID: 1, Writes: []Write{{Slot: 5, Ver: 1, Image: img(7)}}},
			{ID: 2, Reads: []Access{{Slot: 5, Ver: 1}}},
		},
	}
	r := Check(h)
	if !r.OK() {
		t.Fatalf("insert history rejected: %s", r)
	}
}

// Reading version 0 of a slot that was never loaded is impossible in a
// correct engine: the row did not exist yet.
func TestReadOfUnloadedSlot(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(map[int][]byte{}, map[int][]byte{5: img(1)})},
		Txns: []Txn{
			{ID: 1, Writes: []Write{{Slot: 5, Ver: 1, Image: img(1)}}},
			{ID: 2, Reads: []Access{{Slot: 5, Ver: 0}}},
		},
	}
	r := Check(h)
	if r.OK() {
		t.Fatalf("read of unloaded slot accepted: %s", r)
	}
	if len(r.Anomalies) == 0 || !strings.Contains(r.Anomalies[0], "no initial row") {
		t.Fatalf("expected unloaded-slot anomaly, got %v", r.Anomalies)
	}
}

// A longer cycle through three transactions must come back minimal
// even when a larger SCC-free tail hangs off it.
func TestMinimalCycleAmongThree(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(
			map[int][]byte{0: img(0), 1: img(0), 2: img(0)},
			map[int][]byte{0: img(1), 1: img(1), 2: img(1)},
		)},
		Txns: []Txn{
			// T1 -RW-> T2 -RW-> T3 -RW-> T1: each reads the initial
			// version of the slot the next one writes.
			{ID: 1,
				Reads:  []Access{{Slot: 0, Ver: 0}},
				Writes: []Write{{Slot: 2, Ver: 1, Image: img(1)}}},
			{ID: 2,
				Reads:  []Access{{Slot: 1, Ver: 0}},
				Writes: []Write{{Slot: 0, Ver: 1, Image: img(1)}}},
			{ID: 3,
				Reads:  []Access{{Slot: 2, Ver: 0}},
				Writes: []Write{{Slot: 1, Ver: 1, Image: img(1)}}},
			// T4 just reads a committed version: downstream, not cyclic.
			{ID: 4, Reads: []Access{{Slot: 0, Ver: 1}}},
		},
	}
	r := Check(h)
	if r.Serializable {
		t.Fatalf("three-cycle accepted: %s", r)
	}
	if len(r.Cycle) != 3 {
		t.Fatalf("expected a 3-edge cycle, got %d: %v", len(r.Cycle), r.Cycle)
	}
	wantEdges(t, r.Cycle, "1>2:RW", "2>3:RW", "3>1:RW")
}

// Empty history is trivially serializable with a matching final state.
func TestEmptyHistory(t *testing.T) {
	h := &History{
		Tables: []Table{tbl(map[int][]byte{0: img(4)}, map[int][]byte{0: img(4)})},
	}
	if r := Check(h); !r.OK() {
		t.Fatalf("empty history rejected: %s", r)
	}
}
