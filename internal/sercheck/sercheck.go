// Package sercheck decides whether a captured transaction history is
// serializable.
//
// The input is a History: the set of committed transactions, each with
// the versions it read and the versions (and after-images) it wrote,
// plus the initial and final row images of every table. Version
// identity is per (table, slot): version 0 is the initially loaded row,
// and every committed write carries a version that is unique and
// monotonically increasing within its slot (the engine's capture layer
// guarantees this for every concurrency-control scheme).
//
// Check builds the direct serialization graph (DSG) over committed
// transactions:
//
//   - WR (reads-from): writer of version v -> each reader of v
//   - WW (version order): writer of v_i -> writer of v_{i+1}
//   - RW (anti-dependency): reader of v_i -> writer of v_{i+1}
//
// The history is serializable iff the graph is acyclic. On failure the
// report carries a minimal cycle as the counterexample. On success the
// transactions are replayed in topological order through a
// single-threaded oracle (initial images + write after-images) and the
// oracle's final state is compared against the engine's: a scheme could
// in principle produce an acyclic history and still install the wrong
// bytes, and the oracle catches that.
//
// The package is pure: it imports nothing from the engine and can check
// hand-constructed histories (see the negative tests for known
// anomalies such as lost update, write skew, and fractured reads).
package sercheck

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// EdgeKind classifies a dependency edge in the direct serialization graph.
type EdgeKind uint8

const (
	// WR is a read dependency: the target read a version the source wrote.
	WR EdgeKind = iota
	// WW is a write dependency: the target overwrote a version the
	// source wrote (adjacent in the slot's version order).
	WW
	// RW is an anti-dependency: the target overwrote a version the
	// source read.
	RW
)

func (k EdgeKind) String() string {
	switch k {
	case WR:
		return "WR"
	case WW:
		return "WW"
	case RW:
		return "RW"
	}
	return "??"
}

// Access records one read: the version of (Table, Slot) the transaction
// observed. Ver 0 is the initially loaded row.
type Access struct {
	Table int
	Slot  int
	Ver   uint64
}

// Write records one committed write: the version it installed at
// (Table, Slot) and the full row after-image.
type Write struct {
	Table int
	Slot  int
	Ver   uint64
	Image []byte
}

// Txn is one committed transaction.
type Txn struct {
	ID     int // unique per history; used in reports
	Worker int
	TS     uint64 // scheme timestamp if any (diagnostic only)
	Reads  []Access
	Writes []Write
}

// Table carries the row images the oracle replays over and compares
// against: Init is the post-population snapshot (version 0), Final is
// the engine's committed state after the run, both keyed by slot.
type Table struct {
	ID      int
	Name    string
	RowSize int
	Init    map[int][]byte
	Final   map[int][]byte
}

// History is the full input to Check.
type History struct {
	Tables []Table
	Txns   []Txn
}

// Edge is one dependency in the graph; From/To are transaction IDs.
type Edge struct {
	From  int
	To    int
	Kind  EdgeKind
	Table int
	Slot  int
}

func (e Edge) String() string {
	return fmt.Sprintf("T%d -%s(t%d[%d])-> T%d", e.From, e.Kind, e.Table, e.Slot, e.To)
}

// Report is the verdict for one history.
type Report struct {
	Serializable bool   // dependency graph is acyclic
	FinalStateOK bool   // oracle replay matches the engine's final state
	Txns         int    // committed transactions checked
	Edges        int    // dependency edges in the graph
	Cycle        []Edge // minimal cycle when !Serializable
	Anomalies    []string
	Order        []int    // witness serial order (txn IDs) when Serializable
	FinalDiffs   []string // mismatching slots when !FinalStateOK
}

// OK reports whether the history passed every check.
func (r *Report) OK() bool {
	return r.Serializable && r.FinalStateOK && len(r.Anomalies) == 0
}

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("serializable: %d txns, %d edges, final state OK", r.Txns, r.Edges)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "NOT serializable: %d txns, %d edges", r.Txns, r.Edges)
	for _, a := range r.Anomalies {
		fmt.Fprintf(&b, "\n  anomaly: %s", a)
	}
	if len(r.Cycle) > 0 {
		b.WriteString("\n  cycle:")
		for _, e := range r.Cycle {
			fmt.Fprintf(&b, "\n    %s", e)
		}
	}
	for _, d := range r.FinalDiffs {
		fmt.Fprintf(&b, "\n  final state: %s", d)
	}
	return b.String()
}

type slotKey struct{ table, slot int }

// writeRef locates one committed write inside the history.
type writeRef struct {
	txn int // index into h.Txns
	ver uint64
}

// iedge is an Edge whose endpoints are txn indexes, not IDs.
type iedge struct {
	to   int
	kind EdgeKind
	key  slotKey
}

// Check builds the direct serialization graph for h and returns the
// verdict. It never mutates h.
func Check(h *History) *Report {
	r := &Report{Txns: len(h.Txns)}
	n := len(h.Txns)

	// Per-slot committed version order.
	writes := make(map[slotKey][]writeRef)
	for i := range h.Txns {
		for _, w := range h.Txns[i].Writes {
			k := slotKey{w.Table, w.Slot}
			writes[k] = append(writes[k], writeRef{txn: i, ver: w.Ver})
		}
	}
	verWriter := make(map[slotKey]map[uint64]int) // ver -> txn index
	for k, ws := range writes {
		sort.Slice(ws, func(a, b int) bool { return ws[a].ver < ws[b].ver })
		m := make(map[uint64]int, len(ws))
		for _, w := range ws {
			if w.ver == 0 {
				r.Anomalies = append(r.Anomalies,
					fmt.Sprintf("T%d wrote version 0 of t%d[%d] (reserved for the initial row)",
						h.Txns[w.txn].ID, k.table, k.slot))
				continue
			}
			if prev, dup := m[w.ver]; dup {
				r.Anomalies = append(r.Anomalies,
					fmt.Sprintf("T%d and T%d both installed version %d of t%d[%d]",
						h.Txns[prev].ID, h.Txns[w.txn].ID, w.ver, k.table, k.slot))
				continue
			}
			m[w.ver] = w.txn
		}
		verWriter[k] = m
	}

	// Graph over txn indexes; first edge per (from, to) pair is kept.
	adj := make([][]iedge, n)
	indeg := make([]int, n)
	seen := make(map[[2]int]bool)
	addEdge := func(from, to int, kind EdgeKind, k slotKey) {
		if from == to {
			return
		}
		key := [2]int{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		adj[from] = append(adj[from], iedge{to: to, kind: kind, key: k})
		indeg[to]++
		r.Edges++
	}

	// WW: adjacent versions in each slot's order.
	for k, ws := range writes {
		for i := 1; i < len(ws); i++ {
			addEdge(ws[i-1].txn, ws[i].txn, WW, k)
		}
	}

	// WR and RW from each read.
	initImages := make(map[slotKey]bool)
	for _, t := range h.Tables {
		for slot := range t.Init {
			initImages[slotKey{t.ID, slot}] = true
		}
	}
	for i := range h.Txns {
		for _, rd := range h.Txns[i].Reads {
			k := slotKey{rd.Table, rd.Slot}
			if rd.Ver != 0 {
				w, ok := verWriter[k][rd.Ver]
				if !ok {
					r.Anomalies = append(r.Anomalies,
						fmt.Sprintf("T%d read version %d of t%d[%d], which no committed transaction wrote (dirty or lost read)",
							h.Txns[i].ID, rd.Ver, k.table, k.slot))
					continue
				}
				addEdge(w, i, WR, k)
			} else if !initImages[k] {
				// Version 0 of a slot that was never loaded: the row did
				// not exist before some transaction inserted it.
				r.Anomalies = append(r.Anomalies,
					fmt.Sprintf("T%d read the initial version of t%d[%d], but that slot had no initial row",
						h.Txns[i].ID, k.table, k.slot))
				continue
			}
			// RW: the writer of the next version overwrote what we read.
			ws := writes[k]
			j := sort.Search(len(ws), func(j int) bool { return ws[j].ver > rd.Ver })
			if j < len(ws) {
				addEdge(i, ws[j].txn, RW, k)
			}
		}
	}

	// Kahn's algorithm; min-heap on txn ID for a deterministic witness.
	ready := &idxHeap{h: h}
	deg := make([]int, n)
	copy(deg, indeg)
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			heap.Push(ready, i)
		}
	}
	order := make([]int, 0, n)
	for ready.Len() > 0 {
		i := heap.Pop(ready).(int)
		order = append(order, i)
		for _, e := range adj[i] {
			deg[e.to]--
			if deg[e.to] == 0 {
				heap.Push(ready, e.to)
			}
		}
	}

	if len(order) < n {
		r.Serializable = false
		r.Cycle = minimalCycle(h, adj, deg)
		return r
	}
	r.Serializable = true

	// Single-threaded oracle: replay write images in the witness order.
	r.FinalStateOK = true
	state := make(map[slotKey][]byte)
	for _, t := range h.Tables {
		for slot, img := range t.Init {
			state[slotKey{t.ID, slot}] = img
		}
	}
	for _, i := range order {
		r.Order = append(r.Order, h.Txns[i].ID)
		for _, w := range h.Txns[i].Writes {
			state[slotKey{w.Table, w.Slot}] = w.Image
		}
	}
	const maxDiffs = 10
	diff := func(msg string) {
		r.FinalStateOK = false
		if len(r.FinalDiffs) < maxDiffs {
			r.FinalDiffs = append(r.FinalDiffs, msg)
		}
	}
	for _, t := range h.Tables {
		slots := make([]int, 0, len(t.Final))
		for slot := range t.Final {
			slots = append(slots, slot)
		}
		sort.Ints(slots)
		for _, slot := range slots {
			want := t.Final[slot]
			got, ok := state[slotKey{t.ID, slot}]
			switch {
			case !ok:
				diff(fmt.Sprintf("t%d[%d]: present in engine final state but never loaded or written", t.ID, slot))
			case !bytes.Equal(got, want):
				diff(fmt.Sprintf("t%d[%d]: oracle %x != engine %x", t.ID, slot, trunc(got), trunc(want)))
			}
		}
		for slot := range t.Init {
			if _, ok := t.Final[slot]; !ok {
				diff(fmt.Sprintf("t%d[%d]: loaded initially but missing from engine final state", t.ID, slot))
			}
		}
	}
	if !r.FinalStateOK && len(r.FinalDiffs) == maxDiffs {
		r.FinalDiffs = append(r.FinalDiffs, "... (more diffs elided)")
	}
	return r
}

func trunc(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

// minimalCycle finds a shortest cycle in the subgraph of nodes Kahn
// could not remove (deg > 0): every node on a cycle is in that set
// (nodes merely downstream of a cycle are too, but BFS from those never
// returns to its start and is skipped).
func minimalCycle(h *History, adj [][]iedge, deg []int) []Edge {
	inRem := make([]bool, len(adj))
	remaining := make([]int, 0)
	for i, d := range deg {
		if d > 0 {
			remaining = append(remaining, i)
			inRem[i] = true
		}
	}
	toEdge := func(from int, e iedge) Edge {
		return Edge{
			From: h.Txns[from].ID, To: h.Txns[e.to].ID,
			Kind: e.kind, Table: e.key.table, Slot: e.key.slot,
		}
	}
	var best []Edge
	for _, s := range remaining {
		if best != nil && len(best) == 2 {
			break // a 2-cycle cannot be beaten (self-edges are excluded)
		}
		// BFS from s restricted to the remaining subgraph; the first
		// return to s closes a shortest cycle through s.
		type pedge struct {
			from int
			e    iedge
		}
		parent := make(map[int]pedge)
		visited := make([]bool, len(adj))
		visited[s] = true
		queue := []int{s}
		closed := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if !inRem[e.to] {
					continue
				}
				if e.to == s {
					parent[s] = pedge{from: u, e: e}
					closed = true
					break bfs
				}
				if !visited[e.to] {
					visited[e.to] = true
					parent[e.to] = pedge{from: u, e: e}
					queue = append(queue, e.to)
				}
			}
		}
		if !closed {
			continue
		}
		var cycle []Edge
		at := s
		for {
			p := parent[at]
			cycle = append(cycle, toEdge(p.from, p.e))
			at = p.from
			if at == s {
				break
			}
		}
		for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
			cycle[i], cycle[j] = cycle[j], cycle[i]
		}
		if best == nil || len(cycle) < len(best) {
			best = cycle
		}
	}
	return best
}

// idxHeap is a min-heap of txn indexes ordered by public txn ID.
type idxHeap struct {
	v []int
	h *History
}

func (q *idxHeap) Len() int           { return len(q.v) }
func (q *idxHeap) Less(i, j int) bool { return q.h.Txns[q.v[i]].ID < q.h.Txns[q.v[j]].ID }
func (q *idxHeap) Swap(i, j int)      { q.v[i], q.v[j] = q.v[j], q.v[i] }
func (q *idxHeap) Push(x interface{}) { q.v = append(q.v, x.(int)) }
func (q *idxHeap) Pop() interface{} {
	old := q.v
	n := len(old)
	x := old[n-1]
	q.v = old[:n-1]
	return x
}
