package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewChipDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 3, 3}, {9, 3, 3},
		{16, 4, 4}, {64, 8, 8}, {256, 16, 16}, {1024, 32, 32},
		{100, 10, 10}, {48, 7, 7}, {3, 2, 2},
	}
	for _, c := range cases {
		chip := NewChip(c.n)
		if chip.W*chip.H < c.n {
			t.Fatalf("n=%d: grid %dx%d too small", c.n, chip.W, chip.H)
		}
		if c.n == 1 || c.n == 4 || c.n == 16 || c.n == 64 || c.n == 256 || c.n == 1024 {
			if chip.W != c.w || chip.H != c.h {
				t.Errorf("n=%d: got %dx%d, want %dx%d", c.n, chip.W, chip.H, c.w, c.h)
			}
		}
	}
}

func TestNewChipPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewChip(0)
}

func TestHopsSymmetricAndTriangle(t *testing.T) {
	chip := NewChip(64)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		if chip.Hops(x, y) != chip.Hops(y, x) {
			return false
		}
		if chip.Hops(x, x) != 0 {
			return false
		}
		return chip.Hops(x, z) <= chip.Hops(x, y)+chip.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiameter(t *testing.T) {
	chip := NewChip(1024) // 32x32
	if got, want := chip.Diameter(), 62; got != want {
		t.Fatalf("diameter = %d, want %d", got, want)
	}
	// Tile 0 to tile 1023 spans the full diagonal.
	if got := chip.Hops(0, 1023); got != 62 {
		t.Fatalf("corner distance = %d, want 62", got)
	}
}

func TestHomeTileInRangeAndSpread(t *testing.T) {
	chip := NewChip(64)
	seen := make(map[int]int)
	for k := uint64(0); k < 10000; k++ {
		h := chip.HomeTile(k)
		if h < 0 || h >= 64 {
			t.Fatalf("home tile %d out of range", h)
		}
		seen[h]++
	}
	if len(seen) < 60 {
		t.Fatalf("home tiles poorly spread: only %d/64 tiles used", len(seen))
	}
}

func TestCenterTileMinimizesAverageDistance(t *testing.T) {
	chip := NewChip(64)
	center := chip.CenterTile()
	avg := func(tile int) float64 {
		sum := 0
		for i := 0; i < chip.N; i++ {
			sum += chip.Hops(tile, i)
		}
		return float64(sum) / float64(chip.N)
	}
	centerAvg := avg(center)
	for _, corner := range []int{0, chip.N - 1} {
		if avg(corner) <= centerAvg {
			t.Fatalf("corner %d avg distance %.2f <= center %.2f", corner, avg(corner), centerAvg)
		}
	}
}

func TestLineSerializesExclusiveOps(t *testing.T) {
	chip := NewChip(4)
	l := NewLine(chip, 7)
	// Two cores issue at the same instant: the second must start after the
	// first completes.
	d0 := l.Exclusive(0, 100)
	if d0 < 100 {
		t.Fatalf("completion %d before issue", d0)
	}
	d1 := l.Exclusive(1, 100)
	if d1 <= d0 {
		t.Fatalf("second op completed at %d, not after first at %d", d1, d0)
	}
	if l.Owner() != 1 {
		t.Fatalf("owner = %d, want 1", l.Owner())
	}
}

func TestLineLocalReuseIsCheap(t *testing.T) {
	chip := NewChip(64)
	l := NewLine(chip, 9)
	d1 := l.Exclusive(5, 0)
	d2 := l.Exclusive(5, d1)
	if d2-d1 != L1Cycles {
		t.Fatalf("local re-acquire cost %d, want %d", d2-d1, uint64(L1Cycles))
	}
}

func TestLineTransferGrowsWithDistance(t *testing.T) {
	chip := NewChip(1024)
	home := chip.CenterTile()
	near := chip.TransferCost(home, home, chip.W+1) // one tile off center
	far := chip.TransferCost(home, 0, 1023)         // corner to corner via center
	if far <= near {
		t.Fatalf("far transfer %d should exceed near %d", far, near)
	}
	if far < uint64(HopCycles*chip.Diameter()) {
		t.Fatalf("diagonal transfer %d below one-way bound", far)
	}
	if got := chip.TransferCost(home, 5, 5); got != L1Cycles {
		t.Fatalf("local reuse cost %d, want %d", got, uint64(L1Cycles))
	}
}

// TestTransferIndirectsThroughHome verifies the directory model: moving a
// line between adjacent tiles still pays the trip to a distant home — the
// reason a hot timestamp counter costs ~100 cycles on a big chip even
// when consecutive requesters are neighbors.
func TestTransferIndirectsThroughHome(t *testing.T) {
	chip := NewChip(1024)
	farHome := 1023
	adjacent := chip.TransferCost(farHome, 0, 1)
	direct := uint64(LineOpCycles + HopCycles*chip.Hops(0, 1))
	if adjacent <= direct {
		t.Fatalf("adjacent transfer %d should pay home indirection (> %d)", adjacent, direct)
	}
}

func TestCenterServiceThroughputBound(t *testing.T) {
	chip := NewChip(1024)
	s := NewCenterService(chip)
	// Saturate: many requests at time 0 from the same tile; service must
	// pipeline at 1 cycle apart.
	var last uint64
	for i := 0; i < 100; i++ {
		last = s.Request(0, 0)
	}
	lat := uint64(HopCycles * chip.Hops(0, chip.CenterTile()))
	if want := 100*HWCounterServiceCycles + 2*lat; last != uint64(want) {
		t.Fatalf("100 saturating requests complete at %d, want %d", last, want)
	}
}

func TestL2AccessLocalVsRemote(t *testing.T) {
	chip := NewChip(64)
	local := chip.L2Access(0, 0)
	remote := chip.L2Access(0, 63)
	if local != L2BaseCycles {
		t.Fatalf("local L2 = %d, want %d", local, uint64(L2BaseCycles))
	}
	if remote <= local {
		t.Fatalf("remote L2 %d should exceed local %d", remote, local)
	}
}
