// Package mesh models the paper's target architecture (§3.1): a tiled chip
// multi-processor where each tile holds an in-order core, private L1, a
// slice of the shared L2 (NUCA), and a router on a 2D-mesh on-chip network.
// Tiles and network run at 1 GHz and each mesh hop takes two cycles.
//
// The model supplies the cost primitives the simulator charges for memory
// and synchronization operations:
//
//   - NUCA access: an L2 slice is addressed by hashing the object's home;
//     latency grows with Manhattan hop distance from the requesting tile.
//   - Cache-line transfer: writing or RMW-ing a shared line moves ownership
//     from the previous owner tile to the requester, paying a round trip.
//     Requests to the same line serialize through an occupancy window —
//     this is the mechanism behind the atomic-addition timestamp bottleneck
//     (Fig. 6) and mutex convoys (§4.1 "Mutexes").
//   - Center counter: the paper's proposed hardware counter sits at the
//     chip's center and serializes for one cycle per increment.
package mesh

// Timing constants for the target architecture. All values are in cycles at
// the 1 GHz target clock.
const (
	// HopCycles is the per-hop latency of the 2D-mesh network (§3.1).
	HopCycles = 2

	// L1Cycles is an L1 hit.
	L1Cycles = 1

	// L2BaseCycles is the tag/array access time of an L2 slice, paid on
	// top of the network traversal to the slice's tile.
	L2BaseCycles = 8

	// DRAMCycles is the penalty for going off-chip.
	DRAMCycles = 100

	// LineOpCycles is the cost of the RMW/store itself once the line is
	// owned locally.
	LineOpCycles = 1

	// HWCounterServiceCycles is the service time of the paper's proposed
	// hardware fetch-add unit: "incrementing the timestamp takes only one
	// cycle with the hardware counter-based approach" (§4.3).
	HWCounterServiceCycles = 1
)

// Frequency is the target clock in Hz (§3.1: tiles and network at 1 GHz).
const Frequency = 1e9

// Chip describes a W×H tile grid hosting n cores (one per tile). For core
// counts that are not perfect squares the grid is the smallest W×H with
// W*H >= n and |W-H| minimal, matching how tiled parts are laid out.
type Chip struct {
	N    int // number of cores/tiles in use
	W, H int // grid dimensions

	// tileX/tileY are precomputed per-tile coordinates. Hops sits on the
	// simulator's per-event path (every wakeup, line transfer and NUCA
	// access computes one or more distances), so the div/mod of TileOf is
	// replaced with two table lookups.
	tileX, tileY []int16
}

// NewChip builds the grid for n cores. n must be >= 1.
func NewChip(n int) *Chip {
	if n < 1 {
		panic("mesh: chip needs at least one core")
	}
	w := 1
	for w*w < n {
		w++
	}
	h := w
	// Shrink height while capacity still suffices (e.g. 8 cores -> 3x3
	// would waste a row; 4x2 fits exactly).
	for w*(h-1) >= n {
		h--
	}
	c := &Chip{N: n, W: w, H: h}
	c.tileX = make([]int16, w*h)
	c.tileY = make([]int16, w*h)
	for id := 0; id < w*h; id++ {
		c.tileX[id] = int16(id % w)
		c.tileY[id] = int16(id / w)
	}
	return c
}

// TileOf returns the (x, y) coordinate of tile id. Like Hops, it accepts
// only ids on the grid (0 <= id < W*H).
func (c *Chip) TileOf(id int) (x, y int) {
	return int(c.tileX[id]), int(c.tileY[id])
}

// Hops returns the Manhattan distance in mesh hops between two tiles.
func (c *Chip) Hops(a, b int) int {
	dx := int(c.tileX[a]) - int(c.tileX[b])
	if dx < 0 {
		dx = -dx
	}
	dy := int(c.tileY[a]) - int(c.tileY[b])
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Diameter returns the maximum hop distance across the chip.
func (c *Chip) Diameter() int {
	return (c.W - 1) + (c.H - 1)
}

// CenterTile returns the tile id closest to the chip's geometric center,
// where the paper's hardware counter is placed so the average distance to
// each core is minimized (§4.3).
func (c *Chip) CenterTile() int {
	x := (c.W - 1) / 2
	y := (c.H - 1) / 2
	id := y*c.W + x
	if id >= c.N {
		id = c.N - 1
	}
	return id
}

// HomeTile deterministically assigns a home L2 slice/directory tile to an
// object identified by key (address hashing, as in real NUCA designs).
func (c *Chip) HomeTile(key uint64) int {
	// SplitMix64 finalizer: cheap, well distributed, deterministic.
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(c.N))
}

// L2Access returns the cycles for tile `from` to read a clean line homed at
// tile `home`: network there and back plus the slice access.
func (c *Chip) L2Access(from, home int) uint64 {
	return uint64(L2BaseCycles + 2*HopCycles*c.Hops(from, home))
}

// TransferCost returns the cycles to move exclusive ownership of a line
// homed at directory tile `home` from tile `owner` to tile `to`. The
// request indirects through the home directory, as in a real
// directory-based protocol: requester → home (lookup) → owner
// (invalidate + forward) → requester. This three-leg traversal is why a
// hot atomic word costs on the order of a hundred cycles on a large chip
// no matter which core last owned it (§4.3's arithmetic). When owner ==
// to the line is already in the local cache.
func (c *Chip) TransferCost(home, owner, to int) uint64 {
	if owner == to {
		return L1Cycles
	}
	legs := c.Hops(to, home) + c.Hops(home, owner) + c.Hops(owner, to)
	return uint64(LineOpCycles + HopCycles*legs)
}

// Line models one shared, writable cache line (a mutex word, an atomic
// counter, a tuple's lock word). Exclusive operations on the line serialize
// through an occupancy window: a request issued at time t by tile `tile`
// begins service no earlier than the line's busyUntil, pays the ownership
// transfer from the previous owner, and extends busyUntil. This is what
// makes a single contended line a throughput ceiling no matter how many
// cores spin on it — the paper's central observation about mutexes and
// atomic timestamp allocation.
//
// Line is not itself synchronized; the simulator's cooperative scheduler
// guarantees at most one core manipulates it at a time.
type Line struct {
	chip      *Chip
	home      int    // directory tile for this line
	owner     int    // tile currently owning the line exclusively
	busyUntil uint64 // simulated time the line next becomes free
}

// NewLine creates a line homed (by address hash) and initially owned at
// its directory tile for key.
func NewLine(chip *Chip, key uint64) *Line {
	home := chip.HomeTile(key)
	return &Line{chip: chip, home: home, owner: home}
}

// Owner returns the current owning tile (for tests).
func (l *Line) Owner() int { return l.owner }

// Exclusive performs an exclusive (write/RMW) access by `tile` issued at
// local time `now`, returning the completion time. It serializes with other
// exclusive accesses and migrates ownership.
func (l *Line) Exclusive(tile int, now uint64) uint64 {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start + l.chip.TransferCost(l.home, l.owner, tile)
	l.owner = tile
	l.busyUntil = done
	return done
}

// Read performs a read of the line by `tile` at time `now`, returning the
// completion time. Reads pay the distance to the current owner (data is
// forwarded from the owner's cache) but do not take ownership; concurrent
// readers do not serialize behind one another beyond the owner's current
// occupancy (a pending exclusive op must complete before its value is
// visible).
func (l *Line) Read(tile int, now uint64) uint64 {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	if l.owner == tile {
		return start + L1Cycles
	}
	return start + uint64(L2BaseCycles+2*HopCycles*l.chip.Hops(l.owner, tile))
}

// CenterService models the hardware counter's serialization point: requests
// arrive over the network, are serviced in one cycle each, and the reply
// returns over the network. Throughput is bounded by 1/HWCounterServiceCycles
// regardless of core count, while latency includes the mesh round trip.
type CenterService struct {
	chip      *Chip
	tile      int
	busyUntil uint64
}

// NewCenterService places a single-cycle service unit at the chip center.
func NewCenterService(chip *Chip) *CenterService {
	return &CenterService{chip: chip, tile: chip.CenterTile()}
}

// Request issues a request from `tile` at `now` and returns the completion
// time (arrival + queueing + 1-cycle service + return trip).
func (s *CenterService) Request(tile int, now uint64) uint64 {
	oneWay := uint64(HopCycles * s.chip.Hops(tile, s.tile))
	arrive := now + oneWay
	start := arrive
	if s.busyUntil > start {
		start = s.busyUntil
	}
	done := start + HWCounterServiceCycles
	s.busyUntil = done
	return done + oneWay
}
