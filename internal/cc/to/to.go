// Package to implements the basic timestamp-ordering scheme (TIMESTAMP in
// the paper, §2.2): every transaction carries a unique monotonically
// increasing timestamp; per-tuple read/write timestamps reject operations
// that arrive "too late" for the serialization order the timestamps fix a
// priori. As in the paper's implementation:
//
//   - the scheduler is decentralized (per-tuple latches, no global
//     critical section);
//   - reads make a private copy of the tuple to guarantee repeatable
//     reads without holding locks — the copy cost is why TIMESTAMP trails
//     the 2PL schemes on read-heavy workloads (Fig. 8);
//   - writes are *prewritten* (reserved) at execution time and installed
//     at commit: a reader or writer whose timestamp exceeds a pending
//     prewrite waits for it to resolve — the paper's WAIT component for
//     T/O ("wait ... for a tuple whose value is not ready yet") — so a
//     validated writer can never be invalidated later;
//   - waits always point from larger to smaller timestamps, so they are
//     deadlock-free;
//   - an aborted transaction receives a NEW timestamp when it restarts
//     (§2.2: "it is assigned a new timestamp and then restarted").
package to

import (
	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
)

// pend is a pending prewrite: a reservation of the tuple at ts.
type pend struct {
	ts  uint64
	st  *txnState
	buf []byte
}

// tupleTS is the per-tuple timestamp metadata.
type tupleTS struct {
	latch   rt.Latch
	wts     uint64 // timestamp of the last installed write
	rts     uint64 // timestamp of the last read
	pends   []pend // outstanding prewrites, ascending ts
	waiters []rt.Proc
}

// writeRec tracks one of the transaction's prewrites.
type writeRec struct {
	t    *storage.Table
	slot int
	buf  []byte
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	writes []writeRec
}

// TO is the TIMESTAMP scheme.
type TO struct {
	method tsalloc.Method
	db     *core.DB
	alloc  tsalloc.Allocator
	meta   [][]tupleTS
}

// New creates a TIMESTAMP scheme drawing timestamps via method m.
func New(m tsalloc.Method) *TO { return &TO{method: m} }

// Name implements core.Scheme.
func (s *TO) Name() string { return "TIMESTAMP" }

// Setup implements core.Scheme.
func (s *TO) Setup(db *core.DB) {
	s.db = db
	s.alloc = tsalloc.New(s.method, db.RT)
	tables := db.Catalog.Tables()
	s.meta = make([][]tupleTS, len(tables))
	for _, t := range tables {
		entries := make([]tupleTS, t.Capacity())
		for i := range entries {
			entries[i].latch = db.RT.NewLatch(uint64(t.ID)<<44 | 0x70<<36 | uint64(i))
			// Pre-size the prewrite list so a tuple's first reservation
			// never allocates on the access path.
			entries[i].pends = make([]pend, 0, 1)
		}
		s.meta[t.ID] = entries
	}
}

// NewTxnState implements core.Scheme.
func (s *TO) NewTxnState(w *core.Worker) interface{} { return &txnState{} }

// Begin implements core.Scheme.
func (s *TO) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.writes = st.writes[:0]
	tx.TS = s.alloc.Next(tx.P)
	tx.P.Tick(stats.Manager, costs.ManagerOp)
}

func (s *TO) entry(t *storage.Table, slot int) *tupleTS {
	return &s.meta[t.ID][slot]
}

// findWrite returns the transaction's own prewrite buffer, if any.
func (st *txnState) findWrite(t *storage.Table, slot int) *writeRec {
	for i := range st.writes {
		if st.writes[i].t == t && st.writes[i].slot == slot {
			return &st.writes[i]
		}
	}
	return nil
}

// blockedBy reports whether e has a pending prewrite from another
// transaction that precedes ts in the serialization order. Caller holds
// e.latch.
func blockedBy(e *tupleTS, ts uint64) bool {
	for i := range e.pends {
		if e.pends[i].ts < ts {
			return true
		}
		break // ascending: first entry is the minimum
	}
	return false
}

// wakeAll unparks every waiter. Caller holds e.latch.
func (s *TO) wakeAll(p rt.Proc, e *tupleTS) {
	for _, w := range e.waiters {
		s.db.RT.Unpark(p, w)
	}
	e.waiters = e.waiters[:0]
}

// Read implements core.Scheme. Basic T/O read rule: reject if ts < wts;
// wait behind earlier pending writes; otherwise bump rts and copy.
func (s *TO) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	if w := st.findWrite(t, slot); w != nil {
		return w.buf, nil // read own prewrite
	}
	e := s.entry(t, slot)
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		if tx.TS < e.wts {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}
		if blockedBy(e, tx.TS) {
			e.waiters = append(e.waiters, tx.P)
			e.latch.Release(tx.P, stats.Manager)
			tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
			continue
		}
		if e.rts < tx.TS {
			e.rts = tx.TS
		}
		// History capture: under the latch, with earlier pending writes
		// resolved, the live row is the committed version stamped e.wts.
		tx.CaptureReadVer(t, slot, e.wts)
		n := t.Schema.RowSize()
		buf := tx.Alloc.Alloc(tx.P, stats.Manager, n)
		tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(n))
		copy(buf, t.Row(slot))
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(n)))
		e.latch.Release(tx.P, stats.Manager)
		return buf, nil
	}
}

// WriteRow implements core.Scheme: an update is a read-modify-write, so
// the read rule applies too; passing both rules installs a prewrite that
// later operations must respect. The returned buffer is the transaction's
// private prewrite image (seeded with the tuple's current contents); the
// caller mutates it in place and Commit installs it. No other transaction
// can observe the buffer before then — readers and writers ordered after
// this prewrite wait for its resolution, earlier ones read older state.
func (s *TO) WriteRow(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	if w := st.findWrite(t, slot); w != nil {
		tx.P.Tick(stats.Useful, costs.CopyCost(uint64(len(w.buf))))
		return w.buf, nil
	}
	e := s.entry(t, slot)
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		if tx.TS < e.wts || tx.TS < e.rts {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}
		if blockedBy(e, tx.TS) {
			// Our RMW must observe the earlier pending write.
			e.waiters = append(e.waiters, tx.P)
			e.latch.Release(tx.P, stats.Manager)
			tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
			continue
		}
		// Reserve: no later reader or writer can now invalidate us.
		if e.rts < tx.TS {
			e.rts = tx.TS // the RMW reads the tuple
		}
		// History capture: the RMW reads the committed version e.wts
		// before overwriting it.
		tx.CaptureReadVer(t, slot, e.wts)
		n := t.Schema.RowSize()
		buf := tx.Alloc.Alloc(tx.P, stats.Manager, n)
		tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(n))
		copy(buf, t.Row(slot))
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(n)))
		// Insert in ascending ts order (ours is the max outstanding:
		// anything larger would have waited on us... but an earlier
		// prewrite may still arrive only if its ts > rts — impossible
		// now that rts >= tx.TS — so appending keeps order).
		e.pends = append(e.pends, pend{ts: tx.TS, st: st, buf: buf})
		e.latch.Release(tx.P, stats.Manager)
		st.writes = append(st.writes, writeRec{t: t, slot: slot, buf: buf})
		return buf, nil
	}
}

// Commit implements core.Scheme: install prewrites in timestamp order.
// Installation cannot fail — prewrites reserved their place — but it may
// wait for earlier pending writers on the same tuples.
func (s *TO) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	// Commit point: under T/O the serialization order IS the timestamp
	// order, so the record (which carries tx.TS as its replay version)
	// can be appended before the installs below; replay keeps the
	// highest-timestamp image per slot regardless of append interleaving.
	tx.LogCommit()
	for i := range st.writes {
		w := &st.writes[i]
		e := s.entry(w.t, w.slot)
		for {
			e.latch.Acquire(tx.P, stats.Manager)
			tx.P.Tick(stats.Manager, costs.ManagerOp)
			if blockedBy(e, tx.TS) {
				e.waiters = append(e.waiters, tx.P)
				e.latch.Release(tx.P, stats.Manager)
				tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
				continue
			}
			copy(w.t.Row(w.slot), w.buf)
			tx.P.MemWrite(stats.Useful, w.t.MemKey(w.slot), uint64(len(w.buf)))
			if e.wts < tx.TS {
				e.wts = tx.TS
			}
			s.removePend(e, st)
			s.wakeAll(tx.P, e)
			e.latch.Release(tx.P, stats.Manager)
			break
		}
	}
	st.writes = st.writes[:0]
	return nil
}

// removePend deletes st's prewrite from e. Caller holds e.latch.
func (s *TO) removePend(e *tupleTS, st *txnState) {
	for i := range e.pends {
		if e.pends[i].st == st {
			e.pends = append(e.pends[:i], e.pends[i+1:]...)
			return
		}
	}
}

// Abort implements core.Scheme: withdraw prewrites, wake waiters.
func (s *TO) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	for i := range st.writes {
		w := &st.writes[i]
		e := s.entry(w.t, w.slot)
		e.latch.Acquire(tx.P, stats.Abort)
		tx.P.Tick(stats.Abort, costs.ManagerOp)
		s.removePend(e, st)
		s.wakeAll(tx.P, e)
		e.latch.Release(tx.P, stats.Abort)
	}
	st.writes = st.writes[:0]
}

// InitTuple implements core.Scheme: a fresh tuple is born with the
// inserting transaction's write timestamp.
func (s *TO) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {
	e := s.entry(t, slot)
	e.wts = tx.TS
}

// TSOrderedCommits marks T/O for the WAL: same-slot outcomes follow
// timestamp order, so commit records replay by version, not log position.
func (s *TO) TSOrderedCommits() {}

var (
	_ core.Scheme          = (*TO)(nil)
	_ core.TSOrderedScheme = (*TO)(nil)
)
