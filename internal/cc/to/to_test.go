package to_test

import (
	"testing"

	"abyss1000/internal/cc/to"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

// TestLateReadAborts: a reader whose timestamp precedes the tuple's last
// write must be rejected (the basic T/O read rule).
func TestLateReadAborts(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var late error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Draw the older timestamp, then dawdle before reading a
			// tuple a younger transaction has already overwritten.
			late = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				tx.P.Sync(stats.Useful, 50_000)
				_, err := f.ReadVal(tx, 0)
				return err
			}})
			return
		}
		p.Tick(stats.Useful, 5_000) // younger timestamp
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}}); err != nil {
			t.Errorf("younger writer failed: %v", err)
		}
	})
	if late != core.ErrAbort {
		t.Fatalf("late read got %v, want ErrAbort", late)
	}
}

// TestLateWriteAborts: a writer whose timestamp precedes a later read
// must die (the write rule: ts < rts).
func TestLateWriteAborts(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var late error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			late = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				tx.P.Sync(stats.Useful, 50_000)
				return f.Bump(tx, 0, 1) // slot read by a younger txn already
			}})
			return
		}
		p.Tick(stats.Useful, 5_000)
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			_, err := f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("younger reader failed: %v", err)
		}
	})
	if late != core.ErrAbort {
		t.Fatalf("late write got %v, want ErrAbort", late)
	}
}

// TestReaderWaitsForPrewrite: a reader younger than a pending prewrite
// blocks until the writer commits, then sees the new value (never the
// dirty state).
func TestReaderWaitsForPrewrite(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Older writer: prewrite slot 0, then stall before commit.
			if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 7); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 40_000) // hold the prewrite pending
				return nil
			}}); err != nil {
				t.Errorf("writer aborted: %v", err)
			}
			return
		}
		p.Tick(stats.Useful, 10_000) // younger reader, arrives mid-prewrite
		var v uint64
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			var err error
			v, err = f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("reader aborted: %v", err)
			return
		}
		if v != 7 {
			t.Errorf("reader saw %d, want 7 (must wait for the pending write)", v)
		}
		if p.Now() < 40_000 {
			t.Errorf("reader finished at %d, before the writer committed", p.Now())
		}
	})
}

// TestReadOwnWrite: a transaction reads its own buffered write.
func TestReadOwnWrite(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 2, 9); err != nil {
				return err
			}
			v, err := f.ReadVal(tx, 2)
			if err != nil {
				return err
			}
			if v != 9 {
				t.Errorf("own write invisible: read %d", v)
			}
			return nil
		}})
		if err != nil {
			t.Errorf("txn failed: %v", err)
		}
	})
	if f.Get(2) != 9 {
		t.Fatalf("slot 2 = %d after commit", f.Get(2))
	}
}

// TestAbortDiscardsBufferedWrites: an aborted transaction leaves no trace.
func TestAbortDiscardsBufferedWrites(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 1, 5); err != nil {
				return err
			}
			return core.ErrUserAbort
		}})
		if err != core.ErrUserAbort {
			t.Errorf("got %v", err)
		}
	})
	if f.Get(1) != 0 {
		t.Fatalf("slot 1 = %d after abort, want 0 (buffered write leaked)", f.Get(1))
	}
}

// TestRMWSeesPriorCommit: the update closure must observe the preceding
// committed value (no lost update through the buffered-write path).
func TestRMWSeesPriorCommit(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		for i := 0; i < 5; i++ {
			if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				return f.Bump(tx, 0, 1)
			}}); err != nil {
				t.Fatalf("bump %d failed: %v", i, err)
			}
		}
	})
	if f.Get(0) != 5 {
		t.Fatalf("slot 0 = %d, want 5", f.Get(0))
	}
}

// TestTimestampsRefreshOnRestart: each attempt draws a fresh timestamp
// (§2.2: an aborted transaction "is assigned a new timestamp").
func TestTimestampsRefreshOnRestart(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := to.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		var first, second uint64
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			first = tx.TS
			return core.ErrUserAbort
		}})
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			second = tx.TS
			return nil
		}})
		if second <= first {
			t.Errorf("timestamps not refreshed: %d then %d", first, second)
		}
	})
}
