// Package twopl implements the paper's three two-phase-locking variants
// (§2.1) over per-tuple lock queues (§4.1 "Lock Table": "instead of having
// a centralized lock table ... we implemented these data structures in a
// per-tuple fashion where each transaction only latches the tuples that it
// needs"):
//
//	DL_DETECT — waiting with decentralized deadlock detection (and the
//	            Fig. 5 wait-timeout knob; 100 µs default as in §4.2).
//	NO_WAIT   — non-waiting deadlock prevention: a denied lock request
//	            aborts the requester immediately.
//	WAIT_DIE  — a requester older than every conflicting holder waits;
//	            a younger one dies (timestamps make deadlock impossible).
//
// All variants implement strict 2PL: locks are held to transaction end,
// writes are in-place with undo images, and both commit and abort release
// every lock (waking compatible waiters FIFO).
package twopl

import (
	"sort"

	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/waitgraph"
)

// Variant selects the deadlock-handling strategy.
type Variant int

const (
	// DLDetect is 2PL with deadlock detection.
	DLDetect Variant = iota
	// NoWait is 2PL with non-waiting deadlock prevention.
	NoWait
	// WaitDie is 2PL with wait-and-die deadlock prevention.
	WaitDie
	// Adaptive is the §6.1 hybrid: per-worker switching between
	// DL_DETECT (low contention) and NO_WAIT (thrashing). See
	// adaptive.go.
	Adaptive
)

func (v Variant) String() string {
	switch v {
	case DLDetect:
		return "DL_DETECT"
	case NoWait:
		return "NO_WAIT"
	case WaitDie:
		return "WAIT_DIE"
	case Adaptive:
		return "ADAPTIVE"
	default:
		return "2PL(?)"
	}
}

// NoTimeout disables DL_DETECT's wait timeout (wait until granted or a
// deadlock is detected).
const NoTimeout = ^uint64(0)

// DefaultTimeout is the paper's chosen DL_DETECT timeout (§4.2: "we
// evaluate DL_DETECT with its timeout threshold set to 100µs"), in cycles
// at 1 GHz.
const DefaultTimeout = 100_000

// Options tunes a 2PL instance.
type Options struct {
	// Timeout is the maximum wait before a DL_DETECT transaction aborts
	// itself (Fig. 5's sweep). 0 aborts immediately on any wait
	// (equivalent to NO_WAIT, as the paper notes); NoTimeout waits
	// indefinitely. Ignored by NO_WAIT and WAIT_DIE.
	Timeout uint64

	// DisableDetection turns off the deadlock detector, used by the
	// Fig. 4 lock-thrashing experiment where transactions acquire locks
	// in primary-key order and detection is unnecessary.
	DisableDetection bool

	// TsMethod is the timestamp allocator used by WAIT_DIE (other
	// variants allocate no timestamps).
	TsMethod tsalloc.Method
}

type lockMode byte

const (
	modeFree lockMode = iota
	modeShared
	modeExcl
)

// holder is one transaction holding the lock.
type holder struct {
	st *txnState
}

// waiter is one queued request.
type waiter struct {
	st      *txnState
	mode    lockMode
	upgrade bool
}

// lockEntry is the per-tuple lock word plus sharer/waiter metadata — the
// "several bytes" of per-tuple overhead the paper trades for scalability.
type lockEntry struct {
	latch   rt.Latch
	mode    lockMode
	holders []holder
	waiters []waiter
}

// heldLock records a lock for release at transaction end.
type heldLock struct {
	e    *lockEntry
	mode lockMode
}

// undoRec is a before-image for in-place writes.
type undoRec struct {
	t    *storage.Table
	slot int
	img  []byte
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	w   *core.Worker
	seq uint64 // waits-for graph sequence
	ts  uint64 // WAIT_DIE age (stable for the transaction's lifetime)

	held []heldLock
	undo []undoRec

	// Wait handshake: set by a granter under the tuple latch.
	granted bool

	edgeBuf []waitgraph.Edge
}

// TwoPL is one of the three 2PL schemes, selected by Variant.
type TwoPL struct {
	variant Variant
	opts    Options
	db      *core.DB
	alloc   tsalloc.Allocator
	graph   *waitgraph.Graph
	meta    [][]lockEntry // [table id][slot]
	adapt   []adaptState  // per-worker controllers (Adaptive variant)
}

// New creates a 2PL scheme.
func New(v Variant, opts Options) *TwoPL {
	if v == DLDetect && opts.Timeout == 0 {
		// Timeout 0 is a legitimate Fig. 5 setting, but the zero value
		// of Options should mean "the paper's default".
		opts.Timeout = DefaultTimeout
	}
	return &TwoPL{variant: v, opts: opts}
}

// NewWithTimeout creates a DL_DETECT instance with an explicit timeout,
// including 0 ("abort as soon as a lock is denied") for the Fig. 5 sweep.
func NewWithTimeout(timeout uint64, disableDetection bool) *TwoPL {
	return &TwoPL{
		variant: DLDetect,
		opts:    Options{Timeout: timeout, DisableDetection: disableDetection},
	}
}

// Name implements core.Scheme.
func (s *TwoPL) Name() string { return s.variant.String() }

// Setup implements core.Scheme.
func (s *TwoPL) Setup(db *core.DB) {
	s.db = db
	tables := db.Catalog.Tables()
	s.meta = make([][]lockEntry, len(tables))
	for _, t := range tables {
		entries := make([]lockEntry, t.Capacity())
		for i := range entries {
			entries[i].latch = db.RT.NewLatch(uint64(t.ID)<<44 | 0x2B<<36 | uint64(i))
			// Pre-size the holder list so a tuple's first lock grant
			// never allocates on the access path.
			entries[i].holders = make([]holder, 0, 2)
		}
		s.meta[t.ID] = entries
	}
	if (s.variant == DLDetect || s.variant == Adaptive) && !s.opts.DisableDetection {
		s.graph = waitgraph.New(db.RT)
	}
	if s.variant == WaitDie {
		s.alloc = tsalloc.New(s.opts.TsMethod, db.RT)
	}
	if s.variant == Adaptive {
		s.adapt = make([]adaptState, db.RT.NumProcs())
	}
}

// NewTxnState implements core.Scheme.
func (s *TwoPL) NewTxnState(w *core.Worker) interface{} {
	return &txnState{w: w}
}

// Begin implements core.Scheme.
func (s *TwoPL) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.held = st.held[:0]
	st.undo = st.undo[:0]
	st.granted = false
	if s.graph != nil {
		st.seq = s.graph.BeginTxn(tx.P)
	}
	if s.variant == WaitDie {
		tx.TS = s.alloc.Next(tx.P)
		st.ts = tx.TS
	}
	if s.variant == Adaptive {
		s.adaptTick(tx.P, st)
	}
	tx.P.Tick(stats.Manager, costs.ManagerOp)
}

func (s *TwoPL) entry(t *storage.Table, slot int) *lockEntry {
	return &s.meta[t.ID][slot]
}

// heldMode returns the mode st already holds on e, or modeFree.
func (st *txnState) heldMode(e *lockEntry) lockMode {
	for i := range st.held {
		if st.held[i].e == e {
			return st.held[i].mode
		}
	}
	return modeFree
}

func (st *txnState) promote(e *lockEntry) {
	for i := range st.held {
		if st.held[i].e == e {
			st.held[i].mode = modeExcl
			return
		}
	}
}

// Read implements core.Scheme: acquire a shared lock and read in place.
func (s *TwoPL) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	if err := s.lock(tx, t, slot, modeShared); err != nil {
		return nil, err
	}
	// History capture: the shared lock excludes committers, fixing the
	// version this read observes.
	tx.CaptureRead(t, slot)
	tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
	return t.Row(slot), nil
}

// WriteRow implements core.Scheme: acquire an exclusive lock, capture an
// undo image, and hand back the live row for in-place mutation. The row
// stays exclusively locked until transaction end, so the caller's writes
// after return are isolated.
func (s *TwoPL) WriteRow(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	if err := s.lock(tx, t, slot, modeExcl); err != nil {
		return nil, err
	}
	// History capture: a write is a read-modify-write of the current
	// committed version (first declaration only; see captureRead).
	tx.CaptureRead(t, slot)
	st := tx.State.(*txnState)
	row := t.Row(slot)
	// One undo image per (table, slot) suffices; repeated writes by the
	// same transaction keep the oldest image.
	have := false
	for i := range st.undo {
		if st.undo[i].t == t && st.undo[i].slot == slot {
			have = true
			break
		}
	}
	if !have {
		img := tx.Alloc.Alloc(tx.P, stats.Manager, len(row))
		copy(img, row)
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(len(row))))
		st.undo = append(st.undo, undoRec{t: t, slot: slot, img: img})
	}
	tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(len(row)))
	return row, nil
}

// lock acquires (or upgrades to) the requested mode on (t, slot).
func (s *TwoPL) lock(tx *core.TxnCtx, t *storage.Table, slot int, want lockMode) error {
	st := tx.State.(*txnState)
	e := s.entry(t, slot)

	switch st.heldMode(e) {
	case modeExcl:
		return nil // X covers everything
	case modeShared:
		if want == modeShared {
			return nil
		}
		return s.upgrade(tx, st, e)
	}

	e.latch.Acquire(tx.P, stats.Manager)
	tx.P.Tick(stats.Manager, costs.ManagerOp)
	if compatible(e, want) {
		e.holders = append(e.holders, holder{st: st})
		e.mode = want
		st.held = append(st.held, heldLock{e: e, mode: want})
		e.latch.Release(tx.P, stats.Manager)
		return nil
	}
	return s.conflict(tx, st, e, want, false)
}

// upgrade promotes st's shared lock to exclusive.
func (s *TwoPL) upgrade(tx *core.TxnCtx, st *txnState, e *lockEntry) error {
	e.latch.Acquire(tx.P, stats.Manager)
	tx.P.Tick(stats.Manager, costs.ManagerOp)
	if len(e.holders) == 1 && e.holders[0].st == st {
		e.mode = modeExcl
		st.promote(e)
		e.latch.Release(tx.P, stats.Manager)
		return nil
	}
	return s.conflict(tx, st, e, modeExcl, true)
}

// compatible reports whether a new request of mode `want` can be granted
// immediately (FIFO fairness: not if anyone is already queued).
func compatible(e *lockEntry, want lockMode) bool {
	if len(e.waiters) > 0 {
		return false
	}
	switch e.mode {
	case modeFree:
		return true
	case modeShared:
		return want == modeShared
	default:
		return false
	}
}

// conflict handles a denied request per the variant's policy. Called with
// the tuple latch held; always releases it.
func (s *TwoPL) conflict(tx *core.TxnCtx, st *txnState, e *lockEntry, want lockMode, upgrade bool) error {
	variant := s.variant
	if variant == Adaptive {
		// §6.1 hybrid: behave as NO_WAIT while this worker observes
		// thrashing, as DL_DETECT otherwise.
		if s.adaptiveNoWait(tx.P) {
			variant = NoWait
		} else {
			variant = DLDetect
		}
	}
	switch variant {
	case NoWait:
		e.latch.Release(tx.P, stats.Manager)
		return core.ErrAbort

	case WaitDie:
		// A lock upgrade with co-holders dies immediately: letting it
		// wait would break the old-waits-for-young invariant that
		// makes WAIT_DIE deadlock-free.
		if upgrade {
			e.latch.Release(tx.P, stats.Manager)
			return core.ErrAbort
		}
		// Wait only if strictly older (smaller timestamp) than every
		// conflicting holder; otherwise die. Holder timestamps are
		// read through their txnState, which is stable for the
		// holder's lifetime and ordered by the tuple latch.
		for i := range e.holders {
			h := e.holders[i].st
			if tx.TS >= h.ts {
				e.latch.Release(tx.P, stats.Manager)
				return core.ErrAbort
			}
		}
		return s.wait(tx, st, e, want, upgrade, NoTimeout)

	default: // DLDetect
		if s.opts.Timeout == 0 {
			e.latch.Release(tx.P, stats.Manager)
			return core.ErrAbort
		}
		return s.wait(tx, st, e, want, upgrade, s.opts.Timeout)
	}
}

// wait enqueues st and blocks until granted, a deadlock is found, or the
// timeout expires. Called with the tuple latch held; releases it.
func (s *TwoPL) wait(tx *core.TxnCtx, st *txnState, e *lockEntry, want lockMode, upgrade bool, timeout uint64) error {
	p := tx.P
	st.granted = false
	w := waiter{st: st, mode: want, upgrade: upgrade}
	switch {
	case s.variant == WaitDie:
		// Keep the queue youngest-first (descending timestamp) and
		// grant from the head: remaining (older) waiters then wait on
		// younger holders, preserving WAIT_DIE's old-waits-for-young
		// invariant across grants — the property that guarantees
		// freedom from deadlock.
		pos := len(e.waiters)
		for i := range e.waiters {
			if st.ts > e.waiters[i].st.ts {
				pos = i
				break
			}
		}
		e.waiters = append(e.waiters, waiter{})
		copy(e.waiters[pos+1:], e.waiters[pos:])
		e.waiters[pos] = w
	case upgrade:
		// Upgrades go to the head so a sole-holder promotion is never
		// starved behind incompatible requests. Shift in place rather
		// than rebuilding the slice, keeping the wait path allocation-
		// free once the queue's capacity has grown.
		e.waiters = append(e.waiters, waiter{})
		copy(e.waiters[1:], e.waiters)
		e.waiters[0] = w
	default:
		e.waiters = append(e.waiters, w)
	}

	// Publish waits-for edges for the deadlock detector.
	if s.graph != nil {
		st.edgeBuf = st.edgeBuf[:0]
		for i := range e.holders {
			h := e.holders[i].st
			if h == st {
				continue
			}
			st.edgeBuf = append(st.edgeBuf, waitgraph.Edge{Worker: h.w.P.ID(), Seq: h.seq})
		}
		// Other queued waiters may hold the lock before we do.
		for i := range e.waiters {
			wt := e.waiters[i].st
			if wt == st {
				continue
			}
			st.edgeBuf = append(st.edgeBuf, waitgraph.Edge{Worker: wt.w.P.ID(), Seq: wt.seq})
		}
	}
	e.latch.Release(p, stats.Manager)

	if s.graph != nil {
		s.graph.SetEdges(p, st.edgeBuf)
		if s.deadlockVictim(tx) {
			return s.cancelWait(tx, st, e)
		}
	}

	deadline := NoTimeout
	if timeout != NoTimeout {
		deadline = p.Now() + timeout
	}
	for {
		interval := uint64(costs.WaitCheckInterval)
		if deadline != NoTimeout {
			now := p.Now()
			if now >= deadline {
				return s.cancelWait(tx, st, e)
			}
			if r := deadline - now; r < interval {
				interval = r
			}
		}
		p.ParkTimeout(stats.Wait, interval)

		e.latch.Acquire(p, stats.Manager)
		if st.granted {
			e.latch.Release(p, stats.Manager)
			if s.graph != nil {
				s.graph.ClearEdges(p)
			}
			return nil
		}
		e.latch.Release(p, stats.Manager)

		// Re-run detection: a cycle may have formed after we started
		// waiting (the paper: a deadlock missed by one pass "is
		// guaranteed to be found on subsequent passes").
		if s.graph != nil && s.deadlockVictim(tx) {
			return s.cancelWait(tx, st, e)
		}
	}
}

// deadlockVictim reports whether tx sits on a waits-for cycle AND is the
// cycle's designated victim. Every member of a cycle computes the same
// victim (the largest worker id in the membership), so one deadlock costs
// one abort; non-victims keep waiting for the victim's rollback to free
// the queue.
func (s *TwoPL) deadlockVictim(tx *core.TxnCtx) bool {
	cycle := s.graph.FindCycle(tx.P, tx.P.ID(), tx.State.(*txnState).seq)
	if cycle == nil {
		return false
	}
	victim := cycle[0]
	for _, w := range cycle[1:] {
		if w > victim {
			victim = w
		}
	}
	return victim == tx.P.ID()
}

// cancelWait removes st from e's wait queue and aborts. If the grant
// raced ahead of the cancellation, the lock is accepted and released by
// the abort path.
func (s *TwoPL) cancelWait(tx *core.TxnCtx, st *txnState, e *lockEntry) error {
	p := tx.P
	e.latch.Acquire(p, stats.Manager)
	if !st.granted {
		for i := range e.waiters {
			if e.waiters[i].st == st {
				e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
				break
			}
		}
	}
	e.latch.Release(p, stats.Manager)
	if s.graph != nil {
		s.graph.ClearEdges(p)
	}
	// If granted anyway, the lock is in st.held only if it was an
	// upgrade; fresh grants record membership here so Abort releases it.
	if st.granted {
		st.granted = false
		// grantLocked already appended to holders and set the entry
		// mode; mirror it in our held list unless it is an upgrade
		// (already present).
		if st.heldMode(e) == modeFree {
			st.held = append(st.held, heldLock{e: e, mode: e.mode})
		}
	}
	return core.ErrAbort
}

// grantLocked grants as many queued requests as compatibility allows.
// Caller holds e.latch.
func (s *TwoPL) grantLocked(p rt.Proc, e *lockEntry) {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if w.upgrade {
			// Grantable only when w's transaction is the sole holder.
			if len(e.holders) == 1 && e.holders[0].st == w.st {
				e.mode = modeExcl
				w.st.promote(e)
				e.waiters = append(e.waiters[:0], e.waiters[1:]...)
				w.st.granted = true
				s.db.RT.Unpark(p, w.st.w.P)
				continue
			}
			return
		}
		switch w.mode {
		case modeShared:
			if e.mode == modeExcl {
				return
			}
		case modeExcl:
			if len(e.holders) > 0 {
				return
			}
		}
		e.holders = append(e.holders, holder{st: w.st})
		e.mode = w.mode
		w.st.held = append(w.st.held, heldLock{e: e, mode: w.mode})
		e.waiters = append(e.waiters[:0], e.waiters[1:]...)
		w.st.granted = true
		s.db.RT.Unpark(p, w.st.w.P)
		if w.mode == modeExcl {
			return
		}
	}
}

// releaseAll releases every lock st holds, granting waiters.
func (s *TwoPL) releaseAll(tx *core.TxnCtx, st *txnState) {
	p := tx.P
	for i := range st.held {
		h := st.held[i]
		e := h.e
		e.latch.Acquire(p, stats.Manager)
		p.Tick(stats.Manager, costs.ManagerOp)
		for j := range e.holders {
			if e.holders[j].st == st {
				e.holders = append(e.holders[:j], e.holders[j+1:]...)
				break
			}
		}
		if len(e.holders) == 0 {
			e.mode = modeFree
		} else {
			e.mode = modeShared
		}
		s.grantLocked(p, e)
		e.latch.Release(p, stats.Manager)
	}
	st.held = st.held[:0]
}

// Commit implements core.Scheme: strict 2PL just releases.
func (s *TwoPL) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	// Commit point: the log record is appended while the write locks are
	// still held, so log order is consistent with lock order.
	tx.LogCommit()
	s.releaseAll(tx, st)
	st.undo = st.undo[:0]
	return nil
}

// Abort implements core.Scheme: restore undo images, then release.
func (s *TwoPL) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	for i := len(st.undo) - 1; i >= 0; i-- {
		u := &st.undo[i]
		copy(u.t.Row(u.slot), u.img)
		tx.P.MemWrite(stats.Abort, u.t.MemKey(u.slot), uint64(len(u.img)))
		tx.P.Tick(stats.Abort, costs.CopyCost(uint64(len(u.img))))
	}
	st.undo = st.undo[:0]
	s.releaseAll(tx, st)
}

// InitTuple implements core.Scheme: fresh tuples start unlocked; the
// zero-value lockEntry (with its pre-built latch) is already correct.
func (s *TwoPL) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {}

// SortSlots orders slot ids ascending — used by the Fig. 4 thrashing
// workload variant that acquires locks in primary-key order.
func SortSlots(slots []int) { sort.Ints(slots) }

var _ core.Scheme = (*TwoPL)(nil)
