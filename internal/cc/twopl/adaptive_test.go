package twopl_test

import (
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/workload/ycsb"
)

func runAdaptive(t *testing.T, theta float64, mk func() core.Scheme) core.Result {
	t.Helper()
	eng := sim.New(16, 3)
	db := core.NewDB(eng)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 4096
	cfg.FieldSize = 20
	cfg.Theta = theta
	wl := ycsb.Build(db, cfg)
	return core.Run(db, mk(), wl, core.Config{
		WarmupCycles:  100_000,
		MeasureCycles: 600_000,
		AbortBackoff:  500,
	})
}

func TestAdaptiveName(t *testing.T) {
	if got := twopl.NewAdaptive(twopl.Options{}).Name(); got != "ADAPTIVE" {
		t.Fatalf("name = %q", got)
	}
}

// TestAdaptiveTracksBetterIngredient: the §6.1 hybrid must never fall
// meaningfully below DL_DETECT (its low-contention ingredient) at low
// skew, and must beat DL_DETECT under thrashing by switching to
// non-waiting conflict handling.
func TestAdaptiveTracksBetterIngredient(t *testing.T) {
	mkA := func() core.Scheme { return twopl.NewAdaptive(twopl.Options{}) }
	mkD := func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }

	low := runAdaptive(t, 0, mkA)
	lowD := runAdaptive(t, 0, mkD)
	if low.Throughput() < 0.8*lowD.Throughput() {
		t.Fatalf("adaptive at theta=0: %.0f txn/s vs DL_DETECT %.0f — hybrid hurts the easy case",
			low.Throughput(), lowD.Throughput())
	}

	hi := runAdaptive(t, 0.8, mkA)
	hiD := runAdaptive(t, 0.8, mkD)
	if hi.Throughput() < hiD.Throughput() {
		t.Fatalf("adaptive at theta=0.8: %.0f txn/s vs DL_DETECT %.0f — controller never switched",
			hi.Throughput(), hiD.Throughput())
	}
	// Switching implies aborting instead of waiting: the hybrid must
	// actually abort under thrashing.
	if hi.Aborts == 0 {
		t.Fatal("adaptive recorded no aborts at theta=0.8: NO_WAIT policy never engaged")
	}
}

// TestAdaptiveSerializable: the hybrid still produces correct histories
// (it only changes conflict policy, never locking discipline).
func TestAdaptiveSerializable(t *testing.T) {
	res := runAdaptive(t, 0.8, func() core.Scheme { return twopl.NewAdaptive(twopl.Options{}) })
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}
