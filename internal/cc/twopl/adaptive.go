package twopl

import (
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Adaptive mode implements the hybrid the paper proposes in §6.1: "a DBMS
// could use DL_DETECT for workloads with little contention, but switch to
// NO_WAIT or a T/O-based algorithm when transactions are taking too long
// to finish due to thrashing."
//
// Both variants share the same per-tuple lock queues, so the switch is a
// pure policy change on the conflict path: each worker samples its own
// time breakdown every adaptEpoch transactions and chooses the
// non-waiting policy whenever waiting consumed more than adaptWaitShare
// of the window — i.e., when it is observably thrashing.

const (
	// adaptEpoch is how many transaction attempts a worker runs between
	// policy re-evaluations. Thrashing workers complete few
	// transactions, so the epoch must be short for the switch to
	// trigger inside a measurement window.
	adaptEpoch = 4

	// adaptWaitShare is the windowed WAIT fraction beyond which a
	// worker flips from waiting (DL_DETECT) to aborting (NO_WAIT).
	adaptWaitShare = 0.4
)

// adaptState is the per-worker controller.
type adaptState struct {
	txns      uint64
	lastWait  uint64
	lastTotal uint64
	noWait    bool
}

// NewAdaptive creates the §6.1 hybrid scheme ("ADAPTIVE"): DL_DETECT
// under low contention, NO_WAIT under thrashing, decided per worker from
// its measured wait share.
func NewAdaptive(opts Options) *TwoPL {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	return &TwoPL{variant: Adaptive, opts: opts}
}

// adaptTick refreshes the controller's breakdown snapshot every
// adaptEpoch transaction attempts, bounding the window the conflict-time
// decision looks at.
func (s *TwoPL) adaptTick(p rt.Proc, st *txnState) {
	a := &s.adapt[p.ID()]
	a.txns++
	if a.txns%adaptEpoch != 0 {
		return
	}
	bd := p.Stats()
	a.lastWait = bd.Get(stats.Wait)
	a.lastTotal = bd.Total()
}

// adaptiveNoWait decides the worker's policy at conflict time from the
// wait share accumulated since the last snapshot. Deciding per conflict
// (rather than per transaction) matters: a thrashing worker can sit
// inside one attempt for the whole epoch, and its mounting WAIT time must
// flip the policy mid-attempt.
func (s *TwoPL) adaptiveNoWait(p rt.Proc) bool {
	a := &s.adapt[p.ID()]
	bd := p.Stats()
	wait := bd.Get(stats.Wait)
	total := bd.Total()
	if wait < a.lastWait || total < a.lastTotal {
		// The engine reset the breakdown at the warmup boundary.
		a.lastWait, a.lastTotal = wait, total
		return false
	}
	dWait := wait - a.lastWait
	dTotal := total - a.lastTotal
	if dTotal < 1000 {
		return false // too little evidence in this window
	}
	return float64(dWait)/float64(dTotal) > adaptWaitShare
}
