package twopl_test

import (
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

func TestVariantNames(t *testing.T) {
	cases := map[twopl.Variant]string{
		twopl.DLDetect: "DL_DETECT",
		twopl.NoWait:   "NO_WAIT",
		twopl.WaitDie:  "WAIT_DIE",
	}
	for v, want := range cases {
		if got := twopl.New(v, twopl.Options{}).Name(); got != want {
			t.Errorf("variant %d name = %q, want %q", int(v), got, want)
		}
	}
}

// TestNoWaitAbortsOnConflict: a second writer must abort immediately.
func TestNoWaitAbortsOnConflict(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(f.DB)
	var second error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 1); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 50_000) // hold the X lock
				return nil
			}})
			if err != nil {
				t.Errorf("holder aborted: %v", err)
			}
			return
		}
		p.Tick(stats.Useful, 10_000) // arrive while the lock is held
		second = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}})
	})
	if second != core.ErrAbort {
		t.Fatalf("second writer got %v, want ErrAbort", second)
	}
	if f.Get(0) != 1 {
		t.Fatalf("slot 0 = %d, want 1 (only the holder's bump)", f.Get(0))
	}
}

// TestSharedReadsCoexist: concurrent readers must not conflict.
func TestSharedReadsCoexist(t *testing.T) {
	for _, v := range []twopl.Variant{twopl.DLDetect, twopl.NoWait, twopl.WaitDie} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := cctest.NewFixture(4, 8, 1)
			scheme := twopl.New(v, twopl.Options{})
			scheme.Setup(f.DB)
			errs := make([]error, 4)
			f.Engine.Run(func(p rt.Proc) {
				w := core.NewWorker(p, f.DB, scheme)
				errs[p.ID()] = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
					if _, err := f.ReadVal(tx, 0); err != nil {
						return err
					}
					tx.P.Sync(stats.Useful, 20_000) // overlap the S locks
					return nil
				}})
			})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("reader %d aborted under %v: %v", i, v, err)
				}
			}
		})
	}
}

// TestDLDetectWaiterGetsLock: with DL_DETECT, a conflicting writer waits
// and proceeds once the holder releases — both bumps land.
func TestDLDetectWaiterGetsLock(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.DLDetect, twopl.Options{Timeout: twopl.NoTimeout})
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 1); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 30_000)
				return nil
			}})
			return
		}
		p.Tick(stats.Useful, 5_000)
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}}); err != nil {
			t.Errorf("waiter aborted: %v", err)
		}
		if p.Now() < 30_000 {
			t.Errorf("waiter finished at %d, before the holder released", p.Now())
		}
	})
	if f.Get(0) != 2 {
		t.Fatalf("slot 0 = %d, want 2", f.Get(0))
	}
}

// TestDLDetectTimeoutAborts: a waiter past its timeout gives up.
func TestDLDetectTimeoutAborts(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.DLDetect, twopl.Options{Timeout: 2_000})
	scheme.Setup(f.DB)
	var waiter error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 1); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 100_000) // hold far beyond the timeout
				return nil
			}})
			return
		}
		p.Tick(stats.Useful, 5_000)
		waiter = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}})
		if p.Now() > 60_000 {
			t.Errorf("timeout abort came only at %d cycles", p.Now())
		}
	})
	if waiter != core.ErrAbort {
		t.Fatalf("waiter got %v, want timeout ErrAbort", waiter)
	}
}

// TestDLDetectBreaksDeadlock: the classic A->B, B->A deadlock must be
// resolved by the detector, with at least one transaction committing.
func TestDLDetectBreaksDeadlock(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.DLDetect, twopl.Options{Timeout: twopl.NoTimeout})
	scheme.Setup(f.DB)
	results := make([]error, 2)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		first, second := 0, 1
		if p.ID() == 1 {
			first, second = 1, 0
		}
		results[p.ID()] = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, first, 1); err != nil {
				return err
			}
			tx.P.Sync(stats.Useful, 5_000) // both now hold their first lock
			return f.Bump(tx, second, 1)
		}})
	})
	commits, aborts := 0, 0
	for _, err := range results {
		switch err {
		case nil:
			commits++
		case core.ErrAbort:
			aborts++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if commits < 1 {
		t.Fatal("deadlock victim selection killed both transactions")
	}
	if aborts < 1 {
		t.Fatal("no deadlock detected: both committed through a cycle")
	}
	// The committed transaction(s) bumped both slots; the aborted one
	// rolled back fully.
	if f.Get(0) != uint64(commits) || f.Get(1) != uint64(commits) {
		t.Fatalf("slots = %d/%d, want %d/%d", f.Get(0), f.Get(1), commits, commits)
	}
}

// TestWaitDieYoungerDies: the younger of two conflicting writers aborts;
// the older waits and commits.
func TestWaitDieYoungerDies(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.WaitDie, twopl.Options{})
	scheme.Setup(f.DB)
	var youngerErr error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Older transaction (allocates its timestamp first),
			// holds the lock.
			err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 1); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 30_000)
				return nil
			}})
			if err != nil {
				t.Errorf("older holder aborted: %v", err)
			}
			return
		}
		p.Tick(stats.Useful, 10_000) // younger: begins after
		youngerErr = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}})
	})
	if youngerErr != core.ErrAbort {
		t.Fatalf("younger writer got %v, want ErrAbort (die)", youngerErr)
	}
}

// TestWaitDieOlderWaits: reversed arrival — the older requester finds the
// younger holding and waits instead of dying.
func TestWaitDieOlderWaits(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.WaitDie, twopl.Options{})
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Older: allocate the timestamp first, then dawdle before
			// touching the tuple so the younger acquires it.
			err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				tx.P.Sync(stats.Useful, 10_000)
				return f.Bump(tx, 0, 1)
			}})
			if err != nil {
				t.Errorf("older requester aborted: %v (should wait)", err)
			}
			return
		}
		p.Tick(stats.Useful, 1_000) // younger by timestamp order
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 0, 1); err != nil {
				return err
			}
			tx.P.Sync(stats.Useful, 30_000) // hold while the older arrives
			return nil
		}})
	})
	if f.Get(0) != 2 {
		t.Fatalf("slot 0 = %d, want 2 (older waited, both committed)", f.Get(0))
	}
}

// TestUpgradeSoleHolder: read-then-update on the same tuple by the sole
// holder must succeed in place.
func TestUpgradeSoleHolder(t *testing.T) {
	for _, v := range []twopl.Variant{twopl.DLDetect, twopl.NoWait, twopl.WaitDie} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := cctest.NewFixture(1, 8, 1)
			scheme := twopl.New(v, twopl.Options{})
			scheme.Setup(f.DB)
			f.Engine.Run(func(p rt.Proc) {
				w := core.NewWorker(p, f.DB, scheme)
				err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
					v0, err := f.ReadVal(tx, 3)
					if err != nil {
						return err
					}
					row, err := tx.UpdateRow(f.Table, 3)
					if err != nil {
						return err
					}
					f.Table.Schema.PutU64(row, 1, v0+41)
					return nil
				}})
				if err != nil {
					t.Errorf("upgrade failed: %v", err)
				}
			})
			if f.Get(3) != 41 {
				t.Fatalf("slot 3 = %d, want 41", f.Get(3))
			}
		})
	}
}

// TestAbortRestoresUndoImages: a mid-transaction abort must roll back all
// in-place writes.
func TestAbortRestoresUndoImages(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Holder keeps slot 1 locked, forcing the other txn to
			// abort after it already wrote slot 2.
			_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 1, 100); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 50_000)
				return nil
			}})
			return
		}
		p.Tick(stats.Useful, 10_000)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 2, 7); err != nil { // lands first
				return err
			}
			return f.Bump(tx, 1, 7) // conflicts -> abort
		}})
		if err != core.ErrAbort {
			t.Errorf("expected abort, got %v", err)
		}
	})
	if f.Get(2) != 0 {
		t.Fatalf("slot 2 = %d, want 0 (undo image not restored)", f.Get(2))
	}
	if f.Get(1) != 100 {
		t.Fatalf("slot 1 = %d, want 100", f.Get(1))
	}
}

// TestUserAbortRollsBack: ErrUserAbort via ExecOnce rolls back too.
func TestUserAbortRollsBack(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := twopl.New(twopl.DLDetect, twopl.Options{})
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 0, 5); err != nil {
				return err
			}
			return core.ErrUserAbort
		}})
		if err != core.ErrUserAbort {
			t.Errorf("got %v", err)
		}
	})
	if f.Get(0) != 0 {
		t.Fatalf("slot 0 = %d after user abort, want 0", f.Get(0))
	}
}
