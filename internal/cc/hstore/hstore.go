// Package hstore implements the H-STORE scheme (§2.2): T/O with
// partition-level locking. The database is split into disjoint partitions,
// each protected by a single coarse lock; a transaction must acquire the
// locks of every partition it will touch before it runs, which requires
// knowing the partition set up front (the engine's Txn.Partitions).
// Waiting transactions queue per partition in timestamp order, so the
// oldest transaction runs first (§2.2: the engine "grants it access to
// that partition if the transaction has the oldest timestamp in the
// queue").
//
// As in the paper's optimized implementation (§4.3 "Local Partitions"),
// partitions are logical: multi-partition transactions access remote
// partitions' tuples directly through shared memory once they hold the
// locks, instead of shipping query requests. Locks are acquired in
// ascending partition order, which makes the protocol deadlock-free.
//
// With partition locks held there is no per-tuple concurrency control at
// all — no tuple latches, no copies — which is why H-STORE's overhead is
// so low on perfectly partitionable workloads (Fig. 14) and why a single
// multi-partition transaction stalls whole partitions (Fig. 15).
package hstore

import (
	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
)

// waiter is one queued transaction at a partition.
type waiter struct {
	ts uint64
	st *txnState
}

// partition is one coarse lock with a timestamp-ordered wait queue.
type partition struct {
	latch   rt.Latch
	locked  bool
	waiters []waiter // kept sorted ascending by ts
}

// undoRec is a before-image (needed for program-logic rollbacks; H-STORE
// has no CC-induced aborts).
type undoRec struct {
	t    *storage.Table
	slot int
	img  []byte
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	w       *core.Worker
	held    []int
	undo    []undoRec
	granted bool
}

// HStore is the partition-locking scheme.
type HStore struct {
	method tsalloc.Method
	db     *core.DB
	alloc  tsalloc.Allocator
	parts  []partition
}

// New creates an H-STORE scheme drawing timestamps via method m.
func New(m tsalloc.Method) *HStore { return &HStore{method: m} }

// Name implements core.Scheme.
func (s *HStore) Name() string { return "HSTORE" }

// Setup implements core.Scheme.
func (s *HStore) Setup(db *core.DB) {
	s.db = db
	s.alloc = tsalloc.New(s.method, db.RT)
	s.parts = make([]partition, db.NParts)
	for i := range s.parts {
		s.parts[i].latch = db.RT.NewLatch(0x45<<40 | uint64(i))
	}
}

// NewTxnState implements core.Scheme.
func (s *HStore) NewTxnState(w *core.Worker) interface{} {
	return &txnState{w: w}
}

// Begin implements core.Scheme: allocate the scheduling timestamp and lock
// every partition the transaction declared, in ascending order.
func (s *HStore) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.held = st.held[:0]
	st.undo = st.undo[:0]
	tx.TS = s.alloc.Next(tx.P)
	parts := tx.Txn.Partitions()
	if len(parts) == 0 {
		panic("hstore: transaction did not declare its partitions")
	}
	for _, pid := range parts {
		s.lockPartition(tx, st, pid)
		st.held = append(st.held, pid)
	}
}

// lockPartition blocks until partition pid is granted to st.
func (s *HStore) lockPartition(tx *core.TxnCtx, st *txnState, pid int) {
	p := tx.P
	pt := &s.parts[pid]
	pt.latch.Acquire(p, stats.Manager)
	p.Tick(stats.Manager, costs.ManagerOp)
	if !pt.locked && (len(pt.waiters) == 0 || tx.TS <= pt.waiters[0].ts) {
		pt.locked = true
		pt.latch.Release(p, stats.Manager)
		return
	}
	// Enqueue in timestamp order.
	st.granted = false
	pos := len(pt.waiters)
	for i := range pt.waiters {
		if tx.TS < pt.waiters[i].ts {
			pos = i
			break
		}
	}
	pt.waiters = append(pt.waiters, waiter{})
	copy(pt.waiters[pos+1:], pt.waiters[pos:])
	pt.waiters[pos] = waiter{ts: tx.TS, st: st}
	pt.latch.Release(p, stats.Manager)

	for {
		p.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
		pt.latch.Acquire(p, stats.Manager)
		if st.granted {
			st.granted = false
			pt.latch.Release(p, stats.Manager)
			return
		}
		pt.latch.Release(p, stats.Manager)
	}
}

// unlockPartition releases pid, granting the oldest waiter.
func (s *HStore) unlockPartition(tx *core.TxnCtx, pid int) {
	p := tx.P
	pt := &s.parts[pid]
	pt.latch.Acquire(p, stats.Manager)
	p.Tick(stats.Manager, costs.ManagerOp)
	if len(pt.waiters) > 0 {
		next := pt.waiters[0]
		copy(pt.waiters, pt.waiters[1:])
		pt.waiters = pt.waiters[:len(pt.waiters)-1]
		next.st.granted = true
		s.db.RT.Unpark(p, next.st.w.P)
		// Lock stays held, transferred to the waiter.
	} else {
		pt.locked = false
	}
	pt.latch.Release(p, stats.Manager)
}

// Read implements core.Scheme: with partition locks held, read in place
// with no per-tuple work at all.
func (s *HStore) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	// History capture: the partition lock excludes every writer of this
	// slot (same partition), fixing the version this read observes.
	tx.CaptureRead(t, slot)
	tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
	return t.Row(slot), nil
}

// WriteRow implements core.Scheme: hand back the live row for in-place
// mutation under the partition lock, with an undo image for program-logic
// rollbacks.
func (s *HStore) WriteRow(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	// History capture: a write is a read-modify-write of the current
	// committed version.
	tx.CaptureRead(t, slot)
	st := tx.State.(*txnState)
	row := t.Row(slot)
	have := false
	for i := range st.undo {
		if st.undo[i].t == t && st.undo[i].slot == slot {
			have = true
			break
		}
	}
	if !have {
		img := tx.Alloc.Alloc(tx.P, stats.Manager, len(row))
		copy(img, row)
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(len(row))))
		st.undo = append(st.undo, undoRec{t: t, slot: slot, img: img})
	}
	tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(len(row)))
	return row, nil
}

// Commit implements core.Scheme: release partitions.
func (s *HStore) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	// Commit point: log while the partitions are still locked, so log
	// order matches partition-lock order.
	tx.LogCommit()
	for _, pid := range st.held {
		s.unlockPartition(tx, pid)
	}
	st.held = st.held[:0]
	st.undo = st.undo[:0]
	return nil
}

// Abort implements core.Scheme: restore undo images, release partitions.
// Only program logic aborts H-STORE transactions.
func (s *HStore) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	for i := len(st.undo) - 1; i >= 0; i-- {
		u := &st.undo[i]
		copy(u.t.Row(u.slot), u.img)
		tx.P.MemWrite(stats.Abort, u.t.MemKey(u.slot), uint64(len(u.img)))
	}
	st.undo = st.undo[:0]
	for _, pid := range st.held {
		s.unlockPartition(tx, pid)
	}
	st.held = st.held[:0]
}

// InitTuple implements core.Scheme: nothing per-tuple under H-STORE.
func (s *HStore) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {}

var _ core.Scheme = (*HStore)(nil)
