package hstore_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

// TestSinglePartitionParallelism: transactions on distinct partitions
// proceed concurrently (their windows overlap in simulated time).
func TestSinglePartitionParallelism(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	ends := make([]uint64, 2)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		slot := p.ID() // distinct slots -> distinct partitions (slot % 2)
		if err := w.ExecOnce(&cctest.Txn{
			Parts: []int{slot % 2},
			Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, slot, 1); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 20_000)
				return nil
			},
		}); err != nil {
			t.Errorf("txn %d failed: %v", p.ID(), err)
		}
		ends[p.ID()] = p.Now()
	})
	// Both held their partitions for 20k cycles; if they serialized, the
	// second would finish after ~40k.
	for i, e := range ends {
		if e > 35_000 {
			t.Fatalf("txn %d finished at %d: single-partition txns serialized", i, e)
		}
	}
}

// TestSamePartitionSerializes: two transactions on one partition cannot
// overlap; the younger waits.
func TestSamePartitionSerializes(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var secondEnd uint64
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			_ = w.ExecOnce(&cctest.Txn{
				Parts: []int{0},
				Body: func(tx *core.TxnCtx) error {
					tx.P.Sync(stats.Useful, 30_000)
					return f.Bump(tx, 0, 1)
				},
			})
			return
		}
		p.Tick(stats.Useful, 1_000)
		_ = w.ExecOnce(&cctest.Txn{
			Parts: []int{0},
			Body: func(tx *core.TxnCtx) error {
				return f.Bump(tx, 0, 1)
			},
		})
		secondEnd = p.Now()
	})
	if secondEnd < 30_000 {
		t.Fatalf("second txn finished at %d, inside the first's partition hold", secondEnd)
	}
	if f.Get(0) != 2 {
		t.Fatalf("slot 0 = %d, want 2", f.Get(0))
	}
}

// TestOldestTimestampWins: when several transactions queue on one
// partition, grants go in timestamp order, not arrival order.
func TestOldestTimestampWins(t *testing.T) {
	f := cctest.NewFixture(3, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var order []int
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Holder: keeps the partition while 1 and 2 queue.
			_ = w.ExecOnce(&cctest.Txn{
				Parts: []int{0},
				Body: func(tx *core.TxnCtx) error {
					tx.P.Sync(stats.Useful, 30_000)
					return nil
				},
			})
			return
		}
		// Proc 1 draws its (older) timestamp before proc 2, but proc 2
		// enqueues first; ts order must still win.
		if p.ID() == 1 {
			p.Tick(stats.Useful, 2_000)
		} else {
			p.Tick(stats.Useful, 1_000)
		}
		_ = w.ExecOnce(&cctest.Txn{
			Parts: []int{0},
			Body: func(tx *core.TxnCtx) error {
				order = append(order, tx.P.ID())
				return nil
			},
		})
	})
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// Proc 2 began earlier (smaller timestamp) so it must run first.
	if order[0] != 2 || order[1] != 1 {
		t.Fatalf("grant order = %v, want [2 1] (timestamp order)", order)
	}
}

// TestMultiPartitionExcludesSinglePartition: a multi-partition txn holds
// every declared partition, stalling single-partition work on them.
func TestMultiPartitionExcludesSinglePartition(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var spEnd uint64
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			_ = w.ExecOnce(&cctest.Txn{
				Parts: []int{0, 1}, // multi-partition
				Body: func(tx *core.TxnCtx) error {
					if err := f.Bump(tx, 0, 1); err != nil {
						return err
					}
					if err := f.Bump(tx, 1, 1); err != nil { // remote access via shared memory
						return err
					}
					tx.P.Sync(stats.Useful, 25_000)
					return nil
				},
			})
			return
		}
		p.Tick(stats.Useful, 2_000)
		_ = w.ExecOnce(&cctest.Txn{
			Parts: []int{1},
			Body: func(tx *core.TxnCtx) error {
				return f.Bump(tx, 1, 1)
			},
		})
		spEnd = p.Now()
	})
	if spEnd < 25_000 {
		t.Fatalf("single-partition txn ran at %d, inside the MP txn's hold", spEnd)
	}
	if f.Get(0) != 1 || f.Get(1) != 2 {
		t.Fatalf("slots = %d/%d, want 1/2", f.Get(0), f.Get(1))
	}
}

// TestUserAbortRestoresState: H-STORE has no CC aborts, but program logic
// can roll back; undo images must restore in-place writes.
func TestUserAbortRestoresState(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{
			Parts: []int{0},
			Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 9); err != nil {
					return err
				}
				return core.ErrUserAbort
			},
		})
		if err != core.ErrUserAbort {
			t.Errorf("got %v", err)
		}
		// The partition must be free again afterwards.
		if err := w.ExecOnce(&cctest.Txn{
			Parts: []int{0},
			Body: func(tx *core.TxnCtx) error {
				return f.Bump(tx, 0, 1)
			},
		}); err != nil {
			t.Errorf("follow-up txn failed: %v (partition leaked?)", err)
		}
	})
	if f.Get(0) != 1 {
		t.Fatalf("slot 0 = %d, want 1 (undo + follow-up)", f.Get(0))
	}
}

// TestUndeclaredPartitionsPanic: H-STORE requires the partition set up
// front (§2.2); a transaction without one is a programming error. The
// panic fires on the worker's goroutine, so it is recovered there.
func TestUndeclaredPartitionsPanic(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := hstore.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	panicked := false
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		func() {
			defer func() {
				panicked = recover() != nil
			}()
			_ = w.ExecOnce(&cctest.Txn{
				Parts: nil,
				Body:  func(tx *core.TxnCtx) error { return nil },
			})
		}()
	})
	if !panicked {
		t.Fatal("expected panic for undeclared partitions")
	}
}
