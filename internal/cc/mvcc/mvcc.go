// Package mvcc implements multi-version timestamp ordering (MVCC in the
// paper, §2.2): every write creates a new version tagged with its writer's
// timestamp; a read is directed to the newest version whose write
// timestamp does not exceed the reader's — so "the DBMS does not reject a
// read operation because the element it targets has already been
// overwritten" (non-blocking reads, Fig. 13's story).
//
// Writes install *pending* versions at their timestamp position and
// finalize them at commit; a reader whose visible version is still pending
// waits for the writer to resolve it — the paper's "wait for a tuple whose
// value is not ready yet" (the WAIT component for T/O schemes). The write
// rule is classic MVTO: writing at ts aborts iff the preceding version has
// been read by a transaction later than ts (prev.rts > ts).
//
// Old versions are pruned using a watermark of the minimum active
// transaction timestamp, published per-worker through runtime counters.
// Each read request appending version history is also why the paper notes
// MVCC "increases memory traffic" (Fig. 17 discussion).
package mvcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
)

// idleTS marks a worker with no transaction in flight.
const idleTS = ^uint64(0)

// gcEvery is how many transactions a worker runs between watermark
// refreshes; pruning itself happens opportunistically during writes.
const gcEvery = 64

// maxChain is the version-chain length that triggers opportunistic pruning.
const maxChain = 8

// version is one entry of a tuple's version chain, ordered by wts.
type version struct {
	wts     uint64
	rts     uint64
	data    []byte
	pending bool
	owner   *txnState
}

// entry is a tuple's chain plus its latch. The base (load-time) version is
// implicit until the first write materializes it: data in the table slab,
// write timestamp baseWTS, read timestamp baseRTS.
type entry struct {
	latch    rt.Latch
	baseWTS  uint64
	baseRTS  uint64
	versions []version

	// waiters are parked readers/writers blocked on a pending version;
	// resolution wakes them all and they re-check.
	waiters []rt.Proc
}

// pendingRec tracks a pending version for commit/abort.
type pendingRec struct {
	t    *storage.Table
	slot int
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	pending []pendingRec
	ntxn    uint64
	minTS   uint64 // cached GC watermark
}

// MVCC is the multi-version T/O scheme.
type MVCC struct {
	method tsalloc.Method
	db     *core.DB
	alloc  tsalloc.Allocator
	meta   [][]entry
	active []rt.Counter // per-worker active transaction timestamp

	// free recycles version data buffers, one stack per (worker, table)
	// at index worker*ntables+table: a worker pushes buffers it unlinks
	// (abort withdrawals, pruned old versions) and pops them for new
	// versions. When a stack is empty, buffers are carved from the
	// worker's grow-only chunk (the paper's per-thread memory pools), so
	// the steady-state write path performs no per-version heap
	// allocation. Only worker w touches w's stacks and chunk; a buffer
	// is recycled only once no active transaction can reach its version
	// (abort: the version was pending and private; prune: the watermark
	// proves unreachability), so reuse can never be observed.
	free    [][][]byte
	chunks  []chunk
	ntables int
}

// chunk is one worker's bump allocator for fresh version buffers.
type chunk struct {
	buf []byte
	off int
}

// chunkSize is each refill of a worker's version-buffer pool.
const chunkSize = 1 << 18

// New creates an MVCC scheme drawing timestamps via method m.
func New(m tsalloc.Method) *MVCC { return &MVCC{method: m} }

// Name implements core.Scheme.
func (s *MVCC) Name() string { return "MVCC" }

// Setup implements core.Scheme.
func (s *MVCC) Setup(db *core.DB) {
	s.db = db
	s.alloc = tsalloc.New(s.method, db.RT)
	tables := db.Catalog.Tables()
	s.meta = make([][]entry, len(tables))
	for _, t := range tables {
		entries := make([]entry, t.Capacity())
		for i := range entries {
			entries[i].latch = db.RT.NewLatch(uint64(t.ID)<<44 | 0x33<<36 | uint64(i))
			// Pre-size the chain so a tuple's first versions never
			// allocate on the write path (commit-time pruning keeps
			// steady-state chains short, so capacity 2 rarely grows).
			entries[i].versions = make([]version, 0, 2)
		}
		s.meta[t.ID] = entries
	}
	n := db.RT.NumProcs()
	s.active = make([]rt.Counter, n)
	for i := range s.active {
		s.active[i] = db.RT.NewCounter(0xAC<<40 | uint64(i))
	}
	s.ntables = len(tables)
	s.free = make([][][]byte, n*s.ntables)
	s.chunks = make([]chunk, n)
}

// getBuf pops a recycled version buffer for worker wid and table tid, or
// carves a fresh one from the worker's chunk. The caller overwrites the
// full buffer.
func (s *MVCC) getBuf(wid, tid, n int) []byte {
	k := wid*s.ntables + tid
	stack := s.free[k]
	if len(stack) > 0 {
		buf := stack[len(stack)-1]
		s.free[k] = stack[:len(stack)-1]
		return buf
	}
	c := &s.chunks[wid]
	if c.off+n > len(c.buf) {
		size := chunkSize
		if size < n {
			size = n
		}
		c.buf = make([]byte, size)
		c.off = 0
	}
	buf := c.buf[c.off : c.off+n : c.off+n]
	c.off += n
	return buf
}

// putBuf recycles an unlinked version buffer onto worker wid's stack.
func (s *MVCC) putBuf(wid, tid int, buf []byte) {
	k := wid*s.ntables + tid
	s.free[k] = append(s.free[k], buf)
}

// NewTxnState implements core.Scheme.
func (s *MVCC) NewTxnState(w *core.Worker) interface{} {
	return &txnState{minTS: 0}
}

// Begin implements core.Scheme.
func (s *MVCC) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.pending = st.pending[:0]
	tx.TS = s.alloc.Next(tx.P)
	s.active[tx.P.ID()].Store(tx.P, stats.Manager, tx.TS)
	st.ntxn++
	if st.ntxn%gcEvery == 0 {
		st.minTS = s.watermark(tx.P)
	}
	tx.P.Tick(stats.Manager, costs.ManagerOp)
}

// watermark scans the active-transaction table for the minimum timestamp.
// A stale (smaller) watermark only delays pruning, never unsafely prunes.
func (s *MVCC) watermark(p rt.Proc) uint64 {
	min := idleTS
	for _, c := range s.active {
		if v := c.Load(p, stats.Manager); v < min {
			min = v
		}
	}
	if min == idleTS {
		return 0
	}
	return min
}

func (s *MVCC) entryOf(t *storage.Table, slot int) *entry {
	return &s.meta[t.ID][slot]
}

// visible returns the index into e.versions of the newest version with
// wts <= ts, or -1 for the implicit base version, or -2 if even the base
// version is too new (an inserted tuple read at an earlier timestamp).
func (e *entry) visible(ts uint64) int {
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].wts <= ts {
			return i
		}
	}
	if e.baseWTS <= ts {
		return -1
	}
	return -2
}

// wakeAll unparks every waiter on e. Caller holds e.latch.
func (s *MVCC) wakeAll(p rt.Proc, e *entry) {
	for _, w := range e.waiters {
		s.db.RT.Unpark(p, w)
	}
	e.waiters = e.waiters[:0]
}

// Read implements core.Scheme.
func (s *MVCC) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	e := s.entryOf(t, slot)
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		i := e.visible(tx.TS)
		if i == -2 {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}
		if i == -1 {
			if e.baseRTS < tx.TS {
				e.baseRTS = tx.TS
			}
			// History capture: the base version's write timestamp (0 for
			// a loaded row, the inserter's TS for a runtime insert).
			tx.CaptureReadVer(t, slot, e.baseWTS)
			tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
			row := t.Row(slot)
			e.latch.Release(tx.P, stats.Manager)
			return row, nil
		}
		v := &e.versions[i]
		if v.pending {
			if v.owner == st {
				data := v.data
				e.latch.Release(tx.P, stats.Manager)
				return data, nil // read own pending write
			}
			// The value at our timestamp is not ready yet: wait.
			e.waiters = append(e.waiters, tx.P)
			e.latch.Release(tx.P, stats.Manager)
			tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
			continue
		}
		if v.rts < tx.TS {
			v.rts = tx.TS
		}
		// History capture: this read observes the chain version stamped
		// v.wts.
		tx.CaptureReadVer(t, slot, v.wts)
		tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
		data := v.data
		e.latch.Release(tx.P, stats.Manager)
		return data, nil
	}
}

// WriteRow implements core.Scheme: install a pending version at tx.TS and
// return its buffer (seeded with the preceding version's image) for the
// caller to mutate in place. The buffer stays private until Commit
// resolves the pending version — readers ordered after it wait, earlier
// ones are served older versions — so caller writes after return are
// isolated.
func (s *MVCC) WriteRow(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	e := s.entryOf(t, slot)
	n := t.Schema.RowSize()
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		i := e.visible(tx.TS)
		if i == -2 {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}

		var prevRTS, prevWTS uint64
		var prevData []byte
		if i == -1 {
			prevRTS = e.baseRTS
			prevWTS = e.baseWTS
			prevData = t.Row(slot)
		} else {
			v := &e.versions[i]
			if v.pending {
				if v.owner == st {
					// Second write by the same transaction:
					// hand back the pending version again.
					data := v.data
					tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(n))
					e.latch.Release(tx.P, stats.Manager)
					return data, nil
				}
				// A concurrent writer precedes us; its outcome
				// decides our fate. Wait for resolution.
				e.waiters = append(e.waiters, tx.P)
				e.latch.Release(tx.P, stats.Manager)
				tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
				continue
			}
			prevRTS = v.rts
			prevWTS = v.wts
			prevData = v.data
		}

		// MVTO write rule: a transaction later than ts already read
		// the preceding version — writing at ts would invalidate it.
		if prevRTS > tx.TS {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}

		// This update is a read-modify-write: it *reads* the
		// preceding version, so bump that version's read timestamp.
		// Without this, an older RMW arriving later could slot its
		// version underneath ours and our increment would be lost.
		if i == -1 {
			if e.baseRTS < tx.TS {
				e.baseRTS = tx.TS
			}
		} else if v := &e.versions[i]; v.rts < tx.TS {
			v.rts = tx.TS
		}
		// History capture: the RMW reads the preceding version before
		// installing its own at tx.TS.
		tx.CaptureReadVer(t, slot, prevWTS)

		// Install the pending version (sorted position: after i).
		// The buffer comes from the worker's recycle stack when one is
		// available; the modeled allocation cost is charged either way
		// (the paper's DBMS pays its pool allocator on every version).
		buf := s.getBuf(tx.P.ID(), t.ID, n)
		copy(buf, prevData)
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(n))+costs.AllocBase)
		tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(n))
		nv := version{wts: tx.TS, data: buf, pending: true, owner: st}
		pos := i + 1
		e.versions = append(e.versions, version{})
		copy(e.versions[pos+1:], e.versions[pos:])
		e.versions[pos] = nv

		if len(e.versions) > maxChain {
			s.prune(e, st.minTS, tx.P.ID(), t.ID)
		}
		e.latch.Release(tx.P, stats.Manager)
		st.pending = append(st.pending, pendingRec{t: t, slot: slot})
		return buf, nil
	}
}

// prune drops committed versions no active transaction can reach: every
// version strictly older than the newest version with wts <= watermark.
// Dropped buffers are recycled onto the pruning worker's stack — the
// watermark proves no active transaction can still be served from them.
// Caller holds e.latch.
func (s *MVCC) prune(e *entry, watermark uint64, wid, tid int) {
	keepFrom := -1
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].wts <= watermark && !e.versions[i].pending {
			keepFrom = i
			break
		}
	}
	if keepFrom <= 0 {
		return
	}
	for i := 0; i < keepFrom; i++ {
		s.putBuf(wid, tid, e.versions[i].data)
	}
	// The version at keepFrom becomes the new floor; absorb its
	// predecessor's role by promoting it into the base.
	e.baseWTS = e.versions[keepFrom].wts
	e.versions = append(e.versions[:0], e.versions[keepFrom:]...)
}

// Commit implements core.Scheme: finalize pending versions.
func (s *MVCC) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	// Commit point: like TIMESTAMP, the version order is the timestamp
	// order, carried in the record's replay version.
	tx.LogCommit()
	for _, pr := range st.pending {
		e := s.entryOf(pr.t, pr.slot)
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		for i := range e.versions {
			if e.versions[i].pending && e.versions[i].owner == st {
				e.versions[i].pending = false
				e.versions[i].owner = nil
			}
		}
		// Opportunistic pruning under the latch already held: commits
		// are where versions become reclaimable, and pruning here (at
		// zero modeled cost — garbage collection is not part of the
		// paper's cost model) keeps chains short and recycles buffers
		// instead of waiting for a chain to hit maxChain.
		if len(e.versions) > 1 {
			s.prune(e, st.minTS, tx.P.ID(), pr.t.ID)
		}
		s.wakeAll(tx.P, e)
		e.latch.Release(tx.P, stats.Manager)
	}
	st.pending = st.pending[:0]
	s.active[tx.P.ID()].Store(tx.P, stats.Manager, idleTS)
	return nil
}

// Abort implements core.Scheme: unlink pending versions, recycling their
// buffers (a pending version is private to its owner, so no other
// transaction can hold a reference).
func (s *MVCC) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	for _, pr := range st.pending {
		e := s.entryOf(pr.t, pr.slot)
		e.latch.Acquire(tx.P, stats.Abort)
		tx.P.Tick(stats.Abort, costs.ManagerOp)
		for i := 0; i < len(e.versions); {
			if e.versions[i].pending && e.versions[i].owner == st {
				s.putBuf(tx.P.ID(), pr.t.ID, e.versions[i].data)
				e.versions = append(e.versions[:i], e.versions[i+1:]...)
				continue
			}
			i++
		}
		s.wakeAll(tx.P, e)
		e.latch.Release(tx.P, stats.Abort)
	}
	st.pending = st.pending[:0]
	s.active[tx.P.ID()].Store(tx.P, stats.Abort, idleTS)
}

// InitTuple implements core.Scheme: the inserted tuple's base version is
// stamped with the inserting transaction's timestamp.
func (s *MVCC) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {
	e := s.entryOf(t, slot)
	e.baseWTS = tx.TS
}

// LatestCommitted returns the newest committed version's data for (t,
// slot). It takes no latch and is intended for post-run verification on a
// quiescent database (under MVCC the table slab holds only the base
// version; current state lives in the version chains).
func (s *MVCC) LatestCommitted(t *storage.Table, slot int) []byte {
	e := s.entryOf(t, slot)
	for i := len(e.versions) - 1; i >= 0; i-- {
		if !e.versions[i].pending {
			return e.versions[i].data
		}
	}
	return t.Row(slot)
}

// TSOrderedCommits marks MVCC for the WAL: the newest committed version
// is the highest write timestamp, so commit records replay by version.
func (s *MVCC) TSOrderedCommits() {}

var (
	_ core.Scheme          = (*MVCC)(nil)
	_ core.TSOrderedScheme = (*MVCC)(nil)
)
