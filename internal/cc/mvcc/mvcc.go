// Package mvcc implements multi-version timestamp ordering (MVCC in the
// paper, §2.2): every write creates a new version tagged with its writer's
// timestamp; a read is directed to the newest version whose write
// timestamp does not exceed the reader's — so "the DBMS does not reject a
// read operation because the element it targets has already been
// overwritten" (non-blocking reads, Fig. 13's story).
//
// Writes install *pending* versions at their timestamp position and
// finalize them at commit; a reader whose visible version is still pending
// waits for the writer to resolve it — the paper's "wait for a tuple whose
// value is not ready yet" (the WAIT component for T/O schemes). The write
// rule is classic MVTO: writing at ts aborts iff the preceding version has
// been read by a transaction later than ts (prev.rts > ts).
//
// Old versions are pruned using a watermark of the minimum active
// transaction timestamp, published per-worker through runtime counters.
// Each read request appending version history is also why the paper notes
// MVCC "increases memory traffic" (Fig. 17 discussion).
package mvcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
)

// idleTS marks a worker with no transaction in flight.
const idleTS = ^uint64(0)

// gcEvery is how many transactions a worker runs between watermark
// refreshes; pruning itself happens opportunistically during writes.
const gcEvery = 64

// maxChain is the version-chain length that triggers opportunistic pruning.
const maxChain = 8

// version is one entry of a tuple's version chain, ordered by wts.
type version struct {
	wts     uint64
	rts     uint64
	data    []byte
	pending bool
	owner   *txnState
}

// entry is a tuple's chain plus its latch. The base (load-time) version is
// implicit until the first write materializes it: data in the table slab,
// write timestamp baseWTS, read timestamp baseRTS.
type entry struct {
	latch    rt.Latch
	baseWTS  uint64
	baseRTS  uint64
	versions []version

	// waiters are parked readers/writers blocked on a pending version;
	// resolution wakes them all and they re-check.
	waiters []rt.Proc
}

// pendingRec tracks a pending version for commit/abort.
type pendingRec struct {
	t    *storage.Table
	slot int
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	pending []pendingRec
	ntxn    uint64
	minTS   uint64 // cached GC watermark
}

// MVCC is the multi-version T/O scheme.
type MVCC struct {
	method tsalloc.Method
	db     *core.DB
	alloc  tsalloc.Allocator
	meta   [][]entry
	active []rt.Counter // per-worker active transaction timestamp
}

// New creates an MVCC scheme drawing timestamps via method m.
func New(m tsalloc.Method) *MVCC { return &MVCC{method: m} }

// Name implements core.Scheme.
func (s *MVCC) Name() string { return "MVCC" }

// Setup implements core.Scheme.
func (s *MVCC) Setup(db *core.DB) {
	s.db = db
	s.alloc = tsalloc.New(s.method, db.RT)
	tables := db.Catalog.Tables()
	s.meta = make([][]entry, len(tables))
	for _, t := range tables {
		entries := make([]entry, t.Capacity())
		for i := range entries {
			entries[i].latch = db.RT.NewLatch(uint64(t.ID)<<44 | 0x33<<36 | uint64(i))
		}
		s.meta[t.ID] = entries
	}
	n := db.RT.NumProcs()
	s.active = make([]rt.Counter, n)
	for i := range s.active {
		s.active[i] = db.RT.NewCounter(0xAC<<40 | uint64(i))
	}
}

// NewTxnState implements core.Scheme.
func (s *MVCC) NewTxnState(w *core.Worker) interface{} {
	return &txnState{minTS: 0}
}

// Begin implements core.Scheme.
func (s *MVCC) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.pending = st.pending[:0]
	tx.TS = s.alloc.Next(tx.P)
	s.active[tx.P.ID()].Store(tx.P, stats.Manager, tx.TS)
	st.ntxn++
	if st.ntxn%gcEvery == 0 {
		st.minTS = s.watermark(tx.P)
	}
	tx.P.Tick(stats.Manager, costs.ManagerOp)
}

// watermark scans the active-transaction table for the minimum timestamp.
// A stale (smaller) watermark only delays pruning, never unsafely prunes.
func (s *MVCC) watermark(p rt.Proc) uint64 {
	min := idleTS
	for _, c := range s.active {
		if v := c.Load(p, stats.Manager); v < min {
			min = v
		}
	}
	if min == idleTS {
		return 0
	}
	return min
}

func (s *MVCC) entryOf(t *storage.Table, slot int) *entry {
	return &s.meta[t.ID][slot]
}

// visible returns the index into e.versions of the newest version with
// wts <= ts, or -1 for the implicit base version, or -2 if even the base
// version is too new (an inserted tuple read at an earlier timestamp).
func (e *entry) visible(ts uint64) int {
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].wts <= ts {
			return i
		}
	}
	if e.baseWTS <= ts {
		return -1
	}
	return -2
}

// wakeAll unparks every waiter on e. Caller holds e.latch.
func (s *MVCC) wakeAll(p rt.Proc, e *entry) {
	for _, w := range e.waiters {
		s.db.RT.Unpark(p, w)
	}
	e.waiters = e.waiters[:0]
}

// Read implements core.Scheme.
func (s *MVCC) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	e := s.entryOf(t, slot)
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		i := e.visible(tx.TS)
		if i == -2 {
			e.latch.Release(tx.P, stats.Manager)
			return nil, core.ErrAbort
		}
		if i == -1 {
			if e.baseRTS < tx.TS {
				e.baseRTS = tx.TS
			}
			tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
			row := t.Row(slot)
			e.latch.Release(tx.P, stats.Manager)
			return row, nil
		}
		v := &e.versions[i]
		if v.pending {
			if v.owner == st {
				data := v.data
				e.latch.Release(tx.P, stats.Manager)
				return data, nil // read own pending write
			}
			// The value at our timestamp is not ready yet: wait.
			e.waiters = append(e.waiters, tx.P)
			e.latch.Release(tx.P, stats.Manager)
			tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
			continue
		}
		if v.rts < tx.TS {
			v.rts = tx.TS
		}
		tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(t.Schema.RowSize()))
		data := v.data
		e.latch.Release(tx.P, stats.Manager)
		return data, nil
	}
}

// Write implements core.Scheme: install a pending version at tx.TS.
func (s *MVCC) Write(tx *core.TxnCtx, t *storage.Table, slot int, fn func(row []byte)) error {
	st := tx.State.(*txnState)
	e := s.entryOf(t, slot)
	n := t.Schema.RowSize()
	for {
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		i := e.visible(tx.TS)
		if i == -2 {
			e.latch.Release(tx.P, stats.Manager)
			return core.ErrAbort
		}

		var prevRTS uint64
		var prevData []byte
		if i == -1 {
			prevRTS = e.baseRTS
			prevData = t.Row(slot)
		} else {
			v := &e.versions[i]
			if v.pending {
				if v.owner == st {
					// Second write by the same transaction:
					// update the pending version in place.
					fn(v.data)
					tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(n))
					e.latch.Release(tx.P, stats.Manager)
					return nil
				}
				// A concurrent writer precedes us; its outcome
				// decides our fate. Wait for resolution.
				e.waiters = append(e.waiters, tx.P)
				e.latch.Release(tx.P, stats.Manager)
				tx.P.ParkTimeout(stats.Wait, costs.WaitCheckInterval)
				continue
			}
			prevRTS = v.rts
			prevData = v.data
		}

		// MVTO write rule: a transaction later than ts already read
		// the preceding version — writing at ts would invalidate it.
		if prevRTS > tx.TS {
			e.latch.Release(tx.P, stats.Manager)
			return core.ErrAbort
		}

		// This update is a read-modify-write: it *reads* the
		// preceding version, so bump that version's read timestamp.
		// Without this, an older RMW arriving later could slot its
		// version underneath ours and our increment would be lost.
		if i == -1 {
			if e.baseRTS < tx.TS {
				e.baseRTS = tx.TS
			}
		} else if v := &e.versions[i]; v.rts < tx.TS {
			v.rts = tx.TS
		}

		// Install the pending version (sorted position: after i).
		buf := make([]byte, n)
		copy(buf, prevData)
		tx.P.Tick(stats.Manager, costs.CopyCost(uint64(n))+costs.AllocBase)
		fn(buf)
		tx.P.MemWrite(stats.Useful, t.MemKey(slot), uint64(n))
		nv := version{wts: tx.TS, data: buf, pending: true, owner: st}
		pos := i + 1
		e.versions = append(e.versions, version{})
		copy(e.versions[pos+1:], e.versions[pos:])
		e.versions[pos] = nv

		if len(e.versions) > maxChain {
			s.prune(e, st.minTS)
		}
		e.latch.Release(tx.P, stats.Manager)
		st.pending = append(st.pending, pendingRec{t: t, slot: slot})
		return nil
	}
}

// prune drops committed versions no active transaction can reach: every
// version strictly older than the newest version with wts <= watermark.
// Caller holds e.latch.
func (s *MVCC) prune(e *entry, watermark uint64) {
	keepFrom := -1
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].wts <= watermark && !e.versions[i].pending {
			keepFrom = i
			break
		}
	}
	if keepFrom <= 0 {
		return
	}
	// The version at keepFrom becomes the new floor; absorb its
	// predecessor's role by promoting it into the base.
	e.baseWTS = e.versions[keepFrom].wts
	e.versions = append(e.versions[:0], e.versions[keepFrom:]...)
}

// Commit implements core.Scheme: finalize pending versions.
func (s *MVCC) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	for _, pr := range st.pending {
		e := s.entryOf(pr.t, pr.slot)
		e.latch.Acquire(tx.P, stats.Manager)
		tx.P.Tick(stats.Manager, costs.ManagerOp)
		for i := range e.versions {
			if e.versions[i].pending && e.versions[i].owner == st {
				e.versions[i].pending = false
				e.versions[i].owner = nil
			}
		}
		s.wakeAll(tx.P, e)
		e.latch.Release(tx.P, stats.Manager)
	}
	st.pending = st.pending[:0]
	s.active[tx.P.ID()].Store(tx.P, stats.Manager, idleTS)
	return nil
}

// Abort implements core.Scheme: unlink pending versions.
func (s *MVCC) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	for _, pr := range st.pending {
		e := s.entryOf(pr.t, pr.slot)
		e.latch.Acquire(tx.P, stats.Abort)
		tx.P.Tick(stats.Abort, costs.ManagerOp)
		for i := 0; i < len(e.versions); {
			if e.versions[i].pending && e.versions[i].owner == st {
				e.versions = append(e.versions[:i], e.versions[i+1:]...)
				continue
			}
			i++
		}
		s.wakeAll(tx.P, e)
		e.latch.Release(tx.P, stats.Abort)
	}
	st.pending = st.pending[:0]
	s.active[tx.P.ID()].Store(tx.P, stats.Abort, idleTS)
}

// InitTuple implements core.Scheme: the inserted tuple's base version is
// stamped with the inserting transaction's timestamp.
func (s *MVCC) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {
	e := s.entryOf(t, slot)
	e.baseWTS = tx.TS
}

// LatestCommitted returns the newest committed version's data for (t,
// slot). It takes no latch and is intended for post-run verification on a
// quiescent database (under MVCC the table slab holds only the base
// version; current state lives in the version chains).
func (s *MVCC) LatestCommitted(t *storage.Table, slot int) []byte {
	e := s.entryOf(t, slot)
	for i := len(e.versions) - 1; i >= 0; i-- {
		if !e.versions[i].pending {
			return e.versions[i].data
		}
	}
	return t.Row(slot)
}

var _ core.Scheme = (*MVCC)(nil)
