package mvcc_test

import (
	"testing"

	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

// TestLateReaderSeesOldVersion is MVCC's defining behaviour (§2.2: "the
// DBMS does not reject a read operation because the element it targets
// has already been overwritten"): a reader older than a committed write
// gets the previous version instead of aborting — the case where basic
// TIMESTAMP would abort.
func TestLateReaderSeesOldVersion(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Older reader: draws its timestamp first, reads late.
			var v uint64
			err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				tx.P.Sync(stats.Useful, 50_000) // younger writer commits meanwhile
				var err error
				v, err = f.ReadVal(tx, 0)
				return err
			}})
			if err != nil {
				t.Errorf("older reader aborted: %v (MVCC must serve the old version)", err)
			}
			if v != 0 {
				t.Errorf("older reader saw %d, want the pre-write value 0", v)
			}
			return
		}
		p.Tick(stats.Useful, 5_000) // younger writer
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 42)
		}}); err != nil {
			t.Errorf("writer aborted: %v", err)
		}
	})
}

// TestYoungReaderWaitsForPending: a reader whose visible version is a
// pending write waits for resolution (the T/O WAIT component).
func TestYoungReaderWaitsForPending(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if err := f.Bump(tx, 0, 7); err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 40_000) // pending version outstanding
				return nil
			}}); err != nil {
				t.Errorf("writer aborted: %v", err)
			}
			return
		}
		p.Tick(stats.Useful, 10_000) // younger than the pending write
		var v uint64
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			var err error
			v, err = f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("reader aborted: %v", err)
			return
		}
		if v != 7 {
			t.Errorf("reader saw %d, want 7", v)
		}
		if p.Stats().Get(stats.Wait) == 0 {
			t.Error("reader billed no WAIT time despite a pending version")
		}
	})
}

// TestWriteUnderReadAborts: writing at a timestamp older than the visible
// version's read timestamp must abort (MVTO write rule).
func TestWriteUnderReadAborts(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var late error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			late = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				tx.P.Sync(stats.Useful, 50_000) // a younger txn reads meanwhile
				return f.Bump(tx, 0, 1)
			}})
			return
		}
		p.Tick(stats.Useful, 5_000)
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			_, err := f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("reader aborted: %v", err)
		}
	})
	if late != core.ErrAbort {
		t.Fatalf("late write got %v, want ErrAbort", late)
	}
}

// TestAbortUnlinksPendingVersion: an aborted writer leaves no version.
func TestAbortUnlinksPendingVersion(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 0, 5); err != nil {
				return err
			}
			return core.ErrUserAbort
		}})
		// A later reader must see the original value.
		var v uint64
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			var err error
			v, err = f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("reader aborted: %v", err)
		}
		if v != 0 {
			t.Errorf("aborted write visible: %d", v)
		}
	})
	got := f.Table.Schema.GetU64(scheme.LatestCommitted(f.Table, 0), 1)
	if got != 0 {
		t.Fatalf("latest committed = %d, want 0", got)
	}
}

// TestVersionChainAccumulatesAndServes: successive writers build a chain;
// each commit is visible to subsequent readers via LatestCommitted.
func TestVersionChainAccumulatesAndServes(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		for i := 0; i < 20; i++ {
			if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				return f.Bump(tx, 0, 1)
			}}); err != nil {
				t.Fatalf("bump %d failed: %v", i, err)
			}
		}
	})
	got := f.Table.Schema.GetU64(scheme.LatestCommitted(f.Table, 0), 1)
	if got != 20 {
		t.Fatalf("latest committed = %d, want 20 (chain pruning lost writes?)", got)
	}
}

// TestReadOwnPendingWrite: within one transaction, reads observe the
// transaction's own pending version.
func TestReadOwnPendingWrite(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := mvcc.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 4, 11); err != nil {
				return err
			}
			v, err := f.ReadVal(tx, 4)
			if err != nil {
				return err
			}
			if v != 11 {
				t.Errorf("own pending write invisible: %d", v)
			}
			// Second write to the same tuple updates in place.
			if err := f.Bump(tx, 4, 1); err != nil {
				return err
			}
			v, err = f.ReadVal(tx, 4)
			if v != 12 || err != nil {
				t.Errorf("second write lost: %d, %v", v, err)
			}
			return nil
		}})
		if err != nil {
			t.Errorf("txn failed: %v", err)
		}
	})
}
