// Package occ implements optimistic concurrency control (OCC in the paper,
// §2.2): transactions track read/write sets, buffer all writes in a
// private workspace, and validate at commit. Following the paper's design
// — "our algorithm is similar to Hekaton in that we parallelize the
// validation phase" (§4.3 "Distributed Validation") — there is no global
// critical section: validation uses per-tuple latches and version words
// only.
//
// Per-tuple metadata is a version word (wts<<1 | lockbit) published
// through a runtime counter, plus a latch that serializes writers during
// the install phase. The paper charges OCC two timestamp allocations per
// transaction (start and validation; §5.1: "OCC hits the bottleneck even
// earlier since it needs to allocate timestamps twice per transaction"),
// and so do we.
//
// Commit protocol (deadlock-free):
//  1. latch the write set in canonical (table, slot) order, marking each
//     version word locked;
//  2. validate the read set: each observed version word must be unchanged
//     and unlocked (or locked by this transaction);
//  3. allocate the commit timestamp, install buffered writes, publish new
//     version words, release latches.
package occ

import (
	"slices"

	"abyss1000/internal/core"
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/storage"
	"abyss1000/internal/tsalloc"
)

// entry is per-tuple metadata: the writer latch and the version word.
type entry struct {
	latch rt.Latch
	word  rt.Counter // wts<<1 | lockbit
}

// readRec records one read-set element.
type readRec struct {
	t    *storage.Table
	slot int
	word uint64 // version word observed at read time
	buf  []byte // private copy (repeatable reads without locks)
}

// writeRec is one buffered write.
type writeRec struct {
	t    *storage.Table
	slot int
	buf  []byte
}

// txnState is the reusable per-worker transaction state.
type txnState struct {
	reads  []readRec
	writes []writeRec
}

// OCC is the optimistic scheme.
type OCC struct {
	method tsalloc.Method
	db     *core.DB
	alloc  tsalloc.Allocator
	meta   [][]entry

	// centralWanted selects the ablation mode; central is the latch,
	// created at Setup. When set, the whole validation phase serializes
	// through one critical section — the original Kung-Robinson
	// structure the paper contrasts with its parallelized validation
	// ("any mutex-protected critical section severely hurts
	// scalability", §4.3). Used by the validation ablation benchmark.
	centralWanted bool
	central       rt.Latch
}

// New creates an OCC scheme with parallel per-tuple validation (the
// paper's Hekaton-style design), drawing timestamps via method m.
func New(m tsalloc.Method) *OCC { return &OCC{method: m} }

// NewCentral creates the ablation baseline: identical OCC except commits
// serialize through a single global validation critical section, as in
// the original algorithm.
func NewCentral(m tsalloc.Method) *OCC { return &OCC{method: m, centralWanted: true} }

// Name implements core.Scheme.
func (s *OCC) Name() string {
	if s.centralWanted {
		return "OCC_CENTRAL"
	}
	return "OCC"
}

// Setup implements core.Scheme.
func (s *OCC) Setup(db *core.DB) {
	s.db = db
	s.alloc = tsalloc.New(s.method, db.RT)
	if s.centralWanted {
		s.central = db.RT.NewLatch(0x0CC_CE117A1)
	}
	tables := db.Catalog.Tables()
	s.meta = make([][]entry, len(tables))
	for _, t := range tables {
		entries := make([]entry, t.Capacity())
		for i := range entries {
			key := uint64(t.ID)<<44 | 0x0C<<36 | uint64(i)
			entries[i].latch = db.RT.NewLatch(key)
			entries[i].word = db.RT.NewCounter(key | 1<<35)
		}
		s.meta[t.ID] = entries
	}
}

// NewTxnState implements core.Scheme.
func (s *OCC) NewTxnState(w *core.Worker) interface{} { return &txnState{} }

// Begin implements core.Scheme: OCC allocates its first timestamp at
// transaction start.
func (s *OCC) Begin(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
	tx.TS = s.alloc.Next(tx.P)
	tx.P.Tick(stats.Manager, costs.ManagerOp)
}

func (s *OCC) entryOf(t *storage.Table, slot int) *entry {
	return &s.meta[t.ID][slot]
}

// sortWrites orders the write set by canonical (table, slot), the global
// latch-acquisition order that makes the install phase deadlock-free.
// slices.SortFunc is generic — no interface boxing, no reflection, no
// allocation — unlike sort.Slice, which would allocate on every commit.
func sortWrites(w []writeRec) {
	slices.SortFunc(w, func(a, b writeRec) int {
		if a.t.ID != b.t.ID {
			return a.t.ID - b.t.ID
		}
		return a.slot - b.slot
	})
}

func (st *txnState) findWrite(t *storage.Table, slot int) *writeRec {
	for i := range st.writes {
		if st.writes[i].t == t && st.writes[i].slot == slot {
			return &st.writes[i]
		}
	}
	return nil
}

func (st *txnState) findRead(t *storage.Table, slot int) *readRec {
	for i := range st.reads {
		if st.reads[i].t == t && st.reads[i].slot == slot {
			return &st.reads[i]
		}
	}
	return nil
}

// snapshot copies (t, slot) into a private buffer under the tuple latch
// and records the version word observed.
func (s *OCC) snapshot(tx *core.TxnCtx, t *storage.Table, slot int) readRec {
	e := s.entryOf(t, slot)
	n := t.Schema.RowSize()
	buf := tx.Alloc.Alloc(tx.P, stats.Manager, n)
	e.latch.Acquire(tx.P, stats.Manager)
	word := e.word.Load(tx.P, stats.Manager)
	// History capture: the latch orders this sample against any
	// committer's version bump; if the version later changes, validation
	// fails and the captured read dies with the aborted transaction.
	tx.CaptureRead(t, slot)
	tx.P.MemRead(stats.Useful, t.MemKey(slot), uint64(n))
	copy(buf, t.Row(slot))
	tx.P.Tick(stats.Manager, costs.CopyCost(uint64(n)))
	e.latch.Release(tx.P, stats.Manager)
	return readRec{t: t, slot: slot, word: word, buf: buf}
}

// Read implements core.Scheme: copy into the private workspace, record the
// read set entry. Never blocks, never aborts — conflicts surface at
// validation.
func (s *OCC) Read(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	if w := st.findWrite(t, slot); w != nil {
		return w.buf, nil
	}
	if r := st.findRead(t, slot); r != nil {
		return r.buf, nil
	}
	rec := s.snapshot(tx, t, slot)
	st.reads = append(st.reads, rec)
	return rec.buf, nil
}

// WriteRow implements core.Scheme: return the private workspace buffer
// for the caller to mutate. The implicit read (callers may RMW the
// returned image) joins the read set so validation catches conflicts.
func (s *OCC) WriteRow(tx *core.TxnCtx, t *storage.Table, slot int) ([]byte, error) {
	st := tx.State.(*txnState)
	if w := st.findWrite(t, slot); w != nil {
		tx.P.Tick(stats.Useful, costs.CopyCost(uint64(len(w.buf))))
		return w.buf, nil
	}
	var buf []byte
	if r := st.findRead(t, slot); r != nil {
		buf = r.buf // promote: the read copy becomes the write buffer
	} else {
		rec := s.snapshot(tx, t, slot)
		st.reads = append(st.reads, rec)
		buf = rec.buf
	}
	st.writes = append(st.writes, writeRec{t: t, slot: slot, buf: buf})
	return buf, nil
}

// Commit implements core.Scheme: parallel per-tuple validation (or, in
// the OCC_CENTRAL ablation, the same protocol inside one global critical
// section).
func (s *OCC) Commit(tx *core.TxnCtx) error {
	st := tx.State.(*txnState)
	if len(st.writes) == 0 && len(st.reads) == 0 {
		return nil
	}
	if s.central != nil {
		s.central.Acquire(tx.P, stats.Manager)
		defer s.central.Release(tx.P, stats.Manager)
	}

	// Phase 1: lock the write set in canonical order.
	sortWrites(st.writes)
	for i := range st.writes {
		w := &st.writes[i]
		e := s.entryOf(w.t, w.slot)
		e.latch.Acquire(tx.P, stats.Manager)
		word := e.word.Load(tx.P, stats.Manager)
		e.word.Store(tx.P, stats.Manager, word|1)
	}

	// Phase 2: validate the read set against current version words.
	ok := true
	for i := range st.reads {
		r := &st.reads[i]
		e := s.entryOf(r.t, r.slot)
		cur := e.word.Load(tx.P, stats.Manager)
		if st.findWrite(r.t, r.slot) != nil {
			// We hold this tuple's latch; valid iff unchanged since
			// our read (modulo our own lock bit).
			if cur != r.word|1 {
				ok = false
				break
			}
			continue
		}
		if cur != r.word {
			ok = false
			break
		}
	}

	if !ok {
		// Unlock and fail; Abort discards the workspace.
		for i := range st.writes {
			w := &st.writes[i]
			e := s.entryOf(w.t, w.slot)
			word := e.word.Load(tx.P, stats.Abort)
			e.word.Store(tx.P, stats.Abort, word&^1)
			e.latch.Release(tx.P, stats.Abort)
		}
		return core.ErrAbort
	}

	// Commit point: validation succeeded and the write set is still
	// latched, so the log sees commits in validation order.
	tx.LogCommit()

	// Phase 3: the second timestamp allocation (the paper charges OCC
	// two per transaction), then install.
	commitTS := s.alloc.Next(tx.P)
	for i := range st.writes {
		w := &st.writes[i]
		e := s.entryOf(w.t, w.slot)
		copy(w.t.Row(w.slot), w.buf)
		tx.P.MemWrite(stats.Useful, w.t.MemKey(w.slot), uint64(len(w.buf)))
		e.word.Store(tx.P, stats.Manager, commitTS<<1)
		e.latch.Release(tx.P, stats.Manager)
	}
	return nil
}

// Abort implements core.Scheme: the workspace is private; nothing to undo.
func (s *OCC) Abort(tx *core.TxnCtx) {
	st := tx.State.(*txnState)
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
	tx.P.Tick(stats.Abort, costs.ManagerOp)
}

// InitTuple implements core.Scheme: version word zero (wts 0, unlocked) is
// already correct for fresh tuples.
func (s *OCC) InitTuple(tx *core.TxnCtx, t *storage.Table, slot int) {}

var _ core.Scheme = (*OCC)(nil)
