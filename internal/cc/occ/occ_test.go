package occ_test

import (
	"testing"

	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/tsalloc"
)

// TestReadsNeverBlockOrAbort: during the read phase OCC takes no locks;
// a transaction overlapping a writer executes to validation.
func TestValidationCatchesStaleRead(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	var victim error
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			// Read slot 0, dawdle, then validate after a writer
			// changed it: validation must fail.
			victim = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				if _, err := f.ReadVal(tx, 0); err != nil {
					return err
				}
				if err := f.Bump(tx, 1, 1); err != nil { // needs a write set to validate against
					return err
				}
				tx.P.Sync(stats.Useful, 50_000)
				return nil
			}})
			return
		}
		p.Tick(stats.Useful, 10_000)
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 1)
		}}); err != nil {
			t.Errorf("interfering writer aborted: %v", err)
		}
	})
	if victim != core.ErrAbort {
		t.Fatalf("stale read survived validation: %v", victim)
	}
	if f.Get(1) != 0 {
		t.Fatalf("aborted txn's write leaked: slot 1 = %d", f.Get(1))
	}
}

// TestNonConflictingCommitBothLand: disjoint write sets validate
// independently (parallel validation, no global critical section).
func TestNonConflictingCommitBothLand(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	errs := make([]error, 2)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		slot := p.ID()
		errs[p.ID()] = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, slot, 3); err != nil {
				return err
			}
			tx.P.Sync(stats.Useful, 10_000) // overlap the two transactions
			return nil
		}})
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d aborted on a disjoint write set: %v", i, err)
		}
	}
	if f.Get(0) != 3 || f.Get(1) != 3 {
		t.Fatalf("slots = %d/%d, want 3/3", f.Get(0), f.Get(1))
	}
}

// TestWriteWriteConflictOneWins: two RMWs of the same tuple overlap; the
// loser aborts in validation, and no update is lost.
func TestWriteWriteConflictOneWins(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	errs := make([]error, 2)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		errs[p.ID()] = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 0, 1); err != nil {
				return err
			}
			tx.P.Sync(stats.Useful, 10_000) // force overlap
			return nil
		}})
	})
	commits := 0
	for _, err := range errs {
		if err == nil {
			commits++
		} else if err != core.ErrAbort {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if commits != 1 {
		t.Fatalf("%d commits, want exactly 1 (overlapping RMW)", commits)
	}
	if f.Get(0) != 1 {
		t.Fatalf("slot 0 = %d, want 1", f.Get(0))
	}
}

// TestTwoTimestampAllocations: the paper charges OCC two allocations per
// transaction (start + validation); verify with a counting allocator via
// timestamp values.
func TestTwoTimestampAllocations(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		var ts1, ts2 uint64
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			ts1 = tx.TS
			return f.Bump(tx, 0, 1)
		}})
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			ts2 = tx.TS
			return nil // read-only-ish: no write set, no second allocation
		}})
		// Between the two begins, the committing txn drew a commit
		// timestamp, so the second begin's TS is ts1+2, not ts1+1.
		if ts2 != ts1+2 {
			t.Errorf("ts sequence %d -> %d, want +2 (begin + validation)", ts1, ts2)
		}
	})
}

// TestReadOnlyCommitsWithoutValidationLocks: an empty write set commits
// trivially.
func TestReadOnlyCommits(t *testing.T) {
	f := cctest.NewFixture(1, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			_, err := f.ReadVal(tx, 0)
			return err
		}}); err != nil {
			t.Errorf("read-only txn aborted: %v", err)
		}
	})
}

// TestRepeatableReadsFromWorkspace: re-reading a tuple returns the
// private copy even if a concurrent writer committed in between (the
// repeatable-read guarantee the copies buy; validation then rejects).
func TestRepeatableReadsFromWorkspace(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := occ.New(tsalloc.Atomic)
	scheme.Setup(f.DB)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		if p.ID() == 0 {
			_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
				v1, err := f.ReadVal(tx, 0)
				if err != nil {
					return err
				}
				tx.P.Sync(stats.Useful, 30_000) // writer commits here
				v2, err := f.ReadVal(tx, 0)
				if err != nil {
					return err
				}
				if v1 != v2 {
					t.Errorf("non-repeatable read: %d then %d", v1, v2)
				}
				return nil
			}})
			return
		}
		p.Tick(stats.Useful, 10_000)
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			return f.Bump(tx, 0, 99)
		}})
	})
}

// TestCentralVariantCorrect: OCC_CENTRAL must be functionally identical,
// only slower — run the conflict test through it.
func TestCentralVariantCorrect(t *testing.T) {
	f := cctest.NewFixture(2, 8, 1)
	scheme := occ.NewCentral(tsalloc.Atomic)
	if scheme.Name() != "OCC_CENTRAL" {
		t.Fatalf("name = %q", scheme.Name())
	}
	scheme.Setup(f.DB)
	errs := make([]error, 2)
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		errs[p.ID()] = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if err := f.Bump(tx, 0, 1); err != nil {
				return err
			}
			tx.P.Sync(stats.Useful, 10_000)
			return nil
		}})
	})
	commits := 0
	for _, err := range errs {
		if err == nil {
			commits++
		}
	}
	if commits != 1 || f.Get(0) != 1 {
		t.Fatalf("central variant: %d commits, slot=%d", commits, f.Get(0))
	}
}
