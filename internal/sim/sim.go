// Package sim implements the many-core machine simulator that substitutes
// for Graphite (§3.1 of the paper). It executes up to 1024 logical cores as
// cooperatively scheduled goroutines over a deterministic discrete-event
// engine: exactly one core's goroutine runs at any moment, and the engine
// always resumes the runnable core with the smallest (cycle, id) pair, so
// every access to shared DBMS state happens in simulated-time order.
//
// Consequences of this design:
//
//   - No Go-level data races: the DBMS's shared structures are mutated by
//     one goroutine at a time, always between ordering points.
//   - Determinism: given a seed, a run produces bit-identical results —
//     Go's garbage collector and scheduler cannot perturb simulated time,
//     which is exactly the distortion the reproduction banding warned about.
//   - Faithful contention: latches and atomic counters serialize through
//     mesh.Line occupancy windows, reproducing the coherence bottlenecks
//     (timestamp allocation, mutex convoys, lock thrashing) that drive the
//     paper's results.
//
// The engine's hot path is allocation-free. Pending resumptions live in an
// intrusive indexed heap (eventQueue) whose minimum is always live, so an
// ordering point where the running core still owns the smallest (cycle, id)
// pair — the common case — costs one comparison against the queue head
// instead of a push + park + resume round trip through the Go scheduler.
// Scheduling order is identical to the naive push-then-pop engine: the fast
// path fires exactly when popping would have returned the pushing core.
package sim

import (
	"fmt"
	"math/rand"

	"abyss1000/internal/mesh"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// wakeLatencyBase is the fixed cost, beyond mesh traversal, of delivering a
// wakeup (an inter-processor interrupt / monitor write on the target line).
const wakeLatencyBase = mesh.LineOpCycles

// Engine is the discrete-event scheduler for one simulated chip.
type Engine struct {
	chip  *mesh.Chip
	procs []*Proc
	queue eventQueue
	seed  int64

	doneCount int
	doneCh    chan struct{}
	started   bool
	stalled   bool
}

// New creates an engine simulating n cores with the given RNG seed.
func New(n int, seed int64) *Engine {
	e := &Engine{
		chip:   mesh.NewChip(n),
		doneCh: make(chan struct{}),
		seed:   seed,
	}
	e.queue.h = make([]*Proc, 0, n)
	e.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		e.procs[i] = &Proc{
			id:      i,
			eng:     e,
			heapIdx: -1,
			resume:  make(chan struct{}, 1),
			rng:     rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9)),
		}
	}
	return e
}

// Chip exposes the simulated chip's topology (for allocators that need
// tile distances, e.g. clock-based timestamp allocation costs).
func (e *Engine) Chip() *mesh.Chip { return e.chip }

// NumProcs implements rt.Runtime.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Frequency implements rt.Runtime: the target runs at 1 GHz.
func (e *Engine) Frequency() float64 { return mesh.Frequency }

// Proc returns simulated core i (useful in tests).
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// schedule pops the next pending event and prepares its proc for
// resumption, returning nil when every proc has finished or when the
// simulation has globally stalled (live procs exist but none is scheduled —
// a protocol bug such as a lost wakeup or an undetected deadlock; Run
// panics in that case, on its caller's goroutine).
func (e *Engine) schedule() *Proc {
	if e.queue.len() > 0 {
		p := e.queue.popMin()
		p.resumeAt = p.eventAt
		return p
	}
	if e.doneCount != len(e.procs) {
		e.stalled = true
	}
	return nil
}

// handoff transfers the baton from p to the next scheduled proc. p must
// have already scheduled its own next event if it expects to run again.
func (e *Engine) handoff(p *Proc) {
	next := e.schedule()
	if next == p {
		p.now = p.resumeAt
		return
	}
	if next != nil {
		next.resume <- struct{}{}
	} else {
		close(e.doneCh)
		if e.stalled {
			// The simulation is wedged; this goroutine represents a
			// proc parked forever. Run's caller will panic with the
			// diagnostic. Block here (the test/process is aborting).
			select {}
		}
	}
	if p.done {
		return
	}
	<-p.resume
	p.now = p.resumeAt
}

// Run implements rt.Runtime: it executes body on every simulated core and
// returns when all cores have finished. Run may be called once per Engine.
func (e *Engine) Run(body func(p rt.Proc)) {
	if e.started {
		panic("sim: Engine.Run called twice")
	}
	e.started = true
	for _, p := range e.procs {
		e.queue.schedule(p, p.now)
	}
	for _, p := range e.procs {
		p := p
		go func() {
			<-p.resume
			p.now = p.resumeAt
			body(p)
			p.done = true
			e.queue.remove(p) // drop any leftover deadline entry
			e.doneCount++
			e.handoff(p)
		}()
	}
	// Kick off the first core from the caller's goroutine, then wait.
	first := e.schedule()
	if first == nil {
		close(e.doneCh)
	} else {
		first.resume <- struct{}{}
	}
	<-e.doneCh
	if e.stalled {
		panic(fmt.Sprintf("sim: global stall: %d/%d procs finished, remainder parked forever (lost wakeup or undetected deadlock)", e.doneCount, len(e.procs)))
	}
}

// Proc is one simulated core. It implements rt.Proc.
type Proc struct {
	id  int
	eng *Engine
	now uint64
	rng *rand.Rand
	bd  stats.Breakdown

	// pend batches cycles billed by Tick/Sync/Park so the per-cycle path
	// touches one flat array instead of Breakdown's attempt bookkeeping.
	// It is flushed into bd by Stats(), which is how all attempt
	// transitions (Begin/Commit/AbortAttempt) and breakdown reads reach
	// the Breakdown — so every flushed cycle lands under the same
	// in-attempt state it was billed under, and totals are bit-identical
	// to unbatched accounting.
	pend [stats.NumComponents]uint64

	resume   chan struct{}
	resumeAt uint64

	// eventAt/heapIdx are the proc's intrusive slot in the engine's
	// eventQueue; heapIdx is -1 while the proc has no pending event.
	eventAt uint64
	heapIdx int32
	done    bool

	// Parking state (permit semantics, see rt.Proc).
	parked      bool
	parkedAt    uint64
	permit      bool
	wakePending bool
}

var _ rt.Proc = (*Proc)(nil)

// ID implements rt.Proc.
func (p *Proc) ID() int { return p.id }

// Now implements rt.Proc.
func (p *Proc) Now() uint64 { return p.now }

// Rand implements rt.Proc.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Stats implements rt.Proc. It flushes the batched cycle accounting first,
// so callers always observe (and mutate attempt state against) an
// up-to-date Breakdown.
func (p *Proc) Stats() *stats.Breakdown {
	p.bd.AddPending(&p.pend)
	return &p.bd
}

// Tick implements rt.Proc: advance the local clock without yielding. Use
// for core-local work (application logic, private-buffer copies).
func (p *Proc) Tick(c stats.Component, cycles uint64) {
	p.now += cycles
	p.pend[c] += cycles
}

// Sync implements rt.Proc: advance the clock and yield so that the engine
// can run any core whose clock is behind ours. Code performing an access to
// shared simulation state calls Sync first; the access then occurs in
// global simulated-time order.
//
// Fast path: if the queue's live minimum is after (p.now, p.id), no other
// core could legally run before p, so pushing p and immediately popping it
// back would be a no-op — Sync returns without touching the queue. This is
// exact, not heuristic: the eventQueue holds no stale entries, so the
// comparison against its head decides precisely what the push-then-pop
// engine would have decided.
func (p *Proc) Sync(c stats.Component, cycles uint64) {
	p.now += cycles
	p.pend[c] += cycles
	e := p.eng
	if e.queue.len() == 0 {
		return
	}
	if m := e.queue.min(); m.eventAt > p.now || (m.eventAt == p.now && m.id > p.id) {
		return
	}
	e.queue.schedule(p, p.now)
	e.handoff(p)
}

// MemRead implements rt.Proc: a NUCA L2 access to the slice homing key,
// plus pipeline cycles proportional to the bytes moved.
func (p *Proc) MemRead(c stats.Component, key uint64, bytes uint64) {
	home := p.eng.chip.HomeTile(key)
	p.Tick(c, p.eng.chip.L2Access(p.id, home)+bytes/16)
}

// MemWrite implements rt.Proc. Writes pay the same NUCA traversal (the line
// must be fetched for ownership) plus the store bandwidth.
func (p *Proc) MemWrite(c stats.Component, key uint64, bytes uint64) {
	home := p.eng.chip.HomeTile(key)
	p.Tick(c, p.eng.chip.L2Access(p.id, home)+bytes/8)
}

// Park implements rt.Proc.
func (p *Proc) Park(c stats.Component) {
	if p.permit {
		p.permit = false
		p.Tick(c, mesh.L1Cycles)
		return
	}
	p.parked = true
	p.parkedAt = p.now
	p.wakePending = false
	p.eng.queue.remove(p) // no deadline: only an Unpark may reschedule us
	p.eng.handoff(p)
	// Resumed by an Unpark: resumeAt was set by schedule().
	p.parked = false
	p.wakePending = false
	p.pend[c] += p.now - p.parkedAt
}

// ParkTimeout implements rt.Proc.
func (p *Proc) ParkTimeout(c stats.Component, cycles uint64) bool {
	if p.permit {
		p.permit = false
		p.Tick(c, mesh.L1Cycles)
		return true
	}
	p.parked = true
	p.parkedAt = p.now
	p.wakePending = false
	p.eng.queue.schedule(p, p.now+cycles) // deadline entry
	p.eng.handoff(p)
	woken := p.wakePending
	p.parked = false
	p.wakePending = false
	p.pend[c] += p.now - p.parkedAt
	return woken
}

// Unpark implements rt.Runtime's wakeup on behalf of waker. If target is
// parked it is scheduled at max(parkedAt, waker.Now()+delivery); otherwise a
// permit is left for target's next Park. A pending ParkTimeout deadline is
// superseded in place (decrease- or increase-key) rather than shadowed by a
// second entry.
func (e *Engine) Unpark(waker rt.Proc, target rt.Proc) {
	t := target.(*Proc)
	if !t.parked {
		t.permit = true
		return
	}
	if t.wakePending {
		return // a wake is already in flight; permits are binary
	}
	var wakeAt uint64
	if waker != nil {
		w := waker.(*Proc)
		lat := uint64(wakeLatencyBase + mesh.HopCycles*e.chip.Hops(w.id, t.id))
		wakeAt = w.now + lat
	}
	if wakeAt < t.parkedAt {
		wakeAt = t.parkedAt
	}
	t.wakePending = true
	e.queue.schedule(t, wakeAt)
}

// latch is the simulated rt.Latch: a test-and-set word on a shared cache
// line with a FIFO waiter queue. Contended acquisition parks the caller;
// release hands the latch directly to the head waiter (no thundering herd).
type latch struct {
	eng     *Engine
	line    *mesh.Line
	holder  *Proc
	waiters []*Proc
}

// NewLatch implements rt.Runtime.
func (e *Engine) NewLatch(key uint64) rt.Latch {
	return &latch{eng: e, line: mesh.NewLine(e.chip, key)}
}

// Acquire implements rt.Latch.
func (l *latch) Acquire(p rt.Proc, c stats.Component) {
	sp := p.(*Proc)
	sp.Sync(c, 0) // ordering point: run any core whose clock is behind
	done := l.line.Exclusive(sp.id, sp.now)
	sp.Tick(c, done-sp.now)
	if l.holder == nil {
		l.holder = sp
		return
	}
	if l.holder == sp {
		panic("sim: latch is not reentrant")
	}
	l.waiters = append(l.waiters, sp)
	sp.Park(c)
	// The releaser made us the holder before unparking us.
}

// Release implements rt.Latch.
func (l *latch) Release(p rt.Proc, c stats.Component) {
	sp := p.(*Proc)
	if l.holder != sp {
		panic("sim: latch released by non-holder")
	}
	done := l.line.Exclusive(sp.id, sp.now)
	sp.Tick(c, done-sp.now)
	if len(l.waiters) == 0 {
		l.holder = nil
		return
	}
	next := l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	l.holder = next
	l.eng.Unpark(sp, next)
}

// counter is the simulated rt.Counter: an atomic fetch-add word on a shared
// cache line. Every Add pays the coherence transfer from the previous owner
// tile and serializes through the line's occupancy window — with 1024 cores
// the cross-chip round trip caps throughput near 10M ops/s at 1 GHz,
// reproducing the paper's Fig. 6 arithmetic.
type counter struct {
	line  *mesh.Line
	value uint64
}

// NewCounter implements rt.Runtime.
func (e *Engine) NewCounter(key uint64) rt.Counter {
	return &counter{line: mesh.NewLine(e.chip, key)}
}

// Add implements rt.Counter.
func (c *counter) Add(p rt.Proc, comp stats.Component, delta uint64) uint64 {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.line.Exclusive(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	c.value += delta
	return c.value
}

// Load implements rt.Counter.
func (c *counter) Load(p rt.Proc, comp stats.Component) uint64 {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.line.Read(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	return c.value
}

// Store implements rt.Counter.
func (c *counter) Store(p rt.Proc, comp stats.Component, v uint64) {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.line.Exclusive(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	c.value = v
}

// hwCounter is the paper's proposed hardware fetch-add unit at the chip
// center (§4.3): requests travel the mesh, are serviced in one cycle, and
// return. No cache line ping-pongs, so throughput reaches ~1 ts/cycle.
type hwCounter struct {
	svc   *mesh.CenterService
	value uint64
}

// NewHardwareCounter implements rt.Runtime.
func (e *Engine) NewHardwareCounter(key uint64) rt.Counter {
	return &hwCounter{svc: mesh.NewCenterService(e.chip)}
}

// Add implements rt.Counter.
func (c *hwCounter) Add(p rt.Proc, comp stats.Component, delta uint64) uint64 {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.svc.Request(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	c.value += delta
	return c.value
}

// Load implements rt.Counter.
func (c *hwCounter) Load(p rt.Proc, comp stats.Component) uint64 {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.svc.Request(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	return c.value
}

// Store implements rt.Counter.
func (c *hwCounter) Store(p rt.Proc, comp stats.Component, v uint64) {
	sp := p.(*Proc)
	sp.Sync(comp, 0)
	done := c.svc.Request(sp.id, sp.now)
	sp.Tick(comp, done-sp.now)
	c.value = v
}

var _ rt.Runtime = (*Engine)(nil)
