package sim

// eventQueue is the engine's pending-resumption queue: an intrusive indexed
// min-heap of procs ordered by (eventAt, id). It replaces the original lazy-
// deletion heap of boxed event structs, which accumulated stale entries
// (every superseding push left a dead one behind) and paid an interface{}
// allocation per push.
//
// Each proc appears at most once; its heap position is stored on the proc
// itself (heapIdx, -1 when absent), so superseding a pending event is an
// in-place decrease/increase-key and removal is O(log n) with no tombstones.
// The invariant that makes the engine's peek-ahead fast path sound: h[0] is
// always the live global minimum — there is never a stale entry ahead of it.
type eventQueue struct {
	h []*Proc
}

func (q *eventQueue) len() int { return len(q.h) }

// min returns the proc with the smallest (eventAt, id) without removing it.
// The queue must be non-empty.
func (q *eventQueue) min() *Proc { return q.h[0] }

// eventLess orders pending events by (eventAt, id), the engine's global
// resumption order.
func eventLess(a, b *Proc) bool {
	if a.eventAt != b.eventAt {
		return a.eventAt < b.eventAt
	}
	return a.id < b.id
}

// schedule inserts p's resumption at time at, or — if p already has a
// pending event — moves it in place (decrease- or increase-key).
func (q *eventQueue) schedule(p *Proc, at uint64) {
	if i := int(p.heapIdx); i >= 0 {
		up := at < p.eventAt
		p.eventAt = at
		if up {
			q.siftUp(i)
		} else {
			q.siftDown(i)
		}
		return
	}
	p.eventAt = at
	p.heapIdx = int32(len(q.h))
	q.h = append(q.h, p)
	q.siftUp(len(q.h) - 1)
}

// remove deletes p's pending event if it has one.
func (q *eventQueue) remove(p *Proc) {
	i := int(p.heapIdx)
	if i < 0 {
		return
	}
	n := len(q.h) - 1
	last := q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	p.heapIdx = -1
	if i == n {
		return
	}
	q.h[i] = last
	last.heapIdx = int32(i)
	if !q.siftDown(i) {
		q.siftUp(i)
	}
}

// popMin removes and returns the proc with the smallest (eventAt, id). The
// queue must be non-empty.
func (q *eventQueue) popMin() *Proc {
	p := q.h[0]
	q.remove(p)
	return p
}

func (q *eventQueue) siftUp(i int) {
	p := q.h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(p, q.h[parent]) {
			break
		}
		q.h[i] = q.h[parent]
		q.h[i].heapIdx = int32(i)
		i = parent
	}
	q.h[i] = p
	p.heapIdx = int32(i)
}

// siftDown restores heap order below i, reporting whether anything moved.
func (q *eventQueue) siftDown(i int) bool {
	p := q.h[i]
	n := len(q.h)
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(q.h[r], q.h[child]) {
			child = r
		}
		if !eventLess(q.h[child], p) {
			break
		}
		q.h[i] = q.h[child]
		q.h[i].heapIdx = int32(i)
		i = child
	}
	q.h[i] = p
	p.heapIdx = int32(i)
	return i != start
}
