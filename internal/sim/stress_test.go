package sim

import (
	"testing"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// TestParkUnparkStress randomly interleaves Tick, Sync, Park, ParkTimeout
// and Unpark across many cores to hunt lost-wakeup and queue-corruption
// bugs in the indexed event queue: a proc left parked with no pending event
// and no waker trips the engine's global-stall panic, a corrupted heap
// breaks the monotonic-clock invariant, and a superseded deadline that
// fires anyway breaks the ParkTimeout postconditions checked below.
//
// One dedicated waker core never parks; it sweeps Unpark over every other
// core until all of them have finished, so plain (deadline-less) Park is
// always eventually woken and the test cannot stall by construction — any
// stall that does happen is an engine bug.
func TestParkUnparkStress(t *testing.T) {
	const (
		cores = 24
		iters = 400
	)
	run := func(seed int64) []uint64 {
		e := New(cores, seed)
		finished := 0
		ends := make([]uint64, cores)
		e.Run(func(p rt.Proc) {
			if p.ID() == 0 {
				// Waker: sweep wakeups until every sleeper is done.
				for finished < cores-1 {
					p.Tick(stats.Useful, uint64(p.Rand().Intn(40)+1))
					for i := 1; i < cores; i++ {
						if p.Rand().Intn(3) == 0 {
							e.Unpark(p, e.Proc(i))
						}
					}
					p.Sync(stats.Useful, 0)
				}
				ends[0] = p.Now()
				return
			}
			prev := p.Now()
			for k := 0; k < iters; k++ {
				switch p.Rand().Intn(5) {
				case 0:
					p.Tick(stats.Useful, uint64(p.Rand().Intn(30)))
				case 1:
					p.Sync(stats.Manager, uint64(p.Rand().Intn(30)))
				case 2:
					// Wake a random sibling (or leave it a permit).
					e.Unpark(p, e.Proc(1+p.Rand().Intn(cores-1)))
				case 3:
					timeout := uint64(p.Rand().Intn(200) + 1)
					before := p.Now()
					woken := p.ParkTimeout(stats.Wait, timeout)
					if !woken && p.Now() != before+timeout {
						t.Errorf("proc %d: timed-out ParkTimeout resumed at %d, want exactly %d", p.ID(), p.Now(), before+timeout)
					}
					if woken && p.Now() < before {
						t.Errorf("proc %d: woken before it parked", p.ID())
					}
				case 4:
					before := p.Now()
					p.Park(stats.Wait)
					if p.Now() < before {
						t.Errorf("proc %d: Park resumed in the past", p.ID())
					}
				}
				if p.Now() < prev {
					t.Errorf("proc %d: clock went backwards %d -> %d", p.ID(), prev, p.Now())
				}
				prev = p.Now()
			}
			finished++
			ends[p.ID()] = p.Now()
		})
		return ends
	}

	for seed := int64(1); seed <= 5; seed++ {
		a := run(seed)
		b := run(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d nondeterministic: proc %d ended at %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// TestUnparkSupersedesDeadlineInPlace pins the in-place key-update path: a
// waker whose delivery time lands after the sleeper's deadline must still
// win (the wake supersedes the deadline entry, increase-key), and one that
// lands before it must shorten the sleep (decrease-key).
func TestUnparkSupersedesDeadlineInPlace(t *testing.T) {
	// Decrease-key: wake arrives well before the deadline.
	e := New(2, 1)
	e.Run(func(p rt.Proc) {
		if p.ID() == 0 {
			woken := p.ParkTimeout(stats.Wait, 100_000)
			if !woken {
				t.Error("early wake reported as timeout")
			}
			if p.Now() >= 100_000 {
				t.Errorf("woken at %d, after the deadline", p.Now())
			}
		} else {
			p.Tick(stats.Useful, 500)
			p.Sync(stats.Useful, 0)
			e.Unpark(p, e.Proc(0))
		}
	})

	// Increase-key: the waker's clock is already past the deadline when it
	// delivers the wake, so the sleeper resumes late but woken.
	e2 := New(2, 1)
	e2.Run(func(p rt.Proc) {
		if p.ID() == 0 {
			before := p.Now()
			woken := p.ParkTimeout(stats.Wait, 300)
			if !woken {
				t.Error("superseding wake reported as timeout")
			}
			if p.Now() < before+300 {
				t.Errorf("woken at %d, before the superseded deadline %d", p.Now(), before+300)
			}
		} else {
			// Run past proc 0's deadline without an ordering point, then
			// wake it: the wake must replace the stale deadline entry.
			p.Tick(stats.Useful, 10_000)
			e2.Unpark(p, e2.Proc(0))
			p.Sync(stats.Useful, 0)
		}
	})
}
