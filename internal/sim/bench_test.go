package sim

import (
	"testing"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// The engine-bound benchmarks below exercise the discrete-event scheduler's
// hot paths in isolation from any DBMS logic: ordering points that stay on
// the running core (the Sync fast path), ordering points that hand off to
// another core, contended latch convoys (Park/Unpark traffic), and contended
// atomic counters (line-occupancy serialization). BENCH_sim.json at the repo
// root records their before/after trajectory.

const benchOpsPerProc = 2_000

// BenchmarkSyncOrderingPoint measures the common case the fast path targets:
// the running proc issues an ordering point while every other core's next
// event is still in the future, so the engine should resume it immediately.
func BenchmarkSyncOrderingPoint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(64, 1)
		e.Run(func(p rt.Proc) {
			// Stagger the cores far apart so each core's burst of
			// ordering points finds every other event in the future.
			p.Tick(stats.Useful, uint64(p.ID())*1_000_000)
			for k := 0; k < benchOpsPerProc; k++ {
				p.Sync(stats.Useful, 0)
			}
		})
	}
	b.ReportMetric(float64(64*benchOpsPerProc*b.N)/b.Elapsed().Seconds(), "syncs/s")
}

// BenchmarkSyncHandoff measures interleaved cores whose clocks advance in
// lockstep, forcing a real baton transfer on nearly every ordering point.
func BenchmarkSyncHandoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(64, 1)
		e.Run(func(p rt.Proc) {
			for k := 0; k < benchOpsPerProc; k++ {
				p.Sync(stats.Useful, 10)
			}
		})
	}
	b.ReportMetric(float64(64*benchOpsPerProc*b.N)/b.Elapsed().Seconds(), "syncs/s")
}

// BenchmarkTick measures core-local clock advancement and stats accounting,
// which must stay off the event queue entirely.
func BenchmarkTick(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(16, 1)
		e.Run(func(p rt.Proc) {
			for k := 0; k < 50*benchOpsPerProc; k++ {
				p.Tick(stats.Useful, 3)
			}
		})
	}
	b.ReportMetric(float64(16*50*benchOpsPerProc*b.N)/b.Elapsed().Seconds(), "ticks/s")
}

// BenchmarkLatchContended measures a convoy: every core loops acquiring one
// latch, holding it across a yield, and releasing it, so nearly every
// acquisition parks and every release unparks.
func BenchmarkLatchContended(b *testing.B) {
	b.ReportAllocs()
	const cores, ops = 32, 200
	for i := 0; i < b.N; i++ {
		e := New(cores, 1)
		l := e.NewLatch(1)
		e.Run(func(p rt.Proc) {
			for k := 0; k < ops; k++ {
				l.Acquire(p, stats.Manager)
				p.Sync(stats.Useful, 20)
				l.Release(p, stats.Manager)
			}
		})
	}
	b.ReportMetric(float64(cores*ops*b.N)/b.Elapsed().Seconds(), "acquires/s")
}

// BenchmarkCounterContended measures the Fig. 6 primitive: every core
// hammers one atomic counter, serializing through the line's occupancy
// window at every add.
func BenchmarkCounterContended(b *testing.B) {
	b.ReportAllocs()
	const cores, ops = 64, 300
	for i := 0; i < b.N; i++ {
		e := New(cores, 1)
		c := e.NewCounter(2)
		e.Run(func(p rt.Proc) {
			for k := 0; k < ops; k++ {
				c.Add(p, stats.TsAlloc, 1)
			}
		})
	}
	b.ReportMetric(float64(cores*ops*b.N)/b.Elapsed().Seconds(), "adds/s")
}

// BenchmarkParkTimeoutChurn measures deadline-entry churn: cores repeatedly
// park with a timeout and are woken early by a neighbor, so every cycle both
// inserts a deadline event and supersedes it with a wake.
func BenchmarkParkTimeoutChurn(b *testing.B) {
	b.ReportAllocs()
	const cores, ops = 32, 200
	for i := 0; i < b.N; i++ {
		e := New(cores, 1)
		e.Run(func(p rt.Proc) {
			next := e.Proc((p.ID() + 1) % cores)
			for k := 0; k < ops; k++ {
				e.Unpark(p, next)
				p.ParkTimeout(stats.Wait, 50)
				p.Tick(stats.Useful, 5)
			}
		})
	}
	b.ReportMetric(float64(cores*ops*b.N)/b.Elapsed().Seconds(), "parks/s")
}
