package sim

import (
	"testing"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

func TestRunAllProcsExecute(t *testing.T) {
	e := New(8, 1)
	ran := make([]bool, 8)
	e.Run(func(p rt.Proc) {
		ran[p.ID()] = true
	})
	for i, r := range ran {
		if !r {
			t.Fatalf("proc %d did not run", i)
		}
	}
}

func TestTickAdvancesClockAndBills(t *testing.T) {
	e := New(1, 1)
	e.Run(func(p rt.Proc) {
		p.Tick(stats.Useful, 100)
		p.Tick(stats.Index, 50)
		if p.Now() != 150 {
			t.Errorf("now = %d, want 150", p.Now())
		}
	})
	bd := e.Proc(0).Stats()
	if bd.Get(stats.Useful) != 100 || bd.Get(stats.Index) != 50 {
		t.Fatalf("breakdown = %d/%d, want 100/50", bd.Get(stats.Useful), bd.Get(stats.Index))
	}
}

// TestSyncOrdersAccesses verifies the core simulation invariant: shared
// accesses preceded by Sync happen in simulated-time order across cores.
func TestSyncOrdersAccesses(t *testing.T) {
	e := New(4, 1)
	var order []int
	e.Run(func(p rt.Proc) {
		// Core i works for (4-i)*100 cycles, then appends. Expected
		// append order is by completion time: core 3 first.
		p.Tick(stats.Useful, uint64(4-p.ID())*100)
		p.Sync(stats.Useful, 0)
		order = append(order, p.ID())
	})
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSyncTieBreakByID(t *testing.T) {
	e := New(4, 1)
	var order []int
	e.Run(func(p rt.Proc) {
		p.Tick(stats.Useful, 100) // all tie at t=100
		p.Sync(stats.Useful, 0)
		order = append(order, p.ID())
	})
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want ascending ids", order)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(2, 1)
	var woke bool
	e.Run(func(p rt.Proc) {
		if p.ID() == 0 {
			p.Park(stats.Wait)
			woke = true
			if p.Now() < 1000 {
				t.Errorf("woken at %d, want >= 1000 (waker's clock)", p.Now())
			}
		} else {
			p.Tick(stats.Useful, 1000)
			p.Sync(stats.Useful, 0)
			e.Unpark(p, e.Proc(0))
		}
	})
	if !woke {
		t.Fatal("proc 0 never woke")
	}
	if e.Proc(0).Stats().Get(stats.Wait) == 0 {
		t.Fatal("wait time not billed")
	}
}

func TestUnparkBeforeParkLeavesPermit(t *testing.T) {
	e := New(2, 1)
	e.Run(func(p rt.Proc) {
		if p.ID() == 1 {
			// Runs first at t=0 tie-broken... id 0 runs first; ensure
			// permit order: proc 1 unparks proc 0 before it parks.
			e.Unpark(p, e.Proc(0))
			return
		}
		// Give proc 1 a chance to run first.
		p.Tick(stats.Useful, 500)
		p.Sync(stats.Useful, 0)
		p.Park(stats.Wait) // must consume the pending permit immediately
		if p.Now() > 600 {
			t.Errorf("park blocked despite pending permit (now=%d)", p.Now())
		}
	})
}

func TestParkTimeoutExpires(t *testing.T) {
	e := New(1, 1)
	e.Run(func(p rt.Proc) {
		woken := p.ParkTimeout(stats.Wait, 250)
		if woken {
			t.Error("ParkTimeout reported wakeup with no waker")
		}
		if p.Now() != 250 {
			t.Errorf("resumed at %d, want 250", p.Now())
		}
	})
}

func TestParkTimeoutWokenEarly(t *testing.T) {
	e := New(2, 1)
	e.Run(func(p rt.Proc) {
		if p.ID() == 0 {
			woken := p.ParkTimeout(stats.Wait, 1_000_000)
			if !woken {
				t.Error("expected wakeup before timeout")
			}
			if p.Now() >= 1_000_000 {
				t.Errorf("resumed at %d, after the timeout", p.Now())
			}
		} else {
			p.Tick(stats.Useful, 100)
			p.Sync(stats.Useful, 0)
			e.Unpark(p, e.Proc(0))
		}
	})
}

func TestLatchMutualExclusionAndFIFO(t *testing.T) {
	e := New(8, 1)
	l := e.NewLatch(1)
	depth := 0
	var grants []int
	e.Run(func(p rt.Proc) {
		p.Tick(stats.Useful, uint64(p.ID())) // stagger arrival
		l.Acquire(p, stats.Manager)
		depth++
		if depth != 1 {
			t.Errorf("latch held by %d procs simultaneously", depth)
		}
		grants = append(grants, p.ID())
		p.Sync(stats.Useful, 100) // hold across a yield
		depth--
		l.Release(p, stats.Manager)
	})
	if len(grants) != 8 {
		t.Fatalf("grants = %v", grants)
	}
	for i := range grants {
		if grants[i] != i {
			t.Fatalf("grant order %v not FIFO by arrival", grants)
		}
	}
}

func TestCounterAtomicity(t *testing.T) {
	e := New(16, 1)
	c := e.NewCounter(2)
	seen := make(map[uint64]bool)
	e.Run(func(p rt.Proc) {
		for i := 0; i < 10; i++ {
			v := c.Add(p, stats.TsAlloc, 1)
			if seen[v] {
				t.Errorf("duplicate counter value %d", v)
			}
			seen[v] = true
		}
	})
	if len(seen) != 160 {
		t.Fatalf("got %d unique values, want 160", len(seen))
	}
	if got := c.(*counter).value; got != 160 {
		t.Fatalf("final counter value = %d, want 160", got)
	}
}

// TestCounterSerializationThroughput verifies the coherence model: N cores
// hammering one atomic counter complete in time ~N*transfer, not ~N*1.
func TestCounterSerializationThroughput(t *testing.T) {
	const n, ops = 64, 50
	e := New(n, 1)
	c := e.NewCounter(3)
	var maxEnd uint64
	e.Run(func(p rt.Proc) {
		for i := 0; i < ops; i++ {
			c.Add(p, stats.TsAlloc, 1)
		}
		if p.Now() > maxEnd {
			maxEnd = p.Now()
		}
	})
	total := uint64(n * ops)
	// Average cost per op must reflect line transfers (>= a few cycles),
	// not local L1 hits.
	if avg := maxEnd / total; avg < 4 {
		t.Fatalf("avg cycles per contended atomic = %d, too cheap: line serialization not modeled", avg)
	}
}

func TestHardwareCounterFasterThanAtomicUnderContention(t *testing.T) {
	const n, ops = 256, 20
	run := func(mk func(e *Engine) rt.Counter) uint64 {
		e := New(n, 1)
		c := mk(e)
		var maxEnd uint64
		e.Run(func(p rt.Proc) {
			for i := 0; i < ops; i++ {
				c.Add(p, stats.TsAlloc, 1)
			}
			if p.Now() > maxEnd {
				maxEnd = p.Now()
			}
		})
		return maxEnd
	}
	atomicEnd := run(func(e *Engine) rt.Counter { return e.NewCounter(4) })
	hwEnd := run(func(e *Engine) rt.Counter { return e.NewHardwareCounter(5) })
	if hwEnd >= atomicEnd {
		t.Fatalf("hardware counter (%d cycles) not faster than atomic (%d cycles) at %d cores", hwEnd, atomicEnd, n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New(32, 42)
		c := e.NewCounter(6)
		l := e.NewLatch(7)
		ends := make([]uint64, 32)
		e.Run(func(p rt.Proc) {
			for i := 0; i < 20; i++ {
				p.Tick(stats.Useful, uint64(p.Rand().Intn(50)))
				c.Add(p, stats.TsAlloc, 1)
				l.Acquire(p, stats.Manager)
				p.Sync(stats.Useful, 10)
				l.Release(p, stats.Manager)
			}
			ends[p.ID()] = p.Now()
		})
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: proc %d ended at %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGlobalStallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on global stall")
		}
	}()
	e := New(2, 1)
	e.Run(func(p rt.Proc) {
		p.Park(stats.Wait) // both park forever: lost-wakeup bug
	})
}

func TestMemAccessCosts(t *testing.T) {
	e := New(64, 1)
	e.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		t0 := p.Now()
		p.MemRead(stats.Useful, 12345, 100)
		small := p.Now() - t0
		t0 = p.Now()
		p.MemRead(stats.Useful, 12345, 100000)
		big := p.Now() - t0
		if big <= small {
			t.Errorf("large read (%d cycles) not more expensive than small (%d)", big, small)
		}
	})
}

func TestRunTwicePanics(t *testing.T) {
	e := New(1, 1)
	e.Run(func(p rt.Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	e.Run(func(p rt.Proc) {})
}

func TestClockMonotonic(t *testing.T) {
	e := New(16, 7)
	e.Run(func(p rt.Proc) {
		prev := p.Now()
		for i := 0; i < 100; i++ {
			switch p.Rand().Intn(3) {
			case 0:
				p.Tick(stats.Useful, uint64(p.Rand().Intn(20)))
			case 1:
				p.Sync(stats.Manager, uint64(p.Rand().Intn(20)))
			case 2:
				p.ParkTimeout(stats.Wait, uint64(p.Rand().Intn(100)+1))
			}
			if p.Now() < prev {
				t.Errorf("clock went backwards: %d -> %d", prev, p.Now())
			}
			prev = p.Now()
		}
	})
}
