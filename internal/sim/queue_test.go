package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// checkHeap verifies the heap-order invariant and the intrusive index
// bookkeeping after every mutation.
func checkHeap(t *testing.T, q *eventQueue) {
	t.Helper()
	for i, p := range q.h {
		if int(p.heapIdx) != i {
			t.Fatalf("proc %d at slot %d has heapIdx %d", p.id, i, p.heapIdx)
		}
		if parent := (i - 1) / 2; i > 0 && eventLess(p, q.h[parent]) {
			t.Fatalf("heap order violated at slot %d (proc %d under proc %d)", i, p.id, q.h[parent].id)
		}
	}
}

// TestEventQueueAgainstModel drives the indexed heap with random schedule /
// reschedule / remove / popMin traffic and cross-checks every observation
// against a naive model (a map popped by linear scan).
func TestEventQueueAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const procs = 33
	ps := make([]*Proc, procs)
	for i := range ps {
		ps[i] = &Proc{id: i, heapIdx: -1}
	}
	var q eventQueue
	model := map[int]uint64{} // proc id -> eventAt

	modelMin := func() int {
		best := -1
		for id, at := range model {
			if best < 0 || at < model[best] || (at == model[best] && id < best) {
				best = id
			}
		}
		return best
	}

	for step := 0; step < 20_000; step++ {
		p := ps[rng.Intn(procs)]
		switch rng.Intn(4) {
		case 0, 1: // schedule or reschedule at a random time
			at := uint64(rng.Intn(1000))
			q.schedule(p, at)
			model[p.id] = at
		case 2:
			q.remove(p)
			delete(model, p.id)
		case 3:
			if q.len() == 0 {
				if len(model) != 0 {
					t.Fatalf("step %d: queue empty but model has %d entries", step, len(model))
				}
				continue
			}
			want := modelMin()
			got := q.popMin()
			if got.id != want || got.eventAt != model[want] {
				t.Fatalf("step %d: popMin = proc %d @%d, model wants proc %d @%d",
					step, got.id, got.eventAt, want, model[want])
			}
			if got.heapIdx != -1 {
				t.Fatalf("step %d: popped proc %d still has heapIdx %d", step, got.id, got.heapIdx)
			}
			delete(model, want)
		}
		if q.len() != len(model) {
			t.Fatalf("step %d: queue len %d, model len %d", step, q.len(), len(model))
		}
		checkHeap(t, &q)
	}

	// Drain: the queue must yield every remaining entry in (at, id) order.
	type ent struct {
		id int
		at uint64
	}
	var want []ent
	for id, at := range model {
		want = append(want, ent{id, at})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].id < want[j].id
	})
	for _, w := range want {
		got := q.popMin()
		if got.id != w.id || got.eventAt != w.at {
			t.Fatalf("drain: got proc %d @%d, want proc %d @%d", got.id, got.eventAt, w.id, w.at)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain: %d left", q.len())
	}
}

// TestEventQueueMinIsLive pins the property the Sync fast path relies on:
// after any mix of supersessions and removals there are no stale entries,
// so min() is the true live minimum.
func TestEventQueueMinIsLive(t *testing.T) {
	a := &Proc{id: 0, heapIdx: -1}
	b := &Proc{id: 1, heapIdx: -1}
	var q eventQueue
	q.schedule(a, 100)
	q.schedule(b, 200)
	if q.min() != a {
		t.Fatal("min should be a@100")
	}
	q.schedule(a, 300) // supersede in place: increase-key
	if q.min() != b || q.len() != 2 {
		t.Fatalf("after increase-key, min = proc %d (len %d), want b@200", q.min().id, q.len())
	}
	q.schedule(b, 400) // increase past a
	if q.min() != a || a.eventAt != 300 {
		t.Fatal("after second increase-key, min should be a@300")
	}
	q.schedule(b, 50) // decrease-key below everything
	if q.min() != b {
		t.Fatal("after decrease-key, min should be b@50")
	}
	q.remove(b)
	if q.min() != a || q.len() != 1 {
		t.Fatal("after remove, min should be a@300")
	}
	q.remove(b) // removing an absent proc is a no-op
	if q.len() != 1 {
		t.Fatal("double remove changed the queue")
	}
}
