package history

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
)

// PairObservation is a committed reader's view of one counter pair.
type PairObservation struct {
	Pair uint64
	A, B uint64
}

// PairWorkload is the atomicity/isolation test: writers increment both
// halves of a pair in one transaction; readers read both halves. In any
// serializable execution a committed reader sees A == B.
type PairWorkload struct {
	db    *core.DB
	table *storage.Table
	pairs int

	txns []pairTxn

	// Observations[w] holds worker w's committed reader observations.
	Observations [][]PairObservation
}

// NewPairWorkload builds the workload over `pairs` counter pairs.
func NewPairWorkload(db *core.DB, pairs int) *PairWorkload {
	w := &PairWorkload{
		db:    db,
		table: buildCounterTable(db, "PAIRS", pairs*2),
		pairs: pairs,
	}
	np := db.RT.NumProcs()
	w.txns = make([]pairTxn, np)
	w.Observations = make([][]PairObservation, np)
	for i := range w.txns {
		w.txns[i] = pairTxn{wl: w}
	}
	return w
}

type pairTxn struct {
	wl     *PairWorkload
	worker int
	pair   int
	isRead bool
	obs    PairObservation
	parts  []int
}

// Next implements core.Workload.
func (w *PairWorkload) Next(p rt.Proc) core.Txn {
	t := &w.txns[p.ID()]
	t.worker = p.ID()
	t.pair = p.Rand().Intn(w.pairs)
	t.isRead = p.Rand().Intn(2) == 0
	t.parts = partitionsOf(t.parts[:0], []int{t.pair * 2, t.pair*2 + 1}, w.db.NParts)
	return t
}

// Committed implements core.CommitHook: a committed reader's final-attempt
// observation is a committed read.
func (t *pairTxn) Committed() {
	if t.isRead {
		t.wl.Observations[t.worker] = append(t.wl.Observations[t.worker], t.obs)
	}
}

// Run implements core.Txn.
func (t *pairTxn) Run(tx *core.TxnCtx) error {
	sc := t.wl.table.Schema
	a, b := t.pair*2, t.pair*2+1
	if t.isRead {
		ra, err := tx.Read(t.wl.table, a)
		if err != nil {
			return err
		}
		va := sc.GetU64(ra, 1)
		rb, err := tx.Read(t.wl.table, b)
		if err != nil {
			return err
		}
		vb := sc.GetU64(rb, 1)
		t.obs = PairObservation{Pair: uint64(t.pair), A: va, B: vb}
		return nil
	}
	for _, slot := range [2]int{a, b} {
		row, err := tx.UpdateRow(t.wl.table, slot)
		if err != nil {
			return err
		}
		sc.PutU64(row, 1, sc.GetU64(row, 1)+1)
	}
	return nil
}

// Partitions implements core.Txn.
func (t *pairTxn) Partitions() []int { return t.parts }

var _ core.Workload = (*PairWorkload)(nil)
var _ core.Txn = (*pairTxn)(nil)
var _ core.CommitHook = (*pairTxn)(nil)
