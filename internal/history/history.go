// Package history provides correctness-verification workloads for the
// concurrency-control schemes. Unlike the performance workloads (YCSB,
// TPC-C) these are instrumented: transactions record what they observed,
// and after the run checkers verify the committed history was
// serializable-consistent:
//
//   - CounterWorkload: increment transactions (read-modify-write on K
//     random counters). At quiescence each counter must equal the number
//     of committed increments — the classic lost-update test.
//   - PairWorkload: writers atomically increment pairs (a, b); readers
//     observe both. Any serializable execution keeps a == b, so a
//     committed read of unequal values proves a dirty/fractured read.
//   - RegisterWorkload: every write stores a globally unique value and
//     transactions log (timestamp, reads, writes). For timestamp-ordered
//     schemes (TIMESTAMP, MVCC) the serialization order IS timestamp
//     order, so replaying the committed log by timestamp and checking
//     every read saw the latest earlier write is an exact equivalence
//     check.
//
// A committed observation is known to be committed because the engine
// retries each transaction until it commits; a transaction's observation
// is flushed to the log when its worker requests the next transaction
// (the final attempt is the committed one).
package history

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
)

// buildCounterTable makes one table of n 8-byte counters plus a primary
// index mapping key i -> slot i.
func buildCounterTable(db *core.DB, name string, n int) *storage.Table {
	schema := storage.NewSchema(name,
		storage.Col{Name: "KEY", Width: 8},
		storage.Col{Name: "VAL", Width: 8},
	)
	t := db.Catalog.Add(schema, n, n, db.RT.NumProcs())
	idx := db.AddIndex(name+"_PK", t, n)
	for i := 0; i < n; i++ {
		row := t.LoadRow(i)
		schema.PutU64(row, 0, uint64(i))
		idx.LoadInsert(uint64(i), i)
	}
	return t
}

// CounterWorkload is the lost-update test workload.
type CounterWorkload struct {
	db    *core.DB
	table *storage.Table
	n     int
	perTx int

	txns []counterTxn

	// Tally[w][k] counts worker w's committed increments of key k.
	Tally [][]uint64
}

// NewCounterWorkload builds the workload over n counters with perTx
// increments per transaction.
func NewCounterWorkload(db *core.DB, n, perTx int) *CounterWorkload {
	w := &CounterWorkload{
		db:    db,
		table: buildCounterTable(db, "COUNTERS", n),
		n:     n,
		perTx: perTx,
	}
	np := db.RT.NumProcs()
	w.txns = make([]counterTxn, np)
	w.Tally = make([][]uint64, np)
	for i := range w.txns {
		w.txns[i] = counterTxn{wl: w, keys: make([]int, 0, perTx)}
		w.Tally[i] = make([]uint64, n)
	}
	return w
}

type counterTxn struct {
	wl     *CounterWorkload
	worker int
	keys   []int
	parts  []int
}

// Next implements core.Workload.
func (w *CounterWorkload) Next(p rt.Proc) core.Txn {
	t := &w.txns[p.ID()]
	t.worker = p.ID()
	t.keys = t.keys[:0]
	for len(t.keys) < w.perTx {
		k := p.Rand().Intn(w.n)
		dup := false
		for _, e := range t.keys {
			if e == k {
				dup = true
				break
			}
		}
		if !dup {
			t.keys = append(t.keys, k)
		}
	}
	t.parts = partitionsOf(t.parts[:0], t.keys, w.db.NParts)
	return t
}

// partitionsOf computes the sorted distinct partitions (slot mod nparts)
// the given slots touch, reusing dst.
func partitionsOf(dst []int, slots []int, nparts int) []int {
	for _, s := range slots {
		p := s % nparts
		dup := false
		for _, e := range dst {
			if e == p {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p)
		}
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// Committed implements core.CommitHook: tally the committed increments.
func (t *counterTxn) Committed() {
	for _, k := range t.keys {
		t.wl.Tally[t.worker][k]++
	}
}

// Run implements core.Txn: increment each chosen counter.
func (t *counterTxn) Run(tx *core.TxnCtx) error {
	sc := t.wl.table.Schema
	for _, k := range t.keys {
		row, err := tx.UpdateRow(t.wl.table, k)
		if err != nil {
			return err
		}
		sc.PutU64(row, 1, sc.GetU64(row, 1)+1)
	}
	return nil
}

// Partitions implements core.Txn (counters partition by slot mod NParts).
func (t *counterTxn) Partitions() []int { return t.parts }

// ExpectedTotals sums the per-worker committed-increment tallies: the
// exact values every counter must hold at quiescence.
func (w *CounterWorkload) ExpectedTotals() []uint64 {
	totals := make([]uint64, w.n)
	for _, t := range w.Tally {
		for k, c := range t {
			totals[k] += c
		}
	}
	return totals
}

// Table returns the counter table.
func (w *CounterWorkload) Table() *storage.Table { return w.table }

var _ core.Workload = (*CounterWorkload)(nil)
var _ core.Txn = (*counterTxn)(nil)
var _ core.CommitHook = (*counterTxn)(nil)
