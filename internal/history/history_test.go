package history_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/history"
	"abyss1000/internal/native"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
)

// schemeList returns every scheme under test. HStore participates because
// the verification transactions declare their partition sets.
func schemeList() []struct {
	name string
	mk   func() core.Scheme
} {
	return []struct {
		name string
		mk   func() core.Scheme
	}{
		{"DL_DETECT", func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) }},
		{"NO_WAIT", func() core.Scheme { return twopl.New(twopl.NoWait, twopl.Options{}) }},
		{"WAIT_DIE", func() core.Scheme { return twopl.New(twopl.WaitDie, twopl.Options{}) }},
		{"TIMESTAMP", func() core.Scheme { return to.New(tsalloc.Atomic) }},
		{"MVCC", func() core.Scheme { return mvcc.New(tsalloc.Atomic) }},
		{"OCC", func() core.Scheme { return occ.New(tsalloc.Atomic) }},
		{"HSTORE", func() core.Scheme { return hstore.New(tsalloc.Atomic) }},
	}
}

// finalValue reads the quiescent committed value of a counter, looking
// through MVCC's version chains when needed.
func finalValue(scheme core.Scheme, w *history.CounterWorkload, slot int) uint64 {
	t := w.Table()
	if m, ok := scheme.(*mvcc.MVCC); ok {
		return t.Schema.GetU64(m.LatestCommitted(t, slot), 1)
	}
	return t.Schema.GetU64(t.Row(slot), 1)
}

// TestNoLostUpdatesSim runs the increment workload on a small hot table
// (heavy conflict) and checks every committed increment is present and no
// uncommitted one is: the classic lost-update/dirty-write battery.
func TestNoLostUpdatesSim(t *testing.T) {
	for _, s := range schemeList() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			eng := sim.New(8, 23)
			db := core.NewDB(eng)
			wl := history.NewCounterWorkload(db, 32, 4) // 32 counters: hot
			scheme := s.mk()
			res := core.Run(db, scheme, wl,
				core.Config{WarmupCycles: 0, MeasureCycles: 500_000, AbortBackoff: 300})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			want := wl.ExpectedTotals()
			for k := range want {
				got := finalValue(scheme, wl, k)
				if got != want[k] {
					t.Fatalf("%s: counter %d = %d, want %d (lost or phantom update)",
						s.name, k, got, want[k])
				}
			}
		})
	}
}

// TestNoLostUpdatesNative repeats the lost-update battery on the native
// runtime, where real goroutines race through the same scheme code.
func TestNoLostUpdatesNative(t *testing.T) {
	for _, s := range schemeList() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			rtm := native.New(8, 23)
			db := core.NewDB(rtm)
			wl := history.NewCounterWorkload(db, 32, 4)
			scheme := s.mk()
			res := core.Run(db, scheme, wl,
				core.Config{WarmupCycles: 0, MeasureCycles: 30_000_000, AbortBackoff: 300}) // 30 ms
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			want := wl.ExpectedTotals()
			for k := range want {
				got := finalValue(scheme, wl, k)
				if got != want[k] {
					t.Fatalf("%s: counter %d = %d, want %d (lost or phantom update)",
						s.name, k, got, want[k])
				}
			}
		})
	}
}

// TestPairAtomicity checks committed readers never observe a fractured
// pair (dirty or non-repeatable read).
func TestPairAtomicity(t *testing.T) {
	for _, s := range schemeList() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			eng := sim.New(8, 29)
			db := core.NewDB(eng)
			wl := history.NewPairWorkload(db, 16)
			res := core.Run(db, s.mk(), wl,
				core.Config{WarmupCycles: 0, MeasureCycles: 500_000, AbortBackoff: 300})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			checked := 0
			for wkr := range wl.Observations {
				for _, obs := range wl.Observations[wkr] {
					checked++
					if obs.A != obs.B {
						t.Fatalf("%s: committed reader saw fractured pair %d: a=%d b=%d",
							s.name, obs.Pair, obs.A, obs.B)
					}
				}
			}
			if checked == 0 {
				t.Fatal("no committed reader observations; test vacuous")
			}
		})
	}
}

// TestTimestampOrderEquivalence replays committed register histories in
// timestamp order for the T/O schemes whose serialization order is the
// timestamp order, verifying every committed read exactly.
func TestTimestampOrderEquivalence(t *testing.T) {
	for _, s := range schemeList() {
		if s.name != "TIMESTAMP" && s.name != "MVCC" {
			continue
		}
		s := s
		t.Run(s.name, func(t *testing.T) {
			eng := sim.New(8, 31)
			db := core.NewDB(eng)
			wl := history.NewRegisterWorkload(db, 24, 4)
			res := core.Run(db, s.mk(), wl,
				core.Config{WarmupCycles: 0, MeasureCycles: 600_000, AbortBackoff: 300})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			if wl.CommittedCount() == 0 {
				t.Fatal("no committed logs; test vacuous")
			}
			if err := wl.CheckTimestampOrder(); err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
		})
	}
}

var _ = rt.Proc(nil)
