package history

import (
	"fmt"
	"sort"

	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
)

// RegisterOp is one observed operation in a committed transaction.
type RegisterOp struct {
	Key   int
	Value uint64 // value read, or unique value written
	Write bool
}

// RegisterTxnLog is one committed transaction's trace.
type RegisterTxnLog struct {
	TS  uint64
	Ops []RegisterOp
}

// RegisterWorkload writes globally unique values and logs every committed
// transaction's reads and writes together with its timestamp. For
// timestamp-ordered schemes the committed history must be view-equivalent
// to executing the logged transactions serially in timestamp order —
// CheckTimestampOrder verifies exactly that.
type RegisterWorkload struct {
	db    *core.DB
	table *storage.Table
	n     int
	perTx int

	txns []registerTxn

	// Logs[w] holds worker w's committed transaction traces.
	Logs [][]RegisterTxnLog
}

// NewRegisterWorkload builds the workload over n registers with perTx
// operations per transaction (roughly half reads, half writes).
func NewRegisterWorkload(db *core.DB, n, perTx int) *RegisterWorkload {
	w := &RegisterWorkload{
		db:    db,
		table: buildCounterTable(db, "REGISTERS", n),
		n:     n,
		perTx: perTx,
	}
	np := db.RT.NumProcs()
	w.txns = make([]registerTxn, np)
	w.Logs = make([][]RegisterTxnLog, np)
	for i := range w.txns {
		w.txns[i] = registerTxn{wl: w, worker: i}
	}
	return w
}

type registerTxn struct {
	wl     *RegisterWorkload
	worker int
	keys   []int
	writes []bool
	parts  []int
	uniq   uint64 // per-worker unique value counter
	log    RegisterTxnLog
}

// Next implements core.Workload.
func (w *RegisterWorkload) Next(p rt.Proc) core.Txn {
	t := &w.txns[p.ID()]
	t.keys = t.keys[:0]
	t.writes = t.writes[:0]
	for len(t.keys) < w.perTx {
		k := p.Rand().Intn(w.n)
		dup := false
		for _, e := range t.keys {
			if e == k {
				dup = true
				break
			}
		}
		if !dup {
			t.keys = append(t.keys, k)
			t.writes = append(t.writes, p.Rand().Intn(2) == 0)
		}
	}
	t.parts = partitionsOf(t.parts[:0], t.keys, w.db.NParts)
	return t
}

// Committed implements core.CommitHook: snapshot the final (committed)
// attempt's trace.
func (t *registerTxn) Committed() {
	ops := make([]RegisterOp, len(t.log.Ops))
	copy(ops, t.log.Ops)
	t.wl.Logs[t.worker] = append(t.wl.Logs[t.worker], RegisterTxnLog{TS: t.log.TS, Ops: ops})
}

// uniqueValue packs (worker, counter) into a value no other write produces.
func (t *registerTxn) uniqueValue() uint64 {
	t.uniq++
	return uint64(t.worker+1)<<40 | t.uniq
}

// Run implements core.Txn.
func (t *registerTxn) Run(tx *core.TxnCtx) error {
	sc := t.wl.table.Schema
	t.log.Ops = t.log.Ops[:0]
	for i, k := range t.keys {
		if t.writes[i] {
			v := t.uniqueValue()
			row, err := tx.UpdateRow(t.wl.table, k)
			if err != nil {
				return err
			}
			sc.PutU64(row, 1, v)
			t.log.Ops = append(t.log.Ops, RegisterOp{Key: k, Value: v, Write: true})
		} else {
			row, err := tx.Read(t.wl.table, k)
			if err != nil {
				return err
			}
			t.log.Ops = append(t.log.Ops, RegisterOp{Key: k, Value: sc.GetU64(row, 1)})
		}
	}
	t.log.TS = tx.TS
	return nil
}

// Partitions implements core.Txn (registers partition by slot mod
// NParts, like the other history workloads).
func (t *registerTxn) Partitions() []int { return t.parts }

// CheckTimestampOrder replays all committed logs serially in timestamp
// order and verifies every read observed exactly the value the serial
// execution produces. It returns an error describing the first anomaly.
// Valid only for schemes whose serialization order is the timestamp order
// (TIMESTAMP, MVCC).
func (w *RegisterWorkload) CheckTimestampOrder() error {
	var all []RegisterTxnLog
	for _, logs := range w.Logs {
		all = append(all, logs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })

	state := make([]uint64, w.n) // registers start at 0
	for _, txn := range all {
		for _, op := range txn.Ops {
			if op.Write {
				state[op.Key] = op.Value
				continue
			}
			if state[op.Key] != op.Value {
				return fmt.Errorf(
					"history: txn ts=%d read key %d = %#x, but serial replay has %#x",
					txn.TS, op.Key, op.Value, state[op.Key])
			}
		}
	}
	return nil
}

// CommittedCount returns the number of logged committed transactions.
func (w *RegisterWorkload) CommittedCount() int {
	total := 0
	for _, logs := range w.Logs {
		total += len(logs)
	}
	return total
}

var _ core.Workload = (*RegisterWorkload)(nil)
var _ core.Txn = (*registerTxn)(nil)
var _ core.CommitHook = (*registerTxn)(nil)
