// Package waitgraph implements DL_DETECT's decentralized waits-for graph
// (§4.2 "Deadlock Detection"). As in the paper's optimized design, the
// graph is partitioned across cores: each worker updates only its own edge
// list ("its thread updates its queue with the transactions that it is
// waiting for"), and cycle detection reads other workers' lists to build a
// partial graph. Because one transaction runs per worker at a time, a node
// is (worker, txn-sequence); stale edges are recognized by sequence
// mismatch, which also gives the paper's guarantee that a deadlock missed
// in one pass is found on a subsequent pass.
//
// Per-worker latches make the structure safe on the native runtime; under
// simulation they also charge the cross-core communication a detection
// pass performs.
package waitgraph

import (
	"abyss1000/internal/costs"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Edge identifies the transaction a worker waits for: the target worker
// and that worker's transaction sequence number at observation time.
type Edge struct {
	Worker int
	Seq    uint64
}

// slot is one worker's partition of the graph.
type slot struct {
	latch rt.Latch
	seq   uint64 // current transaction sequence of this worker
	edges []Edge // transactions this worker's current txn waits for
}

// Graph is the partitioned waits-for graph.
type Graph struct {
	slots []slot

	// scratch per worker for cycle search (visited stamps), sized once.
	visited [][]uint64
	stamp   []uint64
	buf     [][]Edge
}

// New creates a graph for r's workers.
func New(r rt.Runtime) *Graph {
	n := r.NumProcs()
	g := &Graph{
		slots:   make([]slot, n),
		visited: make([][]uint64, n),
		stamp:   make([]uint64, n),
		buf:     make([][]Edge, n),
	}
	for i := range g.slots {
		g.slots[i].latch = r.NewLatch(0xD1<<40 | uint64(i))
		g.visited[i] = make([]uint64, n)
	}
	return g
}

// BeginTxn advances worker p's transaction sequence (invalidating edges
// that point at its previous transaction) and returns the new sequence.
func (g *Graph) BeginTxn(p rt.Proc) uint64 {
	s := &g.slots[p.ID()]
	s.latch.Acquire(p, stats.Manager)
	s.seq++
	seq := s.seq
	s.edges = s.edges[:0]
	s.latch.Release(p, stats.Manager)
	return seq
}

// SetEdges publishes the set of transactions worker p currently waits for.
func (g *Graph) SetEdges(p rt.Proc, edges []Edge) {
	s := &g.slots[p.ID()]
	s.latch.Acquire(p, stats.Manager)
	s.edges = append(s.edges[:0], edges...)
	s.latch.Release(p, stats.Manager)
}

// ClearEdges removes worker p's outgoing edges (it stopped waiting).
func (g *Graph) ClearEdges(p rt.Proc) {
	s := &g.slots[p.ID()]
	s.latch.Acquire(p, stats.Manager)
	s.edges = s.edges[:0]
	s.latch.Release(p, stats.Manager)
}

// readEdges snapshots worker w's live edges and sequence.
func (g *Graph) readEdges(p rt.Proc, w int, into []Edge) ([]Edge, uint64) {
	s := &g.slots[w]
	s.latch.Acquire(p, stats.Manager)
	into = append(into[:0], s.edges...)
	seq := s.seq
	s.latch.Release(p, stats.Manager)
	return into, seq
}

// FindCycle searches for a waits-for cycle through worker self's
// transaction (sequence selfSeq) and returns the cycle's member worker
// ids (including self), or nil. It performs a depth-first search over the
// partial graph formed by reading related workers' queues without global
// locking — the paper's lock-free-style detection pass. Detection work is
// billed to MANAGER.
//
// Returning the membership lets every transaction that observes the same
// cycle compute the same victim (DL_DETECT aborts the member with the
// largest worker id), so a deadlock costs one abort, not several.
func (g *Graph) FindCycle(p rt.Proc, self int, selfSeq uint64) []int {
	id := p.ID()
	g.stamp[id]++
	stamp := g.stamp[id]
	visited := g.visited[id]
	var path []int
	if g.dfs(p, id, stamp, visited, self, selfSeq, self, selfSeq, &path) {
		return path
	}
	return nil
}

// dfs explores (worker, seq); returns true when a path back to
// (self, selfSeq) is found, accumulating the cycle members into path.
func (g *Graph) dfs(p rt.Proc, id int, stamp uint64, visited []uint64,
	worker int, seq uint64, self int, selfSeq uint64, path *[]int) bool {
	if visited[worker] == stamp {
		return false
	}
	visited[worker] = stamp
	edges, liveSeq := g.readEdges(p, worker, g.buf[id])
	g.buf[id] = edges[:0]
	if liveSeq != seq {
		return false // that txn has finished; its edges are stale
	}
	p.Tick(stats.Manager, uint64(len(edges))*costs.DeadlockSearchPerEdge)
	// Copy: deeper recursion reuses the shared read buffer.
	local := make([]Edge, len(edges))
	copy(local, edges)
	for _, e := range local {
		if e.Worker == self && e.Seq == selfSeq {
			*path = append(*path, worker)
			return true
		}
		if g.dfs(p, id, stamp, visited, e.Worker, e.Seq, self, selfSeq, path) {
			*path = append(*path, worker)
			return true
		}
	}
	return false
}
