package waitgraph_test

import (
	"testing"

	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/waitgraph"
)

// run executes body on worker 0 of a small simulated chip, with the other
// workers idle; graph state for them is prepared via their own procs.
func run(t *testing.T, cores int, body func(g *waitgraph.Graph, procs []rt.Proc)) {
	t.Helper()
	eng := sim.New(cores, 1)
	g := waitgraph.New(eng)
	procs := make([]rt.Proc, cores)
	eng.Run(func(p rt.Proc) {
		procs[p.ID()] = p
		if p.ID() == 0 {
			// Give the other procs a chance to register.
			p.Sync(0, 10)
			body(g, procs)
		} else {
			p.Sync(0, 1000) // stay alive until the body finishes
		}
	})
}

func TestNoCycleOnChain(t *testing.T) {
	run(t, 4, func(g *waitgraph.Graph, procs []rt.Proc) {
		p := procs[0]
		s0 := g.BeginTxn(p)
		// 0 -> 1 -> 2 (a chain, no cycle).
		g.SetEdges(p, []waitgraph.Edge{{Worker: 1, Seq: 1}})
		if g.FindCycle(p, 0, s0) != nil {
			t.Error("chain reported as cycle")
		}
	})
}

func TestSelfCycleDetected(t *testing.T) {
	run(t, 4, func(g *waitgraph.Graph, procs []rt.Proc) {
		p := procs[0]
		s0 := g.BeginTxn(p)
		g.SetEdges(p, []waitgraph.Edge{{Worker: 0, Seq: s0}})
		cycle := g.FindCycle(p, 0, s0)
		if cycle == nil {
			t.Error("direct self-cycle missed")
		}
		if len(cycle) != 1 || cycle[0] != 0 {
			t.Errorf("self-cycle membership = %v, want [0]", cycle)
		}
	})
}

func TestStaleEdgesIgnored(t *testing.T) {
	run(t, 4, func(g *waitgraph.Graph, procs []rt.Proc) {
		p := procs[0]
		s0 := g.BeginTxn(p)
		// Point at worker 1's txn seq 99, which is not its live seq:
		// the edge is stale and must not contribute to a cycle even if
		// worker 1 points back at us.
		g.SetEdges(p, []waitgraph.Edge{{Worker: 1, Seq: 99}})
		if g.FindCycle(p, 0, s0) != nil {
			t.Error("stale edge treated as live")
		}
	})
}

func TestClearEdgesStopsCycle(t *testing.T) {
	run(t, 4, func(g *waitgraph.Graph, procs []rt.Proc) {
		p := procs[0]
		s0 := g.BeginTxn(p)
		g.SetEdges(p, []waitgraph.Edge{{Worker: 0, Seq: s0}})
		g.ClearEdges(p)
		if g.FindCycle(p, 0, s0) != nil {
			t.Error("cycle survives ClearEdges")
		}
	})
}

func TestBeginTxnInvalidatesOldEdges(t *testing.T) {
	run(t, 4, func(g *waitgraph.Graph, procs []rt.Proc) {
		p := procs[0]
		s0 := g.BeginTxn(p)
		g.SetEdges(p, []waitgraph.Edge{{Worker: 0, Seq: s0}})
		s1 := g.BeginTxn(p) // new txn: old self-edge meaningless
		if g.FindCycle(p, 0, s1) != nil {
			t.Error("previous transaction's edges leaked into the new one")
		}
	})
}

// TestTwoPartyCycle builds the classic deadlock 0 -> 1 -> 0 through two
// workers' live transactions.
func TestTwoPartyCycle(t *testing.T) {
	eng := sim.New(2, 1)
	g := waitgraph.New(eng)
	seqs := make([]uint64, 2)
	eng.Run(func(p rt.Proc) {
		seqs[p.ID()] = g.BeginTxn(p)
		p.Sync(0, 10) // both registered
		if p.ID() == 1 {
			g.SetEdges(p, []waitgraph.Edge{{Worker: 0, Seq: seqs[0]}})
			p.Sync(0, 1000)
			return
		}
		p.Sync(0, 100) // let worker 1 publish its edge
		g.SetEdges(p, []waitgraph.Edge{{Worker: 1, Seq: seqs[1]}})
		if g.FindCycle(p, 0, seqs[0]) == nil {
			t.Error("two-party deadlock not detected")
		}
	})
}

// TestLongCycle exercises the DFS across several hops.
func TestLongCycle(t *testing.T) {
	const n = 6
	eng := sim.New(n, 1)
	g := waitgraph.New(eng)
	seqs := make([]uint64, n)
	eng.Run(func(p rt.Proc) {
		seqs[p.ID()] = g.BeginTxn(p)
		p.Sync(0, 10)
		id := p.ID()
		if id != 0 {
			// i waits for i+1 mod n.
			next := (id + 1) % n
			g.SetEdges(p, []waitgraph.Edge{{Worker: next, Seq: seqs[next]}})
			p.Sync(0, 2000)
			return
		}
		p.Sync(0, 500) // everyone published
		g.SetEdges(p, []waitgraph.Edge{{Worker: 1, Seq: seqs[1]}})
		if g.FindCycle(p, 0, seqs[0]) == nil {
			t.Error("6-party cycle not detected")
		}
	})
}
