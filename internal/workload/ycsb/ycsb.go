// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload of
// §3.3: one table of (key, 10 × 100-byte fields) rows with a hash primary
// index; transactions of (by default) 16 independent point accesses, each
// a read or an update, with keys drawn from a Zipfian distribution whose
// theta parameter controls contention. The partitioned variants used by
// the H-STORE experiments (§5.5) hash tuples to partitions by primary key
// and generate single- or multi-partition transactions.
package ycsb

import (
	"math/rand"

	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
	"abyss1000/internal/zipf"
)

// Config parameterizes the workload. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Rows is the table size. The paper uses 20M rows (~20GB); defaults
	// here are scaled down — contention depends on theta, not absolute
	// size (see DESIGN.md).
	Rows int

	// Fields and FieldSize shape the tuple: Fields columns of FieldSize
	// bytes after the 8-byte primary key (paper: 10 × 100B).
	Fields    int
	FieldSize int

	// ReqPerTxn is the number of tuple accesses per transaction
	// (paper default: 16).
	ReqPerTxn int

	// ReadPct is the probability an access is a read; the rest are
	// updates. The paper's read-only workload is 1.0, write-intensive
	// is 0.5 ("each access will modify the tuple with a 50%
	// probability").
	ReadPct float64

	// Theta is the Zipfian skew (0 uniform, 0.6 medium, 0.8 high).
	Theta float64

	// Ordered sorts each transaction's accesses by key, removing the
	// need for deadlock detection (the Fig. 4 thrashing experiment).
	Ordered bool

	// Partitioned generates partition-aware transactions for H-STORE:
	// tuples belong to partition (key mod NParts).
	Partitioned bool

	// MPFraction is the fraction of multi-partition transactions when
	// Partitioned (Fig. 15a).
	MPFraction float64

	// MPParts is how many partitions a multi-partition transaction
	// touches (Fig. 15b); minimum 2 to be "multi".
	MPParts int
}

// DefaultConfig returns the paper's experiment defaults at laptop scale.
func DefaultConfig() Config {
	return Config{
		Rows:      65536,
		Fields:    10,
		FieldSize: 100,
		ReqPerTxn: 16,
		ReadPct:   0.5,
		Theta:     0.6,
	}
}

// Workload is a populated YCSB database plus per-worker generators.
type Workload struct {
	cfg   Config
	db    *core.DB
	table *storage.Table
	idx   *index.Hash
	fcol  []int // field column indexes

	gens []*zipf.Generator
	txns []txn
}

// Build creates the table and index on db, populates Rows tuples, and
// prepares per-worker transaction generators.
func Build(db *core.DB, cfg Config) *Workload {
	if cfg.ReqPerTxn <= 0 || cfg.Rows <= 0 {
		panic("ycsb: invalid config")
	}
	cols := make([]storage.Col, 0, cfg.Fields+1)
	cols = append(cols, storage.Col{Name: "KEY", Width: 8})
	for i := 0; i < cfg.Fields; i++ {
		cols = append(cols, storage.Col{Name: fieldName(i), Width: cfg.FieldSize})
	}
	schema := storage.NewSchema("USERTABLE", cols...)
	n := db.RT.NumProcs()
	table := db.Catalog.Add(schema, cfg.Rows, cfg.Rows, n)
	idx := db.AddIndex("USERTABLE_PK", table, cfg.Rows)

	rng := rand.New(rand.NewSource(0xDB))
	for i := 0; i < cfg.Rows; i++ {
		row := table.LoadRow(i)
		schema.PutU64(row, 0, uint64(i))
		// Fill first bytes of each field deterministically; full random
		// fill would dominate setup time without affecting contention.
		for f := 1; f <= cfg.Fields; f++ {
			b := schema.Bytes(row, f)
			b[0] = byte(rng.Intn(256))
		}
		idx.LoadInsert(uint64(i), i)
	}

	w := &Workload{cfg: cfg, db: db, table: table, idx: idx}
	for f := 1; f <= cfg.Fields; f++ {
		w.fcol = append(w.fcol, f)
	}
	w.gens = make([]*zipf.Generator, n)
	w.txns = make([]txn, n)
	gen := zipf.New(uint64(cfg.Rows), cfg.Theta) // memoize zeta once
	for i := 0; i < n; i++ {
		w.gens[i] = gen
		w.txns[i] = txn{
			wl:   w,
			keys: make([]uint64, 0, cfg.ReqPerTxn),
			isWr: make([]bool, 0, cfg.ReqPerTxn),
		}
	}
	return w
}

func fieldName(i int) string {
	return "FIELD" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Table returns the YCSB table (for tests and checkers).
func (w *Workload) Table() *storage.Table { return w.table }

// txn is a reusable YCSB transaction.
type txn struct {
	wl    *Workload
	keys  []uint64
	isWr  []bool
	parts []int
}

// Next implements core.Workload.
func (w *Workload) Next(p rt.Proc) core.Txn {
	t := &w.txns[p.ID()]
	t.generate(p, w)
	return t
}

// txnTypeNames is the single YCSB transaction type (§3.3: every
// transaction is the same scatter of ReqPerTxn point accesses).
var txnTypeNames = []string{"ycsb"}

// TxnTypes implements core.TxnTyper.
func (w *Workload) TxnTypes() []string { return txnTypeNames }

// TxnTypeOf implements core.TxnTyper.
func (w *Workload) TxnTypeOf(core.Txn) int { return 0 }

// hasKey reports whether k was already chosen for this transaction; the
// paper's transactions access 16 distinct records.
func (t *txn) hasKey(k uint64) bool {
	for _, e := range t.keys {
		if e == k {
			return true
		}
	}
	return false
}

// generate fills the transaction with ReqPerTxn accesses.
func (t *txn) generate(p rt.Proc, w *Workload) {
	cfg := &w.cfg
	rng := p.Rand()
	t.keys = t.keys[:0]
	t.isWr = t.isWr[:0]
	t.parts = t.parts[:0]

	nparts := w.db.NParts
	if cfg.Partitioned {
		home := p.ID() % nparts
		t.parts = append(t.parts, home)
		if cfg.MPFraction > 0 && rng.Float64() < cfg.MPFraction && cfg.MPParts > 1 && nparts > 1 {
			want := cfg.MPParts
			if want > nparts {
				want = nparts
			}
			for len(t.parts) < want {
				cand := rng.Intn(nparts)
				dup := false
				for _, q := range t.parts {
					if q == cand {
						dup = true
						break
					}
				}
				if !dup {
					t.parts = append(t.parts, cand)
				}
			}
		}
		sortInts(t.parts)
	}

	for i := 0; i < cfg.ReqPerTxn; i++ {
		var key uint64
		for tries := 0; ; tries++ {
			rank := w.gens[p.ID()].Next(rng)
			key = zipf.Scramble(rank, uint64(cfg.Rows))
			if cfg.Partitioned {
				// Redirect the key into one of the transaction's
				// partitions (round-robin over the set).
				part := uint64(t.parts[i%len(t.parts)])
				key = key - key%uint64(nparts) + part
				if key >= uint64(cfg.Rows) {
					key -= uint64(nparts)
				}
			}
			if !t.hasKey(key) {
				break
			}
			if tries > 100 {
				// Pathological skew: linear-probe to a free key.
				for t.hasKey(key) {
					key = (key + uint64(nparts)) % uint64(cfg.Rows)
				}
				break
			}
		}
		t.keys = append(t.keys, key)
		t.isWr = append(t.isWr, rng.Float64() >= cfg.ReadPct)
	}

	if cfg.Ordered {
		// Primary-key order (Fig. 4): simple insertion sort, keeping
		// key/op pairs aligned.
		for i := 1; i < len(t.keys); i++ {
			for j := i; j > 0 && t.keys[j] < t.keys[j-1]; j-- {
				t.keys[j], t.keys[j-1] = t.keys[j-1], t.keys[j]
				t.isWr[j], t.isWr[j-1] = t.isWr[j-1], t.isWr[j]
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Run implements core.Txn.
func (t *txn) Run(tx *core.TxnCtx) error {
	w := t.wl
	var sink byte
	for i := range t.keys {
		slot, ok := tx.Lookup(w.idx, t.keys[i])
		if !ok {
			panic("ycsb: key vanished from primary index")
		}
		if t.isWr[i] {
			f := w.fcol[i%len(w.fcol)]
			val := tx.P.Rand().Uint64()
			row, err := tx.UpdateRow(w.table, slot)
			if err != nil {
				return err
			}
			b := w.table.Schema.Bytes(row, f)
			b[0], b[1], b[2], b[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
		} else {
			row, err := tx.Read(w.table, slot)
			if err != nil {
				return err
			}
			sink ^= row[8] // consume the read
		}
	}
	_ = sink
	return nil
}

// Partitions implements core.Txn.
func (t *txn) Partitions() []int { return t.parts }

var _ core.Workload = (*Workload)(nil)
var _ core.TxnTyper = (*Workload)(nil)
var _ core.Txn = (*txn)(nil)
