package ycsb_test

import (
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/sim"
	"abyss1000/internal/workload/ycsb"
)

func build(cores int, mod func(*ycsb.Config)) (*sim.Engine, *core.DB, *ycsb.Workload) {
	eng := sim.New(cores, 5)
	db := core.NewDB(eng)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 1024
	cfg.FieldSize = 10
	if mod != nil {
		mod(&cfg)
	}
	wl := ycsb.Build(db, cfg)
	return eng, db, wl
}

func TestBuildPopulatesTableAndIndex(t *testing.T) {
	eng, db, wl := build(2, nil)
	tab := wl.Table()
	if tab.Loaded() != 1024 {
		t.Fatalf("loaded %d rows", tab.Loaded())
	}
	for i := 0; i < 1024; i++ {
		if got := tab.Schema.GetU64(tab.Row(i), 0); got != uint64(i) {
			t.Fatalf("row %d key = %d", i, got)
		}
	}
	idx := db.Index("USERTABLE_PK")
	eng.Run(func(p rt.Proc) {
		if p.ID() != 0 {
			return
		}
		for _, k := range []uint64{0, 511, 1023} {
			if slot, ok := idx.Lookup(p, k); !ok || slot != int(k) {
				t.Errorf("index lookup %d = %d,%v", k, slot, ok)
			}
		}
	})
}

func TestTxnKeysDistinctAndInRange(t *testing.T) {
	eng, _, wl := build(2, func(c *ycsb.Config) { c.Theta = 0.8 })
	eng.Run(func(p rt.Proc) {
		for n := 0; n < 50; n++ {
			txn := wl.Next(p)
			// The txn is opaque; run it against a scheme-less probe by
			// relying on the workload's own invariants instead: keys
			// must be unique per transaction, which TestNoUpgradePanics
			// would catch indirectly. Here just ensure generation is
			// deterministic per worker and never panics.
			_ = txn
		}
	})
}

func TestDeterministicGenerationPerSeed(t *testing.T) {
	collect := func() uint64 {
		eng, db, wl := build(4, func(c *ycsb.Config) { c.Theta = 0.6 })
		scheme := twopl.New(twopl.NoWait, twopl.Options{})
		res := core.Run(db, scheme, wl, core.Config{WarmupCycles: 0, MeasureCycles: 200_000})
		_ = eng
		return res.Commits*1_000_000 + res.Aborts
	}
	if a, b := collect(), collect(); a != b {
		t.Fatalf("generation not deterministic: %d vs %d", a, b)
	}
}

func TestOrderedModeSortsAccesses(t *testing.T) {
	// Ordered mode removes deadlocks: DL_DETECT with detection disabled
	// and no timeout must terminate (no stall panic) under writes.
	eng, db, wl := build(4, func(c *ycsb.Config) {
		c.Ordered = true
		c.Theta = 0.8
		c.ReadPct = 0.5
	})
	scheme := twopl.NewWithTimeout(twopl.NoTimeout, true)
	res := core.Run(db, scheme, wl, core.Config{WarmupCycles: 0, MeasureCycles: 200_000})
	_ = eng
	if res.Commits == 0 {
		t.Fatal("ordered workload committed nothing")
	}
	if res.Aborts != 0 {
		t.Fatalf("ordered + no-detection should never abort, got %d", res.Aborts)
	}
}

func TestPartitionedSinglePartitionTxns(t *testing.T) {
	eng, _, wl := build(4, func(c *ycsb.Config) {
		c.Partitioned = true
	})
	eng.Run(func(p rt.Proc) {
		for n := 0; n < 20; n++ {
			txn := wl.Next(p)
			parts := txn.Partitions()
			if len(parts) != 1 {
				t.Errorf("single-partition txn declared %v", parts)
				return
			}
			if parts[0] != p.ID()%4 {
				t.Errorf("worker %d got partition %d", p.ID(), parts[0])
				return
			}
		}
	})
}

func TestPartitionedMultiPartitionTxns(t *testing.T) {
	eng, _, wl := build(4, func(c *ycsb.Config) {
		c.Partitioned = true
		c.MPFraction = 1.0
		c.MPParts = 3
	})
	eng.Run(func(p rt.Proc) {
		txn := wl.Next(p)
		parts := txn.Partitions()
		if len(parts) != 3 {
			t.Errorf("MP txn declared %d partitions, want 3", len(parts))
			return
		}
		for i := 1; i < len(parts); i++ {
			if parts[i] <= parts[i-1] {
				t.Errorf("partitions not sorted/distinct: %v", parts)
				return
			}
		}
	})
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := ycsb.DefaultConfig()
	if cfg.Fields != 10 || cfg.FieldSize != 100 {
		t.Fatalf("tuple shape %dx%d, paper uses 10x100", cfg.Fields, cfg.FieldSize)
	}
	if cfg.ReqPerTxn != 16 {
		t.Fatalf("accesses/txn = %d, paper uses 16", cfg.ReqPerTxn)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := sim.New(1, 1)
	db := core.NewDB(eng)
	cfg := ycsb.DefaultConfig()
	cfg.Rows = 0
	ycsb.Build(db, cfg)
}
