package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// stockLevelTxn is the TPC-C StockLevel transaction (full mix only): a
// read-only analytics query counting the distinct items among a
// district's 20 most recent orders whose stock has fallen below a
// threshold. The recent order lines come from one range scan over the
// ORDER_LINE ordered index; each distinct item then costs one STOCK read
// through the scheme.
type stockLevelTxn struct {
	wl *Workload

	wid, did  uint64
	threshold int64
	seen      map[uint64]bool
	parts     []int
}

// generate draws the inputs (spec §2.8.1: threshold uniform in [10, 20]).
func (t *stockLevelTxn) generate(p rt.Proc) {
	cfg := &t.wl.cfg
	rng := p.Rand()
	t.wid = t.wl.homeWarehouse(p)
	t.did = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	t.threshold = int64(rng.Intn(11)) + 10
	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
}

// Run implements core.Txn.
func (t *stockLevelTxn) Run(tx *core.TxnCtx) error {
	w := t.wl

	dslot, ok := tx.Lookup(w.idxDistrict, districtKey(t.wid, t.did))
	if !ok {
		panic("tpcc: district missing")
	}
	dsc := w.district.Schema
	drow, err := tx.Read(w.district, dslot)
	if err != nil {
		return err
	}
	next := dsc.GetU64(drow, DNextOID)
	if next <= 1 {
		return nil // no orders in this district yet
	}
	lo := uint64(1)
	if next > 21 {
		lo = next - 21
	}

	// All lines of the last 20 orders in one scan (order line numbers
	// occupy the key's low 16 bits, so the oid range is contiguous).
	lines := tx.RangeScan(w.ordOrderLine,
		orderLineKey(t.wid, t.did, lo, 0),
		orderLineKey(t.wid, t.did, next-1, 0xffff))

	if t.seen == nil {
		t.seen = make(map[uint64]bool, 64)
	} else {
		for k := range t.seen {
			delete(t.seen, k)
		}
	}
	olsc := w.orderline.Schema
	ssc := w.stock.Schema
	low := 0
	for _, e := range lines {
		olrow, err := tx.Read(w.orderline, int(e.Slot))
		if err != nil {
			return err
		}
		iid := olsc.GetU64(olrow, OLIID)
		if t.seen[iid] {
			continue
		}
		t.seen[iid] = true
		sslot, ok := tx.Lookup(w.idxStock, stockKey(t.wid, iid))
		if !ok {
			panic("tpcc: stock missing")
		}
		srow, err := tx.Read(w.stock, sslot)
		if err != nil {
			return err
		}
		if ssc.GetI64(srow, SQuantity) < t.threshold {
			low++
		}
	}
	_ = low // query output
	return nil
}

// Partitions implements core.Txn.
func (t *stockLevelTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*stockLevelTxn)(nil)
