package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// olInput is one order line's input.
type olInput struct {
	iid    uint64
	supply uint64 // supplying warehouse (1% remote per line)
	qty    int64
}

// newOrderTxn is the TPC-C NewOrder transaction: enter an order of 5-15
// lines, reading ITEM, updating DISTRICT (D_NEXT_O_ID) and STOCK, and
// inserting ORDERS, NEW_ORDER and ORDER_LINE rows. Query outputs feed
// subsequent queries (D_NEXT_O_ID becomes the order id; I_PRICE and
// D_TAX/W_TAX feed OL_AMOUNT), the read-modify-write pattern the paper
// contrasts with YCSB. 1% of NewOrders roll back on an unused item id
// (spec §2.4.1.4), exercising program-logic aborts.
type newOrderTxn struct {
	wl *Workload

	wid, did  uint64
	cid       uint64
	items     []olInput
	userAbort bool
	allLocal  bool
	parts     []int
}

// generate draws the inputs (spec §2.4.1, scaled).
func (t *newOrderTxn) generate(p rt.Proc) {
	cfg := &t.wl.cfg
	rng := p.Rand()
	t.wid = t.wl.homeWarehouse(p)
	t.did = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	t.cid = uint64(rng.Intn(cfg.CustomersPerDistrict)) + 1
	olCnt := rng.Intn(11) + 5 // 5-15
	t.items = t.items[:0]
	t.allLocal = true
	t.userAbort = rng.Float64() < cfg.UserAbortPct

	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
	for i := 0; i < olCnt; i++ {
		var in olInput
		// Distinct item ids within the order keep lock acquisition
		// free of intra-transaction upgrades, as the spec's NURand
		// practically ensures.
		for {
			in.iid = uint64(rng.Intn(cfg.Items)) + 1
			dup := false
			for j := range t.items {
				if t.items[j].iid == in.iid {
					dup = true
					break
				}
			}
			if !dup {
				break
			}
		}
		in.supply = t.wid
		if cfg.Warehouses > 1 && rng.Float64() < cfg.RemoteItemPct {
			for {
				in.supply = uint64(rng.Intn(cfg.Warehouses)) + 1
				if in.supply != t.wid {
					break
				}
			}
			t.allLocal = false
			if pp := t.wl.partitionOf(in.supply); !containsInt(t.parts, pp) {
				t.parts = append(t.parts, pp)
			}
		}
		in.qty = int64(rng.Intn(10)) + 1
		t.items = append(t.items, in)
	}
	sortInts(t.parts)
}

func containsInt(a []int, v int) bool {
	for _, e := range a {
		if e == v {
			return true
		}
	}
	return false
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Run implements core.Txn.
func (t *newOrderTxn) Run(tx *core.TxnCtx) error {
	w := t.wl

	// Warehouse tax (read-only; every NewOrder reads its warehouse row,
	// colliding with Payment's W_YTD update — the Fig. 16 interaction).
	wslot, ok := tx.Lookup(w.idxWarehouse, warehouseKey(t.wid))
	if !ok {
		panic("tpcc: warehouse missing")
	}
	wrow, err := tx.Read(w.warehouse, wslot)
	if err != nil {
		return err
	}
	wtax := w.warehouse.Schema.GetI64(wrow, WTax)

	// District: read D_TAX, consume D_NEXT_O_ID.
	dslot, ok := tx.Lookup(w.idxDistrict, districtKey(t.wid, t.did))
	if !ok {
		panic("tpcc: district missing")
	}
	dsc := w.district.Schema
	drow, err := tx.UpdateRow(w.district, dslot)
	if err != nil {
		return err
	}
	dtax := dsc.GetI64(drow, DTax)
	oid := dsc.GetU64(drow, DNextOID)
	dsc.PutU64(drow, DNextOID, oid+1)

	// Customer discount.
	cslot, ok := tx.Lookup(w.idxCustomer, customerKey(t.wid, t.did, t.cid))
	if !ok {
		panic("tpcc: customer missing")
	}
	crow, err := tx.Read(w.customer, cslot)
	if err != nil {
		return err
	}
	cdiscount := w.customer.Schema.GetI64(crow, CDiscount)

	// Order lines: read ITEM, update STOCK, stage ORDER_LINE inserts.
	var total int64
	isc := w.item.Schema
	ssc := w.stock.Schema
	olsc := w.orderline.Schema
	for i := range t.items {
		in := &t.items[i]
		if t.userAbort && i == len(t.items)-1 {
			// Spec: the last item id is invalid ("unused"), the
			// lookup fails, and the whole order rolls back.
			return core.ErrUserAbort
		}
		islot, ok := tx.Lookup(w.idxItem, itemKey(in.iid))
		if !ok {
			panic("tpcc: item missing")
		}
		irow, err := tx.Read(w.item, islot)
		if err != nil {
			return err
		}
		price := isc.GetI64(irow, IPrice)

		sslot, ok := tx.Lookup(w.idxStock, stockKey(in.supply, in.iid))
		if !ok {
			panic("tpcc: stock missing")
		}
		remote := in.supply != t.wid
		qty := in.qty
		srow, err := tx.UpdateRow(w.stock, sslot)
		if err != nil {
			return err
		}
		q := ssc.GetI64(srow, SQuantity)
		if q >= qty+10 {
			q -= qty
		} else {
			q = q - qty + 91
		}
		ssc.PutI64(srow, SQuantity, q)
		ssc.PutI64(srow, SYTD, ssc.GetI64(srow, SYTD)+qty)
		ssc.PutU64(srow, SOrderCnt, ssc.GetU64(srow, SOrderCnt)+1)
		if remote {
			ssc.PutU64(srow, SRemoteCnt, ssc.GetU64(srow, SRemoteCnt)+1)
		}

		amount := qty * price
		total += amount
		olNum := uint64(i) + 1
		olKey := orderLineKey(t.wid, t.did, oid, olNum)
		var olrow []byte
		if w.full {
			olrow = tx.InsertRowOrdered(w.idxOrderLine, olKey, w.ordOrderLine, olKey)
		} else {
			olrow = tx.InsertRow(w.idxOrderLine, olKey)
		}
		olsc.PutU64(olrow, OLOID, oid)
		olsc.PutU64(olrow, OLDID, t.did)
		olsc.PutU64(olrow, OLWID, t.wid)
		olsc.PutU64(olrow, OLNumber, olNum)
		olsc.PutU64(olrow, OLIID, in.iid)
		olsc.PutU64(olrow, OLSupplyWID, in.supply)
		olsc.PutI64(olrow, OLQuantity, qty)
		olsc.PutI64(olrow, OLAmount, amount)
	}

	// total with taxes and discount (output only; keeps the arithmetic
	// the spec performs).
	total = total * (10000 - cdiscount) / 10000
	total = total * (10000 + wtax + dtax) / 10000
	_ = total

	osc := w.orders.Schema
	allLocal := uint64(1)
	if !t.allLocal {
		allLocal = 0
	}
	nItems := uint64(len(t.items))
	oKey := orderKey(t.wid, t.did, oid)
	var orow []byte
	if w.full {
		orow = tx.InsertRowOrdered(w.idxOrders, oKey, w.ordOrdersCust, custOrderKey(t.wid, t.did, t.cid, oid))
	} else {
		orow = tx.InsertRow(w.idxOrders, oKey)
	}
	osc.PutU64(orow, OID, oid)
	osc.PutU64(orow, OCID, t.cid)
	osc.PutU64(orow, ODID, t.did)
	osc.PutU64(orow, OWID, t.wid)
	osc.PutU64(orow, OEntryD, tx.P.Now())
	osc.PutU64(orow, OOLCnt, nItems)
	osc.PutU64(orow, OAllLocal, allLocal)
	nosc := w.neworder.Schema
	// NEW_ORDER is staged last: its ordered entry is the one Delivery
	// probes for, and the deferred-insert protocol publishes entries in
	// stage order — so when a scan finds an order's NEW_ORDER entry, the
	// order's ORDERS and ORDER_LINE entries are already published.
	var norow []byte
	if w.full {
		norow = tx.InsertRowOrdered(w.idxNewOrder, oKey, w.ordNewOrder, oKey)
	} else {
		norow = tx.InsertRow(w.idxNewOrder, oKey)
	}
	nosc.PutU64(norow, NOOID, oid)
	nosc.PutU64(norow, NODID, t.did)
	nosc.PutU64(norow, NOWID, t.wid)
	return nil
}

// Partitions implements core.Txn.
func (t *newOrderTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*newOrderTxn)(nil)
