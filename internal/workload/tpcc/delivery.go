package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// deliveryTxn is the TPC-C Delivery transaction (full mix only): for each
// district of the home warehouse, deliver the oldest undelivered order —
// stamp the carrier on ORDERS, stamp the delivery date on its ORDER_LINE
// rows, and credit the customer's balance with the order total.
//
// The spec's implementation deletes the NEW_ORDER row; this engine has no
// index delete path, so DISTRICT carries a delivery cursor (DDelivOID)
// instead: orders at most the cursor are delivered. Committed order ids
// are gap-free per district (D_NEXT_O_ID only advances on commit), so the
// next undelivered order is exactly cursor+1 — but its NEW_ORDER index
// entry may not be published yet, because the deferred-insert protocol
// publishes a committed transaction's index entries after its locks
// release. The cursor therefore advances only when the range scan finds
// entry cursor+1 itself (the contiguous-advance rule); a district whose
// next order is committed but unpublished is simply skipped this time.
type deliveryTxn struct {
	wl *Workload

	wid     uint64
	carrier uint64
	parts   []int
}

// generate draws the inputs (spec §2.7.1).
func (t *deliveryTxn) generate(p rt.Proc) {
	t.wid = t.wl.homeWarehouse(p)
	t.carrier = uint64(p.Rand().Intn(10)) + 1
	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
}

// Run implements core.Txn.
func (t *deliveryTxn) Run(tx *core.TxnCtx) error {
	w := t.wl
	dsc := w.district.Schema
	osc := w.orders.Schema
	olsc := w.orderline.Schema
	csc := w.customer.Schema

	for did := uint64(1); did <= uint64(w.cfg.DistrictsPerWarehouse); did++ {
		dslot, ok := tx.Lookup(w.idxDistrict, districtKey(t.wid, did))
		if !ok {
			panic("tpcc: district missing")
		}
		drow, err := tx.UpdateRow(w.district, dslot)
		if err != nil {
			return err
		}
		cursor := dsc.GetU64(drow, DDelivOID)
		next := dsc.GetU64(drow, DNextOID)
		oid := cursor + 1
		if oid >= next {
			continue // no undelivered orders in this district
		}
		found := tx.RangeScanLimit(w.ordNewOrder,
			orderKey(t.wid, did, oid), orderKey(t.wid, did, next-1), 1)
		if len(found) == 0 || found[0].Key != orderKey(t.wid, did, oid) {
			// Order oid is committed but its index entry is not yet
			// published; leave the cursor so it is delivered next time.
			continue
		}
		dsc.PutU64(drow, DDelivOID, oid)

		oslot, ok := tx.Lookup(w.idxOrders, orderKey(t.wid, did, oid))
		if !ok {
			// Published NEW_ORDER entry implies the ORDERS entry is
			// published too (stage order); see neworder.go.
			panic("tpcc: delivered order missing from ORDERS")
		}
		orow, err := tx.UpdateRow(w.orders, oslot)
		if err != nil {
			return err
		}
		osc.PutU64(orow, OCarrierID, t.carrier)
		cid := osc.GetU64(orow, OCID)
		olCnt := osc.GetU64(orow, OOLCnt)

		var total int64
		for ol := uint64(1); ol <= olCnt; ol++ {
			olslot, ok := tx.Lookup(w.idxOrderLine, orderLineKey(t.wid, did, oid, ol))
			if !ok {
				panic("tpcc: delivered order line missing")
			}
			olrow, err := tx.UpdateRow(w.orderline, olslot)
			if err != nil {
				return err
			}
			olsc.PutU64(olrow, OLDeliveryD, tx.P.Now())
			total += olsc.GetI64(olrow, OLAmount)
		}

		cslot, ok := tx.Lookup(w.idxCustomer, customerKey(t.wid, did, cid))
		if !ok {
			panic("tpcc: delivered order's customer missing")
		}
		crow, err := tx.UpdateRow(w.customer, cslot)
		if err != nil {
			return err
		}
		csc.PutI64(crow, CBalance, csc.GetI64(crow, CBalance)+total)
		csc.PutU64(crow, CDeliveryCnt, csc.GetU64(crow, CDeliveryCnt)+1)
	}
	return nil
}

// Partitions implements core.Txn.
func (t *deliveryTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*deliveryTxn)(nil)
