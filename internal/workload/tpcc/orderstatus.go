package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// orderStatusTxn is the TPC-C OrderStatus transaction (full mix only): a
// read-only query returning a customer's most recent order and its
// lines. The "most recent order" lookup is a range scan over the
// ORDERS_CUST ordered index — the access path the spec's secondary-key
// SELECT MAX(O_ID) implies — whose last entry is the newest order.
type orderStatusTxn struct {
	wl *Workload

	wid, did, cid uint64
	parts         []int
}

// generate draws the inputs (spec §2.6.1; customers are drawn by id —
// the spec's 60% by-last-name path needs the name index the engine
// doesn't model).
func (t *orderStatusTxn) generate(p rt.Proc) {
	cfg := &t.wl.cfg
	rng := p.Rand()
	t.wid = t.wl.homeWarehouse(p)
	t.did = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	t.cid = uint64(rng.Intn(cfg.CustomersPerDistrict)) + 1
	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
}

// Run implements core.Txn.
func (t *orderStatusTxn) Run(tx *core.TxnCtx) error {
	w := t.wl

	// Customer balance (spec returns name/balance with the order).
	cslot, ok := tx.Lookup(w.idxCustomer, customerKey(t.wid, t.did, t.cid))
	if !ok {
		panic("tpcc: customer missing")
	}
	if _, err := tx.Read(w.customer, cslot); err != nil {
		return err
	}

	// The customer's orders, ascending by oid; the last is the newest.
	orders := tx.RangeScan(w.ordOrdersCust,
		custOrderKey(t.wid, t.did, t.cid, 0),
		custOrderKey(t.wid, t.did, t.cid, 0xffff))
	if len(orders) == 0 {
		return nil // customer has not ordered yet (no pre-loaded orders)
	}
	last := orders[len(orders)-1]
	osc := w.orders.Schema
	orow, err := tx.Read(w.orders, int(last.Slot))
	if err != nil {
		return err
	}
	oid := osc.GetU64(orow, OID)
	olCnt := osc.GetU64(orow, OOLCnt)

	// The order's lines, via the ORDER_LINE ordered index.
	lines := tx.RangeScan(w.ordOrderLine,
		orderLineKey(t.wid, t.did, oid, 1),
		orderLineKey(t.wid, t.did, oid, olCnt))
	for _, e := range lines {
		if _, err := tx.Read(w.orderline, int(e.Slot)); err != nil {
			return err
		}
	}
	return nil
}

// Partitions implements core.Txn.
func (t *orderStatusTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*orderStatusTxn)(nil)
