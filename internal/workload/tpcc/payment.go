package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// paymentTxn is the TPC-C Payment transaction: record a customer payment,
// updating warehouse, district and customer year-to-date totals and
// appending a HISTORY row. Every Payment updates its warehouse's W_YTD —
// the single-field hotspot the paper identifies as the Fig. 16 bottleneck
// when workers outnumber warehouses.
type paymentTxn struct {
	wl *Workload

	wid, did   uint64 // home warehouse/district (the payment is recorded here)
	cwid, cdid uint64 // customer's warehouse/district (15% remote)
	cid        uint64
	amount     int64
	parts      []int
	worker     int
}

// generate draws the transaction inputs (spec §2.5.1, scaled).
func (t *paymentTxn) generate(p rt.Proc) {
	cfg := &t.wl.cfg
	rng := p.Rand()
	t.worker = p.ID()
	t.wid = t.wl.homeWarehouse(p)
	t.did = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	t.cwid, t.cdid = t.wid, t.did
	if cfg.Warehouses > 1 && rng.Float64() < cfg.RemotePaymentPct {
		for {
			t.cwid = uint64(rng.Intn(cfg.Warehouses)) + 1
			if t.cwid != t.wid {
				break
			}
		}
		t.cdid = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	}
	t.cid = uint64(rng.Intn(cfg.CustomersPerDistrict)) + 1
	t.amount = int64(rng.Intn(499901) + 100) // $1.00 - $5,000.00

	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
	if cp := t.wl.partitionOf(t.cwid); cp != t.parts[0] {
		t.parts = append(t.parts, cp)
	}
	if len(t.parts) == 2 && t.parts[0] > t.parts[1] {
		t.parts[0], t.parts[1] = t.parts[1], t.parts[0]
	}
}

// Run implements core.Txn.
func (t *paymentTxn) Run(tx *core.TxnCtx) error {
	w := t.wl

	// Warehouse: W_YTD += amount (the hotspot).
	wslot, ok := tx.Lookup(w.idxWarehouse, warehouseKey(t.wid))
	if !ok {
		panic("tpcc: warehouse missing")
	}
	sc := w.warehouse.Schema
	if err := tx.Update(w.warehouse, wslot, func(row []byte) {
		sc.PutI64(row, WYTD, sc.GetI64(row, WYTD)+t.amount)
	}); err != nil {
		return err
	}

	// District: D_YTD += amount.
	dslot, ok := tx.Lookup(w.idxDistrict, districtKey(t.wid, t.did))
	if !ok {
		panic("tpcc: district missing")
	}
	dsc := w.district.Schema
	if err := tx.Update(w.district, dslot, func(row []byte) {
		dsc.PutI64(row, DYTD, dsc.GetI64(row, DYTD)+t.amount)
	}); err != nil {
		return err
	}

	// Customer: balance down, YTD payment up, payment count up.
	cslot, ok := tx.Lookup(w.idxCustomer, customerKey(t.cwid, t.cdid, t.cid))
	if !ok {
		panic("tpcc: customer missing")
	}
	csc := w.customer.Schema
	if err := tx.Update(w.customer, cslot, func(row []byte) {
		csc.PutI64(row, CBalance, csc.GetI64(row, CBalance)-t.amount)
		csc.PutI64(row, CYTDPayment, csc.GetI64(row, CYTDPayment)+t.amount)
		csc.PutU64(row, CPaymentCnt, csc.GetU64(row, CPaymentCnt)+1)
	}); err != nil {
		return err
	}

	// History append.
	w.hseq[t.worker]++
	hkey := historyKey(t.worker, w.hseq[t.worker])
	hsc := w.history.Schema
	tx.Insert(w.idxHistory, hkey, func(row []byte) {
		hsc.PutU64(row, HCID, t.cid)
		hsc.PutU64(row, HCDID, t.cdid)
		hsc.PutU64(row, HCWID, t.cwid)
		hsc.PutU64(row, HDID, t.did)
		hsc.PutU64(row, HWID, t.wid)
		hsc.PutU64(row, HDate, tx.P.Now())
		hsc.PutI64(row, HAmount, t.amount)
	})
	return nil
}

// Partitions implements core.Txn.
func (t *paymentTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*paymentTxn)(nil)
