package tpcc

import (
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
)

// paymentTxn is the TPC-C Payment transaction: record a customer payment,
// updating warehouse, district and customer year-to-date totals and
// appending a HISTORY row. Every Payment updates its warehouse's W_YTD —
// the single-field hotspot the paper identifies as the Fig. 16 bottleneck
// when workers outnumber warehouses.
type paymentTxn struct {
	wl *Workload

	wid, did   uint64 // home warehouse/district (the payment is recorded here)
	cwid, cdid uint64 // customer's warehouse/district (15% remote)
	cid        uint64
	amount     int64
	parts      []int
	worker     int
}

// generate draws the transaction inputs (spec §2.5.1, scaled).
func (t *paymentTxn) generate(p rt.Proc) {
	cfg := &t.wl.cfg
	rng := p.Rand()
	t.worker = p.ID()
	t.wid = t.wl.homeWarehouse(p)
	t.did = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	t.cwid, t.cdid = t.wid, t.did
	if cfg.Warehouses > 1 && rng.Float64() < cfg.RemotePaymentPct {
		for {
			t.cwid = uint64(rng.Intn(cfg.Warehouses)) + 1
			if t.cwid != t.wid {
				break
			}
		}
		t.cdid = uint64(rng.Intn(cfg.DistrictsPerWarehouse)) + 1
	}
	t.cid = uint64(rng.Intn(cfg.CustomersPerDistrict)) + 1
	t.amount = int64(rng.Intn(499901) + 100) // $1.00 - $5,000.00

	t.parts = t.parts[:0]
	t.parts = append(t.parts, t.wl.partitionOf(t.wid))
	if cp := t.wl.partitionOf(t.cwid); cp != t.parts[0] {
		t.parts = append(t.parts, cp)
	}
	if len(t.parts) == 2 && t.parts[0] > t.parts[1] {
		t.parts[0], t.parts[1] = t.parts[1], t.parts[0]
	}
}

// Run implements core.Txn.
func (t *paymentTxn) Run(tx *core.TxnCtx) error {
	w := t.wl

	// Warehouse: W_YTD += amount (the hotspot).
	wslot, ok := tx.Lookup(w.idxWarehouse, warehouseKey(t.wid))
	if !ok {
		panic("tpcc: warehouse missing")
	}
	sc := w.warehouse.Schema
	wrow, err := tx.UpdateRow(w.warehouse, wslot)
	if err != nil {
		return err
	}
	sc.PutI64(wrow, WYTD, sc.GetI64(wrow, WYTD)+t.amount)

	// District: D_YTD += amount.
	dslot, ok := tx.Lookup(w.idxDistrict, districtKey(t.wid, t.did))
	if !ok {
		panic("tpcc: district missing")
	}
	dsc := w.district.Schema
	drow, err := tx.UpdateRow(w.district, dslot)
	if err != nil {
		return err
	}
	dsc.PutI64(drow, DYTD, dsc.GetI64(drow, DYTD)+t.amount)

	// Customer: balance down, YTD payment up, payment count up.
	cslot, ok := tx.Lookup(w.idxCustomer, customerKey(t.cwid, t.cdid, t.cid))
	if !ok {
		panic("tpcc: customer missing")
	}
	csc := w.customer.Schema
	crow, err := tx.UpdateRow(w.customer, cslot)
	if err != nil {
		return err
	}
	csc.PutI64(crow, CBalance, csc.GetI64(crow, CBalance)-t.amount)
	csc.PutI64(crow, CYTDPayment, csc.GetI64(crow, CYTDPayment)+t.amount)
	csc.PutU64(crow, CPaymentCnt, csc.GetU64(crow, CPaymentCnt)+1)

	// History append.
	w.hseq[t.worker]++
	hkey := historyKey(t.worker, w.hseq[t.worker])
	hsc := w.history.Schema
	hrow := tx.InsertRow(w.idxHistory, hkey)
	hsc.PutU64(hrow, HCID, t.cid)
	hsc.PutU64(hrow, HCDID, t.cdid)
	hsc.PutU64(hrow, HCWID, t.cwid)
	hsc.PutU64(hrow, HDID, t.did)
	hsc.PutU64(hrow, HWID, t.wid)
	hsc.PutU64(hrow, HDate, tx.P.Now())
	hsc.PutI64(hrow, HAmount, t.amount)
	return nil
}

// Partitions implements core.Txn.
func (t *paymentTxn) Partitions() []int { return t.parts }

var _ core.Txn = (*paymentTxn)(nil)
