package tpcc

import (
	"math/rand"

	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
)

// Config parameterizes the TPC-C database and mix.
type Config struct {
	// Warehouses is the scale factor (the paper runs 4 and 1024).
	Warehouses int

	// DistrictsPerWarehouse is 10 in the specification.
	DistrictsPerWarehouse int

	// CustomersPerDistrict is 3000 in the specification; scaled down by
	// default (transaction footprints are size-independent, §5.6).
	CustomersPerDistrict int

	// Items is 100 000 in the specification; scaled down by default.
	// Each warehouse stocks every item.
	Items int

	// PaymentPct is the fraction of Payment transactions; the rest are
	// NewOrder (the paper runs 50/50; the spec mix for these two is
	// 43/45). Set 1 or 0 for the single-transaction plots (Figs. 16b,
	// 16c, 17b, 17c).
	PaymentPct float64

	// RemotePaymentPct is the probability a Payment pays a customer of
	// a remote warehouse (spec: 15%).
	RemotePaymentPct float64

	// RemoteItemPct is the per-item probability a NewOrder line is
	// supplied by a remote warehouse (spec: 1%, making ~10% of
	// NewOrders multi-warehouse — the paper's ~10% figure).
	RemoteItemPct float64

	// UserAbortPct is the probability a NewOrder rolls back on an
	// invalid item (spec: 1%).
	UserAbortPct float64

	// InsertsPerWorker sizes the insert segments of HISTORY, ORDERS,
	// NEW_ORDER and ORDER_LINE (ORDER_LINE gets 15x). Raise it for
	// long measurement windows.
	InsertsPerWorker int
}

// DefaultConfig returns spec ratios at laptop scale.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  300,
		Items:                 1000,
		PaymentPct:            0.5,
		RemotePaymentPct:      0.15,
		RemoteItemPct:         0.01,
		UserAbortPct:          0.01,
		InsertsPerWorker:      4096,
	}
}

// Workload is a populated TPC-C database plus per-worker generators.
type Workload struct {
	cfg Config
	db  *core.DB

	warehouse, district, customer *storage.Table
	history, neworder, orders     *storage.Table
	orderline, item, stock        *storage.Table

	idxWarehouse, idxDistrict, idxCustomer *index.Hash
	idxItem, idxStock                      *index.Hash
	idxOrders, idxNewOrder, idxOrderLine   *index.Hash
	idxHistory                             *index.Hash

	payments  []paymentTxn
	neworders []newOrderTxn
	hseq      []uint64 // per-worker history key counter
}

// Build creates, populates and indexes the TPC-C database on db.
func Build(db *core.DB, cfg Config) *Workload {
	if cfg.Warehouses <= 0 {
		panic("tpcc: need at least one warehouse")
	}
	n := db.RT.NumProcs()
	w := &Workload{cfg: cfg, db: db}

	W := cfg.Warehouses
	D := W * cfg.DistrictsPerWarehouse
	C := D * cfg.CustomersPerDistrict
	S := W * cfg.Items
	ins := cfg.InsertsPerWorker

	w.warehouse = db.Catalog.Add(warehouseSchema(), W, W, n)
	w.district = db.Catalog.Add(districtSchema(), D, D, n)
	w.customer = db.Catalog.Add(customerSchema(), C, C, n)
	w.item = db.Catalog.Add(itemSchema(), cfg.Items, cfg.Items, n)
	w.stock = db.Catalog.Add(stockSchema(), S, S, n)
	w.history = db.Catalog.Add(historySchema(), n*ins, 0, n)
	w.orders = db.Catalog.Add(ordersSchema(), n*ins, 0, n)
	w.neworder = db.Catalog.Add(newOrderSchema(), n*ins, 0, n)
	w.orderline = db.Catalog.Add(orderLineSchema(), n*ins*15, 0, n)

	w.idxWarehouse = db.AddIndex("WAREHOUSE_PK", w.warehouse, W)
	w.idxDistrict = db.AddIndex("DISTRICT_PK", w.district, D)
	w.idxCustomer = db.AddIndex("CUSTOMER_PK", w.customer, C)
	w.idxItem = db.AddIndex("ITEM_PK", w.item, cfg.Items)
	w.idxStock = db.AddIndex("STOCK_PK", w.stock, S)
	w.idxHistory = db.AddIndex("HISTORY_PK", w.history, n*ins)
	w.idxOrders = db.AddIndex("ORDERS_PK", w.orders, n*ins)
	w.idxNewOrder = db.AddIndex("NEW_ORDER_PK", w.neworder, n*ins)
	w.idxOrderLine = db.AddIndex("ORDER_LINE_PK", w.orderline, n*ins*15)

	w.populate()

	w.payments = make([]paymentTxn, n)
	w.neworders = make([]newOrderTxn, n)
	w.hseq = make([]uint64, n)
	for i := 0; i < n; i++ {
		w.payments[i].wl = w
		w.neworders[i].wl = w
		w.neworders[i].items = make([]olInput, 0, 15)
	}
	return w
}

// Key helpers: warehouse ids are 1-based as in the specification.

func warehouseKey(wid uint64) uint64 { return wid }

func districtKey(wid, did uint64) uint64 { return index.CompositeKey(wid, did, 0, 0) }

func customerKey(wid, did, cid uint64) uint64 { return index.CompositeKey(wid, did, cid, 0) }

func itemKey(iid uint64) uint64 { return iid }

func stockKey(wid, iid uint64) uint64 { return index.CompositeKey(wid, 0, iid, 0) }

func orderKey(wid, did, oid uint64) uint64 { return index.CompositeKey(wid, did, oid, 0) }

func orderLineKey(wid, did, oid, ol uint64) uint64 { return index.CompositeKey(wid, did, oid, ol) }

func historyKey(worker int, seq uint64) uint64 {
	return index.CompositeKey(uint64(worker)+1, 0, 0, 0) | seq
}

// populate loads the initial database per the specification's cardinality
// rules (scaled), single-threaded.
func (w *Workload) populate() {
	cfg := &w.cfg
	rng := rand.New(rand.NewSource(0x79CC))

	slot := 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		row := w.warehouse.LoadRow(slot)
		sc := w.warehouse.Schema
		sc.PutU64(row, WID, uint64(wid))
		sc.PutI64(row, WTax, int64(rng.Intn(2001))) // 0-20.00% in basis points
		sc.PutI64(row, WYTD, 30000000)              // $300,000.00 in cents
		w.idxWarehouse.LoadInsert(warehouseKey(uint64(wid)), slot)
		slot++
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for did := 1; did <= cfg.DistrictsPerWarehouse; did++ {
			row := w.district.LoadRow(slot)
			sc := w.district.Schema
			sc.PutU64(row, DID, uint64(did))
			sc.PutU64(row, DWID, uint64(wid))
			sc.PutI64(row, DTax, int64(rng.Intn(2001)))
			sc.PutI64(row, DYTD, 3000000) // $30,000.00
			sc.PutU64(row, DNextOID, 1)   // no pre-loaded orders
			w.idxDistrict.LoadInsert(districtKey(uint64(wid), uint64(did)), slot)
			slot++
		}
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for did := 1; did <= cfg.DistrictsPerWarehouse; did++ {
			for cid := 1; cid <= cfg.CustomersPerDistrict; cid++ {
				row := w.customer.LoadRow(slot)
				sc := w.customer.Schema
				sc.PutU64(row, CID, uint64(cid))
				sc.PutU64(row, CDID, uint64(did))
				sc.PutU64(row, CWID, uint64(wid))
				sc.PutI64(row, CDiscount, int64(rng.Intn(5001))) // 0-50.00%
				sc.PutI64(row, CCreditLim, 5000000)              // $50,000.00
				sc.PutI64(row, CBalance, -1000)                  // -$10.00
				sc.PutI64(row, CYTDPayment, 1000)
				sc.PutU64(row, CPaymentCnt, 1)
				if rng.Intn(10) == 0 {
					sc.PutU64(row, CCredit, 1) // BC: 10%
				}
				w.idxCustomer.LoadInsert(customerKey(uint64(wid), uint64(did), uint64(cid)), slot)
				slot++
			}
		}
	}

	for iid := 1; iid <= cfg.Items; iid++ {
		row := w.item.LoadRow(iid - 1)
		sc := w.item.Schema
		sc.PutU64(row, IID, uint64(iid))
		sc.PutU64(row, IIMID, uint64(rng.Intn(10000)+1))
		sc.PutI64(row, IPrice, int64(rng.Intn(9901)+100)) // $1.00-$100.00
		w.idxItem.LoadInsert(itemKey(uint64(iid)), iid-1)
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for iid := 1; iid <= cfg.Items; iid++ {
			row := w.stock.LoadRow(slot)
			sc := w.stock.Schema
			sc.PutU64(row, SIID, uint64(iid))
			sc.PutU64(row, SWID, uint64(wid))
			sc.PutI64(row, SQuantity, int64(rng.Intn(91)+10)) // 10-100
			w.idxStock.LoadInsert(stockKey(uint64(wid), uint64(iid)), slot)
			slot++
		}
	}
}

// homeWarehouse binds worker p to a warehouse, round-robin (paper §5.6:
// with fewer warehouses than cores, workers share warehouses).
func (w *Workload) homeWarehouse(p rt.Proc) uint64 {
	return uint64(p.ID()%w.cfg.Warehouses) + 1
}

// partitionOf maps a warehouse to an H-STORE partition ("each partition
// consists of all the data for a single warehouse", §5.6; with more
// warehouses than partitions, warehouses fold onto partitions).
func (w *Workload) partitionOf(wid uint64) int {
	return int((wid - 1)) % w.db.NParts
}

// Next implements core.Workload.
func (w *Workload) Next(p rt.Proc) core.Txn {
	if p.Rand().Float64() < w.cfg.PaymentPct {
		t := &w.payments[p.ID()]
		t.generate(p)
		return t
	}
	t := &w.neworders[p.ID()]
	t.generate(p)
	return t
}

// txnTypeNames lists the two TPC-C transaction types the paper's mix
// runs (§3.3), in TxnTypeOf index order.
var txnTypeNames = []string{"Payment", "NewOrder"}

// TxnTypes implements core.TxnTyper.
func (w *Workload) TxnTypes() []string { return txnTypeNames }

// TxnTypeOf implements core.TxnTyper.
func (w *Workload) TxnTypeOf(t core.Txn) int {
	switch t.(type) {
	case *paymentTxn:
		return 0
	case *newOrderTxn:
		return 1
	}
	return -1
}

var (
	_ core.Workload = (*Workload)(nil)
	_ core.TxnTyper = (*Workload)(nil)
)
