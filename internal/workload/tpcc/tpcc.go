package tpcc

import (
	"math/rand"

	"abyss1000/internal/core"
	"abyss1000/internal/index"
	"abyss1000/internal/rt"
	"abyss1000/internal/storage"
)

// Config parameterizes the TPC-C database and mix.
type Config struct {
	// Warehouses is the scale factor (the paper runs 4 and 1024).
	Warehouses int

	// DistrictsPerWarehouse is 10 in the specification.
	DistrictsPerWarehouse int

	// CustomersPerDistrict is 3000 in the specification; scaled down by
	// default (transaction footprints are size-independent, §5.6).
	CustomersPerDistrict int

	// Items is 100 000 in the specification; scaled down by default.
	// Each warehouse stocks every item.
	Items int

	// PaymentPct is the fraction of Payment transactions; the rest are
	// NewOrder (the paper runs 50/50; the spec mix for these two is
	// 43/45). Set 1 or 0 for the single-transaction plots (Figs. 16b,
	// 16c, 17b, 17c).
	PaymentPct float64

	// RemotePaymentPct is the probability a Payment pays a customer of
	// a remote warehouse (spec: 15%).
	RemotePaymentPct float64

	// RemoteItemPct is the per-item probability a NewOrder line is
	// supplied by a remote warehouse (spec: 1%, making ~10% of
	// NewOrders multi-warehouse — the paper's ~10% figure).
	RemoteItemPct float64

	// UserAbortPct is the probability a NewOrder rolls back on an
	// invalid item (spec: 1%).
	UserAbortPct float64

	// InsertsPerWorker sizes the insert segments of HISTORY, ORDERS,
	// NEW_ORDER and ORDER_LINE (ORDER_LINE gets 15x). Raise it for
	// long measurement windows.
	InsertsPerWorker int

	// Mix selects the transaction mix. MixPaper (the default) is the
	// paper's two-transaction Payment/NewOrder mix drawn per PaymentPct;
	// MixFull adds Delivery, OrderStatus and StockLevel at the
	// specification's 45/43/4/4/4 weights, grows DISTRICT by a
	// delivery-cursor column and builds three ordered secondary indexes
	// for the range scans those transactions perform. MixPaper builds a
	// byte-identical database to the pre-full-mix engine.
	Mix string
}

// Mix values for Config.Mix.
const (
	MixPaper = "paper"
	MixFull  = "full"
)

// Mixes lists the valid Config.Mix values.
func Mixes() []string { return []string{MixPaper, MixFull} }

// DefaultConfig returns spec ratios at laptop scale.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:            warehouses,
		DistrictsPerWarehouse: 10,
		CustomersPerDistrict:  300,
		Items:                 1000,
		PaymentPct:            0.5,
		RemotePaymentPct:      0.15,
		RemoteItemPct:         0.01,
		UserAbortPct:          0.01,
		InsertsPerWorker:      4096,
		Mix:                   MixPaper,
	}
}

// Workload is a populated TPC-C database plus per-worker generators.
type Workload struct {
	cfg Config
	db  *core.DB

	warehouse, district, customer *storage.Table
	history, neworder, orders     *storage.Table
	orderline, item, stock        *storage.Table

	idxWarehouse, idxDistrict, idxCustomer *index.Hash
	idxItem, idxStock                      *index.Hash
	idxOrders, idxNewOrder, idxOrderLine   *index.Hash
	idxHistory                             *index.Hash

	// Full-mix state: the spec's three extra transactions range-scan
	// these ordered secondary indexes (nil under MixPaper).
	full          bool
	ordNewOrder   *index.Ordered // NEW_ORDER by orderKey: Delivery's oldest-undelivered probe
	ordOrdersCust *index.Ordered // ORDERS by (wid, did, cid, oid): OrderStatus's last-order scan
	ordOrderLine  *index.Ordered // ORDER_LINE by orderLineKey: StockLevel's recent-lines scan

	payments      []paymentTxn
	neworders     []newOrderTxn
	orderstatuses []orderStatusTxn
	deliveries    []deliveryTxn
	stocklevels   []stockLevelTxn
	hseq          []uint64 // per-worker history key counter
}

// Build creates, populates and indexes the TPC-C database on db.
func Build(db *core.DB, cfg Config) *Workload {
	if cfg.Warehouses <= 0 {
		panic("tpcc: need at least one warehouse")
	}
	switch cfg.Mix {
	case "", MixPaper:
	case MixFull:
	default:
		panic("tpcc: unknown mix " + cfg.Mix)
	}
	n := db.RT.NumProcs()
	w := &Workload{cfg: cfg, db: db, full: cfg.Mix == MixFull}

	W := cfg.Warehouses
	D := W * cfg.DistrictsPerWarehouse
	C := D * cfg.CustomersPerDistrict
	S := W * cfg.Items
	ins := cfg.InsertsPerWorker

	w.warehouse = db.Catalog.Add(warehouseSchema(), W, W, n)
	dsc := districtSchema()
	if w.full {
		dsc = districtSchemaFull()
	}
	w.district = db.Catalog.Add(dsc, D, D, n)
	w.customer = db.Catalog.Add(customerSchema(), C, C, n)
	w.item = db.Catalog.Add(itemSchema(), cfg.Items, cfg.Items, n)
	w.stock = db.Catalog.Add(stockSchema(), S, S, n)
	w.history = db.Catalog.Add(historySchema(), n*ins, 0, n)
	w.orders = db.Catalog.Add(ordersSchema(), n*ins, 0, n)
	w.neworder = db.Catalog.Add(newOrderSchema(), n*ins, 0, n)
	w.orderline = db.Catalog.Add(orderLineSchema(), n*ins*15, 0, n)

	w.idxWarehouse = db.AddIndex("WAREHOUSE_PK", w.warehouse, W)
	w.idxDistrict = db.AddIndex("DISTRICT_PK", w.district, D)
	w.idxCustomer = db.AddIndex("CUSTOMER_PK", w.customer, C)
	w.idxItem = db.AddIndex("ITEM_PK", w.item, cfg.Items)
	w.idxStock = db.AddIndex("STOCK_PK", w.stock, S)
	w.idxHistory = db.AddIndex("HISTORY_PK", w.history, n*ins)
	w.idxOrders = db.AddIndex("ORDERS_PK", w.orders, n*ins)
	w.idxNewOrder = db.AddIndex("NEW_ORDER_PK", w.neworder, n*ins)
	w.idxOrderLine = db.AddIndex("ORDER_LINE_PK", w.orderline, n*ins*15)

	// Ordered indexes exist only under the full mix — the paper mix's
	// build stays byte-identical to the two-transaction engine.
	if w.full {
		w.ordNewOrder = db.AddOrderedIndex("NEW_ORDER_ORD", w.neworder)
		w.ordOrdersCust = db.AddOrderedIndex("ORDERS_CUST", w.orders)
		w.ordOrderLine = db.AddOrderedIndex("ORDER_LINE_ORD", w.orderline)
	}

	w.populate()

	w.payments = make([]paymentTxn, n)
	w.neworders = make([]newOrderTxn, n)
	w.hseq = make([]uint64, n)
	for i := 0; i < n; i++ {
		w.payments[i].wl = w
		w.neworders[i].wl = w
		w.neworders[i].items = make([]olInput, 0, 15)
	}
	if w.full {
		w.orderstatuses = make([]orderStatusTxn, n)
		w.deliveries = make([]deliveryTxn, n)
		w.stocklevels = make([]stockLevelTxn, n)
		for i := 0; i < n; i++ {
			w.orderstatuses[i].wl = w
			w.deliveries[i].wl = w
			w.stocklevels[i].wl = w
		}
	}
	return w
}

// Key helpers: warehouse ids are 1-based as in the specification.

func warehouseKey(wid uint64) uint64 { return wid }

func districtKey(wid, did uint64) uint64 { return index.CompositeKey(wid, did, 0, 0) }

func customerKey(wid, did, cid uint64) uint64 { return index.CompositeKey(wid, did, cid, 0) }

func itemKey(iid uint64) uint64 { return iid }

func stockKey(wid, iid uint64) uint64 { return index.CompositeKey(wid, 0, iid, 0) }

func orderKey(wid, did, oid uint64) uint64 { return index.CompositeKey(wid, did, oid, 0) }

func orderLineKey(wid, did, oid, ol uint64) uint64 { return index.CompositeKey(wid, did, oid, ol) }

// custOrderKey orders a customer's orders by oid within (wid, did, cid) —
// the ORDERS_CUST ordered-index key OrderStatus range-scans.
func custOrderKey(wid, did, cid, oid uint64) uint64 {
	return index.CompositeKey(wid, did, cid, oid)
}

func historyKey(worker int, seq uint64) uint64 {
	return index.CompositeKey(uint64(worker)+1, 0, 0, 0) | seq
}

// populate loads the initial database per the specification's cardinality
// rules (scaled), single-threaded.
func (w *Workload) populate() {
	cfg := &w.cfg
	rng := rand.New(rand.NewSource(0x79CC))

	slot := 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		row := w.warehouse.LoadRow(slot)
		sc := w.warehouse.Schema
		sc.PutU64(row, WID, uint64(wid))
		sc.PutI64(row, WTax, int64(rng.Intn(2001))) // 0-20.00% in basis points
		sc.PutI64(row, WYTD, 30000000)              // $300,000.00 in cents
		w.idxWarehouse.LoadInsert(warehouseKey(uint64(wid)), slot)
		slot++
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for did := 1; did <= cfg.DistrictsPerWarehouse; did++ {
			row := w.district.LoadRow(slot)
			sc := w.district.Schema
			sc.PutU64(row, DID, uint64(did))
			sc.PutU64(row, DWID, uint64(wid))
			sc.PutI64(row, DTax, int64(rng.Intn(2001)))
			sc.PutI64(row, DYTD, 3000000) // $30,000.00
			sc.PutU64(row, DNextOID, 1)   // no pre-loaded orders
			w.idxDistrict.LoadInsert(districtKey(uint64(wid), uint64(did)), slot)
			slot++
		}
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for did := 1; did <= cfg.DistrictsPerWarehouse; did++ {
			for cid := 1; cid <= cfg.CustomersPerDistrict; cid++ {
				row := w.customer.LoadRow(slot)
				sc := w.customer.Schema
				sc.PutU64(row, CID, uint64(cid))
				sc.PutU64(row, CDID, uint64(did))
				sc.PutU64(row, CWID, uint64(wid))
				sc.PutI64(row, CDiscount, int64(rng.Intn(5001))) // 0-50.00%
				sc.PutI64(row, CCreditLim, 5000000)              // $50,000.00
				sc.PutI64(row, CBalance, -1000)                  // -$10.00
				sc.PutI64(row, CYTDPayment, 1000)
				sc.PutU64(row, CPaymentCnt, 1)
				if rng.Intn(10) == 0 {
					sc.PutU64(row, CCredit, 1) // BC: 10%
				}
				w.idxCustomer.LoadInsert(customerKey(uint64(wid), uint64(did), uint64(cid)), slot)
				slot++
			}
		}
	}

	for iid := 1; iid <= cfg.Items; iid++ {
		row := w.item.LoadRow(iid - 1)
		sc := w.item.Schema
		sc.PutU64(row, IID, uint64(iid))
		sc.PutU64(row, IIMID, uint64(rng.Intn(10000)+1))
		sc.PutI64(row, IPrice, int64(rng.Intn(9901)+100)) // $1.00-$100.00
		w.idxItem.LoadInsert(itemKey(uint64(iid)), iid-1)
	}

	slot = 0
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		for iid := 1; iid <= cfg.Items; iid++ {
			row := w.stock.LoadRow(slot)
			sc := w.stock.Schema
			sc.PutU64(row, SIID, uint64(iid))
			sc.PutU64(row, SWID, uint64(wid))
			sc.PutI64(row, SQuantity, int64(rng.Intn(91)+10)) // 10-100
			w.idxStock.LoadInsert(stockKey(uint64(wid), uint64(iid)), slot)
			slot++
		}
	}
}

// homeWarehouse binds worker p to a warehouse, round-robin (paper §5.6:
// with fewer warehouses than cores, workers share warehouses).
func (w *Workload) homeWarehouse(p rt.Proc) uint64 {
	return uint64(p.ID()%w.cfg.Warehouses) + 1
}

// partitionOf maps a warehouse to an H-STORE partition ("each partition
// consists of all the data for a single warehouse", §5.6; with more
// warehouses than partitions, warehouses fold onto partitions).
func (w *Workload) partitionOf(wid uint64) int {
	return int((wid - 1)) % w.db.NParts
}

// Next implements core.Workload.
func (w *Workload) Next(p rt.Proc) core.Txn {
	if w.full {
		return w.nextFull(p)
	}
	if p.Rand().Float64() < w.cfg.PaymentPct {
		t := &w.payments[p.ID()]
		t.generate(p)
		return t
	}
	t := &w.neworders[p.ID()]
	t.generate(p)
	return t
}

// nextFull draws from the specification's five-transaction mix:
// NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%
// (§5.2.3 minimums, with NewOrder absorbing the remainder).
func (w *Workload) nextFull(p rt.Proc) core.Txn {
	r := p.Rand().Float64() * 100
	switch {
	case r < 43:
		t := &w.payments[p.ID()]
		t.generate(p)
		return t
	case r < 88:
		t := &w.neworders[p.ID()]
		t.generate(p)
		return t
	case r < 92:
		t := &w.orderstatuses[p.ID()]
		t.generate(p)
		return t
	case r < 96:
		t := &w.deliveries[p.ID()]
		t.generate(p)
		return t
	default:
		t := &w.stocklevels[p.ID()]
		t.generate(p)
		return t
	}
}

// txnTypeNames lists the two TPC-C transaction types the paper's mix
// runs (§3.3), in TxnTypeOf index order; the full mix appends the
// remaining three spec transactions.
var (
	txnTypeNames     = []string{"Payment", "NewOrder"}
	txnTypeNamesFull = []string{"Payment", "NewOrder", "OrderStatus", "Delivery", "StockLevel"}
)

// TxnTypes implements core.TxnTyper.
func (w *Workload) TxnTypes() []string {
	if w.full {
		return txnTypeNamesFull
	}
	return txnTypeNames
}

// TxnTypeOf implements core.TxnTyper.
func (w *Workload) TxnTypeOf(t core.Txn) int {
	switch t.(type) {
	case *paymentTxn:
		return 0
	case *newOrderTxn:
		return 1
	case *orderStatusTxn:
		return 2
	case *deliveryTxn:
		return 3
	case *stockLevelTxn:
		return 4
	}
	return -1
}

var (
	_ core.Workload = (*Workload)(nil)
	_ core.TxnTyper = (*Workload)(nil)
)
