// Package tpcc implements the TPC-C workload of §3.3/§5.6: the nine-table
// warehouse-centric order-processing schema, populated per the
// specification (at configurable scale), and the two transactions the
// paper models — Payment and NewOrder, 88% of the standard mix — as a
// "good faith" implementation including remote-warehouse accesses and
// NewOrder's 1% program-logic rollback. Worker threads issue transactions
// with no thinking time, and each worker is bound to a home warehouse
// round-robin (so 4 warehouses at 64 cores means 16 workers per warehouse,
// the Fig. 16 contention regime).
//
// Monetary values are stored as int64 cents; rates (tax, discount) as
// int64 basis points. Wide CHAR fields from the specification are carried
// as padding columns at reduced width so tuple sizes stay realistic
// without exhausting laptop memory (see DESIGN.md's scaling note).
package tpcc

import "abyss1000/internal/storage"

// Column indexes are exported per table as constants so transaction code
// reads like the specification. Each schema's first column is its primary
// id; ancestral foreign keys follow.

// WAREHOUSE columns.
const (
	WID = iota
	WTax
	WYTD
	WPad
)

// DISTRICT columns.
const (
	DID = iota
	DWID
	DTax
	DYTD
	DNextOID
	DPad
)

// DDelivOID is the delivery cursor DISTRICT carries under the full mix
// only (districtSchemaFull): the highest order id Delivery has delivered
// in this district. It replaces the spec's NEW_ORDER deletes — orders at
// most DDelivOID are delivered, orders above it are pending — so the
// engine needs no index delete path. It aliases DPad's position in the
// paper-mix schema; never use it there.
const DDelivOID = DNextOID + 1

// CUSTOMER columns.
const (
	CID = iota
	CDID
	CWID
	CDiscount
	CCreditLim
	CBalance
	CYTDPayment
	CPaymentCnt
	CDeliveryCnt
	CCredit
	CPad
)

// HISTORY columns.
const (
	HCID = iota
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmount
	HPad
)

// NEW-ORDER columns.
const (
	NOOID = iota
	NODID
	NOWID
)

// ORDERS columns.
const (
	OID = iota
	OCID
	ODID
	OWID
	OEntryD
	OCarrierID
	OOLCnt
	OAllLocal
)

// ORDER-LINE columns.
const (
	OLOID = iota
	OLDID
	OLWID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
	OLPad
)

// ITEM columns.
const (
	IID = iota
	IIMID
	IPrice
	IPad
)

// STOCK columns.
const (
	SIID = iota
	SWID
	SQuantity
	SYTD
	SOrderCnt
	SRemoteCnt
	SPad
)

func u64(name string) storage.Col        { return storage.Col{Name: name, Width: 8} }
func pad(name string, n int) storage.Col { return storage.Col{Name: name, Width: n} }

func warehouseSchema() *storage.Schema {
	return storage.NewSchema("WAREHOUSE",
		u64("W_ID"), u64("W_TAX"), u64("W_YTD"), pad("W_PAD", 64))
}

func districtSchema() *storage.Schema {
	return storage.NewSchema("DISTRICT",
		u64("D_ID"), u64("D_W_ID"), u64("D_TAX"), u64("D_YTD"),
		u64("D_NEXT_O_ID"), pad("D_PAD", 64))
}

// districtSchemaFull is districtSchema plus the full-mix delivery
// cursor; the paper mix keeps the original schema so its row size (and
// the golden simulator signature) is untouched.
func districtSchemaFull() *storage.Schema {
	return storage.NewSchema("DISTRICT",
		u64("D_ID"), u64("D_W_ID"), u64("D_TAX"), u64("D_YTD"),
		u64("D_NEXT_O_ID"), u64("D_DELIV_O_ID"), pad("D_PAD", 64))
}

func customerSchema() *storage.Schema {
	return storage.NewSchema("CUSTOMER",
		u64("C_ID"), u64("C_D_ID"), u64("C_W_ID"), u64("C_DISCOUNT"),
		u64("C_CREDIT_LIM"), u64("C_BALANCE"), u64("C_YTD_PAYMENT"),
		u64("C_PAYMENT_CNT"), u64("C_DELIVERY_CNT"), u64("C_CREDIT"),
		pad("C_PAD", 120))
}

func historySchema() *storage.Schema {
	return storage.NewSchema("HISTORY",
		u64("H_C_ID"), u64("H_C_D_ID"), u64("H_C_W_ID"), u64("H_D_ID"),
		u64("H_W_ID"), u64("H_DATE"), u64("H_AMOUNT"), pad("H_PAD", 24))
}

func newOrderSchema() *storage.Schema {
	return storage.NewSchema("NEW_ORDER",
		u64("NO_O_ID"), u64("NO_D_ID"), u64("NO_W_ID"))
}

func ordersSchema() *storage.Schema {
	return storage.NewSchema("ORDERS",
		u64("O_ID"), u64("O_C_ID"), u64("O_D_ID"), u64("O_W_ID"),
		u64("O_ENTRY_D"), u64("O_CARRIER_ID"), u64("O_OL_CNT"), u64("O_ALL_LOCAL"))
}

func orderLineSchema() *storage.Schema {
	return storage.NewSchema("ORDER_LINE",
		u64("OL_O_ID"), u64("OL_D_ID"), u64("OL_W_ID"), u64("OL_NUMBER"),
		u64("OL_I_ID"), u64("OL_SUPPLY_W_ID"), u64("OL_DELIVERY_D"),
		u64("OL_QUANTITY"), u64("OL_AMOUNT"), pad("OL_PAD", 24))
}

func itemSchema() *storage.Schema {
	return storage.NewSchema("ITEM",
		u64("I_ID"), u64("I_IM_ID"), u64("I_PRICE"), pad("I_PAD", 48))
}

func stockSchema() *storage.Schema {
	return storage.NewSchema("STOCK",
		u64("S_I_ID"), u64("S_W_ID"), u64("S_QUANTITY"), u64("S_YTD"),
		u64("S_ORDER_CNT"), u64("S_REMOTE_CNT"), pad("S_PAD", 48))
}
