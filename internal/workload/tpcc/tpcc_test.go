package tpcc_test

import (
	"testing"

	"abyss1000/internal/cc/hstore"
	"abyss1000/internal/cc/mvcc"
	"abyss1000/internal/cc/occ"
	"abyss1000/internal/cc/to"
	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/core"
	"abyss1000/internal/sim"
	"abyss1000/internal/tsalloc"
	"abyss1000/internal/workload/tpcc"
)

func testConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig(warehouses)
	cfg.CustomersPerDistrict = 50
	cfg.Items = 100
	cfg.InsertsPerWorker = 2048
	return cfg
}

func schemeMakers() map[string]func() core.Scheme {
	return map[string]func() core.Scheme{
		"DL_DETECT": func() core.Scheme { return twopl.New(twopl.DLDetect, twopl.Options{}) },
		"NO_WAIT":   func() core.Scheme { return twopl.New(twopl.NoWait, twopl.Options{}) },
		"WAIT_DIE":  func() core.Scheme { return twopl.New(twopl.WaitDie, twopl.Options{}) },
		"TIMESTAMP": func() core.Scheme { return to.New(tsalloc.Atomic) },
		"MVCC":      func() core.Scheme { return mvcc.New(tsalloc.Atomic) },
		"OCC":       func() core.Scheme { return occ.New(tsalloc.Atomic) },
		"HSTORE":    func() core.Scheme { return hstore.New(tsalloc.Atomic) },
	}
}

func TestTPCCSmokeAllSchemes(t *testing.T) {
	for name, mk := range schemeMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			eng := sim.New(8, 11)
			db := core.NewDB(eng)
			wl := tpcc.Build(db, testConfig(4))
			ccfg := core.Config{WarmupCycles: 100_000, MeasureCycles: 500_000, AbortBackoff: 1000}
			res := core.Run(db, mk(), wl, ccfg)
			if res.Commits == 0 {
				t.Fatalf("%s committed no TPC-C transactions: %+v", name, res)
			}
			t.Logf("%s", res.String())
		})
	}
}

// TestTPCCMoneyConservation checks Payment bookkeeping under serializable
// execution: every committed Payment adds `amount` to one warehouse's
// W_YTD, one district's D_YTD and one customer's C_YTD_PAYMENT, so the
// three deltas must agree exactly at quiescence. Run on every scheme whose
// final state lives in the table slab (MVCC keeps it in version chains and
// is covered by the history checker instead).
func TestTPCCMoneyConservation(t *testing.T) {
	for _, name := range []string{"DL_DETECT", "NO_WAIT", "WAIT_DIE", "TIMESTAMP", "OCC", "HSTORE"} {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := sim.New(8, 13)
			db := core.NewDB(eng)
			cfg := testConfig(4)
			cfg.PaymentPct = 1.0 // Payment only
			wl := tpcc.Build(db, cfg)
			res := core.Run(db, schemeMakers()[name](), wl,
				core.Config{WarmupCycles: 0, MeasureCycles: 600_000, AbortBackoff: 500})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}

			wh := db.Catalog.Table("WAREHOUSE")
			var wDelta int64
			for i := 0; i < wh.Loaded(); i++ {
				wDelta += wh.Schema.GetI64(wh.Row(i), tpcc.WYTD) - 30000000
			}
			dist := db.Catalog.Table("DISTRICT")
			var dDelta int64
			for i := 0; i < dist.Loaded(); i++ {
				dDelta += dist.Schema.GetI64(dist.Row(i), tpcc.DYTD) - 3000000
			}
			cust := db.Catalog.Table("CUSTOMER")
			var cDelta, bDelta int64
			for i := 0; i < cust.Loaded(); i++ {
				cDelta += cust.Schema.GetI64(cust.Row(i), tpcc.CYTDPayment) - 1000
				bDelta += cust.Schema.GetI64(cust.Row(i), tpcc.CBalance) - (-1000)
			}
			if wDelta != dDelta || wDelta != cDelta || bDelta != -cDelta {
				t.Fatalf("%s money leak: warehouse %d, district %d, customer ytd %d, balance %d",
					name, wDelta, dDelta, cDelta, bDelta)
			}
			if wDelta == 0 {
				t.Fatal("no money moved despite commits")
			}
		})
	}
}

// TestTPCCNewOrderConsistency checks the D_NEXT_O_ID / ORDERS / ORDER_LINE
// relationship after a NewOrder-only run: for each district, committed
// order ids must be exactly 1..(D_NEXT_O_ID-1) minus user-aborted ones,
// and every committed order has its NEW_ORDER row and OL_CNT order lines.
func TestTPCCNewOrderConsistency(t *testing.T) {
	eng := sim.New(4, 17)
	db := core.NewDB(eng)
	cfg := testConfig(2)
	cfg.PaymentPct = 0 // NewOrder only
	wl := tpcc.Build(db, cfg)
	res := core.Run(db, twopl.New(twopl.NoWait, twopl.Options{}), wl,
		core.Config{WarmupCycles: 0, MeasureCycles: 600_000, AbortBackoff: 500})
	if res.Commits == 0 {
		t.Fatal("no commits")
	}

	orders := db.Catalog.Table("ORDERS")
	ol := db.Catalog.Table("ORDER_LINE")
	no := db.Catalog.Table("NEW_ORDER")

	type dk struct{ w, d uint64 }
	orderCount := map[dk]uint64{}
	olCount := map[dk]uint64{}
	noCount := map[dk]uint64{}
	var wantOL uint64

	// Inserted rows live in per-worker segments; scan the whole slab and
	// skip empty slots (O_W_ID == 0 marks never-written rows since
	// warehouse ids are 1-based).
	for i := orders.Loaded(); i < orders.Capacity(); i++ {
		row := orders.Row(i)
		w := orders.Schema.GetU64(row, tpcc.OWID)
		if w == 0 {
			continue
		}
		k := dk{w, orders.Schema.GetU64(row, tpcc.ODID)}
		orderCount[k]++
		wantOL += orders.Schema.GetU64(row, tpcc.OOLCnt)
	}
	for i := no.Loaded(); i < no.Capacity(); i++ {
		row := no.Row(i)
		w := no.Schema.GetU64(row, tpcc.NOWID)
		if w == 0 {
			continue
		}
		noCount[dk{w, no.Schema.GetU64(row, tpcc.NODID)}]++
	}
	var gotOL uint64
	for i := ol.Loaded(); i < ol.Capacity(); i++ {
		row := ol.Row(i)
		w := ol.Schema.GetU64(row, tpcc.OLWID)
		if w == 0 {
			continue
		}
		olCount[dk{w, ol.Schema.GetU64(row, tpcc.OLDID)}]++
		gotOL++
	}

	for k, n := range orderCount {
		if noCount[k] != n {
			t.Fatalf("district %v: %d orders but %d NEW_ORDER rows", k, n, noCount[k])
		}
	}
	if gotOL != wantOL {
		t.Fatalf("order lines: got %d, want %d (sum of O_OL_CNT)", gotOL, wantOL)
	}
	_ = olCount
}

// TestTPCCFullMixAllSchemes runs the five-transaction spec mix on every
// paper scheme: every transaction type must commit, including the three
// range-scanning additions.
func TestTPCCFullMixAllSchemes(t *testing.T) {
	for name, mk := range schemeMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			eng := sim.New(8, 19)
			db := core.NewDB(eng)
			cfg := testConfig(4)
			cfg.Mix = tpcc.MixFull
			wl := tpcc.Build(db, cfg)
			res := core.Run(db, mk(), wl, core.Config{WarmupCycles: 100_000, MeasureCycles: 3_000_000, AbortBackoff: 1000})
			if res.Commits == 0 {
				t.Fatalf("%s committed no transactions", name)
			}
			if len(res.PerTxn) != 5 {
				t.Fatalf("full mix reports %d txn types, want 5", len(res.PerTxn))
			}
			for _, pt := range res.PerTxn {
				if pt.Commits == 0 {
					t.Errorf("%s: %s never committed", name, pt.Name)
				}
			}
			t.Logf("%s", res.String())
		})
	}
}

// TestTPCCFullMixDeliveryConsistency checks the delivery-cursor protocol
// after a serializable full-mix run: per district the cursor never passes
// D_NEXT_O_ID; orders at most the cursor carry a carrier id and stamped
// delivery dates on every line; orders above it carry neither; and the
// district cursors, customer delivery counts and stamped orders all agree.
func TestTPCCFullMixDeliveryConsistency(t *testing.T) {
	eng := sim.New(8, 23)
	db := core.NewDB(eng)
	cfg := testConfig(2)
	cfg.Mix = tpcc.MixFull
	wl := tpcc.Build(db, cfg)
	res := core.Run(db, twopl.New(twopl.NoWait, twopl.Options{}), wl,
		core.Config{WarmupCycles: 0, MeasureCycles: 6_000_000, AbortBackoff: 500})
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	var delivered uint64
	for _, pt := range res.PerTxn {
		if pt.Name == "Delivery" && pt.Commits == 0 {
			t.Fatal("no Delivery transactions committed; consistency check is vacuous")
		}
	}

	dist := db.Catalog.Table("DISTRICT")
	type dk struct{ w, d uint64 }
	cursor := map[dk]uint64{}
	var cursorSum uint64
	for i := 0; i < dist.Loaded(); i++ {
		row := dist.Row(i)
		k := dk{dist.Schema.GetU64(row, tpcc.DWID), dist.Schema.GetU64(row, tpcc.DID)}
		c := dist.Schema.GetU64(row, tpcc.DDelivOID)
		next := dist.Schema.GetU64(row, tpcc.DNextOID)
		if c >= next {
			t.Fatalf("district %v: delivery cursor %d passed D_NEXT_O_ID %d", k, c, next)
		}
		cursor[k] = c
		cursorSum += c
	}
	if cursorSum == 0 {
		t.Fatal("no district ever delivered despite Delivery commits")
	}

	orders := db.Catalog.Table("ORDERS")
	for i := orders.Loaded(); i < orders.Capacity(); i++ {
		row := orders.Row(i)
		w := orders.Schema.GetU64(row, tpcc.OWID)
		if w == 0 {
			continue
		}
		k := dk{w, orders.Schema.GetU64(row, tpcc.ODID)}
		oid := orders.Schema.GetU64(row, tpcc.OID)
		carrier := orders.Schema.GetU64(row, tpcc.OCarrierID)
		if oid <= cursor[k] {
			if carrier == 0 {
				t.Fatalf("order %v/%d at or below cursor %d has no carrier", k, oid, cursor[k])
			}
			delivered++
		} else if carrier != 0 {
			t.Fatalf("order %v/%d above cursor %d already has carrier %d", k, oid, cursor[k], carrier)
		}
	}
	if delivered != cursorSum {
		t.Fatalf("cursors promise %d delivered orders, ORDERS shows %d", cursorSum, delivered)
	}

	ol := db.Catalog.Table("ORDER_LINE")
	for i := ol.Loaded(); i < ol.Capacity(); i++ {
		row := ol.Row(i)
		w := ol.Schema.GetU64(row, tpcc.OLWID)
		if w == 0 {
			continue
		}
		k := dk{w, ol.Schema.GetU64(row, tpcc.OLDID)}
		oid := ol.Schema.GetU64(row, tpcc.OLOID)
		stamped := ol.Schema.GetU64(row, tpcc.OLDeliveryD) != 0
		if oid <= cursor[k] && !stamped {
			t.Fatalf("line %v/%d below cursor %d not stamped", k, oid, cursor[k])
		}
		if oid > cursor[k] && stamped {
			t.Fatalf("line %v/%d above cursor %d stamped", k, oid, cursor[k])
		}
	}

	cust := db.Catalog.Table("CUSTOMER")
	var delivCnt uint64
	for i := 0; i < cust.Loaded(); i++ {
		delivCnt += cust.Schema.GetU64(cust.Row(i), tpcc.CDeliveryCnt)
	}
	if delivCnt != cursorSum {
		t.Fatalf("customers record %d deliveries, cursors promise %d", delivCnt, cursorSum)
	}

	// Every committed order's NEW_ORDER ordered entry was published.
	ord := db.OrderedIndex("NEW_ORDER_ORD")
	var committedOrders int
	for i := orders.Loaded(); i < orders.Capacity(); i++ {
		if orders.Schema.GetU64(orders.Row(i), tpcc.OWID) != 0 {
			committedOrders++
		}
	}
	if ord.Len() != committedOrders {
		t.Fatalf("NEW_ORDER ordered index has %d entries, ORDERS has %d committed rows", ord.Len(), committedOrders)
	}
}

// TestTPCCUnknownMixPanics pins the Build-time validation.
func TestTPCCUnknownMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown mix")
		}
	}()
	eng := sim.New(2, 1)
	cfg := testConfig(1)
	cfg.Mix = "bogus"
	tpcc.Build(core.NewDB(eng), cfg)
}
