// Package faultinject provides stock fault injectors for the engine's
// overload tier. An injector is a pure function of (worker, now) mapping
// a worker index and its clock to extra stall cycles; the engine polls it
// at transaction boundaries and bills any stall to the Idle component
// before re-checking deadlines and admission queues, so shedding and
// deadline behavior can be exercised under induced failure rather than
// just contention.
//
// Because injectors are stateless value types, the same injector can be
// shared by every worker goroutine (sim or native) without
// synchronization, and two runs with the same configuration inject the
// identical fault schedule. The package deliberately does not import the
// engine: it satisfies core.FaultInjector structurally, keeping the
// dependency one-way.
package faultinject

// StalledWorker freezes one worker for a window of simulated time,
// modeling a thread descheduled by the OS or stuck on a slow syscall.
// Whenever the worker's clock is inside [From, Until) the injector stalls
// it to Until in one step; all other workers are untouched.
type StalledWorker struct {
	Worker int    // worker index to stall
	From   uint64 // window start, in cycles
	Until  uint64 // window end, in cycles
}

// Delay implements the injector contract.
func (f StalledWorker) Delay(worker int, now uint64) uint64 {
	if worker != f.Worker || now < f.From || now >= f.Until {
		return 0
	}
	return f.Until - now
}

// SlowPartition slows a contiguous range of workers — the home workers of
// a degraded partition — by a fixed per-transaction penalty, modeling a
// partition on a slow or failing device. Each affected worker pays Extra
// cycles before every transaction while the window is open.
type SlowPartition struct {
	First int    // first affected worker index
	Count int    // number of affected workers
	Extra uint64 // per-transaction penalty, in cycles
	From  uint64 // window start; zero means from the beginning
	Until uint64 // window end; zero means until the end of the run
}

// Delay implements the injector contract.
func (f SlowPartition) Delay(worker int, now uint64) uint64 {
	if worker < f.First || worker >= f.First+f.Count {
		return 0
	}
	if now < f.From || (f.Until > 0 && now >= f.Until) {
		return 0
	}
	return f.Extra
}

// LatencySpike stalls every worker for Duration cycles at the start of
// each Period, modeling periodic interference such as GC pauses or
// checkpoint flushes. A worker whose clock lands inside a spike is
// stalled to the spike's end.
type LatencySpike struct {
	Period   uint64 // spike cadence, in cycles (> 0)
	Duration uint64 // spike length, in cycles (< Period)
}

// Delay implements the injector contract.
func (f LatencySpike) Delay(worker int, now uint64) uint64 {
	if f.Period == 0 || f.Duration == 0 {
		return 0
	}
	if phase := now % f.Period; phase < f.Duration {
		return f.Duration - phase
	}
	return 0
}

// Multi composes injectors: the delay at any point is the maximum over
// the members, so overlapping faults do not compound into stalls longer
// than the worst individual fault.
type Multi []interface {
	Delay(worker int, now uint64) uint64
}

// Delay implements the injector contract.
func (m Multi) Delay(worker int, now uint64) uint64 {
	var d uint64
	for _, f := range m {
		if v := f.Delay(worker, now); v > d {
			d = v
		}
	}
	return d
}
