package faultinject

import "testing"

func TestStalledWorker(t *testing.T) {
	f := StalledWorker{Worker: 2, From: 100, Until: 500}
	if f.Delay(1, 200) != 0 {
		t.Fatal("other workers must not stall")
	}
	if f.Delay(2, 50) != 0 || f.Delay(2, 500) != 0 || f.Delay(2, 900) != 0 {
		t.Fatal("stall outside the window")
	}
	if got := f.Delay(2, 100); got != 400 {
		t.Fatalf("delay at window start = %d, want 400", got)
	}
	if got := f.Delay(2, 499); got != 1 {
		t.Fatalf("delay near window end = %d, want 1", got)
	}
}

func TestSlowPartition(t *testing.T) {
	f := SlowPartition{First: 4, Count: 2, Extra: 300, From: 1000, Until: 2000}
	if f.Delay(3, 1500) != 0 || f.Delay(6, 1500) != 0 {
		t.Fatal("workers outside the range must not slow down")
	}
	if f.Delay(4, 500) != 0 || f.Delay(5, 2000) != 0 {
		t.Fatal("penalty outside the window")
	}
	if f.Delay(4, 1500) != 300 || f.Delay(5, 1000) != 300 {
		t.Fatal("affected workers should pay the per-txn penalty")
	}
	// Zero Until means open-ended.
	open := SlowPartition{First: 0, Count: 1, Extra: 10}
	if open.Delay(0, 1<<40) != 10 {
		t.Fatal("zero Until should mean until the end of the run")
	}
}

func TestLatencySpike(t *testing.T) {
	f := LatencySpike{Period: 1000, Duration: 100}
	if f.Delay(0, 500) != 0 {
		t.Fatal("no spike between periods")
	}
	if got := f.Delay(0, 2000); got != 100 {
		t.Fatalf("delay at spike start = %d, want 100", got)
	}
	if got := f.Delay(0, 2040); got != 60 {
		t.Fatalf("delay mid-spike = %d, want 60", got)
	}
	var zero LatencySpike
	if zero.Delay(0, 0) != 0 {
		t.Fatal("zero-value spike must be inert")
	}
}

func TestMultiTakesMax(t *testing.T) {
	m := Multi{
		StalledWorker{Worker: 0, From: 0, Until: 1000},
		LatencySpike{Period: 100, Duration: 50},
	}
	if got := m.Delay(0, 10); got != 990 {
		t.Fatalf("overlapping faults should take the max: got %d, want 990", got)
	}
	if got := m.Delay(1, 10); got != 40 {
		t.Fatalf("spike alone for worker 1: got %d, want 40", got)
	}
	if m.Delay(1, 60) != 0 {
		t.Fatal("no active fault should mean zero delay")
	}
}
