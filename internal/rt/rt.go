// Package rt defines the runtime abstraction that lets the same DBMS and
// concurrency-control code execute on two very different substrates:
//
//   - internal/sim: a deterministic discrete-event simulator of a tiled
//     many-core CPU (the stand-in for the Graphite simulator the paper used),
//     scaling to 1024 simulated cores on a laptop; and
//   - internal/native: real goroutines with real sync primitives, used for
//     the paper's Fig. 3 "simulator vs. real hardware" comparison.
//
// The contract: DBMS code never uses sync/atomic directly. All shared
// mutable state is accessed only while holding an rt.Latch, all shared
// monotonic counters are rt.Counter, and blocking uses Park/Unpark with
// binary-permit semantics (an Unpark delivered before Park is not lost).
// Under the simulator these primitives advance a simulated cycle clock and
// enforce a global simulated-time order; under the native runtime they map
// to sync.Mutex, atomic.AddUint64 and channel-based parking.
package rt

import (
	"math/rand"

	"abyss1000/internal/stats"
)

// Proc is a logical core / worker thread. Exactly one transaction executes
// on a Proc at a time (the paper's DBMS maps one worker thread per core).
//
// Tick and Sync both bill cycles to a stats component and advance the local
// clock. The difference matters only under simulation: Sync additionally
// establishes a global ordering point, guaranteeing that any shared-state
// access performed after Sync returns happens in simulated-time order with
// respect to all other cores' Sync'd accesses. Latch/Counter operations Sync
// internally, so plain DBMS code only needs explicit Sync when it touches
// shared state outside a latch (which it should not).
type Proc interface {
	// ID returns the core/worker id in [0, Runtime.NumProcs()).
	ID() int

	// Now returns the local clock in cycles (simulated) or an
	// implementation-defined monotonic value (native).
	Now() uint64

	// Tick advances the local clock by cycles, billing them to c.
	Tick(c stats.Component, cycles uint64)

	// Sync is Tick plus a global ordering point (see type comment).
	//
	// Implementations may elide the yield when no other Proc could
	// legally run before the caller (under simulation: when the live
	// event-queue minimum is after the caller's (cycle, id) pair). The
	// elision is unobservable — the schedule, and therefore every
	// simulated result, is identical to always yielding — so callers
	// must not rely on Sync giving other Procs a turn unless one is
	// actually due.
	Sync(c stats.Component, cycles uint64)

	// Park blocks until another Proc calls Runtime.Unpark on this Proc.
	// If a permit is already pending, Park consumes it and returns
	// immediately. Blocked time is billed to c.
	Park(c stats.Component)

	// ParkTimeout is Park with a deadline, and reports whether the Proc
	// was unparked (true) or timed out (false). A pending permit after a
	// timeout is left in place for the next Park to consume (callers that
	// re-check state under a latch are immune to the race either way).
	ParkTimeout(c stats.Component, cycles uint64) bool

	// Rand returns this Proc's private deterministic RNG.
	Rand() *rand.Rand

	// Stats returns this Proc's time breakdown. Implementations batch
	// the cycles billed by Tick/Sync/Park between Stats calls and flush
	// them here, so all reads of the breakdown — and all attempt
	// transitions (BeginAttempt/CommitAttempt/AbortAttempt) — must go
	// through Stats rather than a cached *stats.Breakdown.
	Stats() *stats.Breakdown

	// MemRead models reading bytes of shared data homed at key (a NUCA
	// L2 access whose latency grows with mesh distance under simulation;
	// negligible under the native runtime). It never blocks: correctness
	// of the data read is the concurrency-control scheme's business.
	MemRead(c stats.Component, key uint64, bytes uint64)

	// MemWrite models writing bytes of shared data homed at key.
	MemWrite(c stats.Component, key uint64, bytes uint64)
}

// Latch is a short-duration mutual-exclusion lock protecting shared state
// (per-tuple CC metadata, index buckets, partition queues). Latches are not
// reentrant. Holders must not Park while holding a latch.
type Latch interface {
	// Acquire blocks until the latch is held, billing acquisition cost
	// and any contention stall to c.
	Acquire(p Proc, c stats.Component)
	// Release releases the latch. The billed cost is implementation
	// defined (typically a store + line transfer on the simulator).
	Release(p Proc, c stats.Component)
}

// Counter is a shared word supporting atomic fetch-add, the primitive
// behind the "atomic addition" timestamp allocator and the paper's Fig. 6
// micro-benchmark. It also supports plain stores (used for per-worker
// published values such as MVCC's active-transaction timestamps).
type Counter interface {
	// Add atomically adds delta and returns the new value, billing the
	// operation (including coherence stalls under simulation) to c.
	Add(p Proc, c stats.Component, delta uint64) uint64
	// Load returns the current value. Under simulation this is a read of
	// a (possibly remote) cache line.
	Load(p Proc, c stats.Component) uint64
	// Store overwrites the value.
	Store(p Proc, c stats.Component, v uint64)
}

// Runtime creates Procs and shared primitives and executes worker bodies.
type Runtime interface {
	// NumProcs returns the number of logical cores.
	NumProcs() int

	// NewLatch allocates a latch. key identifies the protected object
	// (the simulator uses it to place the latch's cache line on a home
	// tile deterministically).
	NewLatch(key uint64) Latch

	// NewCounter allocates a shared counter placed by key.
	NewCounter(key uint64) Counter

	// NewHardwareCounter allocates the paper's proposed center-of-chip
	// hardware counter: a fetch-add that serializes for a single cycle at
	// a central location (§4.3). Under the native runtime this is an
	// ordinary atomic counter.
	NewHardwareCounter(key uint64) Counter

	// Unpark delivers a wakeup permit to target. waker is the Proc on
	// whose behalf the wake occurs (it pays the signalling cost); it may
	// be nil for external wakes.
	Unpark(waker Proc, target Proc)

	// Run executes body on every Proc concurrently (in simulated or real
	// time) and returns when all bodies have returned.
	Run(body func(p Proc))

	// Frequency returns simulated core frequency in Hz (cycles per
	// second) used to convert cycle counts into txn/s figures.
	Frequency() float64
}
