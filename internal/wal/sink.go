package wal

import (
	"errors"
	"os"
	"sync"
)

// Sink is the byte-level destination of the log stream. Write appends;
// Sync makes everything written so far durable. Implementations must
// tolerate Write/Sync after a failure by keeping returning the error
// (sticky), because group commit retries nothing — a failed log is a
// crashed log.
type Sink interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FileSink appends to a real file and fsyncs on Sync — the native
// runtime's durable backend.
type FileSink struct {
	f *os.File
}

// CreateFile creates (truncating) a file-backed sink and writes the
// stream magic.
func CreateFile(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(Magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{f: f}, nil
}

// Write implements Sink.
func (s *FileSink) Write(p []byte) (int, error) { return s.f.Write(p) }

// Sync implements Sink with a real fsync.
func (s *FileSink) Sync() error { return s.f.Sync() }

// Close implements Sink.
func (s *FileSink) Close() error { return s.f.Close() }

// MemSink buffers the stream in memory: the accounting-only backend for
// simulated runs and the capture device for the crash-injection tests.
// It is safe for concurrent use (the native flusher writes from its own
// goroutine while tests read Bytes).
type MemSink struct {
	mu    sync.Mutex
	buf   []byte
	syncs int
}

// NewMemSink returns an in-memory sink primed with the stream magic.
func NewMemSink() *MemSink {
	return &MemSink{buf: append([]byte(nil), Magic[:]...)}
}

// Write implements Sink.
func (s *MemSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.buf = append(s.buf, p...)
	s.mu.Unlock()
	return len(p), nil
}

// Sync implements Sink (a memory sink is "durable" by fiat; it counts
// syncs so tests can assert group-commit batching).
func (s *MemSink) Sync() error {
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *MemSink) Close() error { return nil }

// Bytes returns a copy of the stream written so far.
func (s *MemSink) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}

// Syncs returns how many Sync calls the sink has absorbed.
func (s *MemSink) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// ErrInjected is the sticky error a FaultSink returns once its fault
// point has fired.
var ErrInjected = errors.New("wal: injected crash")

// FaultSink is the pluggable fault point of the crash-injection harness:
// it forwards writes to an underlying sink until FailAfter total bytes
// have passed, then writes the partial remainder of the current write
// (the torn tail) and fails every subsequent operation. Killing the
// stream mid-record this way is exactly what a machine crash during a
// group-commit write does to a real log file.
type FaultSink struct {
	mu        sync.Mutex
	under     Sink
	remaining int64
	dead      bool
}

// NewFaultSink wraps under with a fault point failAfter bytes into the
// stream (counted from the wrap, so wrap before writing anything for an
// absolute offset). failAfter < 0 never fires.
func NewFaultSink(under Sink, failAfter int64) *FaultSink {
	return &FaultSink{under: under, remaining: failAfter}
}

// Write implements Sink, tearing the write that crosses the fault point.
func (s *FaultSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, ErrInjected
	}
	if s.remaining < 0 || int64(len(p)) <= s.remaining {
		if s.remaining >= 0 {
			s.remaining -= int64(len(p))
		}
		return s.under.Write(p)
	}
	// The fault fires inside this write: persist the torn prefix.
	n := int(s.remaining)
	s.remaining = 0
	s.dead = true
	if n > 0 {
		s.under.Write(p[:n])
	}
	return n, ErrInjected
}

// Sync implements Sink.
func (s *FaultSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrInjected
	}
	return s.under.Sync()
}

// Close implements Sink (closing the wreckage is allowed).
func (s *FaultSink) Close() error { return s.under.Close() }

// Failed reports whether the fault point has fired.
func (s *FaultSink) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}
