package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleStream builds a stream exercising every record type and returns it
// with the records it encodes.
func sampleStream() ([]byte, []Commit) {
	commits := []Commit{
		{Worker: 3, Ver: 0, Updates: []Update{
			{Table: 0, Slot: 17, Image: []byte("row-seventeen---")},
			{Table: 1, Slot: 2, Image: bytes.Repeat([]byte{0xab}, 100)},
		}},
		{Worker: 0, Ver: 42, Inserts: []Insert{
			{Table: 2, Index: 1, Key: 0xdeadbeef, Image: []byte("inserted row")},
			{Table: 2, Index: 1, Key: 7, OIndex: 2, OKey: 0xfeedface, Image: []byte("ordered row")},
		}},
		{Worker: 7, Ver: 9, Updates: []Update{{Table: 0, Slot: 0, Image: nil}}},
	}
	s := append([]byte(nil), Magic[:]...)
	s = AppendEpoch(s, 1)
	s = AppendCkptBegin(s, 5)
	s = AppendCkptRows(s, &CkptRows{Table: 0, Start: 8, Count: 3, RowSize: 4, Rows: []byte("aaaabbbbcccc")})
	s = AppendCkptAlloc(s, &CkptAlloc{Table: 0, Next: []int{10, 20, 30}})
	s = AppendCkptIndex(s, &CkptIndex{Index: 2, Entries: []CkptIndexEntry{{Key: 9, Slot: 4}, {Key: 11, Slot: 5}}})
	s = AppendCkptIndex(s, &CkptIndex{Index: 0, Ordered: true, Entries: []CkptIndexEntry{{Key: 3, Slot: 6}}})
	s = AppendCkptEnd(s, 5)
	for i := range commits {
		s = AppendCommit(s, &commits[i])
	}
	return s, commits
}

func TestRoundTrip(t *testing.T) {
	stream, commits := sampleStream()
	recs, info, err := Scan(stream)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if info.TornBytes != 0 || info.Complete != int64(len(stream)) {
		t.Fatalf("clean stream reported torn: %+v", info)
	}
	wantTypes := []byte{TypeEpoch, TypeCkptBegin, TypeCkptRows, TypeCkptAlloc, TypeCkptIndex, TypeCkptOIndex, TypeCkptEnd, TypeCommit, TypeCommit, TypeCommit}
	if len(recs) != len(wantTypes) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantTypes))
	}
	for i, r := range recs {
		if r.Type != wantTypes[i] {
			t.Fatalf("record %d type = %d, want %d", i, r.Type, wantTypes[i])
		}
	}
	if recs[0].ID != 1 || recs[1].ID != 5 || recs[6].ID != 5 {
		t.Fatalf("delimiter IDs wrong: %d %d %d", recs[0].ID, recs[1].ID, recs[5].ID)
	}
	cr := recs[2].Rows
	if cr.Table != 0 || cr.Start != 8 || cr.Count != 3 || cr.RowSize != 4 || string(cr.Rows) != "aaaabbbbcccc" {
		t.Fatalf("ckpt rows mismatch: %+v", cr)
	}
	if !reflect.DeepEqual(recs[3].Alloc, &CkptAlloc{Table: 0, Next: []int{10, 20, 30}}) {
		t.Fatalf("ckpt alloc mismatch: %+v", recs[3].Alloc)
	}
	if !reflect.DeepEqual(recs[4].Index, &CkptIndex{Index: 2, Entries: []CkptIndexEntry{{Key: 9, Slot: 4}, {Key: 11, Slot: 5}}}) {
		t.Fatalf("ckpt index mismatch: %+v", recs[4].Index)
	}
	if !reflect.DeepEqual(recs[5].Index, &CkptIndex{Index: 0, Ordered: true, Entries: []CkptIndexEntry{{Key: 3, Slot: 6}}}) {
		t.Fatalf("ckpt ordered index mismatch: %+v", recs[5].Index)
	}
	for i, want := range commits {
		got := recs[7+i].Commit
		if got.Worker != want.Worker || got.Ver != want.Ver {
			t.Fatalf("commit %d header mismatch: %+v", i, got)
		}
		if len(got.Updates) != len(want.Updates) || len(got.Inserts) != len(want.Inserts) {
			t.Fatalf("commit %d shape mismatch: %+v", i, got)
		}
		for j := range want.Updates {
			g, w := got.Updates[j], want.Updates[j]
			if g.Table != w.Table || g.Slot != w.Slot || !bytes.Equal(g.Image, w.Image) {
				t.Fatalf("commit %d update %d mismatch", i, j)
			}
		}
		for j := range want.Inserts {
			g, w := got.Inserts[j], want.Inserts[j]
			if g.Table != w.Table || g.Index != w.Index || g.Key != w.Key || g.OIndex != w.OIndex || g.OKey != w.OKey || !bytes.Equal(g.Image, w.Image) {
				t.Fatalf("commit %d insert %d mismatch", i, j)
			}
		}
	}
	// Record extents tile the stream exactly.
	off := int64(len(Magic))
	for i, r := range recs {
		if r.Off != off {
			t.Fatalf("record %d Off = %d, want %d", i, r.Off, off)
		}
		off = r.End
	}
	if off != int64(len(stream)) {
		t.Fatalf("extents end at %d, stream is %d", off, len(stream))
	}
}

// TestScanTruncation truncates the sample stream at EVERY byte offset and
// asserts Scan returns exactly the records whose frames fit entirely in
// the prefix — the core torn-tail property recovery depends on.
func TestScanTruncation(t *testing.T) {
	stream, _ := sampleStream()
	full, _, err := Scan(stream)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(Magic); cut <= len(stream); cut++ {
		want := 0
		for _, r := range full {
			if r.End <= int64(cut) {
				want++
			}
		}
		recs, info, err := Scan(stream[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != want {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(recs), want)
		}
		if int(info.Complete)+int(info.TornBytes) != cut {
			t.Fatalf("cut %d: info doesn't cover prefix: %+v", cut, info)
		}
		if want > 0 && info.Complete != recs[want-1].End {
			t.Fatalf("cut %d: Complete=%d, last End=%d", cut, info.Complete, recs[want-1].End)
		}
	}
}

func TestScanRejectsBadMagic(t *testing.T) {
	if _, _, err := Scan([]byte("NOTAWAL!extra")); err != ErrNotWAL {
		t.Fatalf("bad magic: err = %v, want ErrNotWAL", err)
	}
	if _, _, err := Scan(nil); err != ErrNotWAL {
		t.Fatalf("nil stream: err = %v, want ErrNotWAL", err)
	}
}

func TestScanStopsOnCorruption(t *testing.T) {
	stream, _ := sampleStream()
	recs, _, _ := Scan(stream)
	// Flip a byte inside the 3rd record's body: scan keeps the first two.
	mut := append([]byte(nil), stream...)
	mut[recs[2].Off+6] ^= 0xff
	got, info, err := Scan(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("corrupt 3rd record: got %d records, want 2", len(got))
	}
	if info.Complete != recs[1].End {
		t.Fatalf("Complete = %d, want %d", info.Complete, recs[1].End)
	}
	// A zero length prefix also stops the scan cleanly.
	zl := append(append([]byte(nil), stream[:recs[1].End]...), 0, 0, 0, 0)
	got, _, err = Scan(zl)
	if err != nil || len(got) != 2 {
		t.Fatalf("zero-length frame: %d records, err %v", len(got), err)
	}
}
