// Package wal implements the durability tier's write-ahead log: a framed,
// CRC-protected record stream with group commit, table checkpointing and
// crash recovery. The package is storage-agnostic — records carry table
// and index ordinals plus raw row images; internal/core owns the mapping
// back onto live tables during replay.
//
// The log is an append-only byte stream. A crash is modeled as a
// truncation of that stream at an arbitrary byte offset (including inside
// a record — a torn tail write); Scan detects the torn suffix via the
// length/CRC framing and recovery replays exactly the complete prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record types. The type byte is part of the CRC-protected body.
const (
	// TypeCommit is one committed transaction's after-images: its
	// in-place/buffered updates and its deferred inserts.
	TypeCommit byte = 1

	// TypeEpoch marks the start of a measurement run. Version floors
	// (the timestamp guards used for T/O replay ordering) reset at an
	// epoch boundary, because each run draws timestamps from a fresh
	// allocator.
	TypeEpoch byte = 2

	// TypeCkptBegin opens a checkpoint; its ID must be matched by a
	// TypeCkptEnd for the checkpoint to be complete (a crash mid-
	// checkpoint leaves it incomplete and recovery ignores its span as a
	// starting point, falling back to the previous one).
	TypeCkptBegin byte = 3

	// TypeCkptRows carries a chunk of contiguous row images of one table.
	TypeCkptRows byte = 4

	// TypeCkptAlloc records a table's per-worker insert-segment
	// allocation cursors, so recovery restores slot allocation state.
	TypeCkptAlloc byte = 5

	// TypeCkptIndex carries runtime-inserted index entries (key → slot)
	// of one index; setup-time entries are rebuilt by workload setup.
	TypeCkptIndex byte = 6

	// TypeCkptEnd closes the checkpoint with the matching ID.
	TypeCkptEnd byte = 7

	// TypeCkptOIndex carries runtime-inserted ordered-index entries
	// (key → slot) of one ordered index, mirroring TypeCkptIndex.
	TypeCkptOIndex byte = 8
)

// Magic is the 8-byte stream header identifying a WAL and its format
// version.
var Magic = [8]byte{'A', 'B', 'Y', 'W', 'A', 'L', '0', '2'}

// Frame layout: u32 body length | body (type byte + payload) | u32 CRC32
// (IEEE) over the body. A record is complete only when all length+8 bytes
// are present and the CRC matches; anything else is a torn tail.
const frameOverhead = 8

// maxBody bounds a single record body. It exists to reject absurd length
// prefixes during scanning (corrupt or adversarial input) before any
// allocation or long skip happens.
const maxBody = 1 << 26 // 64 MiB

// ErrNotWAL is returned by Scan when the stream does not start with the
// WAL magic.
var ErrNotWAL = errors.New("wal: stream does not start with WAL magic")

// Update is one after-image of an existing row.
type Update struct {
	Table int    // storage table ordinal (Table.ID)
	Slot  int    // row slot within the table
	Image []byte // full row image after the transaction
}

// Insert is one deferred insert: replay allocates the slot from the
// recorded worker's insert segment (reproducing the live allocation
// order) unless Key is already present, in which case the existing slot
// is overwritten — which makes replay idempotent.
type Insert struct {
	Table int    // storage table ordinal
	Index int    // index ordinal (registration order in the DB)
	Key   uint64 // index key
	Image []byte // full row image

	// OIndex is 1 + the ordered-index ordinal when the insert also
	// publishes an ordered-index entry under OKey; 0 (the zero value)
	// means the insert targets the hash index only.
	OIndex int
	OKey   uint64
}

// Commit is one committed transaction's log record.
type Commit struct {
	// Worker is the committing worker/core id; insert slots are
	// re-allocated from this worker's segments during replay.
	Worker int

	// Ver orders same-slot updates during replay. Timestamp-ordered
	// schemes (TIMESTAMP, MVCC) set it to the transaction timestamp:
	// their same-slot final value is decided by timestamp order, not
	// commit order, so replay applies an update only when Ver is at
	// least the slot's last applied version. Lock- and validation-
	// ordered schemes leave it zero, which makes the guard vacuous and
	// replay order equal to log order (their commit points are logged
	// under the locks/latches that decide serialization).
	Ver uint64

	Updates []Update
	Inserts []Insert
}

// Checkpoint payloads, decoded forms.

// CkptRows is a chunk of contiguous rows of one table.
type CkptRows struct {
	Table   int
	Start   int    // first slot of the chunk
	Count   int    // rows in the chunk
	RowSize int    // bytes per row
	Rows    []byte // Count*RowSize bytes
}

// CkptAlloc is one table's insert-segment cursors.
type CkptAlloc struct {
	Table int
	Next  []int // per-worker next-free slot
}

// CkptIndexEntry is one runtime-inserted index mapping.
type CkptIndexEntry struct {
	Key  uint64
	Slot int
}

// CkptIndex is a chunk of one index's runtime-inserted entries. With
// Ordered set it describes an ordered index (TypeCkptOIndex) and Index is
// the ordered-index ordinal.
type CkptIndex struct {
	Index   int
	Ordered bool
	Entries []CkptIndexEntry
}

// Record is one decoded log record. Exactly one of the payload pointers
// is non-nil, selected by Type; Epoch and the checkpoint delimiters carry
// only their ID.
type Record struct {
	Type byte

	// Off and End are the record's byte extent in the stream (frame
	// included). End of record i is Off of record i+1; truncating the
	// stream at End keeps records 0..i intact.
	Off int64
	End int64

	// ID is the checkpoint id for TypeCkptBegin/TypeCkptEnd and the
	// epoch sequence for TypeEpoch.
	ID uint64

	Commit *Commit
	Rows   *CkptRows
	Alloc  *CkptAlloc
	Index  *CkptIndex
}

// appendU32/appendU64 are little-endian primitive writers.
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendCommit encodes c as a framed record appended to dst and returns
// the extended slice. The encoding is length-prefixed throughout, so a
// decoder never reads past its frame.
func AppendCommit(dst []byte, c *Commit) []byte {
	body := encodeCommitBody(nil, c)
	return appendFrame(dst, body)
}

// encodeCommitBody renders the CRC-protected body of a commit record.
func encodeCommitBody(body []byte, c *Commit) []byte {
	body = append(body, TypeCommit)
	body = appendU32(body, uint32(c.Worker))
	body = appendU64(body, c.Ver)
	body = appendU32(body, uint32(len(c.Updates)))
	for i := range c.Updates {
		u := &c.Updates[i]
		body = appendU32(body, uint32(u.Table))
		body = appendU32(body, uint32(u.Slot))
		body = appendU32(body, uint32(len(u.Image)))
		body = append(body, u.Image...)
	}
	body = appendU32(body, uint32(len(c.Inserts)))
	for i := range c.Inserts {
		in := &c.Inserts[i]
		body = appendU32(body, uint32(in.Table))
		body = appendU32(body, uint32(in.Index))
		body = appendU64(body, in.Key)
		body = appendU32(body, uint32(in.OIndex))
		body = appendU64(body, in.OKey)
		body = appendU32(body, uint32(len(in.Image)))
		body = append(body, in.Image...)
	}
	return body
}

// AppendEpoch encodes an epoch marker.
func AppendEpoch(dst []byte, id uint64) []byte {
	return appendFrame(dst, appendU64([]byte{TypeEpoch}, id))
}

// AppendCkptBegin encodes a checkpoint-begin delimiter.
func AppendCkptBegin(dst []byte, id uint64) []byte {
	return appendFrame(dst, appendU64([]byte{TypeCkptBegin}, id))
}

// AppendCkptEnd encodes a checkpoint-end delimiter.
func AppendCkptEnd(dst []byte, id uint64) []byte {
	return appendFrame(dst, appendU64([]byte{TypeCkptEnd}, id))
}

// AppendCkptRows encodes a row-chunk record.
func AppendCkptRows(dst []byte, r *CkptRows) []byte {
	body := []byte{TypeCkptRows}
	body = appendU32(body, uint32(r.Table))
	body = appendU32(body, uint32(r.Start))
	body = appendU32(body, uint32(r.Count))
	body = appendU32(body, uint32(r.RowSize))
	body = append(body, r.Rows...)
	return appendFrame(dst, body)
}

// AppendCkptAlloc encodes a segment-cursor record.
func AppendCkptAlloc(dst []byte, a *CkptAlloc) []byte {
	body := []byte{TypeCkptAlloc}
	body = appendU32(body, uint32(a.Table))
	body = appendU32(body, uint32(len(a.Next)))
	for _, n := range a.Next {
		body = appendU64(body, uint64(n))
	}
	return appendFrame(dst, body)
}

// AppendCkptIndex encodes an index-entry chunk (hash or ordered, by
// x.Ordered).
func AppendCkptIndex(dst []byte, x *CkptIndex) []byte {
	typ := TypeCkptIndex
	if x.Ordered {
		typ = TypeCkptOIndex
	}
	body := []byte{typ}
	body = appendU32(body, uint32(x.Index))
	body = appendU32(body, uint32(len(x.Entries)))
	for _, e := range x.Entries {
		body = appendU64(body, e.Key)
		body = appendU64(body, uint64(e.Slot))
	}
	return appendFrame(dst, body)
}

// appendFrame wraps body in the length/CRC frame.
func appendFrame(dst, body []byte) []byte {
	dst = appendU32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return appendU32(dst, crc32.ChecksumIEEE(body))
}

// reader is a bounds-checked little-endian cursor over one record body.
// All reads report failure instead of panicking, which is what makes the
// decoder safe on arbitrary (fuzzed, torn, corrupt) input.
type reader struct {
	b   []byte
	pos int
	bad bool
}

func (r *reader) u32() uint32 {
	if r.bad || r.pos+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.bad || r.pos+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.bad || n < 0 || r.pos+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return v
}

// done reports whether the body was consumed exactly and without error.
func (r *reader) done() bool { return !r.bad && r.pos == len(r.b) }

// decodeBody parses one CRC-validated record body into rec. It returns
// false when the body is structurally invalid (a corrupt record whose CRC
// nevertheless matched cannot crash the decoder; it just fails decode).
func decodeBody(body []byte, rec *Record) bool {
	if len(body) == 0 {
		return false
	}
	rec.Type = body[0]
	r := reader{b: body, pos: 1}
	switch rec.Type {
	case TypeCommit:
		c := &Commit{}
		c.Worker = int(r.u32())
		c.Ver = r.u64()
		nu := r.u32()
		if r.bad || nu > uint32(len(body)) {
			return false
		}
		c.Updates = make([]Update, 0, nu)
		for i := uint32(0); i < nu; i++ {
			var u Update
			u.Table = int(r.u32())
			u.Slot = int(r.u32())
			u.Image = r.bytes(int(r.u32()))
			if r.bad {
				return false
			}
			c.Updates = append(c.Updates, u)
		}
		ni := r.u32()
		if r.bad || ni > uint32(len(body)) {
			return false
		}
		c.Inserts = make([]Insert, 0, ni)
		for i := uint32(0); i < ni; i++ {
			var in Insert
			in.Table = int(r.u32())
			in.Index = int(r.u32())
			in.Key = r.u64()
			in.OIndex = int(r.u32())
			in.OKey = r.u64()
			in.Image = r.bytes(int(r.u32()))
			if r.bad {
				return false
			}
			c.Inserts = append(c.Inserts, in)
		}
		if !r.done() {
			return false
		}
		rec.Commit = c
		return true

	case TypeEpoch, TypeCkptBegin, TypeCkptEnd:
		rec.ID = r.u64()
		return r.done()

	case TypeCkptRows:
		cr := &CkptRows{}
		cr.Table = int(r.u32())
		cr.Start = int(r.u32())
		cr.Count = int(r.u32())
		cr.RowSize = int(r.u32())
		if r.bad || cr.Count < 0 || cr.RowSize < 0 {
			return false
		}
		total := int64(cr.Count) * int64(cr.RowSize)
		if total > int64(len(body)) {
			return false
		}
		cr.Rows = r.bytes(int(total))
		if !r.done() {
			return false
		}
		rec.Rows = cr
		return true

	case TypeCkptAlloc:
		a := &CkptAlloc{}
		a.Table = int(r.u32())
		n := r.u32()
		if r.bad || n > uint32(len(body)) {
			return false
		}
		a.Next = make([]int, 0, n)
		for i := uint32(0); i < n; i++ {
			a.Next = append(a.Next, int(r.u64()))
		}
		if !r.done() {
			return false
		}
		rec.Alloc = a
		return true

	case TypeCkptIndex, TypeCkptOIndex:
		x := &CkptIndex{}
		x.Ordered = rec.Type == TypeCkptOIndex
		x.Index = int(r.u32())
		n := r.u32()
		if r.bad || n > uint32(len(body)) {
			return false
		}
		x.Entries = make([]CkptIndexEntry, 0, n)
		for i := uint32(0); i < n; i++ {
			var e CkptIndexEntry
			e.Key = r.u64()
			e.Slot = int(r.u64())
			if r.bad {
				return false
			}
			x.Entries = append(x.Entries, e)
		}
		if !r.done() {
			return false
		}
		rec.Index = x
		return true

	default:
		return false
	}
}

// ScanInfo describes how a Scan ended.
type ScanInfo struct {
	// Complete is the byte offset just past the last complete record
	// (== len(stream) when nothing was torn).
	Complete int64

	// TornBytes is how many trailing bytes were dropped as an
	// incomplete or corrupt tail (a torn group-commit write).
	TornBytes int64
}

// Scan decodes every complete record of stream (which must start with
// Magic). It stops — without error — at the first incomplete or corrupt
// frame: a crash can tear the tail of the last group write, and the
// complete prefix is exactly the durable state. Scan never panics on any
// input.
func Scan(stream []byte) ([]Record, ScanInfo, error) {
	if len(stream) < len(Magic) || string(stream[:len(Magic)]) != string(Magic[:]) {
		return nil, ScanInfo{}, ErrNotWAL
	}
	var recs []Record
	off := int64(len(Magic))
	for {
		rest := stream[off:]
		if len(rest) < 4 {
			break
		}
		blen := binary.LittleEndian.Uint32(rest)
		if blen == 0 || blen > maxBody {
			break // corrupt length prefix: treat as torn tail
		}
		end := off + 4 + int64(blen) + 4
		if end > int64(len(stream)) {
			break // frame extends past the stream: torn tail
		}
		body := stream[off+4 : off+4+int64(blen)]
		want := binary.LittleEndian.Uint32(stream[end-4:])
		if crc32.ChecksumIEEE(body) != want {
			break // torn or corrupt body
		}
		var rec Record
		if !decodeBody(body, &rec) {
			break // CRC collided with garbage; stop at the clean prefix
		}
		rec.Off = off
		rec.End = end
		recs = append(recs, rec)
		off = end
	}
	return recs, ScanInfo{Complete: off, TornBytes: int64(len(stream)) - off}, nil
}
