package wal

import (
	"bytes"
	"testing"
)

// FuzzScan feeds arbitrary byte streams to the decoder. The properties:
// Scan never panics, never reads past the input, and on any prefix of a
// valid stream returns records whose re-encoding is bit-identical to the
// bytes it attributed to them (frames tile the complete prefix).
func FuzzScan(f *testing.F) {
	stream, _ := sampleStream()
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	f.Add([]byte(nil))
	f.Add(Magic[:])
	f.Add(append(append([]byte(nil), Magic[:]...), 0xff, 0xff, 0xff, 0x7f))
	corrupt := append([]byte(nil), stream...)
	corrupt[20] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, info, err := Scan(data)
		if err != nil {
			if err != ErrNotWAL {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if info.Complete+info.TornBytes != int64(len(data)) {
			t.Fatalf("scan info does not cover input: %+v vs %d", info, len(data))
		}
		off := int64(len(Magic))
		for i, r := range recs {
			if r.Off != off || r.End <= r.Off || r.End > int64(len(data)) {
				t.Fatalf("record %d extent [%d,%d) invalid at off %d", i, r.Off, r.End, off)
			}
			off = r.End
		}
		if off != info.Complete {
			t.Fatalf("extents end at %d, Complete=%d", off, info.Complete)
		}
		// Valid commit records round-trip byte-exactly.
		for _, r := range recs {
			if r.Type != TypeCommit {
				continue
			}
			re := AppendCommit(nil, r.Commit)
			if !bytes.Equal(re, data[r.Off:r.End]) {
				t.Fatalf("commit record did not round-trip")
			}
		}
	})
}

// FuzzCommitRoundTrip drives structured commit records from raw fuzz input
// and asserts encode→scan→re-encode is a fixed point.
func FuzzCommitRoundTrip(f *testing.F) {
	f.Add(uint16(3), uint64(42), []byte("images and keys and slots"))
	f.Add(uint16(0), uint64(0), []byte{})
	f.Fuzz(func(t *testing.T, worker uint16, ver uint64, blob []byte) {
		c := &Commit{Worker: int(worker), Ver: ver}
		// Carve blob into a few update images and insert keys.
		for i := 0; i+2 <= len(blob) && i < 12; i += 2 {
			n := int(blob[i]) % (len(blob) + 1)
			if blob[i+1]%2 == 0 {
				c.Updates = append(c.Updates, Update{Table: int(blob[i] % 4), Slot: int(blob[i+1]), Image: blob[:n]})
			} else {
				c.Inserts = append(c.Inserts, Insert{Table: int(blob[i] % 4), Index: int(blob[i+1] % 3), Key: uint64(blob[i]) << i, Image: blob[:n]})
			}
		}
		stream := AppendCommit(append([]byte(nil), Magic[:]...), c)
		recs, info, err := Scan(stream)
		if err != nil || len(recs) != 1 || info.TornBytes != 0 {
			t.Fatalf("scan of encoded commit: %d recs, %+v, %v", len(recs), info, err)
		}
		re := AppendCommit(append([]byte(nil), Magic[:]...), recs[0].Commit)
		if !bytes.Equal(re, stream) {
			t.Fatal("re-encoded commit differs")
		}
	})
}
