package wal

import (
	"sync"
	"time"
)

// Config tunes a Writer.
type Config struct {
	// Async selects real group commit: appends buffer in memory and a
	// background flusher writes + fsyncs them in groups (the native
	// runtime's mode). When false the writer is synchronous: every
	// append reaches the sink immediately and "group commit" is only
	// modeled, via the GroupTxns fsync cadence — the simulator's
	// accounting-only mode, which keeps the log content deterministic.
	Async bool

	// GroupTimeout is the async group-commit window: after the first
	// append of a group the flusher waits this long for followers
	// before writing and fsyncing the batch. Zero means DefaultGroupTimeout.
	GroupTimeout time.Duration

	// GroupBytes flushes an async group early once this many bytes are
	// pending. Zero means DefaultGroupBytes.
	GroupBytes int

	// GroupTxns is the synchronous mode's modeled group size: one Sync
	// per this many appended records. Zero means DefaultGroupTxns.
	GroupTxns int
}

// Defaults for Config's zero values.
const (
	DefaultGroupTimeout = 100 * time.Microsecond
	DefaultGroupBytes   = 64 << 10
	DefaultGroupTxns    = 8
)

// Writer appends framed records to a Sink with group commit. All methods
// are safe for concurrent use. Errors are sticky: after a sink failure
// (an injected crash, a full disk) the log is dead — appends are dropped,
// WaitDurable unblocks, and Err reports the failure. In-memory
// transaction state is NOT rolled back on log failure; the crash harness
// keeps the engine alive precisely to compare its state against what the
// torn log recovers to.
type Writer struct {
	mu   sync.Mutex
	cond *sync.Cond
	sink Sink
	cfg  Config

	seq     uint64 // records appended (LSN of the newest record)
	durable uint64 // newest LSN known flushed+synced
	bytes   uint64 // payload bytes appended (excluding dropped ones)
	syncs   uint64 // sync operations issued (modeled or real)
	err     error

	// Synchronous mode state.
	sinceSync int

	// Async mode state.
	pending []byte
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	closed  bool
}

// NewWriter wraps sink. The sink must already contain the stream magic
// (CreateFile and NewMemSink both prime it).
func NewWriter(sink Sink, cfg Config) *Writer {
	if cfg.GroupTimeout <= 0 {
		cfg.GroupTimeout = DefaultGroupTimeout
	}
	if cfg.GroupBytes <= 0 {
		cfg.GroupBytes = DefaultGroupBytes
	}
	if cfg.GroupTxns <= 0 {
		cfg.GroupTxns = DefaultGroupTxns
	}
	w := &Writer{sink: sink, cfg: cfg}
	w.cond = sync.NewCond(&w.mu)
	if cfg.Async {
		w.kick = make(chan struct{}, 1)
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w
}

// Async reports whether the writer runs real (background) group commit.
func (w *Writer) Async() bool { return w.cfg.Async }

// Config returns the writer's effective configuration (defaults applied).
func (w *Writer) Config() Config {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg
}

// SetGrouping adjusts the group-commit parameters on a live writer (the
// run configuration can override the open-time defaults). Non-positive
// values leave the corresponding parameter unchanged.
func (w *Writer) SetGrouping(groupTxns int, groupTimeout time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if groupTxns > 0 {
		w.cfg.GroupTxns = groupTxns
	}
	if groupTimeout > 0 {
		w.cfg.GroupTimeout = groupTimeout
	}
}

// Append adds one fully-framed record (from AppendCommit et al.) to the
// log and returns its LSN, plus whether this append sealed a modeled
// group (synchronous mode only — the caller bills the fsync cost to the
// sealing transaction). On a dead log the record is dropped but the LSN
// still advances, so callers never block on a crashed stream.
func (w *Writer) Append(frame []byte) (lsn uint64, sealed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	lsn = w.seq
	if w.err != nil {
		return lsn, false
	}
	if w.cfg.Async {
		was := len(w.pending)
		w.pending = append(w.pending, frame...)
		w.bytes += uint64(len(frame))
		if was == 0 || len(w.pending) >= w.cfg.GroupBytes {
			select {
			case w.kick <- struct{}{}:
			default:
			}
		}
		return lsn, false
	}
	if _, err := w.sink.Write(frame); err != nil {
		w.fail(err)
		return lsn, false
	}
	w.bytes += uint64(len(frame))
	w.durable = w.seq
	w.sinceSync++
	if w.sinceSync >= w.cfg.GroupTxns {
		w.sinceSync = 0
		w.syncs++
		sealed = true
		if err := w.sink.Sync(); err != nil {
			w.fail(err)
		}
	}
	return lsn, sealed
}

// WaitDurable blocks until the record at lsn is flushed and fsynced (or
// the log dies). Synchronous writers are durable at append, so it returns
// immediately there.
func (w *Writer) WaitDurable(lsn uint64) {
	if !w.cfg.Async {
		return
	}
	w.mu.Lock()
	for w.durable < lsn && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// fail records the sink failure and releases every waiter. Caller holds mu.
func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
}

// Err returns the sticky sink error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Seq returns the LSN of the newest appended record.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Bytes returns the record bytes appended (frames included, magic and
// dropped post-crash records excluded).
func (w *Writer) Bytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Syncs returns how many sync operations the writer has issued.
func (w *Writer) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Flush forces everything appended so far to the sink, synced, and
// returns the sticky error state. Used by checkpoints and Close.
func (w *Writer) Flush() error {
	w.mu.Lock()
	if w.err != nil {
		defer w.mu.Unlock()
		return w.err
	}
	if !w.cfg.Async {
		if w.sinceSync > 0 {
			w.sinceSync = 0
			w.syncs++
			if err := w.sink.Sync(); err != nil {
				w.fail(err)
			}
		}
		defer w.mu.Unlock()
		return w.err
	}
	upto := w.seq
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	w.WaitDurable(upto)
	return w.Err()
}

// Close flushes, stops the flusher and closes the sink. Safe to call once.
func (w *Writer) Close() error {
	if w.cfg.Async {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return w.err
		}
		w.mu.Unlock()
		close(w.stop)
		<-w.done // final flush has happened
		w.mu.Lock()
		w.closed = true
		w.cond.Broadcast()
		w.mu.Unlock()
	} else {
		w.Flush()
		w.mu.Lock()
		w.closed = true
		w.mu.Unlock()
	}
	cerr := w.sink.Close()
	if err := w.Err(); err != nil {
		return err
	}
	return cerr
}

// flushLoop is the async group-commit daemon: woken by the first append
// of a group, it waits the group window (backing off to fully idle when
// nothing is pending), then writes and fsyncs the whole batch and wakes
// the committers waiting on it.
func (w *Writer) flushLoop() {
	defer close(w.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-w.kick:
		case <-w.stop:
			w.flushOnce()
			return
		}
		// Group window: let followers pile on before paying the fsync.
		w.mu.Lock()
		full := len(w.pending) >= w.cfg.GroupBytes
		window := w.cfg.GroupTimeout
		w.mu.Unlock()
		if !full {
			timer.Reset(window)
			select {
			case <-timer.C:
			case <-w.stop:
				if !timer.Stop() {
					<-timer.C
				}
				w.flushOnce()
				return
			}
		}
		w.flushOnce()
	}
}

// flushOnce writes and syncs everything pending.
func (w *Writer) flushOnce() {
	w.mu.Lock()
	if w.err != nil || len(w.pending) == 0 {
		w.mu.Unlock()
		return
	}
	batch := w.pending
	upto := w.seq
	w.pending = nil
	w.mu.Unlock()

	_, werr := w.sink.Write(batch)
	if werr == nil {
		werr = w.sink.Sync()
	}

	w.mu.Lock()
	if werr != nil {
		w.fail(werr)
	} else {
		w.durable = upto
		w.syncs++
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}
