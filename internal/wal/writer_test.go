package wal

import (
	"errors"
	"testing"
	"time"
)

func commitFrame(worker int, n int) []byte {
	return AppendCommit(nil, &Commit{Worker: worker, Updates: []Update{{Table: 0, Slot: n, Image: []byte{byte(n)}}}})
}

func TestSyncWriterGroupCadence(t *testing.T) {
	sink := NewMemSink()
	w := NewWriter(sink, Config{GroupTxns: 4})
	var sealed int
	for i := 0; i < 10; i++ {
		lsn, s := w.Append(commitFrame(0, i))
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if s {
			sealed++
			if (i+1)%4 != 0 {
				t.Fatalf("append %d sealed a group, cadence is 4", i+1)
			}
		}
		w.WaitDurable(lsn) // must not block in sync mode
	}
	if sealed != 2 || sink.Syncs() != 2 {
		t.Fatalf("sealed=%d sinkSyncs=%d, want 2/2", sealed, sink.Syncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Syncs() != 3 { // close flushes the 2 unsealed records
		t.Fatalf("syncs after close = %d, want 3", sink.Syncs())
	}
	recs, info, err := Scan(sink.Bytes())
	if err != nil || info.TornBytes != 0 || len(recs) != 10 {
		t.Fatalf("scan: %d recs, info %+v, err %v", len(recs), info, err)
	}
}

func TestAsyncWriterGroupCommit(t *testing.T) {
	sink := NewMemSink()
	w := NewWriter(sink, Config{Async: true, GroupTimeout: time.Millisecond})
	const n = 50
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		lsns[i], _ = w.Append(commitFrame(1, i))
	}
	for _, lsn := range lsns {
		w.WaitDurable(lsn)
	}
	if syncs := sink.Syncs(); syncs == 0 || syncs >= n {
		t.Fatalf("sink syncs = %d, want batched (0 < syncs < %d)", syncs, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := Scan(sink.Bytes())
	if err != nil || info.TornBytes != 0 {
		t.Fatalf("scan: info %+v, err %v", info, err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Commit == nil || r.Commit.Updates[0].Slot != i {
			t.Fatalf("record %d out of order: %+v", i, r.Commit)
		}
	}
}

func TestAsyncWriterConcurrentAppend(t *testing.T) {
	sink := NewMemSink()
	w := NewWriter(sink, Config{Async: true, GroupTimeout: 200 * time.Microsecond})
	const workers, per = 8, 40
	done := make(chan struct{})
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				lsn, _ := w.Append(commitFrame(g, i))
				w.WaitDurable(lsn)
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := Scan(sink.Bytes())
	if err != nil || info.TornBytes != 0 || len(recs) != workers*per {
		t.Fatalf("scan: %d recs, info %+v, err %v", len(recs), info, err)
	}
}

func TestWriterFaultIsSticky(t *testing.T) {
	mem := NewMemSink()
	// Fail ~60 bytes into the record stream (magic already written by mem).
	fault := NewFaultSink(mem, 60)
	w := NewWriter(fault, Config{GroupTxns: 2})
	var firstErrAt uint64
	for i := 0; i < 20; i++ {
		lsn, _ := w.Append(commitFrame(0, i))
		if w.Err() != nil && firstErrAt == 0 {
			firstErrAt = lsn
		}
	}
	if firstErrAt == 0 {
		t.Fatal("fault never fired")
	}
	if !errors.Is(w.Err(), ErrInjected) {
		t.Fatalf("Err() = %v, want ErrInjected", w.Err())
	}
	if !fault.Failed() {
		t.Fatal("fault sink not marked failed")
	}
	if w.Seq() != 20 {
		t.Fatalf("seq = %d, want 20 (LSNs advance on a dead log)", w.Seq())
	}
	w.WaitDurable(20) // must not hang on a dead log
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close = %v, want ErrInjected", err)
	}
	// The torn stream still scans cleanly up to the tear.
	recs, info, err := Scan(mem.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.TornBytes == 0 {
		t.Fatal("expected a torn tail")
	}
	if len(recs) == 0 && int64(len(mem.Bytes())) > int64(len(Magic)) && info.Complete != int64(len(Magic)) {
		t.Fatalf("inconsistent scan of torn stream: %+v", info)
	}
}

func TestAsyncWriterFaultUnblocksWaiters(t *testing.T) {
	mem := NewMemSink()
	fault := NewFaultSink(mem, 10)
	w := NewWriter(fault, Config{Async: true, GroupTimeout: 100 * time.Microsecond})
	lsn, _ := w.Append(commitFrame(0, 0))
	donec := make(chan struct{})
	go func() {
		w.WaitDurable(lsn)
		close(donec)
	}()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable hung after injected crash")
	}
	if !errors.Is(w.Err(), ErrInjected) {
		t.Fatalf("Err() = %v, want ErrInjected", w.Err())
	}
	w.Close()
}

func TestWriterFlushIdempotent(t *testing.T) {
	sink := NewMemSink()
	w := NewWriter(sink, Config{GroupTxns: 100})
	w.Append(commitFrame(0, 0))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Syncs() != 1 {
		t.Fatalf("double flush synced %d times, want 1", sink.Syncs())
	}
}
