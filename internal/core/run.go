package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
	"abyss1000/internal/wal"
)

// Config controls one experiment run.
type Config struct {
	// WarmupCycles is discarded ramp-up time: statistics and counters
	// reset once a worker's clock passes it (§3.2: statistics "are
	// collected after a warm-up period").
	WarmupCycles uint64

	// MeasureCycles is the measurement window after warmup. Throughput
	// is commits / (MeasureCycles / frequency).
	MeasureCycles uint64

	// AbortBackoff is the mean randomized restart penalty after a CC
	// abort, in cycles. Zero disables backoff.
	AbortBackoff uint64

	// SampleEvery, when positive and an Observer is passed to
	// RunObserved, divides the measurement window into intervals of this
	// many cycles and emits one Sample per interval. Sampling is
	// accounting-only: it never perturbs the schedule or the final
	// Result. Zero disables sampling.
	SampleEvery uint64

	// Capture, when true, attaches a history capture (DB.Cap) recording
	// every committed transaction's read and write versions for the
	// serializability checker (VerifyCapture). Accounting-only, like the
	// WAL: the schedule and the Result are identical either way. Capture
	// expects a freshly populated database, where version 0 uniformly
	// means "untouched since load".
	Capture bool

	// Arrivals switches the run from the paper's closed loop to an
	// open-loop arrival process (see Arrivals). The zero value keeps the
	// closed loop, byte-identical to previous releases.
	Arrivals Arrivals

	// QueueDepth bounds each worker's admission queue in open-loop runs.
	// Arrivals that find the queue full are shed (counted, never
	// executed). Zero means unbounded — admission control off.
	QueueDepth int

	// ShedTypes lists transaction type names (comma-separated, resolved
	// against the workload's TxnTyper) to shed preferentially once a
	// worker's queue passes its high-water mark. Empty disables priority
	// shedding. A string rather than a slice so Config stays comparable.
	ShedTypes string

	// Deadline abandons a transaction that has not committed within this
	// many cycles of its latency origin (arrival time in open loop,
	// first-attempt start in closed loop): it aborts as ErrDeadline
	// instead of retrying forever. Zero disables deadlines.
	Deadline uint64

	// RetryLimit abandons a transaction after this many failed attempts
	// (RetryLimit 1 means no retries). Zero means unlimited retries.
	RetryLimit int

	// BackoffCap, when positive, turns the fixed mean-AbortBackoff
	// restart penalty into capped exponential backoff: the mean doubles
	// with each consecutive failure up to BackoffCap. Jitter stays
	// deterministic — it draws from the worker's seeded RNG.
	BackoffCap uint64

	// Fault, when non-nil, injects stalls at transaction boundaries (see
	// FaultInjector). Billed to the Idle component.
	Fault FaultInjector

	// Stop, when non-nil, is polled at transaction boundaries: once set,
	// workers finish their in-flight transaction and exit the run early.
	// The Result covers the window served so far. This is the engine end
	// of graceful SIGINT handling.
	Stop *atomic.Bool

	// Source, when non-nil, switches the run to remote request dispatch:
	// workers pull externally submitted Requests from the source instead
	// of drawing work themselves (see serve.go). Mutually exclusive with
	// Arrivals — admission queues and shedding live upstream in the
	// session that owns the source, so QueueDepth/ShedTypes do not apply
	// either. An interface, so Config stays comparable when unset.
	Source RequestSource
}

// DefaultConfig returns a window sized for quick experiments: 0.4 ms of
// simulated warmup and 1.6 ms of measurement.
func DefaultConfig() Config {
	return Config{
		WarmupCycles:  400_000,
		MeasureCycles: 1_600_000,
		AbortBackoff:  1000,
	}
}

// Validate rejects configurations that cannot produce a meaningful
// measurement. A zero MeasureCycles window would end the run before any
// transaction commits and make every per-second rate divide by zero, and
// a sampling period yielding more than MaxSampleIntervals intervals
// would make the sampler's preallocation unbounded.
func (c Config) Validate() error {
	if c.MeasureCycles == 0 {
		return errors.New("core: Config.MeasureCycles must be positive")
	}
	if c.SampleEvery > 0 {
		if n := (c.MeasureCycles + c.SampleEvery - 1) / c.SampleEvery; n > MaxSampleIntervals {
			return fmt.Errorf("core: Config.SampleEvery %d yields %d sample intervals over MeasureCycles %d; at most %d are allowed — use a coarser sampling period", c.SampleEvery, n, c.MeasureCycles, MaxSampleIntervals)
		}
	}
	if err := c.Arrivals.validate(); err != nil {
		return err
	}
	if c.QueueDepth < 0 {
		return errors.New("core: Config.QueueDepth must not be negative")
	}
	if c.RetryLimit < 0 {
		return errors.New("core: Config.RetryLimit must not be negative")
	}
	if !c.Arrivals.Open() {
		if c.QueueDepth > 0 && c.Source == nil {
			return errors.New("core: Config.QueueDepth requires an open-loop arrival process (set Arrivals)")
		}
		if c.ShedTypes != "" {
			return errors.New("core: Config.ShedTypes requires an open-loop arrival process (set Arrivals)")
		}
	}
	if c.Source != nil {
		if c.Arrivals.Open() {
			return errors.New("core: Config.Source and Config.Arrivals are mutually exclusive — remote requests arrive from the source, not a synthetic process")
		}
		if c.QueueDepth > 0 {
			return errors.New("core: Config.QueueDepth does not apply with Config.Source — admission queues live in the serving session")
		}
	}
	return nil
}

// Result aggregates one run. The json tags define the stable
// machine-readable serialization emitted by `abyss-bench -json`/`-csv`
// and round-tripped by encoding/json; renaming them is a breaking format
// change.
type Result struct {
	Scheme        string          `json:"scheme"`
	Workers       int             `json:"workers"`
	Commits       uint64          `json:"commits"`
	Aborts        uint64          `json:"aborts"`
	Tuples        uint64          `json:"tuples"`
	MeasureCycles uint64          `json:"measure_cycles"`
	Frequency     float64         `json:"frequency_hz"`
	Breakdown     stats.Breakdown `json:"breakdown"`

	// Latency is the commit-latency histogram over the measurement
	// window (cycles from first-attempt start to commit, including
	// restarts and backoff; in open-loop runs the origin is the arrival
	// time, so queueing delay counts too). Latency.Count() equals
	// Commits.
	Latency stats.Histogram `json:"latency"`

	// Offered, Shed and Deadlined are the open-loop overload counters
	// (always zero in closed-loop runs): arrivals offered inside the
	// measurement window, arrivals rejected by admission control, and
	// transactions abandoned past their deadline or retry budget.
	Offered   uint64 `json:"offered"`
	Shed      uint64 `json:"shed"`
	Deadlined uint64 `json:"deadlined"`

	// QueueDepth is the admission-queue-depth histogram, one observation
	// per arrival ingested inside the measurement window. Empty in
	// closed-loop runs.
	QueueDepth stats.Histogram `json:"queue_depth"`

	// PerTxn breaks the run down by transaction type when the workload
	// implements TxnTyper, in TxnTypes order; nil otherwise. Commits and
	// Aborts sum to the aggregate fields above (transactions the typer
	// does not recognise — TxnTypeOf < 0 — count only in the aggregate).
	PerTxn []TxnStats `json:"per_txn,omitempty"`
}

// perSec converts an event count over the measurement window into a rate.
// A zero window or frequency (a zero-value or hand-built Result) yields 0
// rather than NaN/Inf, so rates stay safe to print and serialize.
func (r Result) perSec(events uint64) float64 {
	if r.MeasureCycles == 0 || r.Frequency <= 0 {
		return 0
	}
	return float64(events) / (float64(r.MeasureCycles) / r.Frequency)
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	return r.perSec(r.Commits)
}

// TuplesPerSec returns committed tuple accesses per second (Fig. 12's
// y-axis: "the number of tuples accessed per second").
func (r Result) TuplesPerSec() float64 {
	return r.perSec(r.Tuples)
}

// AbortFraction returns aborted attempts / all attempts.
func (r Result) AbortFraction() float64 {
	total := r.Commits + r.Aborts
	if total == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(total)
}

// AbortsPerSec returns the abort rate as events per second (Fig. 5's right
// axis reports an absolute abort rate).
func (r Result) AbortsPerSec() float64 {
	return r.perSec(r.Aborts)
}

// OfferedTPS returns the offered load in transactions per second (zero
// for closed-loop runs, where load is not externally offered).
func (r Result) OfferedTPS() float64 {
	return r.perSec(r.Offered)
}

// GoodputTPS returns committed transactions per second — the useful
// output under offered load. Numerically equal to Throughput; the
// distinct name keeps knee charts (goodput vs offered) self-describing.
func (r Result) GoodputTPS() float64 {
	return r.perSec(r.Commits)
}

// ShedFraction returns the fraction of offered arrivals rejected by
// admission control, or 0 when nothing was offered.
func (r Result) ShedFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// String summarizes the run on one line.
func (r Result) String() string {
	return fmt.Sprintf("%-10s %4d cores  %10.0f txn/s  abort %5.1f%%  [%s]",
		r.Scheme, r.Workers, r.Throughput(), r.AbortFraction()*100, stats.FormatBreakdown(&r.Breakdown))
}

// Run executes workload wl on db under scheme, measuring for cfg's window,
// and returns the aggregated result. The database must already be
// populated; Run calls scheme.Setup, spawns one worker per core, and drives
// each worker's transaction stream until the simulated (or wall-clock)
// deadline passes.
func Run(db *DB, scheme Scheme, wl Workload, cfg Config) Result {
	return RunObserved(db, scheme, wl, cfg, nil)
}

// RunObserved is Run with in-flight interval sampling: when obs is
// non-nil and cfg.SampleEvery is positive, one Sample per interval of the
// measurement window is delivered to obs during the run (see Observer for
// the calling contract). Sampling is accounting-only — the returned
// Result, and under the simulator the entire schedule, are identical to
// an unobserved Run.
func RunObserved(db *DB, scheme Scheme, wl Workload, cfg Config, obs Observer) Result {
	if err := cfg.Validate(); err != nil {
		// Inside the engine an invalid window is a programming error;
		// the public abyss API validates and returns errors instead.
		panic(err)
	}
	scheme.Setup(db)
	if cfg.Capture {
		// Snapshot the post-population state as version 0 of every slot.
		db.Cap = newCapture(db)
	} else {
		db.Cap = nil
	}
	if db.Wal != nil {
		// Open the run's log span. Replay resets its timestamp version
		// floors at the epoch boundary, because this run's transactions
		// draw from a fresh timestamp allocator.
		db.walEpoch++
		db.Wal.Append(wal.AppendEpoch(nil, db.walEpoch))
	}
	n := db.RT.NumProcs()
	var smp *sampler
	if obs != nil && cfg.SampleEvery > 0 {
		smp = newSampler(cfg, n, db.RT.Frequency(), obs)
	}
	typer, _ := wl.(TxnTyper)
	open := cfg.Arrivals.Open()
	var shedMask uint64
	if open {
		shedMask = shedMaskFor(typer, cfg.ShedTypes)
	}
	workers := make([]*Worker, n)
	db.RT.Run(func(p rt.Proc) {
		w := newWorker(p, db, scheme)
		w.BindWorkload(wl)
		w.smp = smp
		w.deadline = cfg.Deadline
		w.retryLimit = cfg.RetryLimit
		w.backoffCap = cfg.BackoffCap
		workers[p.ID()] = w
		warmEnd := cfg.WarmupCycles
		end := warmEnd + cfg.MeasureCycles
		switch {
		case cfg.Source != nil:
			w.serveRemote(wl, cfg.Source, cfg, warmEnd, end)
		case open:
			w.serveOpen(wl, cfg, shedMask, warmEnd, end, n)
		default:
			w.serveClosed(wl, cfg, warmEnd, end)
		}
		w.finishSampling()
	})

	res := Result{
		Scheme:        scheme.Name(),
		Workers:       n,
		MeasureCycles: cfg.MeasureCycles,
		Frequency:     db.RT.Frequency(),
	}
	if typer != nil {
		names := typer.TxnTypes()
		res.PerTxn = make([]TxnStats, len(names))
		for i, name := range names {
			res.PerTxn[i].Name = name
		}
	}
	for _, w := range workers {
		res.Commits += w.Count.Commits
		res.Aborts += w.Count.Aborts
		res.Tuples += w.Count.Tuples
		res.Offered += w.Count.Offered
		res.Shed += w.Count.Shed
		res.Deadlined += w.Count.Deadlined
		res.Breakdown.Merge(w.P.Stats())
		res.Latency.Merge(&w.Lat)
		res.QueueDepth.Merge(&w.QDepth)
		for i := range w.perTxn {
			res.PerTxn[i].merge(&w.perTxn[i])
		}
	}
	return res
}
