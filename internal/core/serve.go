// Remote request dispatch: the engine end of the serving tier.
//
// The paper's loops generate their own work — closed-loop workers draw
// the next transaction the moment the previous one finishes, open-loop
// workers synthesize arrivals from a seeded stochastic process. A
// network front door inverts that: work originates outside the engine,
// one request at a time, and each request wants an answer. Config.Source
// is that inversion point. When set, every worker turns into a dispatch
// loop pulling Requests from the source, executing them through the
// same runTxn retry machinery as the synthetic loops (so deadlines,
// retry budgets and capped backoff behave identically), and reporting
// each outcome through the request's completion callback.
//
// Like the overload tier, all of this is gated: with Source nil none of
// this code runs and the closed-loop schedule stays byte-identical to
// previous releases.
package core

import (
	"errors"

	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

// Request is one externally submitted transaction awaiting execution.
type Request struct {
	// Prepare materializes the transaction on the serving worker's
	// goroutine (so per-worker instance reuse and RNG determinism are
	// preserved). A nil Prepare means "draw from the run's workload" —
	// the zero-allocation fast path for anonymous invocations. A
	// Prepare error rejects the request: Done receives the error and
	// nothing is executed or counted.
	Prepare func(p rt.Proc) (Txn, error)

	// Arrival is the request's arrival timestamp on the runtime clock —
	// the latency origin, so time spent queued counts against the
	// commit latency exactly as in the open-loop tier.
	Arrival uint64

	// Deadline is the absolute cycle past which the request is
	// abandoned: expired-in-queue requests complete as ErrDeadline
	// without executing, and admitted ones inherit the remaining budget
	// as their runTxn deadline. Zero falls back to Config.Deadline.
	Deadline uint64

	// Done, when non-nil, is invoked exactly once on the worker
	// goroutine with the outcome: nil for a commit, ErrUserAbort for a
	// program-logic rollback (completed work), ErrDeadline for an
	// abandoned transaction, or the Prepare error for a rejection. It
	// must return promptly — it runs inside the serving loop.
	Done func(err error)
}

// finish reports the request's outcome to its submitter.
func (r *Request) finish(err error) {
	if r.Done != nil {
		r.Done(err)
	}
}

// RequestSource feeds workers externally submitted requests. Next blocks
// until a request is available or the source is drained; after it
// reports ok == false the worker exits its serving loop. Next is called
// concurrently from every worker goroutine and must be safe for that.
// Time spent blocked in Next is billed to the Idle component.
type RequestSource interface {
	Next(p rt.Proc) (req Request, ok bool)
}

// ErrSourceClosed classifies a request that was still queued when its
// source drained: the serving tier completes such requests with this
// error instead of executing them.
var ErrSourceClosed = errors.New("core: request source closed before execution")

// serveRemote is the request-dispatch worker body: pull a request, drop
// it if its deadline expired while queued, otherwise materialize the
// transaction and run it through the standard retry loop with the
// arrival time as the latency origin. The blocking pull replaces the
// open-loop tier's synthetic arrival generator; admission control and
// shedding live upstream in the session that owns the source.
func (w *Worker) serveRemote(wl Workload, src RequestSource, cfg Config, warmEnd, end uint64) {
	p := w.P
	stop := cfg.Stop
	resetDone := false
	for {
		now := p.Now()
		if now >= end {
			break
		}
		if stop != nil && stop.Load() {
			break
		}
		if !resetDone && now >= warmEnd {
			p.Stats().Reset()
			w.resetWindow()
			resetDone = true
		}
		req, ok := src.Next(p)
		waited := p.Now()
		if d := waited - now; d > 0 {
			p.Tick(stats.Idle, d)
		}
		if !ok {
			break
		}
		now = waited
		if req.Arrival > now {
			// Submitters stamp arrivals from their own reading of the
			// runtime clock; clamp the sub-microsecond skew so latency
			// arithmetic stays non-negative.
			req.Arrival = now
		}
		inWin := now >= warmEnd && now < end
		if req.Deadline > 0 && now >= req.Deadline {
			// Expired while queued: abandon without executing, exactly
			// like an open-loop arrival whose deadline passes in the
			// admission queue.
			if inWin {
				w.Count.Deadlined++
				w.observeDeadlined(now)
			}
			req.finish(ErrDeadline)
			continue
		}
		w.deadline = cfg.Deadline
		if req.Deadline > req.Arrival {
			w.deadline = req.Deadline - req.Arrival
		}
		var txn Txn
		if req.Prepare == nil {
			txn = wl.Next(p)
		} else {
			var err error
			txn, err = req.Prepare(p)
			if err != nil {
				req.finish(err)
				continue
			}
		}
		req.finish(w.runTxn(txn, req.Arrival, warmEnd, end, cfg.AbortBackoff))
	}
}
