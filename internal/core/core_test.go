package core_test

import (
	"strings"
	"testing"

	"abyss1000/internal/cc/twopl"
	"abyss1000/internal/cctest"
	"abyss1000/internal/core"
	"abyss1000/internal/rt"
	"abyss1000/internal/stats"
)

func TestResultMath(t *testing.T) {
	r := core.Result{
		Commits:       1500,
		Aborts:        500,
		Tuples:        24_000,
		MeasureCycles: 1_000_000,
		Frequency:     1e9,
	}
	if got := r.Throughput(); got != 1.5e9/1e3 {
		t.Fatalf("throughput = %v", got)
	}
	if got := r.TuplesPerSec(); got != 24e9/1e3 {
		t.Fatalf("tuples/s = %v", got)
	}
	if got := r.AbortFraction(); got != 0.25 {
		t.Fatalf("abort fraction = %v", got)
	}
	if got := r.AbortsPerSec(); got != 5e8/1e3 {
		t.Fatalf("aborts/s = %v", got)
	}
	empty := core.Result{MeasureCycles: 1, Frequency: 1}
	if empty.AbortFraction() != 0 {
		t.Fatal("empty abort fraction")
	}
}

func TestResultString(t *testing.T) {
	r := core.Result{Scheme: "NO_WAIT", Workers: 8, Commits: 100, MeasureCycles: 1_000_000, Frequency: 1e9}
	s := r.String()
	for _, want := range []string{"NO_WAIT", "8 cores", "txn/s", "abort"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String() missing %q: %s", want, s)
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := core.DefaultConfig()
	if cfg.MeasureCycles == 0 || cfg.WarmupCycles == 0 {
		t.Fatal("default config has zero windows")
	}
}

func TestDBIndexPanicsOnMissing(t *testing.T) {
	f := cctest.NewFixture(1, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.DB.Index("NO_SUCH_INDEX")
}

// TestDeferredInsertVisibility: a staged insert is invisible until commit
// and visible (row + index) after.
func TestDeferredInsertVisibility(t *testing.T) {
	f := cctest.NewFixture(1, 4, 1)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(f.DB)
	idx := f.DB.Index("C_PK")
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		err := w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			row := tx.InsertRow(idx, 1000)
			f.Table.Schema.PutU64(row, 0, 1000)
			f.Table.Schema.PutU64(row, 1, 77)
			// Invisible inside the transaction (deferred-insert
			// protocol: no index entry yet).
			if _, ok := tx.Lookup(idx, 1000); ok {
				t.Error("staged insert visible before commit")
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("insert txn failed: %v", err)
		}
		// Visible afterwards.
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			slot, ok := tx.Lookup(idx, 1000)
			if !ok {
				t.Error("committed insert not in index")
				return nil
			}
			row, err := tx.Read(f.Table, slot)
			if err != nil {
				return err
			}
			if f.Table.Schema.GetU64(row, 1) != 77 {
				t.Error("inserted row data wrong")
			}
			return nil
		}})
	})
}

// TestAbortedInsertNeverMaterializes: user aborts drop staged inserts.
func TestAbortedInsertNeverMaterializes(t *testing.T) {
	f := cctest.NewFixture(1, 4, 1)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	scheme.Setup(f.DB)
	idx := f.DB.Index("C_PK")
	f.Engine.Run(func(p rt.Proc) {
		w := core.NewWorker(p, f.DB, scheme)
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			row := tx.InsertRow(idx, 2000)
			f.Table.Schema.PutU64(row, 0, 2000)
			return core.ErrUserAbort
		}})
		_ = w.ExecOnce(&cctest.Txn{Body: func(tx *core.TxnCtx) error {
			if _, ok := tx.Lookup(idx, 2000); ok {
				t.Error("aborted insert materialized")
			}
			return nil
		}})
	})
}

// TestRunCountsOnlyMeasurementWindow: commits before warmup are excluded.
func TestRunCountsOnlyMeasurementWindow(t *testing.T) {
	f := cctest.NewFixture(2, 64, 1)
	scheme := twopl.New(twopl.NoWait, twopl.Options{})
	wl := &tinyWorkload{f: f}
	res := core.Run(f.DB, scheme, wl, core.Config{
		WarmupCycles:  200_000,
		MeasureCycles: 200_000,
	})
	// Each txn takes ~2k cycles; commits across the full 400k window
	// would be about twice the measured count.
	if res.Commits == 0 {
		t.Fatal("no commits measured")
	}
	perWorkerTotal := wl.total / 2
	if res.Commits >= perWorkerTotal*2 {
		t.Fatalf("measured commits %d not windowed (total executed %d)", res.Commits, wl.total)
	}
}

type tinyWorkload struct {
	f     *cctest.Fixture
	total uint64
	txns  [2]tinyTxn
}

type tinyTxn struct {
	wl   *tinyWorkload
	slot int
}

func (w *tinyWorkload) Next(p rt.Proc) core.Txn {
	w.total++
	t := &w.txns[p.ID()]
	t.wl = w
	t.slot = (p.ID()*31 + int(w.total)) % 64
	return t
}

func (t *tinyTxn) Run(tx *core.TxnCtx) error {
	_, err := tx.Read(t.wl.f.Table, t.slot)
	tx.P.Tick(stats.Useful, 1000)
	return err
}

func (t *tinyTxn) Partitions() []int { return nil }
