// Observability: per-transaction-type attribution, commit-latency
// histograms, and in-flight interval sampling.
//
// Everything in this file is accounting-only. Recording an observation
// never calls Tick/Sync/Mem* — it reads the worker's clock and increments
// worker-private counters — so enabling any of it cannot perturb a
// simulated schedule: a run with observers, histograms and per-type
// attribution produces bit-identical commits, aborts and breakdowns to a
// run without (pinned by TestObserverDoesNotPerturbGolden). On the native
// runtime the per-commit cost is a few array increments; cross-worker
// aggregation happens at most once per sample interval per worker.
package core

import (
	"sync"

	"abyss1000/internal/stats"
)

// TxnTyper is an optional interface for Workload enabling per-transaction-
// type sub-results. When the workload implements it, Run attributes every
// completed transaction to a type and Result.PerTxn reports one TxnStats
// per type, in TxnTypes order. The built-in workloads, abyss.Mix, and any
// workload built from registered TxnSpecs implement it; a workload that
// does not simply gets no PerTxn breakdown.
type TxnTyper interface {
	// TxnTypes returns the stable list of transaction type names. It
	// must return the same list on every call (callers may cache or
	// re-request it; implementations should return a stored slice).
	TxnTypes() []string

	// TxnTypeOf returns the index of txn's type in TxnTypes, or -1 when
	// the transaction is not one of the declared types (such
	// transactions count toward the aggregate Result only).
	TxnTypeOf(txn Txn) int
}

// TxnStats is one transaction type's sub-result: outcome counts and the
// commit-latency histogram, measured over the same window as the
// aggregate Result. Commits includes program-logic rollbacks (completed
// work, per TPC-C); Aborts counts concurrency-control aborts. Latency is
// first-attempt-start to commit, so it includes restart and backoff time.
type TxnStats struct {
	Name    string          `json:"name"`
	Commits uint64          `json:"commits"`
	Aborts  uint64          `json:"aborts"`
	Latency stats.Histogram `json:"latency"`
}

// merge adds other's counts into s (names are carried by position).
func (s *TxnStats) merge(other *TxnStats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.Latency.Merge(&other.Latency)
}

// Sample is one interval's snapshot of a run in flight. Intervals
// partition the measurement window: every committed transaction and every
// CC abort inside the window lands in exactly one sample, so the samples
// sum to the final Result's counts and their latency histograms merge to
// Result.Latency.
type Sample struct {
	// Interval is the 0-based interval index.
	Interval int `json:"interval"`

	// EndCycle is the interval's end as an offset from the start of the
	// measurement window; the last sample's EndCycle equals the
	// configured MeasureCycles.
	EndCycle uint64 `json:"end_cycle"`

	// Cycles is the interval's width. It equals Config.SampleEvery for
	// every interval except possibly the last, which may be partial.
	Cycles uint64 `json:"cycles"`

	// Commits and Aborts count transaction outcomes whose completion
	// fell inside this interval.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`

	// Shed and Deadlined count overload outcomes discovered inside this
	// interval (open-loop runs only): arrivals rejected by admission
	// control and transactions abandoned past their deadline or retry
	// budget. Like Commits/Aborts they tile the window, so the samples'
	// sums equal the final Result's counters.
	Shed      uint64 `json:"shed"`
	Deadlined uint64 `json:"deadlined"`

	// Frequency is the runtime's cycle frequency in Hz, carried so the
	// rate accessors need no external context.
	Frequency float64 `json:"frequency_hz"`

	// Latency is the commit-latency histogram of this interval alone.
	Latency stats.Histogram `json:"latency"`

	// QueueDepth is the admission-queue-depth histogram of arrivals
	// ingested inside this interval (open-loop runs only).
	QueueDepth stats.Histogram `json:"queue_depth"`
}

// Throughput returns the interval's committed transactions per second.
func (s Sample) Throughput() float64 {
	if s.Cycles == 0 || s.Frequency <= 0 {
		return 0
	}
	return float64(s.Commits) / (float64(s.Cycles) / s.Frequency)
}

// AbortFraction returns aborted attempts / all attempts in the interval.
func (s Sample) AbortFraction() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Observer receives interval samples during a run. OnSample is called
// from worker threads (under the simulator, from whichever simulated
// core's goroutine completed the interval) with strictly increasing
// Interval values; it must return promptly — under the simulator a
// blocked observer blocks the whole simulation. Implementations that need
// to do slow work should hand the sample off (see abyss.DB.RunStream,
// which sends into a channel buffered for the whole run).
type Observer interface {
	OnSample(s Sample)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Sample)

// OnSample implements Observer.
func (f ObserverFunc) OnSample(s Sample) { f(s) }

// MaxSampleIntervals bounds MeasureCycles / SampleEvery. The sampler
// preallocates one interval aggregate (~0.5 KB: a latency histogram plus
// counters) per interval, and RunStream buffers one Sample per interval,
// so an unbounded ratio would let a tiny sampling period allocate
// gigabytes before the run starts. 100k intervals (~50 MB) is far beyond
// any useful sampling resolution.
const MaxSampleIntervals = 100_000

// intervalAgg accumulates one interval's contribution (per worker while
// pending, per interval once flushed).
type intervalAgg struct {
	commits, aborts uint64
	shed, deadlined uint64
	lat             stats.Histogram
	qdepth          stats.Histogram
}

// merge drains other into a.
func (a *intervalAgg) merge(other *intervalAgg) {
	a.commits += other.commits
	a.aborts += other.aborts
	a.shed += other.shed
	a.deadlined += other.deadlined
	a.lat.Merge(&other.lat)
	a.qdepth.Merge(&other.qdepth)
	*other = intervalAgg{}
}

// sampler coordinates interval emission across workers. Each worker
// accumulates its current interval's counts privately (no sharing on the
// per-transaction path) and flushes under the mutex only when its clock
// crosses into a new interval; interval i is emitted once every worker
// has flushed past it, so samples are complete, in order, and identical
// between runtimes modulo the runtimes' own schedules. Under the
// simulator exactly one worker goroutine runs at a time, so the mutex is
// uncontended and emission order is deterministic.
type sampler struct {
	every      uint64
	warmEnd    uint64
	measure    uint64
	freq       float64
	obs        Observer
	nIntervals int64

	mu      sync.Mutex
	flushed []int64 // per worker: highest interval flushed, -1 for none
	emitted int64   // last interval handed to the observer
	agg     []intervalAgg
}

// newSampler sizes the interval table for cfg's window. All allocation
// happens here, before workers start.
func newSampler(cfg Config, workers int, freq float64, obs Observer) *sampler {
	n := int64((cfg.MeasureCycles + cfg.SampleEvery - 1) / cfg.SampleEvery)
	s := &sampler{
		every:      cfg.SampleEvery,
		warmEnd:    cfg.WarmupCycles,
		measure:    cfg.MeasureCycles,
		freq:       freq,
		obs:        obs,
		nIntervals: n,
		flushed:    make([]int64, workers),
		emitted:    -1,
		agg:        make([]intervalAgg, n),
	}
	for i := range s.flushed {
		s.flushed[i] = -1
	}
	return s
}

// intervalOf maps a completion time inside the measurement window to its
// interval index.
func (s *sampler) intervalOf(now uint64) int64 {
	if now < s.warmEnd {
		return 0
	}
	idx := int64((now - s.warmEnd) / s.every)
	if idx >= s.nIntervals {
		idx = s.nIntervals - 1
	}
	return idx
}

// advance flushes worker's pending counts for interval cur and marks
// intervals cur..next-1 complete for that worker (a worker that skipped
// intervals simply contributed nothing to them).
func (s *sampler) advance(worker int, cur, next int64, pend *intervalAgg) {
	s.mu.Lock()
	s.agg[cur].merge(pend)
	s.flushed[worker] = next - 1
	s.emitReady()
	s.mu.Unlock()
}

// finish flushes worker's final pending counts and marks every interval
// complete for it; called once when the worker's run loop exits.
func (s *sampler) finish(worker int, cur int64, pend *intervalAgg) {
	s.mu.Lock()
	s.agg[cur].merge(pend)
	s.flushed[worker] = s.nIntervals - 1
	s.emitReady()
	s.mu.Unlock()
}

// emitReady hands every interval all workers have flushed past to the
// observer, in order. Called with mu held.
func (s *sampler) emitReady() {
	ready := s.nIntervals - 1
	for _, f := range s.flushed {
		if f < ready {
			ready = f
		}
	}
	for i := s.emitted + 1; i <= ready; i++ {
		a := &s.agg[i]
		end := uint64(i+1) * s.every
		if end > s.measure {
			end = s.measure
		}
		s.obs.OnSample(Sample{
			Interval:   int(i),
			EndCycle:   end,
			Cycles:     end - uint64(i)*s.every,
			Commits:    a.commits,
			Aborts:     a.aborts,
			Shed:       a.shed,
			Deadlined:  a.deadlined,
			Frequency:  s.freq,
			Latency:    a.lat,
			QueueDepth: a.qdepth,
		})
		s.emitted = i
	}
}
