package core_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
)

// TestResultJSONRoundTrip pins the stable serialization of Result: every
// field — including the six-component breakdown, the latency histogram
// and the per-transaction-type sub-results — survives a marshal/
// unmarshal cycle unchanged.
func TestResultJSONRoundTrip(t *testing.T) {
	var bd stats.Breakdown
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		bd.Add(c, uint64(100*(int(c)+1)))
	}
	var lat stats.Histogram
	for _, v := range []uint64{100, 900, 900, 4000, 1 << 20} {
		lat.Record(v)
	}
	var payLat stats.Histogram
	payLat.Record(100)
	payLat.Record(900)
	var qd stats.Histogram
	for _, v := range []uint64{0, 1, 3, 7, 15} {
		qd.Record(v)
	}
	orig := core.Result{
		Scheme:        "MVCC",
		Workers:       64,
		Commits:       123456,
		Aborts:        789,
		Tuples:        1975296,
		Offered:       130000,
		Shed:          5000,
		Deadlined:     755,
		MeasureCycles: 800_000,
		Frequency:     1e9,
		Breakdown:     bd,
		Latency:       lat,
		QueueDepth:    qd,
		PerTxn: []core.TxnStats{
			{Name: "Payment", Commits: 61728, Aborts: 400, Latency: payLat},
			{Name: "NewOrder", Commits: 61728, Aborts: 389},
		},
	}

	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Fatalf("round trip changed the result:\norig %+v\nback %+v", orig, back)
	}
	if back.Throughput() != orig.Throughput() || back.AbortFraction() != orig.AbortFraction() {
		t.Fatal("derived metrics changed across round trip")
	}
	if back.Latency.P99() != orig.Latency.P99() || back.Latency.Max() != orig.Latency.Max() {
		t.Fatal("latency percentiles changed across round trip")
	}
	if back.OfferedTPS() != orig.OfferedTPS() || back.GoodputTPS() != orig.GoodputTPS() ||
		back.ShedFraction() != orig.ShedFraction() || back.QueueDepth.Max() != orig.QueueDepth.Max() {
		t.Fatal("overload metrics changed across round trip")
	}
}

// TestResultJSONStableKeys pins the wire format's field names — external
// consumers (CI artifacts, plotting scripts) parse these.
func TestResultJSONStableKeys(t *testing.T) {
	b, err := json.Marshal(core.Result{
		PerTxn: []core.TxnStats{{Name: "Payment"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"scheme"`, `"workers"`, `"commits"`, `"aborts"`, `"tuples"`,
		`"measure_cycles"`, `"frequency_hz"`, `"breakdown"`,
		`"useful"`, `"abort"`, `"ts_alloc"`, `"index"`, `"wait"`, `"manager"`,
		`"latency"`, `"per_txn"`, `"name"`, `"count"`, `"sum"`, `"max"`, `"buckets"`,
		`"offered"`, `"shed"`, `"deadlined"`, `"queue_depth"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Errorf("Result JSON missing key %s: %s", key, b)
		}
	}

	// A result without per-type attribution omits per_txn entirely
	// rather than emitting null.
	b, err = json.Marshal(core.Result{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"per_txn"`) {
		t.Errorf("Result without PerTxn should omit the key: %s", b)
	}
}

// TestSampleRates pins Sample's derived rate accessors, including the
// zero-value guards.
func TestSampleRates(t *testing.T) {
	s := core.Sample{Cycles: 1_000_000, Commits: 1000, Aborts: 1000, Frequency: 1e9}
	if got := s.Throughput(); got != 1e6 {
		t.Fatalf("Throughput = %v, want 1e6", got)
	}
	if got := s.AbortFraction(); got != 0.5 {
		t.Fatalf("AbortFraction = %v, want 0.5", got)
	}
	var zero core.Sample
	if zero.Throughput() != 0 || zero.AbortFraction() != 0 {
		t.Fatal("zero-value Sample rates should be 0")
	}
}
