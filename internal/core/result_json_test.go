package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"abyss1000/internal/core"
	"abyss1000/internal/stats"
)

// TestResultJSONRoundTrip pins the stable serialization of Result: every
// field, including the six-component breakdown, survives a marshal/
// unmarshal cycle unchanged.
func TestResultJSONRoundTrip(t *testing.T) {
	var bd stats.Breakdown
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		bd.Add(c, uint64(100*(int(c)+1)))
	}
	orig := core.Result{
		Scheme:        "MVCC",
		Workers:       64,
		Commits:       123456,
		Aborts:        789,
		Tuples:        1975296,
		MeasureCycles: 800_000,
		Frequency:     1e9,
		Breakdown:     bd,
	}

	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip changed the result:\norig %+v\nback %+v", orig, back)
	}
	if back.Throughput() != orig.Throughput() || back.AbortFraction() != orig.AbortFraction() {
		t.Fatal("derived metrics changed across round trip")
	}
}

// TestResultJSONStableKeys pins the wire format's field names — external
// consumers (CI artifacts, plotting scripts) parse these.
func TestResultJSONStableKeys(t *testing.T) {
	b, err := json.Marshal(core.Result{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"scheme"`, `"workers"`, `"commits"`, `"aborts"`, `"tuples"`,
		`"measure_cycles"`, `"frequency_hz"`, `"breakdown"`,
		`"useful"`, `"abort"`, `"ts_alloc"`, `"index"`, `"wait"`, `"manager"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Errorf("Result JSON missing key %s: %s", key, b)
		}
	}
}
