package core

import (
	"fmt"
	"sort"
	"strings"

	"abyss1000/internal/storage"
)

// CommittedRower is implemented by schemes whose latest committed row
// image is not the table slab's bytes (MVCC keeps current state in its
// version chains). DumpState consults it when present; for every other
// scheme the live row IS the committed image on a quiescent database.
type CommittedRower interface {
	LatestCommitted(t *storage.Table, slot int) []byte
}

// DumpState serializes db's committed user-visible state — every
// populated row of every table (setup rows plus runtime inserts),
// per-worker allocation cursors, and the indexes' runtime-inserted
// entries — into a deterministic text form. Two databases with equal
// dumps hold identical committed states; the crash harness compares a
// recovered database against the original this way. scheme may be nil
// (e.g. for a freshly recovered database, where the slab is the state).
//
// Quiesced use only: it reads rows and walks indexes with no latches.
func DumpState(db *DB, scheme Scheme) string {
	var cr CommittedRower
	if scheme != nil {
		cr, _ = scheme.(CommittedRower)
	}
	row := func(t *storage.Table, slot int) []byte {
		if cr != nil {
			if img := cr.LatestCommitted(t, slot); img != nil {
				return img
			}
		}
		return t.Row(slot)
	}
	var b strings.Builder
	for _, t := range db.Catalog.Tables() {
		fmt.Fprintf(&b, "table %d %s loaded=%d\n", t.ID, t.Schema.Name, t.Loaded())
		dump := func(slot int) {
			fmt.Fprintf(&b, "  %d %x\n", slot, row(t, slot))
		}
		for s := 0; s < t.Loaded(); s++ {
			dump(s)
		}
		for seg := 0; seg < t.NumSegs(); seg++ {
			start, next := t.SegRange(seg)
			fmt.Fprintf(&b, " seg %d next=%d\n", seg, next)
			for s := start; s < next; s++ {
				dump(s)
			}
		}
	}
	dumpIndex := func(label string, ord, loaded int, ranger func(func(key uint64, slot int))) {
		var entries []struct{ key, slot uint64 }
		ranger(func(key uint64, slot int) {
			if slot >= loaded {
				entries = append(entries, struct{ key, slot uint64 }{key, uint64(slot)})
			}
		})
		// Live insertion order (worker interleaving) and replay order
		// (log order) place equal entry sets in different buckets slots;
		// sort so the dump depends only on the set.
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].key != entries[j].key {
				return entries[i].key < entries[j].key
			}
			return entries[i].slot < entries[j].slot
		})
		fmt.Fprintf(&b, "%s %d\n", label, ord)
		for _, e := range entries {
			fmt.Fprintf(&b, "  %d -> %d\n", e.key, e.slot)
		}
	}
	for ord, h := range db.indexOrder {
		dumpIndex("index", ord, h.Table().Loaded(), h.Range)
	}
	for ord, o := range db.ordOrder {
		dumpIndex("oindex", ord, o.Table().Loaded(), o.Range)
	}
	return b.String()
}
