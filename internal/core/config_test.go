package core

import (
	"math"
	"testing"
)

// TestConfigValidate pins the window validation: a zero measurement
// window is the one configuration that can make every per-second rate
// divide by zero.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero MeasureCycles should be invalid")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig should validate, got %v", err)
	}
	if err := (Config{MeasureCycles: 1}).Validate(); err != nil {
		t.Fatalf("minimal window should validate, got %v", err)
	}
}

// TestResultRateGuards pins that the derived rates of a zero-value (or
// hand-built) Result are 0, never NaN or Inf — they are serialized into
// JSON/CSV reports where NaN is not even representable.
func TestResultRateGuards(t *testing.T) {
	for _, r := range []Result{
		{},                                  // zero window and frequency
		{Commits: 10, Aborts: 3, Tuples: 7}, // counts without a window
		{Commits: 10, MeasureCycles: 1000},  // window without a frequency
		{Commits: 10, Frequency: 1e9},       // frequency without a window
	} {
		for name, v := range map[string]float64{
			"Throughput":   r.Throughput(),
			"TuplesPerSec": r.TuplesPerSec(),
			"AbortsPerSec": r.AbortsPerSec(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s of %+v = %v, want 0", name, r, v)
			}
			if v != 0 {
				t.Fatalf("%s of %+v = %v, want 0", name, r, v)
			}
		}
		// String() renders through the same accessors; it must be safe
		// to call on any Result.
		_ = r.String()
	}

	r := Result{Commits: 1000, Tuples: 8000, Aborts: 500, MeasureCycles: 1_000_000, Frequency: 1e9}
	if got := r.Throughput(); got != 1e6 {
		t.Fatalf("Throughput = %v, want 1e6", got)
	}
	if got := r.TuplesPerSec(); got != 8e6 {
		t.Fatalf("TuplesPerSec = %v, want 8e6", got)
	}
	if got := r.AbortsPerSec(); got != 5e5 {
		t.Fatalf("AbortsPerSec = %v, want 5e5", got)
	}
}
